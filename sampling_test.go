package anomalia

import (
	"testing"
	"time"
)

func TestSamplingControllerBasics(t *testing.T) {
	t.Parallel()

	ctl, err := NewSamplingController(SamplerConfig{
		Min: time.Second, Max: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ctl.Interval() != time.Minute {
		t.Errorf("start = %v, want Max", ctl.Interval())
	}
	fast := ctl.Record(true)
	if fast >= time.Minute {
		t.Errorf("anomaly did not speed up sampling: %v", fast)
	}
	ctl.Reset()
	if ctl.Interval() != time.Minute {
		t.Errorf("Reset: %v", ctl.Interval())
	}
}

func TestSamplingControllerValidation(t *testing.T) {
	t.Parallel()

	if _, err := NewSamplingController(SamplerConfig{Min: time.Minute, Max: time.Second}); err == nil {
		t.Error("min > max must error")
	}
	if _, err := NewSamplingController(SamplerConfig{Min: time.Second, Max: time.Minute, Speedup: 2}); err == nil {
		t.Error("speedup > 1 must error")
	}
}

// TestSamplingControllerConverges: a long anomaly burst floors at Min, a
// long calm stretch ceils at Max.
func TestSamplingControllerConverges(t *testing.T) {
	t.Parallel()

	ctl, err := NewSamplingController(SamplerConfig{
		Min: 100 * time.Millisecond, Max: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		ctl.Record(true)
	}
	if ctl.Interval() != 100*time.Millisecond {
		t.Errorf("burst floor = %v", ctl.Interval())
	}
	for i := 0; i < 100; i++ {
		ctl.Record(false)
	}
	if ctl.Interval() != 10*time.Second {
		t.Errorf("calm ceiling = %v", ctl.Interval())
	}
}
