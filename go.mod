module anomalia

go 1.24
