package anomalia

import (
	"errors"
	"testing"
)

// outcomeFor builds the outcome of one quickstart-style window.
func outcomeFor(t *testing.T, prev, cur [][]float64, abnormal []int) *Outcome {
	t.Helper()
	out, err := Characterize(prev, cur, abnormal, WithRadius(0.03), WithTau(3))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestNewAggregatorValidation(t *testing.T) {
	t.Parallel()

	if _, err := NewAggregator(Policy(0)); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("bad policy = %v", err)
	}
	if PolicyReportIsolated.String() != "report-isolated" ||
		PolicyReportMassive.String() != "report-massive" ||
		Policy(0).String() != "unknown" {
		t.Error("Policy.String misbehaved")
	}
}

func TestAggregatorISPStory(t *testing.T) {
	t.Parallel()

	agg, err := NewAggregator(PolicyReportIsolated)
	if err != nil {
		t.Fatal(err)
	}
	// Healthy window: nothing happens.
	s := agg.Ingest(nil)
	if len(s.Tickets) != 0 || len(s.IncidentIDs) != 0 || s.Suppressed != 0 {
		t.Errorf("healthy window summary = %+v", s)
	}

	// Window 1: a 4-device massive group plus one isolated device.
	prev := [][]float64{{0.95}, {0.94}, {0.95}, {0.96}, {0.60}}
	cur := [][]float64{{0.55}, {0.54}, {0.56}, {0.55}, {0.20}}
	out := outcomeFor(t, prev, cur, []int{0, 1, 2, 3, 4})
	s = agg.Ingest(out)
	if len(s.Tickets) != 1 || s.Tickets[0] != 4 {
		t.Errorf("tickets = %v, want [4]", s.Tickets)
	}
	if len(s.IncidentIDs) != 1 {
		t.Errorf("incidents touched = %v, want one", s.IncidentIDs)
	}
	if s.Suppressed != 4 {
		t.Errorf("suppressed = %d, want 4 massive reports", s.Suppressed)
	}

	// Window 2: the same massive event continues; the isolated device
	// keeps failing but must not re-ticket.
	out2 := outcomeFor(t, cur, [][]float64{{0.50}, {0.49}, {0.51}, {0.50}, {0.15}}, []int{0, 1, 2, 3, 4})
	s = agg.Ingest(out2)
	if len(s.Tickets) != 0 {
		t.Errorf("repeat window re-ticketed: %v", s.Tickets)
	}
	incidents := agg.Incidents()
	if len(incidents) != 1 {
		t.Fatalf("incidents = %+v, want one merged incident", incidents)
	}
	inc := incidents[0]
	if inc.FirstWindow != 1 || inc.LastWindow != 2 || !inc.Open {
		t.Errorf("incident lifetime = %+v", inc)
	}
	if len(inc.Devices) != 4 {
		t.Errorf("incident devices = %v", inc.Devices)
	}
	if agg.Tickets() != 1 {
		t.Errorf("total tickets = %d", agg.Tickets())
	}
	if agg.Suppressed() != 8 {
		t.Errorf("total suppressed = %d, want 8", agg.Suppressed())
	}

	// Healthy window closes the incident.
	agg.Ingest(nil)
	if agg.Incidents()[0].Open {
		t.Error("incident must close after a quiet window")
	}
}

func TestAggregatorOTTStory(t *testing.T) {
	t.Parallel()

	agg, err := NewAggregator(PolicyReportMassive)
	if err != nil {
		t.Fatal(err)
	}
	prev := [][]float64{{0.95}, {0.94}, {0.95}, {0.96}, {0.60}}
	cur := [][]float64{{0.55}, {0.54}, {0.56}, {0.55}, {0.20}}
	out := outcomeFor(t, prev, cur, []int{0, 1, 2, 3, 4})
	s := agg.Ingest(out)
	// One incident page instead of 4 device reports, isolated silenced:
	// suppression = 3 + 1.
	if s.Suppressed != 4 {
		t.Errorf("suppressed = %d, want 4", s.Suppressed)
	}
	if len(s.Tickets) != 0 {
		t.Errorf("OTT policy must not ticket isolated devices: %v", s.Tickets)
	}
	if len(s.IncidentIDs) != 1 {
		t.Errorf("incidents = %v", s.IncidentIDs)
	}
}

func TestAggregatorSeparateIncidents(t *testing.T) {
	t.Parallel()

	agg, err := NewAggregator(PolicyReportIsolated)
	if err != nil {
		t.Fatal(err)
	}
	// Two disjoint massive groups in one window (far apart in QoS).
	prev := [][]float64{
		{0.95}, {0.94}, {0.95}, {0.96}, // group A
		{0.60}, {0.61}, {0.60}, {0.59}, // group B
	}
	cur := [][]float64{
		{0.55}, {0.54}, {0.56}, {0.55},
		{0.20}, {0.21}, {0.20}, {0.19},
	}
	out := outcomeFor(t, prev, cur, []int{0, 1, 2, 3, 4, 5, 6, 7})
	if len(out.Massive) != 8 {
		t.Fatalf("expected both groups massive: %+v", out)
	}
	s := agg.Ingest(out)
	if len(s.IncidentIDs) != 2 {
		t.Errorf("incident ids = %v, want two distinct incidents", s.IncidentIDs)
	}
	incidents := agg.Incidents()
	if len(incidents) != 2 {
		t.Fatalf("incidents = %+v", incidents)
	}
	if intersects(incidents[0].Devices, incidents[1].Devices) {
		t.Error("separate incidents share devices")
	}
}

func TestAggregatorIncidentGrowth(t *testing.T) {
	t.Parallel()

	agg, err := NewAggregator(PolicyReportIsolated)
	if err != nil {
		t.Fatal(err)
	}
	// Window 1: devices 0-3 massive; device 4 sits nearby but its own
	// detector stayed quiet.
	prev := [][]float64{{0.95}, {0.94}, {0.95}, {0.96}, {0.56}}
	cur := [][]float64{{0.55}, {0.54}, {0.56}, {0.55}, {0.56}}
	out := outcomeFor(t, prev, cur, []int{0, 1, 2, 3})
	agg.Ingest(out)
	// Window 2: the whole cluster — device 4 included — moves together.
	prev2 := cur
	cur2 := [][]float64{{0.30}, {0.29}, {0.31}, {0.30}, {0.30}}
	out2 := outcomeFor(t, prev2, cur2, []int{0, 1, 2, 3, 4})
	s := agg.Ingest(out2)
	if len(s.IncidentIDs) != 1 {
		t.Fatalf("incident ids = %v", s.IncidentIDs)
	}
	incidents := agg.Incidents()
	if len(incidents) != 1 || len(incidents[0].Devices) != 5 {
		t.Errorf("incident did not absorb the new device: %+v", incidents)
	}
}
