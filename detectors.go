package anomalia

import "anomalia/internal/detect"

// Detector is a single-service error-detection function a_k(j): it learns
// the normal evolution of one QoS series and flags samples that deviate
// abnormally from its prediction. The paper treats the implementation as
// out of scope but cites the families below; all are provided.
//
// Custom implementations are welcome anywhere a Detector is accepted.
type Detector interface {
	// Update consumes the sample of one discrete time and reports whether
	// it is abnormal.
	Update(sample float64) bool
	// Predict returns the current one-step-ahead prediction.
	Predict() float64
	// Reset clears all learned state.
	Reset()
}

// NewThresholdDetector flags inter-sample jumps larger than delta — the
// simplest error-detection function.
func NewThresholdDetector(delta float64) (Detector, error) {
	return detect.NewThreshold(delta)
}

// NewEWMADetector tracks an exponentially weighted mean and variance
// (smoothing alpha) and flags samples more than k deviations away, with a
// floor minStd on the deviation estimate and a warmup sample count during
// which nothing is flagged.
func NewEWMADetector(alpha, k, minStd float64, warmup int) (Detector, error) {
	return detect.NewEWMA(alpha, k, minStd, warmup)
}

// NewCUSUMDetector is Page's two-sided cumulative-sum test: drift is the
// per-sample slack, threshold the decision level, alpha the baseline
// smoothing. It accumulates small persistent shifts a jump detector
// misses.
func NewCUSUMDetector(drift, threshold, alpha float64) (Detector, error) {
	return detect.NewCUSUM(drift, threshold, alpha)
}

// NewHoltWintersDetector forecasts with double (level + trend)
// exponential smoothing, optionally with an additive seasonal component
// of the given period (0 disables), and flags samples outside k times the
// running mean absolute deviation around the forecast (floored at
// minBand).
func NewHoltWintersDetector(alpha, beta, gamma, k, minBand float64, period int) (Detector, error) {
	return detect.NewHoltWinters(alpha, beta, gamma, k, minBand, period)
}

// NewKalmanDetector runs a scalar local-level Kalman filter (process
// variance q, observation variance r) and flags samples whose normalized
// innovation exceeds the gate.
func NewKalmanDetector(q, r, gate float64) (Detector, error) {
	return detect.NewKalman(q, r, gate)
}

// NewShewhartDetector is the individuals control chart: dispersion is
// estimated from the mean moving range and samples beyond k sigmas from
// the centre line are flagged, with a floor minMR on the moving-range
// estimate and a warmup sample count.
func NewShewhartDetector(k, minMR float64, warmup int) (Detector, error) {
	return detect.NewShewhart(k, minMR, warmup)
}
