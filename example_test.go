package anomalia_test

import (
	"fmt"
	"time"

	"anomalia"
)

// The fleet's QoS dropped for five devices; four moved together (network
// event) and one alone (local fault).
func ExampleCharacterize() {
	prev := [][]float64{{0.95}, {0.94}, {0.95}, {0.96}, {0.60}}
	cur := [][]float64{{0.55}, {0.54}, {0.56}, {0.55}, {0.20}}

	out, err := anomalia.Characterize(prev, cur, []int{0, 1, 2, 3, 4},
		anomalia.WithRadius(0.03), anomalia.WithTau(3))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("massive:", out.Massive)
	fmt.Println("isolated:", out.Isolated)
	// Output:
	// massive: [0 1 2 3]
	// isolated: [4]
}

// A device decides for itself, locally.
func ExampleCharacterizeDevice() {
	prev := [][]float64{{0.95}, {0.94}, {0.95}, {0.96}, {0.60}}
	cur := [][]float64{{0.55}, {0.54}, {0.56}, {0.55}, {0.20}}

	rep, err := anomalia.CharacterizeDevice(prev, cur, []int{0, 1, 2, 3, 4}, 4)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("device %d is %s (by %s)\n", rep.Device, rep.Class, rep.Rule)
	// Output:
	// device 4 is isolated (by theorem5)
}

// Streaming monitoring: detectors learn the healthy level, then a shared
// drop is classified on the spot.
func ExampleMonitor() {
	mon, err := anomalia.NewMonitor(6, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	healthy := [][]float64{{0.95}, {0.95}, {0.95}, {0.95}, {0.95}, {0.95}}
	for i := 0; i < 3; i++ {
		if _, err := mon.Observe(healthy); err != nil {
			fmt.Println("error:", err)
			return
		}
	}
	faulty := [][]float64{{0.5}, {0.5}, {0.51}, {0.49}, {0.5}, {0.95}}
	out, err := mon.Observe(faulty)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("massive:", out.Massive)
	// Output:
	// massive: [0 1 2 3 4]
}

// Dimensioning: pick τ for a deployment, then verify the confusion
// probability stays negligible as the fleet grows.
func ExampleTuneTau() {
	tau, err := anomalia.TuneTau(1000, 0.03, 2, 0.005, 1e-6)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("tau:", tau)
	// Output:
	// tau: 2
}

// Local sampling-frequency tuning (Section VII-C): sample fast during
// bursts, back off when calm.
func ExampleSamplingController() {
	ctl, err := anomalia.NewSamplingController(anomalia.SamplerConfig{
		Min: time.Second,
		Max: 16 * time.Second,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(ctl.Interval())   // calm start
	fmt.Println(ctl.Record(true)) // anomaly: speed up
	fmt.Println(ctl.Record(true))
	// Output:
	// 16s
	// 8s
	// 4s
}
