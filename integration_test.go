package anomalia_test

import (
	"testing"

	"anomalia"

	"anomalia/internal/scenario"
	"anomalia/internal/sets"
)

// TestOutcomeInvariants drives paper-scale generated windows through the
// public API and checks the structural guarantees an integrator relies
// on: the three sets partition the abnormal input, per-report classes
// agree with the sets, reported dense motions contain their device, and
// rules match classes.
func TestOutcomeInvariants(t *testing.T) {
	t.Parallel()

	gen, err := scenario.New(scenario.Config{
		N: 800, D: 2, R: 0.03, Tau: 3, A: 25, G: 0.4,
		Concomitant: true, MaxShift: 0.06, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 5; w++ {
		step, err := gen.Step()
		if err != nil {
			t.Fatal(err)
		}
		n := step.Pair.N()
		prev := make([][]float64, n)
		cur := make([][]float64, n)
		for j := 0; j < n; j++ {
			prev[j] = step.Pair.Prev.At(j)
			cur[j] = step.Pair.Cur.At(j)
		}
		out, err := anomalia.Characterize(prev, cur, step.Abnormal)
		if err != nil {
			t.Fatal(err)
		}

		// The sets partition the abnormal input.
		union := sets.UnionInts(sets.UnionInts(out.Massive, out.Isolated), out.Unresolved)
		if !sets.EqualInts(union, step.Abnormal) {
			t.Fatalf("window %d: sets do not cover the abnormal input", w)
		}
		if len(out.Massive)+len(out.Isolated)+len(out.Unresolved) != len(step.Abnormal) {
			t.Fatalf("window %d: sets overlap", w)
		}
		if len(out.Reports) != len(step.Abnormal) {
			t.Fatalf("window %d: %d reports for %d abnormal devices", w, len(out.Reports), len(step.Abnormal))
		}

		prevDev := -1
		for _, rep := range out.Reports {
			if rep.Device <= prevDev {
				t.Fatalf("window %d: reports out of device order", w)
			}
			prevDev = rep.Device

			var wantSet []int
			switch rep.Class {
			case anomalia.Massive:
				wantSet = out.Massive
			case anomalia.Isolated:
				wantSet = out.Isolated
			case anomalia.Unresolved:
				wantSet = out.Unresolved
			default:
				t.Fatalf("window %d device %d: unknown class", w, rep.Device)
			}
			if !sets.ContainsInt(wantSet, rep.Device) {
				t.Fatalf("window %d device %d: class %v not reflected in sets", w, rep.Device, rep.Class)
			}

			for _, m := range rep.DenseMotions {
				if !sets.ContainsInt(m, rep.Device) {
					t.Fatalf("window %d device %d: dense motion %v without the device", w, rep.Device, m)
				}
				if len(m) <= anomalia.DefaultTau {
					t.Fatalf("window %d device %d: motion %v not dense", w, rep.Device, m)
				}
			}
			switch rep.Class {
			case anomalia.Isolated:
				if rep.Rule != "theorem5" || len(rep.DenseMotions) != 0 {
					t.Fatalf("window %d device %d: isolated via %q with %d dense motions",
						w, rep.Device, rep.Rule, len(rep.DenseMotions))
				}
			case anomalia.Massive:
				if rep.Rule != "theorem6" && rep.Rule != "theorem7" {
					t.Fatalf("window %d device %d: massive via %q", w, rep.Device, rep.Rule)
				}
			case anomalia.Unresolved:
				if rep.Rule != "corollary8" && rep.Rule != "none" {
					t.Fatalf("window %d device %d: unresolved via %q", w, rep.Device, rep.Rule)
				}
			}
		}
	}
}

// TestPublicAPIMatchesGroundTruthShape: at the paper's operating point,
// verdicts track the generator's ground truth closely (massive errors
// detected as massive, isolated as isolated) — the end-to-end quality
// gate for the public surface.
func TestPublicAPIMatchesGroundTruthShape(t *testing.T) {
	t.Parallel()

	gen, err := scenario.New(scenario.Config{
		N: 1000, D: 2, R: 0.03, Tau: 3, A: 15, G: 0.5,
		EnforceR3: true, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	agree, total := 0, 0
	for w := 0; w < 5; w++ {
		step, err := gen.Step()
		if err != nil {
			t.Fatal(err)
		}
		n := step.Pair.N()
		prev := make([][]float64, n)
		cur := make([][]float64, n)
		for j := 0; j < n; j++ {
			prev[j] = step.Pair.Prev.At(j)
			cur[j] = step.Pair.Cur.At(j)
		}
		out, err := anomalia.Characterize(prev, cur, step.Abnormal)
		if err != nil {
			t.Fatal(err)
		}
		for _, rep := range out.Reports {
			iso, ok := step.TruthIsolated(rep.Device)
			if !ok || rep.Class == anomalia.Unresolved {
				continue
			}
			total++
			if iso == (rep.Class == anomalia.Isolated) {
				agree++
			}
		}
	}
	if total == 0 {
		t.Fatal("no devices compared")
	}
	if rate := float64(agree) / float64(total); rate < 0.95 {
		t.Errorf("ground-truth agreement = %.2f, want >= 0.95", rate)
	}
}
