package anomalia

import "anomalia/internal/dimension"

// Dimensioning helpers (Section VII-A of the paper): choose the
// consistency radius r and density threshold τ so that the probability of
// more than τ independent isolated errors striking devices close to each
// other — which the model would misread as one massive anomaly — stays
// negligible.

// TuneTau returns the smallest density threshold τ such that
// P{F_r(j) > τ} < eps, where F_r(j) counts the devices within radius r of
// a device that are hit by independent isolated errors, n is the
// population, d the number of services, and b the per-device
// isolated-error probability per observation window.
func TuneTau(n int, r float64, d int, b, eps float64) (int, error) {
	return dimension.TuneTau(n, r, d, b, eps)
}

// TuneRadius returns the largest consistency radius (searched downward
// from just under 1/4 in steps of 0.001) for which P{F_r(j) > tau} < eps.
func TuneRadius(n, d, tau int, b, eps float64) (float64, error) {
	return dimension.TuneRadius(n, d, tau, b, eps, 0.249, 0.001)
}

// NeighborhoodCDF returns P{N_r(j) <= m}: the probability that at most m
// of the n-1 other devices (placed uniformly in the QoS space) lie in the
// 2r-vicinity of a device — the paper's Figure 6(a).
func NeighborhoodCDF(n int, r float64, d, m int) (float64, error) {
	return dimension.NeighborhoodCDF(n, 2*r, d, m)
}

// IsolatedImpactCDF returns P{F_r(j) <= tau} for the radius-r error ball
// — the paper's Figure 6(b). The complement is the probability that
// coincident isolated errors could masquerade as a massive anomaly.
func IsolatedImpactCDF(n int, r float64, d, tau int, b float64) (float64, error) {
	return dimension.ImpactCDFFast(n, r, d, tau, b)
}
