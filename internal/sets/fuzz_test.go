package sets

import "testing"

// FuzzBitsAlgebra checks De Morgan-ish identities of the bitset algebra
// on arbitrary member lists: |A| + |B| = |A ∪ B| + |A ∩ B|, and
// A \ B = A ∩ ¬B behaviourally.
func FuzzBitsAlgebra(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{3, 4, 5})
	f.Add([]byte{}, []byte{0})
	f.Fuzz(func(t *testing.T, xs, ys []byte) {
		const universe = 200
		a, b := NewBits(universe), NewBits(universe)
		for _, x := range xs {
			a.Add(int(x) % universe)
		}
		for _, y := range ys {
			b.Add(int(y) % universe)
		}
		union := a.Clone()
		union.Or(b)
		inter := a.Clone()
		inter.And(b)
		if a.Len()+b.Len() != union.Len()+inter.Len() {
			t.Fatalf("inclusion-exclusion violated: |A|=%d |B|=%d |A∪B|=%d |A∩B|=%d",
				a.Len(), b.Len(), union.Len(), inter.Len())
		}
		diff := a.Clone()
		diff.AndNot(b)
		if diff.Len() != a.Len()-inter.Len() {
			t.Fatalf("difference size wrong")
		}
		if diff.Intersects(b) {
			t.Fatal("A \\ B intersects B")
		}
		if !diff.SubsetOf(a) || !inter.SubsetOf(union) {
			t.Fatal("subset laws violated")
		}
		// Round trip through Members.
		rebuilt := BitsOf(universe, a.Members(nil)...)
		if !rebuilt.Equal(a) {
			t.Fatal("Members/BitsOf round trip changed the set")
		}
	})
}

// FuzzCanonIdempotent: Canon is idempotent and produces sorted unique
// output whose elements all come from the input.
func FuzzCanonIdempotent(f *testing.F) {
	f.Add([]byte{5, 1, 5, 3})
	f.Fuzz(func(t *testing.T, raw []byte) {
		in := make([]int, len(raw))
		for i, b := range raw {
			in[i] = int(b)
		}
		once := Canon(CloneInts(in))
		twice := Canon(CloneInts(once))
		if !EqualInts(once, twice) {
			t.Fatal("Canon not idempotent")
		}
		for i := 1; i < len(once); i++ {
			if once[i-1] >= once[i] {
				t.Fatal("Canon output not strictly increasing")
			}
		}
		for _, v := range once {
			if !ContainsInt(once, v) {
				t.Fatal("ContainsInt broken on Canon output")
			}
		}
	})
}
