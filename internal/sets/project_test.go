package sets

import "testing"

// TestProjectInto: members map through rank into the destination
// universe, without clearing dst, and out-of-universe ranks are dropped
// like any other Add.
func TestProjectInto(t *testing.T) {
	t.Parallel()

	b := BitsOf(10, 1, 4, 7, 9)
	rank := []int32{9, 0, 8, 1, 2, 7, 3, 5, 4, 6}
	dst := BitsOf(8, 6) // pre-existing member must survive
	b.ProjectInto(dst, rank)
	want := BitsOf(8, 6, 0, 2, 5) // rank[1]=0, rank[4]=2, rank[7]=5; rank[9]=6 joins existing
	if !dst.Equal(want) {
		t.Fatalf("ProjectInto = %v, want %v", dst, want)
	}

	tiny := NewBits(3)
	b.ProjectInto(tiny, rank) // ranks 5, 6 fall outside [0,3)
	if got := tiny.String(); got != "{0 2}" {
		t.Fatalf("clamped projection = %s, want {0 2}", got)
	}

	empty := NewBits(10)
	out := NewBits(4)
	empty.ProjectInto(out, rank)
	if !out.Empty() {
		t.Fatalf("empty projection added members: %v", out)
	}
}
