package sets

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitsBasic(t *testing.T) {
	t.Parallel()

	b := NewBits(130)
	if !b.Empty() {
		t.Fatal("new bitset must be empty")
	}
	for _, i := range []int{0, 1, 63, 64, 65, 128, 129} {
		b.Add(i)
		if !b.Has(i) {
			t.Errorf("Has(%d) = false after Add", i)
		}
	}
	if got, want := b.Len(), 7; got != want {
		t.Errorf("Len() = %d, want %d", got, want)
	}
	b.Remove(64)
	if b.Has(64) {
		t.Error("Has(64) = true after Remove")
	}
	if got, want := b.Len(), 6; got != want {
		t.Errorf("Len() = %d, want %d", got, want)
	}
}

func TestBitsOutOfRange(t *testing.T) {
	t.Parallel()

	b := NewBits(10)
	b.Add(-1)
	b.Add(10)
	b.Add(1000)
	if !b.Empty() {
		t.Error("out-of-universe Add must be ignored")
	}
	if b.Has(-1) || b.Has(10) {
		t.Error("out-of-universe Has must be false")
	}
	b.Remove(-1) // must not panic
	b.Remove(99)
}

func TestBitsOf(t *testing.T) {
	t.Parallel()

	b := BitsOf(8, 3, 1, 5, 3)
	want := []int{1, 3, 5}
	if got := b.Members(nil); !EqualInts(got, want) {
		t.Errorf("Members() = %v, want %v", got, want)
	}
}

func TestBitsSetOps(t *testing.T) {
	t.Parallel()

	tests := []struct {
		name string
		a, b []int
		op   func(a, b *Bits)
		want []int
	}{
		{"union", []int{1, 2}, []int{2, 70}, (*Bits).Or, []int{1, 2, 70}},
		{"intersection", []int{1, 2, 70}, []int{2, 70, 99}, (*Bits).And, []int{2, 70}},
		{"difference", []int{1, 2, 70}, []int{2}, (*Bits).AndNot, []int{1, 70}},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			a := BitsOf(128, tt.a...)
			b := BitsOf(128, tt.b...)
			tt.op(a, b)
			if got := a.Members(nil); !EqualInts(got, tt.want) {
				t.Errorf("got %v, want %v", got, tt.want)
			}
		})
	}
}

func TestBitsSubsetEqual(t *testing.T) {
	t.Parallel()

	a := BitsOf(100, 1, 2, 3)
	b := BitsOf(100, 1, 2, 3, 99)
	if !a.SubsetOf(b) {
		t.Error("a must be subset of b")
	}
	if b.SubsetOf(a) {
		t.Error("b must not be subset of a")
	}
	if !a.SubsetOf(a.Clone()) {
		t.Error("a must be subset of its clone")
	}
	if !a.Equal(a.Clone()) {
		t.Error("a must equal its clone")
	}
	if a.Equal(b) {
		t.Error("a must not equal b")
	}
}

func TestBitsIntersection(t *testing.T) {
	t.Parallel()

	a := BitsOf(200, 0, 64, 128, 199)
	b := BitsOf(200, 64, 199)
	if got, want := a.IntersectionLen(b), 2; got != want {
		t.Errorf("IntersectionLen = %d, want %d", got, want)
	}
	if !a.Intersects(b) {
		t.Error("Intersects must be true")
	}
	c := BitsOf(200, 1, 2)
	if a.Intersects(c) {
		t.Error("Intersects must be false for disjoint sets")
	}
}

func TestBitsMinForEach(t *testing.T) {
	t.Parallel()

	b := BitsOf(300, 250, 17, 90)
	min, ok := b.Min()
	if !ok || min != 17 {
		t.Errorf("Min() = %d,%v want 17,true", min, ok)
	}
	var seen []int
	b.ForEach(func(i int) bool {
		seen = append(seen, i)
		return len(seen) < 2
	})
	if !EqualInts(seen, []int{17, 90}) {
		t.Errorf("ForEach early stop saw %v", seen)
	}
	if _, ok := NewBits(10).Min(); ok {
		t.Error("Min of empty set must report !ok")
	}
}

func TestBitsKeyCanonical(t *testing.T) {
	t.Parallel()

	a := BitsOf(128, 5, 77)
	b := BitsOf(128, 77, 5)
	if a.Key() != b.Key() {
		t.Error("equal sets must have equal keys")
	}
	c := BitsOf(128, 5)
	if a.Key() == c.Key() {
		t.Error("different sets must have different keys")
	}
}

func TestBitsClearClone(t *testing.T) {
	t.Parallel()

	a := BitsOf(64, 1, 2, 3)
	c := a.Clone()
	a.Clear()
	if !a.Empty() {
		t.Error("Clear must empty the set")
	}
	if c.Len() != 3 {
		t.Error("Clone must be independent of the original")
	}
	if got, want := a.Universe(), 64; got != want {
		t.Errorf("Universe() = %d, want %d", got, want)
	}
}

// TestBitsQuickAgainstMap checks bitset operations against a reference
// map-based implementation on random inputs.
func TestBitsQuickAgainstMap(t *testing.T) {
	t.Parallel()

	const universe = 150
	f := func(xs, ys []uint8) bool {
		a, b := NewBits(universe), NewBits(universe)
		am, bm := map[int]bool{}, map[int]bool{}
		for _, x := range xs {
			i := int(x) % universe
			a.Add(i)
			am[i] = true
		}
		for _, y := range ys {
			i := int(y) % universe
			b.Add(i)
			bm[i] = true
		}
		if a.Len() != len(am) || b.Len() != len(bm) {
			return false
		}
		u := a.Clone()
		u.Or(b)
		inter := a.Clone()
		inter.And(b)
		diff := a.Clone()
		diff.AndNot(b)
		wantInter := 0
		for k := range am {
			if bm[k] {
				wantInter++
			}
		}
		if inter.Len() != wantInter || a.IntersectionLen(b) != wantInter {
			return false
		}
		if u.Len() != len(am)+len(bm)-wantInter {
			return false
		}
		if diff.Len() != len(am)-wantInter {
			return false
		}
		return a.Intersects(b) == (wantInter > 0)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkBitsIntersectionLen(b *testing.B) {
	x := NewBits(1024)
	y := NewBits(1024)
	for i := 0; i < 1024; i += 3 {
		x.Add(i)
	}
	for i := 0; i < 1024; i += 5 {
		y.Add(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.IntersectionLen(y)
	}
}
