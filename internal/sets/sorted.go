package sets

// Sorted is an ascending, duplicate-free list of int32 indices — the
// neighbour-row representation of the sparse motion-graph adjacency
// (internal/motion stores one Sorted view per vertex into a shared CSR
// arena). int32 keeps rows at half the footprint of []int while covering
// every realistic vertex count; the motion graph's local indices are
// bounded by the device population.
//
// A Sorted is a plain slice: rows alias their arena and must be treated
// as read-only by consumers, mirroring the ownership rule of
// motion.Graph.Ids.
type Sorted []int32

// Len returns the number of elements.
func (s Sorted) Len() int { return len(s) }

// Has reports whether v is an element, by binary search.
func (s Sorted) Has(v int32) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == v
}

// ForEach calls fn for every element in increasing order. It stops early
// if fn returns false.
func (s Sorted) ForEach(fn func(v int32) bool) {
	for _, v := range s {
		if !fn(v) {
			return
		}
	}
}

// IntersectInto appends the intersection s ∩ o to dst and returns the
// extended slice. dst must not alias s or o.
func (s Sorted) IntersectInto(o, dst Sorted) Sorted {
	i, j := 0, 0
	for i < len(s) && j < len(o) {
		switch {
		case s[i] < o[j]:
			i++
		case s[i] > o[j]:
			j++
		default:
			dst = append(dst, s[i])
			i++
			j++
		}
	}
	return dst
}

// IntersectPositions calls fn with the position (index into verts) of
// every element of verts that is also an element of s, in increasing
// order — the densification primitive of the sparse clique enumeration:
// verts is a subgraph's sub-universe and the positions index its dense
// bitsets.
func (s Sorted) IntersectPositions(verts Sorted, fn func(pos int)) {
	i, j := 0, 0
	for i < len(s) && j < len(verts) {
		switch {
		case s[i] < verts[j]:
			i++
		case s[i] > verts[j]:
			j++
		default:
			fn(j)
			i++
			j++
		}
	}
}

// InsertInto appends the elements of s with v inserted in order to dst
// and returns the extended slice (v is not duplicated when already
// present). dst must not alias s.
func (s Sorted) InsertInto(v int32, dst Sorted) Sorted {
	i := 0
	for ; i < len(s) && s[i] < v; i++ {
		dst = append(dst, s[i])
	}
	dst = append(dst, v)
	if i < len(s) && s[i] == v {
		i++
	}
	return append(dst, s[i:]...)
}
