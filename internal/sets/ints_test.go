package sets

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestCanon(t *testing.T) {
	t.Parallel()

	tests := []struct {
		name string
		in   []int
		want []int
	}{
		{"nil", nil, nil},
		{"single", []int{4}, []int{4}},
		{"sorted", []int{1, 2, 3}, []int{1, 2, 3}},
		{"reverse", []int{3, 2, 1}, []int{1, 2, 3}},
		{"dups", []int{5, 1, 5, 1, 5}, []int{1, 5}},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			got := Canon(CloneInts(tt.in))
			if !EqualInts(got, tt.want) {
				t.Errorf("Canon(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestIntSliceOps(t *testing.T) {
	t.Parallel()

	a := []int{1, 3, 5, 7}
	b := []int{3, 4, 7, 9}

	if got, want := UnionInts(a, b), []int{1, 3, 4, 5, 7, 9}; !EqualInts(got, want) {
		t.Errorf("UnionInts = %v, want %v", got, want)
	}
	if got, want := IntersectInts(a, b), []int{3, 7}; !EqualInts(got, want) {
		t.Errorf("IntersectInts = %v, want %v", got, want)
	}
	if got, want := DiffInts(a, b), []int{1, 5}; !EqualInts(got, want) {
		t.Errorf("DiffInts = %v, want %v", got, want)
	}
	if got, want := DiffInts(b, a), []int{4, 9}; !EqualInts(got, want) {
		t.Errorf("DiffInts = %v, want %v", got, want)
	}
}

// TestIntoVariantsMatch: the append-into-buffer variants must agree with
// their allocating counterparts on random sorted inputs, append after any
// existing prefix, and reuse the buffer's capacity when truncated.
func TestIntoVariantsMatch(t *testing.T) {
	t.Parallel()

	rng := rand.New(rand.NewSource(99))
	randSet := func() []int {
		s := make([]int, rng.Intn(12))
		for i := range s {
			s[i] = rng.Intn(20)
		}
		return Canon(s)
	}
	buf := []int(nil)
	for trial := 0; trial < 200; trial++ {
		a, b := randSet(), randSet()

		buf = UnionIntsInto(buf[:0], a, b)
		if want := UnionInts(a, b); !EqualInts(buf, want) {
			t.Fatalf("UnionIntsInto(%v, %v) = %v, want %v", a, b, buf, want)
		}
		buf = IntersectIntsInto(buf[:0], a, b)
		if want := IntersectInts(a, b); !EqualInts(buf, want) {
			t.Fatalf("IntersectIntsInto(%v, %v) = %v, want %v", a, b, buf, want)
		}
		buf = DiffIntsInto(buf[:0], a, b)
		if want := DiffInts(a, b); !EqualInts(buf, want) {
			t.Fatalf("DiffIntsInto(%v, %v) = %v, want %v", a, b, buf, want)
		}
	}

	// The variants append after whatever the buffer already holds.
	got := UnionIntsInto([]int{-1}, []int{2}, []int{3})
	if want := []int{-1, 2, 3}; !EqualInts(got, want) {
		t.Errorf("UnionIntsInto with prefix = %v, want %v", got, want)
	}
}

// TestIntoVariantsNoAlloc: with a warm buffer of sufficient capacity the
// Into variants must not allocate — the property the characterization
// hot path relies on.
func TestIntoVariantsNoAlloc(t *testing.T) {
	a := []int{1, 3, 5, 7, 9, 11}
	b := []int{2, 3, 6, 7, 10, 11}
	buf := make([]int, 0, len(a)+len(b))
	if n := testing.AllocsPerRun(100, func() {
		buf = UnionIntsInto(buf[:0], a, b)
		buf = IntersectIntsInto(buf[:0], a, b)
		buf = DiffIntsInto(buf[:0], a, b)
	}); n != 0 {
		t.Errorf("Into variants allocated %.1f times per run with warm buffer", n)
	}
}

func TestSubsetContains(t *testing.T) {
	t.Parallel()

	if !SubsetInts([]int{2, 4}, []int{1, 2, 3, 4}) {
		t.Error("expected subset")
	}
	if SubsetInts([]int{2, 8}, []int{1, 2, 3, 4}) {
		t.Error("expected not subset")
	}
	if !SubsetInts(nil, []int{1}) {
		t.Error("empty set is subset of everything")
	}
	if !ContainsInt([]int{1, 5, 9}, 5) || ContainsInt([]int{1, 5, 9}, 4) {
		t.Error("ContainsInt misbehaved")
	}
}

func TestSortSets(t *testing.T) {
	t.Parallel()

	family := [][]int{{2, 3}, {1, 9}, {1, 2, 3}, {1, 2}}
	SortSets(family)
	want := [][]int{{1, 2}, {1, 2, 3}, {1, 9}, {2, 3}}
	for i := range want {
		if !EqualInts(family[i], want[i]) {
			t.Fatalf("SortSets order = %v, want %v", family, want)
		}
	}
}

func TestCloneInts(t *testing.T) {
	t.Parallel()

	if CloneInts(nil) != nil {
		t.Error("CloneInts(nil) must be nil")
	}
	orig := []int{1, 2}
	c := CloneInts(orig)
	c[0] = 99
	if orig[0] != 1 {
		t.Error("CloneInts must copy")
	}
}

// TestIntsQuickAgainstBits cross-checks the sorted-slice algebra against
// the bitset algebra on random inputs.
func TestIntsQuickAgainstBits(t *testing.T) {
	t.Parallel()

	const universe = 120
	f := func(xs, ys []uint8) bool {
		var a, b []int
		for _, x := range xs {
			a = append(a, int(x)%universe)
		}
		for _, y := range ys {
			b = append(b, int(y)%universe)
		}
		a, b = Canon(a), Canon(b)
		if !sort.IntsAreSorted(a) || !sort.IntsAreSorted(b) {
			return false
		}
		ab, bb := BitsOf(universe, a...), BitsOf(universe, b...)

		u := ab.Clone()
		u.Or(bb)
		if !EqualInts(UnionInts(a, b), u.Members(nil)) {
			return false
		}
		in := ab.Clone()
		in.And(bb)
		if !EqualInts(IntersectInts(a, b), in.Members(nil)) {
			return false
		}
		df := ab.Clone()
		df.AndNot(bb)
		if !EqualInts(DiffInts(a, b), df.Members(nil)) {
			return false
		}
		return SubsetInts(a, b) == ab.SubsetOf(bb)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
