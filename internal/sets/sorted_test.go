package sets

import (
	"math/rand"
	"testing"
)

func sortedOf(vs ...int32) Sorted { return Sorted(vs) }

func TestSortedHas(t *testing.T) {
	s := sortedOf(1, 3, 7, 8, 20)
	for _, v := range s {
		if !s.Has(v) {
			t.Errorf("Has(%d) = false, want true", v)
		}
	}
	for _, v := range []int32{-1, 0, 2, 9, 19, 21, 1 << 30} {
		if s.Has(v) {
			t.Errorf("Has(%d) = true, want false", v)
		}
	}
	if Sorted(nil).Has(0) {
		t.Error("empty Sorted claims membership")
	}
}

func TestSortedForEach(t *testing.T) {
	s := sortedOf(2, 4, 6)
	var got []int32
	s.ForEach(func(v int32) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 3 || got[0] != 2 || got[2] != 6 {
		t.Errorf("ForEach visited %v", got)
	}
	count := 0
	s.ForEach(func(v int32) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("ForEach ignored early stop: %d visits", count)
	}
}

func TestSortedIntersectInto(t *testing.T) {
	a := sortedOf(1, 2, 5, 9, 12)
	b := sortedOf(0, 2, 9, 12, 40)
	got := a.IntersectInto(b, nil)
	want := sortedOf(2, 9, 12)
	if len(got) != len(want) {
		t.Fatalf("intersection %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("intersection %v, want %v", got, want)
		}
	}
	if out := a.IntersectInto(nil, nil); len(out) != 0 {
		t.Errorf("intersection with empty = %v", out)
	}
	// Duplicates in the second operand must not duplicate output (the
	// receiver is strictly increasing).
	if out := a.IntersectInto(sortedOf(2, 2, 2), nil); len(out) != 1 || out[0] != 2 {
		t.Errorf("intersection with duplicates = %v", out)
	}
}

func TestSortedIntersectPositions(t *testing.T) {
	s := sortedOf(3, 5, 8)
	verts := sortedOf(1, 3, 5, 7, 8)
	var pos []int
	s.IntersectPositions(verts, func(p int) { pos = append(pos, p) })
	want := []int{1, 2, 4}
	if len(pos) != len(want) {
		t.Fatalf("positions %v, want %v", pos, want)
	}
	for i := range pos {
		if pos[i] != want[i] {
			t.Fatalf("positions %v, want %v", pos, want)
		}
	}
}

func TestSortedInsertInto(t *testing.T) {
	s := sortedOf(1, 5, 9)
	for _, tc := range []struct {
		v    int32
		want Sorted
	}{
		{0, sortedOf(0, 1, 5, 9)},
		{1, sortedOf(1, 5, 9)},
		{6, sortedOf(1, 5, 6, 9)},
		{9, sortedOf(1, 5, 9)},
		{11, sortedOf(1, 5, 9, 11)},
	} {
		got := s.InsertInto(tc.v, nil)
		if len(got) != len(tc.want) {
			t.Fatalf("InsertInto(%d) = %v, want %v", tc.v, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("InsertInto(%d) = %v, want %v", tc.v, got, tc.want)
			}
		}
	}
	if got := Sorted(nil).InsertInto(4, nil); len(got) != 1 || got[0] != 4 {
		t.Errorf("InsertInto on empty = %v", got)
	}
}

func TestBitsResize(t *testing.T) {
	b := NewBits(100)
	b.Add(3)
	b.Add(99)
	b.Resize(10)
	if b.Universe() != 10 {
		t.Fatalf("universe %d after Resize(10)", b.Universe())
	}
	if !b.Empty() {
		t.Fatalf("Resize left members: %v", b)
	}
	b.Add(9)
	b.Resize(200)
	if b.Universe() != 200 || !b.Empty() {
		t.Fatalf("Resize(200): universe %d empty=%v", b.Universe(), b.Empty())
	}
	b.Add(150)
	if !b.Has(150) || b.Len() != 1 {
		t.Fatalf("membership after growth: %v", b)
	}
	b.Resize(-5)
	if b.Universe() != 0 || !b.Empty() {
		t.Fatalf("Resize(-5): universe %d", b.Universe())
	}
}

// TestSortedAgainstBitsOracle cross-checks the Sorted operations against
// the dense bitset algebra on random universes.
func TestSortedAgainstBitsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		ab, bb := NewBits(n), NewBits(n)
		var as, bs Sorted
		for v := 0; v < n; v++ {
			if rng.Intn(3) == 0 {
				ab.Add(v)
				as = append(as, int32(v))
			}
			if rng.Intn(3) == 0 {
				bb.Add(v)
				bs = append(bs, int32(v))
			}
		}
		for v := 0; v < n; v++ {
			if as.Has(int32(v)) != ab.Has(v) {
				t.Fatalf("trial %d: Has(%d) disagrees with bitset", trial, v)
			}
		}
		inter := as.IntersectInto(bs, nil)
		ib := ab.Clone()
		ib.And(bb)
		if len(inter) != ib.Len() {
			t.Fatalf("trial %d: intersection size %d, bitset says %d", trial, len(inter), ib.Len())
		}
		for _, v := range inter {
			if !ib.Has(int(v)) {
				t.Fatalf("trial %d: spurious intersection member %d", trial, v)
			}
		}
	}
}
