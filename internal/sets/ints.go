package sets

import "slices"

// Ints provides set algebra over sorted, duplicate-free []int slices.
// These are the exchange format between packages (bitsets stay internal to
// hot loops); keeping them sorted makes outputs deterministic and
// comparisons cheap.

// Canon sorts s in place, removes duplicates and returns the shortened
// slice. It is the canonical form used across the module.
func Canon(s []int) []int {
	if len(s) < 2 {
		return s
	}
	slices.Sort(s)
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// ContainsInt reports whether sorted slice s contains v.
func ContainsInt(s []int, v int) bool {
	_, ok := slices.BinarySearch(s, v)
	return ok
}

// EqualInts reports whether two sorted slices hold the same elements.
func EqualInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SubsetInts reports whether every element of sorted slice a appears in
// sorted slice b.
func SubsetInts(a, b []int) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] > b[j]:
			j++
		default:
			return false
		}
	}
	return i == len(a)
}

// UnionInts returns the sorted union of two sorted slices in a new slice.
func UnionInts(a, b []int) []int {
	return UnionIntsInto(make([]int, 0, len(a)+len(b)), a, b)
}

// UnionIntsInto appends the sorted union of two sorted slices to dst and
// returns the extended slice. Pass a truncated scratch buffer (buf[:0])
// to reuse its capacity across calls; dst must not alias a or b.
func UnionIntsInto(dst, a, b []int) []int {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		case a[i] > b[j]:
			dst = append(dst, b[j])
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	dst = append(dst, a[i:]...)
	dst = append(dst, b[j:]...)
	return dst
}

// IntersectInts returns the sorted intersection of two sorted slices
// (nil when empty).
func IntersectInts(a, b []int) []int {
	return IntersectIntsInto(nil, a, b)
}

// IntersectIntsInto appends the sorted intersection of two sorted slices
// to dst and returns the extended slice. Pass a truncated scratch buffer
// (buf[:0]) to reuse its capacity across calls; dst must not alias a or b.
func IntersectIntsInto(dst, a, b []int) []int {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// DiffInts returns the sorted difference a \ b of two sorted slices
// (nil when empty).
func DiffInts(a, b []int) []int {
	return DiffIntsInto(nil, a, b)
}

// DiffIntsInto appends the sorted difference a \ b of two sorted slices
// to dst and returns the extended slice. Pass a truncated scratch buffer
// (buf[:0]) to reuse its capacity across calls; dst must not alias a or b.
func DiffIntsInto(dst, a, b []int) []int {
	i, j := 0, 0
	for i < len(a) {
		switch {
		case j >= len(b) || a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		case a[i] > b[j]:
			j++
		default:
			i++
			j++
		}
	}
	return dst
}

// CloneInts returns a copy of s (nil stays nil).
func CloneInts(s []int) []int {
	if s == nil {
		return nil
	}
	out := make([]int, len(s))
	copy(out, s)
	return out
}

// SortSets orders a family of sorted sets lexicographically (shorter first
// on ties of the common prefix), giving deterministic output for families
// produced from map iteration.
func SortSets(family [][]int) {
	slices.SortFunc(family, slices.Compare)
}
