// Package sets provides the small-set algebra used by the combinatorial
// routines of the anomaly characterizer: dense bitsets over a bounded
// universe of device indices and sorted integer slices.
//
// Motion enumeration, anomaly-partition search and the Theorem 7 collection
// search all manipulate many small subsets of the abnormal-device set A_k;
// bitsets keep those operations allocation-free and branch-cheap.
package sets

import (
	"math/bits"
	"strconv"
	"strings"
)

const wordBits = 64

// Bits is a dense bitset over the universe [0, n). The zero value is an
// empty set over an empty universe; use NewBits to size it.
//
// All binary operations require both operands to share the same universe
// size; mixing sizes is a programmer error and results are unspecified
// beyond the shorter universe.
type Bits struct {
	words []uint64
	n     int
}

// NewBits returns an empty bitset over the universe [0, n).
func NewBits(n int) *Bits {
	if n < 0 {
		n = 0
	}
	return &Bits{
		words: make([]uint64, (n+wordBits-1)/wordBits),
		n:     n,
	}
}

// BitsOf returns a bitset over [0, n) holding exactly the given members.
// Members outside [0, n) are ignored.
func BitsOf(n int, members ...int) *Bits {
	b := NewBits(n)
	for _, m := range members {
		b.Add(m)
	}
	return b
}

// NewBitsRows returns count empty bitsets over [0, n), all backed by a
// single shared words arena — 3 allocations however many rows, where
// one NewBits per row costs 2·count. This is the slab behind the dense
// motion-graph adjacency; rows must not be Resized (Resize would leave
// the arena but every other operation keeps the backing shared).
func NewBitsRows(count, n int) []*Bits {
	if count < 0 {
		count = 0
	}
	if n < 0 {
		n = 0
	}
	wpr := (n + wordBits - 1) / wordBits
	arena := make([]uint64, count*wpr)
	rows := make([]Bits, count)
	out := make([]*Bits, count)
	for i := range rows {
		rows[i] = Bits{words: arena[i*wpr : (i+1)*wpr : (i+1)*wpr], n: n}
		out[i] = &rows[i]
	}
	return out
}

// Universe returns the size n of the universe [0, n).
func (b *Bits) Universe() int { return b.n }

// Add inserts i into the set. Out-of-universe indices are ignored.
func (b *Bits) Add(i int) {
	if i < 0 || i >= b.n {
		return
	}
	b.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Remove deletes i from the set. Out-of-universe indices are ignored.
func (b *Bits) Remove(i int) {
	if i < 0 || i >= b.n {
		return
	}
	b.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Has reports whether i is a member.
func (b *Bits) Has(i int) bool {
	if i < 0 || i >= b.n {
		return false
	}
	return b.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Len returns the cardinality of the set.
func (b *Bits) Len() int {
	total := 0
	for _, w := range b.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// Empty reports whether the set has no members.
func (b *Bits) Empty() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the set.
func (b *Bits) Clone() *Bits {
	c := &Bits{words: make([]uint64, len(b.words)), n: b.n}
	copy(c.words, b.words)
	return c
}

// CopyFrom overwrites b with the contents of o. Both sets must share
// the same universe size.
func (b *Bits) CopyFrom(o *Bits) {
	copy(b.words, o.words)
}

// Resize clears b and sets its universe to [0, n), reusing the existing
// words allocation when it is large enough. It is the recycling hook of
// scratch pools whose leased sets serve universes of varying size (the
// sparse clique enumeration densifies a different neighbourhood subgraph
// per vertex).
func (b *Bits) Resize(n int) {
	if n < 0 {
		n = 0
	}
	w := (n + wordBits - 1) / wordBits
	if cap(b.words) < w {
		b.words = make([]uint64, w)
	} else {
		b.words = b.words[:w]
		for i := range b.words {
			b.words[i] = 0
		}
	}
	b.n = n
}

// Clear removes all members, keeping the universe.
func (b *Bits) Clear() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Or sets b to the union b ∪ o.
func (b *Bits) Or(o *Bits) {
	for i := range b.words {
		if i < len(o.words) {
			b.words[i] |= o.words[i]
		}
	}
}

// And sets b to the intersection b ∩ o.
func (b *Bits) And(o *Bits) {
	for i := range b.words {
		if i < len(o.words) {
			b.words[i] &= o.words[i]
		} else {
			b.words[i] = 0
		}
	}
}

// AndNot sets b to the difference b \ o.
func (b *Bits) AndNot(o *Bits) {
	for i := range b.words {
		if i < len(o.words) {
			b.words[i] &^= o.words[i]
		}
	}
}

// Intersects reports whether b ∩ o is non-empty.
func (b *Bits) Intersects(o *Bits) bool {
	n := len(b.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		if b.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// IntersectionLen returns |b ∩ o| without allocating.
func (b *Bits) IntersectionLen(o *Bits) int {
	n := len(b.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	total := 0
	for i := 0; i < n; i++ {
		total += bits.OnesCount64(b.words[i] & o.words[i])
	}
	return total
}

// SubsetOf reports whether every member of b is a member of o.
func (b *Bits) SubsetOf(o *Bits) bool {
	for i, w := range b.words {
		var ow uint64
		if i < len(o.words) {
			ow = o.words[i]
		}
		if w&^ow != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether b and o hold exactly the same members.
func (b *Bits) Equal(o *Bits) bool {
	longer, shorter := b.words, o.words
	if len(shorter) > len(longer) {
		longer, shorter = shorter, longer
	}
	for i, w := range shorter {
		if w != longer[i] {
			return false
		}
	}
	for _, w := range longer[len(shorter):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// ProjectInto adds rank[i] to dst for every member i of b — the
// local-index projection used to re-express a set over a compact
// sub-universe (e.g. graph-local indices into component-local ranks).
// dst is not cleared first; members whose rank falls outside dst's
// universe are ignored, like any other Add.
func (b *Bits) ProjectInto(dst *Bits, rank []int32) {
	b.ForEach(func(i int) bool {
		dst.Add(int(rank[i]))
		return true
	})
}

// Members appends the elements of the set, in increasing order, to dst and
// returns the extended slice. Pass nil to allocate.
func (b *Bits) Members(dst []int) []int {
	for wi, w := range b.words {
		base := wi * wordBits
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			dst = append(dst, base+tz)
			w &= w - 1
		}
	}
	return dst
}

// ForEach calls fn for every member in increasing order. It stops early if
// fn returns false.
func (b *Bits) ForEach(fn func(i int) bool) {
	for wi, w := range b.words {
		base := wi * wordBits
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			if !fn(base + tz) {
				return
			}
			w &= w - 1
		}
	}
}

// Min returns the smallest member and true, or (0, false) when empty.
func (b *Bits) Min() (int, bool) {
	for wi, w := range b.words {
		if w != 0 {
			return wi*wordBits + bits.TrailingZeros64(w), true
		}
	}
	return 0, false
}

// Key returns a canonical string key for use in maps. Two sets over the
// same universe have equal keys iff they are Equal.
func (b *Bits) Key() string {
	var sb strings.Builder
	sb.Grow(len(b.words) * 17)
	for _, w := range b.words {
		sb.WriteString(strconv.FormatUint(w, 16))
		sb.WriteByte(',')
	}
	return sb.String()
}

// String renders the set as "{a b c}" for debugging.
func (b *Bits) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	b.ForEach(func(i int) bool {
		if !first {
			sb.WriteByte(' ')
		}
		first = false
		sb.WriteString(strconv.Itoa(i))
		return true
	})
	sb.WriteByte('}')
	return sb.String()
}
