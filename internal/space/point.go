// Package space models the QoS space E = [0,1]^d of Section III-A: device
// positions (one coordinate per consumed service), the uniform norm used
// for the consistency radius, and system states S_k. The uniform-cell
// spatial index over states lives in the sibling package internal/grid.
package space

import (
	"errors"
	"fmt"
	"math"
)

// Dimension bounds accepted by the package. The paper evaluates d = 2; the
// implementation supports any small dimension.
const (
	MinDim = 1
	MaxDim = 16
)

// ErrDimension is returned when a dimension is outside [MinDim, MaxDim] or
// two points disagree on dimension.
var ErrDimension = errors.New("space: invalid or mismatched dimension")

// Point is a position in the QoS space E = [0,1]^d; coordinate i is the
// measured end-to-end quality of service s_i in [0,1].
type Point []float64

// Clone returns an independent copy of p.
func (p Point) Clone() Point {
	c := make(Point, len(p))
	copy(c, p)
	return c
}

// InUnitCube reports whether every coordinate lies in [0,1].
func (p Point) InUnitCube() bool {
	for _, x := range p {
		if x < 0 || x > 1 || math.IsNaN(x) {
			return false
		}
	}
	return true
}

// Clamp forces every coordinate into [0,1] in place and returns p.
func (p Point) Clamp() Point {
	for i, x := range p {
		switch {
		case x < 0 || math.IsNaN(x):
			p[i] = 0
		case x > 1:
			p[i] = 1
		}
	}
	return p
}

// Dist returns the uniform-norm (L-infinity) distance between a and b, the
// norm used throughout the paper (Section III-B). Both points must have
// the same dimension; mismatched points yield +Inf so that they are never
// considered close.
func Dist(a, b Point) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	max := 0.0
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > max {
			max = d
		}
	}
	return max
}

// Add returns a + b as a new point (no clamping).
func Add(a, b Point) (Point, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("adding %d-dim to %d-dim point: %w", len(b), len(a), ErrDimension)
	}
	out := make(Point, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out, nil
}

// Sub returns a - b as a new point.
func Sub(a, b Point) (Point, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("subtracting %d-dim from %d-dim point: %w", len(b), len(a), ErrDimension)
	}
	out := make(Point, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out, nil
}
