package space

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func pointFrom(raw []uint8, d int) Point {
	p := make(Point, d)
	for i := 0; i < d && i < len(raw); i++ {
		p[i] = float64(raw[i]) / 255
	}
	return p
}

// TestQuickMetricLaws: the uniform norm distance is a metric on the QoS
// space — identity, symmetry, triangle inequality.
func TestQuickMetricLaws(t *testing.T) {
	t.Parallel()

	f := func(ar, br, cr [8]uint8) bool {
		const d = 3
		a := pointFrom(ar[:], d)
		b := pointFrom(br[:], d)
		c := pointFrom(cr[:], d)
		if Dist(a, a) != 0 {
			return false
		}
		if Dist(a, b) != Dist(b, a) {
			return false
		}
		if Dist(a, b) < 0 {
			return false
		}
		return Dist(a, c) <= Dist(a, b)+Dist(b, c)+1e-12
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(23))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickDistDominatedByCoordinates: the uniform norm equals the largest
// per-coordinate gap and is bounded by each coordinate's contribution.
func TestQuickDistDominatedByCoordinates(t *testing.T) {
	t.Parallel()

	f := func(ar, br [4]uint8) bool {
		const d = 4
		a := pointFrom(ar[:], d)
		b := pointFrom(br[:], d)
		dist := Dist(a, b)
		max := 0.0
		for i := 0; i < d; i++ {
			gap := math.Abs(a[i] - b[i])
			if gap > dist+1e-15 {
				return false
			}
			if gap > max {
				max = gap
			}
		}
		return math.Abs(dist-max) < 1e-15
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(29))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickClampIdempotent: clamping is idempotent and lands in the cube.
func TestQuickClampIdempotent(t *testing.T) {
	t.Parallel()

	f := func(raw [6]int16) bool {
		p := make(Point, len(raw))
		for i, v := range raw {
			p[i] = float64(v) / 1000
		}
		p.Clamp()
		if !p.InUnitCube() {
			return false
		}
		q := p.Clone()
		q.Clamp()
		for i := range p {
			if p[i] != q[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(31))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickTranslationInvariance: translating both points by the same
// vector leaves the distance unchanged (the property that makes coherent
// group moves preserve r-consistency).
func TestQuickTranslationInvariance(t *testing.T) {
	t.Parallel()

	f := func(ar, br, dr [2]uint8) bool {
		const d = 2
		a := pointFrom(ar[:], d)
		b := pointFrom(br[:], d)
		delta := pointFrom(dr[:], d)
		a2, err := Add(a, delta)
		if err != nil {
			return false
		}
		b2, err := Add(b, delta)
		if err != nil {
			return false
		}
		return math.Abs(Dist(a, b)-Dist(a2, b2)) < 1e-12
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(37))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
