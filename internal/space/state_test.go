package space

import (
	"errors"
	"math"
	"testing"

	"anomalia/internal/stats"
)

func TestNewState(t *testing.T) {
	t.Parallel()

	s, err := NewState(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 5 || s.Dim() != 2 {
		t.Errorf("Len/Dim = %d/%d", s.Len(), s.Dim())
	}
	for j := 0; j < 5; j++ {
		p := s.At(j)
		if len(p) != 2 || p[0] != 0 || p[1] != 0 {
			t.Errorf("device %d not at origin: %v", j, p)
		}
	}
}

func TestNewStateValidation(t *testing.T) {
	t.Parallel()

	if _, err := NewState(5, 0); !errors.Is(err, ErrDimension) {
		t.Errorf("d=0 error = %v, want ErrDimension", err)
	}
	if _, err := NewState(5, MaxDim+1); !errors.Is(err, ErrDimension) {
		t.Errorf("d too large error = %v, want ErrDimension", err)
	}
	if _, err := NewState(-1, 2); !errors.Is(err, ErrIndex) {
		t.Errorf("n<0 error = %v, want ErrIndex", err)
	}
	if s, err := NewState(0, 1); err != nil || s.Len() != 0 {
		t.Errorf("empty state must be allowed: %v", err)
	}
}

func TestStateFromPoints(t *testing.T) {
	t.Parallel()

	s, err := StateFromPoints([][]float64{{0.1, 0.2}, {0.3, 0.4}})
	if err != nil {
		t.Fatal(err)
	}
	if s.At(1)[0] != 0.3 {
		t.Errorf("At(1) = %v", s.At(1))
	}
	if _, err := StateFromPoints(nil); err == nil {
		t.Error("empty input must error")
	}
	if _, err := StateFromPoints([][]float64{{1, 2}, {3}}); !errors.Is(err, ErrDimension) {
		t.Errorf("ragged input error = %v", err)
	}

	// The state must own its memory.
	raw := [][]float64{{0.5}}
	s2, err := StateFromPoints(raw)
	if err != nil {
		t.Fatal(err)
	}
	raw[0][0] = 0.9
	if s2.At(0)[0] != 0.5 {
		t.Error("StateFromPoints must copy input")
	}
}

func TestStateSet(t *testing.T) {
	t.Parallel()

	s, err := NewState(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Set(0, Point{0.5, 1.7}); err != nil {
		t.Fatal(err)
	}
	if got := s.At(0); got[0] != 0.5 || got[1] != 1 {
		t.Errorf("Set must clamp: %v", got)
	}
	if err := s.Set(5, Point{0, 0}); !errors.Is(err, ErrIndex) {
		t.Errorf("out-of-range Set error = %v", err)
	}
	if err := s.Set(0, Point{0}); !errors.Is(err, ErrDimension) {
		t.Errorf("dim-mismatch Set error = %v", err)
	}
}

func TestStateCloneIndependent(t *testing.T) {
	t.Parallel()

	s, err := StateFromPoints([][]float64{{0.1, 0.1}, {0.9, 0.9}})
	if err != nil {
		t.Fatal(err)
	}
	c := s.Clone()
	if err := c.Set(0, Point{0.7, 0.7}); err != nil {
		t.Fatal(err)
	}
	if s.At(0)[0] != 0.1 {
		t.Error("Clone must be independent")
	}
	if c.Dist(0, 1) >= s.Dist(0, 1) {
		t.Error("clone distances must reflect the clone's positions")
	}
}

func TestStateUniform(t *testing.T) {
	t.Parallel()

	s, err := NewState(500, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(1)
	s.Uniform(r.Float64)
	var sum float64
	for j := 0; j < s.Len(); j++ {
		p := s.At(j)
		if !p.InUnitCube() {
			t.Fatalf("device %d outside unit cube: %v", j, p)
		}
		sum += p[0]
	}
	mean := sum / float64(s.Len())
	if mean < 0.4 || mean > 0.6 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestAtClone(t *testing.T) {
	t.Parallel()

	s, err := StateFromPoints([][]float64{{0.3, 0.4}})
	if err != nil {
		t.Fatal(err)
	}
	p := s.AtClone(0)
	p[0] = 0.99
	if s.At(0)[0] != 0.3 {
		t.Error("AtClone must copy")
	}
}

// TestStateRejectsNonFinite: NaN and ±Inf coordinates must be refused by
// name — Clamp would silently rewrite NaN to 0 and an interval test
// cannot see it — and a refused Set must leave the position untouched.
func TestStateRejectsNonFinite(t *testing.T) {
	t.Parallel()

	nan := math.NaN()
	for _, bad := range []Point{{nan, 0.5}, {0.5, nan}, {math.Inf(1), 0}, {0, math.Inf(-1)}} {
		s, err := NewState(3, 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Set(1, Point{0.25, 0.75}); err != nil {
			t.Fatal(err)
		}
		if err := s.Set(1, bad); !errors.Is(err, ErrNonFinite) {
			t.Errorf("Set(%v) error = %v, want ErrNonFinite", bad, err)
		}
		if got := s.At(1); got[0] != 0.25 || got[1] != 0.75 {
			t.Errorf("rejected Set mutated position to %v", got)
		}
		if _, err := StateFromPoints([][]float64{{0.1, 0.2}, bad}); !errors.Is(err, ErrNonFinite) {
			t.Errorf("StateFromPoints(%v) error = %v, want ErrNonFinite", bad, err)
		}
	}
}
