package space

import (
	"fmt"
	"math"
)

// Grid is a uniform-cell spatial index over one state. With cell side
// equal to the query radius, all points within uniform-norm distance
// radius of a query point lie in the 3^d cells around the query cell,
// which makes 2r-neighbourhood queries O(points in the vicinity) instead
// of O(n).
type Grid struct {
	state *State
	side  float64
	cells map[uint64][]int
	res   int // cells per axis
}

// NewGrid indexes state with the given cell side (usually 2r). side must
// be positive.
func NewGrid(state *State, side float64) (*Grid, error) {
	if side <= 0 || math.IsNaN(side) {
		return nil, fmt.Errorf("grid cell side %v must be positive", side)
	}
	res := int(math.Ceil(1 / side))
	if res < 1 {
		res = 1
	}
	g := &Grid{
		state: state,
		side:  side,
		cells: make(map[uint64][]int, state.Len()),
		res:   res,
	}
	for j := 0; j < state.Len(); j++ {
		key := g.cellKey(state.At(j))
		g.cells[key] = append(g.cells[key], j)
	}
	return g, nil
}

// cellKey packs the per-axis cell coordinates of p into a single uint64
// (8 bits per axis are plenty: res <= ceil(1/side) and side >= 1/256 in
// practice; larger resolutions wrap, which only costs extra candidates,
// never correctness, because Within re-checks exact distances).
func (g *Grid) cellKey(p Point) uint64 {
	var key uint64
	for _, x := range p {
		c := int(x / g.side)
		if c < 0 {
			c = 0
		}
		if c >= g.res {
			c = g.res - 1
		}
		key = key<<8 | uint64(c&0xff)
	}
	return key
}

// Within appends to dst the indices of all devices at uniform-norm
// distance <= radius from the position of device j (including j itself)
// and returns the extended slice. radius must be <= the grid cell side for
// the index to be exhaustive; larger radii fall back to a full scan.
func (g *Grid) Within(j int, radius float64, dst []int) []int {
	if radius > g.side {
		for i := 0; i < g.state.Len(); i++ {
			if g.state.Dist(i, j) <= radius {
				dst = append(dst, i)
			}
		}
		return dst
	}
	p := g.state.At(j)
	return g.within(p, j, radius, dst)
}

// WithinPoint is like Within but takes an arbitrary query position.
// It never excludes any index.
func (g *Grid) WithinPoint(p Point, radius float64, dst []int) []int {
	if radius > g.side {
		for i := 0; i < g.state.Len(); i++ {
			if Dist(g.state.At(i), p) <= radius {
				dst = append(dst, i)
			}
		}
		return dst
	}
	return g.within(p, -1, radius, dst)
}

func (g *Grid) within(p Point, _ int, radius float64, dst []int) []int {
	d := g.state.Dim()
	base := make([]int, d)
	for i, x := range p {
		c := int(x / g.side)
		if c < 0 {
			c = 0
		}
		if c >= g.res {
			c = g.res - 1
		}
		base[i] = c
	}
	// Walk the 3^d neighbouring cells.
	offsets := make([]int, d)
	for i := range offsets {
		offsets[i] = -1
	}
	for {
		ok := true
		var key uint64
		for i := 0; i < d; i++ {
			c := base[i] + offsets[i]
			if c < 0 || c >= g.res {
				ok = false
				break
			}
			key = key<<8 | uint64(c&0xff)
		}
		if ok {
			for _, idx := range g.cells[key] {
				if Dist(g.state.At(idx), p) <= radius {
					dst = append(dst, idx)
				}
			}
		}
		// Next offset vector in {-1,0,1}^d.
		i := 0
		for ; i < d; i++ {
			offsets[i]++
			if offsets[i] <= 1 {
				break
			}
			offsets[i] = -1
		}
		if i == d {
			break
		}
	}
	return dst
}
