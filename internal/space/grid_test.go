package space

import (
	"sort"
	"testing"

	"anomalia/internal/stats"
)

// bruteWithin is the reference O(n) neighbourhood query.
func bruteWithin(s *State, p Point, radius float64) []int {
	var out []int
	for i := 0; i < s.Len(); i++ {
		if Dist(s.At(i), p) <= radius {
			out = append(out, i)
		}
	}
	return out
}

func TestNewGridValidation(t *testing.T) {
	t.Parallel()

	s, err := NewState(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewGrid(s, 0); err == nil {
		t.Error("zero cell side must error")
	}
	if _, err := NewGrid(s, -0.1); err == nil {
		t.Error("negative cell side must error")
	}
}

func TestGridMatchesBruteForce(t *testing.T) {
	t.Parallel()

	for _, d := range []int{1, 2, 3} {
		d := d
		t.Run(map[int]string{1: "1d", 2: "2d", 3: "3d"}[d], func(t *testing.T) {
			t.Parallel()
			r := stats.NewRNG(int64(100 + d))
			s, err := NewState(400, d)
			if err != nil {
				t.Fatal(err)
			}
			s.Uniform(r.Float64)
			const radius = 0.06
			g, err := NewGrid(s, radius)
			if err != nil {
				t.Fatal(err)
			}
			for j := 0; j < 50; j++ {
				got := g.Within(j, radius, nil)
				sort.Ints(got)
				want := bruteWithin(s, s.At(j), radius)
				if len(got) != len(want) {
					t.Fatalf("device %d: got %v, want %v", j, got, want)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("device %d: got %v, want %v", j, got, want)
					}
				}
			}
		})
	}
}

func TestGridWithinPoint(t *testing.T) {
	t.Parallel()

	r := stats.NewRNG(7)
	s, err := NewState(300, 2)
	if err != nil {
		t.Fatal(err)
	}
	s.Uniform(r.Float64)
	const radius = 0.05
	g, err := NewGrid(s, radius)
	if err != nil {
		t.Fatal(err)
	}
	queries := []Point{{0, 0}, {1, 1}, {0.5, 0.5}, {0.031, 0.97}}
	for _, q := range queries {
		got := g.WithinPoint(q, radius, nil)
		sort.Ints(got)
		want := bruteWithin(s, q, radius)
		if len(got) != len(want) {
			t.Fatalf("query %v: got %d hits, want %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %v: got %v, want %v", q, got, want)
			}
		}
	}
}

func TestGridRadiusLargerThanCell(t *testing.T) {
	t.Parallel()

	r := stats.NewRNG(9)
	s, err := NewState(200, 2)
	if err != nil {
		t.Fatal(err)
	}
	s.Uniform(r.Float64)
	g, err := NewGrid(s, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// Radius beyond the cell side falls back to the exhaustive scan.
	got := g.Within(0, 0.2, nil)
	sort.Ints(got)
	want := bruteWithin(s, s.At(0), 0.2)
	if len(got) != len(want) {
		t.Fatalf("fallback scan: got %d, want %d", len(got), len(want))
	}
	got2 := g.WithinPoint(Point{0.5, 0.5}, 0.3, nil)
	want2 := bruteWithin(s, Point{0.5, 0.5}, 0.3)
	if len(got2) != len(want2) {
		t.Fatalf("fallback point scan: got %d, want %d", len(got2), len(want2))
	}
}

func TestGridIncludesSelf(t *testing.T) {
	t.Parallel()

	s, err := StateFromPoints([][]float64{{0.5, 0.5}, {0.52, 0.5}, {0.9, 0.9}})
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGrid(s, 0.06)
	if err != nil {
		t.Fatal(err)
	}
	got := g.Within(0, 0.06, nil)
	sort.Ints(got)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("Within(0) = %v, want [0 1]", got)
	}
}

func TestGridAppendsToDst(t *testing.T) {
	t.Parallel()

	s, err := StateFromPoints([][]float64{{0.5, 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGrid(s, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	dst := []int{42}
	dst = g.Within(0, 0.1, dst)
	if len(dst) != 2 || dst[0] != 42 || dst[1] != 0 {
		t.Errorf("dst = %v, want [42 0]", dst)
	}
}

func BenchmarkGridWithin(b *testing.B) {
	r := stats.NewRNG(1)
	s, err := NewState(1000, 2)
	if err != nil {
		b.Fatal(err)
	}
	s.Uniform(r.Float64)
	g, err := NewGrid(s, 0.06)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]int, 0, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = g.Within(i%1000, 0.06, buf[:0])
	}
}
