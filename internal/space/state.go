package space

import (
	"errors"
	"fmt"
	"math"
)

// ErrIndex is returned for device indices outside [0, n).
var ErrIndex = errors.New("space: device index out of range")

// ErrNonFinite is returned when a coordinate is NaN or ±Inf. Interval
// tests cannot catch NaN (v < 0 || v > 1 is false for it) and Clamp
// would silently rewrite it to 0, so state mutation rejects non-finite
// coordinates by name before they can poison downstream geometry.
var ErrNonFinite = errors.New("space: non-finite coordinate")

// State is the system state S_k of Section III-A: the positions of n
// devices in E at one discrete time. Device identifiers are 0-based
// indices (the paper uses 1..n).
type State struct {
	dim int
	pts []Point
}

// NewState returns a state for n devices in d dimensions with all devices
// at the origin.
func NewState(n, d int) (*State, error) {
	if d < MinDim || d > MaxDim {
		return nil, fmt.Errorf("d = %d: %w", d, ErrDimension)
	}
	if n < 0 {
		return nil, fmt.Errorf("n = %d: %w", n, ErrIndex)
	}
	pts := make([]Point, n)
	backing := make([]float64, n*d)
	for i := range pts {
		pts[i] = Point(backing[i*d : (i+1)*d : (i+1)*d])
	}
	return &State{dim: d, pts: pts}, nil
}

// StateFromPoints builds a state from raw coordinates, copying them. All
// rows must share the same dimension.
func StateFromPoints(coords [][]float64) (*State, error) {
	if len(coords) == 0 {
		return nil, fmt.Errorf("empty state: %w", ErrDimension)
	}
	d := len(coords[0])
	s, err := NewState(len(coords), d)
	if err != nil {
		return nil, err
	}
	for i, row := range coords {
		if len(row) != d {
			return nil, fmt.Errorf("device %d has %d coords, want %d: %w", i, len(row), d, ErrDimension)
		}
		for c, x := range row {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return nil, fmt.Errorf("device %d coordinate %d: %v: %w", i, c, x, ErrNonFinite)
			}
		}
		copy(s.pts[i], row)
	}
	return s, nil
}

// Len returns the number of devices n.
func (s *State) Len() int { return len(s.pts) }

// Dim returns the dimension d of the QoS space.
func (s *State) Dim() int { return s.dim }

// At returns the position of device j. The returned slice aliases the
// state; treat it as read-only or use AtClone.
func (s *State) At(j int) Point { return s.pts[j] }

// AtClone returns an independent copy of the position of device j.
func (s *State) AtClone(j int) Point { return s.pts[j].Clone() }

// Set overwrites the position of device j, clamping into [0,1]^d.
// Non-finite coordinates are rejected (ErrNonFinite) with the state
// untouched.
func (s *State) Set(j int, p Point) error {
	if j < 0 || j >= len(s.pts) {
		return fmt.Errorf("device %d of %d: %w", j, len(s.pts), ErrIndex)
	}
	if len(p) != s.dim {
		return fmt.Errorf("point dim %d, state dim %d: %w", len(p), s.dim, ErrDimension)
	}
	for c, x := range p {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("device %d coordinate %d: %v: %w", j, c, x, ErrNonFinite)
		}
	}
	copy(s.pts[j], p)
	s.pts[j].Clamp()
	return nil
}

// Clone returns a deep copy of the state.
func (s *State) Clone() *State {
	c, _ := NewState(len(s.pts), s.dim) // dimensions already validated
	for i, p := range s.pts {
		copy(c.pts[i], p)
	}
	return c
}

// Dist returns the uniform-norm distance between devices i and j.
func (s *State) Dist(i, j int) float64 { return Dist(s.pts[i], s.pts[j]) }

// Uniform fills the state with positions drawn uniformly from [0,1]^d
// using the given source of uniform [0,1) samples (the initial
// distribution S_0 of Section VII-A).
func (s *State) Uniform(next func() float64) {
	for _, p := range s.pts {
		for i := range p {
			p[i] = next()
		}
	}
}
