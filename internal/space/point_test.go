package space

import (
	"math"
	"testing"
)

func TestDist(t *testing.T) {
	t.Parallel()

	tests := []struct {
		name string
		a, b Point
		want float64
	}{
		{"zero", Point{0.5, 0.5}, Point{0.5, 0.5}, 0},
		{"1d", Point{0.1}, Point{0.4}, 0.3},
		{"uniform norm picks max axis", Point{0, 0}, Point{0.2, 0.7}, 0.7},
		{"symmetric", Point{0.9, 0.1}, Point{0.1, 0.2}, 0.8},
		{"3d", Point{0, 0, 0}, Point{0.1, 0.5, 0.3}, 0.5},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			if got := Dist(tt.a, tt.b); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Dist = %v, want %v", got, tt.want)
			}
			if got := Dist(tt.b, tt.a); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Dist reversed = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestDistMismatchedDims(t *testing.T) {
	t.Parallel()

	if !math.IsInf(Dist(Point{1}, Point{1, 2}), 1) {
		t.Error("mismatched dims must yield +Inf")
	}
}

func TestDistTriangleInequality(t *testing.T) {
	t.Parallel()

	// L-infinity satisfies the triangle inequality; spot-check on a grid.
	pts := []Point{{0, 0}, {0.3, 0.9}, {0.7, 0.2}, {1, 1}, {0.5, 0.5}}
	for _, a := range pts {
		for _, b := range pts {
			for _, c := range pts {
				if Dist(a, c) > Dist(a, b)+Dist(b, c)+1e-12 {
					t.Fatalf("triangle inequality violated for %v %v %v", a, b, c)
				}
			}
		}
	}
}

func TestClampAndInUnitCube(t *testing.T) {
	t.Parallel()

	p := Point{-0.5, 0.5, 1.5, math.NaN()}
	if p.InUnitCube() {
		t.Error("point with out-of-range coords must not be in unit cube")
	}
	p.Clamp()
	want := Point{0, 0.5, 1, 0}
	for i := range want {
		if p[i] != want[i] {
			t.Errorf("Clamp()[%d] = %v, want %v", i, p[i], want[i])
		}
	}
	if !p.InUnitCube() {
		t.Error("clamped point must be in unit cube")
	}
}

func TestAddSub(t *testing.T) {
	t.Parallel()

	a, b := Point{0.5, 0.5}, Point{0.2, -0.1}
	sum, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if sum[0] != 0.7 || sum[1] != 0.4 {
		t.Errorf("Add = %v", sum)
	}
	diff, err := Sub(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(diff[0]-0.3) > 1e-12 || diff[1] != 0.6 {
		t.Errorf("Sub = %v", diff)
	}
	if _, err := Add(a, Point{1}); err == nil {
		t.Error("Add with mismatched dims must error")
	}
	if _, err := Sub(a, Point{1, 2, 3}); err == nil {
		t.Error("Sub with mismatched dims must error")
	}
}

func TestClone(t *testing.T) {
	t.Parallel()

	p := Point{0.1, 0.2}
	c := p.Clone()
	c[0] = 0.9
	if p[0] != 0.1 {
		t.Error("Clone must copy")
	}
}
