package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"anomalia/internal/scenario"
)

// SweepConfig parameterizes the Figures 7/8/9 sweeps over the number of
// errors A and the isolated-error probability G.
type SweepConfig struct {
	// N, D, R, Tau mirror the generator parameters (paper: 1000, 2, 0.03,
	// 3).
	N, D int
	R    float64
	Tau  int
	// As are the error counts per window (paper: 1..60).
	As []int
	// Gs are the isolated-error probabilities (paper: 0, 0.3, 0.5, 0.7, 1).
	Gs []float64
	// Steps is the number of windows averaged per (A, G) cell.
	Steps int
	// Seed drives all cells deterministically.
	Seed int64
	// MaxShift bounds per-error displacements (see scenario.Config);
	// DefaultSweep uses the vicinity diameter 2r.
	MaxShift float64
}

// DefaultSweep returns the paper's Figure 7/8/9 parameters with a
// moderate step count. Errors are concomitant (applied sequentially
// between the two snapshots) with displacements bounded by 2r — the
// regime in which the paper's unresolved-configuration levels reproduce.
func DefaultSweep() SweepConfig {
	return SweepConfig{
		N:        1000,
		D:        2,
		R:        0.03,
		Tau:      3,
		As:       []int{1, 10, 20, 30, 40, 50, 60},
		Gs:       []float64{0, 0.3, 0.5, 0.7, 1.0},
		Steps:    20,
		Seed:     1,
		MaxShift: 0.06, // 2r
	}
}

// sweep runs the (A, G) grid and fills a table with the chosen metric.
// Cells are independent simulations with their own seeds, so they run on
// a bounded worker pool; results are deterministic regardless of
// scheduling.
func sweep(cfg SweepConfig, title string, enforceR3 bool, metric func(SimStats) float64) (*Table, error) {
	t := &Table{
		Title:  title,
		Header: []string{"A"},
	}
	for _, g := range cfg.Gs {
		t.Header = append(t.Header, fmt.Sprintf("G=%g", g))
	}

	type cellJob struct{ ai, gi int }
	cells := make([][]string, len(cfg.As))
	for ai := range cells {
		cells[ai] = make([]string, len(cfg.Gs))
	}
	errs := make([]error, len(cfg.As)*len(cfg.Gs))
	jobs := make(chan cellJob)
	workers := runtime.GOMAXPROCS(0)
	if max := len(cfg.As) * len(cfg.Gs); workers > max {
		workers = max
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range jobs {
				a, g := cfg.As[job.ai], cfg.Gs[job.gi]
				st, err := RunSim(SimConfig{
					Scenario: scenario.Config{
						N:           cfg.N,
						D:           cfg.D,
						R:           cfg.R,
						Tau:         cfg.Tau,
						A:           a,
						G:           g,
						EnforceR3:   enforceR3,
						Concomitant: true,
						MaxShift:    cfg.MaxShift,
						Seed:        cfg.Seed + int64(1000*a+job.gi),
					},
					Steps: cfg.Steps,
					Exact: true,
				})
				if err != nil {
					errs[job.ai*len(cfg.Gs)+job.gi] = fmt.Errorf("%s at A=%d G=%v: %w", title, a, g, err)
					continue
				}
				cells[job.ai][job.gi] = pct(metric(st))
			}
		}()
	}
	for ai := range cfg.As {
		for gi := range cfg.Gs {
			jobs <- cellJob{ai: ai, gi: gi}
		}
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	for ai, a := range cfg.As {
		row := append([]string{fmt.Sprintf("%d", a)}, cells[ai]...)
		t.AddRow(row...)
	}
	return t, nil
}

// Fig7 reproduces Figure 7: the ratio |U_k|/|A_k| as a function of the
// number of errors A and the error mix G, with restriction R3 enforced.
func Fig7(cfg SweepConfig) (*Table, error) {
	return sweep(cfg, "Figure 7: |U_k|/|A_k| (R3 enforced)", true,
		func(st SimStats) float64 { return st.URatio })
}

// Fig8 reproduces Figure 8: the proportion of devices claiming a massive
// error although an isolated one hit them, when restriction R3 does not
// hold.
func Fig8(cfg SweepConfig) (*Table, error) {
	return sweep(cfg, "Figure 8: missed-detection rate (R3 not enforced)", false,
		func(st SimStats) float64 { return st.MissedRate })
}

// Fig9 reproduces Figure 9: the ratio |U_k|/|A_k| without restriction R3.
func Fig9(cfg SweepConfig) (*Table, error) {
	return sweep(cfg, "Figure 9: |U_k|/|A_k| (R3 not enforced)", false,
		func(st SimStats) float64 { return st.URatio })
}
