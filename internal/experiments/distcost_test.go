package experiments

import (
	"strconv"
	"testing"
)

// TestDistCostSmall runs the distributed-deployment cost study on a
// scaled-down grid and sanity-checks the bills: every error load yields
// a row, and a deciding device always exchanges at least two messages
// (request + response) for a view of at least itself.
func TestDistCostSmall(t *testing.T) {
	t.Parallel()

	cfg := DistCostConfig{
		N: 300, D: 2, R: 0.03, Tau: 3,
		As:    []int{1, 10},
		G:     0.3,
		Steps: 2,
		Seed:  3,
	}
	tab, err := DistCost(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(cfg.As) {
		t.Fatalf("%d rows for %d error loads", len(tab.Rows), len(cfg.As))
	}
	for _, row := range tab.Rows {
		if len(row) != 5 {
			t.Fatalf("row %v has %d cells, want 5", row, len(row))
		}
		msgs, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("messages cell %q: %v", row[2], err)
		}
		views, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatalf("view size cell %q: %v", row[4], err)
		}
		if msgs < 2 {
			t.Errorf("row %v: mean messages %v < 2", row, msgs)
		}
		if views < 1 {
			t.Errorf("row %v: mean view size %v < 1", row, views)
		}
	}
}

// TestDistCostDeterministic: equal seeds must reproduce the cost table
// cell for cell — the property that makes BENCH_*.json trajectories
// comparable across runs.
func TestDistCostDeterministic(t *testing.T) {
	t.Parallel()

	cfg := DistCostConfig{
		N: 200, D: 2, R: 0.03, Tau: 3,
		As:    []int{5},
		G:     0.5,
		Steps: 2,
		Seed:  9,
	}
	a, err := DistCost(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DistCost(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		for c := range a.Rows[i] {
			if a.Rows[i][c] != b.Rows[i][c] {
				t.Fatalf("row %d cell %d: %q != %q", i, c, a.Rows[i][c], b.Rows[i][c])
			}
		}
	}
}
