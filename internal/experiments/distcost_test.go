package experiments

import (
	"strconv"
	"testing"
)

// TestDistCostSmall runs the distributed-deployment cost study on a
// scaled-down grid and sanity-checks the bills: every error load yields
// a row, and a deciding device always exchanges at least two messages
// (request + response) for a view of at least itself.
func TestDistCostSmall(t *testing.T) {
	t.Parallel()

	cfg := DistCostConfig{
		N: 300, D: 2, R: 0.03, Tau: 3,
		As:    []int{1, 10},
		G:     0.3,
		Steps: 2,
		Seed:  3,
	}
	tab, err := DistCost(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(cfg.As) {
		t.Fatalf("%d rows for %d error loads", len(tab.Rows), len(cfg.As))
	}
	for _, row := range tab.Rows {
		if len(row) != 10 {
			t.Fatalf("row %v has %d cells, want 10", row, len(row))
		}
		if row[5] != "0" {
			t.Fatalf("row %v: incremental-vs-rebuild message delta %q, want 0", row, row[5])
		}
		msgs, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("messages cell %q: %v", row[2], err)
		}
		views, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatalf("view size cell %q: %v", row[4], err)
		}
		if msgs < 2 {
			t.Errorf("row %v: mean messages %v < 2", row, msgs)
		}
		if views < 1 {
			t.Errorf("row %v: mean view size %v < 1", row, views)
		}
		// The measured wire columns: a decided window costs real frame
		// bytes and at least two exchanges (sync + decide), and a
		// faultless in-process transport must never retry.
		wireBytes, err := strconv.ParseFloat(row[6], 64)
		if err != nil {
			t.Fatalf("wire bytes cell %q: %v", row[6], err)
		}
		wireRTs, err := strconv.ParseFloat(row[7], 64)
		if err != nil {
			t.Fatalf("round-trips cell %q: %v", row[7], err)
		}
		if wireBytes <= 0 {
			t.Errorf("row %v: wire bytes/window %v, want > 0", row, wireBytes)
		}
		if wireRTs < 2 {
			t.Errorf("row %v: wire round-trips/window %v, want >= 2", row, wireRTs)
		}
		if row[8] != "0" {
			t.Errorf("row %v: %q retries over a faultless transport", row, row[8])
		}
	}
}

// TestDistCostDeterministic: equal seeds must reproduce the cost table
// cell for cell across its deterministic columns — the property that
// makes BENCH_*.json trajectories comparable across runs.
func TestDistCostDeterministic(t *testing.T) {
	t.Parallel()

	cfg := DistCostConfig{
		N: 200, D: 2, R: 0.03, Tau: 3,
		As:    []int{5},
		G:     0.5,
		Steps: 2,
		Seed:  9,
	}
	a, err := DistCost(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DistCost(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		// The trailing column is a wall-time ratio; everything before it
		// must reproduce cell for cell.
		for c := 0; c < DistCostDeterministicCols; c++ {
			if a.Rows[i][c] != b.Rows[i][c] {
				t.Fatalf("row %d cell %d: %q != %q", i, c, a.Rows[i][c], b.Rows[i][c])
			}
		}
	}
}
