package experiments

import (
	"fmt"
	"sort"
	"strings"

	"anomalia/internal/core"
	"anomalia/internal/paperfig"
)

// WorkedFigures renders the paper's Figures 1-5 as analyzed by this
// implementation: the maximal r-consistent motions, each device's J/L
// split, and the verdict with the deciding rule. It is the pedagogical
// artifact mirroring the worked examples of Sections III-V.
func WorkedFigures() (*Table, error) {
	figs, err := paperfig.All()
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(figs))
	for name := range figs {
		names = append(names, name)
	}
	sort.Strings(names)

	t := &Table{
		Title:  "Worked examples: the paper's Figures 1-5 re-analyzed",
		Header: []string{"figure", "device", "verdict", "rule", "J_k(j)", "L_k(j)", "dense motions"},
	}
	for _, name := range names {
		fig := figs[name]
		char, err := core.New(fig.Pair, fig.Abnormal, core.Config{
			R: fig.R, Tau: fig.Tau, Exact: true,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		for _, j := range fig.Abnormal {
			res, err := char.Characterize(j)
			if err != nil {
				return nil, fmt.Errorf("%s device %d: %w", name, j, err)
			}
			t.AddRow(
				name,
				fmt.Sprintf("%d", j+1), // paper numbering
				res.Class.String(),
				res.Rule.String(),
				fmtSet(res.J),
				fmtSet(res.L),
				fmtFamily(res.Dense),
			)
		}
	}
	return t, nil
}

// fmtSet renders a device set in paper (1-based) numbering.
func fmtSet(ids []int) string {
	if len(ids) == 0 {
		return "-"
	}
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("%d", id+1)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// fmtFamily renders a family of device sets in paper numbering.
func fmtFamily(fams [][]int) string {
	if len(fams) == 0 {
		return "-"
	}
	parts := make([]string, len(fams))
	for i, fam := range fams {
		parts[i] = fmtSet(fam)
	}
	return strings.Join(parts, " ")
}
