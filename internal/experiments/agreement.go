package experiments

import (
	"fmt"

	"anomalia/internal/core"
	"anomalia/internal/motion"
	"anomalia/internal/partition"
	"anomalia/internal/scenario"
	"anomalia/internal/space"
	"anomalia/internal/stats"
)

// AgreementConfig parameterizes the local-versus-omniscient comparison:
// small random windows on which the exhaustive anomaly-partition oracle
// is still tractable.
type AgreementConfig struct {
	// Trials is the number of random windows compared.
	Trials int
	// Devices is the number of abnormal devices per window (kept small:
	// the oracle enumerates all anomaly partitions).
	Devices int
	// Tau is the density threshold.
	Tau int
	// R is the consistency radius.
	R float64
	// Side confines positions to [0, Side]^2 so dense structure appears.
	Side float64
	// Seed drives the trials.
	Seed int64
}

// DefaultAgreement returns a study that exercises a few hundred windows.
func DefaultAgreement() AgreementConfig {
	return AgreementConfig{
		Trials:  200,
		Devices: 9,
		Tau:     2,
		R:       0.06,
		Side:    0.3,
		Seed:    1,
	}
}

// Agreement measures how often the local decision procedure (Theorems
// 5-7, Corollary 8) matches the omniscient observer obtained by
// enumerating every anomaly partition. The paper proves the agreement is
// exact; this artifact demonstrates it and reports the oracle's cost
// (partitions per window) for scale.
func Agreement(cfg AgreementConfig) (*Table, error) {
	if cfg.Trials < 1 || cfg.Devices < 2 {
		return nil, fmt.Errorf("trials %d devices %d: %w", cfg.Trials, cfg.Devices, scenario.ErrConfig)
	}
	rng := stats.NewRNG(cfg.Seed)
	var (
		compared, agreements, devicesCompared int
		partitions                            stats.Welford
		skipped                               int
	)
	ids := make([]int, cfg.Devices)
	for i := range ids {
		ids[i] = i
	}
	for trial := 0; trial < cfg.Trials; trial++ {
		pair, err := randomWindow(rng, cfg.Devices, cfg.Side)
		if err != nil {
			return nil, err
		}
		oracle, err := partition.Oracle(pair, ids, cfg.R, cfg.Tau, 0)
		if err != nil {
			skipped++ // oracle budget blowup on a dense blob
			continue
		}
		char, err := core.New(pair, ids, core.Config{R: cfg.R, Tau: cfg.Tau, Exact: true})
		if err != nil {
			return nil, err
		}
		local, err := char.Decompose()
		if err != nil {
			return nil, err
		}
		compared++
		partitions.Add(float64(oracle.Partitions))
		match := true
		for _, j := range ids {
			devicesCompared++
			var localClass string
			switch {
			case containsInt(local.Massive, j):
				localClass = "M"
			case containsInt(local.Isolated, j):
				localClass = "I"
			default:
				localClass = "U"
			}
			if localClass != oracle.ClassOf(j) {
				match = false
			}
		}
		if match {
			agreements++
		}
	}
	t := &Table{
		Title: fmt.Sprintf("Local vs omniscient agreement (%d windows of %d devices, tau=%d)",
			cfg.Trials, cfg.Devices, cfg.Tau),
		Header: []string{"windows compared", "agreement", "devices compared", "mean partitions/window", "oracle skips"},
	}
	rate := 0.0
	if compared > 0 {
		rate = float64(agreements) / float64(compared)
	}
	t.AddRow(
		fmt.Sprintf("%d", compared),
		pct(rate),
		fmt.Sprintf("%d", devicesCompared),
		f(partitions.Mean()),
		fmt.Sprintf("%d", skipped),
	)
	return t, nil
}

func randomWindow(rng *stats.RNG, n int, side float64) (*motion.Pair, error) {
	prev, err := space.NewState(n, 2)
	if err != nil {
		return nil, err
	}
	cur, err := space.NewState(n, 2)
	if err != nil {
		return nil, err
	}
	prev.Uniform(func() float64 { return rng.Float64() * side })
	cur.Uniform(func() float64 { return rng.Float64() * side })
	return motion.NewPair(prev, cur)
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
