package experiments

import (
	"fmt"
	"time"

	"anomalia/internal/baseline"
	"anomalia/internal/core"
	"anomalia/internal/scenario"
)

// AblationConfig parameterizes the comparison experiments that go beyond
// the paper: baseline accuracy and the price of exactness.
type AblationConfig struct {
	// Scenario is the generator configuration.
	Scenario scenario.Config
	// Steps is the number of windows per measurement.
	Steps int
	// CellSides are the tessellation bucket sizes swept by
	// AblationBucketSize.
	CellSides []float64
}

// DefaultAblation returns sensible ablation parameters around the paper's
// operating point, using the calibrated concomitant-error regime so that
// hard (Theorem 7 / unresolved) cases actually occur.
func DefaultAblation() AblationConfig {
	return AblationConfig{
		Scenario: scenario.Config{
			N: 1000, D: 2, R: 0.03, Tau: 3, A: 20, G: 0.5,
			EnforceR3: true, Concomitant: true, MaxShift: 0.06, Seed: 9,
		},
		Steps:     20,
		CellSides: []float64{0.015, 0.03, 0.06, 0.12, 0.24},
	}
}

// AblationBucketSize quantifies the paper's critique of tessellation-based
// detection [1]: classification accuracy against ground truth as a
// function of the bucket size, compared with the local characterizer run
// on the same windows.
func AblationBucketSize(cfg AblationConfig) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("Ablation: tessellation bucket-size sensitivity (n=%d, A=%d, tau=%d)",
			cfg.Scenario.N, cfg.Scenario.A, cfg.Scenario.Tau),
		Header: []string{"classifier", "accuracy", "false massive", "false isolated"},
	}

	// One pass per classifier over identically seeded generators.
	run := func(classify func(step *scenario.Step) (map[int]bool, error)) (baseline.Confusion, error) {
		gen, err := scenario.New(cfg.Scenario)
		if err != nil {
			return baseline.Confusion{}, err
		}
		var conf baseline.Confusion
		for s := 0; s < cfg.Steps; s++ {
			step, err := gen.Step()
			if err != nil {
				return baseline.Confusion{}, err
			}
			verdicts, err := classify(step)
			if err != nil {
				return baseline.Confusion{}, err
			}
			for _, j := range step.Abnormal {
				iso, ok := step.TruthIsolated(j)
				if !ok {
					continue
				}
				conf.Add(verdicts[j], !iso)
			}
		}
		return conf, nil
	}

	for _, side := range cfg.CellSides {
		side := side
		tess, err := baseline.NewTessellation(side, cfg.Scenario.Tau)
		if err != nil {
			return nil, err
		}
		conf, err := run(func(step *scenario.Step) (map[int]bool, error) {
			return tess.Classify(step.Pair, step.Abnormal), nil
		})
		if err != nil {
			return nil, fmt.Errorf("tessellation side %v: %w", side, err)
		}
		t.AddRow(fmt.Sprintf("tessellation cell=%g", side),
			pct(conf.Accuracy()),
			fmt.Sprintf("%d", conf.FalsePositive),
			fmt.Sprintf("%d", conf.FalseNegative))
	}

	// The k-means centralized baseline.
	conf, err := run(func(step *scenario.Step) (map[int]bool, error) {
		km, err := baseline.NewKMeans(
			baseline.ChooseK(len(step.Abnormal), cfg.Scenario.Tau),
			cfg.Scenario.Tau, 100, cfg.Scenario.Seed)
		if err != nil {
			return nil, err
		}
		verdicts, _ := km.Classify(step.Pair, step.Abnormal)
		return verdicts, nil
	})
	if err != nil {
		return nil, fmt.Errorf("k-means baseline: %w", err)
	}
	t.AddRow("k-means (centralized)", pct(conf.Accuracy()),
		fmt.Sprintf("%d", conf.FalsePositive), fmt.Sprintf("%d", conf.FalseNegative))

	// The local characterizer (massive = ClassMassive; unresolved counts
	// as not-massive, the conservative reading).
	conf, err = run(func(step *scenario.Step) (map[int]bool, error) {
		char, err := core.New(step.Pair, step.Abnormal, core.Config{
			R: cfg.Scenario.R, Tau: cfg.Scenario.Tau, Exact: true,
		})
		if err != nil {
			return nil, err
		}
		out := make(map[int]bool, len(step.Abnormal))
		for _, j := range step.Abnormal {
			res, err := char.Characterize(j)
			if err != nil {
				return nil, err
			}
			out[j] = res.Class == core.ClassMassive
		}
		return out, nil
	})
	if err != nil {
		return nil, fmt.Errorf("characterizer: %w", err)
	}
	t.AddRow("characterizer (this paper)", pct(conf.Accuracy()),
		fmt.Sprintf("%d", conf.FalsePositive), fmt.Sprintf("%d", conf.FalseNegative))
	return t, nil
}

// AblationExactness measures what the full NSC buys over the cheap
// Theorem 6 pass: the share of devices each rule settles and the
// wall-clock cost of both modes on identical workloads.
func AblationExactness(cfg AblationConfig) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("Ablation: Theorem 6 only vs full NSC (n=%d, A=%d, tau=%d)",
			cfg.Scenario.N, cfg.Scenario.A, cfg.Scenario.Tau),
		Header: []string{"mode", "isolated", "massive", "unresolved", "mean |A_k|", "wall time"},
	}
	for _, exact := range []bool{false, true} {
		start := time.Now()
		st, err := RunSim(SimConfig{Scenario: cfg.Scenario, Steps: cfg.Steps, Exact: exact})
		if err != nil {
			return nil, fmt.Errorf("exact=%v: %w", exact, err)
		}
		elapsed := time.Since(start)
		mode := "theorem 6 only"
		if exact {
			mode = "full NSC (Thm 7/Cor 8)"
		}
		t.AddRow(mode,
			pct(st.FracIsolated),
			pct(st.FracMassive6+st.FracMassive7),
			pct(st.FracUnresolved),
			f(st.MeanAbnormal),
			elapsed.Round(time.Millisecond).String())
	}
	return t, nil
}
