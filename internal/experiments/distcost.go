package experiments

import (
	"fmt"
	"net"
	"time"

	"anomalia/internal/core"
	"anomalia/internal/dirnet"
	"anomalia/internal/dist"
	"anomalia/internal/scenario"
	"anomalia/internal/stats"
)

// DistCostConfig parameterizes the distributed-deployment cost study: the
// message and trajectory traffic each abnormal device generates when it
// gathers its 4r view from the directory service.
type DistCostConfig struct {
	// N, D, R, Tau mirror the generator parameters.
	N, D int
	R    float64
	Tau  int
	// As sweeps the error load.
	As []int
	// G is the isolated-error probability.
	G float64
	// Steps is the number of windows per cell.
	Steps int
	// Seed drives the simulation.
	Seed int64
}

// DefaultDistCost returns the cost study at the paper's operating point.
func DefaultDistCost() DistCostConfig {
	return DistCostConfig{
		N: 1000, D: 2, R: 0.03, Tau: 3,
		As:    []int{1, 10, 20, 40, 60},
		G:     0.3,
		Steps: 5,
		Seed:  1,
	}
}

// DistCostDeterministicCols is the number of leading columns of the
// DistCost table that are a pure function of the configuration and
// pinned by the determinism test: the billed message economy. The
// columns after them are measured — the wire columns count actual
// protocol bytes and exchanges over an in-process transport, and the
// trailing speedup column measures wall time — so they are reported,
// not pinned.
const DistCostDeterministicCols = 6

// DistCost measures the per-device communication cost of the distributed
// decision: messages exchanged with the directory, trajectories
// transferred, and 4r-view sizes — the quantities that make the approach
// scale where the centralized clustering of [15] does not.
//
// Each window is decided twice: on a directory rebuilt from scratch
// (the pre-persistence deployment) and on one persistent directory
// advanced window to window. The "msgΔ incr" column is the summed
// difference in protocol messages between the two paths — zero by the
// directory's parity guarantee, and asserted here — and "rebuild/adv"
// the measured wall-time ratio of rebuilding versus advancing the
// index, the quantity the cross-window persistence buys.
//
// Next to the billed economy sit the measured wire columns: every
// window is additionally decided over the dirnet protocol through an
// in-process transport, and "wire B/win" (frame bytes both directions),
// "RT/win" (request/response exchanges) and "retries" report what the
// networked deployment actually puts on the wire per abnormal window —
// retries must read 0 here, the transport is faultless.
func DistCost(cfg DistCostConfig) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("Distributed deployment cost per deciding device (n=%d, G=%g)",
			cfg.N, cfg.G),
		Header: []string{"A", "mean |A_k|", "messages", "trajectories", "view size", "msgΔ incr", "wire B/win", "RT/win", "retries", "rebuild/adv"},
	}
	coreCfg := core.Config{R: cfg.R, Tau: cfg.Tau, Exact: true}
	for _, a := range cfg.As {
		gen, err := scenario.New(scenario.Config{
			N: cfg.N, D: cfg.D, R: cfg.R, Tau: cfg.Tau,
			A: a, G: cfg.G,
			Concomitant: true, MaxShift: 2 * cfg.R,
			Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		var msgs, trajs, views, abnormal stats.Welford
		var advDir *dist.Directory
		msgDelta := 0
		var rebuildTime, advanceTime time.Duration
		// The wire fixture: one shard server behind an in-process pipe,
		// deciding the same windows over the dirnet protocol so the table
		// can report measured bytes and round-trips next to the bills.
		wireSrv := dirnet.NewServer()
		wireClient, err := dirnet.NewClient(dirnet.Config{
			Addrs: []string{"wire-0"},
			Dial: func(string) (net.Conn, error) {
				c1, c2 := net.Pipe()
				go wireSrv.HandleConn(c2)
				return c1, nil
			},
		})
		if err != nil {
			return nil, err
		}
		wireWindows := 0
		for s := 0; s < cfg.Steps; s++ {
			step, err := gen.Step()
			if err != nil {
				return nil, fmt.Errorf("A=%d window %d: %w", a, s, err)
			}
			if len(step.Abnormal) == 0 {
				continue
			}
			t0 := time.Now()
			dir, err := dist.NewDirectory(step.Pair, step.Abnormal, cfg.R)
			if err != nil {
				return nil, err
			}
			rebuildTime += time.Since(t0)
			t0 = time.Now()
			if advDir == nil {
				// The persistent service pays one initial build too.
				if advDir, err = dist.NewDirectory(step.Pair, step.Abnormal, cfg.R); err != nil {
					return nil, err
				}
			} else if _, err := advDir.Advance(step.Pair, step.Abnormal, nil); err != nil {
				return nil, err
			}
			advanceTime += time.Since(t0)

			if _, _, err := wireClient.DecideWindow(step.Pair, step.Abnormal, coreCfg); err != nil {
				return nil, fmt.Errorf("A=%d window %d over the wire: %w", a, s, err)
			}
			wireWindows++

			abnormal.Add(float64(len(step.Abnormal)))
			for _, j := range step.Abnormal {
				_, st, err := dist.Decide(dir, j, coreCfg)
				if err != nil {
					return nil, fmt.Errorf("A=%d device %d: %w", a, j, err)
				}
				msgs.Add(float64(st.Messages))
				trajs.Add(float64(st.Trajectories))
				views.Add(float64(st.ViewSize))
				_, ast, err := dist.Decide(advDir, j, coreCfg)
				if err != nil {
					return nil, fmt.Errorf("A=%d device %d (incremental): %w", a, j, err)
				}
				msgDelta += ast.Messages - st.Messages
			}
		}
		if msgDelta != 0 {
			return nil, fmt.Errorf("A=%d: incremental directory billed %+d messages vs rebuild — parity broken", a, msgDelta)
		}
		wireStats := wireClient.Stats()
		wireClient.Close()
		wireSrv.Close()
		ratio := 0.0
		if advanceTime > 0 {
			ratio = float64(rebuildTime) / float64(advanceTime)
		}
		wireBytes, wireRTs := 0.0, 0.0
		if wireWindows > 0 {
			wireBytes = float64(wireStats.BytesSent+wireStats.BytesReceived) / float64(wireWindows)
			wireRTs = float64(wireStats.RoundTrips) / float64(wireWindows)
		}
		t.AddRow(
			fmt.Sprintf("%d", a),
			f(abnormal.Mean()),
			f(msgs.Mean()),
			f(trajs.Mean()),
			f(views.Mean()),
			fmt.Sprintf("%d", msgDelta),
			f(wireBytes),
			f(wireRTs),
			fmt.Sprintf("%d", wireStats.Retries),
			f(ratio),
		)
	}
	return t, nil
}
