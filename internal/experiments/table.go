// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VII) from the reproduced system: the dimensioning
// curves of Figure 6, the repartition and cost tables II and III, the
// unresolved-configuration curves of Figures 7 and 9, the missed-detection
// curve of Figure 8, and additional ablations (bucket-size sensitivity of
// the tessellation baseline, Theorem 6 versus Theorem 7, baseline
// comparison).
//
// Each experiment returns a Table that renders as aligned text or CSV and
// carries the raw numbers for assertions and EXPERIMENTS.md.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: a titled grid with one header
// row. Cells are pre-formatted strings; Raw carries the underlying
// numbers (row-major, NaN-free cells only) when the experiment is
// numeric.
type Table struct {
	// Title names the experiment (e.g. "Figure 7").
	Title string
	// Header labels the columns.
	Header []string
	// Rows holds the formatted cells.
	Rows [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	sb.WriteString("# " + t.Title + "\n")
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) {
				for p := len(c); p < widths[i]; p++ {
					sb.WriteByte(' ')
				}
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, wdt := range widths {
		total += wdt + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// RenderCSV writes the table as CSV (header first).
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return fmt.Errorf("writing CSV header: %w", err)
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("writing CSV row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// f formats a float compactly for table cells.
func f(x float64) string { return fmt.Sprintf("%.4f", x) }

// pct formats a ratio as a percentage cell.
func pct(x float64) string { return fmt.Sprintf("%.2f%%", 100*x) }
