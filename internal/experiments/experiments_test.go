package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"anomalia/internal/scenario"
)

// smallSweep keeps simulation-driven tests fast.
func smallSweep() SweepConfig {
	return SweepConfig{
		N: 400, D: 2, R: 0.03, Tau: 3,
		As:       []int{1, 10, 25},
		Gs:       []float64{0, 1},
		Steps:    4,
		Seed:     3,
		MaxShift: 0.06,
	}
}

func smallTables() TablesConfig {
	cfg := DefaultTables()
	cfg.Steps = 8
	return cfg
}

func TestTableRendering(t *testing.T) {
	t.Parallel()

	tab := &Table{Title: "demo", Header: []string{"a", "b"}}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# demo") || !strings.Contains(out, "333") {
		t.Errorf("rendered table missing content:\n%s", out)
	}

	buf.Reset()
	if err := tab.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 || lines[0] != "a,b" {
		t.Errorf("CSV output wrong: %q", buf.String())
	}
}

func TestFig6aTable(t *testing.T) {
	t.Parallel()

	cfg := DefaultFig6a()
	cfg.MaxM = 50
	cfg.StepM = 10
	tab, err := Fig6a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tab.Rows))
	}
	// Each column must be monotone nondecreasing in m and end near 1 for
	// the smallest radius.
	for col := 1; col < len(tab.Header); col++ {
		prev := -1.0
		for _, row := range tab.Rows {
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil {
				t.Fatal(err)
			}
			if v < prev-1e-9 {
				t.Fatalf("column %s not monotone", tab.Header[col])
			}
			prev = v
		}
	}
	last := tab.Rows[len(tab.Rows)-1]
	v, err := strconv.ParseFloat(last[len(last)-1], 64)
	if err != nil {
		t.Fatal(err)
	}
	if v < 0.999 {
		t.Errorf("smallest radius CDF at m=50 = %v, want ~1", v)
	}
}

func TestFig6bTable(t *testing.T) {
	t.Parallel()

	cfg := DefaultFig6b()
	cfg.MaxN = 3000
	cfg.StepN = 1000
	tab, err := Fig6b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	// All probabilities near 1, and τ=5 >= τ=2 row-wise.
	for _, row := range tab.Rows {
		p2, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		p5, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatal(err)
		}
		if p2 < 0.99 || p5 < p2 {
			t.Errorf("row %v: unexpected probabilities", row)
		}
	}
}

func TestRunSimBasics(t *testing.T) {
	t.Parallel()

	st, err := RunSim(SimConfig{
		Scenario: scenario.Config{
			N: 400, D: 2, R: 0.03, Tau: 3, A: 10, G: 0.5,
			EnforceR3: true, Seed: 2,
		},
		Steps: 5,
		Exact: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.MeanAbnormal <= 0 {
		t.Error("no abnormal devices simulated")
	}
	total := st.FracIsolated + st.FracMassive6 + st.FracMassive7 + st.FracUnresolved
	if total < 0.999 || total > 1.001 {
		t.Errorf("rule fractions sum to %v, want 1", total)
	}
	if st.URatio < 0 || st.URatio > 1 || st.MissedRate < 0 || st.MissedRate > 1 {
		t.Errorf("ratios out of range: %+v", st)
	}
}

func TestRunSimValidation(t *testing.T) {
	t.Parallel()

	if _, err := RunSim(SimConfig{Steps: 0}); err == nil {
		t.Error("steps=0 must error")
	}
	if _, err := RunSim(SimConfig{Steps: 1}); err == nil {
		t.Error("invalid scenario must error")
	}
}

func TestTable2Shape(t *testing.T) {
	t.Parallel()

	tab, st, err := Table2(smallTables())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 || len(tab.Rows[0]) != 4 {
		t.Fatalf("table II shape wrong: %+v", tab)
	}
	// With G = ε nearly all devices are massive; Theorem 6 must carry the
	// bulk of the classification (the paper reports 88.34% / 0.4%).
	if st.FracMassive6 < 0.5 {
		t.Errorf("Theorem 6 fraction = %v, expected the bulk", st.FracMassive6)
	}
	if st.FracMassive7 > 0.05 {
		t.Errorf("Theorem 7 extra fraction = %v, expected marginal (paper: 0.4%%)", st.FracMassive7)
	}
	if st.FracIsolated > 0.3 {
		t.Errorf("isolated fraction = %v, expected small under G=ε", st.FracIsolated)
	}
}

func TestTable3Shape(t *testing.T) {
	t.Parallel()

	tab, st, err := Table3(smallTables())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 {
		t.Fatal("table III must have one row")
	}
	// Theorem 5/6 costs are a handful of motions; the exact searches are
	// orders of magnitude bigger whenever they run (Table III's point).
	if st.CostIsolated <= 0 || st.CostIsolated > 10 {
		t.Errorf("isolated cost = %v, expected a few motions", st.CostIsolated)
	}
	if st.CostMassive6 <= 0 || st.CostMassive6 > 10 {
		t.Errorf("theorem-6 cost = %v, expected a few dense motions", st.CostMassive6)
	}
	if st.CostMassive7 > 0 && st.CostMassive7 < st.CostMassive6 {
		t.Errorf("theorem-7 cost %v should dominate theorem-6 cost %v",
			st.CostMassive7, st.CostMassive6)
	}
}

func TestFig7Monotonicity(t *testing.T) {
	t.Parallel()

	tab, err := Fig7(smallSweep())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	parse := func(cell string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	// With a single error there can be no superposition: |U_k|/|A_k| = 0.
	if v := parse(tab.Rows[0][1]); v != 0 {
		t.Errorf("A=1, G=0: unresolved ratio = %v, want 0", v)
	}
	// More errors must not decrease the unresolved ratio under G=0
	// (massive-only), the paper's dominant trend.
	first, last := parse(tab.Rows[0][1]), parse(tab.Rows[len(tab.Rows)-1][1])
	if last < first {
		t.Errorf("unresolved ratio decreased with A: %v -> %v", first, last)
	}
}

func TestFig8Bounded(t *testing.T) {
	t.Parallel()

	tab, err := Fig8(smallSweep())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		for _, cell := range row[1:] {
			v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
			if err != nil {
				t.Fatal(err)
			}
			if v < 0 || v > 15 {
				t.Errorf("missed detection %v%% outside the paper's <10%% envelope", v)
			}
		}
	}
}

func TestFig9Runs(t *testing.T) {
	t.Parallel()

	tab, err := Fig9(smallSweep())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 || len(tab.Rows[0]) != 3 {
		t.Fatalf("fig9 shape: %+v", tab.Rows)
	}
}

func TestAblationBucketSize(t *testing.T) {
	t.Parallel()

	cfg := DefaultAblation()
	cfg.Scenario.N = 300
	cfg.Steps = 5
	cfg.CellSides = []float64{0.03, 0.24}
	tab, err := AblationBucketSize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 2 tessellation rows + kmeans + characterizer.
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	// The characterizer row is last; its accuracy should be at least that
	// of every tessellation row (the paper's argument).
	parse := func(cell string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	ours := parse(tab.Rows[3][1])
	for i := 0; i < 2; i++ {
		if parse(tab.Rows[i][1]) > ours+1e-9 {
			t.Errorf("tessellation row %v beats the characterizer (%v%%)", tab.Rows[i], ours)
		}
	}
}

func TestAblationExactness(t *testing.T) {
	t.Parallel()

	cfg := DefaultAblation()
	cfg.Scenario.N = 300
	cfg.Steps = 5
	tab, err := AblationExactness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tab.Rows))
	}
	parse := func(cell string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	// Exact mode can only shrink the unresolved set.
	if parse(tab.Rows[1][3]) > parse(tab.Rows[0][3])+1e-9 {
		t.Errorf("full NSC increased unresolved: %v vs %v", tab.Rows[1][3], tab.Rows[0][3])
	}
}
