package experiments

import (
	"errors"
	"testing"

	"anomalia/internal/scenario"
)

func TestAgreementIsExact(t *testing.T) {
	t.Parallel()

	cfg := DefaultAgreement()
	cfg.Trials = 40
	tab, err := Agreement(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// The paper proves local = omniscient; the artifact must show 100%.
	if got := parsePct(t, tab.Rows[0][1]); got != 100 {
		t.Errorf("agreement = %v%%, want 100%%", got)
	}
	if compared := tab.Rows[0][0]; compared == "0" {
		t.Error("no windows compared; oracle always skipped?")
	}
}

func TestAgreementValidation(t *testing.T) {
	t.Parallel()

	cfg := DefaultAgreement()
	cfg.Trials = 0
	if _, err := Agreement(cfg); !errors.Is(err, scenario.ErrConfig) {
		t.Errorf("trials=0 error = %v", err)
	}
	cfg = DefaultAgreement()
	cfg.Devices = 1
	if _, err := Agreement(cfg); !errors.Is(err, scenario.ErrConfig) {
		t.Errorf("devices=1 error = %v", err)
	}
}
