package experiments

import (
	"errors"
	"fmt"

	"anomalia/internal/core"
	"anomalia/internal/scenario"
	"anomalia/internal/stats"
)

// SimConfig drives one Monte-Carlo measurement: a scenario generator
// configuration, the number of observation windows to simulate, and the
// characterizer mode.
type SimConfig struct {
	// Scenario is the Section VII-A generator configuration.
	Scenario scenario.Config
	// Steps is the number of observation windows simulated.
	Steps int
	// Exact runs the full NSC (Theorem 7 / Corollary 8).
	Exact bool
	// Budget caps the exact search per device (0: core default).
	Budget int
}

// SimStats aggregates classification outcomes over a simulation.
type SimStats struct {
	// Steps actually simulated.
	Steps int
	// MeanAbnormal is the average |A_k| per window.
	MeanAbnormal float64
	// FracIsolated..FracUnresolved partition the abnormal population by
	// deciding rule (fractions of all abnormal devices seen).
	FracIsolated   float64 // Theorem 5
	FracMassive6   float64 // Theorem 6
	FracMassive7   float64 // Theorem 7 (exact mode only)
	FracUnresolved float64 // Corollary 8 (or Theorem-6-undecided in cheap mode)
	// URatio is the mean over windows of |U_k|/|A_k| (Figures 7 and 9).
	URatio float64
	// MissedRate is the mean over windows of the fraction of abnormal
	// devices that were hit by an isolated error yet classified massive
	// (Figure 8).
	MissedRate float64
	// MassiveMissRate is the mean fraction of devices hit by massive
	// errors that were *not* classified massive (complementary diagnostic).
	MassiveMissRate float64
	// CostIsolated is the mean |M(j)| over Theorem-5 devices (Table III).
	CostIsolated float64
	// CostMassive6 is the mean |W̄_k(j)| over Theorem-6 devices.
	CostMassive6 float64
	// CostUnresolved is the mean number of collections tested by devices
	// settled by Corollary 8.
	CostUnresolved float64
	// CostMassive7 is the mean number of collections tested by devices
	// settled by Theorem 7 (the expensive exhaustion).
	CostMassive7 float64
	// BudgetFailures counts devices whose exact search ran out of budget
	// (counted unresolved).
	BudgetFailures int
	// R3Failures counts isolated errors whose R3 separation retries were
	// exhausted by the generator.
	R3Failures int
}

// RunSim simulates cfg.Steps windows and aggregates the outcomes.
func RunSim(cfg SimConfig) (SimStats, error) {
	if cfg.Steps <= 0 {
		return SimStats{}, fmt.Errorf("steps = %d: %w", cfg.Steps, scenario.ErrConfig)
	}
	gen, err := scenario.New(cfg.Scenario)
	if err != nil {
		return SimStats{}, err
	}

	var (
		out         SimStats
		totalAb     int
		uRatio      stats.Welford
		missed      stats.Welford
		massiveMiss stats.Welford
		costIso     stats.Welford
		costM6      stats.Welford
		costU       stats.Welford
		costM7      stats.Welford
	)
	for s := 0; s < cfg.Steps; s++ {
		step, err := gen.Step()
		if err != nil {
			return SimStats{}, fmt.Errorf("step %d: %w", s, err)
		}
		out.R3Failures += step.R3Failures
		if len(step.Abnormal) == 0 {
			continue
		}
		char, err := core.New(step.Pair, step.Abnormal, core.Config{
			R:      cfg.Scenario.R,
			Tau:    cfg.Scenario.Tau,
			Exact:  cfg.Exact,
			Budget: cfg.Budget,
		})
		if err != nil {
			return SimStats{}, fmt.Errorf("step %d: %w", s, err)
		}

		stepU, stepMissed, stepMassiveTruth, stepMassiveMissed := 0, 0, 0, 0
		for _, j := range step.Abnormal {
			res, err := char.Characterize(j)
			if err != nil {
				if errors.Is(err, core.ErrBudget) {
					out.BudgetFailures++
					stepU++
					out.FracUnresolved++
					continue
				}
				return SimStats{}, fmt.Errorf("step %d device %d: %w", s, j, err)
			}
			switch res.Rule {
			case core.RuleTheorem5:
				out.FracIsolated++
				costIso.Add(float64(res.Cost.MaximalMotions))
			case core.RuleTheorem6:
				out.FracMassive6++
				costM6.Add(float64(res.Cost.DenseMotions))
			case core.RuleTheorem7:
				out.FracMassive7++
				costM7.Add(float64(res.Cost.CollectionsTested))
			default: // Corollary 8 or cheap-mode fallback
				out.FracUnresolved++
				stepU++
				costU.Add(float64(res.Cost.CollectionsTested))
			}

			iso, known := step.TruthIsolated(j)
			if !known {
				continue
			}
			if iso && res.Class == core.ClassMassive {
				stepMissed++
			}
			if !iso {
				stepMassiveTruth++
				if res.Class != core.ClassMassive {
					stepMassiveMissed++
				}
			}
		}
		ab := len(step.Abnormal)
		totalAb += ab
		uRatio.Add(float64(stepU) / float64(ab))
		missed.Add(float64(stepMissed) / float64(ab))
		if stepMassiveTruth > 0 {
			massiveMiss.Add(float64(stepMassiveMissed) / float64(stepMassiveTruth))
		}
	}

	out.Steps = cfg.Steps
	out.MeanAbnormal = float64(totalAb) / float64(cfg.Steps)
	if totalAb > 0 {
		out.FracIsolated /= float64(totalAb)
		out.FracMassive6 /= float64(totalAb)
		out.FracMassive7 /= float64(totalAb)
		out.FracUnresolved /= float64(totalAb)
	}
	out.URatio = uRatio.Mean()
	out.MissedRate = missed.Mean()
	out.MassiveMissRate = massiveMiss.Mean()
	out.CostIsolated = costIso.Mean()
	out.CostMassive6 = costM6.Mean()
	out.CostUnresolved = costU.Mean()
	out.CostMassive7 = costM7.Mean()
	return out, nil
}
