package experiments

import (
	"errors"
	"fmt"

	"anomalia/internal/core"
	"anomalia/internal/scenario"
)

// ByzantineConfig parameterizes the collusion study (the paper's future
// work, Section VIII): how many colluders does it take to defeat the
// characterizer?
type ByzantineConfig struct {
	// Scenario is the honest-world generator configuration.
	Scenario scenario.Config
	// Windows is the number of attacked windows per measurement.
	Windows int
	// ColluderCounts sweeps the collusion size.
	ColluderCounts []int
}

// DefaultByzantine returns a study around the paper's operating point.
func DefaultByzantine() ByzantineConfig {
	return ByzantineConfig{
		Scenario: scenario.Config{
			N: 1000, D: 2, R: 0.03, Tau: 3, A: 12, G: 0.5,
			EnforceR3: true, Seed: 7,
		},
		Windows:        15,
		ColluderCounts: []int{1, 2, 3, 4, 5, 8},
	}
}

// AblationByzantine measures attack success rates: for the mimic attack,
// the fraction of attacked windows in which the isolated victim's verdict
// flipped to massive (its legitimate report suppressed); for the scatter
// attack, the fraction in which an honest member of a massive group lost
// its massive verdict (false local fault). Success should jump once the
// colluders can push the victim's neighbourhood across the τ threshold.
func AblationByzantine(cfg ByzantineConfig) (*Table, error) {
	if cfg.Windows < 1 {
		return nil, fmt.Errorf("windows = %d: %w", cfg.Windows, scenario.ErrConfig)
	}
	t := &Table{
		Title: fmt.Sprintf("Future work: collusion attacks (n=%d, tau=%d, %d windows each)",
			cfg.Scenario.N, cfg.Scenario.Tau, cfg.Windows),
		Header: []string{"attack", "colluders", "attempted", "succeeded", "success"},
	}
	for _, kind := range []scenario.AttackKind{scenario.AttackMimic, scenario.AttackScatter} {
		for _, colluders := range cfg.ColluderCounts {
			attempted, succeeded, err := runAttack(cfg, kind, colluders)
			if err != nil {
				return nil, fmt.Errorf("%v with %d colluders: %w", kind, colluders, err)
			}
			rate := 0.0
			if attempted > 0 {
				rate = float64(succeeded) / float64(attempted)
			}
			t.AddRow(kind.String(),
				fmt.Sprintf("%d", colluders),
				fmt.Sprintf("%d", attempted),
				fmt.Sprintf("%d", succeeded),
				pct(rate))
		}
	}
	return t, nil
}

// runAttack mounts one attack kind over fresh windows and counts verdict
// flips on the victim.
func runAttack(cfg ByzantineConfig, kind scenario.AttackKind, colluders int) (attempted, succeeded int, err error) {
	gen, err := scenario.New(cfg.Scenario)
	if err != nil {
		return 0, 0, err
	}
	classify := func(step *scenario.Step, device int) (core.Class, error) {
		char, err := core.New(step.Pair, step.Abnormal, core.Config{
			R: cfg.Scenario.R, Tau: cfg.Scenario.Tau, Exact: true,
		})
		if err != nil {
			return core.ClassUnknown, err
		}
		res, err := char.Characterize(device)
		if err != nil {
			return core.ClassUnknown, err
		}
		return res.Class, nil
	}
	for w := 0; w < cfg.Windows; w++ {
		step, err := gen.Step()
		if err != nil {
			return 0, 0, err
		}
		attack := scenario.Attack{Kind: kind, Colluders: colluders, Seed: int64(w)}
		res, err := attack.Apply(step, cfg.Scenario.Tau)
		if err != nil {
			if errors.Is(err, scenario.ErrAttack) {
				continue // window not attackable (no suitable event)
			}
			return 0, 0, err
		}
		attempted++
		after, err := classify(step, res.Victim)
		if err != nil {
			return 0, 0, err
		}
		switch kind {
		case scenario.AttackMimic:
			if after == core.ClassMassive {
				succeeded++
			}
		case scenario.AttackScatter:
			if after != core.ClassMassive {
				succeeded++
			}
		}
	}
	return attempted, succeeded, nil
}
