package experiments

import (
	"testing"
)

func TestWorkedFiguresTable(t *testing.T) {
	t.Parallel()

	tab, err := WorkedFigures()
	if err != nil {
		t.Fatal(err)
	}
	// 6 + 10 + 5 + 5 + 7 + 8 = 41 devices across the six figures.
	if len(tab.Rows) != 41 {
		t.Fatalf("rows = %d, want 41", len(tab.Rows))
	}
	// Figure 5 device 1 is the paper's flagship Theorem-7 case.
	found := false
	for _, row := range tab.Rows {
		if row[0] == "figure5" && row[1] == "1" {
			found = true
			if row[2] != "massive" || row[3] != "theorem7" {
				t.Errorf("figure5 device 1 = %v, want massive by theorem7", row)
			}
			if row[4] != "{1,2}" {
				t.Errorf("figure5 device 1 J = %v, want {1,2}", row[4])
			}
		}
	}
	if !found {
		t.Fatal("figure5 device 1 missing from table")
	}
	// Isolated rows show empty J/L.
	for _, row := range tab.Rows {
		if row[2] == "isolated" && (row[4] != "-" || row[5] != "-" || row[6] != "-") {
			t.Errorf("isolated row with neighbourhood data: %v", row)
		}
	}
}

func TestFmtHelpers(t *testing.T) {
	t.Parallel()

	if fmtSet(nil) != "-" || fmtSet([]int{0, 2}) != "{1,3}" {
		t.Error("fmtSet misbehaved")
	}
	if fmtFamily(nil) != "-" || fmtFamily([][]int{{0}, {1, 2}}) != "{1} {2,3}" {
		t.Error("fmtFamily misbehaved")
	}
}
