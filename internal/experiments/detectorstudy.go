package experiments

import (
	"fmt"

	"anomalia/internal/detect"
	"anomalia/internal/stats"
	"anomalia/internal/trace"
)

// DetectorStudyConfig parameterizes the error-detection-function
// comparison: every detector family the paper cites, measured on the same
// synthesized QoS traces with ground-truth incident times.
type DetectorStudyConfig struct {
	// Traces is the number of independent traces per detector.
	Traces int
	// Length is the trace length in samples.
	Length int
	// Warmup samples at the start carry no incidents.
	Warmup int
	// DetectWindow is the number of samples after an incident start
	// within which a flag counts as a detection.
	DetectWindow int
	// Seed drives trace synthesis.
	Seed int64
}

// DefaultDetectorStudy returns a moderate-size study.
func DefaultDetectorStudy() DetectorStudyConfig {
	return DetectorStudyConfig{
		Traces:       20,
		Length:       600,
		Warmup:       100,
		DetectWindow: 10,
		Seed:         1,
	}
}

// detectorUnderStudy pairs a name with a fresh-detector factory.
type detectorUnderStudy struct {
	name  string
	build func() (detect.Detector, error)
}

func studyDetectors() []detectorUnderStudy {
	return []detectorUnderStudy{
		{"threshold", func() (detect.Detector, error) { return detect.NewThreshold(0.08) }},
		{"ewma", func() (detect.Detector, error) { return detect.NewEWMA(0.2, 5, 0.015, 10) }},
		{"cusum", func() (detect.Detector, error) { return detect.NewCUSUM(0.01, 0.1, 0.05) }},
		{"holt-winters", func() (detect.Detector, error) { return detect.NewHoltWinters(0.4, 0.2, 0, 6, 0.06, 0) }},
		{"kalman", func() (detect.Detector, error) { return detect.NewKalman(5e-5, 5e-4, 5) }},
		{"shewhart", func() (detect.Detector, error) { return detect.NewShewhart(6, 0.02, 10) }},
	}
}

// DetectorStudy measures, for each error-detection function the paper
// cites, the detection rate and latency on sharp dips and slow drifts,
// plus the false-alarm rate on calm stretches — the trade-offs behind the
// choice of a_k(j).
func DetectorStudy(cfg DetectorStudyConfig) (*Table, error) {
	if cfg.Traces < 1 || cfg.Length <= cfg.Warmup {
		return nil, fmt.Errorf("traces %d length %d warmup %d: %w",
			cfg.Traces, cfg.Length, cfg.Warmup, trace.ErrTraceConfig)
	}
	t := &Table{
		Title: fmt.Sprintf("Detector study: %d traces of %d samples each", cfg.Traces, cfg.Length),
		Header: []string{
			"detector", "dip detect", "dip latency", "drift detect", "false/1k calm",
		},
	}
	for _, d := range studyDetectors() {
		row, err := studyOne(cfg, d)
		if err != nil {
			return nil, fmt.Errorf("detector %s: %w", d.name, err)
		}
		t.AddRow(row...)
	}
	return t, nil
}

// studyOne measures one detector family over fresh traces.
func studyOne(cfg DetectorStudyConfig, d detectorUnderStudy) ([]string, error) {
	var (
		dipHits, driftHits int
		dipLatency         stats.Welford
		falseAlarms        int
		calmSamples        int
	)
	const (
		dipMagnitude   = 0.25
		driftMagnitude = 0.2
	)
	for tr := 0; tr < cfg.Traces; tr++ {
		// One dip and one drift per trace, placed deterministically.
		dipAt := cfg.Warmup + 50
		driftAt := cfg.Length * 2 / 3
		driftDur := 40
		events := []trace.Event{
			{Kind: trace.Dip, At: dipAt, Duration: 20, Magnitude: dipMagnitude},
			{Kind: trace.Drift, At: driftAt, Duration: driftDur, Magnitude: driftMagnitude},
		}
		xs, err := trace.Generate(trace.Config{
			Base: 0.92, Rho: 0.4, NoiseStd: 0.008,
			Seed: cfg.Seed + int64(tr),
		}, cfg.Length, events)
		if err != nil {
			return nil, err
		}
		det, err := d.build()
		if err != nil {
			return nil, err
		}
		dipSeen, driftSeen := false, false
		for i, x := range xs {
			flagged := det.Update(x)
			if !flagged {
				continue
			}
			switch {
			case i >= dipAt && i < dipAt+cfg.DetectWindow:
				if !dipSeen {
					dipSeen = true
					dipHits++
					dipLatency.Add(float64(i - dipAt))
				}
			case i >= driftAt && i < driftAt+driftDur+cfg.DetectWindow:
				if !driftSeen {
					driftSeen = true
					driftHits++
				}
			case i > cfg.Warmup && (i < dipAt || (i >= dipAt+25 && i < driftAt)):
				falseAlarms++
			}
		}
		// Calm samples: between warmup and the dip, and between dip
		// recovery and the drift.
		calmSamples += (dipAt - cfg.Warmup) + (driftAt - dipAt - 25)
	}
	rate := func(hits int) string {
		return pct(float64(hits) / float64(cfg.Traces))
	}
	faPer1k := 0.0
	if calmSamples > 0 {
		faPer1k = 1000 * float64(falseAlarms) / float64(calmSamples)
	}
	return []string{
		d.name,
		rate(dipHits),
		fmt.Sprintf("%.1f", dipLatency.Mean()),
		rate(driftHits),
		fmt.Sprintf("%.2f", faPer1k),
	}, nil
}
