package experiments

import (
	"errors"
	"strconv"
	"testing"

	"anomalia/internal/trace"
)

func TestDetectorStudyRuns(t *testing.T) {
	t.Parallel()

	cfg := DefaultDetectorStudy()
	cfg.Traces = 8
	tab, err := DetectorStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 detector families", len(tab.Rows))
	}
	// Every detector must catch the majority of sharp dips.
	for _, row := range tab.Rows {
		v := parsePct(t, row[1])
		if v < 75 {
			t.Errorf("%s dip detection = %v%%, want >= 75%%", row[0], v)
		}
	}
	// CUSUM must be among the drift catchers (its design purpose).
	for _, row := range tab.Rows {
		if row[0] != "cusum" {
			continue
		}
		if v := parsePct(t, row[3]); v < 75 {
			t.Errorf("cusum drift detection = %v%%, want >= 75%%", v)
		}
	}
}

func TestDetectorStudyValidation(t *testing.T) {
	t.Parallel()

	cfg := DefaultDetectorStudy()
	cfg.Traces = 0
	if _, err := DetectorStudy(cfg); !errors.Is(err, trace.ErrTraceConfig) {
		t.Errorf("traces=0 error = %v", err)
	}
	cfg = DefaultDetectorStudy()
	cfg.Warmup = cfg.Length
	if _, err := DetectorStudy(cfg); !errors.Is(err, trace.ErrTraceConfig) {
		t.Errorf("warmup >= length error = %v", err)
	}
}

func TestDistCostGrowsSublinearly(t *testing.T) {
	t.Parallel()

	cfg := DefaultDistCost()
	cfg.N = 500
	cfg.As = []int{5, 40}
	cfg.Steps = 3
	tab, err := DistCost(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// The per-device view depends on local density, not on |A_k|: an 8x
	// error load must not inflate per-device messages by anything close
	// to 8x (that is the scalability argument against centralization).
	lo := parseFloat(t, tab.Rows[0][2])
	hi := parseFloat(t, tab.Rows[1][2])
	if hi > 4*lo {
		t.Errorf("messages grew from %v to %v across an 8x load increase", lo, hi)
	}
}

func parseFloat(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}
