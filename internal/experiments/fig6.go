package experiments

import (
	"fmt"

	"anomalia/internal/dimension"
)

// Fig6aConfig parameterizes the Figure 6(a) sweep: the CDF of the
// vicinity population P{N_r(j) <= m} for several consistency radii.
type Fig6aConfig struct {
	// N is the population size (paper: 1000).
	N int
	// D is the QoS dimension (paper: 2).
	D int
	// Rs are the consistency radii (paper: 0.1, 0.05, 0.033, 0.025, 0.02);
	// the vicinity has radius 2r.
	Rs []float64
	// MaxM is the largest vicinity size plotted (paper: 200).
	MaxM int
	// StepM is the m increment between rows.
	StepM int
}

// DefaultFig6a returns the paper's Figure 6(a) parameters.
func DefaultFig6a() Fig6aConfig {
	return Fig6aConfig{
		N:     1000,
		D:     2,
		Rs:    []float64{0.1, 0.05, 0.033, 0.025, 0.02},
		MaxM:  200,
		StepM: 5,
	}
}

// Fig6a computes P{N_r(j) <= m} as a function of m for each radius —
// Figure 6(a).
func Fig6a(cfg Fig6aConfig) (*Table, error) {
	if cfg.StepM <= 0 {
		cfg.StepM = 5
	}
	t := &Table{
		Title:  fmt.Sprintf("Figure 6(a): P{N_r(j) <= m}, n=%d, d=%d", cfg.N, cfg.D),
		Header: []string{"m"},
	}
	for _, r := range cfg.Rs {
		t.Header = append(t.Header, fmt.Sprintf("r=%g", r))
	}
	for m := 0; m <= cfg.MaxM; m += cfg.StepM {
		row := []string{fmt.Sprintf("%d", m)}
		for _, r := range cfg.Rs {
			p, err := dimension.NeighborhoodCDF(cfg.N, 2*r, cfg.D, m)
			if err != nil {
				return nil, fmt.Errorf("fig6a at m=%d r=%v: %w", m, r, err)
			}
			row = append(row, f(p))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig6bConfig parameterizes the Figure 6(b) sweep: P{F_r(j) <= τ} as a
// function of the system size for several density thresholds.
type Fig6bConfig struct {
	// D is the QoS dimension (paper: 2).
	D int
	// R is the error-ball radius (paper: 0.03).
	R float64
	// B is the per-device isolated-error probability (paper: 0.005).
	B float64
	// Taus are the density thresholds (paper: 2..5).
	Taus []int
	// MaxN is the largest population (paper: 15000).
	MaxN int
	// StepN is the population increment between rows.
	StepN int
}

// DefaultFig6b returns the paper's Figure 6(b) parameters.
func DefaultFig6b() Fig6bConfig {
	return Fig6bConfig{
		D:     2,
		R:     0.03,
		B:     0.005,
		Taus:  []int{2, 3, 4, 5},
		MaxN:  15000,
		StepN: 500,
	}
}

// Fig6b computes P{F_r(j) <= τ} as a function of n for each τ —
// Figure 6(b).
func Fig6b(cfg Fig6bConfig) (*Table, error) {
	if cfg.StepN <= 0 {
		cfg.StepN = 500
	}
	t := &Table{
		Title:  fmt.Sprintf("Figure 6(b): P{F_r(j) <= tau}, r=%g, b=%g", cfg.R, cfg.B),
		Header: []string{"n"},
	}
	for _, tau := range cfg.Taus {
		t.Header = append(t.Header, fmt.Sprintf("tau=%d", tau))
	}
	for n := cfg.StepN; n <= cfg.MaxN; n += cfg.StepN {
		row := []string{fmt.Sprintf("%d", n)}
		for _, tau := range cfg.Taus {
			p, err := dimension.ImpactCDFFast(n, cfg.R, cfg.D, tau, cfg.B)
			if err != nil {
				return nil, fmt.Errorf("fig6b at n=%d tau=%d: %w", n, tau, err)
			}
			row = append(row, fmt.Sprintf("%.6f", p))
		}
		t.AddRow(row...)
	}
	return t, nil
}
