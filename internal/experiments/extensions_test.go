package experiments

import (
	"errors"
	"strconv"
	"strings"
	"testing"

	"anomalia/internal/scenario"
)

func parsePct(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestGranularityShrinksUnresolved(t *testing.T) {
	t.Parallel()

	cfg := DefaultGranularity()
	cfg.N = 600
	cfg.TotalErrors = 36
	cfg.Splits = []int{1, 6}
	cfg.Bursts = 4
	tab, err := Granularity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	coarse := parsePct(t, tab.Rows[0][2])
	fine := parsePct(t, tab.Rows[1][2])
	if fine > coarse {
		t.Errorf("finer sampling increased unresolved ratio: %v%% -> %v%%", coarse, fine)
	}
}

func TestGranularityValidation(t *testing.T) {
	t.Parallel()

	cfg := DefaultGranularity()
	cfg.TotalErrors = 0
	if _, err := Granularity(cfg); !errors.Is(err, scenario.ErrConfig) {
		t.Errorf("zero errors = %v", err)
	}
	cfg = DefaultGranularity()
	cfg.Splits = []int{7} // does not divide 60
	if _, err := Granularity(cfg); !errors.Is(err, scenario.ErrConfig) {
		t.Errorf("bad split = %v", err)
	}
}

func TestAblationByzantine(t *testing.T) {
	t.Parallel()

	cfg := DefaultByzantine()
	cfg.Windows = 6
	cfg.ColluderCounts = []int{1, 5}
	tab, err := AblationByzantine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 2 attacks x 2 colluder counts.
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	// Locate the mimic rows: with tau=3, one colluder cannot make a lone
	// victim's neighbourhood dense, five can. Success must not decrease
	// with more colluders.
	var mimic1, mimic5 float64 = -1, -1
	for _, row := range tab.Rows {
		if row[0] != "mimic" {
			continue
		}
		switch row[1] {
		case "1":
			mimic1 = parsePct(t, row[4])
		case "5":
			mimic5 = parsePct(t, row[4])
		}
	}
	if mimic1 < 0 || mimic5 < 0 {
		t.Fatalf("mimic rows missing: %+v", tab.Rows)
	}
	if mimic5 < mimic1 {
		t.Errorf("more colluders lowered mimic success: %v%% -> %v%%", mimic1, mimic5)
	}
	if mimic5 < 50 {
		t.Errorf("5 colluders vs tau=3 should usually succeed, got %v%%", mimic5)
	}
}

func TestAblationByzantineValidation(t *testing.T) {
	t.Parallel()

	cfg := DefaultByzantine()
	cfg.Windows = 0
	if _, err := AblationByzantine(cfg); !errors.Is(err, scenario.ErrConfig) {
		t.Errorf("windows=0 error = %v", err)
	}
}
