package experiments

import (
	"fmt"

	"anomalia/internal/scenario"
)

// TablesConfig parameterizes Tables II and III: the paper generates
// configurations maximizing massive anomalies (G = ε) with A = 20 errors,
// n = 1000 devices, r = 0.03, τ = 3.
type TablesConfig struct {
	// Scenario is the generator configuration.
	Scenario scenario.Config
	// Steps is the number of simulated windows averaged over.
	Steps int
}

// DefaultTables returns the paper's Table II/III parameters. The
// generator runs in concomitant mode with displacements bounded by the
// vicinity diameter 2r — the calibration that reproduces the paper's
// |A_k| ≈ 95.7 and its unresolved-configuration levels (see
// EXPERIMENTS.md).
func DefaultTables() TablesConfig {
	return TablesConfig{
		Scenario: scenario.Config{
			N:           1000,
			D:           2,
			R:           0.03,
			Tau:         3,
			A:           20,
			G:           0.05, // the paper's "small constant ε"
			EnforceR3:   true,
			Concomitant: true,
			MaxShift:    0.06, // 2r
			Seed:        1,
		},
		Steps: 50,
	}
}

// Table2 reproduces Table II: the average repartition of the abnormal set
// between I_k (Theorem 5), M_k found by Theorem 6, U_k (Corollary 8) and
// the extra M_k recovered by Theorem 7. Returns the rendered table and
// the raw stats.
func Table2(cfg TablesConfig) (*Table, SimStats, error) {
	st, err := RunSim(SimConfig{Scenario: cfg.Scenario, Steps: cfg.Steps, Exact: true})
	if err != nil {
		return nil, SimStats{}, fmt.Errorf("table II simulation: %w", err)
	}
	t := &Table{
		Title: fmt.Sprintf("Table II: repartition of A_k (A=%d, n=%d, r=%g, tau=%d, mean |A_k|=%.1f)",
			cfg.Scenario.A, cfg.Scenario.N, cfg.Scenario.R, cfg.Scenario.Tau, st.MeanAbnormal),
		Header: []string{"|I_k| (Thm 5)", "|M_k| (Thm 6)", "|U_k| (Cor 8)", "|M_k| extra (Thm 7)"},
	}
	t.AddRow(pct(st.FracIsolated), pct(st.FracMassive6), pct(st.FracUnresolved), pct(st.FracMassive7))
	return t, st, nil
}

// Table3 reproduces Table III: the average per-device decision cost in
// each class — maximal motions for isolated devices, maximal dense
// motions for Theorem 6 massives, and collections tested for Corollary 8
// / Theorem 7 devices.
func Table3(cfg TablesConfig) (*Table, SimStats, error) {
	st, err := RunSim(SimConfig{Scenario: cfg.Scenario, Steps: cfg.Steps, Exact: true})
	if err != nil {
		return nil, SimStats{}, fmt.Errorf("table III simulation: %w", err)
	}
	t := &Table{
		Title: fmt.Sprintf("Table III: average decision cost per device (A=%d, n=%d, r=%g, tau=%d)",
			cfg.Scenario.A, cfg.Scenario.N, cfg.Scenario.R, cfg.Scenario.Tau),
		Header: []string{"I_k (Thm 5)", "M_k (Thm 6)", "U_k (Cor 8)", "M_k (Thm 7)"},
	}
	t.AddRow(f(st.CostIsolated), f(st.CostMassive6), f(st.CostUnresolved), f(st.CostMassive7))
	return t, st, nil
}
