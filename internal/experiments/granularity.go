package experiments

import (
	"fmt"

	"anomalia/internal/scenario"
)

// GranularityConfig parameterizes the Section VII-C experiment: a fixed
// error load observed at different sampling granularities.
type GranularityConfig struct {
	// N, D, R, Tau mirror the generator parameters.
	N, D int
	R    float64
	Tau  int
	// TotalErrors is the error load per burst (e.g. 60).
	TotalErrors int
	// Splits lists how many observation windows the burst is divided
	// into; each split w simulates windows of TotalErrors/w errors.
	Splits []int
	// G is the isolated-error probability.
	G float64
	// Bursts is the number of bursts averaged per split.
	Bursts int
	// Seed drives the simulation.
	Seed int64
}

// DefaultGranularity returns the parameters backing the paper's claim
// that sampling more often "drastically shrinks" the number of unresolved
// configurations.
func DefaultGranularity() GranularityConfig {
	return GranularityConfig{
		N: 1000, D: 2, R: 0.03, Tau: 3,
		TotalErrors: 60,
		Splits:      []int{1, 2, 3, 6, 12},
		G:           0.3,
		Bursts:      10,
		Seed:        1,
	}
}

// Granularity measures the aggregate |U_k|/|A_k| when the same error load
// is observed through 1, 2, ... windows: faster sampling means fewer
// concomitant errors per window, hence fewer unresolved configurations —
// the quantitative version of Section VII-C.
func Granularity(cfg GranularityConfig) (*Table, error) {
	if cfg.TotalErrors < 1 || cfg.Bursts < 1 {
		return nil, fmt.Errorf("total errors %d, bursts %d: %w",
			cfg.TotalErrors, cfg.Bursts, scenario.ErrConfig)
	}
	t := &Table{
		Title: fmt.Sprintf("Section VII-C: sampling granularity (total load %d errors, n=%d, G=%g)",
			cfg.TotalErrors, cfg.N, cfg.G),
		Header: []string{"windows per burst", "errors per window", "|U_k|/|A_k|", "missed massive"},
	}
	for _, w := range cfg.Splits {
		if w < 1 || cfg.TotalErrors%w != 0 {
			return nil, fmt.Errorf("split %d does not divide %d: %w", w, cfg.TotalErrors, scenario.ErrConfig)
		}
		st, err := RunSim(SimConfig{
			Scenario: scenario.Config{
				N: cfg.N, D: cfg.D, R: cfg.R, Tau: cfg.Tau,
				A: cfg.TotalErrors / w, G: cfg.G,
				EnforceR3: true, Concomitant: true, MaxShift: 2 * cfg.R,
				Seed: cfg.Seed,
			},
			Steps: w * cfg.Bursts,
			Exact: true,
		})
		if err != nil {
			return nil, fmt.Errorf("split %d: %w", w, err)
		}
		t.AddRow(
			fmt.Sprintf("%d", w),
			fmt.Sprintf("%d", cfg.TotalErrors/w),
			pct(st.URatio),
			pct(st.MassiveMissRate),
		)
	}
	return t, nil
}
