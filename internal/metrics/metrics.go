// Package metrics is the runtime observability surface: a small,
// dependency-free registry of counters, gauges and fixed-bucket
// histograms with a Prometheus text-format exporter. It exists so the
// Monitor's per-window ledgers (tick latency by phase, abnormal-set
// churn, advance-vs-rebuild decisions, the health split, the directory
// wire counters, GC pressure) stop being end-of-run printouts and
// become a live scrape target.
//
// The hot-path contract: recording — Counter.Add/Set, Gauge.Set,
// Histogram.Observe — is a handful of atomic operations and never
// allocates, so instrumentation is admissible inside the quiet-tick
// alloc gates (the instrumented n=1M quiet tick is benchmarked and
// gated at no added allocation over the plain one). Registration
// allocates and takes a lock; do it at construction time, not per
// window. Export allocates freely — a scrape is off the hot path by
// definition.
//
// Concurrency: every value type is safe for concurrent use. A scraper
// goroutine serving /metrics reads the same atomics a Monitor writes
// mid-Observe; no snapshot coordination is needed because each sample
// is a single word. Families render in registration order, so the text
// exposition is deterministic for a fixed wiring — what the golden
// exporter test pins.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Label is one constant name="value" pair attached to a series at
// registration time. Values are escaped on export; names must be valid
// Prometheus label names.
type Label struct {
	Name  string
	Value string
}

// Kind discriminates the metric families.
type Kind uint8

// Family kinds, in Prometheus TYPE vocabulary.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Counter is a monotone int64. Add increments it; Set overwrites it
// with an absolute value, for feeds that mirror an external lifetime
// counter (the Monitor's health and wire ledgers accumulate elsewhere
// and are published here per window). Both are single atomic stores.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Set overwrites the counter with an absolute value. The caller owns
// monotonicity; Set exists for mirroring lifetime ledgers kept
// elsewhere.
func (c *Counter) Set(v int64) { c.v.Store(v) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 that goes up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets chosen at
// registration. Observe is zero-allocation: a linear scan over the
// (small, sorted) bound slice, one bucket increment, one count
// increment and a CAS loop folding the value into the sum.
type Histogram struct {
	bounds []float64      // ascending upper bounds; +Inf bucket is implicit
	counts []atomic.Int64 // len(bounds)+1, non-cumulative
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket
// counts by linear interpolation inside the holding bucket — the usual
// histogram_quantile estimate. The +Inf bucket clamps to the highest
// finite bound (there is nothing to interpolate against); an empty
// histogram returns NaN.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum)+float64(c) >= rank {
			if i >= len(h.bounds) { // +Inf bucket
				if len(h.bounds) == 0 {
					return math.NaN()
				}
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	if len(h.bounds) == 0 {
		return math.NaN()
	}
	return h.bounds[len(h.bounds)-1]
}

// DefBuckets are general-purpose latency buckets in seconds, 100µs to
// ~100s in roughly 3x steps — wide enough to hold both a quiet
// million-device tick and an adversarial mass-event window.
var DefBuckets = []float64{
	1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1, 3, 10, 30, 100,
}

// series is one labelled sample of a family.
type series struct {
	labels []Label
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

// family groups every series sharing one metric name: the unit the
// exporter emits one HELP/TYPE header for.
type family struct {
	name   string
	help   string
	kind   Kind
	series []*series
}

// Registry holds metric families and renders them in the Prometheus
// text format. The zero value is not usable; call NewRegistry.
// Registration is mutex-guarded and idempotent (same name, kind and
// label set returns the existing value holder); recording on the
// returned holders is lock-free.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
	onScrape []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// OnScrape registers a hook run at the start of every WritePrometheus
// call — the place to sample state that is only worth reading when
// someone is looking (process memory stats in the shard server, for
// example). Hooks run in registration order under the registry lock,
// so they must not register metrics or scrape recursively.
func (r *Registry) OnScrape(f func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onScrape = append(r.onScrape, f)
}

// validateName panics on names outside the Prometheus grammar —
// registration happens at construction time, so a bad name is a
// programming error, not an input error.
func validateName(name string) {
	if name == "" {
		panic("metrics: empty metric name")
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			panic(fmt.Sprintf("metrics: invalid metric name %q", name))
		}
	}
}

func labelsEqual(a, b []Label) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// lookup finds or creates the family and series for (name, kind,
// labels). A name reused with a different kind panics: the exposition
// format cannot express it.
func (r *Registry) lookup(name, help string, kind Kind, labels []Label) *series {
	validateName(name)
	for _, l := range labels {
		validateName(l.Name)
	}
	sorted := make([]Label, len(labels))
	copy(sorted, labels)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })

	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.byName[name] = f
		r.families = append(r.families, f)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as %s and %s", name, f.kind, kind))
	}
	for _, s := range f.series {
		if labelsEqual(s.labels, sorted) {
			return s
		}
	}
	s := &series{labels: sorted}
	switch kind {
	case KindCounter:
		s.ctr = &Counter{}
	case KindGauge:
		s.gauge = &Gauge{}
	}
	// Histograms fill h in the caller, which knows the bounds.
	f.series = append(f.series, s)
	return s
}

// Counter registers (or returns the existing) counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.lookup(name, help, KindCounter, labels).ctr
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.lookup(name, help, KindGauge, labels).gauge
}

// Histogram registers (or returns the existing) histogram series with
// the given ascending upper bounds (nil selects DefBuckets). Bounds
// are fixed for the series' lifetime; a re-registration's bounds are
// ignored in favour of the existing ones.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	s := r.lookup(name, help, KindHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.hist == nil {
		if bounds == nil {
			bounds = DefBuckets
		}
		for i := 1; i < len(bounds); i++ {
			if !(bounds[i] > bounds[i-1]) {
				panic(fmt.Sprintf("metrics: %s: histogram bounds not ascending", name))
			}
		}
		own := make([]float64, len(bounds))
		copy(own, bounds)
		s.hist = &Histogram{bounds: own, counts: make([]atomic.Int64, len(own)+1)}
	}
	return s.hist
}

// FamilyNames returns the registered family names in registration
// order — the doc-sync tests' source of truth.
func (r *Registry) FamilyNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, len(r.families))
	for i, f := range r.families {
		names[i] = f.name
	}
	return names
}
