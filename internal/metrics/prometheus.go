package metrics

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// escapeHelp escapes HELP text per the Prometheus text format:
// backslash and newline.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeLabel escapes a label value: backslash, double quote, newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeLabels renders {a="x",b="y"} (empty for no labels), with extra
// appended after the constant labels — the histogram "le" slot.
func writeLabels(w *bufio.Writer, labels []Label, extra ...Label) {
	if len(labels) == 0 && len(extra) == 0 {
		return
	}
	w.WriteByte('{')
	first := true
	for _, l := range append(labels, extra...) {
		if !first {
			w.WriteByte(',')
		}
		first = false
		w.WriteString(l.Name)
		w.WriteString(`="`)
		w.WriteString(escapeLabel(l.Value))
		w.WriteByte('"')
	}
	w.WriteByte('}')
}

// WritePrometheus renders every family in the Prometheus text
// exposition format (version 0.0.4), running the OnScrape hooks first.
// Families appear in registration order, series in their registration
// order within the family, so the output is deterministic for a fixed
// wiring.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	hooks := make([]func(), len(r.onScrape))
	copy(hooks, r.onScrape)
	r.mu.Unlock()
	for _, f := range hooks {
		f()
	}

	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(f.help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')
		for _, s := range f.series {
			switch f.kind {
			case KindCounter:
				bw.WriteString(f.name)
				writeLabels(bw, s.labels)
				bw.WriteByte(' ')
				bw.WriteString(strconv.FormatInt(s.ctr.Value(), 10))
				bw.WriteByte('\n')
			case KindGauge:
				bw.WriteString(f.name)
				writeLabels(bw, s.labels)
				bw.WriteByte(' ')
				bw.WriteString(formatFloat(s.gauge.Value()))
				bw.WriteByte('\n')
			case KindHistogram:
				h := s.hist
				if h == nil { // registration raced the scrape
					continue
				}
				var cum int64
				for i, bound := range h.bounds {
					cum += h.counts[i].Load()
					bw.WriteString(f.name)
					bw.WriteString("_bucket")
					writeLabels(bw, s.labels, Label{Name: "le", Value: formatFloat(bound)})
					bw.WriteByte(' ')
					bw.WriteString(strconv.FormatInt(cum, 10))
					bw.WriteByte('\n')
				}
				cum += h.counts[len(h.bounds)].Load()
				bw.WriteString(f.name)
				bw.WriteString("_bucket")
				writeLabels(bw, s.labels, Label{Name: "le", Value: "+Inf"})
				bw.WriteByte(' ')
				bw.WriteString(strconv.FormatInt(cum, 10))
				bw.WriteByte('\n')
				bw.WriteString(f.name)
				bw.WriteString("_sum")
				writeLabels(bw, s.labels)
				bw.WriteByte(' ')
				bw.WriteString(formatFloat(h.Sum()))
				bw.WriteByte('\n')
				bw.WriteString(f.name)
				bw.WriteString("_count")
				writeLabels(bw, s.labels)
				bw.WriteByte(' ')
				bw.WriteString(strconv.FormatInt(h.Count(), 10))
				bw.WriteByte('\n')
			}
		}
	}
	return bw.Flush()
}

// Handler serves the registry at any path in the Prometheus text
// format — mount it on /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
