package metrics

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestWritePrometheusGolden pins the full text exposition for a small
// registry: HELP/TYPE lines, label rendering, histogram bucket
// cumulation, the +Inf bucket, _sum/_count, and deterministic
// registration order.
func TestWritePrometheusGolden(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Requests served.", Label{Name: "code", Value: "200"})
	c.Add(7)
	r.Counter("test_requests_total", "Requests served.", Label{Name: "code", Value: "500"}).Inc()
	g := r.Gauge("test_temperature_celsius", "Current temperature.")
	g.Set(36.6)
	h := r.Histogram("test_latency_seconds", "Request latency.", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(100)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_requests_total Requests served.
# TYPE test_requests_total counter
test_requests_total{code="200"} 7
test_requests_total{code="500"} 1
# HELP test_temperature_celsius Current temperature.
# TYPE test_temperature_celsius gauge
test_temperature_celsius 36.6
# HELP test_latency_seconds Request latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.1"} 1
test_latency_seconds_bucket{le="1"} 3
test_latency_seconds_bucket{le="10"} 3
test_latency_seconds_bucket{le="+Inf"} 4
test_latency_seconds_sum 101.05
test_latency_seconds_count 4
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestLabelAndHelpEscaping pins the escaping rules: backslash, quote
// and newline in label values; backslash and newline in help text.
func TestLabelAndHelpEscaping(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	r.Counter("test_weird_total", "line one\nline \\two", Label{Name: "path", Value: "a\\b\"c\nd"}).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_weird_total line one\nline \\two
# TYPE test_weird_total counter
test_weird_total{path="a\\b\"c\nd"} 1
`
	if got := b.String(); got != want {
		t.Fatalf("escaping mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestHandlerServesContentType(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	r.Counter("test_total", "t").Add(3)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "test_total 3") {
		t.Fatalf("body missing sample:\n%s", rec.Body.String())
	}
}

func TestOnScrapeRunsBeforeRender(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	g := r.Gauge("test_sampled", "sampled on scrape")
	n := 0.0
	r.OnScrape(func() { n++; g.Set(n) })
	var b strings.Builder
	r.WritePrometheus(&b)
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), "test_sampled 1") || !strings.Contains(b.String(), "test_sampled 2") {
		t.Fatalf("hook not run per scrape:\n%s", b.String())
	}
}

// TestRegistrationIdempotent: same (name, kind, labels) returns the
// same holder whatever the label order; a kind clash panics.
func TestRegistrationIdempotent(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	a := r.Counter("test_total", "t", Label{Name: "a", Value: "1"}, Label{Name: "b", Value: "2"})
	b := r.Counter("test_total", "t", Label{Name: "b", Value: "2"}, Label{Name: "a", Value: "1"})
	if a != b {
		t.Fatal("label order produced distinct series")
	}
	h1 := r.Histogram("test_h", "h", nil)
	h2 := r.Histogram("test_h", "h", []float64{1, 2, 3})
	if h1 != h2 {
		t.Fatal("re-registration replaced histogram")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind clash did not panic")
		}
	}()
	r.Gauge("test_total", "t")
}

func TestValidateName(t *testing.T) {
	t.Parallel()
	for _, bad := range []string{"", "9lives", "a-b", "a b", "héllo"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q accepted", bad)
				}
			}()
			NewRegistry().Counter(bad, "")
		}()
	}
	NewRegistry().Counter("a_b:c_9", "") // must not panic
}

func TestHistogramQuantile(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	h := r.Histogram("test_q", "q", []float64{1, 2, 4})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram quantile not NaN")
	}
	// 100 observations uniform in (0,1], 100 in (1,2].
	for i := 0; i < 100; i++ {
		h.Observe(0.5)
		h.Observe(1.5)
	}
	if q := h.Quantile(0.25); q != 0.5 {
		t.Fatalf("p25 = %v, want 0.5 (midpoint of first bucket)", q)
	}
	if q := h.Quantile(0.5); q != 1 {
		t.Fatalf("p50 = %v, want 1 (first bucket boundary)", q)
	}
	if q := h.Quantile(0.75); q != 1.5 {
		t.Fatalf("p75 = %v, want 1.5", q)
	}
	if q := h.Quantile(1); q != 2 {
		t.Fatalf("p100 = %v, want 2", q)
	}
	// An observation beyond the last finite bound clamps there.
	h.Observe(1000)
	if q := h.Quantile(0.9999); q != 4 {
		t.Fatalf("+Inf-bucket quantile = %v, want clamp to 4", q)
	}
}

func TestHistogramSumAndCount(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	h := r.Histogram("test_s", "s", nil) // DefBuckets
	for i := 1; i <= 10; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 10 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Sum() != 55 {
		t.Fatalf("sum %v", h.Sum())
	}
}

// TestConcurrentRecordAndScrape hammers every holder type from many
// goroutines while others scrape and register — the -race pin for the
// package's concurrency contract.
func TestConcurrentRecordAndScrape(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	c := r.Counter("test_total", "t")
	g := r.Gauge("test_g", "g")
	h := r.Histogram("test_h", "h", nil)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i) * 1e-3)
				if i%100 == 0 {
					r.Counter("test_late_total", "late", Label{Name: "w", Value: "x"}).Inc()
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				var b strings.Builder
				if err := r.WritePrometheus(&b); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count %d, want 8000", h.Count())
	}
	if h.Sum() < 0 {
		t.Fatal("sum corrupted")
	}
}

// BenchmarkRecord pins the zero-allocation contract of the hot-path
// record calls.
func BenchmarkRecord(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "b")
	g := r.Gauge("bench_g", "b")
	h := r.Histogram("bench_h", "b", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		g.Set(float64(i))
		h.Observe(float64(i&1023) * 1e-3)
	}
	if b.N > 0 { // keep holders live
		_ = c.Value()
	}
}
