// Package health tracks the per-device report health that degraded-mode
// ingestion is built on. The paper's fleet is millions of autonomous
// devices self-reporting QoS; at that scale a snapshot is never complete
// — devices drop out, lag and misreport as a matter of course — and an
// all-or-nothing ingest path lets one straggler stall the whole fleet's
// characterization. The tracker keeps a small state machine per device:
//
//	live ──fault──► stale ──(> HoldTicks faults)──► quarantined
//	 ▲               │                                  │
//	 └──clean────────┘        (ReadmitTicks clean)──────┘
//
// A live device's reports are consumed as they arrive. A device whose
// report is missing or malformed turns stale: for up to HoldTicks
// consecutive faulty ticks its last-known value is held — the device
// stays in the window's population at its last observed position — and
// a single clean report returns it to live. Past HoldTicks the device
// is quarantined: excluded from the window's population (no detector
// update, never abnormal) until ReadmitTicks consecutive clean reports
// re-admit it; the re-admitting report itself is consumed, earlier ones
// in the run are dropped. The disposition of every report is a pure
// function of the per-device clean/faulty history, which is what makes
// a degraded stream reproducible against an oracle fed only the clean
// subset.
//
// A Tracker is not safe for concurrent use; it is owned by the monitor
// that owns the ingest clock.
package health

import (
	"errors"
	"fmt"
)

// ErrPolicy is returned for invalid policies or tracker geometries.
var ErrPolicy = errors.New("health: invalid configuration")

// State is a device's position in the health state machine.
type State uint8

// Health states. The zero value is Live so a fresh tracker is all-live.
const (
	// Live: reporting cleanly; reports are consumed as they arrive.
	Live State = iota
	// Stale: missing or malformed for at most HoldTicks consecutive
	// ticks; the device's last-known value is held in its place.
	Stale
	// Quarantined: faulty past HoldTicks; excluded from the window's
	// population until ReadmitTicks consecutive clean reports.
	Quarantined
)

// String names the state.
func (s State) String() string {
	switch s {
	case Live:
		return "live"
	case Stale:
		return "stale"
	case Quarantined:
		return "quarantined"
	default:
		return "unknown"
	}
}

// Disposition is what the ingest path should do with one device's slot
// of the current tick.
type Disposition uint8

const (
	// Consume: feed the delivered report to the device's detectors.
	Consume Disposition = iota
	// Hold: no usable report; feed the device's last-known value and
	// keep it in the window's population.
	Hold
	// Skip: exclude the device from this window — no detector update,
	// the device cannot be abnormal, its position stays parked.
	Skip
)

// Policy configures the state machine.
type Policy struct {
	// HoldTicks is K: how many consecutive missing/malformed ticks a
	// device's last-known value is held before it is quarantined. 0
	// quarantines on the first faulty tick.
	HoldTicks int
	// ReadmitTicks is R: how many consecutive clean reports a
	// quarantined device needs before it rejoins the population. The
	// R-th report is consumed; at least 1.
	ReadmitTicks int
}

// DefaultPolicy holds a device for 2 ticks and re-admits after 2
// consecutive clean reports.
func DefaultPolicy() Policy { return Policy{HoldTicks: 2, ReadmitTicks: 2} }

// Validate rejects nonsensical policies.
func (p Policy) Validate() error {
	if p.HoldTicks < 0 {
		return fmt.Errorf("hold ticks %d: %w", p.HoldTicks, ErrPolicy)
	}
	if p.ReadmitTicks < 1 {
		return fmt.Errorf("readmit ticks %d: %w", p.ReadmitTicks, ErrPolicy)
	}
	return nil
}

// Stats are the tracker's lifetime counters.
type Stats struct {
	// Quarantines counts live/stale → quarantined transitions.
	Quarantines int64
	// Readmissions counts quarantined → live transitions.
	Readmissions int64
	// HeldTicks counts device-ticks served from a held last-known value.
	HeldTicks int64
	// DroppedReports counts clean reports dropped because the device was
	// still quarantined (the first ReadmitTicks-1 of each re-admission
	// run, plus runs that broke).
	DroppedReports int64
	// FaultyTicks counts device-ticks whose report was missing or
	// malformed.
	FaultyTicks int64
}

// Tracker is the per-device health state of one monitored fleet.
type Tracker struct {
	policy Policy
	states []State
	// run is the device's current streak: consecutive faulty ticks for
	// live/stale devices, consecutive clean reports for quarantined ones.
	run []int32
	// seen marks devices that have delivered at least one consumed
	// report — only they have a last-known value to hold. allSeen is the
	// fast-path form: a fully-clean all-live tick consumes every device's
	// report without per-device Report calls, and one such tick gives the
	// whole fleet a last-known value at once (seen is monotone until
	// Reset, so a single flag is exact).
	seen    []bool
	allSeen bool
	// impaired counts devices not Live, so an all-clean tick over an
	// all-live fleet can skip per-device bookkeeping entirely.
	impaired int
	stale    int
	quar     int
	stats    Stats
}

// New builds a tracker for n devices, all live.
func New(n int, p Policy) (*Tracker, error) {
	if n < 1 {
		return nil, fmt.Errorf("%d devices: %w", n, ErrPolicy)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Tracker{
		policy: p,
		states: make([]State, n),
		run:    make([]int32, n),
		seen:   make([]bool, n),
	}, nil
}

// Len returns the fleet size.
func (t *Tracker) Len() int { return len(t.states) }

// Policy returns the configured policy.
func (t *Tracker) Policy() Policy { return t.policy }

// AllLive reports whether every device is live — the fast-path guard:
// when it holds and the tick is fully clean, every disposition is
// Consume and Report need not run at all.
func (t *Tracker) AllLive() bool { return t.impaired == 0 }

// State returns device dev's current health state.
func (t *Tracker) State(dev int) State { return t.states[dev] }

// Counts returns the current population split.
func (t *Tracker) Counts() (live, stale, quarantined int) {
	return len(t.states) - t.stale - t.quar, t.stale, t.quar
}

// Stats returns the lifetime counters.
func (t *Tracker) Stats() Stats { return t.stats }

// Report folds one device's tick into the state machine — clean is
// whether a well-formed report arrived — and returns what the ingest
// path should do with the device's slot. Exactly one Report per device
// per tick.
func (t *Tracker) Report(dev int, clean bool) Disposition {
	if clean {
		return t.reportClean(dev)
	}
	return t.reportFault(dev)
}

// ConsumeAll records a tick in which every device's report was consumed
// without per-device Report calls — the fully-clean fast path over an
// all-live fleet (the caller's guard; no state transitions can be
// pending). After one such tick every device has a last-known value, so
// a later first fault is held, not skipped.
func (t *Tracker) ConsumeAll() { t.allSeen = true }

func (t *Tracker) reportClean(dev int) Disposition {
	switch t.states[dev] {
	case Live:
		t.seen[dev] = true
		return Consume
	case Stale:
		t.states[dev] = Live
		t.run[dev] = 0
		t.stale--
		t.impaired--
		t.seen[dev] = true
		return Consume
	default: // Quarantined
		t.run[dev]++
		if int(t.run[dev]) >= t.policy.ReadmitTicks {
			t.states[dev] = Live
			t.run[dev] = 0
			t.quar--
			t.impaired--
			t.stats.Readmissions++
			t.seen[dev] = true
			return Consume
		}
		t.stats.DroppedReports++
		return Skip
	}
}

func (t *Tracker) reportFault(dev int) Disposition {
	t.stats.FaultyTicks++
	switch t.states[dev] {
	case Live:
		t.impaired++
		if t.policy.HoldTicks == 0 {
			t.states[dev] = Quarantined
			t.run[dev] = 0
			t.quar++
			t.stats.Quarantines++
			return Skip
		}
		t.states[dev] = Stale
		t.run[dev] = 1
		t.stale++
	case Stale:
		t.run[dev]++
		if int(t.run[dev]) > t.policy.HoldTicks {
			t.states[dev] = Quarantined
			t.run[dev] = 0
			t.stale--
			t.quar++
			t.stats.Quarantines++
			return Skip
		}
	default: // Quarantined: a faulty tick breaks any re-admission run.
		t.run[dev] = 0
		return Skip
	}
	// Stale with a last-known value holds it; a device that has never
	// delivered a report has nothing to hold and sits the window out
	// (its quarantine countdown still advances above).
	if !t.allSeen && !t.seen[dev] {
		return Skip
	}
	t.stats.HeldTicks++
	return Hold
}

// Reset returns every device to live and zeroes the counters.
func (t *Tracker) Reset() {
	clear(t.states)
	clear(t.run)
	clear(t.seen)
	t.allSeen = false
	t.impaired = 0
	t.stale = 0
	t.quar = 0
	t.stats = Stats{}
}
