package health

import "testing"

// report feeds one tick's pattern and asserts the disposition.
func expect(t *testing.T, tr *Tracker, dev int, clean bool, want Disposition) {
	t.Helper()
	if got := tr.Report(dev, clean); got != want {
		t.Fatalf("Report(%d, %v) = %v, want %v (state %v)", dev, clean, got, want, tr.State(dev))
	}
}

func mustNew(t *testing.T, n int, p Policy) *Tracker {
	t.Helper()
	tr, err := New(n, p)
	if err != nil {
		t.Fatalf("New(%d, %+v): %v", n, p, err)
	}
	return tr
}

func TestNewRejectsBadConfig(t *testing.T) {
	for _, tc := range []struct {
		n int
		p Policy
	}{
		{0, DefaultPolicy()},
		{-1, DefaultPolicy()},
		{4, Policy{HoldTicks: -1, ReadmitTicks: 1}},
		{4, Policy{HoldTicks: 0, ReadmitTicks: 0}},
		{4, Policy{HoldTicks: 2, ReadmitTicks: -3}},
	} {
		if _, err := New(tc.n, tc.p); err == nil {
			t.Errorf("New(%d, %+v): want error", tc.n, tc.p)
		}
	}
}

func TestFreshTrackerAllLive(t *testing.T) {
	tr := mustNew(t, 5, DefaultPolicy())
	if !tr.AllLive() {
		t.Fatal("fresh tracker not all-live")
	}
	live, stale, quar := tr.Counts()
	if live != 5 || stale != 0 || quar != 0 {
		t.Fatalf("Counts() = %d, %d, %d", live, stale, quar)
	}
	for dev := 0; dev < 5; dev++ {
		if tr.State(dev) != Live {
			t.Fatalf("device %d state %v", dev, tr.State(dev))
		}
	}
}

func TestHoldThenQuarantineThenReadmit(t *testing.T) {
	tr := mustNew(t, 2, Policy{HoldTicks: 2, ReadmitTicks: 2})
	// Tick 1: both clean, device 0 now has a value to hold.
	expect(t, tr, 0, true, Consume)
	expect(t, tr, 1, true, Consume)
	// Faults: K=2 ticks held, quarantined on the third.
	expect(t, tr, 0, false, Hold)
	if tr.State(0) != Stale {
		t.Fatalf("state after first fault: %v", tr.State(0))
	}
	if tr.AllLive() {
		t.Fatal("AllLive with a stale device")
	}
	expect(t, tr, 0, false, Hold)
	expect(t, tr, 0, false, Skip)
	if tr.State(0) != Quarantined {
		t.Fatalf("state after %d faults: %v", 3, tr.State(0))
	}
	// Re-admission run: first clean report dropped, second consumed.
	expect(t, tr, 0, true, Skip)
	expect(t, tr, 0, true, Consume)
	if tr.State(0) != Live {
		t.Fatalf("state after re-admission: %v", tr.State(0))
	}
	// Device 1 was untouched by 0's churn.
	if tr.State(1) != Live {
		t.Fatalf("bystander state: %v", tr.State(1))
	}
	expect(t, tr, 1, true, Consume)
	if !tr.AllLive() {
		t.Fatal("not all-live after full recovery")
	}
	st := tr.Stats()
	if st.Quarantines != 1 || st.Readmissions != 1 || st.HeldTicks != 2 ||
		st.DroppedReports != 1 || st.FaultyTicks != 3 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCleanReportRevivesStale(t *testing.T) {
	tr := mustNew(t, 1, Policy{HoldTicks: 3, ReadmitTicks: 2})
	expect(t, tr, 0, true, Consume)
	expect(t, tr, 0, false, Hold)
	expect(t, tr, 0, false, Hold)
	// One clean report resets the fault run entirely.
	expect(t, tr, 0, true, Consume)
	if tr.State(0) != Live || !tr.AllLive() {
		t.Fatalf("state %v after recovery", tr.State(0))
	}
	// The fault counter restarted: three more held ticks before quarantine.
	expect(t, tr, 0, false, Hold)
	expect(t, tr, 0, false, Hold)
	expect(t, tr, 0, false, Hold)
	expect(t, tr, 0, false, Skip)
	if tr.State(0) != Quarantined {
		t.Fatalf("state %v, want quarantined", tr.State(0))
	}
}

func TestZeroHoldQuarantinesImmediately(t *testing.T) {
	tr := mustNew(t, 1, Policy{HoldTicks: 0, ReadmitTicks: 1})
	expect(t, tr, 0, true, Consume)
	expect(t, tr, 0, false, Skip)
	if tr.State(0) != Quarantined {
		t.Fatalf("state %v, want quarantined", tr.State(0))
	}
	// ReadmitTicks=1: the first clean report re-admits and is consumed.
	expect(t, tr, 0, true, Consume)
	if tr.State(0) != Live {
		t.Fatalf("state %v, want live", tr.State(0))
	}
}

func TestFaultBreaksReadmissionRun(t *testing.T) {
	tr := mustNew(t, 1, Policy{HoldTicks: 0, ReadmitTicks: 3})
	expect(t, tr, 0, true, Consume)
	expect(t, tr, 0, false, Skip) // quarantined
	expect(t, tr, 0, true, Skip)  // clean run 1/3
	expect(t, tr, 0, true, Skip)  // clean run 2/3
	expect(t, tr, 0, false, Skip) // run broken
	expect(t, tr, 0, true, Skip)  // must start over: 1/3
	expect(t, tr, 0, true, Skip)  // 2/3
	expect(t, tr, 0, true, Consume)
	if tr.State(0) != Live {
		t.Fatalf("state %v, want live", tr.State(0))
	}
	if st := tr.Stats(); st.DroppedReports != 4 {
		t.Fatalf("dropped %d, want 4", st.DroppedReports)
	}
}

func TestNeverSeenDeviceSkipsNotHolds(t *testing.T) {
	tr := mustNew(t, 1, Policy{HoldTicks: 5, ReadmitTicks: 1})
	// No value was ever delivered: nothing to hold, but the quarantine
	// countdown still advances.
	for i := 0; i < 5; i++ {
		expect(t, tr, 0, false, Skip)
	}
	if tr.State(0) != Stale {
		t.Fatalf("state %v, want stale", tr.State(0))
	}
	expect(t, tr, 0, false, Skip)
	if tr.State(0) != Quarantined {
		t.Fatalf("state %v, want quarantined", tr.State(0))
	}
	if st := tr.Stats(); st.HeldTicks != 0 {
		t.Fatalf("held %d ticks with no value to hold", st.HeldTicks)
	}
	// First clean report ever re-admits (R=1) and is consumed; the
	// device now has a value, so later faults hold.
	expect(t, tr, 0, true, Consume)
	expect(t, tr, 0, false, Hold)
}

func TestResetRestoresFreshState(t *testing.T) {
	tr := mustNew(t, 3, Policy{HoldTicks: 0, ReadmitTicks: 2})
	expect(t, tr, 0, true, Consume)
	expect(t, tr, 0, false, Skip)
	expect(t, tr, 1, false, Skip)
	tr.Reset()
	if !tr.AllLive() {
		t.Fatal("not all-live after Reset")
	}
	if st := (Stats{}); tr.Stats() != st {
		t.Fatalf("stats %+v after Reset", tr.Stats())
	}
	// seen was cleared too: a fault before any report skips, not holds.
	expect(t, tr, 0, false, Skip)
}

// TestCountsTrackImpairment drives a small fleet through mixed ticks
// and checks Counts against a brute-force recount every step.
func TestCountsTrackImpairment(t *testing.T) {
	const n = 7
	tr := mustNew(t, n, Policy{HoldTicks: 1, ReadmitTicks: 2})
	// Deterministic pseudo-pattern: device d is faulty on tick k when
	// (k*7+d*3)%5 < 2.
	for k := 0; k < 40; k++ {
		for d := 0; d < n; d++ {
			tr.Report(d, (k*7+d*3)%5 >= 2)
		}
		var live, stale, quar int
		for d := 0; d < n; d++ {
			switch tr.State(d) {
			case Live:
				live++
			case Stale:
				stale++
			default:
				quar++
			}
		}
		gl, gs, gq := tr.Counts()
		if gl != live || gs != stale || gq != quar {
			t.Fatalf("tick %d: Counts() = %d/%d/%d, recount %d/%d/%d", k, gl, gs, gq, live, stale, quar)
		}
		if tr.AllLive() != (stale == 0 && quar == 0) {
			t.Fatalf("tick %d: AllLive() = %v with %d stale %d quarantined", k, tr.AllLive(), stale, quar)
		}
	}
}

// TestConsumeAllGivesHoldSemantics: a fully-clean fast-path tick
// recorded via ConsumeAll must count as a consumed report for every
// device — the first fault after an all-clean history is held, not
// skipped — and Reset must clear that memory.
func TestConsumeAllGivesHoldSemantics(t *testing.T) {
	tr := mustNew(t, 3, Policy{HoldTicks: 2, ReadmitTicks: 1})
	tr.ConsumeAll()
	expect(t, tr, 0, false, Hold)
	if tr.State(0) != Stale {
		t.Fatalf("state after held fault: %v", tr.State(0))
	}
	if tr.Stats().HeldTicks != 1 {
		t.Fatalf("HeldTicks = %d, want 1", tr.Stats().HeldTicks)
	}
	// Per-device seen still composes with the flag: device 1 never
	// reported individually, but the fast-path tick covered it too.
	expect(t, tr, 1, false, Hold)

	tr.Reset()
	// The fleet-wide last-known values are gone with everything else: a
	// fault before any report skips again.
	expect(t, tr, 2, false, Skip)
}
