package baseline

import (
	"fmt"
	"math"

	"anomalia/internal/motion"
	"anomalia/internal/sets"
	"anomalia/internal/stats"
)

// KMeans is the centralized clustering monitor of [15]'s flavour: a
// management node gathers every abnormal trajectory (the concatenated
// positions at k-1 and k), clusters them with Lloyd's algorithm seeded by
// k-means++, and declares clusters larger than τ massive. It reproduces
// the related-work baseline whose centralization the paper criticizes.
type KMeans struct {
	k       int
	tau     int
	maxIter int
	rng     *stats.RNG
}

// NewKMeans returns a centralized clustering classifier with k clusters,
// density threshold tau, an iteration cap, and a deterministic seed.
func NewKMeans(k, tau, maxIter int, seed int64) (*KMeans, error) {
	if k < 1 {
		return nil, fmt.Errorf("k = %d: %w", k, ErrBaselineConfig)
	}
	if tau < 1 {
		return nil, fmt.Errorf("tau = %d: %w", tau, ErrBaselineConfig)
	}
	if maxIter < 1 {
		return nil, fmt.Errorf("maxIter = %d: %w", maxIter, ErrBaselineConfig)
	}
	return &KMeans{k: k, tau: tau, maxIter: maxIter, rng: stats.NewRNG(seed)}, nil
}

// ChooseK is the usual heuristic for the cluster count: one cluster per
// τ+1 abnormal devices, at least one.
func ChooseK(abnormalCount, tau int) int {
	k := abnormalCount / (tau + 1)
	if k < 1 {
		k = 1
	}
	return k
}

// Classify clusters the abnormal trajectories and returns, per device,
// whether its cluster is massive. The second return value is the number
// of Lloyd iterations performed (the centralized cost driver).
func (km *KMeans) Classify(pair *motion.Pair, abnormal []int) (map[int]bool, int) {
	abnormal = sets.Canon(sets.CloneInts(abnormal))
	m := len(abnormal)
	if m == 0 {
		return map[int]bool{}, 0
	}
	dim := 2 * pair.Dim()
	features := make([][]float64, m)
	for i, j := range abnormal {
		f := make([]float64, 0, dim)
		f = append(f, pair.Prev.At(j)...)
		f = append(f, pair.Cur.At(j)...)
		features[i] = f
	}
	k := km.k
	if k > m {
		k = m
	}
	centroids := km.seedPlusPlus(features, k)
	assign := make([]int, m)
	iterations := 0
	for ; iterations < km.maxIter; iterations++ {
		changed := false
		for i, f := range features {
			best, bestDist := 0, math.Inf(1)
			for c, cent := range centroids {
				if d := sqDist(f, cent); d < bestDist {
					best, bestDist = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iterations > 0 {
			break
		}
		// Recompute centroids.
		counts := make([]int, k)
		sums := make([][]float64, k)
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		for i, f := range features {
			c := assign[i]
			counts[c]++
			for x := range f {
				sums[c][x] += f[x]
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				continue // keep the empty centroid where it was
			}
			for x := range centroids[c] {
				centroids[c][x] = sums[c][x] / float64(counts[c])
			}
		}
	}

	sizes := make([]int, k)
	for _, c := range assign {
		sizes[c]++
	}
	out := make(map[int]bool, m)
	for i, j := range abnormal {
		out[j] = sizes[assign[i]] > km.tau
	}
	return out, iterations
}

// seedPlusPlus picks k initial centroids with k-means++ weighting.
func (km *KMeans) seedPlusPlus(features [][]float64, k int) [][]float64 {
	m := len(features)
	centroids := make([][]float64, 0, k)
	first := km.rng.Intn(m)
	centroids = append(centroids, cloneVec(features[first]))
	dists := make([]float64, m)
	for len(centroids) < k {
		total := 0.0
		for i, f := range features {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := sqDist(f, c); d < best {
					best = d
				}
			}
			dists[i] = best
			total += best
		}
		if total == 0 {
			// All remaining points coincide with centroids; duplicate one.
			centroids = append(centroids, cloneVec(features[km.rng.Intn(m)]))
			continue
		}
		target := km.rng.Float64() * total
		acc := 0.0
		pick := m - 1
		for i, d := range dists {
			acc += d
			if acc >= target {
				pick = i
				break
			}
		}
		centroids = append(centroids, cloneVec(features[pick]))
	}
	return centroids
}

func sqDist(a, b []float64) float64 {
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum
}

func cloneVec(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}
