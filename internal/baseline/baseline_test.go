package baseline

import (
	"errors"
	"testing"

	"anomalia/internal/motion"
	"anomalia/internal/scenario"
	"anomalia/internal/space"
)

func pairFrom(t testing.TB, prevCoords, curCoords [][]float64) *motion.Pair {
	t.Helper()
	prev, err := space.StateFromPoints(prevCoords)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := space.StateFromPoints(curCoords)
	if err != nil {
		t.Fatal(err)
	}
	pair, err := motion.NewPair(prev, cur)
	if err != nil {
		t.Fatal(err)
	}
	return pair
}

func TestTessellationValidation(t *testing.T) {
	t.Parallel()

	if _, err := NewTessellation(0, 2); !errors.Is(err, ErrBaselineConfig) {
		t.Error("zero cell side must error")
	}
	if _, err := NewTessellation(1.5, 2); !errors.Is(err, ErrBaselineConfig) {
		t.Error("cell side > 1 must error")
	}
	if _, err := NewTessellation(0.1, 0); !errors.Is(err, ErrBaselineConfig) {
		t.Error("tau=0 must error")
	}
}

func TestTessellationGroupsSameCellTransition(t *testing.T) {
	t.Parallel()

	// Three devices in one cell moving together to another cell, plus one
	// lone device: τ=2 makes the trio massive, the loner isolated.
	prev := [][]float64{{0.11}, {0.13}, {0.15}, {0.51}}
	cur := [][]float64{{0.71}, {0.73}, {0.75}, {0.31}}
	pair := pairFrom(t, prev, cur)
	tess, err := NewTessellation(0.2, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := tess.Classify(pair, []int{0, 1, 2, 3})
	for j := 0; j < 3; j++ {
		if !got[j] {
			t.Errorf("device %d should be massive", j)
		}
	}
	if got[3] {
		t.Error("device 3 should be isolated")
	}
}

// TestTessellationBoundarySplit demonstrates the paper's critique: a
// coherent massive group straddling a bucket boundary is split into two
// sparse buckets and misclassified as isolated.
func TestTessellationBoundarySplit(t *testing.T) {
	t.Parallel()

	// Four co-moving devices around the 0.2 bucket edge.
	prev := [][]float64{{0.18}, {0.19}, {0.21}, {0.22}}
	cur := [][]float64{{0.58}, {0.59}, {0.61}, {0.62}}
	pair := pairFrom(t, prev, cur)
	tess, err := NewTessellation(0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	got := tess.Classify(pair, []int{0, 1, 2, 3})
	for j := 0; j < 4; j++ {
		if got[j] {
			t.Errorf("device %d: boundary-straddling group must be (wrongly) isolated", j)
		}
	}

	// The motion-graph characterizer has no grid anchor: the same four
	// devices form a single dense motion.
	g := motion.NewGraph(pair, []int{0, 1, 2, 3}, 0.05)
	if fam := g.MaximalMotionsContaining(0); len(fam) != 1 || len(fam[0]) != 4 {
		t.Errorf("motion graph should see one 4-device motion, got %v", fam)
	}
}

// TestTessellationLargeBucketsMerge demonstrates the dual failure: with
// oversized buckets, independent isolated errors that land in the same
// cell transition are merged into a false massive anomaly.
func TestTessellationLargeBucketsMerge(t *testing.T) {
	t.Parallel()

	// Three genuinely separate devices (pairwise far apart at both times
	// for any reasonable radius) inside one huge bucket.
	prev := [][]float64{{0.05}, {0.25}, {0.45}}
	cur := [][]float64{{0.55}, {0.75}, {0.95}}
	pair := pairFrom(t, prev, cur)
	tess, err := NewTessellation(0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := tess.Classify(pair, []int{0, 1, 2})
	for j := 0; j < 3; j++ {
		if !got[j] {
			t.Errorf("device %d: oversized buckets must (wrongly) merge into massive", j)
		}
	}
}

func TestTessellationRightEdge(t *testing.T) {
	t.Parallel()

	// Devices at exactly 1.0 must not fall outside the grid.
	prev := [][]float64{{1.0}, {0.99}}
	cur := [][]float64{{0.0}, {0.01}}
	pair := pairFrom(t, prev, cur)
	tess, err := NewTessellation(0.25, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := tess.Classify(pair, []int{0, 1})
	if !got[0] || !got[1] {
		t.Errorf("co-moving edge devices should share a transition: %v", got)
	}
}

func TestKMeansValidation(t *testing.T) {
	t.Parallel()

	if _, err := NewKMeans(0, 2, 10, 1); !errors.Is(err, ErrBaselineConfig) {
		t.Error("k=0 must error")
	}
	if _, err := NewKMeans(2, 0, 10, 1); !errors.Is(err, ErrBaselineConfig) {
		t.Error("tau=0 must error")
	}
	if _, err := NewKMeans(2, 2, 0, 1); !errors.Is(err, ErrBaselineConfig) {
		t.Error("maxIter=0 must error")
	}
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	t.Parallel()

	// A 5-device coherent blob and a far-away single device.
	prev := [][]float64{
		{0.10, 0.10}, {0.11, 0.10}, {0.10, 0.12}, {0.12, 0.11}, {0.11, 0.12},
		{0.90, 0.90},
	}
	cur := [][]float64{
		{0.50, 0.50}, {0.51, 0.50}, {0.50, 0.52}, {0.52, 0.51}, {0.51, 0.52},
		{0.20, 0.80},
	}
	pair := pairFrom(t, prev, cur)
	km, err := NewKMeans(2, 3, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	got, iters := km.Classify(pair, []int{0, 1, 2, 3, 4, 5})
	if iters < 1 {
		t.Error("expected at least one Lloyd iteration")
	}
	for j := 0; j < 5; j++ {
		if !got[j] {
			t.Errorf("blob device %d should be massive", j)
		}
	}
	if got[5] {
		t.Error("outlier device should be isolated")
	}
}

func TestKMeansEmptyAndTiny(t *testing.T) {
	t.Parallel()

	pair := pairFrom(t, [][]float64{{0.5}}, [][]float64{{0.6}})
	km, err := NewKMeans(3, 1, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := km.Classify(pair, nil)
	if len(got) != 0 {
		t.Error("empty abnormal set must classify nothing")
	}
	got, _ = km.Classify(pair, []int{0})
	if len(got) != 1 || got[0] {
		t.Errorf("single device must be isolated: %v", got)
	}
}

func TestKMeansDeterminism(t *testing.T) {
	t.Parallel()

	gen, err := scenario.New(scenario.Config{
		N: 300, D: 2, R: 0.03, Tau: 3, A: 10, G: 0.3, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	step, err := gen.Step()
	if err != nil {
		t.Fatal(err)
	}
	k := ChooseK(len(step.Abnormal), 3)
	km1, err := NewKMeans(k, 3, 50, 99)
	if err != nil {
		t.Fatal(err)
	}
	km2, err := NewKMeans(k, 3, 50, 99)
	if err != nil {
		t.Fatal(err)
	}
	got1, _ := km1.Classify(step.Pair, step.Abnormal)
	got2, _ := km2.Classify(step.Pair, step.Abnormal)
	for j, v := range got1 {
		if got2[j] != v {
			t.Fatalf("nondeterministic verdict for device %d", j)
		}
	}
}

func TestChooseK(t *testing.T) {
	t.Parallel()

	if got := ChooseK(0, 3); got != 1 {
		t.Errorf("ChooseK(0,3) = %d", got)
	}
	if got := ChooseK(100, 3); got != 25 {
		t.Errorf("ChooseK(100,3) = %d", got)
	}
}

func TestConfusion(t *testing.T) {
	t.Parallel()

	var c Confusion
	c.Add(true, true)
	c.Add(true, false)
	c.Add(false, true)
	c.Add(false, false)
	c.Add(false, false)
	if c.TruePositive != 1 || c.FalsePositive != 1 || c.FalseNegative != 1 || c.TrueNegative != 2 {
		t.Errorf("confusion = %+v", c)
	}
	if c.Total() != 5 {
		t.Errorf("Total = %d", c.Total())
	}
	if got, want := c.Accuracy(), 0.6; got != want {
		t.Errorf("Accuracy = %v, want %v", got, want)
	}
	var empty Confusion
	if empty.Accuracy() != 1 {
		t.Error("empty accuracy must be 1")
	}
}
