// Package baseline implements the two comparators discussed in the
// paper's related work: the FixMe-style fixed tessellation of the QoS
// space [1] and a centralized k-means clustering monitor in the spirit of
// [15]. Both classify abnormal devices as massive or isolated; the paper
// argues qualitatively that tessellation is hypersensitive to bucket size
// and that centralized clustering does not scale — the ablation benchmarks
// quantify both claims against the local characterizer.
package baseline

import (
	"errors"
	"fmt"
	"math"

	"anomalia/internal/motion"
	"anomalia/internal/sets"
)

// ErrBaselineConfig is returned for invalid baseline parameters.
var ErrBaselineConfig = errors.New("baseline: invalid configuration")

// Tessellation classifies devices by bucketing the QoS space into a fixed
// grid of the given cell side: all abnormal devices sharing the same
// (cell at k-1, cell at k) transition are presumed hit by the same error,
// and the transition is massive when its population exceeds τ.
//
// Unlike the characterizer, the grid is anchored at the origin: a
// coherent group straddling a cell boundary is split (false isolated) and
// unrelated devices co-resident in a large cell are merged (false
// massive) — the failure modes the paper attributes to [1].
type Tessellation struct {
	cellSide float64
	tau      int
}

// NewTessellation returns a tessellation classifier with the given bucket
// side in (0, 1] and density threshold tau >= 1.
func NewTessellation(cellSide float64, tau int) (*Tessellation, error) {
	if cellSide <= 0 || cellSide > 1 || math.IsNaN(cellSide) {
		return nil, fmt.Errorf("cell side %v: %w", cellSide, ErrBaselineConfig)
	}
	if tau < 1 {
		return nil, fmt.Errorf("tau %d: %w", tau, ErrBaselineConfig)
	}
	return &Tessellation{cellSide: cellSide, tau: tau}, nil
}

// Classify returns, for every abnormal device, whether the tessellation
// deems it part of a massive anomaly.
func (t *Tessellation) Classify(pair *motion.Pair, abnormal []int) map[int]bool {
	abnormal = sets.Canon(sets.CloneInts(abnormal))
	transitions := make(map[string][]int, len(abnormal))
	for _, j := range abnormal {
		key := t.cellKey(pair, j)
		transitions[key] = append(transitions[key], j)
	}
	out := make(map[int]bool, len(abnormal))
	for _, members := range transitions {
		massive := len(members) > t.tau
		for _, j := range members {
			out[j] = massive
		}
	}
	return out
}

// cellKey encodes the (cell at k-1, cell at k) transition of device j.
func (t *Tessellation) cellKey(pair *motion.Pair, j int) string {
	d := pair.Dim()
	buf := make([]byte, 0, 4*d)
	encode := func(p []float64) {
		for _, x := range p {
			c := int(x / t.cellSide)
			if x >= 1 { // right-edge devices belong to the last cell
				c = int(1/t.cellSide) - 1
				if c < 0 {
					c = 0
				}
			}
			buf = append(buf, byte(c), byte(c>>8))
		}
	}
	encode(pair.Prev.At(j))
	buf = append(buf, '|')
	encode(pair.Cur.At(j))
	return string(buf)
}

// Confusion compares a massive/isolated classification with ground truth.
type Confusion struct {
	// TruePositive counts devices correctly classified massive.
	TruePositive int
	// FalsePositive counts isolated devices classified massive.
	FalsePositive int
	// TrueNegative counts devices correctly classified isolated.
	TrueNegative int
	// FalseNegative counts massive devices classified isolated.
	FalseNegative int
}

// Add folds one device verdict into the matrix.
func (c *Confusion) Add(predictedMassive, trulyMassive bool) {
	switch {
	case predictedMassive && trulyMassive:
		c.TruePositive++
	case predictedMassive && !trulyMassive:
		c.FalsePositive++
	case !predictedMassive && trulyMassive:
		c.FalseNegative++
	default:
		c.TrueNegative++
	}
}

// Total returns the number of classified devices.
func (c Confusion) Total() int {
	return c.TruePositive + c.FalsePositive + c.TrueNegative + c.FalseNegative
}

// Accuracy returns the fraction of correct verdicts (1 for empty input).
func (c Confusion) Accuracy() float64 {
	total := c.Total()
	if total == 0 {
		return 1
	}
	return float64(c.TruePositive+c.TrueNegative) / float64(total)
}
