// Package trace synthesizes realistic per-service QoS series for
// evaluating the error-detection functions of Section III-A: a base level
// with an optional diurnal cycle, AR(1)-correlated measurement noise, and
// injectable events — transient dips, permanent level shifts, slow
// drifts, and hard outages. Event timestamps are the ground truth against
// which detector latency and miss rates are measured
// (internal/experiments.DetectorStudy).
package trace

import (
	"errors"
	"fmt"
	"math"

	"anomalia/internal/stats"
)

// ErrTraceConfig is returned for invalid generator parameters or events.
var ErrTraceConfig = errors.New("trace: invalid configuration")

// EventKind classifies an injected QoS incident.
type EventKind int

// Supported incidents.
const (
	// Dip: the QoS drops by Magnitude for Duration samples, then recovers.
	Dip EventKind = iota + 1
	// Shift: the QoS level drops by Magnitude permanently.
	Shift
	// Drift: the QoS decays linearly by Magnitude over Duration samples
	// and stays at the lower level.
	Drift
	// Outage: the QoS collapses to (almost) zero for Duration samples.
	Outage
)

// String names the incident kind.
func (k EventKind) String() string {
	switch k {
	case Dip:
		return "dip"
	case Shift:
		return "shift"
	case Drift:
		return "drift"
	case Outage:
		return "outage"
	default:
		return "unknown"
	}
}

// Event is one injected incident.
type Event struct {
	// Kind classifies the incident.
	Kind EventKind
	// At is the sample index at which the incident starts.
	At int
	// Duration in samples (ignored for Shift).
	Duration int
	// Magnitude is the QoS amount lost (ignored for Outage).
	Magnitude float64
}

// Config parameterizes a series generator.
type Config struct {
	// Base is the nominal QoS level (e.g. 0.95).
	Base float64
	// DiurnalAmp is the amplitude of the daily sinusoid (0 disables).
	DiurnalAmp float64
	// Period is the number of samples per day (required when DiurnalAmp
	// is set).
	Period int
	// Rho is the AR(1) coefficient of the measurement noise in [0, 1).
	Rho float64
	// NoiseStd is the stationary standard deviation of the noise.
	NoiseStd float64
	// Seed drives the noise stream.
	Seed int64
}

func (c Config) validate() error {
	if c.Base <= 0 || c.Base > 1 {
		return fmt.Errorf("base %v: %w", c.Base, ErrTraceConfig)
	}
	if c.DiurnalAmp < 0 || c.DiurnalAmp >= c.Base {
		return fmt.Errorf("diurnal amplitude %v: %w", c.DiurnalAmp, ErrTraceConfig)
	}
	if c.DiurnalAmp > 0 && c.Period <= 0 {
		return fmt.Errorf("diurnal amplitude without period: %w", ErrTraceConfig)
	}
	if c.Rho < 0 || c.Rho >= 1 {
		return fmt.Errorf("rho %v: %w", c.Rho, ErrTraceConfig)
	}
	if c.NoiseStd < 0 {
		return fmt.Errorf("noise std %v: %w", c.NoiseStd, ErrTraceConfig)
	}
	return nil
}

// Generate produces a QoS series of the given length with the events
// applied, clamped into [0, 1].
func Generate(cfg Config, length int, events []Event) ([]float64, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if length <= 0 {
		return nil, fmt.Errorf("length %d: %w", length, ErrTraceConfig)
	}
	for i, ev := range events {
		if ev.At < 0 || ev.At >= length {
			return nil, fmt.Errorf("event %d at %d outside [0,%d): %w", i, ev.At, length, ErrTraceConfig)
		}
		switch ev.Kind {
		case Dip, Drift, Outage:
			if ev.Duration <= 0 {
				return nil, fmt.Errorf("event %d needs a positive duration: %w", i, ErrTraceConfig)
			}
		case Shift:
			// Duration ignored.
		default:
			return nil, fmt.Errorf("event %d kind %d: %w", i, ev.Kind, ErrTraceConfig)
		}
	}

	rng := stats.NewRNG(cfg.Seed)
	out := make([]float64, length)
	noise := 0.0
	innovation := cfg.NoiseStd * math.Sqrt(1-cfg.Rho*cfg.Rho)
	for t := 0; t < length; t++ {
		noise = cfg.Rho*noise + innovation*rng.NormFloat64()
		level := cfg.Base + noise
		if cfg.DiurnalAmp > 0 {
			level += cfg.DiurnalAmp * math.Sin(2*math.Pi*float64(t%cfg.Period)/float64(cfg.Period))
		}
		for _, ev := range events {
			level -= ev.effect(t)
		}
		switch {
		case level < 0:
			level = 0
		case level > 1:
			level = 1
		}
		out[t] = level
	}
	return out, nil
}

// effect returns the QoS loss an event contributes at sample t.
func (ev Event) effect(t int) float64 {
	switch ev.Kind {
	case Dip:
		if t >= ev.At && t < ev.At+ev.Duration {
			return ev.Magnitude
		}
	case Shift:
		if t >= ev.At {
			return ev.Magnitude
		}
	case Drift:
		switch {
		case t < ev.At:
			return 0
		case t >= ev.At+ev.Duration:
			return ev.Magnitude
		default:
			return ev.Magnitude * float64(t-ev.At+1) / float64(ev.Duration)
		}
	case Outage:
		if t >= ev.At && t < ev.At+ev.Duration {
			return 1 // clamps to zero QoS
		}
	}
	return 0
}
