package trace

import (
	"errors"
	"math"
	"testing"

	"anomalia/internal/stats"
)

func baseCfg() Config {
	return Config{Base: 0.9, Rho: 0.5, NoiseStd: 0.01, Seed: 1}
}

func TestGenerateValidation(t *testing.T) {
	t.Parallel()

	bad := []struct {
		name string
		cfg  Config
		len  int
		evs  []Event
	}{
		{"base zero", Config{Base: 0}, 10, nil},
		{"base over one", Config{Base: 1.5}, 10, nil},
		{"diurnal no period", Config{Base: 0.9, DiurnalAmp: 0.1}, 10, nil},
		{"diurnal too big", Config{Base: 0.5, DiurnalAmp: 0.6, Period: 10}, 10, nil},
		{"rho one", Config{Base: 0.9, Rho: 1}, 10, nil},
		{"negative noise", Config{Base: 0.9, NoiseStd: -1}, 10, nil},
		{"zero length", baseCfg(), 0, nil},
		{"event out of range", baseCfg(), 10, []Event{{Kind: Dip, At: 20, Duration: 2, Magnitude: 0.1}}},
		{"dip without duration", baseCfg(), 10, []Event{{Kind: Dip, At: 2, Magnitude: 0.1}}},
		{"unknown kind", baseCfg(), 10, []Event{{Kind: EventKind(9), At: 2, Duration: 1}}},
	}
	for _, tt := range bad {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			if _, err := Generate(tt.cfg, tt.len, tt.evs); !errors.Is(err, ErrTraceConfig) {
				t.Errorf("error = %v, want ErrTraceConfig", err)
			}
		})
	}
}

func TestGenerateStationary(t *testing.T) {
	t.Parallel()

	xs, err := Generate(baseCfg(), 5000, nil)
	if err != nil {
		t.Fatal(err)
	}
	mean := stats.Mean(xs)
	if math.Abs(mean-0.9) > 0.005 {
		t.Errorf("mean = %v, want ~0.9", mean)
	}
	sd := stats.StdDev(xs)
	if sd < 0.005 || sd > 0.02 {
		t.Errorf("std = %v, want ~0.01", sd)
	}
	for _, x := range xs {
		if x < 0 || x > 1 {
			t.Fatalf("sample %v out of [0,1]", x)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	t.Parallel()

	a, err := Generate(baseCfg(), 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(baseCfg(), 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give the same trace")
		}
	}
}

func TestDiurnalCycle(t *testing.T) {
	t.Parallel()

	cfg := baseCfg()
	cfg.DiurnalAmp = 0.05
	cfg.Period = 96
	cfg.NoiseStd = 0
	xs, err := Generate(cfg, 96*2, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Peak near quarter period, trough near three quarters.
	if xs[24] <= xs[72] {
		t.Errorf("diurnal peak %v not above trough %v", xs[24], xs[72])
	}
	if math.Abs(xs[24]-(0.9+0.05)) > 1e-9 {
		t.Errorf("peak = %v", xs[24])
	}
	// Periodicity.
	if math.Abs(xs[10]-xs[10+96]) > 1e-9 {
		t.Error("cycle does not repeat")
	}
}

func TestEventEffects(t *testing.T) {
	t.Parallel()

	cfg := baseCfg()
	cfg.NoiseStd = 0
	events := []Event{
		{Kind: Dip, At: 10, Duration: 5, Magnitude: 0.3},
		{Kind: Shift, At: 30, Magnitude: 0.2},
		{Kind: Drift, At: 50, Duration: 10, Magnitude: 0.1},
		{Kind: Outage, At: 80, Duration: 3},
	}
	xs, err := Generate(cfg, 100, events)
	if err != nil {
		t.Fatal(err)
	}
	approx := func(i int, want float64) {
		t.Helper()
		if math.Abs(xs[i]-want) > 1e-9 {
			t.Errorf("xs[%d] = %v, want %v", i, xs[i], want)
		}
	}
	approx(9, 0.9)      // before dip
	approx(10, 0.6)     // dip active
	approx(14, 0.6)     // dip still active
	approx(15, 0.9)     // dip recovered
	approx(29, 0.9)     // before shift
	approx(35, 0.7)     // shift applied (permanent)
	approx(49, 0.7)     // before drift
	approx(59, 0.7-0.1) // drift complete
	approx(75, 0.6)     // drift persists
	approx(80, 0)       // outage clamps to zero
	approx(83, 0.6)     // outage over (shift+drift still active)
}

func TestEventKindString(t *testing.T) {
	t.Parallel()

	want := map[EventKind]string{
		Dip: "dip", Shift: "shift", Drift: "drift", Outage: "outage",
		EventKind(0): "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("EventKind(%d) = %q, want %q", k, k.String(), s)
		}
	}
}

// TestAR1Correlation: with high rho the series autocorrelates; with rho=0
// it does not (sanity of the noise model).
func TestAR1Correlation(t *testing.T) {
	t.Parallel()

	corr := func(rho float64) float64 {
		cfg := baseCfg()
		cfg.Rho = rho
		cfg.Seed = 9
		xs, err := Generate(cfg, 20000, nil)
		if err != nil {
			t.Fatal(err)
		}
		mean := stats.Mean(xs)
		num, den := 0.0, 0.0
		for i := 1; i < len(xs); i++ {
			num += (xs[i] - mean) * (xs[i-1] - mean)
			den += (xs[i] - mean) * (xs[i] - mean)
		}
		return num / den
	}
	if high := corr(0.9); high < 0.8 {
		t.Errorf("rho=0.9 autocorrelation = %v", high)
	}
	if low := math.Abs(corr(0)); low > 0.05 {
		t.Errorf("rho=0 autocorrelation = %v", low)
	}
}
