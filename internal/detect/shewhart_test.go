package detect

import (
	"errors"
	"math"
	"testing"

	"anomalia/internal/stats"
)

func newShewhart(t *testing.T) *Shewhart {
	t.Helper()
	s, err := NewShewhart(4, 0.01, 10)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestShewhartValidation(t *testing.T) {
	t.Parallel()

	cases := []struct {
		k, minMR float64
		warmup   int
	}{
		{0, 0.1, 1},
		{-1, 0.1, 1},
		{3, -0.1, 1},
		{3, 0.1, -1},
		{math.NaN(), 0.1, 1},
	}
	for i, c := range cases {
		if _, err := NewShewhart(c.k, c.minMR, c.warmup); !errors.Is(err, ErrDetectorConfig) {
			t.Errorf("case %d: error = %v", i, err)
		}
	}
}

func TestShewhartDetectsExcursion(t *testing.T) {
	t.Parallel()

	s := newShewhart(t)
	rng := stats.NewRNG(3)
	alarms := 0
	for i := 0; i < 300; i++ {
		if s.Update(0.9 + 0.005*(rng.Float64()-0.5)) {
			alarms++
		}
	}
	if alarms > 3 {
		t.Errorf("%d false alarms on in-control process", alarms)
	}
	if p := s.Predict(); math.Abs(p-0.9) > 0.01 {
		t.Errorf("centre line = %v", p)
	}
	if !s.Update(0.5) {
		t.Error("4-sigma excursion not flagged")
	}
}

func TestShewhartLimitsDoNotExplodeAfterExcursion(t *testing.T) {
	t.Parallel()

	s := newShewhart(t)
	rng := stats.NewRNG(5)
	for i := 0; i < 200; i++ {
		s.Update(0.9 + 0.005*(rng.Float64()-0.5))
	}
	s.Update(0.3) // single wild excursion
	// The chart must still flag a repeat excursion immediately.
	if !s.Update(0.3) {
		t.Error("limits widened too much after one excursion")
	}
}

func TestShewhartResetAndFirstSample(t *testing.T) {
	t.Parallel()

	s := newShewhart(t)
	for i := 0; i < 50; i++ {
		s.Update(0.8)
	}
	s.Reset()
	if s.Update(0.1) {
		t.Error("first sample after reset must not alarm")
	}
}

// TestShewhartInDetectorStudyHarness: the new detector satisfies the
// shared Detector contract used across the module.
func TestShewhartContract(t *testing.T) {
	t.Parallel()

	var det Detector = newShewhart(t)
	for i := 0; i < 100; i++ {
		det.Update(0.85)
	}
	if !det.Update(0.2) {
		t.Error("contract shock not flagged")
	}
	det.Reset()
	if det.Predict() != 0 {
		t.Error("Predict after reset must be zero value")
	}
}
