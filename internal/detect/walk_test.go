package detect

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// walkFleet builds n devices with d services each from the named
// detector family.
func walkFleet(t testing.TB, n, d int, family string) []*Device {
	t.Helper()
	factory := func(int) (Detector, error) {
		switch family {
		case "threshold":
			return NewThreshold(0.05)
		case "ewma":
			return NewEWMA(0.3, 5, 0.01, 3)
		case "cusum":
			return NewCUSUM(0.01, 0.08, 0.1)
		case "holtwinters":
			return NewHoltWinters(0.5, 0.3, 0, 6, 0.05, 0)
		case "kalman":
			return NewKalman(1e-4, 1e-3, 5)
		case "shewhart":
			return NewShewhart(5, 0.02, 5)
		default:
			return nil, fmt.Errorf("unknown family %q", family)
		}
	}
	devs := make([]*Device, n)
	for i := range devs {
		dev, err := NewDevice(d, factory)
		if err != nil {
			t.Fatal(err)
		}
		devs[i] = dev
	}
	return devs
}

// walkStream synthesizes ticks: mostly-flat QoS with seeded noise and
// occasional per-device jumps so every family fires somewhere.
func walkStream(n, d, ticks int, seed int64) [][][]float64 {
	rng := rand.New(rand.NewSource(seed))
	stream := make([][][]float64, ticks)
	for k := range stream {
		snap := make([][]float64, n)
		for j := range snap {
			row := make([]float64, d)
			for s := range row {
				v := 0.9 + 0.01*rng.Float64()
				if rng.Float64() < 0.05 {
					v = rng.Float64() // jump: abnormal for most families
				}
				row[s] = v
			}
			snap[j] = row
		}
		stream[k] = snap
	}
	return stream
}

// TestWalkParity: for every detector family and several seeds, the
// sharded walk must produce — tick for tick — the identical abnormal
// set, identical per-service predictions, and identical visit coverage
// as the serial walk, whatever the worker count. minShard is bypassed by
// sizing the fleet above one shard per worker.
func TestWalkParity(t *testing.T) {
	t.Parallel()

	const d = 2
	const ticks = 6
	families := []string{"threshold", "ewma", "cusum", "holtwinters", "kalman", "shewhart"}
	for _, family := range families {
		family := family
		t.Run(family, func(t *testing.T) {
			t.Parallel()
			for _, seed := range []int64{1, 7, 991} {
				for _, workers := range []int{2, 3, 7, 16} {
					n := workers * minShard // every worker gets a full shard
					serialDevs := walkFleet(t, n, d, family)
					shardDevs := walkFleet(t, n, d, family)
					serial := NewWalker(1)
					sharded := NewWalker(workers)
					stream := walkStream(n, d, ticks, seed)
					var sOut, pOut []int
					for k, snap := range stream {
						var err error
						sOut, err = serial.Walk(serialDevs, snap, nil, sOut)
						if err != nil {
							t.Fatal(err)
						}
						visited := make([]int32, n)
						pOut, err = sharded.Walk(shardDevs, snap, func(dev int, row []float64) {
							visited[dev]++
						}, pOut)
						if err != nil {
							t.Fatal(err)
						}
						if !equalInts(sOut, pOut) {
							t.Fatalf("seed %d workers %d tick %d: abnormal sets diverge: serial %d ids, sharded %d ids",
								seed, workers, k, len(sOut), len(pOut))
						}
						for dev, c := range visited {
							if c != 1 {
								t.Fatalf("tick %d device %d visited %d times", k, dev, c)
							}
						}
					}
					// Detector state parity: the sharded fleet must have
					// consumed exactly the serial fleet's history.
					for j := 0; j < n; j += n / 64 {
						sp, pp := serialDevs[j].Predict(), shardDevs[j].Predict()
						for s := range sp {
							if sp[s] != pp[s] {
								t.Fatalf("seed %d workers %d device %d service %d: prediction %v != %v",
									seed, workers, j, s, pp[s], sp[s])
							}
						}
					}
				}
			}
		})
	}
}

// countingDetector records how many samples it consumed.
type countingDetector struct{ updates int }

func (c *countingDetector) Update(float64) bool { c.updates++; return false }
func (c *countingDetector) Predict() float64    { return 0 }
func (c *countingDetector) Reset()              { c.updates = 0 }

// countedFleet builds a fleet of counting detectors and a probe into
// their total consumed-sample count.
func countedFleet(t *testing.T, n, d int) ([]*Device, func() int) {
	t.Helper()
	var counters []*countingDetector
	devs := make([]*Device, n)
	for i := range devs {
		dev, err := NewDevice(d, func(int) (Detector, error) {
			c := &countingDetector{}
			counters = append(counters, c)
			return c, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		devs[i] = dev
	}
	total := func() int {
		sum := 0
		for _, c := range counters {
			sum += c.updates
		}
		return sum
	}
	return devs, total
}

// TestWalkRejectsBeforeMutating: a malformed row anywhere in the
// snapshot — NaN, ±Inf, or a width mismatch — must be reported without
// a single detector having consumed a sample, on both the serial and the
// sharded path.
func TestWalkRejectsBeforeMutating(t *testing.T) {
	t.Parallel()

	const n = 3 * minShard
	const d = 2
	bad := map[string]func(snap [][]float64){
		"nan":   func(s [][]float64) { s[n-5][1] = math.NaN() },
		"+inf":  func(s [][]float64) { s[7][0] = math.Inf(1) },
		"-inf":  func(s [][]float64) { s[n/2][0] = math.Inf(-1) },
		"width": func(s [][]float64) { s[n/2] = []float64{0.5} },
	}
	for name, corrupt := range bad {
		for _, workers := range []int{1, 4} {
			devs, consumed := countedFleet(t, n, d)
			w := NewWalker(workers)
			snap := walkStream(n, d, 1, 3)[0]
			corrupt(snap)
			if _, err := w.Walk(devs, snap, nil, nil); !errors.Is(err, ErrSample) {
				t.Fatalf("%s workers=%d: error = %v, want ErrSample", name, workers, err)
			}
			if got := consumed(); got != 0 {
				t.Errorf("%s workers=%d: %d samples consumed despite rejection", name, workers, got)
			}
			// A clean snapshot afterwards proceeds normally.
			if _, err := w.Walk(devs, walkStream(n, d, 1, 4)[0], nil, nil); err != nil {
				t.Fatalf("%s workers=%d: clean walk after rejection: %v", name, workers, err)
			}
			if got := consumed(); got != n*d {
				t.Errorf("%s workers=%d: clean walk consumed %d samples, want %d", name, workers, got, n*d)
			}
		}
	}
}

// TestWalkRowCountMismatch: a snapshot with the wrong device count is
// rejected outright.
func TestWalkRowCountMismatch(t *testing.T) {
	t.Parallel()

	devs, consumed := countedFleet(t, 8, 1)
	w := NewWalker(4)
	snap := walkStream(7, 1, 1, 5)[0]
	if _, err := w.Walk(devs, snap, nil, nil); !errors.Is(err, ErrSample) {
		t.Fatalf("error = %v, want ErrSample", err)
	}
	if consumed() != 0 {
		t.Error("short snapshot consumed samples")
	}
}

// TestWalkReportsLowestOffender: with malformed rows in several shards,
// the reported error names the lowest device id — exactly what the
// serial walk reports — so error surfaces are worker-count independent.
func TestWalkReportsLowestOffender(t *testing.T) {
	t.Parallel()

	const n = 4 * minShard
	devs := walkFleet(t, n, 1, "threshold")
	snap := walkStream(n, 1, 1, 6)[0]
	lowest := minShard + 11 // second shard of four
	snap[lowest][0] = math.NaN()
	snap[3*minShard+5][0] = math.Inf(1) // fourth shard
	w := NewWalker(4)
	_, err := w.Walk(devs, snap, nil, nil)
	if err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
	want := fmt.Sprintf("device %d ", lowest)
	if got := err.Error(); !containsSub(got, want) {
		t.Errorf("error %q does not name lowest offender %d", got, lowest)
	}
}

// TestWalkSmallFleetSerialFallback: fleets below one shard run serially
// (no goroutines) yet through the same contract.
func TestWalkSmallFleetSerialFallback(t *testing.T) {
	t.Parallel()

	devs := walkFleet(t, 16, 1, "threshold")
	w := NewWalker(8)
	// Train, then jump every even device.
	snap := make([][]float64, 16)
	for j := range snap {
		snap[j] = []float64{0.9}
	}
	if _, err := w.Walk(devs, snap, nil, nil); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 16; j += 2 {
		snap[j] = []float64{0.2}
	}
	out, err := w.Walk(devs, snap, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 2, 4, 6, 8, 10, 12, 14}
	if !equalInts(out, want) {
		t.Errorf("flagged %v, want %v", out, want)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsSub(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
