package detect

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// degradeStream knocks holes into a clean stream: with the given seed,
// some rows become nil (missing), some get a NaN/Inf coordinate, some
// the wrong width. Returns the degraded stream and the per-tick truth
// of which rows stayed clean.
func degradeStream(stream [][][]float64, seed int64) ([][][]float64, [][]bool) {
	rng := rand.New(rand.NewSource(seed))
	out := make([][][]float64, len(stream))
	truth := make([][]bool, len(stream))
	for k, snap := range stream {
		rows := make([][]float64, len(snap))
		clean := make([]bool, len(snap))
		for j, row := range snap {
			clean[j] = true
			rows[j] = row
			switch p := rng.Float64(); {
			case p < 0.05:
				rows[j] = nil
				clean[j] = false
			case p < 0.10:
				bad := append([]float64(nil), row...)
				switch rng.Intn(3) {
				case 0:
					bad[rng.Intn(len(bad))] = math.NaN()
				case 1:
					bad[rng.Intn(len(bad))] = math.Inf(1)
				default:
					bad[rng.Intn(len(bad))] = math.Inf(-1)
				}
				rows[j] = bad
				clean[j] = false
			case p < 0.13:
				if rng.Intn(2) == 0 {
					rows[j] = row[:len(row)-1] // too short
				} else {
					rows[j] = append(append([]float64(nil), row...), 0.5) // too wide
				}
				clean[j] = false
			}
		}
		out[k] = rows
		truth[k] = clean
	}
	return out, truth
}

// TestClassifyMatchesTruth: Classify must grade exactly the rows that
// are present, full-width and finite — identically for the serial and
// sharded paths.
func TestClassifyMatchesTruth(t *testing.T) {
	t.Parallel()

	const n, d = 8192, 2
	devs := walkFleet(t, n, d, "threshold")
	stream, truth := degradeStream(walkStream(n, d, 4, 11), 12)

	for _, workers := range []int{1, 3, 8} {
		w := NewWalker(workers)
		clean := make([]bool, n)
		for k, snap := range stream {
			got := w.Classify(devs, snap, clean)
			want := 0
			for _, ok := range truth[k] {
				if ok {
					want++
				}
			}
			if got != want {
				t.Fatalf("workers=%d tick %d: Classify = %d clean, want %d", workers, k, got, want)
			}
			if !reflect.DeepEqual(clean, truth[k]) {
				t.Fatalf("workers=%d tick %d: clean mask diverges from truth", workers, k)
			}
		}
	}
}

// TestClassifyWidthZeroRow: a zero-length non-nil row is malformed for
// any real width, and a nil row is never clean.
func TestClassifyWidthZeroRow(t *testing.T) {
	t.Parallel()

	devs := walkFleet(t, 3, 1, "threshold")
	clean := make([]bool, 3)
	got := NewWalker(1).Classify(devs, [][]float64{{0.5}, {}, nil}, clean)
	if got != 1 || !clean[0] || clean[1] || clean[2] {
		t.Fatalf("Classify = %d, mask %v", got, clean)
	}
}

// TestWalkSkipParity: for every detector family, the sharded WalkSkip
// over a degraded stream must produce the identical abnormal set,
// detector state and visit coverage as the serial pass — and skipped
// devices' detectors must not move at all.
func TestWalkSkipParity(t *testing.T) {
	t.Parallel()

	const n, d, ticks = 8192, 2, 6
	for _, family := range []string{"threshold", "ewma", "cusum", "holtwinters", "kalman", "shewhart"} {
		family := family
		t.Run(family, func(t *testing.T) {
			t.Parallel()
			stream, truth := degradeStream(walkStream(n, d, ticks, 21), 22)
			// Build the effective rows the monitor would feed: nil rows
			// where the row is not clean (this test has no hold values).
			effective := make([][][]float64, ticks)
			for k := range stream {
				rows := make([][]float64, n)
				for j := range rows {
					if truth[k][j] {
						rows[j] = stream[k][j]
					}
				}
				effective[k] = rows
			}

			serialDevs := walkFleet(t, n, d, family)
			serial := NewWalker(1)
			wantAbn := make([][]int, ticks)
			for k := range effective {
				out, err := serial.WalkSkip(serialDevs, effective[k], nil, nil)
				if err != nil {
					t.Fatal(err)
				}
				wantAbn[k] = append([]int(nil), out...)
			}

			for _, workers := range []int{2, 5, 8} {
				devs := walkFleet(t, n, d, family)
				w := NewWalker(workers)
				visited := make([]int, n)
				var buf []int
				for k := range effective {
					for j := range visited {
						visited[j] = 0
					}
					out, err := w.WalkSkip(devs, effective[k], func(dev int, row []float64) {
						visited[dev]++
						if (row == nil) == truth[k][dev] {
							t.Errorf("tick %d device %d: row nil-ness disagrees with truth", k, dev)
						}
					}, buf[:0])
					if err != nil {
						t.Fatal(err)
					}
					buf = out
					if !reflect.DeepEqual(out, wantAbn[k]) {
						t.Fatalf("workers=%d tick %d: abnormal set %v, serial %v", workers, k, out, wantAbn[k])
					}
					for j, v := range visited {
						if v != 1 {
							t.Fatalf("workers=%d tick %d: device %d visited %d times", workers, k, j, v)
						}
					}
				}
				// Detector state equivalence: predictions match the serial
				// fleet's on every device, including the skipped ones.
				for j := range devs {
					if !reflect.DeepEqual(devs[j].Predict(), serialDevs[j].Predict()) {
						t.Fatalf("workers=%d: device %d prediction diverges from serial", workers, j)
					}
				}
			}
		})
	}
}

// TestWalkSkipAllNil: a tick with every row missing updates nothing and
// flags nothing.
func TestWalkSkipAllNil(t *testing.T) {
	t.Parallel()

	const n = 4096
	devs := walkFleet(t, n, 1, "threshold")
	before := make([][]float64, n)
	for j := range devs {
		before[j] = devs[j].Predict()
	}
	out, err := NewWalker(4).WalkSkip(devs, make([][]float64, n), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("abnormal set %v from an all-missing tick", out)
	}
	for j := range devs {
		if !reflect.DeepEqual(devs[j].Predict(), before[j]) {
			t.Fatalf("device %d detector moved on an all-missing tick", j)
		}
	}
}

// TestWalkSkipRowCountMismatch mirrors Walk's geometry check.
func TestWalkSkipRowCountMismatch(t *testing.T) {
	t.Parallel()

	devs := walkFleet(t, 4, 1, "threshold")
	if _, err := NewWalker(2).WalkSkip(devs, make([][]float64, 3), nil, nil); err == nil {
		t.Fatal("want error for wrong row count")
	}
}
