package detect

import (
	"fmt"
	"math"
)

// Shewhart is the individuals control chart: the process level is the
// running mean and the dispersion is estimated from the mean moving range
// (sigma ≈ MR̄ / 1.128, the d2 constant for subgroups of two). A sample
// beyond k sigmas from the centre line is abnormal. The classic statistical
// process-control companion to CUSUM [10].
type Shewhart struct {
	k       float64
	minMR   float64
	warmup  int
	seen    int
	mean    float64
	mrSum   float64
	mrCount int
	last    float64
	trained bool
}

var _ Detector = (*Shewhart)(nil)

// d2 for subgroups of size two, the moving-range-to-sigma constant.
const shewhartD2 = 1.128

// NewShewhart returns an individuals chart with gate width k > 0 sigmas,
// a floor minMR >= 0 on the moving-range estimate, and a warmup sample
// count during which nothing is flagged.
func NewShewhart(k, minMR float64, warmup int) (*Shewhart, error) {
	if k <= 0 || minMR < 0 || warmup < 0 || math.IsNaN(k) {
		return nil, fmt.Errorf("k=%v minMR=%v warmup=%d: %w", k, minMR, warmup, ErrDetectorConfig)
	}
	return &Shewhart{k: k, minMR: minMR, warmup: warmup}, nil
}

// Update implements Detector.
func (s *Shewhart) Update(sample float64) bool {
	if !s.trained {
		s.mean = sample
		s.last = sample
		s.seen = 1
		s.trained = true
		return false
	}
	s.seen++
	mr := math.Abs(sample - s.last)
	sigma := s.sigma()
	abnormal := s.seen > s.warmup && math.Abs(sample-s.mean) > s.k*sigma

	// Abnormal samples update the chart with clamped influence so a
	// single excursion does not widen the limits.
	upd := mr
	if abnormal && sigma > 0 && mr > shewhartD2*sigma {
		upd = shewhartD2 * sigma
	}
	s.mrSum += upd
	s.mrCount++
	s.mean += (sample - s.mean) / float64(s.seen)
	s.last = sample
	return abnormal
}

// sigma estimates the process dispersion from the mean moving range.
func (s *Shewhart) sigma() float64 {
	mr := s.minMR
	if s.mrCount > 0 {
		if est := s.mrSum / float64(s.mrCount); est > mr {
			mr = est
		}
	}
	return mr / shewhartD2
}

// Predict implements Detector: the centre line.
func (s *Shewhart) Predict() float64 { return s.mean }

// Reset implements Detector.
func (s *Shewhart) Reset() {
	s.seen, s.mrCount = 0, 0
	s.mean, s.mrSum, s.last = 0, 0, 0
	s.trained = false
}
