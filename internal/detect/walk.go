package detect

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
)

// ErrSample is returned when a snapshot row cannot be consumed as-is: a
// width mismatch, or a non-finite QoS value that would poison detector
// state (NaN slips through interval tests — v < 0 || v > 1 is false for
// NaN — so finiteness is tested by name). Walk reports it before any
// detector has been updated.
var ErrSample = errors.New("detect: invalid sample")

// minShard is the smallest per-worker device range worth a goroutine:
// below it the spawn/join overhead exceeds the detector work itself, so
// Walk degrades to the serial walk.
const minShard = 2048

// Walker shards the per-device detection walk of one snapshot across a
// fixed pool size. The error-detection functions a_k(j) are independent
// local tests (Section III-A), which makes the walk embarrassingly
// parallel per device: Walker slices the fleet into contiguous id
// ranges, one per worker, and concatenates the per-worker abnormal-id
// buffers in range order, so the merged abnormal set is byte-identical
// to a serial walk whatever the worker count.
//
// A Walker's buffers are reused across snapshots; it is not safe for
// concurrent use.
type Walker struct {
	workers int
	flags   [][]int
	errs    []error
	counts  []int
}

// NewWalker returns a walker with the given pool size; workers <= 0
// selects GOMAXPROCS.
func NewWalker(workers int) *Walker {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Walker{
		workers: workers,
		flags:   make([][]int, workers),
		errs:    make([]error, workers),
		counts:  make([]int, workers),
	}
}

// Workers returns the configured pool size.
func (w *Walker) Workers() int { return w.workers }

// Walk feeds row j of samples to device j — exactly one Update per
// device — and appends the ids whose abnormal flag a_k(j) fired to out
// in ascending order, reusing out's storage. Every row is validated
// (width and finiteness) before the first detector update, so a non-nil
// error means no detector state changed.
//
// visit, when non-nil, runs once per device inside the same sharded
// pass, before that device's Update. Shards are disjoint contiguous id
// ranges, so visit may write to per-device slots of a shared structure
// without synchronization, but must not touch state shared across
// devices.
func (w *Walker) Walk(devs []*Device, samples [][]float64, visit func(dev int, row []float64), out []int) ([]int, error) {
	out = out[:0]
	n := len(devs)
	if len(samples) != n {
		return out, fmt.Errorf("snapshot has %d rows, want %d: %w", len(samples), n, ErrSample)
	}
	workers := w.workers
	if maxUseful := (n + minShard - 1) / minShard; workers > maxUseful {
		workers = maxUseful
	}
	if workers <= 1 {
		if err := validateRange(devs, samples, 0, n); err != nil {
			return out, err
		}
		return walkRange(devs, samples, visit, 0, n, out)
	}

	// Phase 1: validate every shard before mutating anything, so a
	// malformed row in one shard cannot leave another shard's detectors
	// half-updated. Shards are contiguous ascending, so the first
	// worker with an error holds the lowest offending device — the same
	// error a serial walk would report.
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		lo, hi := i*n/workers, (i+1)*n/workers
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			w.errs[i] = validateRange(devs, samples, lo, hi)
		}(i, lo, hi)
	}
	wg.Wait()
	for _, err := range w.errs[:workers] {
		if err != nil {
			return out, err
		}
	}

	// Phase 2: the walk proper, each worker flagging into its own
	// reused buffer.
	for i := 0; i < workers; i++ {
		lo, hi := i*n/workers, (i+1)*n/workers
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			buf := w.flags[i]
			if buf == nil {
				buf = make([]int, 0, (hi-lo)/8+16)
			}
			w.flags[i], w.errs[i] = walkRange(devs, samples, visit, lo, hi, buf[:0])
		}(i, lo, hi)
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		out = append(out, w.flags[i]...)
	}
	for _, err := range w.errs[:workers] {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// Classify grades every row of a possibly-degraded snapshot without
// touching any detector, sharded like Walk: clean[dev] is set to
// whether row dev is present (non-nil), matches device dev's width,
// and is finite in every coordinate. The degraded ingest path treats
// malformed and missing reports identically — neither carries a usable
// measurement — so classification folds both into one bit instead of
// reporting an error. Returns the number of clean rows. len(samples)
// and len(clean) must equal len(devs).
func (w *Walker) Classify(devs []*Device, samples [][]float64, clean []bool) int {
	n := len(devs)
	workers := w.workers
	if maxUseful := (n + minShard - 1) / minShard; workers > maxUseful {
		workers = maxUseful
	}
	if workers <= 1 {
		return classifyRange(devs, samples, clean, 0, n)
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		lo, hi := i*n/workers, (i+1)*n/workers
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			w.counts[i] = classifyRange(devs, samples, clean, lo, hi)
		}(i, lo, hi)
	}
	wg.Wait()
	total := 0
	for _, c := range w.counts[:workers] {
		total += c
	}
	return total
}

func classifyRange(devs []*Device, samples [][]float64, clean []bool, lo, hi int) int {
	n := 0
	for dev := lo; dev < hi; dev++ {
		row := samples[dev]
		ok := row != nil && len(row) == len(devs[dev].detectors)
		if ok {
			for _, v := range row {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					ok = false
					break
				}
			}
		}
		clean[dev] = ok
		if ok {
			n++
		}
	}
	return n
}

// WalkSkip runs the detector walk of one pre-classified partial
// snapshot: row j of rows is fed to device j unless it is nil, in
// which case device j's detectors are left untouched for this tick
// and the device cannot be flagged. visit runs for every device — nil
// rows included, before any Update — so the caller can park an
// excluded device's slot of the shared state. The abnormal set merges
// in the same shard order as Walk, byte-identical to a serial pass.
//
// Rows must already be validated (Classify): unlike Walk there is no
// validation phase, so a detector error surfaces with the offending
// shard partially consumed.
func (w *Walker) WalkSkip(devs []*Device, rows [][]float64, visit func(dev int, row []float64), out []int) ([]int, error) {
	out = out[:0]
	n := len(devs)
	if len(rows) != n {
		return out, fmt.Errorf("snapshot has %d rows, want %d: %w", len(rows), n, ErrSample)
	}
	workers := w.workers
	if maxUseful := (n + minShard - 1) / minShard; workers > maxUseful {
		workers = maxUseful
	}
	if workers <= 1 {
		return walkSkipRange(devs, rows, visit, 0, n, out)
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		lo, hi := i*n/workers, (i+1)*n/workers
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			buf := w.flags[i]
			if buf == nil {
				buf = make([]int, 0, (hi-lo)/8+16)
			}
			w.flags[i], w.errs[i] = walkSkipRange(devs, rows, visit, lo, hi, buf[:0])
		}(i, lo, hi)
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		out = append(out, w.flags[i]...)
	}
	for _, err := range w.errs[:workers] {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// walkSkipRange is walkRange with nil rows excluded from the update.
func walkSkipRange(devs []*Device, rows [][]float64, visit func(dev int, row []float64), lo, hi int, flagged []int) ([]int, error) {
	for dev := lo; dev < hi; dev++ {
		row := rows[dev]
		if visit != nil {
			visit(dev, row)
		}
		if row == nil {
			continue
		}
		abnormal, err := devs[dev].Update(row)
		if err != nil {
			return flagged, fmt.Errorf("device %d: %w", dev, err)
		}
		if abnormal {
			flagged = append(flagged, dev)
		}
	}
	return flagged, nil
}

// validateRange rejects malformed rows in [lo, hi) without touching any
// detector.
func validateRange(devs []*Device, samples [][]float64, lo, hi int) error {
	for dev := lo; dev < hi; dev++ {
		row := samples[dev]
		if len(row) != len(devs[dev].detectors) {
			return fmt.Errorf("device %d has %d coords, want %d: %w",
				dev, len(row), len(devs[dev].detectors), ErrSample)
		}
		for svc, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("device %d service %d: non-finite QoS %v: %w",
					dev, svc, v, ErrSample)
			}
		}
	}
	return nil
}

// walkRange runs the serial walk over [lo, hi), appending flagged ids.
func walkRange(devs []*Device, samples [][]float64, visit func(dev int, row []float64), lo, hi int, flagged []int) ([]int, error) {
	for dev := lo; dev < hi; dev++ {
		row := samples[dev]
		if visit != nil {
			visit(dev, row)
		}
		abnormal, err := devs[dev].Update(row)
		if err != nil {
			return flagged, fmt.Errorf("device %d: %w", dev, err)
		}
		if abnormal {
			flagged = append(flagged, dev)
		}
	}
	return flagged, nil
}
