package detect

import (
	"fmt"
	"math"
)

// HoltWinters is double (level + trend) exponential smoothing [6][12] with
// an optional additive seasonal component, flagging samples outside a band
// of k times the exponentially weighted mean absolute deviation around the
// one-step forecast.
type HoltWinters struct {
	alpha, beta, gamma float64
	k                  float64
	minBand            float64
	period             int // 0 disables seasonality

	level, trend float64
	seasonal     []float64
	step         int
	trained      bool
	mad          float64
}

var _ Detector = (*HoltWinters)(nil)

// NewHoltWinters returns a Holt-Winters detector. alpha/beta in (0,1] are
// the level/trend gains; gamma in [0,1] the seasonal gain (ignored when
// period == 0); k > 0 the band width in MAD units; minBand >= 0 a floor on
// the band; period >= 0 the seasonal length in samples.
func NewHoltWinters(alpha, beta, gamma, k, minBand float64, period int) (*HoltWinters, error) {
	if alpha <= 0 || alpha > 1 || beta <= 0 || beta > 1 || gamma < 0 || gamma > 1 ||
		k <= 0 || minBand < 0 || period < 0 {
		return nil, fmt.Errorf("alpha=%v beta=%v gamma=%v k=%v minBand=%v period=%d: %w",
			alpha, beta, gamma, k, minBand, period, ErrDetectorConfig)
	}
	hw := &HoltWinters{
		alpha: alpha, beta: beta, gamma: gamma,
		k: k, minBand: minBand, period: period,
	}
	if period > 0 {
		hw.seasonal = make([]float64, period)
	}
	return hw, nil
}

// Update implements Detector.
func (h *HoltWinters) Update(sample float64) bool {
	if !h.trained {
		h.level = sample
		h.trend = 0
		h.trained = true
		h.step = 1
		return false
	}
	forecast := h.Predict()
	residual := sample - forecast
	band := h.k * h.mad
	if band < h.minBand {
		band = h.minBand
	}
	// Flag only once the MAD estimate has had a few samples to form.
	abnormal := h.step > 3 && math.Abs(residual) > band

	// Smooth the deviation estimate (abnormal residuals are clamped so the
	// band does not explode after a genuine anomaly).
	upd := math.Abs(residual)
	if abnormal {
		upd = band
	}
	h.mad = 0.9*h.mad + 0.1*upd

	seasonIdx := 0
	seasonComp := 0.0
	if h.period > 0 {
		seasonIdx = h.step % h.period
		seasonComp = h.seasonal[seasonIdx]
	}
	prevLevel := h.level
	h.level = h.alpha*(sample-seasonComp) + (1-h.alpha)*(h.level+h.trend)
	h.trend = h.beta*(h.level-prevLevel) + (1-h.beta)*h.trend
	if h.period > 0 {
		h.seasonal[seasonIdx] = h.gamma*(sample-h.level) + (1-h.gamma)*seasonComp
	}
	h.step++
	return abnormal
}

// Predict implements Detector: the one-step-ahead forecast.
func (h *HoltWinters) Predict() float64 {
	f := h.level + h.trend
	if h.period > 0 {
		f += h.seasonal[h.step%h.period]
	}
	return f
}

// Reset implements Detector.
func (h *HoltWinters) Reset() {
	h.level, h.trend, h.mad = 0, 0, 0
	h.step = 0
	h.trained = false
	for i := range h.seasonal {
		h.seasonal[i] = 0
	}
}

// Kalman is a scalar local-level Kalman filter [7]: the latent QoS level
// evolves as a random walk with process variance Q observed with noise
// variance R. A sample is abnormal when its normalized innovation exceeds
// the gate.
type Kalman struct {
	q, r    float64
	gate    float64
	x       float64 // state estimate
	p       float64 // estimate variance
	trained bool
}

var _ Detector = (*Kalman)(nil)

// NewKalman returns a local-level Kalman innovation detector with process
// variance q > 0, observation variance r > 0, and gate > 0 (in standard
// deviations of the innovation).
func NewKalman(q, r, gate float64) (*Kalman, error) {
	if q <= 0 || r <= 0 || gate <= 0 {
		return nil, fmt.Errorf("q=%v r=%v gate=%v: %w", q, r, gate, ErrDetectorConfig)
	}
	return &Kalman{q: q, r: r, gate: gate}, nil
}

// Update implements Detector.
func (k *Kalman) Update(sample float64) bool {
	if !k.trained {
		k.x = sample
		k.p = k.r
		k.trained = true
		return false
	}
	// Predict step: random walk.
	k.p += k.q
	// Innovation test.
	innovation := sample - k.x
	s := k.p + k.r
	abnormal := innovation*innovation > k.gate*k.gate*s
	// Update step.
	gain := k.p / s
	k.x += gain * innovation
	k.p *= 1 - gain
	return abnormal
}

// Predict implements Detector.
func (k *Kalman) Predict() float64 { return k.x }

// Reset implements Detector.
func (k *Kalman) Reset() { k.x, k.p, k.trained = 0, 0, false }
