package detect

import (
	"errors"
	"math"
	"testing"

	"anomalia/internal/stats"
)

// steady produces n samples of level + small deterministic noise.
func steady(rng *stats.RNG, level float64, n int, noise float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = level + noise*(rng.Float64()-0.5)
	}
	return out
}

// detectors under test, constructed fresh per subtest.
func allDetectors(t *testing.T) map[string]func() Detector {
	t.Helper()
	return map[string]func() Detector{
		"threshold": func() Detector {
			d, err := NewThreshold(0.15)
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
		"ewma": func() Detector {
			d, err := NewEWMA(0.3, 4, 0.02, 5)
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
		"cusum": func() Detector {
			d, err := NewCUSUM(0.05, 0.2, 0.2)
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
		"holtwinters": func() Detector {
			d, err := NewHoltWinters(0.5, 0.3, 0, 5, 0.08, 0)
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
		"kalman": func() Detector {
			d, err := NewKalman(1e-4, 1e-3, 4)
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
	}
}

// TestDetectorsCatchLevelShift: every detector must flag a large sudden
// QoS drop after a quiet training period, and must not fire constantly on
// quiet data.
func TestDetectorsCatchLevelShift(t *testing.T) {
	t.Parallel()

	for name, build := range allDetectors(t) {
		name, build := name, build
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			det := build()
			rng := stats.NewRNG(42)
			falseAlarms := 0
			for _, x := range steady(rng, 0.9, 200, 0.01) {
				if det.Update(x) {
					falseAlarms++
				}
			}
			if falseAlarms > 4 {
				t.Errorf("%d false alarms on steady data", falseAlarms)
			}
			// Sudden drop to 0.3: must alarm within a few samples.
			alarmed := false
			for i, x := range steady(rng, 0.3, 10, 0.01) {
				if det.Update(x) {
					alarmed = true
					_ = i
					break
				}
			}
			if !alarmed {
				t.Error("level shift from 0.9 to 0.3 not detected")
			}
		})
	}
}

// TestDetectorsRecover: after the shift is absorbed, detectors must stop
// alarming at the new level.
func TestDetectorsRecover(t *testing.T) {
	t.Parallel()

	for name, build := range allDetectors(t) {
		name, build := name, build
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			det := build()
			rng := stats.NewRNG(7)
			for _, x := range steady(rng, 0.9, 100, 0.01) {
				det.Update(x)
			}
			for _, x := range steady(rng, 0.4, 50, 0.01) {
				det.Update(x)
			}
			// The last stretch at the new level must be mostly quiet.
			alarms := 0
			for _, x := range steady(rng, 0.4, 100, 0.01) {
				if det.Update(x) {
					alarms++
				}
			}
			if alarms > 8 {
				t.Errorf("%d alarms after re-stabilizing", alarms)
			}
		})
	}
}

func TestDetectorsResetAndPredict(t *testing.T) {
	t.Parallel()

	for name, build := range allDetectors(t) {
		name, build := name, build
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			det := build()
			rng := stats.NewRNG(3)
			for _, x := range steady(rng, 0.8, 50, 0.01) {
				det.Update(x)
			}
			if p := det.Predict(); math.Abs(p-0.8) > 0.1 {
				t.Errorf("Predict() = %v after training at 0.8", p)
			}
			det.Reset()
			// First post-reset sample must never be abnormal (no model).
			if det.Update(0.1) {
				t.Error("first sample after Reset must not be abnormal")
			}
		})
	}
}

func TestConstructorValidation(t *testing.T) {
	t.Parallel()

	cases := []struct {
		name string
		err  error
	}{
		{"threshold", func() error { _, err := NewThreshold(0); return err }()},
		{"threshold nan", func() error { _, err := NewThreshold(math.NaN()); return err }()},
		{"ewma alpha", func() error { _, err := NewEWMA(0, 4, 0, 0); return err }()},
		{"ewma k", func() error { _, err := NewEWMA(0.5, 0, 0, 0); return err }()},
		{"ewma warmup", func() error { _, err := NewEWMA(0.5, 2, 0, -1); return err }()},
		{"cusum h", func() error { _, err := NewCUSUM(0.1, 0, 0.1); return err }()},
		{"cusum drift", func() error { _, err := NewCUSUM(-1, 1, 0.1); return err }()},
		{"hw alpha", func() error { _, err := NewHoltWinters(0, 0.3, 0, 3, 0, 0); return err }()},
		{"hw period", func() error { _, err := NewHoltWinters(0.5, 0.3, 0, 3, 0, -2); return err }()},
		{"kalman", func() error { _, err := NewKalman(0, 1, 3); return err }()},
	}
	for _, tt := range cases {
		if !errors.Is(tt.err, ErrDetectorConfig) {
			t.Errorf("%s: error = %v, want ErrDetectorConfig", tt.name, tt.err)
		}
	}
}

// TestCUSUMCatchesSlowDrift: CUSUM's reason to exist is accumulating
// small persistent shifts that a jump detector misses.
func TestCUSUMCatchesSlowDrift(t *testing.T) {
	t.Parallel()

	cusum, err := NewCUSUM(0.01, 0.15, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	jump, err := NewThreshold(0.15)
	if err != nil {
		t.Fatal(err)
	}
	// Slow decay of 0.004 per step: each single step is below the jump
	// threshold forever.
	level := 0.9
	cusumAlarm, jumpAlarm := false, false
	for i := 0; i < 200; i++ {
		level -= 0.004
		cusumAlarm = cusum.Update(level) || cusumAlarm
		jumpAlarm = jump.Update(level) || jumpAlarm
	}
	if !cusumAlarm {
		t.Error("CUSUM failed to accumulate a slow drift")
	}
	if jumpAlarm {
		t.Error("threshold detector should not fire on per-step drift below delta")
	}
}

// TestHoltWintersTracksTrend: the trend component must absorb a steady
// ramp that would fool a level-only detector.
func TestHoltWintersTracksTrend(t *testing.T) {
	t.Parallel()

	hw, err := NewHoltWinters(0.5, 0.3, 0, 6, 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	level := 0.2
	alarms := 0
	for i := 0; i < 150; i++ {
		level += 0.003 // gentle ramp
		if hw.Update(level) {
			alarms++
		}
	}
	if alarms > 3 {
		t.Errorf("%d alarms on a smooth ramp; trend not tracked", alarms)
	}
	// A break in the ramp must be flagged.
	if !hw.Update(level - 0.4) {
		t.Error("ramp break not detected")
	}
}

// TestHoltWintersSeasonal: with seasonality enabled, a repeating daily
// pattern must not alarm, while a sample violating the pattern must.
func TestHoltWintersSeasonal(t *testing.T) {
	t.Parallel()

	const period = 8
	hw, err := NewHoltWinters(0.3, 0.1, 0.4, 6, 0.05, period)
	if err != nil {
		t.Fatal(err)
	}
	pattern := func(i int) float64 {
		return 0.7 + 0.15*math.Sin(2*math.Pi*float64(i%period)/period)
	}
	alarms := 0
	warm := 6 * period
	for i := 0; i < 12*period; i++ {
		if hw.Update(pattern(i)) && i > warm {
			alarms++
		}
	}
	if alarms > 3 {
		t.Errorf("%d alarms on a learned seasonal pattern", alarms)
	}
	if !hw.Update(pattern(12*period) - 0.5) {
		t.Error("seasonal violation not detected")
	}
}

// TestKalmanGateScalesWithNoise: a noisy but stationary series should not
// alarm when R reflects the noise.
func TestKalmanGateScalesWithNoise(t *testing.T) {
	t.Parallel()

	k, err := NewKalman(1e-5, 0.01, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(99)
	alarms := 0
	for i := 0; i < 500; i++ {
		if k.Update(0.5 + 0.05*rng.NormFloat64()) {
			alarms++
		}
	}
	if alarms > 10 {
		t.Errorf("%d alarms on stationary noise", alarms)
	}
}

func TestDeviceComposite(t *testing.T) {
	t.Parallel()

	dev, err := NewDevice(2, func(int) (Detector, error) { return NewThreshold(0.2) })
	if err != nil {
		t.Fatal(err)
	}
	if dev.Services() != 2 {
		t.Errorf("Services() = %d", dev.Services())
	}
	if _, err := dev.Update([]float64{0.9}); err == nil {
		t.Error("dimension mismatch must error")
	}
	ab, err := dev.Update([]float64{0.9, 0.8})
	if err != nil || ab {
		t.Errorf("first sample: ab=%v err=%v", ab, err)
	}
	// Service 1 drops hard, service 0 stays.
	ab, err = dev.Update([]float64{0.9, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if !ab {
		t.Error("a_k(j) must be true when any service is abnormal")
	}
	flags := dev.ServiceFlags()
	if flags[0] || !flags[1] {
		t.Errorf("ServiceFlags = %v, want [false true]", flags)
	}
	if p := dev.Predict(); len(p) != 2 {
		t.Errorf("Predict len = %d", len(p))
	}
	dev.Reset()
	if f := dev.ServiceFlags(); f[0] || f[1] {
		t.Error("Reset must clear flags")
	}
}

func TestDeviceConstructorErrors(t *testing.T) {
	t.Parallel()

	if _, err := NewDevice(0, func(int) (Detector, error) { return NewThreshold(0.1) }); !errors.Is(err, ErrDetectorConfig) {
		t.Errorf("d=0 error = %v", err)
	}
	if _, err := NewDevice(1, func(int) (Detector, error) { return nil, nil }); !errors.Is(err, ErrDetectorConfig) {
		t.Errorf("nil detector error = %v", err)
	}
	wantErr := errors.New("boom")
	if _, err := NewDevice(1, func(int) (Detector, error) { return nil, wantErr }); !errors.Is(err, wantErr) {
		t.Errorf("factory error = %v, want wrapped boom", err)
	}
}
