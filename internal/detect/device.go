package detect

import (
	"fmt"
)

// Device is the per-device composite of Section III-A: one detector per
// consumed service, with the abnormal flag a_k(j) true as soon as any
// service's QoS variation is abnormal.
type Device struct {
	detectors []Detector
	flags     []bool
}

// NewDevice builds a composite for d services, constructing one detector
// per service with the factory. d must be positive.
func NewDevice(d int, factory func(service int) (Detector, error)) (*Device, error) {
	if d <= 0 {
		return nil, fmt.Errorf("d = %d services: %w", d, ErrDetectorConfig)
	}
	dev := &Device{
		detectors: make([]Detector, d),
		flags:     make([]bool, d),
	}
	for i := 0; i < d; i++ {
		det, err := factory(i)
		if err != nil {
			return nil, fmt.Errorf("service %d: %w", i, err)
		}
		if det == nil {
			return nil, fmt.Errorf("service %d: nil detector: %w", i, ErrDetectorConfig)
		}
		dev.detectors[i] = det
	}
	return dev, nil
}

// Services returns the number of monitored services d.
func (dev *Device) Services() int { return len(dev.detectors) }

// Update consumes the QoS vector of one discrete time and returns a_k(j):
// whether at least one service behaved abnormally. The sample must have
// exactly d coordinates.
func (dev *Device) Update(sample []float64) (bool, error) {
	if len(sample) != len(dev.detectors) {
		return false, fmt.Errorf("sample has %d coords, want %d: %w",
			len(sample), len(dev.detectors), ErrDetectorConfig)
	}
	abnormal := false
	for i, det := range dev.detectors {
		dev.flags[i] = det.Update(sample[i])
		abnormal = abnormal || dev.flags[i]
	}
	return abnormal, nil
}

// ServiceFlags returns which services were abnormal at the last Update.
// The returned slice is a copy.
func (dev *Device) ServiceFlags() []bool {
	out := make([]bool, len(dev.flags))
	copy(out, dev.flags)
	return out
}

// Predict returns the per-service predictions as a fresh vector.
func (dev *Device) Predict() []float64 {
	out := make([]float64, len(dev.detectors))
	for i, det := range dev.detectors {
		out[i] = det.Predict()
	}
	return out
}

// Reset resets every per-service detector.
func (dev *Device) Reset() {
	for i, det := range dev.detectors {
		det.Reset()
		dev.flags[i] = false
	}
}
