// Package detect implements the error-detection functions a_k(j) of
// Section III-A. The paper leaves their implementation out of scope but
// cites threshold tests, Holt-Winters forecasting [6][12], CUSUM [10] and
// Kalman filters [7]; this package provides all of them behind a common
// interface, plus the per-device composite that ORs the per-service
// verdicts into the abnormal flag a_k(j).
//
// Every detector follows the same contract: Update consumes the QoS
// sample of one discrete time and reports whether the observed value
// deviates abnormally from the detector's prediction of it.
package detect

import (
	"errors"
	"fmt"
	"math"
)

// Detector is a single-service error-detection function: it predicts the
// next QoS sample from the past sequence and flags observations that
// deviate too much.
type Detector interface {
	// Update folds in the sample observed at the current discrete time
	// and reports whether it is abnormal.
	Update(sample float64) bool
	// Predict returns the detector's current one-step-ahead prediction.
	Predict() float64
	// Reset returns the detector to its initial, untrained state.
	Reset()
}

// ErrDetectorConfig is returned by constructors for invalid parameters.
var ErrDetectorConfig = errors.New("detect: invalid detector configuration")

// Threshold flags a sample whose jump from the previous sample exceeds
// Delta — the simplest detector the paper mentions.
type Threshold struct {
	delta   float64
	last    float64
	trained bool
}

var _ Detector = (*Threshold)(nil)

// NewThreshold returns a jump detector with the given maximum normal
// inter-sample variation delta > 0.
func NewThreshold(delta float64) (*Threshold, error) {
	if delta <= 0 || math.IsNaN(delta) {
		return nil, fmt.Errorf("delta = %v: %w", delta, ErrDetectorConfig)
	}
	return &Threshold{delta: delta}, nil
}

// Update implements Detector.
func (t *Threshold) Update(sample float64) bool {
	if !t.trained {
		t.last = sample
		t.trained = true
		return false
	}
	abnormal := math.Abs(sample-t.last) > t.delta
	t.last = sample
	return abnormal
}

// Predict implements Detector: the last observation.
func (t *Threshold) Predict() float64 { return t.last }

// Reset implements Detector.
func (t *Threshold) Reset() { t.last, t.trained = 0, false }

// EWMA tracks an exponentially weighted mean and variance and flags
// samples more than K deviations from the mean.
type EWMA struct {
	alpha   float64
	k       float64
	minStd  float64
	warmup  int
	seen    int
	mean    float64
	varEst  float64
	trained bool
}

var _ Detector = (*EWMA)(nil)

// NewEWMA returns an EWMA band detector: smoothing alpha in (0, 1], gate
// width k > 0 (in standard deviations), floor minStd >= 0 on the deviation
// estimate, and warmup samples during which nothing is flagged.
func NewEWMA(alpha, k, minStd float64, warmup int) (*EWMA, error) {
	if alpha <= 0 || alpha > 1 || k <= 0 || minStd < 0 || warmup < 0 {
		return nil, fmt.Errorf("alpha=%v k=%v minStd=%v warmup=%d: %w",
			alpha, k, minStd, warmup, ErrDetectorConfig)
	}
	return &EWMA{alpha: alpha, k: k, minStd: minStd, warmup: warmup}, nil
}

// Update implements Detector.
func (e *EWMA) Update(sample float64) bool {
	if !e.trained {
		e.mean = sample
		e.trained = true
		e.seen = 1
		return false
	}
	e.seen++
	dev := sample - e.mean
	std := math.Sqrt(e.varEst)
	if std < e.minStd {
		std = e.minStd
	}
	abnormal := e.seen > e.warmup && math.Abs(dev) > e.k*std
	// Abnormal samples still update the model, but with the deviation
	// clamped so a single spike does not blow up the band.
	e.mean += e.alpha * dev
	e.varEst = (1-e.alpha)*e.varEst + e.alpha*dev*dev
	return abnormal
}

// Predict implements Detector.
func (e *EWMA) Predict() float64 { return e.mean }

// Reset implements Detector.
func (e *EWMA) Reset() { e.mean, e.varEst, e.seen, e.trained = 0, 0, 0, false }

// CUSUM is Page's two-sided cumulative-sum test [10] around a running
// baseline: it accumulates deviations beyond a drift allowance and alarms
// when either side exceeds the decision threshold.
type CUSUM struct {
	drift     float64
	threshold float64
	alpha     float64 // baseline smoothing
	baseline  float64
	pos, neg  float64
	trained   bool
}

var _ Detector = (*CUSUM)(nil)

// NewCUSUM returns a two-sided CUSUM detector: drift is the slack k per
// sample, threshold the decision level h, alpha the baseline smoothing in
// (0, 1].
func NewCUSUM(drift, threshold, alpha float64) (*CUSUM, error) {
	if drift < 0 || threshold <= 0 || alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("drift=%v threshold=%v alpha=%v: %w",
			drift, threshold, alpha, ErrDetectorConfig)
	}
	return &CUSUM{drift: drift, threshold: threshold, alpha: alpha}, nil
}

// Update implements Detector.
func (c *CUSUM) Update(sample float64) bool {
	if !c.trained {
		c.baseline = sample
		c.trained = true
		return false
	}
	dev := sample - c.baseline
	c.pos = math.Max(0, c.pos+dev-c.drift)
	c.neg = math.Max(0, c.neg-dev-c.drift)
	abnormal := c.pos > c.threshold || c.neg > c.threshold
	if abnormal {
		// Restart the test after an alarm (standard practice) and re-seat
		// the baseline on the new level.
		c.pos, c.neg = 0, 0
		c.baseline = sample
	} else {
		c.baseline += c.alpha * dev
	}
	return abnormal
}

// Predict implements Detector.
func (c *CUSUM) Predict() float64 { return c.baseline }

// Reset implements Detector.
func (c *CUSUM) Reset() { c.baseline, c.pos, c.neg, c.trained = 0, 0, 0, false }
