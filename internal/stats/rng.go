// Package stats provides the numerical substrate of the reproduction:
// a deterministic random-number generator whose stream is stable across Go
// releases, log-space binomial probabilities used by the parameter
// dimensioning of Section VII-A, and descriptive statistics for the
// experiment harness.
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (SplitMix64). It is used instead of math/rand so experiment outputs are
// reproducible bit-for-bit regardless of the Go release.
//
// The zero value is a valid generator seeded with 0; prefer NewRNG.
// RNG is not safe for concurrent use; give each goroutine its own stream
// via Split.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{state: uint64(seed)}
}

// Split derives an independent generator from the current stream, advancing
// this one. Useful to hand deterministic sub-streams to parallel workers.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64()}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform sample in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform sample in [0, n). It panics if n <= 0, mirroring
// math/rand semantics for programmer errors.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Rejection sampling to avoid modulo bias.
	max := uint64(n)
	limit := (^uint64(0) / max) * max
	for {
		v := r.Uint64()
		if v < limit {
			return int(v % max)
		}
	}
}

// IntRange returns a uniform sample in [lo, hi] inclusive. It panics if
// hi < lo.
func (r *RNG) IntRange(lo, hi int) int {
	if hi < lo {
		panic("stats: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// UniformRange returns a uniform sample in [lo, hi).
func (r *RNG) UniformRange(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// NormFloat64 returns a standard normal sample (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a random permutation of [0, n), Fisher–Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles s in place.
func (r *RNG) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Sample returns k distinct elements drawn uniformly from s without
// replacement (partial Fisher–Yates on a copy). If k >= len(s) a shuffled
// copy of all of s is returned.
func (r *RNG) Sample(s []int, k int) []int {
	cp := make([]int, len(s))
	copy(cp, s)
	if k >= len(cp) {
		r.ShuffleInts(cp)
		return cp
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(len(cp)-i)
		cp[i], cp[j] = cp[j], cp[i]
	}
	return cp[:k]
}
