package stats

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	t.Parallel()

	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce the same stream")
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical draws", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	t.Parallel()

	r := NewRNG(7)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		x := r.Float64()
		if x < 0 || x >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean of uniforms = %v, want ~0.5", mean)
	}
}

func TestRNGIntnUniform(t *testing.T) {
	t.Parallel()

	r := NewRNG(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("value %d drawn %d times, want ~%.0f", v, c, want)
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	t.Parallel()

	defer func() {
		if recover() == nil {
			t.Error("Intn(0) must panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGIntRange(t *testing.T) {
	t.Parallel()

	r := NewRNG(3)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.IntRange(5, 8)
		if v < 5 || v > 8 {
			t.Fatalf("IntRange(5,8) = %d", v)
		}
		seen[v] = true
	}
	for v := 5; v <= 8; v++ {
		if !seen[v] {
			t.Errorf("IntRange never produced %d", v)
		}
	}
	if got := r.IntRange(4, 4); got != 4 {
		t.Errorf("IntRange(4,4) = %d, want 4", got)
	}
}

func TestRNGPermAndSample(t *testing.T) {
	t.Parallel()

	r := NewRNG(5)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm produced invalid permutation %v", p)
		}
		seen[v] = true
	}

	src := []int{10, 20, 30, 40, 50}
	s := r.Sample(src, 3)
	if len(s) != 3 {
		t.Fatalf("Sample returned %d elements, want 3", len(s))
	}
	uniq := map[int]bool{}
	for _, v := range s {
		uniq[v] = true
		found := false
		for _, o := range src {
			if o == v {
				found = true
			}
		}
		if !found {
			t.Fatalf("Sample produced %d not in source", v)
		}
	}
	if len(uniq) != 3 {
		t.Fatal("Sample must draw without replacement")
	}
	if all := r.Sample(src, 10); len(all) != len(src) {
		t.Fatalf("Sample with k>len = %d elements, want %d", len(all), len(src))
	}
	// Source must be untouched.
	if src[0] != 10 || src[4] != 50 {
		t.Error("Sample must not mutate its input")
	}
}

func TestRNGNormFloat64(t *testing.T) {
	t.Parallel()

	r := NewRNG(9)
	var w Welford
	for i := 0; i < 50000; i++ {
		w.Add(r.NormFloat64())
	}
	if math.Abs(w.Mean()) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", w.Mean())
	}
	if math.Abs(w.StdDev()-1) > 0.02 {
		t.Errorf("normal stddev = %v, want ~1", w.StdDev())
	}
}

func TestRNGBernoulli(t *testing.T) {
	t.Parallel()

	r := NewRNG(13)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) rate = %v", p)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	t.Parallel()

	r := NewRNG(21)
	s1 := r.Split()
	s2 := r.Split()
	if s1.Uint64() == s2.Uint64() {
		t.Error("split streams should differ")
	}
}
