package stats

import (
	"math"
	"testing"
)

func TestMeanVariance(t *testing.T) {
	t.Parallel()

	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almostEqual(m, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); !almostEqual(v, 32.0/7, 1e-12) {
		t.Errorf("Variance = %v, want %v", v, 32.0/7)
	}
	if s := StdDev(xs); !almostEqual(s, math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("StdDev = %v", s)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate inputs must return 0")
	}
}

func TestMinMax(t *testing.T) {
	t.Parallel()

	min, max, ok := MinMax([]float64{3, -1, 7, 2})
	if !ok || min != -1 || max != 7 {
		t.Errorf("MinMax = %v,%v,%v", min, max, ok)
	}
	if _, _, ok := MinMax(nil); ok {
		t.Error("MinMax(nil) must report !ok")
	}
}

func TestQuantile(t *testing.T) {
	t.Parallel()

	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4}, {-0.5, 1}, {2, 5},
	}
	for _, tt := range tests {
		if got := Quantile(xs, tt.q); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("Quantile(nil) must be 0")
	}
	// Input must not be mutated.
	ys := []float64{3, 1, 2}
	Quantile(ys, 0.5)
	if ys[0] != 3 {
		t.Error("Quantile must not sort its input in place")
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	t.Parallel()

	r := NewRNG(99)
	xs := make([]float64, 1000)
	var w Welford
	for i := range xs {
		xs[i] = r.NormFloat64()*3 + 10
		w.Add(xs[i])
	}
	if w.N() != len(xs) {
		t.Errorf("N = %d", w.N())
	}
	if !almostEqual(w.Mean(), Mean(xs), 1e-9) {
		t.Errorf("Welford mean %v vs batch %v", w.Mean(), Mean(xs))
	}
	if !almostEqual(w.Variance(), Variance(xs), 1e-7) {
		t.Errorf("Welford variance %v vs batch %v", w.Variance(), Variance(xs))
	}
	var empty Welford
	if empty.Mean() != 0 || empty.Variance() != 0 || empty.StdDev() != 0 {
		t.Error("zero-value Welford must report zeros")
	}
}

func TestHistogram(t *testing.T) {
	t.Parallel()

	h := NewHistogram(0, 10, 5)
	if h == nil {
		t.Fatal("NewHistogram returned nil for valid args")
	}
	for _, x := range []float64{0, 1.9, 2, 5, 9.99, -5, 42} {
		h.Observe(x)
	}
	counts := h.Counts()
	// -5 clamps to bin 0, 42 clamps to bin 4.
	want := []int{3, 1, 1, 0, 2}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("bin %d = %d, want %d (all: %v)", i, counts[i], want[i], counts)
		}
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d, want 7", h.Total())
	}
	if c := h.BinCenter(0); !almostEqual(c, 1, 1e-12) {
		t.Errorf("BinCenter(0) = %v, want 1", c)
	}
	if NewHistogram(0, 0, 5) != nil || NewHistogram(0, 1, 0) != nil {
		t.Error("invalid histogram construction must return nil")
	}
}
