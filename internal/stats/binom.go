package stats

import (
	"errors"
	"math"
)

// ErrInvalidProbability is returned when a probability argument lies
// outside [0, 1].
var ErrInvalidProbability = errors.New("stats: probability outside [0, 1]")

// LogChoose returns log C(n, k) computed via the log-gamma function, which
// stays finite for the n ≈ 15000 used by the Figure 6b sweep.
func LogChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if k == 0 || k == n {
		return 0
	}
	ln1, _ := math.Lgamma(float64(n + 1))
	lk1, _ := math.Lgamma(float64(k + 1))
	lnk1, _ := math.Lgamma(float64(n - k + 1))
	return ln1 - lk1 - lnk1
}

// BinomialPMF returns P{X = k} for X ~ Binomial(n, p), evaluated in log
// space for numerical stability.
func BinomialPMF(n, k int, p float64) (float64, error) {
	if p < 0 || p > 1 {
		return 0, ErrInvalidProbability
	}
	if k < 0 || k > n {
		return 0, nil
	}
	if p == 0 {
		if k == 0 {
			return 1, nil
		}
		return 0, nil
	}
	if p == 1 {
		if k == n {
			return 1, nil
		}
		return 0, nil
	}
	logPMF := LogChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p)
	return math.Exp(logPMF), nil
}

// BinomialCDF returns P{X <= k} for X ~ Binomial(n, p) by direct summation
// from the lighter tail.
func BinomialCDF(n, k int, p float64) (float64, error) {
	if p < 0 || p > 1 {
		return 0, ErrInvalidProbability
	}
	if k < 0 {
		return 0, nil
	}
	if k >= n {
		return 1, nil
	}
	// Sum whichever tail has fewer terms.
	if k+1 <= n-k {
		sum := 0.0
		for i := 0; i <= k; i++ {
			pmf, _ := BinomialPMF(n, i, p)
			sum += pmf
		}
		return math.Min(sum, 1), nil
	}
	sum := 0.0
	for i := k + 1; i <= n; i++ {
		pmf, _ := BinomialPMF(n, i, p)
		sum += pmf
	}
	return math.Max(0, 1-sum), nil
}

// BinomialSurvival returns P{X > k} = 1 - CDF(k).
func BinomialSurvival(n, k int, p float64) (float64, error) {
	cdf, err := BinomialCDF(n, k, p)
	if err != nil {
		return 0, err
	}
	return 1 - cdf, nil
}

// LogSumExp returns log(sum exp(xs)) with the usual max-shift trick.
// It returns -Inf for an empty input.
func LogSumExp(xs []float64) float64 {
	if len(xs) == 0 {
		return math.Inf(-1)
	}
	max := xs[0]
	for _, x := range xs[1:] {
		if x > max {
			max = x
		}
	}
	if math.IsInf(max, -1) {
		return max
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Exp(x - max)
	}
	return max + math.Log(sum)
}
