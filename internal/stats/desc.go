package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 for fewer than
// two samples).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the extrema of xs; ok is false for an empty slice.
func MinMax(xs []float64) (min, max float64, ok bool) {
	if len(xs) == 0 {
		return 0, 0, false
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, true
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It returns 0 for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Welford accumulates a running mean and variance without storing samples.
// The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds x into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of accumulated samples.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased running variance (0 for n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the running standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Histogram counts samples into equal-width bins over [lo, hi); samples
// outside the range are clamped into the first/last bin.
type Histogram struct {
	lo, hi float64
	counts []int
	total  int
}

// NewHistogram returns a histogram with bins equal-width bins over
// [lo, hi). bins must be positive and hi > lo; otherwise nil is returned.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		return nil
	}
	return &Histogram{lo: lo, hi: hi, counts: make([]int, bins)}
}

// Observe adds a sample.
func (h *Histogram) Observe(x float64) {
	idx := int(float64(len(h.counts)) * (x - h.lo) / (h.hi - h.lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.counts) {
		idx = len(h.counts) - 1
	}
	h.counts[idx]++
	h.total++
}

// Counts returns a copy of the per-bin counts.
func (h *Histogram) Counts() []int {
	out := make([]int, len(h.counts))
	copy(out, h.counts)
	return out
}

// Total returns the number of observed samples.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.hi - h.lo) / float64(len(h.counts))
	return h.lo + width*(float64(i)+0.5)
}
