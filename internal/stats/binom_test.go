package stats

import (
	"math"
	"testing"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLogChoose(t *testing.T) {
	t.Parallel()

	tests := []struct {
		n, k int
		want float64 // C(n,k)
	}{
		{0, 0, 1},
		{5, 0, 1},
		{5, 5, 1},
		{5, 2, 10},
		{10, 3, 120},
		{52, 5, 2598960},
	}
	for _, tt := range tests {
		got := math.Exp(LogChoose(tt.n, tt.k))
		if !almostEqual(got, tt.want, tt.want*1e-9) {
			t.Errorf("exp(LogChoose(%d,%d)) = %v, want %v", tt.n, tt.k, got, tt.want)
		}
	}
	if !math.IsInf(LogChoose(5, 6), -1) || !math.IsInf(LogChoose(5, -1), -1) {
		t.Error("out-of-range LogChoose must be -Inf")
	}
}

func TestBinomialPMF(t *testing.T) {
	t.Parallel()

	// Binomial(4, 0.5): 1/16, 4/16, 6/16, 4/16, 1/16.
	want := []float64{1.0 / 16, 4.0 / 16, 6.0 / 16, 4.0 / 16, 1.0 / 16}
	for k, w := range want {
		got, err := BinomialPMF(4, k, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, w, 1e-12) {
			t.Errorf("PMF(4,%d,0.5) = %v, want %v", k, got, w)
		}
	}
}

func TestBinomialPMFEdges(t *testing.T) {
	t.Parallel()

	if p, _ := BinomialPMF(10, 0, 0); p != 1 {
		t.Errorf("PMF(10,0,0) = %v, want 1", p)
	}
	if p, _ := BinomialPMF(10, 3, 0); p != 0 {
		t.Errorf("PMF(10,3,0) = %v, want 0", p)
	}
	if p, _ := BinomialPMF(10, 10, 1); p != 1 {
		t.Errorf("PMF(10,10,1) = %v, want 1", p)
	}
	if p, _ := BinomialPMF(10, -1, 0.5); p != 0 {
		t.Errorf("PMF with k<0 = %v, want 0", p)
	}
	if _, err := BinomialPMF(10, 3, 1.5); err == nil {
		t.Error("PMF with p>1 must error")
	}
	if _, err := BinomialPMF(10, 3, -0.1); err == nil {
		t.Error("PMF with p<0 must error")
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	t.Parallel()

	for _, n := range []int{1, 7, 100, 1000} {
		for _, p := range []float64{0.005, 0.3, 0.97} {
			sum := 0.0
			for k := 0; k <= n; k++ {
				pmf, err := BinomialPMF(n, k, p)
				if err != nil {
					t.Fatal(err)
				}
				sum += pmf
			}
			if !almostEqual(sum, 1, 1e-9) {
				t.Errorf("sum of PMF(n=%d,p=%v) = %v, want 1", n, p, sum)
			}
		}
	}
}

func TestBinomialCDF(t *testing.T) {
	t.Parallel()

	// CDF(4, 1, 0.5) = 5/16.
	got, err := BinomialCDF(4, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 5.0/16, 1e-12) {
		t.Errorf("CDF(4,1,0.5) = %v, want %v", got, 5.0/16)
	}
	if c, _ := BinomialCDF(10, -1, 0.5); c != 0 {
		t.Error("CDF(k<0) must be 0")
	}
	if c, _ := BinomialCDF(10, 10, 0.5); c != 1 {
		t.Error("CDF(k=n) must be 1")
	}
	if c, _ := BinomialCDF(10, 99, 0.5); c != 1 {
		t.Error("CDF(k>n) must be 1")
	}
	if _, err := BinomialCDF(10, 3, 2); err == nil {
		t.Error("CDF with invalid p must error")
	}
}

func TestBinomialCDFMonotone(t *testing.T) {
	t.Parallel()

	prev := 0.0
	for k := 0; k <= 1000; k += 10 {
		c, err := BinomialCDF(1000, k, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if c < prev-1e-12 {
			t.Fatalf("CDF not monotone at k=%d: %v < %v", k, c, prev)
		}
		prev = c
	}
}

func TestBinomialSurvival(t *testing.T) {
	t.Parallel()

	s, err := BinomialSurvival(4, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(s, 11.0/16, 1e-12) {
		t.Errorf("Survival(4,1,0.5) = %v, want %v", s, 11.0/16)
	}
}

// TestBinomialLargeN exercises the n=15000 regime of Figure 6b.
func TestBinomialLargeN(t *testing.T) {
	t.Parallel()

	c, err := BinomialCDF(15000, 5, 0.0036*0.005)
	if err != nil {
		t.Fatal(err)
	}
	if c < 0.999 || c > 1 {
		t.Errorf("CDF(15000,5,q*b) = %v, want in (0.999, 1]", c)
	}
}

func TestLogSumExp(t *testing.T) {
	t.Parallel()

	if !math.IsInf(LogSumExp(nil), -1) {
		t.Error("LogSumExp(nil) must be -Inf")
	}
	got := LogSumExp([]float64{math.Log(1), math.Log(2), math.Log(3)})
	if !almostEqual(got, math.Log(6), 1e-12) {
		t.Errorf("LogSumExp = %v, want log 6", got)
	}
	// Huge offsets must not overflow.
	got = LogSumExp([]float64{1000, 1000})
	if !almostEqual(got, 1000+math.Log(2), 1e-9) {
		t.Errorf("LogSumExp with large inputs = %v", got)
	}
	if !math.IsInf(LogSumExp([]float64{math.Inf(-1), math.Inf(-1)}), -1) {
		t.Error("LogSumExp of -Inf inputs must be -Inf")
	}
}

// TestBinomialAgainstMonteCarlo verifies the closed forms against sampling.
func TestBinomialAgainstMonteCarlo(t *testing.T) {
	t.Parallel()

	const n, p, trials = 50, 0.2, 200000
	r := NewRNG(1234)
	leK := 0
	const k = 10
	for i := 0; i < trials; i++ {
		hits := 0
		for j := 0; j < n; j++ {
			if r.Bernoulli(p) {
				hits++
			}
		}
		if hits <= k {
			leK++
		}
	}
	mc := float64(leK) / trials
	exact, err := BinomialCDF(n, k, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mc-exact) > 0.005 {
		t.Errorf("MC CDF = %v, exact = %v", mc, exact)
	}
}
