package grid

import (
	"fmt"
	"math"
	"slices"
	"testing"

	"anomalia/internal/sets"
	"anomalia/internal/space"
	"anomalia/internal/stats"
)

// This file pins the delta path: an index evolved by Update across a
// window sequence must be byte-identical — every slab, every view, every
// probe — to an index built fresh by New from the same state and ids.
// The sequences are adversarial: no-op moves, devices oscillating across
// one cell boundary, boundary-snapped and coincident positions, id churn
// from 0% to 100%, and old states scrambled after every step (the
// production Monitor recycles its snapshot buffers, so Update must never
// read the old state).

// assertIndexEqual compares two indexes slab by slab.
func assertIndexEqual(t *testing.T, label string, got, want *Index) {
	t.Helper()
	if got.Params != want.Params || got.kc != want.kc || got.dim != want.dim {
		t.Fatalf("%s: geometry %+v/%+v vs %+v/%+v", label, got.Params, got.kc, want.Params, want.kc)
	}
	if !slices.Equal(got.keys, want.keys) {
		t.Fatalf("%s: key slabs differ (%d vs %d words)", label, len(got.keys), len(want.keys))
	}
	if len(got.cells) != len(want.cells) {
		t.Fatalf("%s: %d cells, want %d", label, len(got.cells), len(want.cells))
	}
	for ci := range want.cells {
		if !slices.Equal(got.cells[ci].Coords, want.cells[ci].Coords) {
			t.Fatalf("%s: cell %d coords %v, want %v", label, ci, got.cells[ci].Coords, want.cells[ci].Coords)
		}
		if !slices.Equal(got.cells[ci].Ids, want.cells[ci].Ids) {
			t.Fatalf("%s: cell %d ids %v, want %v", label, ci, got.cells[ci].Ids, want.cells[ci].Ids)
		}
	}
	// The arena order — ids grouped by key-sorted cell, ascending within
	// each cell — must match the fresh build's exactly, wherever the
	// backing storage lives (patched indexes share unchurned storage
	// with their ancestors).
	var gotArena, wantArena []int
	for ci := range want.cells {
		gotArena = append(gotArena, got.cells[ci].Ids...)
		wantArena = append(wantArena, want.cells[ci].Ids...)
	}
	if !slices.Equal(gotArena, wantArena) {
		t.Fatalf("%s: id arena order differs", label)
	}
	if !slices.Equal(got.idCell, want.idCell) {
		t.Fatalf("%s: idCell records differ", label)
	}
	if !slices.Equal(got.ids, want.ids) {
		t.Fatalf("%s: ids differ", label)
	}
}

// updateSeq drives one evolving window sequence and checks parity after
// every step. mode selects the movement distribution.
type updateSeq struct {
	rng  *stats.RNG
	prm  Params
	n    int
	dim  int
	mode string
	// cur is the live state; ids the current indexed set.
	cur    *space.State
	ids    []int
	ix     *Index
	stepNo int
}

func newUpdateSeq(t *testing.T, rng *stats.RNG, n, dim int, side float64, mode string) *updateSeq {
	t.Helper()
	st, err := space.NewState(n, dim)
	if err != nil {
		t.Fatal(err)
	}
	st.Uniform(rng.Float64)
	s := &updateSeq{rng: rng, prm: ForSide(side), n: n, dim: dim, mode: mode, cur: st}
	for j := 0; j < n; j++ {
		if rng.Float64() < 0.8 {
			s.ids = append(s.ids, j)
		}
	}
	s.ix = New(st, s.ids, s.prm)
	return s
}

// point draws a position according to the sequence's distribution mode.
func (s *updateSeq) point(anchor space.Point) space.Point {
	pt := make(space.Point, s.dim)
	switch s.mode {
	case "clustered":
		for i := range pt {
			pt[i] = math.Min(1, math.Max(0, anchor[i]+(s.rng.Float64()-0.5)*4*s.prm.Side))
		}
	case "boundary":
		for i := range pt {
			pt[i] = math.Min(1, float64(s.rng.Intn(s.prm.Res+1))*s.prm.Side)
		}
	default: // uniform
		for i := range pt {
			pt[i] = s.rng.Float64()
		}
	}
	return pt
}

// step evolves the window: moveFrac of the indexed ids get new positions
// (plus no-op rewrites and one-cell oscillations), churnFrac of the id
// set is swapped out/in, and the previous state buffer is scrambled
// after the update — like the Monitor's recycled snapshots. Every other
// step feeds Update the honest moved list (sometimes padded with
// unmoved ids — supersets are legal); the rest pass nil and exercise
// the recheck-everything path.
func (s *updateSeq) step(t *testing.T, label string, moveFrac, churnFrac float64) {
	t.Helper()
	next := s.cur.Clone()
	movedSet := map[int]bool{}

	// Position churn over the whole population (indexed or not).
	moves := int(moveFrac * float64(s.n))
	for k := 0; k < moves; k++ {
		j := s.rng.Intn(s.n)
		anchor := next.At(s.rng.Intn(s.n))
		if err := next.Set(j, s.point(anchor)); err != nil {
			t.Fatal(err)
		}
		movedSet[j] = true
	}
	// Coincident devices: copy another device's position exactly.
	for k := 0; k < moves/4; k++ {
		a, b := s.rng.Intn(s.n), s.rng.Intn(s.n)
		if err := next.Set(a, next.At(b)); err != nil {
			t.Fatal(err)
		}
		movedSet[a] = true
	}
	// No-op move: rewrite a position unchanged (listing it is legal).
	if s.n > 0 {
		j := s.rng.Intn(s.n)
		if err := next.Set(j, next.At(j).Clone()); err != nil {
			t.Fatal(err)
		}
		movedSet[j] = true
	}
	// Oscillation: shift one device by exactly one cell side, so it hops
	// a boundary without leaving its neighbourhood.
	if len(s.ids) > 0 {
		j := s.ids[s.rng.Intn(len(s.ids))]
		pt := next.At(j).Clone()
		pt[0] = math.Min(1, math.Max(0, pt[0]+s.prm.Side))
		if err := next.Set(j, pt); err != nil {
			t.Fatal(err)
		}
		movedSet[j] = true
	}

	// Id churn: drop and add churnFrac of the indexed set.
	ids := slices.Clone(s.ids)
	drop := int(churnFrac * float64(len(ids)))
	for k := 0; k < drop && len(ids) > 1; k++ {
		p := s.rng.Intn(len(ids))
		ids = slices.Delete(ids, p, p+1)
	}
	for k := 0; k < drop; k++ {
		j := s.rng.Intn(s.n)
		if p, ok := slices.BinarySearch(ids, j); !ok {
			ids = slices.Insert(ids, p, j)
		}
	}

	var moved []int
	s.stepNo++
	if s.stepNo%2 == 1 {
		for j := range movedSet {
			moved = append(moved, j)
		}
		// Pad with a few unmoved ids: supersets must be harmless.
		for k := 0; k < 3; k++ {
			moved = append(moved, s.rng.Intn(s.n))
		}
		moved = sets.Canon(moved)
	}
	nix, st := s.ix.Update(next, ids, moved)
	want := New(next, ids, s.prm)
	assertIndexEqual(t, label, nix, want)
	if nix.State() != next {
		t.Fatalf("%s: updated index does not reference the new state", label)
	}
	if !st.Rebuilt {
		if st.Sources == nil {
			// Identity: the cell set must be unchanged position for
			// position.
			if len(nix.cells) != len(s.ix.cells) {
				t.Fatalf("%s: nil Sources but %d cells vs %d", label, len(nix.cells), len(s.ix.cells))
			}
			for ci := range nix.cells {
				if !slices.Equal(nix.cells[ci].Coords, s.ix.cells[ci].Coords) {
					t.Fatalf("%s: nil Sources but cell %d coords changed", label, ci)
				}
			}
		} else {
			if len(st.Sources) != len(nix.cells) {
				t.Fatalf("%s: %d sources for %d cells", label, len(st.Sources), len(nix.cells))
			}
			for nc, src := range st.Sources {
				if src < 0 {
					continue
				}
				if !slices.Equal(nix.cells[nc].Coords, s.ix.cells[src].Coords) {
					t.Fatalf("%s: source %d->%d coords mismatch", label, src, nc)
				}
			}
		}
		// Every membership difference must be flagged as churned.
		churned := make(map[string]bool, len(st.ChurnedCells))
		for _, nc := range st.ChurnedCells {
			churned[Key(nix.cells[nc].Coords)] = true
		}
		oldByKey := make(map[string][]int, len(s.ix.cells))
		for ci := range s.ix.cells {
			oldByKey[Key(s.ix.cells[ci].Coords)] = s.ix.cells[ci].Ids
		}
		for ci := range nix.cells {
			key := Key(nix.cells[ci].Coords)
			if !slices.Equal(nix.cells[ci].Ids, oldByKey[key]) && !churned[key] {
				t.Fatalf("%s: cell %v changed membership but is not in ChurnedCells", label, nix.cells[ci].Coords)
			}
		}
		if len(st.VacatedCoords)%s.dim != 0 {
			t.Fatalf("%s: vacated coords length %d not a multiple of dim", label, len(st.VacatedCoords))
		}
		for off := 0; off < len(st.VacatedCoords); off += s.dim {
			vc := st.VacatedCoords[off : off+s.dim]
			if nix.Find(vc) != -1 {
				t.Fatalf("%s: vacated cell %v still occupied", label, vc)
			}
			if s.ix.Find(vc) == -1 {
				t.Fatalf("%s: vacated cell %v was never occupied", label, vc)
			}
		}
	}

	// Scramble the state the old index was built on: Update and the new
	// index must be independent of it (the Monitor recycles buffers).
	s.cur.Uniform(s.rng.Float64)

	s.cur, s.ids, s.ix = next, ids, nix

	// Spot-check lookups against the freshly built twin.
	for trial := 0; trial < 5 && len(ids) > 0; trial++ {
		q := next.At(ids[s.rng.Intn(len(ids))])
		radius := s.prm.Side * []float64{0.5, 1, 2}[trial%3]
		got := nix.Within(q, radius, nil)
		exp := want.Within(q, radius, nil)
		if !slices.Equal(got, exp) {
			t.Fatalf("%s: Within diverged from fresh build", label)
		}
	}
}

// TestUpdateMatchesFreshBuild: the parity property suite over random
// move/churn sequences — uniform, clustered, boundary-snapped and
// coincident devices, churn fractions including 0% and 100%, single-word
// and word-per-axis key codecs.
func TestUpdateMatchesFreshBuild(t *testing.T) {
	t.Parallel()

	rng := stats.NewRNG(20260729)
	configs := []struct {
		n, dim int
		side   float64
		mode   string
	}{
		{300, 2, 0.06, "uniform"},
		{400, 2, 0.02, "clustered"},
		{250, 1, 0.13, "boundary"},
		{300, 3, 0.1, "uniform"},
		{200, 2, 1, "uniform"},     // single spanning cell
		{150, 12, 0.31, "uniform"}, // word-per-axis codec (stride == dim)
		{120, 3, 1e-7, "uniform"},  // huge resolution: wide keys, singleton cells
	}
	churns := []struct{ move, churn float64 }{
		{0, 0},    // identical window
		{0.01, 0}, // a handful of moves, no id churn
		{0.05, 0.02},
		{0.2, 0.1},
		{0.3, 0.3}, // near and past the rebuild threshold
		{1, 1},     // full churn: everything replaced
	}
	for ci, cfg := range configs {
		s := newUpdateSeq(t, rng, cfg.n, cfg.dim, cfg.side, cfg.mode)
		for step, ch := range churns {
			label := fmt.Sprintf("config %d (%s d=%d side=%v) step %d (move=%v churn=%v)",
				ci, cfg.mode, cfg.dim, cfg.side, step, ch.move, ch.churn)
			s.step(t, label, ch.move, ch.churn)
		}
	}
}

// TestUpdatePairWalkParity: the cell-pair sets the updated index walks
// must match the fresh build's, across shard counts — the property the
// sparse graph construction shards on.
func TestUpdatePairWalkParity(t *testing.T) {
	t.Parallel()

	rng := stats.NewRNG(555)
	s := newUpdateSeq(t, rng, 300, 2, 0.06, "clustered")
	for step := 0; step < 4; step++ {
		s.step(t, fmt.Sprintf("step %d", step), 0.1, 0.05)
		fresh := New(s.cur, s.ids, s.prm)
		for _, nshards := range []int{1, 3} {
			want := map[[2]string]bool{}
			fw := fresh.NewPairWalk(2)
			for sh := 0; sh < nshards; sh++ {
				fw.Shard(sh, nshards, func(a, b int) {
					want[[2]string{Key(fw.Cells()[a].Coords), Key(fw.Cells()[b].Coords)}] = true
				})
			}
			got := map[[2]string]bool{}
			uw := s.ix.NewPairWalk(2)
			for sh := 0; sh < nshards; sh++ {
				uw.Shard(sh, nshards, func(a, b int) {
					pair := [2]string{Key(uw.Cells()[a].Coords), Key(uw.Cells()[b].Coords)}
					if got[pair] {
						t.Fatalf("step %d nshards=%d: duplicate pair", step, nshards)
					}
					got[pair] = true
				})
			}
			if len(got) != len(want) {
				t.Fatalf("step %d nshards=%d: %d pairs, want %d", step, nshards, len(got), len(want))
			}
			for pair := range got {
				if !want[pair] {
					t.Fatalf("step %d nshards=%d: spurious pair", step, nshards)
				}
			}
		}
	}
}

// TestUpdateRebuildFallbacks: inputs outside the delta path's
// preconditions must fall back to a full rebuild — and still produce an
// index identical to New.
func TestUpdateRebuildFallbacks(t *testing.T) {
	t.Parallel()

	rng := stats.NewRNG(4242)
	st, err := space.NewState(100, 2)
	if err != nil {
		t.Fatal(err)
	}
	st.Uniform(rng.Float64)
	prm := ForSide(0.06)
	ids := make([]int, 0, 100)
	for j := 0; j < 100; j += 2 {
		ids = append(ids, j)
	}
	ix := New(st, ids, prm)

	// Unsorted ids.
	unsorted := []int{5, 3, 9}
	nix, us := ix.Update(st, unsorted, nil)
	if !us.Rebuilt {
		t.Error("unsorted ids must rebuild")
	}
	assertIndexEqual(t, "unsorted", nix, New(st, unsorted, prm))

	// Duplicate ids.
	if _, us := ix.Update(st, []int{1, 1, 2}, nil); !us.Rebuilt {
		t.Error("duplicate ids must rebuild")
	}

	// Empty new set.
	nix, us = ix.Update(st, nil, nil)
	if !us.Rebuilt || nix.Cells() != 0 {
		t.Errorf("empty new set: rebuilt=%v cells=%d", us.Rebuilt, nix.Cells())
	}

	// Empty old index.
	empty := New(st, nil, prm)
	nix, us = empty.Update(st, ids, nil)
	if !us.Rebuilt {
		t.Error("empty old index must rebuild")
	}
	assertIndexEqual(t, "empty-old", nix, New(st, ids, prm))

	// Dimension change.
	st3, err := space.NewState(100, 3)
	if err != nil {
		t.Fatal(err)
	}
	st3.Uniform(rng.Float64)
	nix, us = ix.Update(st3, ids, nil)
	if !us.Rebuilt {
		t.Error("dimension change must rebuild")
	}
	assertIndexEqual(t, "dim-change", nix, New(st3, ids, prm))

	// Churn fraction above the threshold.
	moved := st.Clone()
	for _, j := range ids {
		pt := make(space.Point, 2)
		pt[0], pt[1] = rng.Float64(), rng.Float64()
		if err := moved.Set(j, pt); err != nil {
			t.Fatal(err)
		}
	}
	nix, us = ix.Update(moved, ids, nil)
	if !us.Rebuilt {
		t.Error("full-churn update must rebuild")
	}
	assertIndexEqual(t, "full-churn", nix, New(moved, ids, prm))
}

// TestUpdateAllocs pins the delta hot path: advancing a 12k-id index at
// ~1% churn stays a bounded handful of allocations — slab headers and
// churn-sized delta lists, never a per-id or per-cell term.
func TestUpdateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is slow under -short")
	}
	const n = 12000
	rng := stats.NewRNG(77)
	st, err := space.NewState(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	st.Uniform(rng.Float64)
	prm := ForSide(0.02)
	ids := make([]int, n)
	for j := range ids {
		ids[j] = j
	}
	ix := New(st, ids, prm)

	next := st.Clone()
	var movedIds []int
	for k := 0; k < n/100; k++ {
		j := rng.Intn(n)
		pt := space.Point{rng.Float64(), rng.Float64()}
		if err := next.Set(j, pt); err != nil {
			t.Fatal(err)
		}
		movedIds = append(movedIds, j)
	}
	movedIds = sets.Canon(movedIds)
	for _, moved := range [][]int{movedIds, nil} {
		got := testing.AllocsPerRun(10, func() {
			nix, us := ix.Update(next, ids, moved)
			if us.Rebuilt || nix.Cells() == 0 {
				t.Fatal("1% churn must take the delta path")
			}
		})
		if limit := 96.0; got > limit {
			t.Errorf("Update (moved=%v) allocates %.0f times at 1%% churn over %d ids, want <= %.0f",
				moved != nil, got, n, limit)
		}
	}
}

// FuzzIndexUpdate: arbitrary delta sequences — add/remove/move,
// including no-op moves and boundary oscillations — applied through
// Update must match both the map-based oracle retained from the flat
// index migration and a byte-identical fresh build.
func FuzzIndexUpdate(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(1), uint8(50))
	f.Add(int64(99), uint8(8), uint8(0), uint8(200))
	f.Add(int64(31337), uint8(5), uint8(3), uint8(30))
	f.Add(int64(-7), uint8(2), uint8(4), uint8(120))
	f.Fuzz(func(t *testing.T, seed int64, steps, sideSel, nSel uint8) {
		rng := stats.NewRNG(seed)
		n := 10 + int(nSel)
		side := []float64{0.02, 0.06, 0.13, 0.31, 1}[int(sideSel)%5]
		prm := ForSide(side)
		st, err := space.NewState(n, 2)
		if err != nil {
			t.Fatal(err)
		}
		st.Uniform(rng.Float64)
		ids := []int{}
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.7 {
				ids = append(ids, j)
			}
		}
		ix := New(st, ids, prm)
		for step := 0; step < int(steps%12)+1; step++ {
			next := st.Clone()
			movedSet := map[int]bool{}
			// A burst of random ops: moves (uniform, snapped, oscillating,
			// no-op) and id adds/removes.
			ops := rng.Intn(1 + n/4)
			for op := 0; op < ops; op++ {
				j := rng.Intn(n)
				switch rng.Intn(5) {
				case 0: // uniform move
					next.Set(j, space.Point{rng.Float64(), rng.Float64()})
					movedSet[j] = true
				case 1: // boundary-snapped move
					next.Set(j, space.Point{
						math.Min(1, float64(rng.Intn(prm.Res+1))*prm.Side),
						math.Min(1, float64(rng.Intn(prm.Res+1))*prm.Side),
					})
					movedSet[j] = true
				case 2: // oscillate exactly one cell side
					pt := next.At(j).Clone()
					pt[0] = math.Min(1, math.Max(0, pt[0]+prm.Side))
					next.Set(j, pt)
					movedSet[j] = true
				case 3: // membership toggle
					if p, ok := slices.BinarySearch(ids, j); ok {
						ids = slices.Delete(slices.Clone(ids), p, p+1)
					} else {
						ids = slices.Insert(slices.Clone(ids), p, j)
					}
				default: // no-op move
					next.Set(j, next.At(j).Clone())
					movedSet[j] = true
				}
			}
			// Alternate the delta feed: honest moved list, a padded
			// superset, or nil (recheck everything).
			var moved []int
			switch step % 3 {
			case 0:
				for j := range movedSet {
					moved = append(moved, j)
				}
				moved = sets.Canon(moved)
			case 1:
				for j := range movedSet {
					moved = append(moved, j)
				}
				moved = append(moved, rng.Intn(n), rng.Intn(n))
				moved = sets.Canon(moved)
			}
			nix, _ := ix.Update(next, ids, moved)
			assertIndexEqual(t, fmt.Sprintf("seed=%d step=%d", seed, step), nix, New(next, ids, prm))

			// Cross-check against the retained map-based oracle.
			oracle := mapIndex(next, ids, prm)
			if nix.Cells() != len(oracle) {
				t.Fatalf("seed=%d step=%d: %d cells, oracle has %d", seed, step, nix.Cells(), len(oracle))
			}
			for ci := 0; ci < nix.Cells(); ci++ {
				c := nix.CellAt(ci)
				want, ok := oracle[Key(c.Coords)]
				if !ok || !slices.Equal(c.Ids, want.ids) {
					t.Fatalf("seed=%d step=%d: cell %v ids %v, oracle %v (ok=%v)",
						seed, step, c.Coords, c.Ids, want, ok)
				}
			}
			// Scramble the displaced state: Update must not have read it.
			st.Uniform(rng.Float64)
			st, ix = next, nix
		}
	})
}
