// Package grid provides the shared spatial cell index every
// neighbourhood computation in the module derives from the consistency
// impact radius r: uniform cells of side 2r over the QoS hypercube
// E = [0,1]^d.
//
// With the uniform norm, two positions at distance <= 2r land in the
// same or in axis-adjacent cells, so any 2r query only has to inspect
// the 3^d cells around the query cell and any 4r view the 5^d cells —
// candidates are gathered per cell and re-checked with exact distances,
// which makes the index a pure pruning device: it can only add
// candidates, never lose one. Both motion-graph construction
// (motion.NewGraph) and the distributed directory (internal/dist) build
// on the same geometry, so their cell keys — and therefore the shard
// assignment the DistCost tables bill — agree by construction.
package grid

import (
	"encoding/binary"
	"math"
	"sort"

	"anomalia/internal/space"
)

// Params fixes the cell geometry every consumer derives from the
// consistency impact radius: the cell side and the number of cells per
// axis over [0,1].
type Params struct {
	// Side is the cell side, normally 2r (1 when r = 0, a single cell
	// spanning E).
	Side float64
	// Res is the number of cells per axis: ceil(1/Side), at least 1.
	Res int
}

// ForRadius returns the canonical geometry for radius r: cells of side
// 2r, or one cell spanning E when r = 0 (where only exactly-coincident
// devices are within distance 2r anyway).
func ForRadius(r float64) Params { return ForSide(2 * r) }

// ForSide returns the geometry for an explicit cell side. Degenerate
// sides (<= 0 or NaN) collapse to one cell spanning E, which is always
// correct — queries re-check exact distances — just unpruned.
func ForSide(side float64) Params {
	if !(side > 0) {
		side = 1
	}
	res := int(math.Ceil(1 / side))
	if res < 1 {
		res = 1
	}
	return Params{Side: side, Res: res}
}

// Coords appends the integer cell coordinates of position p to dst and
// returns the extended slice. Coordinates are clamped into [0, Res-1]
// per axis; clamping is monotone, so it only ever merges boundary
// cells — neighbourhood queries gain candidates, never lose one, and
// the caller's exact distance filter discards the extras.
func (g Params) Coords(p space.Point, dst []int) []int {
	for _, x := range p {
		c := int(x / g.Side)
		if c < 0 {
			c = 0
		}
		if c >= g.Res {
			c = g.Res - 1
		}
		dst = append(dst, c)
	}
	return dst
}

// AppendKey appends the collision-free encoding of a coordinate vector
// (8 bytes big-endian per axis, covering the full int range so even
// degenerate radii with Res > 2^32 cannot alias cells) to dst and
// returns the extended slice. Keys of equal-dimension vectors compare
// lexicographically exactly like the vectors themselves. The same
// encoding serves sorted device-id sets (dist.DecideAll's view keys).
func AppendKey(dst []byte, coords []int) []byte {
	for _, x := range coords {
		dst = binary.BigEndian.AppendUint64(dst, uint64(x))
	}
	return dst
}

// Key returns the collision-free string encoding of a coordinate
// vector. Use AppendKey with map[string(buf)] lookups on hot paths to
// avoid the allocation.
func Key(coords []int) string { return string(AppendKey(nil, coords)) }

// NeighborCells returns (2*reach+1)^dim — the cells a reach-wide
// neighbourhood walk visits — saturating at cap+1 so high dimensions
// cannot overflow. Callers compare the result against their own
// population threshold to decide between the cell walk and a scan.
func NeighborCells(dim, reach, cap int) int {
	cells := 1
	for i := 0; i < dim; i++ {
		if cells > cap {
			return cap + 1
		}
		cells *= 2*reach + 1
	}
	return cells
}

// PositiveOffsets enumerates the coordinate offsets in [-reach, reach]^dim
// whose first non-zero component is positive — exactly one of {o, -o} for
// every non-zero offset, so walking them from every cell visits each
// unordered cell pair once. It is the offset set of PairWalk, exported for
// callers that roll their own walk.
func PositiveOffsets(dim, reach int) [][]int {
	var out [][]int
	cur := make([]int, dim)
	for i := range cur {
		cur[i] = -reach
	}
	for {
		for i := 0; i < dim; i++ {
			if cur[i] != 0 {
				if cur[i] > 0 {
					out = append(out, append([]int(nil), cur...))
				}
				break
			}
		}
		i := 0
		for ; i < dim; i++ {
			cur[i]++
			if cur[i] <= reach {
				break
			}
			cur[i] = -reach
		}
		if i == dim {
			break
		}
	}
	return out
}

// Chebyshev returns the Chebyshev (max-axis) distance between two cell
// coordinate vectors.
func Chebyshev(a, b []int) int {
	max := 0
	for i := range a {
		delta := a[i] - b[i]
		if delta < 0 {
			delta = -delta
		}
		if delta > max {
			max = delta
		}
	}
	return max
}

// Cell is one occupied cell of an Index: its integer coordinates and
// the indexed device ids whose position falls inside it, in the order
// they were indexed (ascending when the ids were).
type Cell struct {
	Coords []int
	Ids    []int
}

// Index buckets a subset of a state's devices by cell. It is read-only
// after New returns and therefore safe for concurrent readers.
type Index struct {
	Params
	state *space.State
	cells map[string]*Cell
}

// New indexes the given device ids (typically the abnormal set, sorted)
// by the cell of their position in state.
func New(state *space.State, ids []int, p Params) *Index {
	ix := &Index{
		Params: p,
		state:  state,
		cells:  make(map[string]*Cell, len(ids)),
	}
	var coords []int
	var buf []byte
	for _, id := range ids {
		coords = p.Coords(state.At(id), coords[:0])
		buf = AppendKey(buf[:0], coords)
		c, ok := ix.cells[string(buf)]
		if !ok {
			c = &Cell{Coords: append([]int(nil), coords...)}
			ix.cells[string(buf)] = c
		}
		c.Ids = append(c.Ids, id)
	}
	return ix
}

// State returns the indexed state.
func (ix *Index) State() *space.State { return ix.state }

// Cells returns the number of occupied cells.
func (ix *Index) Cells() int { return len(ix.cells) }

// Cell returns the occupied cell with the given key, or nil. The cell
// aliases the index; treat it as read-only.
func (ix *Index) Cell(key string) *Cell { return ix.cells[key] }

// CellBytes is Cell for a key held in a byte buffer (as produced by
// AppendKey). The map lookup converts in place, so hot loops probing
// many neighbour keys do not allocate a string per probe.
func (ix *Index) CellBytes(key []byte) *Cell { return ix.cells[string(key)] }

// ForEachCell calls fn for every occupied cell in unspecified order.
// Cells alias the index; treat them as read-only.
func (ix *Index) ForEachCell(fn func(key string, c *Cell)) {
	for key, c := range ix.cells {
		fn(key, c)
	}
}

// SortedCells returns the occupied cells sorted by key (equivalently, by
// coordinate vector — the encoding is order-preserving). The slice is
// freshly allocated but the cells alias the index; treat them as
// read-only. Note that PairWalk does NOT use this order: its walk order
// is an unsorted map pass (cheaper per construction) and consumers
// normalize downstream. SortedCells is for callers that need a
// reproducible cell enumeration outright (deterministic reports,
// cross-run diffing).
func (ix *Index) SortedCells() []*Cell {
	keys := make([]string, 0, len(ix.cells))
	for k := range ix.cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Cell, len(keys))
	for i, k := range keys {
		out[i] = ix.cells[k]
	}
	return out
}

// PairWalk enumerates the unordered pairs of occupied cells within a
// Chebyshev reach of each other, in a form that shards across workers:
// every pair {a, b} — and every single occupied cell, as the pair
// (c, c) — is reported exactly once, to exactly one shard. Construction
// materializes one walk order and the positive offset fan once; the
// per-shard walks are read-only and safe to run concurrently. The walk
// order is fixed for the walk's lifetime but otherwise unspecified —
// consumers needing order-independent results must normalize
// downstream (the motion CSR build sorts every neighbour row), which
// keeps walk construction a single map pass with no sort.
type PairWalk struct {
	ix    *Index
	reach int
	cells []*Cell
	// index maps a cell key to the cell's position in cells, so a
	// neighbour probe is a single map lookup. It shares the index's key
	// strings (no re-encoding).
	index   map[string]int
	offsets [][]int
}

// NewPairWalk prepares a cell-pair walk at the given reach.
func (ix *Index) NewPairWalk(reach int) *PairWalk {
	w := &PairWalk{
		ix:      ix,
		reach:   reach,
		cells:   make([]*Cell, 0, len(ix.cells)),
		index:   make(map[string]int, len(ix.cells)),
		offsets: PositiveOffsets(ix.state.Dim(), reach),
	}
	for k, c := range ix.cells {
		w.index[k] = len(w.cells)
		w.cells = append(w.cells, c)
	}
	return w
}

// Cells returns the occupied cells in the walk's fixed order. Pair
// callbacks identify cells by index into this slice.
func (w *PairWalk) Cells() []*Cell { return w.cells }

// Shard calls fn(a, b) — indices into Cells() — for every cell pair owned
// by shard: (c, c) for each owned cell, then (c, nb) for each occupied
// cell nb within reach of c whose coordinate offset from c is
// lexicographically positive. A cell is owned by shard i of n when its
// walk-order index ≡ i (mod n), so the shards partition the pairs: the
// union over shards 0..nshards-1 covers every unordered pair exactly
// once, regardless of nshards. Concurrent Shard calls are safe.
func (w *PairWalk) Shard(shard, nshards int, fn func(a, b int)) {
	dim := w.ix.state.Dim()
	coords := make([]int, dim)
	var buf []byte
	for ci := shard; ci < len(w.cells); ci += nshards {
		c := w.cells[ci]
		fn(ci, ci)
		for _, off := range w.offsets {
			ok := true
			for i := 0; i < dim; i++ {
				x := c.Coords[i] + off[i]
				if x < 0 || x >= w.ix.Res {
					ok = false
					break
				}
				coords[i] = x
			}
			if !ok {
				continue
			}
			buf = AppendKey(buf[:0], coords)
			nb, ok := w.index[string(buf)]
			if !ok {
				continue
			}
			fn(ci, nb)
		}
	}
}

// ForEachNeighbor calls fn for every occupied cell at Chebyshev cell
// distance <= reach of the given center coordinates (including the
// center cell itself when occupied). It walks the (2*reach+1)^d
// neighbour keys directly, skipping coordinates outside [0, Res).
func (ix *Index) ForEachNeighbor(center []int, reach int, fn func(c *Cell)) {
	dim := len(center)
	offsets := make([]int, dim)
	coords := make([]int, dim)
	buf := make([]byte, 0, 8*dim)
	for i := range offsets {
		offsets[i] = -reach
	}
	for {
		ok := true
		for i := 0; i < dim; i++ {
			c := center[i] + offsets[i]
			if c < 0 || c >= ix.Res {
				ok = false
				break
			}
			coords[i] = c
		}
		if ok {
			buf = AppendKey(buf[:0], coords)
			if c, found := ix.cells[string(buf)]; found {
				fn(c)
			}
		}
		// Next offset vector in [-reach, reach]^dim.
		i := 0
		for ; i < dim; i++ {
			offsets[i]++
			if offsets[i] <= reach {
				break
			}
			offsets[i] = -reach
		}
		if i == dim {
			break
		}
	}
}

// Within appends to dst the indexed ids at uniform-norm distance
// <= radius of position p and returns the extended slice. Ids come out
// grouped by cell in walk order, not globally sorted (the occupied-cell
// fallback below sorts its segment so both paths are deterministic).
// The candidate walk spans ceil(radius/Side)+1 cells per axis: the
// extra cell keeps the walk exhaustive under floating point, where a
// quotient within an ulp of a cell boundary can shift a computed cell
// by one. When the (2*reach+1)^d neighbour fan-out exceeds the occupied
// cells — high dimension, where the offset odometer would dwarf any
// realistic index — the query scans the occupied cells instead.
func (ix *Index) Within(p space.Point, radius float64, dst []int) []int {
	reach := int(math.Ceil(radius/ix.Side)) + 1
	dim := ix.state.Dim()
	// walkFloor keeps low-dimension queries on the walk path (stable
	// candidate order) even over sparsely occupied indexes; only the
	// exponential high-dimension fan-outs fall through to the scan.
	walkFloor := 1024
	if len(ix.cells) > walkFloor {
		walkFloor = len(ix.cells)
	}
	if NeighborCells(dim, reach, walkFloor) > walkFloor {
		start := len(dst)
		for _, c := range ix.cells {
			for _, id := range c.Ids {
				if space.Dist(ix.state.At(id), p) <= radius {
					dst = append(dst, id)
				}
			}
		}
		sort.Ints(dst[start:]) // map order is random; sort for determinism
		return dst
	}
	var coords [space.MaxDim]int
	center := ix.Coords(p, coords[:0])
	ix.ForEachNeighbor(center, reach, func(c *Cell) {
		for _, id := range c.Ids {
			if space.Dist(ix.state.At(id), p) <= radius {
				dst = append(dst, id)
			}
		}
	})
	return dst
}
