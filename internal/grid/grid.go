// Package grid provides the shared spatial cell index every
// neighbourhood computation in the module derives from the consistency
// impact radius r: uniform cells of side 2r over the QoS hypercube
// E = [0,1]^d.
//
// With the uniform norm, two positions at distance <= 2r land in the
// same or in axis-adjacent cells, so any 2r query only has to inspect
// the 3^d cells around the query cell and any 4r view the 5^d cells —
// candidates are gathered per cell and re-checked with exact distances,
// which makes the index a pure pruning device: it can only add
// candidates, never lose one. Both motion-graph construction
// (motion.NewGraph) and the distributed directory (internal/dist) build
// on the same geometry, so their cell keys — and therefore the shard
// assignment the DistCost tables bill — agree by construction.
//
// The index is map-free and slab-allocated: cell coordinates are packed
// into fixed-width keys, the devices are sorted by key, and the whole
// index materializes as one key-sorted []Cell slab plus one shared id
// arena, one coordinate slab and one packed-key slab — a handful of
// allocations however many cells a million-device window occupies.
// Lookups are binary searches over the packed keys; the key-sorted cell
// order makes every walk deterministic by construction.
package grid

import (
	"encoding/binary"
	"math"
	"math/bits"
	"runtime"
	"slices"
	"sync"

	"anomalia/internal/space"
)

// Params fixes the cell geometry every consumer derives from the
// consistency impact radius: the cell side and the number of cells per
// axis over [0,1].
type Params struct {
	// Side is the cell side, normally 2r (1 when r = 0, a single cell
	// spanning E).
	Side float64
	// Res is the number of cells per axis: ceil(1/Side), at least 1.
	Res int
}

// ForRadius returns the canonical geometry for radius r: cells of side
// 2r, or one cell spanning E when r = 0 (where only exactly-coincident
// devices are within distance 2r anyway).
func ForRadius(r float64) Params { return ForSide(2 * r) }

// ForSide returns the geometry for an explicit cell side. Degenerate
// sides (<= 0 or NaN) collapse to one cell spanning E, which is always
// correct — queries re-check exact distances — just unpruned.
func ForSide(side float64) Params {
	if !(side > 0) {
		side = 1
	}
	res := int(math.Ceil(1 / side))
	if res < 1 {
		res = 1
	}
	return Params{Side: side, Res: res}
}

// Coords appends the integer cell coordinates of position p to dst and
// returns the extended slice. Coordinates are clamped into [0, Res-1]
// per axis; clamping is monotone, so it only ever merges boundary
// cells — neighbourhood queries gain candidates, never lose one, and
// the caller's exact distance filter discards the extras.
func (g Params) Coords(p space.Point, dst []int) []int {
	for _, x := range p {
		c := int(x / g.Side)
		if c < 0 {
			c = 0
		}
		if c >= g.Res {
			c = g.Res - 1
		}
		dst = append(dst, c)
	}
	return dst
}

// AppendKey appends the collision-free encoding of a coordinate vector
// (8 bytes big-endian per axis, covering the full int range so even
// degenerate radii with Res > 2^32 cannot alias cells) to dst and
// returns the extended slice. Keys of equal-dimension vectors compare
// lexicographically exactly like the vectors themselves. The same
// encoding serves sorted device-id sets (dist.DecideAll's view keys);
// the Index itself stores tighter packed keys (see keyCodec) with the
// same ordering property.
func AppendKey(dst []byte, coords []int) []byte {
	for _, x := range coords {
		dst = binary.BigEndian.AppendUint64(dst, uint64(x))
	}
	return dst
}

// Key returns the collision-free string encoding of a coordinate
// vector. Use AppendKey with map[string(buf)] lookups on hot paths to
// avoid the allocation.
func Key(coords []int) string { return string(AppendKey(nil, coords)) }

// NeighborCells returns (2*reach+1)^dim — the cells a reach-wide
// neighbourhood walk visits — saturating at cap+1 so high dimensions
// cannot overflow. Callers compare the result against their own
// population threshold to decide between the cell walk and a scan.
func NeighborCells(dim, reach, cap int) int {
	cells := 1
	for i := 0; i < dim; i++ {
		if cells > cap {
			return cap + 1
		}
		cells *= 2*reach + 1
	}
	return cells
}

// offsetFan enumerates every coordinate offset in [-reach, reach]^dim in
// odometer order (axis 0 fastest), with all vectors backed by a single
// flat array — 2 allocations for the whole fan. The fan is the shared
// construction behind PositiveOffsets and ForEachNeighbor; callers must
// bound (2*reach+1)^dim (NeighborCells) before materializing it.
func offsetFan(dim, reach int) [][]int {
	span := 2*reach + 1
	total := 1
	for i := 0; i < dim; i++ {
		total *= span
	}
	// flat is sized exactly, so the appends below never reallocate and
	// the returned views stay valid.
	flat := make([]int, 0, total*dim)
	out := make([][]int, 0, total)
	cur := make([]int, dim)
	for i := range cur {
		cur[i] = -reach
	}
	for {
		flat = append(flat, cur...)
		out = append(out, flat[len(flat)-dim:len(flat):len(flat)])
		i := 0
		for ; i < dim; i++ {
			cur[i]++
			if cur[i] <= reach {
				break
			}
			cur[i] = -reach
		}
		if i == dim {
			break
		}
	}
	return out
}

// PositiveOffsets enumerates the coordinate offsets in [-reach, reach]^dim
// whose first non-zero component is positive — exactly one of {o, -o} for
// every non-zero offset, so walking them from every cell visits each
// unordered cell pair once. It is the offset set of PairWalk, exported for
// callers that roll their own walk. The vectors are views into one flat
// backing array (the shared fan of offsetFan), not per-offset allocations.
func PositiveOffsets(dim, reach int) [][]int {
	fan := offsetFan(dim, reach)
	out := make([][]int, 0, (len(fan)-1)/2)
	for _, off := range fan {
		for _, x := range off {
			if x != 0 {
				if x > 0 {
					out = append(out, off)
				}
				break
			}
		}
	}
	return out
}

// Chebyshev returns the Chebyshev (max-axis) distance between two cell
// coordinate vectors.
func Chebyshev(a, b []int) int {
	max := 0
	for i := range a {
		delta := a[i] - b[i]
		if delta < 0 {
			delta = -delta
		}
		if delta > max {
			max = delta
		}
	}
	return max
}

// keyCodec packs integer cell coordinate vectors into fixed-width words.
// When every axis fits, the whole vector packs into a single uint64
// (axis 0 in the most significant bits); otherwise each axis takes one
// full word. In both layouts, lexicographic comparison of the packed
// words equals lexicographic comparison of the coordinate vectors —
// the property the key-sorted cell slab and its binary searches rely on
// (fuzz-tested by FuzzPackedKeyOrder).
type keyCodec struct {
	dim    int
	stride int  // packed words per key
	shift  uint // bits per axis when stride == 1; 0 in the word-per-axis layout
}

func newKeyCodec(dim, res int) keyCodec {
	b := uint(bits.Len64(uint64(res - 1)))
	if b == 0 {
		b = 1
	}
	if res >= 1 && dim >= 1 && int(b)*dim <= 64 {
		return keyCodec{dim: dim, stride: 1, shift: b}
	}
	return keyCodec{dim: dim, stride: dim}
}

// appendKey appends the packed key of coords (which must hold dim
// in-range, non-negative coordinates) to dst and returns the extension.
func (kc keyCodec) appendKey(dst []uint64, coords []int) []uint64 {
	if kc.stride == 1 {
		k := uint64(0)
		for _, c := range coords {
			k = k<<kc.shift | uint64(c)
		}
		return append(dst, k)
	}
	for _, c := range coords {
		dst = append(dst, uint64(c))
	}
	return dst
}

// Cell is one occupied cell of an Index: its integer coordinates and
// the indexed device ids whose position falls inside it, in the order
// they were indexed (ascending when the ids were). Both slices are
// views into the index's shared slabs; treat them as read-only.
type Cell struct {
	Coords []int
	Ids    []int
}

// Index buckets a subset of a state's devices by cell, as a key-sorted
// slab of cells over shared arenas. It is read-only after New returns
// and therefore safe for concurrent readers.
type Index struct {
	Params
	state *space.State
	dim   int
	kc    keyCodec
	// keys holds kc.stride packed words per cell, ascending — the whole
	// lookup structure. cells, coords and idArena are the three slabs
	// every Cell views into.
	keys    []uint64
	cells   []Cell
	coords  []int
	idArena []int
	// ids is the indexed id slice as given (shared with the caller,
	// read-only) and idCell the cell position of each of its entries —
	// filled for free during the build and the membership record Update
	// diffs against, so the delta path never has to re-derive old cells
	// from positions (the old state may already be recycled).
	ids       []int
	idCell    []int32
	idsSorted bool
	// arenaWaste counts dead id-arena entries accumulated by fastPatch
	// updates (churned cells abandon their old lists in place); when it
	// outgrows the live id count, the next Update compacts.
	arenaWaste int
}

// New indexes the given device ids (typically the abnormal set, sorted)
// by the cell of their position in state. Construction is a handful of
// allocations regardless of the occupied-cell count: keys are computed
// in parallel shards, sorted, and the slabs filled in one pass.
func New(state *space.State, ids []int, p Params) *Index {
	dim := state.Dim()
	ix := &Index{Params: p, state: state, dim: dim, kc: newKeyCodec(dim, p.Res)}
	ix.ids = ids
	ix.idsSorted = sortedUnique(ids)
	m := len(ids)
	if m == 0 {
		return ix
	}
	if ix.kc.stride == 1 && ix.kc.shift*uint(dim) <= 32 && m < 1<<31 {
		ix.buildPacked32(ids)
	} else {
		ix.buildGeneral(ids)
	}
	return ix
}

// alloc sizes the slabs for n occupied cells over m indexed ids.
func (ix *Index) alloc(n, m int) {
	ix.keys = make([]uint64, 0, n*ix.kc.stride)
	ix.cells = make([]Cell, n)
	ix.coords = make([]int, 0, n*ix.dim)
	ix.idArena = make([]int, m)
	ix.idCell = make([]int32, m)
}

// sortedUnique reports whether ids is strictly ascending — the canonical
// input every production caller indexes, and the precondition of the
// sorted-merge delta path (Update).
func sortedUnique(ids []int) bool {
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			return false
		}
	}
	return true
}

// openCell appends cell ci's key and coordinates to the slabs, deriving
// the coordinates from the position of device id (any member works: all
// members of a cell compute the same coordinate vector by definition).
func (ix *Index) openCell(ci, id int, key []uint64) {
	ix.keys = append(ix.keys, key...)
	start := len(ix.coords)
	ix.coords = ix.Coords(ix.state.At(id), ix.coords)
	ix.cells[ci].Coords = ix.coords[start:len(ix.coords):len(ix.coords)]
}

// buildPacked32 is the build for the common geometry where a whole key
// packs into 32 bits (e.g. any 2-d index up to 65k cells per axis): key
// and device position share one composite word, so grouping devices
// into cells is a single word sort — no comparator, no permutation
// array.
func (ix *Index) buildPacked32(ids []int) {
	m := len(ids)
	com := make([]uint64, m)
	parallelRanges(m, func(lo, hi int) {
		var cbuf [space.MaxDim]int
		var kbuf [1]uint64
		for i := lo; i < hi; i++ {
			coords := ix.Coords(ix.state.At(ids[i]), cbuf[:0])
			key := ix.kc.appendKey(kbuf[:0], coords)
			com[i] = key[0]<<32 | uint64(uint32(i))
		}
	})
	parallelSortUint64(com)
	n := 0
	for s, c := range com {
		if s == 0 || c>>32 != com[s-1]>>32 {
			n++
		}
	}
	ix.alloc(n, m)
	ci, start := -1, 0
	var kbuf [1]uint64
	for s, c := range com {
		id := ids[uint32(c)]
		if s == 0 || c>>32 != com[s-1]>>32 {
			if ci >= 0 {
				ix.cells[ci].Ids = ix.idArena[start:s:s]
			}
			ci++
			start = s
			kbuf[0] = c >> 32
			ix.openCell(ci, id, kbuf[:])
		}
		ix.idArena[s] = id
		ix.idCell[uint32(c)] = int32(ci)
	}
	ix.cells[ci].Ids = ix.idArena[start:m:m]
}

// buildGeneral covers every other geometry (wide keys, huge resolutions,
// populations beyond 2^31): devices are permuted into key order — ties
// broken by input position, preserving per-cell id order — and the
// slabs filled from the permutation.
func (ix *Index) buildGeneral(ids []int) {
	m := len(ids)
	stride := ix.kc.stride
	devKeys := make([]uint64, m*stride)
	parallelRanges(m, func(lo, hi int) {
		var cbuf [space.MaxDim]int
		for i := lo; i < hi; i++ {
			coords := ix.Coords(ix.state.At(ids[i]), cbuf[:0])
			ix.kc.appendKey(devKeys[i*stride:i*stride:(i+1)*stride], coords)
		}
	})
	keyAt := func(i int32) []uint64 {
		return devKeys[int(i)*stride : (int(i)+1)*stride]
	}
	order := make([]int32, m)
	for i := range order {
		order[i] = int32(i)
	}
	slices.SortFunc(order, func(a, b int32) int {
		if c := slices.Compare(keyAt(a), keyAt(b)); c != 0 {
			return c
		}
		return int(a - b)
	})
	n := 0
	for s := range order {
		if s == 0 || !slices.Equal(keyAt(order[s]), keyAt(order[s-1])) {
			n++
		}
	}
	ix.alloc(n, m)
	ci, start := -1, 0
	for s, oi := range order {
		id := ids[oi]
		if s == 0 || !slices.Equal(keyAt(oi), keyAt(order[s-1])) {
			if ci >= 0 {
				ix.cells[ci].Ids = ix.idArena[start:s:s]
			}
			ci++
			start = s
			ix.openCell(ci, id, keyAt(oi))
		}
		ix.idArena[s] = id
		ix.idCell[oi] = int32(ci)
	}
	ix.cells[ci].Ids = ix.idArena[start:m:m]
}

// parallelRanges shards [0, m) across GOMAXPROCS workers; small inputs
// run inline so per-window index builds at paper scale spawn nothing.
func parallelRanges(m int, fn func(lo, hi int)) {
	const minPerWorker = 1 << 14
	workers := runtime.GOMAXPROCS(0)
	if w := m / minPerWorker; w < workers {
		workers = w
	}
	if workers <= 1 {
		fn(0, m)
		return
	}
	chunk := (m + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < m; lo += chunk {
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// State returns the indexed state.
func (ix *Index) State() *space.State { return ix.state }

// Ids returns the indexed ids in input order. The slice is shared with
// the caller that built the index — read-only for both sides.
func (ix *Index) Ids() []int { return ix.ids }

// CellOf returns the position (into CellAt / SortedCells order) of the
// occupied cell holding the i-th indexed id — the inverse of the cell
// membership lists, recorded for free during the build.
func (ix *Index) CellOf(i int) int { return int(ix.idCell[i]) }

// CellIndexes returns the whole id-position → cell-position record
// (aligned with Ids). The slab is the index's own storage — free to
// obtain, read-only to use.
func (ix *Index) CellIndexes() []int32 { return ix.idCell }

// Cells returns the number of occupied cells.
func (ix *Index) Cells() int { return len(ix.cells) }

// CellAt returns the i-th occupied cell in key-sorted order. The cell
// aliases the index; treat it as read-only.
func (ix *Index) CellAt(i int) *Cell { return &ix.cells[i] }

// findKey returns the position of the cell with the given packed key,
// or -1 — a binary search over the key slab.
func (ix *Index) findKey(key []uint64) int {
	if ix.kc.stride == 1 {
		if i, ok := slices.BinarySearch(ix.keys, key[0]); ok {
			return i
		}
		return -1
	}
	stride := ix.kc.stride
	lo, hi := 0, len(ix.cells)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if slices.Compare(ix.keys[mid*stride:(mid+1)*stride], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ix.cells) && slices.Compare(ix.keys[lo*stride:(lo+1)*stride], key) == 0 {
		return lo
	}
	return -1
}

// Find returns the position (into CellAt / SortedCells order) of the
// occupied cell with the given coordinates, or -1. Coordinates outside
// [0, Res) per axis are never occupied.
func (ix *Index) Find(coords []int) int {
	if len(coords) != ix.dim || len(ix.cells) == 0 {
		return -1
	}
	for _, c := range coords {
		if c < 0 || c >= ix.Res {
			return -1
		}
	}
	var kbuf [space.MaxDim]uint64
	return ix.findKey(ix.kc.appendKey(kbuf[:0], coords))
}

// cellByEncoded resolves the legacy 8-bytes-per-axis encoding (AppendKey)
// to a cell via Find.
func (ix *Index) cellByEncoded(key []byte) *Cell {
	if ix.dim == 0 || len(key) != 8*ix.dim {
		return nil
	}
	var cbuf [space.MaxDim]int
	coords := cbuf[:ix.dim]
	for i := range coords {
		v := binary.BigEndian.Uint64(key[i*8:])
		if v >= 1<<63 {
			return nil
		}
		coords[i] = int(v)
	}
	if i := ix.Find(coords); i >= 0 {
		return &ix.cells[i]
	}
	return nil
}

// Cell returns the occupied cell with the given key (the Key encoding of
// its coordinate vector), or nil — a binary search over the packed-key
// slab. The cell aliases the index; treat it as read-only.
func (ix *Index) Cell(key string) *Cell { return ix.cellByEncoded([]byte(key)) }

// CellBytes is Cell for a key held in a byte buffer (as produced by
// AppendKey); the probe does not allocate.
func (ix *Index) CellBytes(key []byte) *Cell { return ix.cellByEncoded(key) }

// ForEachCell calls fn for every occupied cell in key-sorted order.
// Cells alias the index; treat them as read-only.
func (ix *Index) ForEachCell(fn func(c *Cell)) {
	for i := range ix.cells {
		fn(&ix.cells[i])
	}
}

// SortedCells returns the occupied cells sorted by key (equivalently, by
// coordinate vector — the packed encoding is order-preserving). The
// slab is the index's own storage — free to obtain, read-only to use.
// PairWalk shares this order, so walks and reports enumerate cells
// identically.
func (ix *Index) SortedCells() []Cell { return ix.cells }

// PairWalk enumerates the unordered pairs of occupied cells within a
// Chebyshev reach of each other, in a form that shards across workers:
// every pair {a, b} — and every single occupied cell, as the pair
// (c, c) — is reported exactly once, to exactly one shard. The walk
// order is the index's key-sorted cell order — deterministic by
// construction, with no side lookup state: neighbour probes are binary
// searches over the shared packed-key slab. The per-shard walks are
// read-only and safe to run concurrently.
type PairWalk struct {
	ix      *Index
	reach   int
	offsets [][]int
}

// NewPairWalk prepares a cell-pair walk at the given reach.
func (ix *Index) NewPairWalk(reach int) *PairWalk {
	return &PairWalk{
		ix:      ix,
		reach:   reach,
		offsets: PositiveOffsets(ix.dim, reach),
	}
}

// Cells returns the occupied cells in the walk's order — the index's
// key-sorted slab. Pair callbacks identify cells by index into this
// slice.
func (w *PairWalk) Cells() []Cell { return w.ix.cells }

// Shard calls fn(a, b) — indices into Cells() — for every cell pair owned
// by shard: (c, c) for each owned cell, then (c, nb) for each occupied
// cell nb within reach of c whose coordinate offset from c is
// lexicographically positive. A cell is owned by shard i of n when its
// key-sorted index ≡ i (mod n), so the shards partition the pairs: the
// union over shards 0..nshards-1 covers every unordered pair exactly
// once, regardless of nshards. Concurrent Shard calls are safe.
func (w *PairWalk) Shard(shard, nshards int, fn func(a, b int)) {
	ix := w.ix
	dim := ix.dim
	var cbuf [space.MaxDim]int
	var kbuf [space.MaxDim]uint64
	coords := cbuf[:dim]
	for ci := shard; ci < len(ix.cells); ci += nshards {
		c := &ix.cells[ci]
		fn(ci, ci)
		for _, off := range w.offsets {
			ok := true
			for i := 0; i < dim; i++ {
				x := c.Coords[i] + off[i]
				if x < 0 || x >= ix.Res {
					ok = false
					break
				}
				coords[i] = x
			}
			if !ok {
				continue
			}
			if nb := ix.findKey(ix.kc.appendKey(kbuf[:0], coords)); nb >= 0 {
				fn(ci, nb)
			}
		}
	}
}

// NeighborWalk amortizes the offset fan of repeated neighbourhood
// probes: build it once per reach and ForEach probes any number of
// centers without re-materializing the (2*reach+1)^d offsets. The walk
// is read-only and safe for concurrent ForEach calls.
type NeighborWalk struct {
	ix  *Index
	fan [][]int
}

// NewNeighborWalk prepares a reusable neighbourhood walk at the given
// reach. Callers must bound the fan (NeighborCells) first, exactly like
// ForEachNeighbor.
func (ix *Index) NewNeighborWalk(reach int) *NeighborWalk {
	return &NeighborWalk{ix: ix, fan: offsetFan(ix.dim, reach)}
}

// ForEach calls fn — with the cell's key-sorted index and the cell — for
// every occupied cell at Chebyshev cell distance <= reach of the given
// center coordinates (including the center cell itself when occupied),
// in the fan's odometer order.
func (w *NeighborWalk) ForEach(center []int, fn func(i int, c *Cell)) {
	w.ix.forEachNeighborFan(center, w.fan, fn)
}

// ForEachNeighbor calls fn — with the cell's key-sorted index and the
// cell — for every occupied cell at Chebyshev cell distance <= reach of
// the given center coordinates (including the center cell itself when
// occupied), in the fan's odometer order. It probes the (2*reach+1)^d
// neighbour keys directly, skipping coordinates outside [0, Res);
// callers must bound the fan (NeighborCells) first. Repeated probes at
// one reach should share a NeighborWalk instead, which materializes the
// fan once.
func (ix *Index) ForEachNeighbor(center []int, reach int, fn func(i int, c *Cell)) {
	ix.forEachNeighborFan(center, offsetFan(ix.dim, reach), fn)
}

func (ix *Index) forEachNeighborFan(center []int, fan [][]int, fn func(i int, c *Cell)) {
	dim := ix.dim
	var cbuf [space.MaxDim]int
	var kbuf [space.MaxDim]uint64
	coords := cbuf[:dim]
	for _, off := range fan {
		ok := true
		for i := 0; i < dim; i++ {
			c := center[i] + off[i]
			if c < 0 || c >= ix.Res {
				ok = false
				break
			}
			coords[i] = c
		}
		if !ok {
			continue
		}
		if i := ix.findKey(ix.kc.appendKey(kbuf[:0], coords)); i >= 0 {
			fn(i, &ix.cells[i])
		}
	}
}

// Within appends to dst the indexed ids at uniform-norm distance
// <= radius of position p and returns the extended slice. Ids come out
// grouped by cell in walk order, not globally sorted (the occupied-cell
// fallback below sorts its segment so both paths are deterministic).
// The candidate walk spans ceil(radius/Side)+1 cells per axis: the
// extra cell keeps the walk exhaustive under floating point, where a
// quotient within an ulp of a cell boundary can shift a computed cell
// by one. When the (2*reach+1)^d neighbour fan-out exceeds the occupied
// cells — high dimension, where the offset odometer would dwarf any
// realistic index — the query scans the occupied cells instead.
func (ix *Index) Within(p space.Point, radius float64, dst []int) []int {
	reach := int(math.Ceil(radius/ix.Side)) + 1
	dim := ix.dim
	// walkFloor keeps low-dimension queries on the walk path (stable
	// candidate order) even over sparsely occupied indexes; only the
	// exponential high-dimension fan-outs fall through to the scan.
	walkFloor := 1024
	if len(ix.cells) > walkFloor {
		walkFloor = len(ix.cells)
	}
	if NeighborCells(dim, reach, walkFloor) > walkFloor {
		start := len(dst)
		for ci := range ix.cells {
			for _, id := range ix.cells[ci].Ids {
				if space.Dist(ix.state.At(id), p) <= radius {
					dst = append(dst, id)
				}
			}
		}
		slices.Sort(dst[start:]) // cell order groups ids; sort the segment by id
		return dst
	}
	var cbuf [space.MaxDim]int
	center := ix.Coords(p, cbuf[:0])
	ix.ForEachNeighbor(center, reach, func(_ int, c *Cell) {
		for _, id := range c.Ids {
			if space.Dist(ix.state.At(id), p) <= radius {
				dst = append(dst, id)
			}
		}
	})
	return dst
}
