package grid

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"testing"

	"anomalia/internal/space"
	"anomalia/internal/stats"
)

// This file pins the slab-allocated flat index against a retained copy
// of the map-based index it replaced: the oracle below is the old
// map[string]*Cell construction, kept verbatim as the reference
// semantics for cells, ids, lookups, Within and PairWalk pair sets.

// mapCell mirrors the retired map-based cell.
type mapCell struct {
	coords []int
	ids    []int
}

// mapIndex is the retired map-based index build: one map entry, cell
// struct and coords slice per occupied cell, ids appended in indexing
// order.
func mapIndex(state *space.State, ids []int, p Params) map[string]*mapCell {
	cells := make(map[string]*mapCell, len(ids))
	var coords []int
	var buf []byte
	for _, id := range ids {
		coords = p.Coords(state.At(id), coords[:0])
		buf = AppendKey(buf[:0], coords)
		c, ok := cells[string(buf)]
		if !ok {
			c = &mapCell{coords: append([]int(nil), coords...)}
			cells[string(buf)] = c
		}
		c.ids = append(c.ids, id)
	}
	return cells
}

// mapWithin is the oracle for Within over the map index: exact distance
// filter over every indexed id, sorted.
func mapWithin(state *space.State, cells map[string]*mapCell, q space.Point, radius float64) []int {
	var out []int
	for _, c := range cells {
		for _, id := range c.ids {
			if space.Dist(state.At(id), q) <= radius {
				out = append(out, id)
			}
		}
	}
	sort.Ints(out)
	return out
}

// flatTrial is one randomized index configuration shared by the parity
// tests below.
type flatTrial struct {
	state *space.State
	ids   []int
	prm   Params
}

func flatTrials(t *testing.T, rng *stats.RNG, trials int) []flatTrial {
	t.Helper()
	out := make([]flatTrial, 0, trials)
	for trial := 0; trial < trials; trial++ {
		n := 30 + rng.Intn(400)
		d := 1 + rng.Intn(3)
		if trial%5 == 4 {
			d = 1 + rng.Intn(space.MaxDim) // include high dimensions
		}
		st, err := space.NewState(n, d)
		if err != nil {
			t.Fatal(err)
		}
		st.Uniform(rng.Float64)
		// Snap some devices to cell boundaries and make some coincident.
		prm := ForSide([]float64{0.02, 0.06, 0.13, 0.31, 1}[trial%5])
		for j := 0; j < n/4; j++ {
			pt := make(space.Point, d)
			for i := range pt {
				pt[i] = math.Min(1, float64(rng.Intn(prm.Res+1))*prm.Side)
			}
			if err := st.Set(j, pt); err != nil {
				t.Fatal(err)
			}
		}
		for j := 0; j+1 < n; j += 7 {
			if err := st.Set(j+1, st.At(j)); err != nil {
				t.Fatal(err)
			}
		}
		// Index a subset (sorted, like every production caller).
		ids := make([]int, 0, n)
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.8 {
				ids = append(ids, j)
			}
		}
		out = append(out, flatTrial{state: st, ids: ids, prm: prm})
	}
	return out
}

// TestFlatMatchesMapCells: the flat index must hold exactly the oracle's
// cells — same keys, same coordinates, same id lists — in key-sorted
// slab order, and resolve every oracle key through Cell/CellBytes/Find.
func TestFlatMatchesMapCells(t *testing.T) {
	t.Parallel()

	rng := stats.NewRNG(20260729)
	for ti, tr := range flatTrials(t, rng, 40) {
		ix := New(tr.state, tr.ids, tr.prm)
		oracle := mapIndex(tr.state, tr.ids, tr.prm)
		label := fmt.Sprintf("trial %d (n=%d d=%d side=%v)", ti, tr.state.Len(), tr.state.Dim(), tr.prm.Side)
		if ix.Cells() != len(oracle) {
			t.Fatalf("%s: %d cells, want %d", label, ix.Cells(), len(oracle))
		}
		prevKey := ""
		for ci := 0; ci < ix.Cells(); ci++ {
			c := ix.CellAt(ci)
			key := Key(c.Coords)
			if ci > 0 && key <= prevKey {
				t.Fatalf("%s: cells %d and %d out of key order", label, ci-1, ci)
			}
			prevKey = key
			want, ok := oracle[key]
			if !ok {
				t.Fatalf("%s: flat cell %v not in oracle", label, c.Coords)
			}
			if !slices.Equal(c.Coords, want.coords) {
				t.Fatalf("%s: cell coords %v, want %v", label, c.Coords, want.coords)
			}
			if !slices.Equal(c.Ids, want.ids) {
				t.Fatalf("%s: cell %v ids %v, want %v", label, c.Coords, c.Ids, want.ids)
			}
			if got := ix.Cell(key); got != c {
				t.Fatalf("%s: Cell(key) != CellAt(%d)", label, ci)
			}
			if got := ix.CellBytes(AppendKey(nil, c.Coords)); got != c {
				t.Fatalf("%s: CellBytes != CellAt(%d)", label, ci)
			}
			if got := ix.Find(c.Coords); got != ci {
				t.Fatalf("%s: Find(%v) = %d, want %d", label, c.Coords, got, ci)
			}
		}
		// Probes that must miss: perturbed coords, out-of-range coords,
		// malformed keys.
		for ci := 0; ci < ix.Cells(); ci += 3 {
			probe := slices.Clone(ix.CellAt(ci).Coords)
			probe[0] += 1
			if i := ix.Find(probe); i >= 0 {
				if Key(ix.CellAt(i).Coords) != Key(probe) {
					t.Fatalf("%s: Find(%v) resolved wrong cell %v", label, probe, ix.CellAt(i).Coords)
				}
				if _, ok := oracle[Key(probe)]; !ok {
					t.Fatalf("%s: Find(%v) hit a cell the oracle lacks", label, probe)
				}
			} else if _, ok := oracle[Key(probe)]; ok {
				t.Fatalf("%s: Find(%v) missed an occupied cell", label, probe)
			}
		}
		if ix.Find([]int{-1}) != -1 || ix.Cell("short") != nil {
			t.Fatalf("%s: malformed probes must miss", label)
		}
	}
}

// TestFlatMatchesMapWithin: Within answers (sorted) must equal the
// oracle's exact-distance filter, across radii spanning the walk and
// scan paths.
func TestFlatMatchesMapWithin(t *testing.T) {
	t.Parallel()

	rng := stats.NewRNG(31337)
	for ti, tr := range flatTrials(t, rng, 25) {
		ix := New(tr.state, tr.ids, tr.prm)
		oracle := mapIndex(tr.state, tr.ids, tr.prm)
		for trial := 0; trial < 40; trial++ {
			q := tr.state.At(rng.Intn(tr.state.Len()))
			radius := tr.prm.Side * []float64{0.5, 1, 2}[trial%3]
			got := ix.Within(q, radius, nil)
			slices.Sort(got)
			want := mapWithin(tr.state, oracle, q, radius)
			if !slices.Equal(got, want) {
				t.Fatalf("trial %d/%d: Within = %v, oracle = %v", ti, trial, got, want)
			}
		}
	}
}

// TestFlatMatchesMapPairWalk: the pair sets reported by the flat walk —
// identified by cell coordinates, across shard counts — must equal the
// pair sets over the oracle's cells.
func TestFlatMatchesMapPairWalk(t *testing.T) {
	t.Parallel()

	rng := stats.NewRNG(777)
	for ti, tr := range flatTrials(t, rng, 15) {
		if NeighborCells(tr.state.Dim(), 2, 1<<20) > 1<<20 {
			continue // walks are guarded off at explosive fan-outs
		}
		ix := New(tr.state, tr.ids, tr.prm)
		oracle := mapIndex(tr.state, tr.ids, tr.prm)
		for _, reach := range []int{1, 2} {
			// Oracle pair set over the map cells, keyed by coordinate keys.
			want := map[[2]string]bool{}
			for ka, a := range oracle {
				want[[2]string{ka, ka}] = true
				for kb, b := range oracle {
					if ka < kb && Chebyshev(a.coords, b.coords) <= reach {
						want[[2]string{ka, kb}] = true
					}
				}
			}
			for _, nshards := range []int{1, 3, 5} {
				walk := ix.NewPairWalk(reach)
				cells := walk.Cells()
				got := map[[2]string]bool{}
				for s := 0; s < nshards; s++ {
					walk.Shard(s, nshards, func(a, b int) {
						ka, kb := Key(cells[a].Coords), Key(cells[b].Coords)
						if ka > kb {
							ka, kb = kb, ka
						}
						if got[[2]string{ka, kb}] {
							t.Fatalf("trial %d reach=%d nshards=%d: duplicate pair", ti, reach, nshards)
						}
						got[[2]string{ka, kb}] = true
					})
				}
				if len(got) != len(want) {
					t.Fatalf("trial %d reach=%d nshards=%d: %d pairs, want %d", ti, reach, nshards, len(got), len(want))
				}
				for pair := range got {
					if !want[pair] {
						t.Fatalf("trial %d reach=%d nshards=%d: spurious pair", ti, reach, nshards)
					}
				}
			}
		}
	}
}

// TestFlatEmptyIndex: an empty id set builds a usable index with no
// cells (the directory indexes windows with no abnormal devices).
func TestFlatEmptyIndex(t *testing.T) {
	t.Parallel()

	st, err := space.NewState(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	ix := New(st, nil, ForRadius(0.03))
	if ix.Cells() != 0 {
		t.Fatalf("empty index has %d cells", ix.Cells())
	}
	if got := ix.Within(st.At(0), 0.1, nil); len(got) != 0 {
		t.Fatalf("empty index Within = %v", got)
	}
	if ix.Find([]int{0, 0}) != -1 {
		t.Fatal("empty index Find must miss")
	}
	walk := ix.NewPairWalk(2)
	walk.Shard(0, 1, func(a, b int) { t.Fatal("empty walk reported a pair") })
}
