package grid

import (
	"math"
	"sort"
	"testing"

	"anomalia/internal/space"
	"anomalia/internal/stats"
)

func TestForRadius(t *testing.T) {
	t.Parallel()

	cases := []struct {
		r    float64
		side float64
		res  int
	}{
		{0, 1, 1},
		{0.03, 0.06, 17},
		{0.01, 0.02, 50},
		{0.25, 0.5, 2},
		{0.2499, 0.4998, 3},
	}
	for _, c := range cases {
		p := ForRadius(c.r)
		if p.Side != c.side {
			t.Errorf("ForRadius(%v).Side = %v, want %v", c.r, p.Side, c.side)
		}
		if p.Res != c.res {
			t.Errorf("ForRadius(%v).Res = %d, want %d", c.r, p.Res, c.res)
		}
	}
}

func TestCoordsClamped(t *testing.T) {
	t.Parallel()

	p := ForRadius(0.05) // side 0.1, res 10
	cases := []struct {
		x    float64
		want int
	}{
		{-0.5, 0},
		{0, 0},
		{0.05, 0},
		{0.1, 1},
		{0.95, 9},
		{1.0, 9},  // clamped into the last cell
		{17.0, 9}, // clamped
	}
	for _, c := range cases {
		got := p.Coords(space.Point{c.x}, nil)
		if got[0] != c.want {
			t.Errorf("Coords(%v) = %d, want %d", c.x, got[0], c.want)
		}
	}
	// Coords appends to dst.
	dst := p.Coords(space.Point{0.25, 0.55}, []int{7})
	if len(dst) != 3 || dst[0] != 7 || dst[1] != 2 || dst[2] != 5 {
		t.Errorf("Coords append = %v, want [7 2 5]", dst)
	}
}

// TestKeyCollisionFreeAndOrdered: distinct coordinate vectors of the
// same dimension get distinct keys, and key order matches lexicographic
// coordinate order (the property the fixed-width big-endian packing is
// chosen for).
func TestKeyCollisionFreeAndOrdered(t *testing.T) {
	t.Parallel()

	vecs := [][]int{
		{0, 0}, {0, 1}, {0, 255}, {0, 256}, {1, 0}, {1, 2}, {2, 1},
		{255, 255}, {256, 0}, {1 << 40, 3},
	}
	for i := range vecs {
		for j := range vecs {
			ki, kj := Key(vecs[i]), Key(vecs[j])
			if (i == j) != (ki == kj) {
				t.Errorf("Key(%v) vs Key(%v): collision mismatch", vecs[i], vecs[j])
			}
			if i < j && !(ki < kj) {
				t.Errorf("Key(%v) !< Key(%v): ordering broken", vecs[i], vecs[j])
			}
		}
	}
}

func TestChebyshev(t *testing.T) {
	t.Parallel()

	if d := Chebyshev([]int{1, 5, 3}, []int{4, 5, 2}); d != 3 {
		t.Errorf("Chebyshev = %d, want 3", d)
	}
	if d := Chebyshev([]int{2, 2}, []int{2, 2}); d != 0 {
		t.Errorf("Chebyshev same = %d, want 0", d)
	}
}

// TestIndexCellsSorted: indexing sorted ids keeps every cell's id list
// sorted, and every indexed id lands in exactly one cell.
func TestIndexCellsSorted(t *testing.T) {
	t.Parallel()

	rng := stats.NewRNG(11)
	st, err := space.NewState(500, 2)
	if err != nil {
		t.Fatal(err)
	}
	st.Uniform(rng.Float64)
	ids := make([]int, 0, 250)
	for j := 0; j < 500; j += 2 {
		ids = append(ids, j)
	}
	ix := New(st, ids, ForRadius(0.03))

	seen := make(map[int]bool)
	ix.ForEachCell(func(c *Cell) {
		if got := ix.Cell(Key(c.Coords)); got != c {
			t.Errorf("Cell(Key(%v)) = %v, want the cell itself", c.Coords, got)
		}
		for i, id := range c.Ids {
			if seen[id] {
				t.Errorf("device %d indexed twice", id)
			}
			seen[id] = true
			if i > 0 && c.Ids[i-1] >= id {
				t.Errorf("cell %v ids not sorted: %v", c.Coords, c.Ids)
			}
		}
	})
	if len(seen) != len(ids) {
		t.Errorf("indexed %d devices, want %d", len(seen), len(ids))
	}
}

// TestWithinHighDimension: at dimensions where the neighbour fan-out
// (2*reach+1)^d dwarfs any realistic index, Within must fall back to
// scanning the occupied cells — returning in bounded time with the ids
// sorted — instead of walking an exponential offset odometer.
func TestWithinHighDimension(t *testing.T) {
	t.Parallel()

	const n, d = 50, space.MaxDim
	rng := stats.NewRNG(31)
	st, err := space.NewState(n, d)
	if err != nil {
		t.Fatal(err)
	}
	st.Uniform(rng.Float64)
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	prm := ForRadius(0.03)
	ix := New(st, ids, prm)
	for j := 0; j < n; j++ {
		got := ix.Within(st.At(j), 2*prm.Side, nil)
		var want []int
		for i := 0; i < n; i++ {
			if space.Dist(st.At(i), st.At(j)) <= 2*prm.Side {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("device %d: Within %v != scan %v", j, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("device %d: Within %v != scan %v", j, got, want)
			}
		}
	}
}

// TestWithinMatchesScan: the neighbour-cell walk must return exactly the
// ids a full scan finds, for radii up to reach*Side, including query
// points on cell boundaries and at the domain edges.
func TestWithinMatchesScan(t *testing.T) {
	t.Parallel()

	rng := stats.NewRNG(23)
	for _, r := range []float64{0.01, 0.03, 0.12, 0.2499} {
		prm := ForRadius(r)
		st, err := space.NewState(400, 2)
		if err != nil {
			t.Fatal(err)
		}
		st.Uniform(rng.Float64)
		// Snap a slice of devices onto exact cell-boundary multiples.
		for j := 0; j < 80; j++ {
			k := float64(rng.Intn(prm.Res + 1))
			l := float64(rng.Intn(prm.Res + 1))
			pt := space.Point{math.Min(1, k*prm.Side), math.Min(1, l*prm.Side)}
			if err := st.Set(j, pt); err != nil {
				t.Fatal(err)
			}
		}
		ids := make([]int, 400)
		for i := range ids {
			ids[i] = i
		}
		ix := New(st, ids, prm)

		for trial := 0; trial < 200; trial++ {
			j := rng.Intn(400)
			q := st.At(j)
			for _, radius := range []float64{prm.Side, 2 * prm.Side} {
				got := ix.Within(q, radius, nil)
				sort.Ints(got) // Within groups by cell, not by id
				var want []int
				for i := 0; i < st.Len(); i++ {
					if space.Dist(st.At(i), q) <= radius {
						want = append(want, i)
					}
				}
				if len(got) != len(want) {
					t.Fatalf("r=%v radius=%v device %d: Within %v != scan %v", r, radius, j, got, want)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("r=%v radius=%v device %d: Within %v != scan %v", r, radius, j, got, want)
					}
				}
			}
		}
	}
}

// TestPositiveOffsets: exactly one of {o, -o} for every non-zero offset
// in [-reach, reach]^dim, so a walk over them visits each unordered cell
// pair once.
func TestPositiveOffsets(t *testing.T) {
	for dim := 1; dim <= 3; dim++ {
		for reach := 1; reach <= 2; reach++ {
			offs := PositiveOffsets(dim, reach)
			total := 1
			for i := 0; i < dim; i++ {
				total *= 2*reach + 1
			}
			if want := (total - 1) / 2; len(offs) != want {
				t.Fatalf("dim=%d reach=%d: %d offsets, want %d", dim, reach, len(offs), want)
			}
			seen := map[string]bool{}
			for _, o := range offs {
				if o[firstNonZero(o)] <= 0 {
					t.Fatalf("offset %v is not lexicographically positive", o)
				}
				neg := make([]int, dim)
				for i, x := range o {
					neg[i] = -x
				}
				if seen[Key(o)] || seen[Key(neg)] {
					t.Fatalf("offset %v or its negation enumerated twice", o)
				}
				seen[Key(o)] = true
			}
		}
	}
}

func firstNonZero(o []int) int {
	for i, x := range o {
		if x != 0 {
			return i
		}
	}
	return len(o) - 1
}

// TestPairWalkCoversAllPairs: the union over any shard count of the
// walk's pair callbacks must be exactly the unordered pairs of occupied
// cells within reach (plus each cell with itself), each exactly once.
func TestPairWalkCoversAllPairs(t *testing.T) {
	rng := stats.NewRNG(31)
	for trial := 0; trial < 10; trial++ {
		n := 50 + rng.Intn(200)
		d := 1 + rng.Intn(3)
		st, err := space.NewState(n, d)
		if err != nil {
			t.Fatal(err)
		}
		st.Uniform(rng.Float64)
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		prm := ForSide(0.1 + 0.2*rng.Float64())
		ix := New(st, ids, prm)
		reach := 1 + rng.Intn(2)

		for _, nshards := range []int{1, 2, 3, 7} {
			walk := ix.NewPairWalk(reach)
			// Oracle: all unordered pairs of occupied cells within
			// reach, in this walk's fixed (but unspecified) cell order.
			cells := walk.Cells()
			want := map[[2]int]int{}
			for i := range cells {
				want[[2]int{i, i}]++
				for j := i + 1; j < len(cells); j++ {
					if Chebyshev(cells[i].Coords, cells[j].Coords) <= reach {
						want[[2]int{i, j}]++
					}
				}
			}
			got := map[[2]int]int{}
			for s := 0; s < nshards; s++ {
				walk.Shard(s, nshards, func(a, b int) {
					if a > b {
						a, b = b, a
					}
					got[[2]int{a, b}]++
				})
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d nshards=%d: %d pairs, want %d", trial, nshards, len(got), len(want))
			}
			for pair, count := range got {
				if count != 1 {
					t.Fatalf("trial %d nshards=%d: pair %v reported %d times", trial, nshards, pair, count)
				}
				if want[pair] != 1 {
					t.Fatalf("trial %d nshards=%d: spurious pair %v", trial, nshards, pair)
				}
			}
		}
	}
}

// TestSortedCellsDeterministic: SortedCells must return the occupied
// cells in key order — the shared deterministic order walks rely on.
func TestSortedCellsDeterministic(t *testing.T) {
	rng := stats.NewRNG(7)
	st, err := space.NewState(300, 2)
	if err != nil {
		t.Fatal(err)
	}
	st.Uniform(rng.Float64)
	ids := make([]int, 300)
	for i := range ids {
		ids[i] = i
	}
	ix := New(st, ids, ForSide(0.13))
	cells := ix.SortedCells()
	if len(cells) != ix.Cells() {
		t.Fatalf("SortedCells returned %d cells, index has %d", len(cells), ix.Cells())
	}
	for i := 1; i < len(cells); i++ {
		if Key(cells[i-1].Coords) >= Key(cells[i].Coords) {
			t.Fatalf("cells %d and %d out of key order", i-1, i)
		}
	}
}
