package grid

import (
	"math"
	"sort"
	"testing"

	"anomalia/internal/space"
	"anomalia/internal/stats"
)

func TestForRadius(t *testing.T) {
	t.Parallel()

	cases := []struct {
		r    float64
		side float64
		res  int
	}{
		{0, 1, 1},
		{0.03, 0.06, 17},
		{0.01, 0.02, 50},
		{0.25, 0.5, 2},
		{0.2499, 0.4998, 3},
	}
	for _, c := range cases {
		p := ForRadius(c.r)
		if p.Side != c.side {
			t.Errorf("ForRadius(%v).Side = %v, want %v", c.r, p.Side, c.side)
		}
		if p.Res != c.res {
			t.Errorf("ForRadius(%v).Res = %d, want %d", c.r, p.Res, c.res)
		}
	}
}

func TestCoordsClamped(t *testing.T) {
	t.Parallel()

	p := ForRadius(0.05) // side 0.1, res 10
	cases := []struct {
		x    float64
		want int
	}{
		{-0.5, 0},
		{0, 0},
		{0.05, 0},
		{0.1, 1},
		{0.95, 9},
		{1.0, 9},  // clamped into the last cell
		{17.0, 9}, // clamped
	}
	for _, c := range cases {
		got := p.Coords(space.Point{c.x}, nil)
		if got[0] != c.want {
			t.Errorf("Coords(%v) = %d, want %d", c.x, got[0], c.want)
		}
	}
	// Coords appends to dst.
	dst := p.Coords(space.Point{0.25, 0.55}, []int{7})
	if len(dst) != 3 || dst[0] != 7 || dst[1] != 2 || dst[2] != 5 {
		t.Errorf("Coords append = %v, want [7 2 5]", dst)
	}
}

// TestKeyCollisionFreeAndOrdered: distinct coordinate vectors of the
// same dimension get distinct keys, and key order matches lexicographic
// coordinate order (the property the fixed-width big-endian packing is
// chosen for).
func TestKeyCollisionFreeAndOrdered(t *testing.T) {
	t.Parallel()

	vecs := [][]int{
		{0, 0}, {0, 1}, {0, 255}, {0, 256}, {1, 0}, {1, 2}, {2, 1},
		{255, 255}, {256, 0}, {1 << 40, 3},
	}
	for i := range vecs {
		for j := range vecs {
			ki, kj := Key(vecs[i]), Key(vecs[j])
			if (i == j) != (ki == kj) {
				t.Errorf("Key(%v) vs Key(%v): collision mismatch", vecs[i], vecs[j])
			}
			if i < j && !(ki < kj) {
				t.Errorf("Key(%v) !< Key(%v): ordering broken", vecs[i], vecs[j])
			}
		}
	}
}

func TestChebyshev(t *testing.T) {
	t.Parallel()

	if d := Chebyshev([]int{1, 5, 3}, []int{4, 5, 2}); d != 3 {
		t.Errorf("Chebyshev = %d, want 3", d)
	}
	if d := Chebyshev([]int{2, 2}, []int{2, 2}); d != 0 {
		t.Errorf("Chebyshev same = %d, want 0", d)
	}
}

// TestIndexCellsSorted: indexing sorted ids keeps every cell's id list
// sorted, and every indexed id lands in exactly one cell.
func TestIndexCellsSorted(t *testing.T) {
	t.Parallel()

	rng := stats.NewRNG(11)
	st, err := space.NewState(500, 2)
	if err != nil {
		t.Fatal(err)
	}
	st.Uniform(rng.Float64)
	ids := make([]int, 0, 250)
	for j := 0; j < 500; j += 2 {
		ids = append(ids, j)
	}
	ix := New(st, ids, ForRadius(0.03))

	seen := make(map[int]bool)
	ix.ForEachCell(func(key string, c *Cell) {
		if Key(c.Coords) != key {
			t.Errorf("cell key %q does not match coords %v", key, c.Coords)
		}
		for i, id := range c.Ids {
			if seen[id] {
				t.Errorf("device %d indexed twice", id)
			}
			seen[id] = true
			if i > 0 && c.Ids[i-1] >= id {
				t.Errorf("cell %v ids not sorted: %v", c.Coords, c.Ids)
			}
		}
	})
	if len(seen) != len(ids) {
		t.Errorf("indexed %d devices, want %d", len(seen), len(ids))
	}
}

// TestWithinHighDimension: at dimensions where the neighbour fan-out
// (2*reach+1)^d dwarfs any realistic index, Within must fall back to
// scanning the occupied cells — returning in bounded time with the ids
// sorted — instead of walking an exponential offset odometer.
func TestWithinHighDimension(t *testing.T) {
	t.Parallel()

	const n, d = 50, space.MaxDim
	rng := stats.NewRNG(31)
	st, err := space.NewState(n, d)
	if err != nil {
		t.Fatal(err)
	}
	st.Uniform(rng.Float64)
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	prm := ForRadius(0.03)
	ix := New(st, ids, prm)
	for j := 0; j < n; j++ {
		got := ix.Within(st.At(j), 2*prm.Side, nil)
		var want []int
		for i := 0; i < n; i++ {
			if space.Dist(st.At(i), st.At(j)) <= 2*prm.Side {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("device %d: Within %v != scan %v", j, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("device %d: Within %v != scan %v", j, got, want)
			}
		}
	}
}

// TestWithinMatchesScan: the neighbour-cell walk must return exactly the
// ids a full scan finds, for radii up to reach*Side, including query
// points on cell boundaries and at the domain edges.
func TestWithinMatchesScan(t *testing.T) {
	t.Parallel()

	rng := stats.NewRNG(23)
	for _, r := range []float64{0.01, 0.03, 0.12, 0.2499} {
		prm := ForRadius(r)
		st, err := space.NewState(400, 2)
		if err != nil {
			t.Fatal(err)
		}
		st.Uniform(rng.Float64)
		// Snap a slice of devices onto exact cell-boundary multiples.
		for j := 0; j < 80; j++ {
			k := float64(rng.Intn(prm.Res + 1))
			l := float64(rng.Intn(prm.Res + 1))
			pt := space.Point{math.Min(1, k*prm.Side), math.Min(1, l*prm.Side)}
			if err := st.Set(j, pt); err != nil {
				t.Fatal(err)
			}
		}
		ids := make([]int, 400)
		for i := range ids {
			ids[i] = i
		}
		ix := New(st, ids, prm)

		for trial := 0; trial < 200; trial++ {
			j := rng.Intn(400)
			q := st.At(j)
			for _, radius := range []float64{prm.Side, 2 * prm.Side} {
				got := ix.Within(q, radius, nil)
				sort.Ints(got) // Within groups by cell, not by id
				var want []int
				for i := 0; i < st.Len(); i++ {
					if space.Dist(st.At(i), q) <= radius {
						want = append(want, i)
					}
				}
				if len(got) != len(want) {
					t.Fatalf("r=%v radius=%v device %d: Within %v != scan %v", r, radius, j, got, want)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("r=%v radius=%v device %d: Within %v != scan %v", r, radius, j, got, want)
					}
				}
			}
		}
	}
}
