package grid

import (
	"slices"

	"anomalia/internal/space"
)

// RebuildChurnFraction is the churn fraction — cell-membership changes
// (id adds + removes + cell moves) over the new indexed-set size — above
// which Update abandons the delta patch and rebuilds the index from
// scratch. The delta path saves the build's O(m log m) key sort (the
// dominator at million-id windows) and, below this fraction, touches
// only churn-sized state beyond the raw id diff; as churn grows the
// patch metadata converges on the rebuild's own work. The churn sweep
// recorded in BENCH_5.json keeps the patch ahead of the rebuild well
// past 10% churn, so this threshold is conservative — beyond it the
// rebuild costs at most a small constant factor more than the optimal
// choice.
const RebuildChurnFraction = 0.35

// UpdateStats reports what one Update did, in the terms a consumer
// maintaining derived per-cell state (dist.Directory's shard annotations
// and 4r block caches) needs to stay incremental itself.
type UpdateStats struct {
	// Rebuilt reports that Update fell back to a full New build: churn
	// fraction above RebuildChurnFraction, non-canonical (unsorted or
	// duplicated) ids or moved list, a dimension change, or an empty
	// old or new indexed set. When set, Added/Removed/Moved still hold
	// the id diff when it was computed, but Sources, ChurnedCells and
	// VacatedCoords are nil — derived state must be rebuilt too.
	Rebuilt bool
	// Added, Removed and Moved count the id-level diff: ids new to the
	// index, ids dropped from it, and ids kept whose cell key changed.
	Added, Removed, Moved int
	// Sources maps every cell of the updated index to the position of
	// the old cell with the same key, or -1 for newly occupied cells.
	// A sourced cell has identical coordinates (keys are injective), so
	// coordinate-derived annotations carry over untouched. A nil
	// Sources on a non-rebuilt update means the cell set is unchanged —
	// cell i descends from cell i (the common steady-state window, kept
	// allocation-free).
	Sources []int32
	// ChurnedCells lists the positions (ascending, in the updated
	// index's cell order) of cells whose membership changed: newly
	// occupied cells and surviving cells that gained or lost ids.
	ChurnedCells []int32
	// VacatedCoords holds the coordinate vectors (flat, Dim ints per
	// cell) of old cells left empty — they no longer exist in the
	// updated index, but neighbourhood caches around them still need
	// invalidating. The slice aliases the old index's storage.
	VacatedCoords []int
}

// Churn returns the number of cell-membership changes in the diff.
func (s UpdateStats) Churn() int { return s.Added + s.Removed + s.Moved }

// compactionWasteFactor bounds the dead arena fragments patched windows
// leave behind: when they exceed this multiple of the live id count the
// next Update compacts into tight slabs. Higher values amortize the
// O(m) compaction over more windows at the price of up to factor×m
// retained dead entries (8 bytes each) — at 1% churn over ~12-id cells
// a patch retires ~0.2m entries, so 4 compacts roughly every 18
// windows.
const compactionWasteFactor = 4

// removal is one id leaving its old cell (dropped or moved away).
type removal struct {
	cell int32
	id   int
}

// keyAtCell returns the packed key of the ci-th cell.
func (ix *Index) keyAtCell(ci int) []uint64 {
	s := ix.kc.stride
	return ix.keys[ci*s : (ci+1)*s]
}

// delta is the churn-sized patch a window-to-window diff produced:
// removals grouped by old cell, insertions sorted by (key, id) with
// their packed keys, and the per-insertion final cell filled in by the
// patch for the idCell resolution pass.
type delta struct {
	rem     []removal
	ins     []int32  // positions into the new ids, sorted by (key, id)
	insKeys []uint64 // stride words per ins entry, aligned with ins
	insCell []int32  // final cell of every ins entry, filled by the patch
}

func (d *delta) insKeyAt(stride int, k int) []uint64 {
	return d.insKeys[k*stride : (k+1)*stride]
}

// Update derives the index of the next observation window from this
// one: newState supplies the new positions, ids the new indexed set
// (strictly ascending, like every production caller's canonical set),
// and moved the delta feed — the sorted ids whose cell may have changed
// since the old window. In the paper's deployment the moved list is
// what the directory service receives anyway (a device that moves
// pushes its update; the service never rescans the fleet), and it is
// what keeps Update sublinear in everything but the raw id diff: only
// listed (and newly added) ids have their packed keys recomputed.
// moved == nil means "unknown" and falls back to rechecking every id's
// key — always correct, still sort-free. Ids in moved that are not
// indexed are ignored; listing an id that did not actually change cell
// is a no-op. An indexed id that changed cell but is neither listed nor
// newly added silently keeps its stale cell — the moved contract is the
// caller's to honor (the fuzz suite feeds honest and superset lists).
//
// Old keys come from the retained cell membership, never from the old
// state, so the old window's state buffers may already have been
// recycled. The patch shares every slab the churn did not touch with
// the old index — untouched cells keep their id-list views into prior
// windows' arenas (id storage is pointer-free, so retaining it costs
// the collector nothing), churned cells fill a churn-sized delta arena,
// and the key and coordinate slabs are reused outright while the cell
// set is stable — so a low-churn advance allocates and copies O(churn +
// cells), never O(m). Dead arena fragments accumulate at churn rate and
// are bounded by compaction: when they exceed the live id count the
// patch falls into a full sorted-merge that materializes tight slabs
// again (amortized O(1) per window). The result is observably identical
// to New(newState, ids, p) — same cells, coordinates, id order, and
// lookup behaviour (the parity property the update suite pins). When
// the churn fraction exceeds RebuildChurnFraction, or the inputs leave
// the delta path's preconditions, Update falls back to a full rebuild
// and says so in the stats. The receiver is never mutated: readers of
// the old index are undisturbed, which is what lets consumers publish
// the returned index with a single pointer swap.
func (ix *Index) Update(newState *space.State, ids []int, moved []int) (*Index, UpdateStats) {
	m := len(ids)
	// The steady-state fast lane: the caller re-indexes the very slice
	// this index holds (the persistent directory reuses its abnormal set
	// when the membership did not change), so the id diff is empty by
	// construction and sortedness is already known.
	sameIds := m > 0 && len(ix.ids) == m && &ids[0] == &ix.ids[0]
	if m == 0 || len(ix.ids) == 0 || !ix.idsSorted || !(sameIds || sortedUnique(ids)) ||
		!sortedUnique(moved) || newState.Dim() != ix.dim {
		return New(newState, ids, ix.Params), UpdateStats{Rebuilt: true}
	}
	stride := ix.kc.stride
	recheckAll := moved == nil

	// Phase 1 (recheck mode only): new packed keys for every id, sharded
	// like the full build. With a delta feed this whole pass — the only
	// per-id floating-point work — disappears.
	var newKeys []uint64
	if recheckAll {
		newKeys = make([]uint64, m*stride)
		parallelRanges(m, func(lo, hi int) {
			var cbuf [space.MaxDim]int
			for i := lo; i < hi; i++ {
				coords := ix.Coords(newState.At(ids[i]), cbuf[:0])
				ix.kc.appendKey(newKeys[i*stride:i*stride:(i+1)*stride], coords)
			}
		})
	}
	var cbuf [space.MaxDim]int
	var kbuf [space.MaxDim]uint64
	keyOf := func(id int) []uint64 { // exact key of one id's new position
		coords := ix.Coords(newState.At(id), cbuf[:0])
		return ix.kc.appendKey(kbuf[:0], coords)
	}

	// Phase 2: id-level diff of the two sorted sets, consulting the
	// moved feed. Old keys are the keys of the cells currently holding
	// each id; new keys are only computed for added and listed ids.
	// When the indexed slice is unchanged and a delta feed is present,
	// the diff collapses to the feed itself — O(churn log m), no O(m)
	// walk at all.
	var st UpdateStats
	var d delta
	old := ix.ids
	if sameIds && !recheckAll {
		for _, mv := range moved {
			j, ok := slices.BinarySearch(ids, mv)
			if !ok {
				continue
			}
			nk := keyOf(mv)
			oc := ix.idCell[j]
			if !slices.Equal(ix.keyAtCell(int(oc)), nk) {
				d.rem = append(d.rem, removal{oc, mv})
				d.ins = append(d.ins, int32(j))
				d.insKeys = append(d.insKeys, nk...)
				st.Moved++
			}
		}
		return ix.applyDelta(newState, ids, &d, &st)
	}
	i, j, mi := 0, 0, 0
	for i < len(old) && j < m {
		switch {
		case old[i] < ids[j]:
			d.rem = append(d.rem, removal{ix.idCell[i], old[i]})
			st.Removed++
			i++
		case old[i] > ids[j]:
			d.ins = append(d.ins, int32(j))
			if recheckAll {
				d.insKeys = append(d.insKeys, newKeys[j*stride:(j+1)*stride]...)
			} else {
				d.insKeys = append(d.insKeys, keyOf(ids[j])...)
			}
			st.Added++
			j++
		default:
			var nk []uint64
			if recheckAll {
				nk = newKeys[j*stride : (j+1)*stride]
			} else {
				for mi < len(moved) && moved[mi] < ids[j] {
					mi++
				}
				if mi < len(moved) && moved[mi] == ids[j] {
					nk = keyOf(ids[j])
				}
			}
			if nk != nil {
				oc := ix.idCell[i]
				if !slices.Equal(ix.keyAtCell(int(oc)), nk) {
					d.rem = append(d.rem, removal{oc, old[i]})
					d.ins = append(d.ins, int32(j))
					d.insKeys = append(d.insKeys, nk...)
					st.Moved++
				}
			}
			i++
			j++
		}
	}
	for ; i < len(old); i++ {
		d.rem = append(d.rem, removal{ix.idCell[i], old[i]})
		st.Removed++
	}
	for ; j < m; j++ {
		d.ins = append(d.ins, int32(j))
		if recheckAll {
			d.insKeys = append(d.insKeys, newKeys[j*stride:(j+1)*stride]...)
		} else {
			d.insKeys = append(d.insKeys, keyOf(ids[j])...)
		}
		st.Added++
	}
	return ix.applyDelta(newState, ids, &d, &st)
}

// applyDelta turns a computed diff into the next index: it dispatches
// between rebuild (past the churn threshold), whole-slab sharing (empty
// delta), compaction (accumulated arena waste) and the churn-sized fast
// patch, then resolves the id→cell record.
func (ix *Index) applyDelta(newState *space.State, ids []int, d *delta, st *UpdateStats) (*Index, UpdateStats) {
	m := len(ids)
	stride := ix.kc.stride
	old := ix.ids
	if float64(st.Churn()) > RebuildChurnFraction*float64(m) {
		st.Rebuilt = true
		return New(newState, ids, ix.Params), *st
	}

	// Identical window: share every slab; only the struct and the id
	// slice reference change.
	if st.Churn() == 0 {
		nix := &Index{
			Params: ix.Params, state: newState, dim: ix.dim, kc: ix.kc,
			keys: ix.keys, cells: ix.cells, coords: ix.coords,
			idArena: ix.idArena, ids: ids, idCell: ix.idCell,
			idsSorted: true, arenaWaste: ix.arenaWaste,
		}
		return nix, *st
	}

	// Phase 3: sort the churn-sized deltas. Removals group by old cell
	// (cell order is key order) with ids ascending inside each cell;
	// insertions order by (key, id) — position ties are id ties, since
	// ids is ascending. When everything fits, both sorts run over packed
	// composite words (no comparator); the general path sorts a
	// permutation so ins and insKeys stay aligned.
	maxOldId := old[len(old)-1]
	if maxOldId >= 0 && maxOldId < 1<<32 && len(ix.cells) < 1<<31 {
		com := make([]uint64, len(d.rem))
		for k, r := range d.rem {
			com[k] = uint64(r.cell)<<32 | uint64(uint32(r.id))
		}
		slices.Sort(com)
		for k, c := range com {
			d.rem[k] = removal{int32(c >> 32), int(uint32(c))}
		}
	} else {
		slices.SortFunc(d.rem, func(a, b removal) int {
			if a.cell != b.cell {
				return int(a.cell) - int(b.cell)
			}
			return a.id - b.id
		})
	}
	if stride == 1 && ix.kc.shift*uint(ix.dim) <= 32 && m < 1<<31 {
		// Packed-32 geometry: key and position share one word, exactly
		// like the full build's composite sort.
		com := make([]uint64, len(d.ins))
		for k := range d.ins {
			com[k] = d.insKeys[k]<<32 | uint64(uint32(d.ins[k]))
		}
		slices.Sort(com)
		for k, c := range com {
			d.ins[k] = int32(uint32(c))
			d.insKeys[k] = c >> 32
		}
	} else {
		order := make([]int32, len(d.ins))
		for k := range order {
			order[k] = int32(k)
		}
		slices.SortFunc(order, func(a, b int32) int {
			if c := slices.Compare(d.insKeyAt(stride, int(a)), d.insKeyAt(stride, int(b))); c != 0 {
				return c
			}
			return int(d.ins[a]) - int(d.ins[b])
		})
		sortedIns := make([]int32, len(d.ins))
		sortedKeys := make([]uint64, len(d.insKeys))
		for k, o := range order {
			sortedIns[k] = d.ins[o]
			copy(sortedKeys[k*stride:(k+1)*stride], d.insKeyAt(stride, int(o)))
		}
		d.ins, d.insKeys = sortedIns, sortedKeys
	}
	d.insCell = make([]int32, len(d.ins))

	var nix *Index
	if ix.arenaWaste > compactionWasteFactor*len(ix.ids) {
		// Dead fragments from past patches outweigh the live ids:
		// compact into tight slabs while applying this delta.
		nix = ix.compactMerge(newState, ids, d, st)
	} else {
		nix = ix.fastPatch(newState, ids, d, st)
	}

	// Resolve idCell: when no id entered or left the set and the cell
	// set is stable, positions and cell indices both survive — bulk-copy
	// the old record and overwrite the churned entries. Otherwise walk
	// the two sorted id sets in lock step (tagging inserted positions
	// with their complemented final cell first), remapping unchanged
	// ids' old cells to their new positions.
	identity := st.Sources == nil // nil Sources: cell i descends from cell i
	buildRemap := func() []int32 {
		remap := make([]int32, len(ix.cells))
		for i := range remap {
			remap[i] = -1
		}
		for nc, src := range st.Sources {
			if src >= 0 {
				remap[src] = int32(nc)
			}
		}
		return remap
	}
	if st.Added == 0 && st.Removed == 0 {
		// Positions survive. With a stable cell set, clone (no zeroing —
		// makeslicecopy skips it for pointer-free elements); with a
		// shifted one, renumber through the remap table — either way no
		// id-diff walk. Moved ids land on -1 remaps of vacated cells and
		// are fixed up by the insertion patch right after.
		if identity {
			nix.idCell = slices.Clone(ix.idCell)
		} else {
			remap := buildRemap()
			nix.idCell = make([]int32, m)
			for j, v := range ix.idCell {
				nix.idCell[j] = remap[v]
			}
		}
		for k, p := range d.ins {
			nix.idCell[p] = d.insCell[k]
		}
	} else {
		nix.idCell = make([]int32, m)
		var remap []int32
		if !identity {
			remap = buildRemap()
		}
		for k, p := range d.ins {
			nix.idCell[p] = ^d.insCell[k]
		}
		i := 0
		for j := 0; j < m; j++ {
			if v := nix.idCell[j]; v < 0 {
				nix.idCell[j] = ^v
				if i < len(old) && old[i] == ids[j] {
					i++ // moved id: consume its old entry too
				}
				continue
			}
			// Unchanged id: its old entry exists; skip removed ids.
			for old[i] < ids[j] {
				i++
			}
			if identity {
				nix.idCell[j] = ix.idCell[i]
			} else {
				nix.idCell[j] = remap[ix.idCell[i]]
			}
			i++
		}
	}
	return nix, *st
}

// event is one churned position of the old cell order: a surviving cell
// with removals and/or insertions, or a run of insertions opening a new
// cell that sorts immediately before old cell at.
type event struct {
	at           int32 // old cell position (insertion point for new cells)
	isNew        bool
	remLo, remHi int32
	insLo, insHi int32
}

// buildEvents groups the sorted delta into per-cell events in old-cell
// (= key) order.
func (ix *Index) buildEvents(d *delta) []event {
	stride := ix.kc.stride
	var events []event
	type remGroup struct{ cell, lo, hi int32 }
	var groups []remGroup
	for lo := 0; lo < len(d.rem); {
		hi := lo
		for hi < len(d.rem) && d.rem[hi].cell == d.rem[lo].cell {
			hi++
		}
		groups = append(groups, remGroup{d.rem[lo].cell, int32(lo), int32(hi)})
		lo = hi
	}
	type insRun struct {
		target int32
		isNew  bool
		lo, hi int32
	}
	var runs []insRun
	for lo := 0; lo < len(d.ins); {
		hi := lo
		key := d.insKeyAt(stride, lo)
		for hi < len(d.ins) && slices.Equal(d.insKeyAt(stride, hi), key) {
			hi++
		}
		if ci := ix.findKey(key); ci >= 0 {
			runs = append(runs, insRun{int32(ci), false, int32(lo), int32(hi)})
		} else {
			runs = append(runs, insRun{int32(ix.lowerBoundKey(key)), true, int32(lo), int32(hi)})
		}
		lo = hi
	}
	g, r := 0, 0
	for g < len(groups) || r < len(runs) {
		switch {
		case r < len(runs) && runs[r].isNew &&
			(g >= len(groups) || runs[r].target <= groups[g].cell):
			events = append(events, event{at: runs[r].target, isNew: true,
				insLo: runs[r].lo, insHi: runs[r].hi})
			r++
		case g >= len(groups) || (r < len(runs) && runs[r].target < groups[g].cell):
			events = append(events, event{at: runs[r].target,
				insLo: runs[r].lo, insHi: runs[r].hi})
			r++
		case r >= len(runs) || groups[g].cell < runs[r].target:
			events = append(events, event{at: groups[g].cell,
				remLo: groups[g].lo, remHi: groups[g].hi})
			g++
		default: // same surviving cell gains and loses ids
			events = append(events, event{at: groups[g].cell,
				remLo: groups[g].lo, remHi: groups[g].hi,
				insLo: runs[r].lo, insHi: runs[r].hi})
			g++
			r++
		}
	}
	return events
}

// lowerBoundKey returns the position of the first cell whose key is
// >= key (possibly len(cells)).
func (ix *Index) lowerBoundKey(key []uint64) int {
	stride := ix.kc.stride
	lo, hi := 0, len(ix.cells)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if slices.Compare(ix.keys[mid*stride:(mid+1)*stride], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// fillCellIds merges one cell's surviving old ids with its insertion
// run into dst (which must have the exact capacity left) and returns
// the extension. rem/ins cursors are the event's ranges.
func fillCellIds(dst []int, oldIds []int, d *delta, ids []int, ev event, nc int32) []int {
	ri, ii := ev.remLo, ev.insLo
	oi := 0
	for oi < len(oldIds) || ii < ev.insHi {
		if oi < len(oldIds) && ri < ev.remHi && d.rem[ri].id == oldIds[oi] {
			ri++
			oi++
			continue
		}
		// Survivor and insertion ids are disjoint, so strict comparison
		// picks each id exactly once, ascending.
		if ii >= ev.insHi || (oi < len(oldIds) && oldIds[oi] < ids[d.ins[ii]]) {
			dst = append(dst, oldIds[oi])
			oi++
		} else {
			dst = append(dst, ids[d.ins[ii]])
			d.insCell[ii] = nc
			ii++
		}
	}
	return dst
}

// fastPatch applies a churn-sized delta by sharing every slab the churn
// did not touch: untouched cells are block-copied with their id views
// left pointing into prior windows' arenas, churned cells fill a fresh
// delta arena, and the key slab is reused outright while the cell set
// is stable (spliced copies otherwise). Work and fresh allocation are
// O(cells + churn) — the only O(m) term left in Update is the id diff
// itself.
func (ix *Index) fastPatch(newState *space.State, ids []int, d *delta, st *UpdateStats) *Index {
	stride := ix.kc.stride
	dim := ix.dim
	events := ix.buildEvents(d)

	// Pre-pass: size the output.
	vacated, created, arenaNeed := 0, 0, 0
	for _, ev := range events {
		out := int(ev.insHi - ev.insLo)
		if !ev.isNew {
			out += len(ix.cells[ev.at].Ids) - int(ev.remHi-ev.remLo)
		} else {
			created++
		}
		if out == 0 {
			vacated++
		} else {
			arenaNeed += out
		}
	}
	nCells := len(ix.cells) - vacated + created
	shifted := vacated > 0 || created > 0

	nix := &Index{
		Params: ix.Params, state: newState, dim: dim, kc: ix.kc,
		ids: ids, idsSorted: true,
	}
	nix.idArena = make([]int, 0, arenaNeed)
	nix.coords = ix.coords // storage only; surviving cells' views point anywhere

	if !shifted {
		// The cell set is stable: clone the cell slab in one bulk copy
		// (no zeroing) and overwrite just the churned cells' id views;
		// keys stay shared. Every event is a surviving cell here.
		nix.keys = ix.keys
		nix.cells = slices.Clone(ix.cells)
		waste := 0
		for _, ev := range events {
			oc := ev.at
			cell := &ix.cells[oc]
			waste += len(cell.Ids)
			start := len(nix.idArena)
			nix.idArena = fillCellIds(nix.idArena, cell.Ids, d, ids, ev, oc)
			nix.cells[oc].Ids = nix.idArena[start:len(nix.idArena):len(nix.idArena)]
			st.ChurnedCells = append(st.ChurnedCells, oc)
		}
		nix.arenaWaste = ix.arenaWaste + waste
		return nix
	}

	nix.cells = make([]Cell, 0, nCells)
	nix.keys = make([]uint64, 0, nCells*stride)
	st.Sources = make([]int32, 0, nCells)

	// Walk the events in old-cell order, block-copying the untouched
	// runs between them.
	copyRun := func(lo, hi int32) { // old cell positions [lo, hi)
		if lo >= hi {
			return
		}
		nix.keys = append(nix.keys, ix.keys[int(lo)*stride:int(hi)*stride]...)
		for oc := lo; oc < hi; oc++ {
			st.Sources = append(st.Sources, oc)
		}
		nix.cells = append(nix.cells, ix.cells[lo:hi]...)
	}
	var newCoords []int // backing for created cells' coordinates
	prev := int32(0)
	waste := 0
	for _, ev := range events {
		copyRun(prev, ev.at)
		if ev.isNew {
			prev = ev.at
		} else {
			prev = ev.at + 1
		}
		nc := int32(len(nix.cells))
		if !ev.isNew {
			cell := &ix.cells[ev.at]
			waste += len(cell.Ids)
			out := len(cell.Ids) - int(ev.remHi-ev.remLo) + int(ev.insHi-ev.insLo)
			if out == 0 { // vacated
				st.VacatedCoords = append(st.VacatedCoords, cell.Coords...)
				continue
			}
			nix.keys = append(nix.keys, ix.keyAtCell(int(ev.at))...)
			st.Sources = append(st.Sources, ev.at)
			start := len(nix.idArena)
			nix.idArena = fillCellIds(nix.idArena, cell.Ids, d, ids, ev, nc)
			nix.cells = append(nix.cells, Cell{
				Coords: cell.Coords,
				Ids:    nix.idArena[start:len(nix.idArena):len(nix.idArena)],
			})
		} else {
			nix.keys = append(nix.keys, d.insKeyAt(stride, int(ev.insLo))...)
			st.Sources = append(st.Sources, -1)
			var cbuf [space.MaxDim]int
			coords := nix.Coords(newState.At(ids[d.ins[ev.insLo]]), cbuf[:0])
			base := len(newCoords)
			newCoords = append(newCoords, coords...)
			start := len(nix.idArena)
			nix.idArena = fillCellIds(nix.idArena, nil, d, ids, ev, nc)
			nix.cells = append(nix.cells, Cell{
				Coords: newCoords[base : base+dim : base+dim],
				Ids:    nix.idArena[start:len(nix.idArena):len(nix.idArena)],
			})
		}
		st.ChurnedCells = append(st.ChurnedCells, nc)
	}
	copyRun(prev, int32(len(ix.cells)))
	nix.arenaWaste = ix.arenaWaste + waste
	return nix
}

// compactMerge applies the delta through a full three-way sorted merge
// that rebuilds tight slabs — the compaction path, taken when dead
// arena fragments from past patches outweigh the live ids. It is the
// same O(m) pass a from-scratch fill runs, minus the sort.
func (ix *Index) compactMerge(newState *space.State, ids []int, d *delta, st *UpdateStats) *Index {
	stride := ix.kc.stride
	m := len(ids)
	distinct := 0
	for k := 0; k < len(d.ins); k++ {
		if k == 0 || !slices.Equal(d.insKeyAt(stride, k), d.insKeyAt(stride, k-1)) {
			distinct++
		}
	}
	oldCells := len(ix.cells)
	capCells := oldCells + distinct
	nix := &Index{
		Params: ix.Params, state: newState, dim: ix.dim, kc: ix.kc,
		ids: ids, idsSorted: true,
	}
	nix.keys = make([]uint64, 0, capCells*stride)
	nix.cells = make([]Cell, 0, capCells)
	nix.coords = make([]int, 0, capCells*ix.dim)
	nix.idArena = make([]int, 0, m)
	st.Sources = make([]int32, 0, capCells)

	appendCell := func(key []uint64, coords []int, src int32, churned bool) int32 {
		nc := int32(len(nix.cells))
		nix.keys = append(nix.keys, key...)
		start := len(nix.coords)
		nix.coords = append(nix.coords, coords...)
		nix.cells = append(nix.cells, Cell{Coords: nix.coords[start:len(nix.coords):len(nix.coords)]})
		st.Sources = append(st.Sources, src)
		if churned {
			st.ChurnedCells = append(st.ChurnedCells, nc)
		}
		return nc
	}
	closeCell := func(nc int32, start int) {
		nix.cells[nc].Ids = nix.idArena[start:len(nix.idArena):len(nix.idArena)]
	}

	ri, ii, oc := 0, 0, 0
	for oc < oldCells || ii < len(d.ins) {
		cmp := 0
		switch {
		case oc >= oldCells:
			cmp = 1
		case ii >= len(d.ins):
			cmp = -1
		default:
			cmp = slices.Compare(ix.keyAtCell(oc), d.insKeyAt(stride, ii))
		}
		switch {
		case cmp < 0: // old cell with no insertions: copy, minus removals
			cell := &ix.cells[oc]
			rk := ri
			for rk < len(d.rem) && int(d.rem[rk].cell) == oc {
				rk++
			}
			if rk-ri == len(cell.Ids) { // every member left: cell vacated
				st.VacatedCoords = append(st.VacatedCoords, cell.Coords...)
				ri = rk
				oc++
				continue
			}
			nc := appendCell(ix.keyAtCell(oc), cell.Coords, int32(oc), rk > ri)
			start := len(nix.idArena)
			if rk == ri {
				nix.idArena = append(nix.idArena, cell.Ids...)
			} else {
				for _, id := range cell.Ids {
					if ri < rk && d.rem[ri].id == id {
						ri++
						continue
					}
					nix.idArena = append(nix.idArena, id)
				}
			}
			ri = rk
			closeCell(nc, start)
			oc++
		case cmp > 0: // insertion run with no old cell: newly occupied
			key := d.insKeyAt(stride, ii)
			var cbuf [space.MaxDim]int
			coords := nix.Coords(newState.At(ids[d.ins[ii]]), cbuf[:0])
			nc := appendCell(key, coords, -1, true)
			start := len(nix.idArena)
			for ii < len(d.ins) && slices.Equal(d.insKeyAt(stride, ii), key) {
				nix.idArena = append(nix.idArena, ids[d.ins[ii]])
				d.insCell[ii] = nc
				ii++
			}
			closeCell(nc, start)
		default: // surviving cell patched: merge survivors with the run
			cell := &ix.cells[oc]
			rk := ri
			for rk < len(d.rem) && int(d.rem[rk].cell) == oc {
				rk++
			}
			insEnd := ii
			key := ix.keyAtCell(oc)
			for insEnd < len(d.ins) && slices.Equal(d.insKeyAt(stride, insEnd), key) {
				insEnd++
			}
			nc := appendCell(key, cell.Coords, int32(oc), true)
			start := len(nix.idArena)
			nix.idArena = fillCellIds(nix.idArena, cell.Ids, d, ids,
				event{remLo: int32(ri), remHi: int32(rk), insLo: int32(ii), insHi: int32(insEnd)}, nc)
			ri, ii = rk, insEnd
			closeCell(nc, start)
			oc++
		}
	}
	return nix
}
