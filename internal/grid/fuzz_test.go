package grid

import (
	"slices"
	"testing"

	"anomalia/internal/space"
)

// FuzzPackedKeyOrder: for every geometry the codec can be built for,
// comparing two packed keys must order exactly like comparing the
// coordinate vectors lexicographically — the invariant the key-sorted
// cell slab, its binary searches and SortedCells all stand on.
func FuzzPackedKeyOrder(f *testing.F) {
	f.Add(10, 2, uint64(3), uint64(7), uint64(3), uint64(8))
	f.Add(1, 4, uint64(0), uint64(0), uint64(0), uint64(0))
	f.Add(1<<25, 2, uint64(1<<24), uint64(5), uint64(1<<24), uint64(4))
	f.Add(500, 3, uint64(499), uint64(0), uint64(1), uint64(499))
	f.Add(1<<40, 2, uint64(1)<<39, uint64(2), uint64(3), uint64(1)<<39)
	f.Fuzz(func(t *testing.T, res, dim int, a0, a1, b0, b1 uint64) {
		if res < 1 || res > 1<<50 {
			t.Skip()
		}
		if dim < 1 || dim > space.MaxDim {
			t.Skip()
		}
		kc := newKeyCodec(dim, res)
		// Spread the four fuzzed words over dim axes, clamped into
		// [0, res) like every coordinate the index packs.
		mk := func(w0, w1 uint64) []int {
			coords := make([]int, dim)
			for i := range coords {
				w := w0
				if i%2 == 1 {
					w = w1
				}
				coords[i] = int((w + uint64(i)) % uint64(res))
			}
			return coords
		}
		ca, cb := mk(a0, a1), mk(b0, b1)
		ka := kc.appendKey(nil, ca)
		kb := kc.appendKey(nil, cb)
		if len(ka) != kc.stride || len(kb) != kc.stride {
			t.Fatalf("packed width %d/%d, want stride %d", len(ka), len(kb), kc.stride)
		}
		got := slices.Compare(ka, kb)
		want := slices.Compare(ca, cb)
		if sign(got) != sign(want) {
			t.Fatalf("res=%d dim=%d: packed order %d, coord order %d (%v vs %v)", res, dim, got, want, ca, cb)
		}
		// The packed keys must also order like the legacy byte encoding.
		sa, sb := Key(ca), Key(cb)
		if sign(got) != sign(compareStrings(sa, sb)) {
			t.Fatalf("res=%d dim=%d: packed order disagrees with Key order", res, dim)
		}
	})
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

func compareStrings(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}
