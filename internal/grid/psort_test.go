package grid

import (
	"slices"
	"testing"

	"anomalia/internal/stats"
)

// psortInputs builds the adversarial input families for the parallel
// composite-key sort: random words, heavy duplicates (many devices in
// one cell), already sorted, reverse sorted, and the packed key<<32|pos
// shape buildPacked32 feeds it.
func psortInputs(rng *stats.RNG, n int) map[string][]uint64 {
	random := make([]uint64, n)
	dups := make([]uint64, n)
	asc := make([]uint64, n)
	desc := make([]uint64, n)
	packed := make([]uint64, n)
	for i := 0; i < n; i++ {
		random[i] = rng.Uint64()
		dups[i] = uint64(rng.Intn(7))
		asc[i] = uint64(i)
		desc[i] = uint64(n - i)
		packed[i] = uint64(rng.Intn(n/64+1))<<32 | uint64(uint32(i))
	}
	return map[string][]uint64{
		"random": random, "dups": dups, "asc": asc, "desc": desc, "packed": packed,
	}
}

// TestParallelSortUint64MatchesSlicesSort: for every input family, size
// and worker count — including counts that do not divide the length and
// exceed it — the sharded sort must produce exactly the slices.Sort
// ordering, so index builds are identical across GOMAXPROCS settings.
func TestParallelSortUint64MatchesSlicesSort(t *testing.T) {
	t.Parallel()

	rng := stats.NewRNG(171)
	for _, n := range []int{0, 1, 2, 3, 100, 1023, parallelSortThreshold + 17} {
		for name, input := range psortInputs(rng, n) {
			want := slices.Clone(input)
			slices.Sort(want)
			for _, workers := range []int{1, 2, 3, 4, 7, 16, n + 1} {
				got := slices.Clone(input)
				parallelSortUint64Workers(got, workers)
				if !slices.Equal(got, want) {
					t.Fatalf("n=%d %s workers=%d: parallel sort diverged from slices.Sort", n, name, workers)
				}
			}
		}
	}
}

// TestParallelSortUint64Auto covers the production entry point on both
// sides of the inline threshold.
func TestParallelSortUint64Auto(t *testing.T) {
	t.Parallel()

	rng := stats.NewRNG(99)
	for _, n := range []int{parallelSortThreshold - 1, 2*parallelSortThreshold + 5} {
		a := make([]uint64, n)
		for i := range a {
			a[i] = rng.Uint64()
		}
		want := slices.Clone(a)
		slices.Sort(want)
		parallelSortUint64(a)
		if !slices.Equal(a, want) {
			t.Fatalf("n=%d: parallelSortUint64 diverged from slices.Sort", n)
		}
	}
}
