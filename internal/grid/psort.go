package grid

import (
	"runtime"
	"slices"
	"sync"
)

// parallelSortThreshold is the input size below which the composite-key
// sort runs single-threaded: shard + merge overhead only pays for itself
// on bulk builds, and per-window builds at paper scale should spawn
// nothing (mirroring parallelRanges).
const parallelSortThreshold = 1 << 15

// parallelSortUint64 sorts a ascending using up to GOMAXPROCS workers:
// per-shard sorts followed by rounds of pairwise merges. The output is
// the ascending ordering of the values — unique whatever the shard
// count — so index builds are deterministic across machines and
// GOMAXPROCS settings.
func parallelSortUint64(a []uint64) {
	workers := runtime.GOMAXPROCS(0)
	if len(a) < parallelSortThreshold {
		workers = 1
	}
	parallelSortUint64Workers(a, workers)
}

// parallelSortUint64Workers is the worker-count-parameterized core,
// split out so tests can pin output equality across worker counts.
func parallelSortUint64Workers(a []uint64, workers int) {
	n := len(a)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 2 {
		slices.Sort(a)
		return
	}

	// Shard and sort: worker w owns a[w*n/workers : (w+1)*n/workers).
	bounds := make([]int, workers+1)
	for i := range bounds {
		bounds[i] = i * n / workers
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			slices.Sort(a[lo:hi])
		}(bounds[w], bounds[w+1])
	}
	wg.Wait()

	// Merge rounds: adjacent run pairs merge in parallel, ping-ponging
	// between a and one scratch buffer, until a single run remains.
	buf := make([]uint64, n)
	src, dst := a, buf
	for len(bounds) > 2 {
		next := make([]int, 0, len(bounds)/2+2)
		var mg sync.WaitGroup
		i := 0
		for ; i+2 < len(bounds); i += 2 {
			lo, mid, hi := bounds[i], bounds[i+1], bounds[i+2]
			next = append(next, lo)
			mg.Add(1)
			go func(lo, mid, hi int) {
				defer mg.Done()
				mergeUint64(dst[lo:hi], src[lo:mid], src[mid:hi])
			}(lo, mid, hi)
		}
		if i+1 < len(bounds) { // odd run out: carry it into the next round
			next = append(next, bounds[i])
			copy(dst[bounds[i]:n], src[bounds[i]:n])
		}
		next = append(next, n)
		mg.Wait()
		bounds = next
		src, dst = dst, src
	}
	if &src[0] != &a[0] {
		copy(a, src)
	}
}

// mergeUint64 merges the sorted runs x and y into dst, which must have
// length len(x)+len(y).
func mergeUint64(dst, x, y []uint64) {
	for len(x) > 0 && len(y) > 0 {
		if y[0] < x[0] {
			dst[0] = y[0]
			y = y[1:]
		} else {
			dst[0] = x[0]
			x = x[1:]
		}
		dst = dst[1:]
	}
	copy(dst, x)
	copy(dst[len(x):], y)
}
