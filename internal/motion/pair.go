// Package motion implements the consistency machinery of Sections III-B
// and VI of the paper: r-consistent sets, r-consistent motions over a time
// window [k-1, k], τ-dense / τ-sparse classification, and the enumeration
// of maximal r-consistent motions.
//
// With the uniform norm, a set is r-consistent exactly when it fits into
// an axis-aligned hypercube of side 2r, and r-consistency is pairwise.
// A motion is therefore a clique of the "motion graph" whose edges join
// devices within distance 2r at both ends of the window, and the maximal
// motions of the paper's Algorithm 2 are its maximal cliques. The package
// provides both the paper's sliding-window enumeration and Bron–Kerbosch
// with pivoting; tests cross-check them.
package motion

import (
	"errors"
	"fmt"

	"anomalia/internal/space"
)

// MaxRadius is the exclusive upper bound 1/4 the paper imposes on the
// consistency impact radius r (Definition 1).
const MaxRadius = 0.25

var (
	// ErrMismatchedStates is returned when the two states of a pair differ
	// in device count or dimension.
	ErrMismatchedStates = errors.New("motion: states differ in size or dimension")
	// ErrRadius is returned for a consistency radius outside [0, 1/4).
	ErrRadius = errors.New("motion: radius outside [0, 1/4)")
)

// ValidateRadius checks r against the paper's r ∈ [0, 1/4) requirement.
func ValidateRadius(r float64) error {
	if r < 0 || r >= MaxRadius {
		return fmt.Errorf("r = %v: %w", r, ErrRadius)
	}
	return nil
}

// Pair holds the two successive system states S_{k-1} and S_k delimiting
// the observation window [k-1, k].
type Pair struct {
	Prev *space.State
	Cur  *space.State
}

// NewPair validates that both states describe the same device population.
func NewPair(prev, cur *space.State) (*Pair, error) {
	if prev == nil || cur == nil {
		return nil, fmt.Errorf("nil state: %w", ErrMismatchedStates)
	}
	if prev.Len() != cur.Len() || prev.Dim() != cur.Dim() {
		return nil, fmt.Errorf("prev %dx%d vs cur %dx%d: %w",
			prev.Len(), prev.Dim(), cur.Len(), cur.Dim(), ErrMismatchedStates)
	}
	return &Pair{Prev: prev, Cur: cur}, nil
}

// N returns the number of devices.
func (p *Pair) N() int { return p.Prev.Len() }

// Dim returns the dimension of the QoS space.
func (p *Pair) Dim() int { return p.Prev.Dim() }

// Adjacent reports whether devices i and j are within uniform-norm
// distance 2r of each other at both times — the edge relation of the
// motion graph. Every device is adjacent to itself.
func (p *Pair) Adjacent(i, j int, r float64) bool {
	return p.Prev.Dist(i, j) <= 2*r && p.Cur.Dist(i, j) <= 2*r
}

// ConsistentAt reports whether ids form an r-consistent set (Definition 1)
// in state s: the bounding box of their positions has side at most 2r in
// every dimension, which for the uniform norm is equivalent to all
// pairwise distances being at most 2r.
func ConsistentAt(s *space.State, ids []int, r float64) bool {
	if len(ids) <= 1 {
		return true
	}
	d := s.Dim()
	first := s.At(ids[0])
	lo := make([]float64, d)
	hi := make([]float64, d)
	copy(lo, first)
	copy(hi, first)
	for _, id := range ids[1:] {
		p := s.At(id)
		for i := 0; i < d; i++ {
			if p[i] < lo[i] {
				lo[i] = p[i]
			}
			if p[i] > hi[i] {
				hi[i] = p[i]
			}
			if hi[i]-lo[i] > 2*r {
				return false
			}
		}
	}
	return true
}

// ConsistentMotion reports whether ids have an r-consistent motion in the
// window (Definition 3): r-consistent at both times.
func (p *Pair) ConsistentMotion(ids []int, r float64) bool {
	return ConsistentAt(p.Prev, ids, r) && ConsistentAt(p.Cur, ids, r)
}

// Dense reports whether a motion of the given size is τ-dense
// (Definition 4): |B| > τ.
func Dense(size, tau int) bool { return size > tau }

// DenseOf filters a family of motions, keeping the τ-dense ones.
func DenseOf(motions [][]int, tau int) [][]int {
	var out [][]int
	for _, m := range motions {
		if Dense(len(m), tau) {
			out = append(out, m)
		}
	}
	return out
}
