package motion

import (
	"fmt"
	"math"
	"testing"

	"anomalia/internal/grid"
	"anomalia/internal/space"
	"anomalia/internal/stats"
)

// sameAdjacency fails the test unless the two graphs have identical
// vertex sets and identical edge sets.
func sameAdjacency(t *testing.T, label string, got, want *Graph) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d vertices, want %d", label, got.Len(), want.Len())
	}
	ids := want.Ids()
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			g, w := got.Adjacent(ids[i], ids[j]), want.Adjacent(ids[i], ids[j])
			if g != w {
				t.Fatalf("%s: edge (%d,%d) grid=%v allpairs=%v", label, ids[i], ids[j], g, w)
			}
		}
	}
}

// boundaryPair builds a pair where a fraction of the devices sit exactly
// on cell-boundary multiples of the grid side 2r (the coordinates where
// floating-point cell assignment is most fragile) and the rest are
// uniform; the second state adds a shift of up to maxShift.
func boundaryPair(t testing.TB, rng *stats.RNG, n, d int, r, maxShift float64) *Pair {
	t.Helper()
	prm := grid.ForRadius(r)
	prev, err := space.NewState(n, d)
	if err != nil {
		t.Fatal(err)
	}
	prev.Uniform(rng.Float64)
	for j := 0; j < n/2; j++ {
		pt := make(space.Point, d)
		for i := range pt {
			pt[i] = math.Min(1, float64(rng.Intn(prm.Res+1))*prm.Side)
		}
		if err := prev.Set(j, pt); err != nil {
			t.Fatal(err)
		}
	}
	cur := prev.Clone()
	for j := 0; j < n; j++ {
		pt := cur.AtClone(j)
		for i := range pt {
			pt[i] += (2*rng.Float64() - 1) * maxShift
		}
		if err := cur.Set(j, pt); err != nil { // Set clamps into [0,1]
			t.Fatal(err)
		}
	}
	pair, err := NewPair(prev, cur)
	if err != nil {
		t.Fatal(err)
	}
	return pair
}

// TestNewGraphGridMatchesAllPairs: the grid-indexed build must produce
// adjacency identical to the all-pairs oracle across radii (including
// the r = 0 and r -> 1/4 edges), dimensions, and placements — uniform,
// clustered, coincident, and devices exactly on cell boundaries.
func TestNewGraphGridMatchesAllPairs(t *testing.T) {
	t.Parallel()

	rng := stats.NewRNG(424242)
	radii := []float64{0, 1e-9, 0.001, 0.01, 0.03, 0.1, 0.2499999}
	for trial := 0; trial < 30; trial++ {
		n := gridBuildMinVertices + 6 + rng.Intn(150)
		d := 1 + rng.Intn(3)
		r := radii[trial%len(radii)]

		var pair *Pair
		switch trial % 3 {
		case 0: // uniform over the whole hypercube
			pair = randomPair(t, rng, n, d, 1.0)
		case 1: // clustered into a tight box so cells are crowded
			pair = randomPair(t, rng, n, d, math.Max(4*r, 0.05))
		default: // boundary-snapped with motion across the window
			pair = boundaryPair(t, rng, n, d, r, 3*r+1e-6)
		}
		// A few exactly-coincident devices exercise the r = 0 edge.
		for j := 0; j+1 < n; j += n / 4 {
			if err := pair.Prev.Set(j+1, pair.Prev.At(j)); err != nil {
				t.Fatal(err)
			}
			if err := pair.Cur.Set(j+1, pair.Cur.At(j)); err != nil {
				t.Fatal(err)
			}
		}

		label := fmt.Sprintf("trial %d (n=%d d=%d r=%v)", trial, n, d, r)
		ids := allIds(n)
		sameAdjacency(t, label, newGraphGrid(pair, ids, r), newGraphAllPairs(pair, ids, r))

		// Sparse id subsets (the realistic abnormal-set shape) must agree
		// too, including out-of-range ids that both builds discard.
		subset := make([]int, 0, n/2)
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.5 {
				subset = append(subset, j)
			}
		}
		subset = append(subset, -3, n+17)
		sameAdjacency(t, label+" subset", newGraphGrid(pair, subset, r), newGraphAllPairs(pair, subset, r))
	}
}

// TestNewGraphUsesGridBuild pins the dispatch thresholds: big vertex
// sets go through the grid build, small ones through the all-pairs scan,
// and both public paths agree with the oracle regardless.
func TestNewGraphUsesGridBuild(t *testing.T) {
	t.Parallel()

	rng := stats.NewRNG(7)
	for _, n := range []int{gridBuildMinVertices - 1, gridBuildMinVertices, 3 * gridBuildMinVertices} {
		pair := randomPair(t, rng, n, 2, 1.0)
		r := 0.05
		label := fmt.Sprintf("n=%d", n)
		sameAdjacency(t, label, NewGraph(pair, allIds(n), r), newGraphAllPairs(pair, allIds(n), r))
	}
}

// TestNewGraphHighDimension: at dimensions where the (2*reach+1)^d
// neighbour fan-out dwarfs the vertex count, NewGraph must dispatch to
// the all-pairs build instead of walking an exponential offset set —
// and still return the correct graph in bounded time.
func TestNewGraphHighDimension(t *testing.T) {
	t.Parallel()

	if gridBuildWorthwhile(space.MaxDim, 1<<20) {
		t.Fatalf("gridBuildWorthwhile(%d, 1M) = true; the grid walk would enumerate 5^%d offsets", space.MaxDim, space.MaxDim)
	}
	rng := stats.NewRNG(13)
	n := gridBuildMinVertices + 10
	pair := randomPair(t, rng, n, space.MaxDim, 0.2)
	sameAdjacency(t, "high-dim", NewGraph(pair, allIds(n), 0.05), newGraphAllPairs(pair, allIds(n), 0.05))
}
