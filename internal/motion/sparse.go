package motion

import (
	"runtime"
	"slices"
	"sync"

	"anomalia/internal/grid"
	"anomalia/internal/sets"
)

// This file is the collected half of the hybrid adjacency: the parallel
// edge collection and CSR construction (NewGraph at >=
// sparseMinVertices) and the neighbourhood-densified clique enumeration
// that keeps Bron–Kerbosch word-parallel without ever materializing
// O(m²/64) bits.
//
// Construction pipeline:
//
//  1. Flatten the two states' coordinates into per-vertex arrays, so the
//     inner adjacency test is a branch-cheap scan over contiguous memory
//     with per-axis early exit.
//  2. Shard the grid's cell-pair walk across workers; each worker
//     distance-tests its candidate pairs and appends surviving edges to
//     a private buffer (no shared state, no locks).
//  3. Pick the representation from the measured edge count: windows so
//     edge-dense that the CSR arena would be no smaller than the dense
//     bitset rows fill the rows straight from the buffers (word-parallel
//     enumeration, no per-row merge+sort); everything else merges the
//     buffers into one CSR arena — offsets plus neighbours, 2
//     allocations regardless of m — via a count / prefix-sum / fill
//     pass, then sorts each row. Sorted rows make the arena a pure
//     function of the edge set: the same adjacency comes out for every
//     worker count and shard interleaving.

// sparseBuilder carries the flattened window the workers test against.
type sparseBuilder struct {
	g     *Graph
	dim   int
	lim   float64 // the 2r adjacency threshold
	prevF []float64
	curF  []float64
}

// buildCollected constructs the adjacency for graphs at or above
// sparseMinVertices: collect the edge set into per-worker buffers, then
// pick the representation from the measured edge count (density-
// adaptive) — unless forceCSR pins the CSR arena (testing hook, and the
// guarantee newGraphSparse gives the parity suites). gridOK selects the
// sharded cell-pair walk; when the geometry rules the grid out
// (exponential high-dimension fan-out, degenerate resolution) the
// workers stripe an all-pairs scan instead. workers <= 0 selects
// GOMAXPROCS.
func (g *Graph) buildCollected(prm grid.Params, gridOK bool, workers int, forceCSR bool) {
	m := len(g.ids)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > m {
		workers = m
	}
	if workers < 1 {
		workers = 1
	}
	d := g.pair.Dim()
	b := &sparseBuilder{
		g:     g,
		dim:   d,
		lim:   2 * g.r,
		prevF: make([]float64, m*d),
		curF:  make([]float64, m*d),
	}
	for li, id := range g.ids {
		copy(b.prevF[li*d:(li+1)*d], g.pair.Prev.At(id))
		copy(b.curF[li*d:(li+1)*d], g.pair.Cur.At(id))
	}
	var bufs [][]uint64
	if gridOK {
		bufs = b.collectGrid(prm, workers)
	} else {
		bufs = b.collectAllPairs(workers)
	}
	if !forceCSR && denseWorthwhile(m, countEdges(bufs)) {
		g.denseFromEdges(bufs)
		return
	}
	g.mergeCSR(bufs, workers)
}

// countEdges totals the collected edge buffers.
func countEdges(bufs [][]uint64) int {
	total := 0
	for _, buf := range bufs {
		total += len(buf)
	}
	return total
}

// denseWorthwhile picks the adjacency representation from the measured
// edge count: dense words are m·ceil(m/64), the CSR arena holds 2 int32
// entries (one 64-bit word) per edge — when the dense rows are no
// bigger, sparsity buys no memory and the word-parallel dense
// enumeration plus a fill-from-buffers build (no per-row merge+sort) is
// strictly better. Edge-dense clustered windows near the old vertex
// crossover land here; uniform fleets at scale never do, so the ratio
// needs no separate memory cap.
func denseWorthwhile(m, edges int) bool {
	return m*((m+63)/64) <= edges
}

// denseFromEdges fills slab-backed dense bitset rows straight from the
// per-worker edge buffers.
func (g *Graph) denseFromEdges(bufs [][]uint64) {
	g.allocDense()
	for _, buf := range bufs {
		for _, e := range buf {
			a, c := unpack(e)
			g.adj[a].Add(int(c))
			g.adj[c].Add(int(a))
		}
	}
}

// adjacent is the inlined edge test over the flattened coordinates:
// uniform-norm distance <= 2r at both times, with per-axis early exit.
// Semantics match Pair.Adjacent exactly (an axis never rejects on NaN in
// either formulation).
func (b *sparseBuilder) adjacent(a, c int32) bool {
	d := b.dim
	pa, pc := int(a)*d, int(c)*d
	for k := 0; k < d; k++ {
		delta := b.prevF[pa+k] - b.prevF[pc+k]
		if delta < 0 {
			delta = -delta
		}
		if delta > b.lim {
			return false
		}
	}
	for k := 0; k < d; k++ {
		delta := b.curF[pa+k] - b.curF[pc+k]
		if delta < 0 {
			delta = -delta
		}
		if delta > b.lim {
			return false
		}
	}
	return true
}

// pack encodes an edge as one word for the per-worker buffers.
func pack(a, c int32) uint64 { return uint64(uint32(a))<<32 | uint64(uint32(c)) }

func unpack(e uint64) (int32, int32) { return int32(e >> 32), int32(uint32(e)) }

// edgeChunkLen is the capacity of one edge-buffer chunk (256 KB).
const edgeChunkLen = 1 << 15

// edgeSink accumulates packed edges in fixed-size chunks. Chunking keeps
// the collection phase's total allocation at the edge count itself —
// a single growing slice would reallocate-and-copy its way to ~5x that
// (Go grows large slices by 1.25x) — and edge-dense clustered windows
// put tens of millions of edges through here.
type edgeSink struct {
	cur    []uint64
	chunks [][]uint64
}

func (s *edgeSink) add(e uint64) {
	if len(s.cur) == cap(s.cur) {
		if s.cur != nil {
			s.chunks = append(s.chunks, s.cur)
		}
		s.cur = make([]uint64, 0, edgeChunkLen)
	}
	s.cur = append(s.cur, e)
}

// done flushes the open chunk and returns every chunk collected.
func (s *edgeSink) done() [][]uint64 {
	if len(s.cur) > 0 {
		s.chunks = append(s.chunks, s.cur)
	}
	return s.chunks
}

// collectGrid runs the sharded cell-pair walk: every unordered candidate
// pair is tested by exactly one worker (the one owning the
// lexicographically smaller cell), so the union of the buffers holds
// every edge exactly once.
func (b *sparseBuilder) collectGrid(prm grid.Params, workers int) [][]uint64 {
	idx := grid.New(b.g.pair.Prev, b.g.ids, prm)
	walk := idx.NewPairWalk(gridBuildReach)
	locals := b.g.resolveCellLocals(walk.Cells())
	if workers > len(walk.Cells()) {
		workers = len(walk.Cells())
	}
	if workers < 1 {
		workers = 1
	}
	bufs := make([][][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var sink edgeSink
			walk.Shard(w, workers, func(a, c int) {
				la := locals.row(a)
				if a == c {
					for i := 0; i < len(la); i++ {
						va := la[i]
						for j := i + 1; j < len(la); j++ {
							if b.adjacent(va, la[j]) {
								sink.add(pack(va, la[j]))
							}
						}
					}
					return
				}
				lc := locals.row(c)
				for _, va := range la {
					for _, vc := range lc {
						if b.adjacent(va, vc) {
							sink.add(pack(va, vc))
						}
					}
				}
			})
			bufs[w] = sink.done()
		}(w)
	}
	wg.Wait()
	return flattenChunks(bufs)
}

// flattenChunks concatenates the workers' chunk lists (chunk order is
// irrelevant: the merge sorts every row).
func flattenChunks(bufs [][][]uint64) [][]uint64 {
	var out [][]uint64
	for _, chunks := range bufs {
		out = append(out, chunks...)
	}
	return out
}

// collectAllPairs stripes the quadratic scan across workers (vertex a of
// every pair (a, c), a < c, belongs to exactly one stripe).
func (b *sparseBuilder) collectAllPairs(workers int) [][]uint64 {
	m := len(b.g.ids)
	bufs := make([][][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var sink edgeSink
			for a := w; a < m; a += workers {
				for c := a + 1; c < m; c++ {
					if b.adjacent(int32(a), int32(c)) {
						sink.add(pack(int32(a), int32(c)))
					}
				}
			}
			bufs[w] = sink.done()
		}(w)
	}
	wg.Wait()
	return flattenChunks(bufs)
}

// mergeCSR folds the per-worker edge buffers into the shared CSR arena:
// count degrees, prefix-sum into offsets, fill, then sort each row.
// The arena is exactly 2 allocations (offsets + neighbours); the count
// and cursor arrays are transient. Sorted rows make membership a binary
// search, densification a linear merge, and the arena content a pure
// function of the edge set — independent of worker count and of the
// order shards emitted edges (TestSparseBuildDeterministic).
func (g *Graph) mergeCSR(bufs [][]uint64, workers int) {
	m := len(g.ids)
	off := make([]int64, m+1)
	for _, buf := range bufs {
		for _, e := range buf {
			a, c := unpack(e)
			off[a+1]++
			off[c+1]++
		}
	}
	for v := 0; v < m; v++ {
		off[v+1] += off[v]
	}
	nbr := make([]int32, off[m])
	cur := make([]int64, m)
	copy(cur, off[:m])
	for _, buf := range bufs {
		for _, e := range buf {
			a, c := unpack(e)
			nbr[cur[a]] = c
			cur[a]++
			nbr[cur[c]] = a
			cur[c]++
		}
	}
	if workers > m {
		workers = m
	}
	if workers <= 1 {
		for v := 0; v < m; v++ {
			slices.Sort(nbr[off[v]:off[v+1]])
		}
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for v := w; v < m; v += workers {
					slices.Sort(nbr[off[v]:off[v+1]])
				}
			}(w)
		}
		wg.Wait()
	}
	g.off, g.nbr = off, nbr
}

// sortInt32s sorts a neighbour-list buffer in place.
func sortInt32s(s sets.Sorted) { slices.Sort(s) }

// densify materializes the subgraph induced on verts (sorted local
// indices) as dense bitset rows over sub-indices 0..len(verts)-1,
// reusing the scratch's row bitsets. This is the sparse-BK trick: a
// vertex's clique search only ever looks inside its neighbourhood, so
// the word-parallel recursion runs over a Δ-sized universe instead of
// the m-sized one — O(Δ²/64) scratch bits, not O(m²/64).
func (g *Graph) densify(sc *bkScratch, verts sets.Sorted) []*sets.Bits {
	s := len(verts)
	for len(sc.sub) < s {
		sc.sub = append(sc.sub, sets.NewBits(0))
	}
	sub := sc.sub[:s]
	for i := range sub {
		sub[i].Resize(s)
	}
	for i, v := range verts {
		bi := sub[i]
		g.row(int(v)).IntersectPositions(verts, bi.Add)
	}
	return sub
}

// maximalMotionsSparse enumerates all maximal cliques of a sparse-mode
// graph with the degeneracy-ordered Bron–Kerbosch of Eppstein, Löffler
// and Strash: the outer loop walks vertices in degeneracy order and
// enumerates, inside each vertex's densified neighbourhood subgraph,
// the maximal cliques whose earliest vertex (in that order) it is —
// candidates restricted to later neighbours, exclusions to earlier
// ones. Every maximal clique of the graph is reported exactly once.
func (g *Graph) maximalMotionsSparse() [][]int {
	m := len(g.ids)
	if m == 0 {
		return nil
	}
	order := g.degeneracyOrder()
	pos := make([]int, m)
	for i, v := range order {
		pos[v] = i
	}
	var out [][]int
	sc := g.getScratch()
	defer g.putScratch(sc)
	for _, v := range order {
		verts := g.row(v).InsertInto(int32(v), sc.verts[:0])
		sub := g.densify(sc, verts)
		s := len(verts)
		r := sc.lease(s)
		p := sc.lease(s)
		x := sc.lease(s)
		r.Add(searchSorted(verts, int32(v)))
		for i, u := range verts {
			if int(u) == v {
				continue
			}
			if pos[int(u)] > pos[v] {
				p.Add(i)
			} else {
				x.Add(i)
			}
		}
		bkOver(sub, r, p, x, sc, func(clique *sets.Bits) {
			ids := make([]int, 0, clique.Len())
			clique.ForEach(func(i int) bool {
				ids = append(ids, g.ids[verts[i]])
				return true
			})
			out = append(out, ids)
		})
		sc.put(x)
		sc.put(p)
		sc.put(r)
		sc.verts = verts[:0]
	}
	sets.SortSets(out)
	return out
}
