package motion

import (
	"math/rand"
	"testing"
	"testing/quick"

	"anomalia/internal/sets"
	"anomalia/internal/space"
)

// quickPair builds a pair from raw byte-derived coordinates so that
// testing/quick can drive the geometry.
func quickPair(prevRaw, curRaw []uint8, d int) (*Pair, int, bool) {
	n := len(prevRaw) / d
	if m := len(curRaw) / d; m < n {
		n = m
	}
	if n < 2 {
		return nil, 0, false
	}
	if n > 12 {
		n = 12
	}
	build := func(raw []uint8) *space.State {
		st, err := space.NewState(n, d)
		if err != nil {
			return nil
		}
		for j := 0; j < n; j++ {
			p := make(space.Point, d)
			for i := 0; i < d; i++ {
				p[i] = float64(raw[j*d+i]) / 255 * 0.3 // cluster for structure
			}
			if err := st.Set(j, p); err != nil {
				return nil
			}
		}
		return st
	}
	prev, cur := build(prevRaw), build(curRaw)
	if prev == nil || cur == nil {
		return nil, 0, false
	}
	pair, err := NewPair(prev, cur)
	if err != nil {
		return nil, 0, false
	}
	return pair, n, true
}

// TestQuickAdjacencyIsConsistency: for pairs of devices, the edge relation
// agrees with the two-element consistent-motion test (r-consistency is
// pairwise under the uniform norm).
func TestQuickAdjacencyIsConsistency(t *testing.T) {
	t.Parallel()

	f := func(prevRaw, curRaw []uint8) bool {
		pair, n, ok := quickPair(prevRaw, curRaw, 2)
		if !ok {
			return true
		}
		const r = 0.05
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if pair.Adjacent(a, b, r) != pair.ConsistentMotion([]int{a, b}, r) {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickConsistencyClosedUnderSubsets: any subset of an r-consistent
// motion is an r-consistent motion — the property Definition 6's C1/C2
// reductions rely on.
func TestQuickConsistencyClosedUnderSubsets(t *testing.T) {
	t.Parallel()

	f := func(prevRaw, curRaw []uint8, mask uint16) bool {
		pair, n, ok := quickPair(prevRaw, curRaw, 1)
		if !ok {
			return true
		}
		const r = 0.08
		g := NewGraph(pair, allIds(n), r)
		for _, m := range g.MaximalMotions() {
			var sub []int
			for i, id := range m {
				if mask&(1<<uint(i%16)) != 0 {
					sub = append(sub, id)
				}
			}
			if !pair.ConsistentMotion(sub, r) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(13))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickMaximalMotionsCoverCliqueExtensions: every motion reported as
// maximal really cannot be extended by any other vertex.
func TestQuickMaximalMotionsAreMaximal(t *testing.T) {
	t.Parallel()

	f := func(prevRaw, curRaw []uint8) bool {
		pair, n, ok := quickPair(prevRaw, curRaw, 2)
		if !ok {
			return true
		}
		const r = 0.06
		g := NewGraph(pair, allIds(n), r)
		for _, m := range g.MaximalMotions() {
			for v := 0; v < n; v++ {
				if sets.ContainsInt(m, v) {
					continue
				}
				ext := append(sets.CloneInts(m), v)
				if pair.ConsistentMotion(ext, r) {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(17))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickContainingSubsetOfGlobal: motions containing j are exactly the
// global maximal motions filtered by membership of j.
func TestQuickContainingSubsetOfGlobal(t *testing.T) {
	t.Parallel()

	f := func(prevRaw, curRaw []uint8, jRaw uint8) bool {
		pair, n, ok := quickPair(prevRaw, curRaw, 1)
		if !ok {
			return true
		}
		const r = 0.07
		j := int(jRaw) % n
		g := NewGraph(pair, allIds(n), r)
		var want [][]int
		for _, m := range g.MaximalMotions() {
			if sets.ContainsInt(m, j) {
				want = append(want, m)
			}
		}
		return sameFamily(g.MaximalMotionsContaining(j), want)
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(19))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
