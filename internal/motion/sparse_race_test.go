package motion

import (
	"fmt"
	"sync"
	"testing"

	"anomalia/internal/stats"
)

// TestSparseBuildDeterministic: the merged CSR arena must be a pure
// function of the window — identical offsets and neighbour order for
// every worker count, including worker counts beyond the cell and
// vertex populations.
func TestSparseBuildDeterministic(t *testing.T) {
	t.Parallel()

	rng := stats.NewRNG(808)
	for trial, shape := range []struct {
		n int
		d int
		r float64
	}{
		{300, 2, 0.03},
		{400, 2, 0.01},
		{350, 3, 0.08},
		{300, 1, 0.001},
	} {
		pair := randomPair(t, rng, shape.n, shape.d, 0.5)
		ref := newGraphSparse(pair, allIds(shape.n), shape.r, 1)
		for _, workers := range []int{2, 3, 5, 16, shape.n + 9} {
			g := newGraphSparse(pair, allIds(shape.n), shape.r, workers)
			label := fmt.Sprintf("trial %d workers=%d", trial, workers)
			if len(g.off) != len(ref.off) || len(g.nbr) != len(ref.nbr) {
				t.Fatalf("%s: CSR shape (%d,%d), want (%d,%d)",
					label, len(g.off), len(g.nbr), len(ref.off), len(ref.nbr))
			}
			for v := range ref.off {
				if g.off[v] != ref.off[v] {
					t.Fatalf("%s: off[%d] = %d, want %d", label, v, g.off[v], ref.off[v])
				}
			}
			for i := range ref.nbr {
				if g.nbr[i] != ref.nbr[i] {
					t.Fatalf("%s: nbr[%d] = %d, want %d", label, i, g.nbr[i], ref.nbr[i])
				}
			}
		}
	}
}

// TestSparseBuildConcurrent exercises the parallel build under the race
// detector: several goroutines building sparse graphs over the same
// shared pair at once (the states are read-only), interleaved with
// dense builds.
func TestSparseBuildConcurrent(t *testing.T) {
	t.Parallel()

	rng := stats.NewRNG(909)
	pair := randomPair(t, rng, 500, 2, 0.6)
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := []float64{0.01, 0.03, 0.05}[i%3]
			g := newGraphSparse(pair, allIds(500), r, 1+i)
			if g.Len() != 500 {
				t.Errorf("builder %d: %d vertices", i, g.Len())
			}
		}(i)
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			NewGraph(pair, allIds(500), 0.02)
		}()
	}
	wg.Wait()
}

// TestSparseEnumerationConcurrent runs concurrent clique enumerations
// over one shared sparse-mode graph — the access pattern of
// CharacterizeAllParallel's phase 1 — under the race detector. The
// sync.Pool-leased scratch (including the densified neighbourhood rows)
// must keep workers isolated.
func TestSparseEnumerationConcurrent(t *testing.T) {
	t.Parallel()

	rng := stats.NewRNG(1001)
	n := 400
	pair := randomPair(t, rng, n, 2, 0.3)
	g := newGraphSparse(pair, allIds(n), 0.04, 3)
	if !g.Sparse() {
		t.Fatal("graph is not in sparse mode")
	}
	oracle := newGraphAllPairs(pair, allIds(n), 0.04)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := w; j < n; j += 8 {
				got := g.MaximalMotionsContaining(j)
				want := oracle.MaximalMotionsContaining(j)
				if !sameFamily(got, want) {
					t.Errorf("device %d: concurrent enumeration diverged", j)
					return
				}
				if g.HasDenseMotionContaining(j, g.Ids(), 2) != oracle.HasDenseMotionContaining(j, oracle.Ids(), 2) {
					t.Errorf("device %d: HasDenseMotionContaining diverged", j)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
