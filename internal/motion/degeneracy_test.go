package motion

import (
	"testing"

	"anomalia/internal/stats"
)

// TestDegeneracyMatchesPivotBK: the degeneracy-ordered enumeration must
// produce exactly the same maximal-motion family as the pivoting variant
// and the sliding windows, across figures and random geometry.
func TestDegeneracyMatchesPivotBK(t *testing.T) {
	t.Parallel()

	// Paper figures first.
	for _, build := range []func(testing.TB) (*Pair, float64){
		func(tb testing.TB) (*Pair, float64) { return figure1Pair(tb) },
		func(tb testing.TB) (*Pair, float64) { return figure2Pair(tb) },
		func(tb testing.TB) (*Pair, float64) { return figure3Pair(tb) },
	} {
		pair, r := build(t)
		g := NewGraph(pair, allIds(pair.N()), r)
		if want, got := g.MaximalMotions(), g.MaximalMotionsDegeneracy(); !sameFamily(want, got) {
			t.Fatalf("figure: degeneracy %v != pivot %v", got, want)
		}
	}

	rng := stats.NewRNG(515)
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(30)
		pair := randomPair(t, rng, n, 2, 0.3)
		const r = 0.05
		g := NewGraph(pair, allIds(n), r)
		want := g.MaximalMotions()
		got := g.MaximalMotionsDegeneracy()
		if !sameFamily(want, got) {
			t.Fatalf("trial %d: degeneracy %v != pivot %v", trial, got, want)
		}
	}
}

func TestDegeneracyEmptyGraph(t *testing.T) {
	t.Parallel()

	pair, r := figure1Pair(t)
	g := NewGraph(pair, nil, r)
	if got := g.MaximalMotionsDegeneracy(); got != nil {
		t.Errorf("empty graph produced %v", got)
	}
}

// BenchmarkEnumerationVariants compares the three maximal-motion
// enumeration algorithms on a sparse fleet-scale neighbourhood graph.
func BenchmarkEnumerationVariants(b *testing.B) {
	rng := stats.NewRNG(9)
	pair := randomPair(b, rng, 400, 2, 1.0)
	const r = 0.02
	ids := allIds(400)
	b.Run("pivot", func(b *testing.B) {
		g := NewGraph(pair, ids, r)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = g.MaximalMotions()
		}
	})
	b.Run("degeneracy", func(b *testing.B) {
		g := NewGraph(pair, ids, r)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = g.MaximalMotionsDegeneracy()
		}
	})
	b.Run("sliding", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = SlidingWindowMotions(pair, ids, r)
		}
	})
}
