package motion

import (
	"anomalia/internal/sets"
)

// This file implements the paper's Algorithm 2: enumeration of maximal
// r-consistent motions by sliding two width-2r windows (one per state)
// along each of the d dimensions. Concatenating the coordinates at times
// k-1 and k turns the problem into: enumerate the maximal sets of points
// in R^{2d} that fit inside an axis-aligned hypercube of side 2r. The
// recursion anchors a window at each candidate coordinate per dimension
// (the window lower edge always coincides with some member's coordinate)
// and keeps only inclusion-maximal outcomes, mirroring lines 15–17 of
// Algorithm 2 where subsumed sets are replaced.

// slidingEnum carries the shared state of one enumeration.
type slidingEnum struct {
	coords  [][]float64 // [local index][2d concatenated coords]
	dims    int
	width   float64 // 2r
	anchor  int     // local index that must belong to every set, or -1
	results []*sets.Bits
	keys    map[string]struct{}
}

// SlidingWindowMotions enumerates all maximal r-consistent motions among
// ids using the paper's Algorithm 2 window sweep. Results are sorted
// device-id sets in deterministic order. This is the reference
// implementation; Graph.MaximalMotions is the Bron–Kerbosch equivalent.
func SlidingWindowMotions(p *Pair, ids []int, r float64) [][]int {
	return slidingWindow(p, ids, r, -1)
}

// SlidingWindowMotionsContaining enumerates the maximal motions that
// include device j (the paper's j.maxMotions, which only slides windows
// over positions covering j). Returns nil when j is not among ids.
func SlidingWindowMotionsContaining(p *Pair, ids []int, r float64, j int) [][]int {
	return slidingWindow(p, ids, r, j)
}

func slidingWindow(p *Pair, ids []int, r float64, j int) [][]int {
	clean := make([]int, 0, len(ids))
	for _, id := range ids {
		if id >= 0 && id < p.N() {
			clean = append(clean, id)
		}
	}
	clean = sets.Canon(clean)
	m := len(clean)
	if m == 0 {
		return nil
	}
	d := p.Dim()
	e := &slidingEnum{
		coords: make([][]float64, m),
		dims:   2 * d,
		width:  2 * r,
		anchor: -1,
		keys:   make(map[string]struct{}),
	}
	for li, id := range clean {
		row := make([]float64, 0, 2*d)
		row = append(row, p.Prev.At(id)...)
		row = append(row, p.Cur.At(id)...)
		e.coords[li] = row
		if id == j {
			e.anchor = li
		}
	}
	if j >= 0 && e.anchor < 0 {
		return nil
	}
	all := sets.NewBits(m)
	for li := 0; li < m; li++ {
		all.Add(li)
	}
	e.sweep(all, 0)

	// Keep only inclusion-maximal results.
	maximal := antichain(e.results)
	out := make([][]int, 0, len(maximal))
	for _, b := range maximal {
		idsOut := make([]int, 0, b.Len())
		b.ForEach(func(li int) bool {
			idsOut = append(idsOut, clean[li])
			return true
		})
		out = append(out, idsOut)
	}
	sets.SortSets(out)
	return out
}

// sweep slides the window along dimension dim over the candidate set.
func (e *slidingEnum) sweep(cand *sets.Bits, dim int) {
	if dim == e.dims {
		key := cand.Key()
		if _, seen := e.keys[key]; !seen {
			e.keys[key] = struct{}{}
			e.results = append(e.results, cand.Clone())
		}
		return
	}
	// Collect candidate window anchors: each member's coordinate is a
	// potential lower edge for the window [x, x+2r].
	var anchors []float64
	cand.ForEach(func(li int) bool {
		anchors = append(anchors, e.coords[li][dim])
		return true
	})
	subs := make([]*sets.Bits, 0, len(anchors))
	for _, x := range anchors {
		if e.anchor >= 0 {
			// The window must cover the anchored device's coordinate.
			cj := e.coords[e.anchor][dim]
			if cj < x || cj > x+e.width {
				continue
			}
		}
		sub := sets.NewBits(cand.Universe())
		cand.ForEach(func(li int) bool {
			c := e.coords[li][dim]
			if c >= x && c <= x+e.width {
				sub.Add(li)
			}
			return true
		})
		if sub.Empty() {
			continue
		}
		subs = append(subs, sub)
	}
	// Within one level, dominated (subset) windows can never produce a
	// maximal set that the dominating window cannot; prune them.
	for _, sub := range antichain(subs) {
		e.sweep(sub, dim+1)
	}
}

// antichain removes duplicates and strict subsets, keeping only the
// inclusion-maximal bitsets.
func antichain(family []*sets.Bits) []*sets.Bits {
	var out []*sets.Bits
	for _, b := range family {
		dominated := false
		for _, o := range out {
			if b.SubsetOf(o) {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		// Remove members strictly contained in b.
		kept := out[:0]
		for _, o := range out {
			if !o.SubsetOf(b) {
				kept = append(kept, o)
			}
		}
		out = append(kept, b)
	}
	return out
}
