package motion

import (
	"fmt"
	"math"
	"testing"

	"anomalia/internal/stats"
)

// sameGraph fails the test unless the two graphs agree on vertices,
// every edge, every degree, and clique membership of sampled id sets —
// the full accessor surface the rest of the module reads adjacency
// through.
func sameGraph(t *testing.T, label string, rng *stats.RNG, got, want *Graph) {
	t.Helper()
	sameAdjacency(t, label, got, want)
	for _, id := range want.Ids() {
		if g, w := got.Degree(id), want.Degree(id); g != w {
			t.Fatalf("%s: Degree(%d) = %d, want %d", label, id, g, w)
		}
	}
	if got.Degree(-1) != -1 || got.Degree(1<<30) != -1 {
		t.Fatalf("%s: Degree of non-vertex is not -1", label)
	}
	// IsClique parity on sampled sets: actual motions (cliques by
	// construction), random id sets, and sets with a non-vertex.
	ids := want.Ids()
	for trial := 0; trial < 20; trial++ {
		size := 1 + rng.Intn(5)
		sample := make([]int, size)
		for i := range sample {
			sample[i] = ids[rng.Intn(len(ids))]
		}
		if g, w := got.IsClique(sample), want.IsClique(sample); g != w {
			t.Fatalf("%s: IsClique(%v) = %v, want %v", label, sample, g, w)
		}
	}
	if got.IsClique([]int{ids[0], -7}) {
		t.Fatalf("%s: IsClique accepted a non-vertex", label)
	}
}

// sameMotionFamilies fails unless every motion-enumeration entry point
// agrees between the two graphs, including the bitset representation of
// MaximalMotionsContainingSets (which must be over graph-local indices
// in both adjacency modes).
func sameMotionFamilies(t *testing.T, label string, got, want *Graph) {
	t.Helper()
	gm, wm := got.MaximalMotions(), want.MaximalMotions()
	if !sameFamily(gm, wm) {
		t.Fatalf("%s: MaximalMotions disagree:\n got %v\nwant %v", label, gm, wm)
	}
	gd := got.MaximalMotionsDegeneracy()
	if !sameFamily(gd, wm) {
		t.Fatalf("%s: MaximalMotionsDegeneracy disagrees:\n got %v\nwant %v", label, gd, wm)
	}
	for _, j := range want.Ids() {
		gids, gbits := got.MaximalMotionsContainingSets(j)
		wids, _ := want.MaximalMotionsContainingSets(j)
		if !sameFamily(gids, wids) {
			t.Fatalf("%s: MaximalMotionsContaining(%d) disagree:\n got %v\nwant %v", label, j, gids, wids)
		}
		for i, mo := range gids {
			back := got.toIds(gbits[i])
			if len(back) != len(mo) {
				t.Fatalf("%s: device %d motion %d: bitset has %d members, ids %d", label, j, i, len(back), len(mo))
			}
			for k := range mo {
				if back[k] != mo[k] {
					t.Fatalf("%s: device %d motion %d: bitset %v != ids %v", label, j, i, back, mo)
				}
			}
		}
	}
}

// TestSparseMatchesDense: the CSR-backed graph must agree with the
// all-pairs dense oracle on the full read API and every enumeration,
// across radii edge cases, dimensions, and the placements of the
// grid-vs-allpairs harness (uniform, clustered, boundary-snapped,
// coincident) — plus sparse id subsets and worker counts from 1 to
// beyond the cell count.
func TestSparseMatchesDense(t *testing.T) {
	t.Parallel()

	rng := stats.NewRNG(20260728)
	radii := []float64{0, 1e-9, 0.001, 0.01, 0.03, 0.1, 0.2499999}
	for trial := 0; trial < 18; trial++ {
		n := 260 + rng.Intn(160)
		d := 1 + rng.Intn(3)
		r := radii[trial%len(radii)]

		var pair *Pair
		switch trial % 3 {
		case 0: // uniform over the whole hypercube
			pair = randomPair(t, rng, n, d, 1.0)
		case 1: // clustered into a tight box so cells are crowded
			pair = randomPair(t, rng, n, d, math.Max(4*r, 0.05))
		default: // boundary-snapped with motion across the window
			pair = boundaryPair(t, rng, n, d, r, 3*r+1e-6)
		}
		for j := 0; j+1 < n; j += n / 4 {
			if err := pair.Prev.Set(j+1, pair.Prev.At(j)); err != nil {
				t.Fatal(err)
			}
			if err := pair.Cur.Set(j+1, pair.Cur.At(j)); err != nil {
				t.Fatal(err)
			}
		}

		label := fmt.Sprintf("trial %d (n=%d d=%d r=%v)", trial, n, d, r)
		ids := allIds(n)
		oracle := newGraphAllPairs(pair, ids, r)
		workers := 1 + trial%5
		sparse := newGraphSparse(pair, ids, r, workers)
		if !sparse.Sparse() {
			t.Fatalf("%s: forced sparse build is not in sparse mode", label)
		}
		sameGraph(t, label, rng, sparse, oracle)
		sameMotionFamilies(t, label, sparse, oracle)

		// Sparse id subsets (the realistic abnormal-set shape) must agree
		// too, including out-of-range ids that both builds discard.
		subset := make([]int, 0, n/2)
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.5 {
				subset = append(subset, j)
			}
		}
		subset = append(subset, -3, n+17)
		sameGraph(t, label+" subset", rng,
			newGraphSparse(pair, subset, r, workers), newGraphAllPairs(pair, subset, r))
	}
}

// TestSparseMatchesDenseHighDimension: when the geometry rules the grid
// walk out, the sparse build must stripe an all-pairs scan and still
// agree with the dense oracle.
func TestSparseMatchesDenseHighDimension(t *testing.T) {
	t.Parallel()

	rng := stats.NewRNG(17)
	n := 300
	pair := randomPair(t, rng, n, 9, 0.25)
	r := 0.05
	oracle := newGraphAllPairs(pair, allIds(n), r)
	for _, workers := range []int{1, 3} {
		sparse := newGraphSparse(pair, allIds(n), r, workers)
		if !sparse.Sparse() {
			t.Fatal("forced sparse build is not in sparse mode")
		}
		sameGraph(t, fmt.Sprintf("high-dim workers=%d", workers), rng, sparse, oracle)
		sameMotionFamilies(t, fmt.Sprintf("high-dim workers=%d", workers), sparse, oracle)
	}
}

// TestSparseHasDenseMotionContaining: parity of the Theorem-7 primitive
// across representations, over random allowed sets and thresholds.
func TestSparseHasDenseMotionContaining(t *testing.T) {
	t.Parallel()

	rng := stats.NewRNG(4242)
	for trial := 0; trial < 12; trial++ {
		n := 260 + rng.Intn(100)
		r := []float64{0.02, 0.05, 0.1}[trial%3]
		pair := randomPair(t, rng, n, 2, math.Max(6*r, 0.2))
		ids := allIds(n)
		oracle := newGraphAllPairs(pair, ids, r)
		sparse := newGraphSparse(pair, ids, r, 1+trial%4)
		for probe := 0; probe < 30; probe++ {
			j := rng.Intn(n)
			allowed := make([]int, 0, n/3)
			for v := 0; v < n; v++ {
				if rng.Float64() < 0.3 {
					allowed = append(allowed, v)
				}
			}
			tau := 1 + rng.Intn(4)
			g := sparse.HasDenseMotionContaining(j, allowed, tau)
			w := oracle.HasDenseMotionContaining(j, allowed, tau)
			if g != w {
				t.Fatalf("trial %d: HasDenseMotionContaining(%d, |allowed|=%d, tau=%d) = %v, want %v",
					trial, j, len(allowed), tau, g, w)
			}
		}
	}
}

// TestNewGraphCrossoverBoundary pins the production dispatch at the
// dense/sparse crossover: one vertex below sparseMinVertices NewGraph
// stays dense, at it NewGraph goes sparse, and both sides agree with
// the dense grid build on the full API.
func TestNewGraphCrossoverBoundary(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("crossover graphs are thousands of vertices")
	}

	rng := stats.NewRNG(555)
	r := 0.01
	for _, n := range []int{sparseMinVertices - 1, sparseMinVertices} {
		pair := randomPair(t, rng, n, 2, 1.0)
		g := NewGraph(pair, allIds(n), r)
		wantSparse := n >= sparseMinVertices
		if g.Sparse() != wantSparse {
			t.Fatalf("n=%d: Sparse() = %v, want %v", n, g.Sparse(), wantSparse)
		}
		oracle := newGraphGrid(pair, allIds(n), r)
		label := fmt.Sprintf("crossover n=%d", n)
		sameAdjacency(t, label, g, oracle)
		for _, id := range []int{0, 1, n / 2, n - 1} {
			if gd, wd := g.Degree(id), oracle.Degree(id); gd != wd {
				t.Fatalf("%s: Degree(%d) = %d, want %d", label, id, gd, wd)
			}
			gm := g.MaximalMotionsContaining(id)
			wm := oracle.MaximalMotionsContaining(id)
			if !sameFamily(gm, wm) {
				t.Fatalf("%s: MaximalMotionsContaining(%d) disagree", label, id)
			}
		}
	}
}

// TestSparseEmptyAndTinyGraphs: the sparse machinery must tolerate the
// degenerate shapes the production dispatch never sends it.
func TestSparseEmptyAndTinyGraphs(t *testing.T) {
	t.Parallel()

	rng := stats.NewRNG(3)
	pair := randomPair(t, rng, 8, 2, 0.1)
	empty := newGraphSparse(pair, nil, 0.05, 2)
	if empty.Len() != 0 {
		t.Fatalf("empty sparse graph has %d vertices", empty.Len())
	}
	if got := empty.MaximalMotionsDegeneracy(); len(got) != 0 {
		t.Fatalf("empty sparse graph enumerated %v", got)
	}
	one := newGraphSparse(pair, []int{3}, 0.05, 4)
	if got := one.MaximalMotions(); len(got) != 1 || len(got[0]) != 1 || got[0][0] != 3 {
		t.Fatalf("singleton sparse graph enumerated %v", got)
	}
	if !one.Adjacent(3, 3) || one.Adjacent(3, 4) {
		t.Fatal("singleton adjacency wrong")
	}
}
