package motion

import (
	"errors"
	"testing"

	"anomalia/internal/space"
)

func TestValidateRadius(t *testing.T) {
	t.Parallel()

	for _, r := range []float64{0, 0.1, 0.2499} {
		if err := ValidateRadius(r); err != nil {
			t.Errorf("ValidateRadius(%v) = %v, want nil", r, err)
		}
	}
	for _, r := range []float64{-0.01, 0.25, 1} {
		if err := ValidateRadius(r); !errors.Is(err, ErrRadius) {
			t.Errorf("ValidateRadius(%v) = %v, want ErrRadius", r, err)
		}
	}
}

func TestNewPairValidation(t *testing.T) {
	t.Parallel()

	a, err := space.NewState(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := space.NewState(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := space.NewState(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPair(a, b); !errors.Is(err, ErrMismatchedStates) {
		t.Errorf("size mismatch error = %v", err)
	}
	if _, err := NewPair(a, c); !errors.Is(err, ErrMismatchedStates) {
		t.Errorf("dim mismatch error = %v", err)
	}
	if _, err := NewPair(nil, a); !errors.Is(err, ErrMismatchedStates) {
		t.Errorf("nil state error = %v", err)
	}
	p, err := NewPair(a, a.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 3 || p.Dim() != 2 {
		t.Errorf("N/Dim = %d/%d", p.N(), p.Dim())
	}
}

func TestAdjacent(t *testing.T) {
	t.Parallel()

	prev, err := space.StateFromPoints([][]float64{{0.1}, {0.25}, {0.5}})
	if err != nil {
		t.Fatal(err)
	}
	cur, err := space.StateFromPoints([][]float64{{0.6}, {0.75}, {0.62}})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPair(prev, cur)
	if err != nil {
		t.Fatal(err)
	}
	const r = 0.1
	// 0-1: close at both times (0.15 <= 0.2).
	if !p.Adjacent(0, 1, r) {
		t.Error("0-1 must be adjacent")
	}
	// 0-2: far at prev (0.4), close at cur (0.02) -> not adjacent.
	if p.Adjacent(0, 2, r) {
		t.Error("0-2 must not be adjacent (far at k-1)")
	}
	// 1-2: close at prev (0.25), 0.25 > 0.2 -> not adjacent.
	if p.Adjacent(1, 2, r) {
		t.Error("1-2 must not be adjacent")
	}
	// Self-adjacency.
	if !p.Adjacent(1, 1, r) {
		t.Error("device must be adjacent to itself")
	}
}

func TestAdjacentBoundaryInclusive(t *testing.T) {
	t.Parallel()

	prev, err := space.StateFromPoints([][]float64{{0.1}, {0.3}})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPair(prev, prev.Clone())
	if err != nil {
		t.Fatal(err)
	}
	// Distance exactly 2r must count as adjacent (Definition 1 uses <=).
	if !p.Adjacent(0, 1, 0.1) {
		t.Error("distance exactly 2r must be adjacent")
	}
}

func TestConsistentAt(t *testing.T) {
	t.Parallel()

	s, err := space.StateFromPoints([][]float64{
		{0.1, 0.1}, {0.25, 0.1}, {0.1, 0.35}, {0.35, 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	const r = 0.1
	tests := []struct {
		name string
		ids  []int
		want bool
	}{
		{"empty", nil, true},
		{"singleton", []int{2}, true},
		{"pair within 2r", []int{0, 1}, true},
		{"pair beyond 2r on y", []int{0, 2}, false},
		{"triple too wide", []int{0, 1, 3}, false},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			if got := ConsistentAt(s, tt.ids, r); got != tt.want {
				t.Errorf("ConsistentAt(%v) = %v, want %v", tt.ids, got, tt.want)
			}
		})
	}
}

func TestConsistentMotionRequiresBothTimes(t *testing.T) {
	t.Parallel()

	prev, err := space.StateFromPoints([][]float64{{0.1}, {0.15}})
	if err != nil {
		t.Fatal(err)
	}
	curFar, err := space.StateFromPoints([][]float64{{0.1}, {0.9}})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPair(prev, curFar)
	if err != nil {
		t.Fatal(err)
	}
	if p.ConsistentMotion([]int{0, 1}, 0.1) {
		t.Error("motion must require consistency at both times")
	}
	p2, err := NewPair(prev, prev.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !p2.ConsistentMotion([]int{0, 1}, 0.1) {
		t.Error("consistent at both times must be a motion")
	}
}

func TestDenseHelpers(t *testing.T) {
	t.Parallel()

	if Dense(3, 3) {
		t.Error("|B| = τ must be sparse (Definition 4 uses >)")
	}
	if !Dense(4, 3) {
		t.Error("|B| = τ+1 must be dense")
	}
	motions := [][]int{{1}, {1, 2, 3, 4}, {5, 6}, {7, 8, 9, 10, 11}}
	dense := DenseOf(motions, 3)
	if len(dense) != 2 || len(dense[0]) != 4 || len(dense[1]) != 5 {
		t.Errorf("DenseOf = %v", dense)
	}
	if DenseOf(nil, 1) != nil {
		t.Error("DenseOf(nil) must be nil")
	}
}
