package motion

import (
	"reflect"
	"testing"

	"anomalia/internal/sets"
	"anomalia/internal/space"
	"anomalia/internal/stats"
)

// TestComponentsDecomposition: the decomposition must agree with a
// union-find oracle, number components by smallest vertex, keep member
// lists sorted, and assign ranks consistent with the member lists.
func TestComponentsDecomposition(t *testing.T) {
	t.Parallel()

	rng := stats.NewRNG(909)
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(60)
		pair := randomPair(t, rng, n, 2, 0.4)
		r := 0.02 + 0.06*rng.Float64()
		g := NewGraph(pair, allIds(n), r)
		cs := g.Components()

		// Union-find oracle over the adjacency.
		parent := make([]int, n)
		for i := range parent {
			parent[i] = i
		}
		var find func(int) int
		find = func(v int) int {
			if parent[v] != v {
				parent[v] = find(parent[v])
			}
			return parent[v]
		}
		for v := 0; v < n; v++ {
			g.forNeighbors(v, func(u int) bool {
				parent[find(v)] = find(u)
				return true
			})
		}
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				same := find(a) == find(b)
				if got := cs.Of(a) == cs.Of(b); got != same {
					t.Fatalf("trial %d: Of(%d)==Of(%d) = %v, oracle %v", trial, a, b, got, same)
				}
			}
		}

		// Numbering by smallest member, ascending; sorted members; ranks.
		prevMin := -1
		seen := 0
		for c := 0; c < cs.Count(); c++ {
			verts := cs.Verts(c)
			if len(verts) != cs.Size(c) || len(verts) == 0 {
				t.Fatalf("trial %d: component %d size mismatch", trial, c)
			}
			if int(verts[0]) <= prevMin {
				t.Fatalf("trial %d: components not numbered by smallest vertex", trial)
			}
			prevMin = int(verts[0])
			for i, v := range verts {
				if i > 0 && verts[i-1] >= v {
					t.Fatalf("trial %d: component %d members not sorted", trial, c)
				}
				if cs.Of(int(v)) != c || cs.Rank(int(v)) != i {
					t.Fatalf("trial %d: vertex %d misfiled", trial, v)
				}
			}
			seen += len(verts)
		}
		if seen != n || len(cs.AllVerts()) != n {
			t.Fatalf("trial %d: decomposition covers %d of %d vertices", trial, seen, n)
		}
		for c := 0; c < cs.Count(); c++ {
			if int(cs.AllVerts()[cs.Offset(c)]) != int(cs.Verts(c)[0]) {
				t.Fatalf("trial %d: Offset(%d) misaligned", trial, c)
			}
		}
	}
}

// TestWholeGraphComponent: the identity decomposition must be a single
// component with identity ranks — the reference-oracle contract.
func TestWholeGraphComponent(t *testing.T) {
	t.Parallel()

	rng := stats.NewRNG(11)
	pair := randomPair(t, rng, 25, 2, 0.4)
	g := NewGraph(pair, allIds(25), 0.05)
	cs := g.WholeGraphComponent()
	if cs.Count() != 1 || cs.Size(0) != 25 {
		t.Fatalf("Count/Size = %d/%d", cs.Count(), cs.Size(0))
	}
	for v := 0; v < 25; v++ {
		if cs.Of(v) != 0 || cs.Rank(v) != v || int(cs.Verts(0)[v]) != v {
			t.Fatalf("vertex %d not identity-mapped", v)
		}
	}

	empty := NewGraph(pair, nil, 0.05)
	if got := empty.WholeGraphComponent().Count(); got != 0 {
		t.Fatalf("empty graph Count = %d", got)
	}
}

// TestMaximalMotionsOfComponentMatchesPerDevice: the one-shot component
// enumeration must serve every member exactly the family the per-device
// enumeration reports — same id sets, same order, same projected
// bitsets.
func TestMaximalMotionsOfComponentMatchesPerDevice(t *testing.T) {
	t.Parallel()

	rng := stats.NewRNG(2024)
	for trial := 0; trial < 25; trial++ {
		n := 8 + rng.Intn(50)
		pair := randomPair(t, rng, n, 2, 0.4)
		r := 0.03 + 0.05*rng.Float64()
		g := NewGraph(pair, allIds(n), r)
		cs := g.Components()
		for c := 0; c < cs.Count(); c++ {
			moIds, moBits := g.MaximalMotionsOfComponent(c, cs)
			for _, mo := range moIds {
				if !g.IsClique(mo) {
					t.Fatalf("trial %d: reported non-clique %v", trial, mo)
				}
			}
			for i, v := range cs.Verts(c) {
				id := g.IDOf(int(v))
				wantIds, wantBits := g.MaximalMotionsContainingIn(id, cs)
				var gotIds [][]int
				var gotBits []*sets.Bits
				for mi := range moIds {
					if moBits[mi].Has(i) {
						gotIds = append(gotIds, moIds[mi])
						gotBits = append(gotBits, moBits[mi])
					}
				}
				if !reflect.DeepEqual(gotIds, wantIds) {
					t.Fatalf("trial %d device %d: component family %v != per-device %v",
						trial, id, gotIds, wantIds)
				}
				for mi := range gotBits {
					if !gotBits[mi].Equal(wantBits[mi]) || gotBits[mi].Universe() != wantBits[mi].Universe() {
						t.Fatalf("trial %d device %d: motion bitset %d differs", trial, id, mi)
					}
				}
			}
		}
	}
}

// TestMaximalMotionsOfComponentDenseOversized drives the oversized-
// component path of a dense-mode graph — the shape the density-adaptive
// build produces for edge-dense mass events (m above sparseMinVertices
// with a denseWorthwhile edge count) and that the CSR-only anchored
// fallback used to panic on. Devices are coincident at prev and sit in
// three group spots at cur, consecutive spots within 2r and the outer
// pair beyond it, so the single component of 3·group vertices carries
// exactly two maximal motions: groups 0∪1 and 1∪2.
func TestMaximalMotionsOfComponentDenseOversized(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("oversized dense component needs thousands of vertices")
	}

	const group = 1500
	n := 3 * group // > componentDenseMax
	r := 0.002
	prev, err := space.NewState(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := space.NewState(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := prev.Set(i, space.Point{0.2, 0.5}); err != nil {
			t.Fatal(err)
		}
		// Spot spacing 1.5r: adjacent spots within 2r, outer pair at 3r.
		x := 0.2 + float64(i/group)*1.5*r
		if err := cur.Set(i, space.Point{x, 0.5}); err != nil {
			t.Fatal(err)
		}
	}
	pair, err := NewPair(prev, cur)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGraph(pair, allIds(n), r)
	if g.Sparse() {
		t.Fatal("edge-dense fixture expected a dense-mode graph")
	}
	cs := g.Components()
	if cs.Count() != 1 || cs.Size(0) != n {
		t.Fatalf("fixture split into %d components", cs.Count())
	}
	moIds, moBits := g.MaximalMotionsOfComponent(0, cs)
	if len(moIds) != 2 {
		t.Fatalf("%d maximal motions, want the 2 overlapping group pairs", len(moIds))
	}
	for mi, lo := range []int{0, group} {
		mo := moIds[mi]
		if len(mo) != 2*group || mo[0] != lo || mo[len(mo)-1] != lo+2*group-1 {
			t.Fatalf("motion %d spans [%d..%d] (%d devices), want [%d..%d]",
				mi, mo[0], mo[len(mo)-1], len(mo), lo, lo+2*group-1)
		}
		if !g.IsClique(mo) {
			t.Fatalf("motion %d is not a clique", mi)
		}
		b := moBits[mi]
		if b.Universe() != n || b.Len() != 2*group || !b.Has(lo) || !b.Has(lo+2*group-1) {
			t.Fatalf("motion %d bitset malformed", mi)
		}
	}
	// The component family must serve each member exactly its per-device
	// family: a group-0 device (first motion only), a shared group-1
	// device (both), and a group-2 device (second only).
	for _, id := range []int{0, n / 2, n - 1} {
		wantIds, wantBits := g.MaximalMotionsContainingIn(id, cs)
		var gotIds [][]int
		var gotBits []*sets.Bits
		li, _ := g.Local(id)
		for mi := range moIds {
			if moBits[mi].Has(cs.Rank(li)) {
				gotIds = append(gotIds, moIds[mi])
				gotBits = append(gotBits, moBits[mi])
			}
		}
		if !reflect.DeepEqual(gotIds, wantIds) {
			t.Fatalf("device %d: component family differs from per-device family", id)
		}
		for mi := range gotBits {
			if !gotBits[mi].Equal(wantBits[mi]) || gotBits[mi].Universe() != wantBits[mi].Universe() {
				t.Fatalf("device %d: motion bitset %d differs", id, mi)
			}
		}
	}
}

// TestMaximalMotionsOfComponentAnchored drives the oversized-component
// path (anchored per-vertex enumeration): a chain of devices spaced so
// that only consecutive devices are adjacent forms one component larger
// than componentDenseMax whose maximal cliques are exactly the
// consecutive pairs.
func TestMaximalMotionsOfComponentAnchored(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("chain component needs thousands of vertices")
	}

	n := componentDenseMax + 150
	r := 0.00002
	step := 1.5 * r // within 2r of neighbours, beyond 2r of anyone else
	prev, err := space.NewState(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := space.NewState(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		p := space.Point{0.1 + float64(i)*step, 0.5}
		if err := prev.Set(i, p); err != nil {
			t.Fatal(err)
		}
		if err := cur.Set(i, p); err != nil {
			t.Fatal(err)
		}
	}
	pair, err := NewPair(prev, cur)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGraph(pair, allIds(n), r)
	if !g.Sparse() {
		t.Fatal("chain fixture expected a sparse-mode graph")
	}
	cs := g.Components()
	if cs.Count() != 1 || cs.Size(0) != n {
		t.Fatalf("chain split into %d components", cs.Count())
	}
	moIds, moBits := g.MaximalMotionsOfComponent(0, cs)
	if len(moIds) != n-1 {
		t.Fatalf("%d maximal motions, want %d consecutive pairs", len(moIds), n-1)
	}
	for i, mo := range moIds {
		if len(mo) != 2 || mo[0] != i || mo[1] != i+1 {
			t.Fatalf("motion %d = %v, want [%d %d]", i, mo, i, i+1)
		}
		if moBits[i].Universe() != n || !moBits[i].Has(i) || !moBits[i].Has(i+1) || moBits[i].Len() != 2 {
			t.Fatalf("motion %d bitset %v malformed", i, moBits[i])
		}
	}
}
