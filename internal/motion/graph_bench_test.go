package motion

import (
	"fmt"
	"testing"

	"anomalia/internal/space"
	"anomalia/internal/stats"
)

// benchRadius follows the paper's §VII-A dimensioning at the benchmark's
// base scales: r = 0.01 keeps the expected error-ball population at the
// paper's operating point for the fleets up to n = 100k that the
// BENCH_*.json trajectory has tracked since PR 2.
const benchRadius = 0.01

// benchMillionRadius applies the same dimensioning rule at n = 1M: the
// radius shrinks with the fleet ((2r)² · n held at the paper's level, the
// rule BenchmarkCharacterizeLargeFleet documents), giving r = 0.001 —
// without it a million uniform devices at r = 0.01 would carry ~10⁹
// edges and no adjacency representation could hold the window.
const benchMillionRadius = 0.001

// benchClusterPop fixes the per-cluster population of the "clustered"
// placement at 500 devices — the §VII-A operating point: a massive event
// touches a bounded neighbourhood, so local density stays constant as
// the fleet grows and the cluster count scales with n instead. (Up to
// n = 10k this matches the 20 fixed clusters the trajectory recorded
// since PR 2; from n = 100k the old shape would grow per-cluster
// population — and the edge count — linearly with n, which no sparse
// representation can absorb and no dimensioned deployment produces.)
const benchClusterPop = 500

// benchGraphPair builds one observation window for the construction
// benchmarks. Placement "sparse" spreads devices uniformly over the
// hypercube (the paper's S_0); "clustered" packs them into tight
// clusters of side 6r and ~benchClusterPop devices each, the shape of a
// window dominated by massive events, where cells are crowded and the
// grid prunes least.
func benchGraphPair(tb testing.TB, n int, placement string, radius float64) *Pair {
	tb.Helper()
	rng := stats.NewRNG(int64(n) + int64(len(placement)))
	prev, err := space.NewState(n, 2)
	if err != nil {
		tb.Fatal(err)
	}
	switch placement {
	case "sparse":
		prev.Uniform(rng.Float64)
	case "clustered":
		clusters := n / benchClusterPop
		if clusters < 20 {
			clusters = 20
		}
		centers := make([]space.Point, clusters)
		for i := range centers {
			centers[i] = space.Point{rng.Float64(), rng.Float64()}
		}
		for j := 0; j < n; j++ {
			c := centers[j%clusters]
			pt := space.Point{
				c[0] + (2*rng.Float64()-1)*3*radius,
				c[1] + (2*rng.Float64()-1)*3*radius,
			}
			if err := prev.Set(j, pt.Clamp()); err != nil {
				tb.Fatal(err)
			}
		}
	default:
		tb.Fatalf("unknown placement %q", placement)
	}
	cur := prev.Clone()
	for j := 0; j < n; j++ {
		pt := cur.AtClone(j)
		for i := range pt {
			pt[i] += (2*rng.Float64() - 1) * radius
		}
		if err := cur.Set(j, pt); err != nil {
			tb.Fatal(err)
		}
	}
	pair, err := NewPair(prev, cur)
	if err != nil {
		tb.Fatal(err)
	}
	return pair
}

// BenchmarkNewGraph measures motion-graph construction: the production
// grid-indexed path (dense bitset rows up to sparseMinVertices, the
// parallel CSR build beyond — so n >= 10k entries exercise the hybrid's
// sparse side) against the recorded all-pairs baseline, at growing
// vertex counts and both placements. The all-pairs baseline stops at
// n=10k — beyond that its quadratic scan is the point of the exercise —
// and the n=1M sparse entry is skipped under -short (it is the
// million-device headline scripts/bench.sh records in the full run).
// Run with -benchmem; scripts/bench.sh records the results in the
// BENCH_*.json trajectory.
func BenchmarkNewGraph(b *testing.B) {
	for _, placement := range []string{"sparse", "clustered"} {
		for _, n := range []int{1_000, 10_000, 100_000} {
			pair := benchGraphPair(b, n, placement, benchRadius)
			ids := allIds(n)
			b.Run(fmt.Sprintf("grid/%s/n=%d", placement, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					NewGraph(pair, ids, benchRadius)
				}
			})
			if n > 10_000 {
				continue
			}
			b.Run(fmt.Sprintf("allpairs/%s/n=%d", placement, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					newGraphAllPairs(pair, ids, benchRadius)
				}
			})
		}
	}
	b.Run("grid/sparse/n=1000000", func(b *testing.B) {
		if testing.Short() {
			b.Skip("million-device window build is for the full bench run")
		}
		pair := benchGraphPair(b, 1_000_000, "sparse", benchMillionRadius)
		ids := allIds(1_000_000)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			NewGraph(pair, ids, benchMillionRadius)
		}
	})
}

// TestNewGraphGridAllocs pins the allocation profile of the dense grid
// build: a small constant — the slab-backed adjacency rows, the flat
// grid index's slabs and the walk bookkeeping — independent of vertex,
// cell and edge count alike (~20 measured; the map-based index plus
// per-row bitsets this replaced paid thousands at this size).
func TestNewGraphGridAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is slow under -short")
	}
	const n = 2000
	pair := benchGraphPair(t, n, "sparse", benchRadius)
	ids := allIds(n)
	got := testing.AllocsPerRun(5, func() {
		newGraphGrid(pair, ids, benchRadius)
	})
	if limit := 128.0; got > limit {
		t.Errorf("grid build allocates %.0f times for %d vertices, want <= %.0f", got, n, limit)
	}
}

// TestNewGraphSparseAllocs pins the allocation profile of the sparse
// CSR build: a small constant plus one edge-buffer chunk per ~32k edges
// and a few slices per worker — emphatically not per vertex, per cell
// or per edge (~34 measured at this size; the map-based grid index
// alone paid ~6 per occupied cell before the flat rewrite). The CSR
// arena itself is 2 allocations however many edges the window carries.
func TestNewGraphSparseAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is slow under -short")
	}
	const n = 8192
	pair := benchGraphPair(t, n, "sparse", benchRadius)
	ids := allIds(n)
	got := testing.AllocsPerRun(5, func() {
		NewGraph(pair, ids, benchRadius)
	})
	if limit := 512.0; got > limit {
		t.Errorf("sparse build allocates %.0f times for %d vertices, want <= %.0f", got, n, limit)
	}
}
