package motion

import (
	"fmt"
	"testing"

	"anomalia/internal/space"
	"anomalia/internal/stats"
)

// benchRadius follows the paper's §VII-A dimensioning: the radius
// shrinks with the fleet so the expected 2r-ball population stays at
// the paper's operating point.
const benchRadius = 0.01

// benchGraphPair builds one observation window for the construction
// benchmarks. Placement "sparse" spreads devices uniformly over the
// hypercube (the paper's S_0); "clustered" packs them into 20 tight
// clusters of side 6r, the shape of a window dominated by massive
// events, where cells are crowded and the grid prunes least.
func benchGraphPair(tb testing.TB, n int, placement string) *Pair {
	tb.Helper()
	rng := stats.NewRNG(int64(n) + int64(len(placement)))
	prev, err := space.NewState(n, 2)
	if err != nil {
		tb.Fatal(err)
	}
	switch placement {
	case "sparse":
		prev.Uniform(rng.Float64)
	case "clustered":
		const clusters = 20
		centers := make([]space.Point, clusters)
		for i := range centers {
			centers[i] = space.Point{rng.Float64(), rng.Float64()}
		}
		for j := 0; j < n; j++ {
			c := centers[j%clusters]
			pt := space.Point{
				c[0] + (2*rng.Float64()-1)*3*benchRadius,
				c[1] + (2*rng.Float64()-1)*3*benchRadius,
			}
			if err := prev.Set(j, pt.Clamp()); err != nil {
				tb.Fatal(err)
			}
		}
	default:
		tb.Fatalf("unknown placement %q", placement)
	}
	cur := prev.Clone()
	for j := 0; j < n; j++ {
		pt := cur.AtClone(j)
		for i := range pt {
			pt[i] += (2*rng.Float64() - 1) * benchRadius
		}
		if err := cur.Set(j, pt); err != nil {
			tb.Fatal(err)
		}
	}
	pair, err := NewPair(prev, cur)
	if err != nil {
		tb.Fatal(err)
	}
	return pair
}

// BenchmarkNewGraph measures motion-graph construction: the grid build
// against the recorded all-pairs baseline, at growing vertex counts and
// both placements. The all-pairs baseline stops at n=10k — beyond that
// its quadratic scan is the point of the exercise. Run with -benchmem;
// scripts/bench.sh records the results in the BENCH_*.json trajectory.
func BenchmarkNewGraph(b *testing.B) {
	for _, placement := range []string{"sparse", "clustered"} {
		for _, n := range []int{1_000, 10_000, 100_000} {
			pair := benchGraphPair(b, n, placement)
			ids := allIds(n)
			b.Run(fmt.Sprintf("grid/%s/n=%d", placement, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					newGraphGrid(pair, ids, benchRadius)
				}
			})
			if n > 10_000 {
				continue
			}
			b.Run(fmt.Sprintf("allpairs/%s/n=%d", placement, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					newGraphAllPairs(pair, ids, benchRadius)
				}
			})
		}
	}
}

// TestNewGraphGridAllocs pins the allocation profile of the grid build:
// bounded by a small constant per vertex (vertex bitsets, cell lists,
// local-index lists), independent of edge count — the property the
// -benchmem columns of BenchmarkNewGraph track over time.
func TestNewGraphGridAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is slow under -short")
	}
	const n = 2000
	pair := benchGraphPair(t, n, "sparse")
	ids := allIds(n)
	got := testing.AllocsPerRun(5, func() {
		newGraphGrid(pair, ids, benchRadius)
	})
	// 2 allocations per vertex for the fixed bookkeeping (adjacency
	// bitset + its words array) plus cell/map overhead; 8n is generous
	// headroom so only a structural regression (e.g. per-candidate-pair
	// allocation) trips it.
	if limit := float64(8 * n); got > limit {
		t.Errorf("grid build allocates %.0f times for %d vertices, want <= %.0f", got, n, limit)
	}
}
