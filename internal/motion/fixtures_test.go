package motion

import (
	"testing"

	"anomalia/internal/space"
	"anomalia/internal/stats"
)

// Fixtures reconstructing the paper's illustrative figures. Device
// numbering is 0-based here; the paper's device i is index i-1.

// figure1Pair reproduces Figure 1: six devices in a 1-dimensional QoS
// space with exactly two maximal r-consistent sets B1 = {1,2,3,4} and
// B2 = {1,2,3,5,6} (paper numbering), r = 0.1. Both states are identical
// so motions coincide with static consistent sets.
func figure1Pair(t testing.TB) (*Pair, float64) {
	t.Helper()
	coords := [][]float64{
		{0.20}, // 1
		{0.25}, // 2
		{0.28}, // 3
		{0.10}, // 4
		{0.32}, // 5
		{0.35}, // 6
	}
	prev, err := space.StateFromPoints(coords)
	if err != nil {
		t.Fatal(err)
	}
	cur := prev.Clone()
	p, err := NewPair(prev, cur)
	if err != nil {
		t.Fatal(err)
	}
	return p, 0.1
}

// figure1Maximal is the expected family for figure1Pair (0-based ids).
var figure1Maximal = [][]int{
	{0, 1, 2, 3},    // B1 = {1,2,3,4}
	{0, 1, 2, 4, 5}, // B2 = {1,2,3,5,6}
}

// figure2Pair reproduces Figure 2: ten devices, 1-d QoS, maximal motions
// C1={1,2,3}, C2={2,3,4}, C3={5,...,9}, C4={10} (paper numbering), τ = 3,
// r = 0.1. The second state is a uniform translation, so adjacency is
// preserved across the window.
func figure2Pair(t testing.TB) (*Pair, float64) {
	t.Helper()
	prevCoords := [][]float64{
		{0.10}, // 1
		{0.20}, // 2
		{0.25}, // 3
		{0.40}, // 4
		{0.65}, // 5
		{0.67}, // 6
		{0.70}, // 7
		{0.72}, // 8
		{0.75}, // 9
		{0.99}, // 10
	}
	prev, err := space.StateFromPoints(prevCoords)
	if err != nil {
		t.Fatal(err)
	}
	cur := prev.Clone()
	for j := 0; j < cur.Len(); j++ {
		p := cur.AtClone(j)
		p[0] -= 0.05
		if err := cur.Set(j, p); err != nil {
			t.Fatal(err)
		}
	}
	pair, err := NewPair(prev, cur)
	if err != nil {
		t.Fatal(err)
	}
	return pair, 0.1
}

// figure2Maximal is the expected family for figure2Pair (0-based ids).
var figure2Maximal = [][]int{
	{0, 1, 2},       // C1 = {1,2,3}
	{1, 2, 3},       // C2 = {2,3,4}
	{4, 5, 6, 7, 8}, // C3 = {5,...,9}
	{9},             // C4 = {10}
}

// figure3Pair reproduces Figure 3 (the ACP impossibility scenario): five
// devices with maximal motions C1={1,2,3,4} and C2={2,3,4,5}, τ = 3,
// r = 0.1.
func figure3Pair(t testing.TB) (*Pair, float64) {
	t.Helper()
	prevCoords := [][]float64{
		{0.10}, // 1
		{0.20}, // 2
		{0.25}, // 3
		{0.30}, // 4
		{0.40}, // 5
	}
	prev, err := space.StateFromPoints(prevCoords)
	if err != nil {
		t.Fatal(err)
	}
	cur := prev.Clone()
	for j := 0; j < cur.Len(); j++ {
		p := cur.AtClone(j)
		p[0] += 0.05
		if err := cur.Set(j, p); err != nil {
			t.Fatal(err)
		}
	}
	pair, err := NewPair(prev, cur)
	if err != nil {
		t.Fatal(err)
	}
	return pair, 0.1
}

// figure3Maximal is the expected family for figure3Pair (0-based ids).
var figure3Maximal = [][]int{
	{0, 1, 2, 3}, // C1 = {1,2,3,4}
	{1, 2, 3, 4}, // C2 = {2,3,4,5}
}

// randomPair builds a random pair of states for property tests: n devices
// in d dimensions confined to a box of the given side so that interesting
// adjacency structure appears.
func randomPair(t testing.TB, r *stats.RNG, n, d int, side float64) *Pair {
	t.Helper()
	prev, err := space.NewState(n, d)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := space.NewState(n, d)
	if err != nil {
		t.Fatal(err)
	}
	prev.Uniform(func() float64 { return r.Float64() * side })
	cur.Uniform(func() float64 { return r.Float64() * side })
	pair, err := NewPair(prev, cur)
	if err != nil {
		t.Fatal(err)
	}
	return pair
}

func allIds(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

func sameFamily(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}
