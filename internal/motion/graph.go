package motion

import (
	"sort"
	"sync"

	"anomalia/internal/grid"
	"anomalia/internal/sets"
)

// Graph is the motion graph restricted to a subset of devices (typically
// the abnormal set A_k): vertices are devices, edges join devices within
// 2r at both times. Cliques of this graph are exactly the r-consistent
// motions among the subset.
//
// Vertices are stored under local indices 0..m-1; the public API speaks
// device ids.
type Graph struct {
	ids   []int       // local index -> device id, sorted
	local map[int]int // device id -> local index
	adj   []*sets.Bits
	r     float64
	pair  *Pair
	// bkPool recycles enumeration scratch across the many per-device
	// clique enumerations of a fleet pass; sync.Pool keeps concurrent
	// enumerations (parallel characterization) safe.
	bkPool sync.Pool
}

// gridBuildMinVertices is the vertex count at which NewGraph switches
// from the all-pairs build to the grid-indexed build. Below it the
// quadratic scan — a tight loop of uniform-norm comparisons — is
// cheaper than building the cell index (measured crossover is a few
// hundred vertices; see BenchmarkNewGraph). Both builds produce
// identical adjacency (TestNewGraphGridMatchesAllPairs).
const gridBuildMinVertices = 256

// gridBuildReach is the Chebyshev cell distance the grid build pairs
// cells across. With cell side exactly 2r an edge's endpoints share a
// cell or sit in axis-adjacent cells in exact arithmetic; reach 2 keeps
// that guarantee under floating point, where a quotient within an ulp
// of a cell boundary can shift either endpoint's computed cell by one.
const gridBuildReach = 2

// gridBuildMaxRes caps the grid resolution the floating-point safety
// argument for gridBuildReach covers (quotient errors stay far below
// one cell while res*2^-52 is negligible). Radii tiny enough to exceed
// it fall back to the all-pairs build.
const gridBuildMaxRes = 1 << 25

// NewGraph builds the motion graph over the given device ids (deduplicated
// and sorted). The caller is responsible for r being valid; ids outside
// the pair's device range are ignored.
//
// Construction is O(m * neighbours): vertices are bucketed into a grid of
// cells with side 2r over the k-1 positions and only pairs from nearby
// cells are distance-tested, instead of all m^2 pairs. Small or
// degenerate inputs use the plain all-pairs scan; the resulting
// adjacency is identical either way.
func NewGraph(p *Pair, ids []int, r float64) *Graph {
	g := newGraphVertices(p, ids, r)
	prm := grid.ForRadius(r)
	if len(g.ids) < gridBuildMinVertices || prm.Res > gridBuildMaxRes ||
		!gridBuildWorthwhile(p.Dim(), len(g.ids)) {
		g.buildAllPairs()
	} else {
		g.buildGrid(prm)
	}
	return g
}

// gridBuildWorthwhile reports whether the cell-pair walk can beat the
// all-pairs scan: the (2*reach+1)^d neighbour-offset fan-out grows
// exponentially with the dimension, so once it exceeds the vertex count
// the walk itself dominates (and at space.MaxDim it would be the whole
// build's undoing).
func gridBuildWorthwhile(dim, m int) bool {
	return grid.NeighborCells(dim, gridBuildReach, m) <= m
}

// newGraphVertices sets up the vertex bookkeeping shared by both builds.
func newGraphVertices(p *Pair, ids []int, r float64) *Graph {
	clean := make([]int, 0, len(ids))
	for _, id := range ids {
		if id >= 0 && id < p.N() {
			clean = append(clean, id)
		}
	}
	clean = sets.Canon(clean)
	m := len(clean)
	g := &Graph{
		ids:   clean,
		local: make(map[int]int, m),
		adj:   make([]*sets.Bits, m),
		r:     r,
		pair:  p,
	}
	for li, id := range clean {
		g.local[id] = li
		g.adj[li] = sets.NewBits(m)
	}
	g.bkPool.New = func() any { return &bkScratch{} }
	return g
}

// getScratch leases enumeration scratch; return it with putScratch.
func (g *Graph) getScratch() *bkScratch   { return g.bkPool.Get().(*bkScratch) }
func (g *Graph) putScratch(sc *bkScratch) { g.bkPool.Put(sc) }

// buildAllPairs fills the adjacency by testing every vertex pair — the
// reference O(m^2) build, kept for small graphs and as the oracle the
// grid build is property-tested against.
func (g *Graph) buildAllPairs() {
	m := len(g.ids)
	for a := 0; a < m; a++ {
		for b := a + 1; b < m; b++ {
			g.testEdge(a, b)
		}
	}
}

// buildGrid fills the adjacency via the shared spatial index: vertices
// are bucketed by their k-1 cell and only pairs within gridBuildReach
// cells are distance-tested. Each unordered cell pair is visited once
// (via its lexicographically positive coordinate offset), so every
// candidate pair is tested exactly once; the exact Adjacent test makes
// the result identical to the all-pairs build.
func (g *Graph) buildGrid(prm grid.Params) {
	idx := grid.New(g.pair.Prev, g.ids, prm)
	dim := g.pair.Dim()

	// Local-index lists per occupied cell, resolved once.
	locals := make(map[*grid.Cell][]int, idx.Cells())
	idx.ForEachCell(func(_ string, c *grid.Cell) {
		ls := make([]int, len(c.Ids))
		for i, id := range c.Ids {
			ls[i] = g.local[id]
		}
		locals[c] = ls
	})

	offsets := positiveOffsets(dim, gridBuildReach)
	coords := make([]int, dim)
	var buf []byte
	idx.ForEachCell(func(_ string, c *grid.Cell) {
		la := locals[c]
		// Pairs within the cell.
		for i := 0; i < len(la); i++ {
			for j := i + 1; j < len(la); j++ {
				g.testEdge(la[i], la[j])
			}
		}
		// Pairs with lexicographically greater neighbour cells.
		for _, off := range offsets {
			ok := true
			for i := 0; i < dim; i++ {
				x := c.Coords[i] + off[i]
				if x < 0 || x >= prm.Res {
					ok = false
					break
				}
				coords[i] = x
			}
			if !ok {
				continue
			}
			buf = grid.AppendKey(buf[:0], coords)
			nb := idx.CellBytes(buf)
			if nb == nil {
				continue
			}
			lb := locals[nb]
			for _, a := range la {
				for _, b := range lb {
					g.testEdge(a, b)
				}
			}
		}
	})
}

// positiveOffsets enumerates the coordinate offsets in [-reach, reach]^dim
// whose first non-zero component is positive — exactly one of {o, -o} for
// every non-zero offset, so walking them visits each unordered cell pair
// once.
func positiveOffsets(dim, reach int) [][]int {
	var out [][]int
	cur := make([]int, dim)
	for i := range cur {
		cur[i] = -reach
	}
	for {
		for i := 0; i < dim; i++ {
			if cur[i] != 0 {
				if cur[i] > 0 {
					out = append(out, append([]int(nil), cur...))
				}
				break
			}
		}
		i := 0
		for ; i < dim; i++ {
			cur[i]++
			if cur[i] <= reach {
				break
			}
			cur[i] = -reach
		}
		if i == dim {
			break
		}
	}
	return out
}

// testEdge adds the edge between local vertices a and b when their
// devices move consistently.
func (g *Graph) testEdge(a, b int) {
	if g.pair.Adjacent(g.ids[a], g.ids[b], g.r) {
		g.adj[a].Add(b)
		g.adj[b].Add(a)
	}
}

// Ids returns the sorted device ids the graph covers. Ownership rule
// (shared with Characterizer.Abnormal and Directory.Abnormal in their
// packages): the slice aliases the graph's internal state — callers must
// treat it as read-only and copy before modifying.
func (g *Graph) Ids() []int { return g.ids }

// Len returns the number of vertices.
func (g *Graph) Len() int { return len(g.ids) }

// Has reports whether device id is a vertex of the graph.
func (g *Graph) Has(id int) bool {
	_, ok := g.local[id]
	return ok
}

// Local returns the local index of device id and whether it is a vertex.
// Local indices follow sorted device-id order, so increasing local index
// means increasing id.
func (g *Graph) Local(id int) (int, bool) {
	li, ok := g.local[id]
	return li, ok
}

// IDOf returns the device id at local index li.
func (g *Graph) IDOf(li int) int { return g.ids[li] }

// AddLocals adds the local indices of the given device ids to b. Ids
// that are not vertices are ignored.
func (g *Graph) AddLocals(b *sets.Bits, ids []int) {
	for _, id := range ids {
		if li, ok := g.local[id]; ok {
			b.Add(li)
		}
	}
}

// AppendIds appends the device ids of the local-index set b to dst, in
// increasing id order, and returns the extended slice.
func (g *Graph) AppendIds(b *sets.Bits, dst []int) []int {
	b.ForEach(func(li int) bool {
		dst = append(dst, g.ids[li])
		return true
	})
	return dst // ids are sorted because local indices follow sorted ids
}

// Adjacent reports whether devices a and b (device ids) are joined by an
// edge. A device is considered adjacent to itself when present.
func (g *Graph) Adjacent(a, b int) bool {
	la, ok := g.local[a]
	if !ok {
		return false
	}
	lb, ok := g.local[b]
	if !ok {
		return false
	}
	if la == lb {
		return true
	}
	return g.adj[la].Has(lb)
}

// Degree returns the number of neighbours of device id (excluding
// itself), or -1 when the device is not a vertex.
func (g *Graph) Degree(id int) int {
	li, ok := g.local[id]
	if !ok {
		return -1
	}
	return g.adj[li].Len()
}

// toIds converts a local-index bitset into sorted device ids.
func (g *Graph) toIds(b *sets.Bits) []int {
	return g.AppendIds(b, make([]int, 0, b.Len()))
}

// toLocal converts device ids (present in the graph) to a local bitset.
func (g *Graph) toLocal(ids []int) *sets.Bits {
	b := sets.NewBits(len(g.ids))
	g.AddLocals(b, ids)
	return b
}

// IsClique reports whether the given device ids are pairwise adjacent,
// i.e. form an r-consistent motion within the graph.
func (g *Graph) IsClique(ids []int) bool {
	for i := 0; i < len(ids); i++ {
		li, ok := g.local[ids[i]]
		if !ok {
			return false
		}
		for j := i + 1; j < len(ids); j++ {
			lj, ok := g.local[ids[j]]
			if !ok {
				return false
			}
			if !g.adj[li].Has(lj) {
				return false
			}
		}
	}
	return true
}

// MaximalMotions enumerates all maximal r-consistent motions among the
// graph's devices (the maximal cliques), as sorted device-id sets in
// deterministic order.
func (g *Graph) MaximalMotions() [][]int {
	var out [][]int
	g.bronKerbosch(func(clique *sets.Bits) {
		out = append(out, g.toIds(clique))
	})
	sets.SortSets(out)
	return out
}

// MaximalMotionsContaining enumerates the maximal r-consistent motions
// that include device j — the family M(j) built by the paper's
// Algorithm 2. A motion containing j only involves devices within 2r of j
// at both times, so maximality within the graph restricted to j's closed
// neighbourhood coincides with maximality in the full graph. Returns nil
// when j is not a vertex.
func (g *Graph) MaximalMotionsContaining(j int) [][]int {
	ids, _ := g.MaximalMotionsContainingSets(j)
	return ids
}

// MaximalMotionsContainingSets is MaximalMotionsContaining returning
// each motion in both representations: sorted device ids and the
// local-index bitset the enumeration produced. Element i of both slices
// describes the same motion; callers on the characterization hot path
// keep the bitsets so set algebra over motions needs no id translation.
func (g *Graph) MaximalMotionsContainingSets(j int) ([][]int, []*sets.Bits) {
	lj, ok := g.local[j]
	if !ok {
		return nil, nil
	}
	m := len(g.ids)
	r := sets.NewBits(m)
	r.Add(lj)
	p := g.adj[lj].Clone()
	x := sets.NewBits(m)
	var out motionFamily
	sc := g.getScratch()
	g.bk(r, p, x, sc, func(clique *sets.Bits) {
		out.ids = append(out.ids, g.toIds(clique))
		out.cliques = append(out.cliques, clique)
	})
	g.putScratch(sc)
	// Sort both representations together, in the id sets' lexicographic
	// order (the deterministic order SortSets establishes). Families are
	// typically a handful of motions; insertion sort keeps the common
	// case allocation-free (sort.Sort would heap-allocate the interface).
	if len(out.ids) > 32 {
		sort.Sort(&out)
	} else {
		for i := 1; i < len(out.ids); i++ {
			for j := i; j > 0 && out.Less(j, j-1); j-- {
				out.Swap(j, j-1)
			}
		}
	}
	return out.ids, out.cliques
}

// motionFamily sorts the two motion representations in lockstep, by the
// id sets' lexicographic order (shorter first on ties of the common
// prefix — the comparator of sets.SortSets).
type motionFamily struct {
	ids     [][]int
	cliques []*sets.Bits
}

func (f *motionFamily) Len() int { return len(f.ids) }

func (f *motionFamily) Less(i, j int) bool {
	a, b := f.ids[i], f.ids[j]
	for k := 0; k < len(a) && k < len(b); k++ {
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return len(a) < len(b)
}

func (f *motionFamily) Swap(i, j int) {
	f.ids[i], f.ids[j] = f.ids[j], f.ids[i]
	f.cliques[i], f.cliques[j] = f.cliques[j], f.cliques[i]
}

// HasDenseMotionContaining reports whether some τ-dense motion containing
// j lies entirely within the allowed device set (relation (4) of
// Theorem 7 asks this with allowed = D_k(j) minus the union of a candidate
// collection). allowed need not contain j; j is added implicitly.
func (g *Graph) HasDenseMotionContaining(j int, allowed []int, tau int) bool {
	lj, ok := g.local[j]
	if !ok {
		return false
	}
	p := g.toLocal(allowed)
	p.And(g.adj[lj])
	p.Remove(lj)
	// Need a clique of size tau+1 total, i.e. tau more vertices from p.
	sc := g.getScratch()
	defer g.putScratch(sc)
	return g.extendClique(lj, p, 1, tau+1, sc)
}

// extendClique performs a branch-and-bound search for a clique of size at
// least want that contains the current clique (implicitly represented by
// the candidate set p already restricted to common neighbours).
func (g *Graph) extendClique(_ int, p *sets.Bits, have, want int, sc *bkScratch) bool {
	if have >= want {
		return true
	}
	if have+p.Len() < want {
		return false
	}
	// Iterate candidates; standard inclusion/exclusion search.
	members := p.Members(sc.getInts())
	for _, v := range members {
		p2 := sc.get(p)
		p2.And(g.adj[v])
		ok := g.extendClique(v, p2, have+1, want, sc)
		sc.put(p2)
		if ok {
			sc.putInts(members)
			return true
		}
		p.Remove(v) // exclude v from further consideration on this branch
		if have+p.Len() < want {
			break
		}
	}
	sc.putInts(members)
	return false
}

// bronKerbosch runs maximal-clique enumeration over the whole graph.
func (g *Graph) bronKerbosch(report func(*sets.Bits)) {
	m := len(g.ids)
	r := sets.NewBits(m)
	p := sets.NewBits(m)
	for i := 0; i < m; i++ {
		p.Add(i)
	}
	x := sets.NewBits(m)
	sc := g.getScratch()
	g.bk(r, p, x, sc, report)
	g.putScratch(sc)
}

// bkScratch recycles the candidate/excluded bitsets and the member
// buffers of one enumeration's recursion — the dominant garbage of the
// characterization hot path before pooling. Each top-level enumeration
// owns its scratch, so concurrent enumerations over a shared graph
// (CharacterizeAllParallel phase 1) never share state. Only the
// reported cliques (r.Clone) escape the enumeration.
type bkScratch struct {
	free []*sets.Bits
	ints [][]int
}

func (s *bkScratch) get(src *sets.Bits) *sets.Bits {
	if len(s.free) == 0 {
		return src.Clone()
	}
	b := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	b.CopyFrom(src)
	return b
}

func (s *bkScratch) put(b *sets.Bits) { s.free = append(s.free, b) }

func (s *bkScratch) getInts() []int {
	if len(s.ints) == 0 {
		return nil
	}
	buf := s.ints[len(s.ints)-1]
	s.ints = s.ints[:len(s.ints)-1]
	return buf[:0]
}

func (s *bkScratch) putInts(buf []int) { s.ints = append(s.ints, buf) }

// bk is Bron–Kerbosch with pivoting. r, p, x are the usual current
// clique / candidates / excluded sets over local indices. p and x are
// consumed by the call.
func (g *Graph) bk(r, p, x *sets.Bits, sc *bkScratch, report func(*sets.Bits)) {
	if p.Empty() && x.Empty() {
		report(r.Clone())
		return
	}
	// Choose the pivot u in p ∪ x maximizing |p ∩ N(u)|.
	pivot, best := -1, -1
	consider := func(u int) bool {
		if c := p.IntersectionLen(g.adj[u]); c > best {
			best, pivot = c, u
		}
		return true
	}
	p.ForEach(consider)
	x.ForEach(consider)

	cand := sc.get(p)
	if pivot >= 0 {
		cand.AndNot(g.adj[pivot])
	}
	members := cand.Members(sc.getInts())
	sc.put(cand)
	for _, v := range members {
		r.Add(v)
		p2 := sc.get(p)
		p2.And(g.adj[v])
		x2 := sc.get(x)
		x2.And(g.adj[v])
		g.bk(r, p2, x2, sc, report)
		sc.put(p2)
		sc.put(x2)
		r.Remove(v)
		p.Remove(v)
		x.Add(v)
	}
	sc.putInts(members)
}

// newGraphAllPairs builds the graph with the reference all-pairs scan
// regardless of size — the oracle used by property tests and the
// recorded baseline BenchmarkNewGraph compares the grid build against.
func newGraphAllPairs(p *Pair, ids []int, r float64) *Graph {
	g := newGraphVertices(p, ids, r)
	g.buildAllPairs()
	return g
}

// newGraphGrid builds the graph with the grid-indexed scan regardless of
// size (testing/benchmark hook).
func newGraphGrid(p *Pair, ids []int, r float64) *Graph {
	g := newGraphVertices(p, ids, r)
	g.buildGrid(grid.ForRadius(r))
	return g
}
