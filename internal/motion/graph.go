package motion

import (
	"anomalia/internal/sets"
)

// Graph is the motion graph restricted to a subset of devices (typically
// the abnormal set A_k): vertices are devices, edges join devices within
// 2r at both times. Cliques of this graph are exactly the r-consistent
// motions among the subset.
//
// Vertices are stored under local indices 0..m-1; the public API speaks
// device ids.
type Graph struct {
	ids   []int       // local index -> device id, sorted
	local map[int]int // device id -> local index
	adj   []*sets.Bits
	r     float64
	pair  *Pair
}

// NewGraph builds the motion graph over the given device ids (deduplicated
// and sorted). The caller is responsible for r being valid; ids outside
// the pair's device range are ignored.
func NewGraph(p *Pair, ids []int, r float64) *Graph {
	clean := make([]int, 0, len(ids))
	for _, id := range ids {
		if id >= 0 && id < p.N() {
			clean = append(clean, id)
		}
	}
	clean = sets.Canon(clean)
	m := len(clean)
	g := &Graph{
		ids:   clean,
		local: make(map[int]int, m),
		adj:   make([]*sets.Bits, m),
		r:     r,
		pair:  p,
	}
	for li, id := range clean {
		g.local[id] = li
		g.adj[li] = sets.NewBits(m)
	}
	for a := 0; a < m; a++ {
		for b := a + 1; b < m; b++ {
			if p.Adjacent(clean[a], clean[b], r) {
				g.adj[a].Add(b)
				g.adj[b].Add(a)
			}
		}
	}
	return g
}

// Ids returns the sorted device ids the graph covers. The slice is shared;
// do not modify.
func (g *Graph) Ids() []int { return g.ids }

// Len returns the number of vertices.
func (g *Graph) Len() int { return len(g.ids) }

// Has reports whether device id is a vertex of the graph.
func (g *Graph) Has(id int) bool {
	_, ok := g.local[id]
	return ok
}

// Adjacent reports whether devices a and b (device ids) are joined by an
// edge. A device is considered adjacent to itself when present.
func (g *Graph) Adjacent(a, b int) bool {
	la, ok := g.local[a]
	if !ok {
		return false
	}
	lb, ok := g.local[b]
	if !ok {
		return false
	}
	if la == lb {
		return true
	}
	return g.adj[la].Has(lb)
}

// Degree returns the number of neighbours of device id (excluding
// itself), or -1 when the device is not a vertex.
func (g *Graph) Degree(id int) int {
	li, ok := g.local[id]
	if !ok {
		return -1
	}
	return g.adj[li].Len()
}

// toIds converts a local-index bitset into sorted device ids.
func (g *Graph) toIds(b *sets.Bits) []int {
	out := make([]int, 0, b.Len())
	b.ForEach(func(li int) bool {
		out = append(out, g.ids[li])
		return true
	})
	return out // ids are sorted because local indices follow sorted ids
}

// toLocal converts device ids (present in the graph) to a local bitset.
func (g *Graph) toLocal(ids []int) *sets.Bits {
	b := sets.NewBits(len(g.ids))
	for _, id := range ids {
		if li, ok := g.local[id]; ok {
			b.Add(li)
		}
	}
	return b
}

// IsClique reports whether the given device ids are pairwise adjacent,
// i.e. form an r-consistent motion within the graph.
func (g *Graph) IsClique(ids []int) bool {
	for i := 0; i < len(ids); i++ {
		li, ok := g.local[ids[i]]
		if !ok {
			return false
		}
		for j := i + 1; j < len(ids); j++ {
			lj, ok := g.local[ids[j]]
			if !ok {
				return false
			}
			if !g.adj[li].Has(lj) {
				return false
			}
		}
	}
	return true
}

// MaximalMotions enumerates all maximal r-consistent motions among the
// graph's devices (the maximal cliques), as sorted device-id sets in
// deterministic order.
func (g *Graph) MaximalMotions() [][]int {
	var out [][]int
	g.bronKerbosch(func(clique *sets.Bits) {
		out = append(out, g.toIds(clique))
	})
	sets.SortSets(out)
	return out
}

// MaximalMotionsContaining enumerates the maximal r-consistent motions
// that include device j — the family M(j) built by the paper's
// Algorithm 2. A motion containing j only involves devices within 2r of j
// at both times, so maximality within the graph restricted to j's closed
// neighbourhood coincides with maximality in the full graph. Returns nil
// when j is not a vertex.
func (g *Graph) MaximalMotionsContaining(j int) [][]int {
	lj, ok := g.local[j]
	if !ok {
		return nil
	}
	m := len(g.ids)
	r := sets.NewBits(m)
	r.Add(lj)
	p := g.adj[lj].Clone()
	x := sets.NewBits(m)
	var out [][]int
	g.bk(r, p, x, func(clique *sets.Bits) {
		out = append(out, g.toIds(clique))
	})
	sets.SortSets(out)
	return out
}

// HasDenseMotionContaining reports whether some τ-dense motion containing
// j lies entirely within the allowed device set (relation (4) of
// Theorem 7 asks this with allowed = D_k(j) minus the union of a candidate
// collection). allowed need not contain j; j is added implicitly.
func (g *Graph) HasDenseMotionContaining(j int, allowed []int, tau int) bool {
	lj, ok := g.local[j]
	if !ok {
		return false
	}
	p := g.toLocal(allowed)
	p.And(g.adj[lj])
	p.Remove(lj)
	// Need a clique of size tau+1 total, i.e. tau more vertices from p.
	return g.extendClique(lj, p, 1, tau+1)
}

// extendClique performs a branch-and-bound search for a clique of size at
// least want that contains the current clique (implicitly represented by
// the candidate set p already restricted to common neighbours).
func (g *Graph) extendClique(_ int, p *sets.Bits, have, want int) bool {
	if have >= want {
		return true
	}
	if have+p.Len() < want {
		return false
	}
	// Iterate candidates; standard inclusion/exclusion search.
	members := p.Members(nil)
	for _, v := range members {
		p2 := p.Clone()
		p2.And(g.adj[v])
		if g.extendClique(v, p2, have+1, want) {
			return true
		}
		p.Remove(v) // exclude v from further consideration on this branch
		if have+p.Len() < want {
			return false
		}
	}
	return false
}

// bronKerbosch runs maximal-clique enumeration over the whole graph.
func (g *Graph) bronKerbosch(report func(*sets.Bits)) {
	m := len(g.ids)
	r := sets.NewBits(m)
	p := sets.NewBits(m)
	for i := 0; i < m; i++ {
		p.Add(i)
	}
	x := sets.NewBits(m)
	g.bk(r, p, x, report)
}

// bk is Bron–Kerbosch with pivoting. r, p, x are the usual current
// clique / candidates / excluded sets over local indices. p and x are
// consumed by the call.
func (g *Graph) bk(r, p, x *sets.Bits, report func(*sets.Bits)) {
	if p.Empty() && x.Empty() {
		report(r.Clone())
		return
	}
	// Choose the pivot u in p ∪ x maximizing |p ∩ N(u)|.
	pivot, best := -1, -1
	consider := func(u int) bool {
		if c := p.IntersectionLen(g.adj[u]); c > best {
			best, pivot = c, u
		}
		return true
	}
	p.ForEach(consider)
	x.ForEach(consider)

	cand := p.Clone()
	if pivot >= 0 {
		cand.AndNot(g.adj[pivot])
	}
	for _, v := range cand.Members(nil) {
		r.Add(v)
		p2 := p.Clone()
		p2.And(g.adj[v])
		x2 := x.Clone()
		x2.And(g.adj[v])
		g.bk(r, p2, x2, report)
		r.Remove(v)
		p.Remove(v)
		x.Add(v)
	}
}
