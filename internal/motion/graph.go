package motion

import (
	"slices"
	"sort"
	"sync"

	"anomalia/internal/grid"
	"anomalia/internal/sets"
)

// Graph is the motion graph restricted to a subset of devices (typically
// the abnormal set A_k): vertices are devices, edges join devices within
// 2r at both times. Cliques of this graph are exactly the r-consistent
// motions among the subset.
//
// Vertices are stored under local indices 0..m-1; the public API speaks
// device ids.
//
// Adjacency is hybrid. Below sparseMinVertices every vertex owns a dense
// bitset row, so clique enumeration — the characterization hot path — is
// pure word operations. At or above it the rows become sorted neighbour
// lists in one shared CSR arena (off/nbr), built by a parallel cell-pair
// walk: memory drops from O(m²/64) to O(m + edges), which is what makes
// million-device windows constructible at all. Both representations are
// read-only after construction, and every enumeration result is
// identical across them (TestSparseMatchesDense*).
type Graph struct {
	ids []int // local index -> device id, sorted
	// contiguous marks the common full-population case ids[i] == i, where
	// Local is the identity. Non-contiguous dense-mode graphs keep a
	// per-id map (local): the characterization hot path resolves ids in
	// every Theorem-7 probe and the map is tiny at dense scales. Sparse-
	// mode graphs resolve by binary search over ids instead — at
	// million-device scale the map alone would cost tens of MB and a
	// rebuild per window for a lookup the sorted slice answers in
	// O(log m).
	contiguous bool
	local      map[int]int
	r          float64
	pair       *Pair

	// adj is the dense representation: one bitset row per vertex. nil in
	// sparse mode.
	adj []*sets.Bits

	// off/nbr are the sparse representation: row v is the sorted
	// neighbour list nbr[off[v]:off[v+1]]. The two slices are the whole
	// adjacency — 2 allocations regardless of m. nil in dense mode.
	off []int64
	nbr []int32

	// bkPool recycles enumeration scratch across the many per-device
	// clique enumerations of a fleet pass; sync.Pool keeps concurrent
	// enumerations (parallel characterization) safe.
	bkPool sync.Pool
}

// gridBuildMinVertices is the vertex count at which NewGraph switches
// from the all-pairs build to the grid-indexed build. Below it the
// quadratic scan — a tight loop of uniform-norm comparisons — is
// cheaper than building the cell index (measured crossover is a few
// hundred vertices; see BenchmarkNewGraph). Both builds produce
// identical adjacency (TestNewGraphGridMatchesAllPairs).
const gridBuildMinVertices = 256

// sparseMinVertices is the vertex count at which NewGraph stops building
// dense bitset rows unconditionally and instead collects the edge set
// first, picking the representation from the measured edge count
// (density-adaptive; see buildCollected). The threshold trades the dense
// rows' word-parallel set algebra against their O(m²/64) footprint: at
// 4096 vertices the dense adjacency is 2 MB — around the point where
// allocating and zeroing it starts to rival the whole sparse build —
// while every paper-scale characterization window (tens to hundreds of
// abnormal devices) stays comfortably dense.
const sparseMinVertices = 4096

// gridBuildReach is the Chebyshev cell distance the grid build pairs
// cells across. With cell side exactly 2r an edge's endpoints share a
// cell or sit in axis-adjacent cells in exact arithmetic; reach 2 keeps
// that guarantee under floating point, where a quotient within an ulp
// of a cell boundary can shift either endpoint's computed cell by one.
const gridBuildReach = 2

// gridBuildMaxRes caps the grid resolution the floating-point safety
// argument for gridBuildReach covers (quotient errors stay far below
// one cell while res*2^-52 is negligible). Radii tiny enough to exceed
// it fall back to the all-pairs build.
const gridBuildMaxRes = 1 << 25

// NewGraph builds the motion graph over the given device ids (deduplicated
// and sorted). The caller is responsible for r being valid; ids outside
// the pair's device range are ignored.
//
// Construction is O(m * neighbours): vertices are bucketed into a grid of
// cells with side 2r over the k-1 positions and only pairs from nearby
// cells are distance-tested, instead of all m^2 pairs. Small or
// degenerate inputs use the plain all-pairs scan. From sparseMinVertices
// vertices the cell-pair walk is sharded across GOMAXPROCS workers into
// per-worker edge buffers, and the representation — CSR neighbour lists
// or dense bitset rows — is picked from the measured edge count after
// collection, not the vertex count before it. The adjacency relation is
// identical on every path.
func NewGraph(p *Pair, ids []int, r float64) *Graph {
	g := newGraphVertices(p, ids, r)
	m := len(g.ids)
	prm := grid.ForRadius(r)
	gridOK := prm.Res <= gridBuildMaxRes && gridBuildWorthwhile(p.Dim(), m)
	switch {
	case m >= sparseMinVertices:
		g.buildCollected(prm, gridOK, 0, false)
	case m >= gridBuildMinVertices && gridOK:
		g.allocDense()
		g.buildGrid(prm)
	default:
		g.allocDense()
		g.buildAllPairs()
	}
	return g
}

// gridBuildWorthwhile reports whether the cell-pair walk can beat the
// all-pairs scan: the (2*reach+1)^d neighbour-offset fan-out grows
// exponentially with the dimension, so once it exceeds the vertex count
// the walk itself dominates (and at space.MaxDim it would be the whole
// build's undoing).
func gridBuildWorthwhile(dim, m int) bool {
	return grid.NeighborCells(dim, gridBuildReach, m) <= m
}

// newGraphVertices sets up the vertex bookkeeping shared by all builds.
func newGraphVertices(p *Pair, ids []int, r float64) *Graph {
	clean := make([]int, 0, len(ids))
	for _, id := range ids {
		if id >= 0 && id < p.N() {
			clean = append(clean, id)
		}
	}
	clean = sets.Canon(clean)
	g := &Graph{
		ids:  clean,
		r:    r,
		pair: p,
	}
	// clean is sorted, duplicate-free and non-negative, so its last
	// element equals m-1 exactly when it is 0..m-1.
	m := len(clean)
	g.contiguous = m == 0 || clean[m-1] == m-1
	if !g.contiguous && m < sparseMinVertices {
		g.local = make(map[int]int, m)
		for li, id := range clean {
			g.local[id] = li
		}
	}
	g.bkPool.New = func() any { return &bkScratch{} }
	return g
}

// allocDense sizes the dense bitset rows (dense mode only): one shared
// words arena behind every row, 3 allocations however many vertices.
func (g *Graph) allocDense() {
	g.adj = sets.NewBitsRows(len(g.ids), len(g.ids))
}

// Sparse reports whether the graph stores its adjacency as CSR neighbour
// lists rather than dense bitset rows.
func (g *Graph) Sparse() bool { return g.adj == nil }

// row returns sparse vertex v's sorted neighbour list (aliases the
// arena; read-only).
func (g *Graph) row(v int) sets.Sorted {
	return sets.Sorted(g.nbr[g.off[v]:g.off[v+1]])
}

// degreeLocal returns the neighbour count of local vertex v.
func (g *Graph) degreeLocal(v int) int {
	if g.adj != nil {
		return g.adj[v].Len()
	}
	return int(g.off[v+1] - g.off[v])
}

// adjacentLocal reports the edge between distinct local vertices a and b.
func (g *Graph) adjacentLocal(a, b int) bool {
	if g.adj != nil {
		return g.adj[a].Has(b)
	}
	return g.row(a).Has(int32(b))
}

// forNeighbors calls fn for every neighbour of local vertex v in
// increasing local order, stopping early if fn returns false.
func (g *Graph) forNeighbors(v int, fn func(u int) bool) {
	if g.adj != nil {
		g.adj[v].ForEach(fn)
		return
	}
	for _, u := range g.row(v) {
		if !fn(int(u)) {
			return
		}
	}
}

// getScratch leases enumeration scratch; return it with putScratch.
func (g *Graph) getScratch() *bkScratch   { return g.bkPool.Get().(*bkScratch) }
func (g *Graph) putScratch(sc *bkScratch) { g.bkPool.Put(sc) }

// buildAllPairs fills the dense adjacency by testing every vertex pair —
// the reference O(m^2) build, kept for small graphs and as the oracle
// the grid and sparse builds are property-tested against.
func (g *Graph) buildAllPairs() {
	m := len(g.ids)
	for a := 0; a < m; a++ {
		for b := a + 1; b < m; b++ {
			g.testEdge(a, b)
		}
	}
}

// buildGrid fills the dense adjacency via the shared spatial index:
// vertices are bucketed by their k-1 cell and only pairs within
// gridBuildReach cells are distance-tested. The shared PairWalk visits
// each unordered cell pair once, so every candidate pair is tested
// exactly once; the exact Adjacent test makes the result identical to
// the all-pairs build.
func (g *Graph) buildGrid(prm grid.Params) {
	idx := grid.New(g.pair.Prev, g.ids, prm)
	walk := idx.NewPairWalk(gridBuildReach)
	locals := g.resolveCellLocals(walk.Cells())
	walk.Shard(0, 1, func(a, b int) {
		la := locals.row(a)
		if a == b {
			for i := 0; i < len(la); i++ {
				for j := i + 1; j < len(la); j++ {
					g.testEdge(int(la[i]), int(la[j]))
				}
			}
			return
		}
		for _, va := range la {
			for _, vb := range locals.row(b) {
				g.testEdge(int(va), int(vb))
			}
		}
	})
}

// cellLocals holds the local-index lists of a walk's cells in one arena,
// aligned with PairWalk.Cells.
type cellLocals struct {
	off []int32
	loc []int32
}

func (c *cellLocals) row(i int) []int32 { return c.loc[c.off[i]:c.off[i+1]:c.off[i+1]] }

// resolveCellLocals converts each cell's device ids to local indices
// once, so the pair walks never re-derive them.
func (g *Graph) resolveCellLocals(cells []grid.Cell) *cellLocals {
	total := 0
	for i := range cells {
		total += len(cells[i].Ids)
	}
	out := &cellLocals{
		off: make([]int32, len(cells)+1),
		loc: make([]int32, 0, total),
	}
	for i := range cells {
		for _, id := range cells[i].Ids {
			li, _ := g.Local(id) // indexed ids are always vertices
			out.loc = append(out.loc, int32(li))
		}
		out.off[i+1] = int32(len(out.loc))
	}
	return out
}

// testEdge adds the edge between local vertices a and b when their
// devices move consistently (dense mode).
func (g *Graph) testEdge(a, b int) {
	if g.pair.Adjacent(g.ids[a], g.ids[b], g.r) {
		g.adj[a].Add(b)
		g.adj[b].Add(a)
	}
}

// Ids returns the sorted device ids the graph covers. Ownership rule
// (shared with Characterizer.Abnormal and Directory.Abnormal in their
// packages): the slice aliases the graph's internal state — callers must
// treat it as read-only and copy before modifying.
func (g *Graph) Ids() []int { return g.ids }

// Len returns the number of vertices.
func (g *Graph) Len() int { return len(g.ids) }

// Has reports whether device id is a vertex of the graph.
func (g *Graph) Has(id int) bool {
	_, ok := g.Local(id)
	return ok
}

// Local returns the local index of device id and whether it is a vertex.
// Local indices follow sorted device-id order, so increasing local index
// means increasing id. When the graph covers a full population the
// mapping is the identity; dense-mode subsets answer from a small map
// and sparse-mode subsets by binary search over the sorted ids (no
// per-vertex map at million-device scale).
func (g *Graph) Local(id int) (int, bool) {
	if g.contiguous {
		if id >= 0 && id < len(g.ids) {
			return id, true
		}
		return 0, false
	}
	if g.local != nil {
		li, ok := g.local[id]
		return li, ok
	}
	if li, ok := slices.BinarySearch(g.ids, id); ok {
		return li, true
	}
	return 0, false
}

// IDOf returns the device id at local index li.
func (g *Graph) IDOf(li int) int { return g.ids[li] }

// AddLocals adds the local indices of the given device ids to b. Ids
// that are not vertices are ignored.
func (g *Graph) AddLocals(b *sets.Bits, ids []int) {
	for _, id := range ids {
		if li, ok := g.Local(id); ok {
			b.Add(li)
		}
	}
}

// AppendIds appends the device ids of the local-index set b to dst, in
// increasing id order, and returns the extended slice.
func (g *Graph) AppendIds(b *sets.Bits, dst []int) []int {
	b.ForEach(func(li int) bool {
		dst = append(dst, g.ids[li])
		return true
	})
	return dst // ids are sorted because local indices follow sorted ids
}

// Adjacent reports whether devices a and b (device ids) are joined by an
// edge. A device is considered adjacent to itself when present.
func (g *Graph) Adjacent(a, b int) bool {
	la, ok := g.Local(a)
	if !ok {
		return false
	}
	lb, ok := g.Local(b)
	if !ok {
		return false
	}
	if la == lb {
		return true
	}
	return g.adjacentLocal(la, lb)
}

// Degree returns the number of neighbours of device id (excluding
// itself), or -1 when the device is not a vertex.
func (g *Graph) Degree(id int) int {
	li, ok := g.Local(id)
	if !ok {
		return -1
	}
	return g.degreeLocal(li)
}

// toIds converts a local-index bitset into sorted device ids.
func (g *Graph) toIds(b *sets.Bits) []int {
	return g.AppendIds(b, make([]int, 0, b.Len()))
}

// toLocal converts device ids (present in the graph) to a local bitset.
func (g *Graph) toLocal(ids []int) *sets.Bits {
	b := sets.NewBits(len(g.ids))
	g.AddLocals(b, ids)
	return b
}

// IsClique reports whether the given device ids are pairwise adjacent,
// i.e. form an r-consistent motion within the graph.
func (g *Graph) IsClique(ids []int) bool {
	locals := make([]int, len(ids))
	for i, id := range ids {
		li, ok := g.Local(id)
		if !ok {
			return false
		}
		locals[i] = li
	}
	for i := 0; i < len(locals); i++ {
		for j := i + 1; j < len(locals); j++ {
			if locals[i] != locals[j] && !g.adjacentLocal(locals[i], locals[j]) {
				return false
			}
		}
	}
	return true
}

// MaximalMotions enumerates all maximal r-consistent motions among the
// graph's devices (the maximal cliques), as sorted device-id sets in
// deterministic order.
func (g *Graph) MaximalMotions() [][]int {
	if g.Sparse() {
		return g.maximalMotionsSparse()
	}
	var out [][]int
	g.bronKerbosch(func(clique *sets.Bits) {
		out = append(out, g.toIds(clique))
	})
	sets.SortSets(out)
	return out
}

// MaximalMotionsContaining enumerates the maximal r-consistent motions
// that include device j — the family M(j) built by the paper's
// Algorithm 2. A motion containing j only involves devices within 2r of j
// at both times, so maximality within the graph restricted to j's closed
// neighbourhood coincides with maximality in the full graph. Returns nil
// when j is not a vertex.
func (g *Graph) MaximalMotionsContaining(j int) [][]int {
	ids, _ := g.MaximalMotionsContainingSets(j)
	return ids
}

// MaximalMotionsContainingSets is MaximalMotionsContaining returning
// each motion in both representations: sorted device ids and the
// local-index bitset the enumeration produced. Element i of both slices
// describes the same motion; callers on the characterization hot path
// keep the bitsets so set algebra over motions needs no id translation.
// The bitsets are over graph-local indices 0..Len()-1 in both adjacency
// modes — in sparse mode the enumeration itself runs over j's densified
// neighbourhood subgraph and only the reported cliques are widened.
func (g *Graph) MaximalMotionsContainingSets(j int) ([][]int, []*sets.Bits) {
	return g.maximalMotionsContainingProj(j, len(g.ids), nil)
}

// MaximalMotionsContainingIn is MaximalMotionsContainingSets with the
// bitsets projected into the component-local index space of j's
// connected component under cs: bit i of a motion is rank i within the
// component's sorted member list, and the universe is the component
// size. Every member of a motion containing j shares j's component, so
// the projection loses nothing — it shrinks each bitset from O(Len/64)
// words to O(|component|/64), which is what keeps adversarial
// all-abnormal windows linear in total component mass instead of
// quadratic in the vertex count.
func (g *Graph) MaximalMotionsContainingIn(j int, cs *Components) ([][]int, []*sets.Bits) {
	lj, ok := g.Local(j)
	if !ok {
		return nil, nil
	}
	return g.maximalMotionsContainingProj(j, cs.Size(cs.Of(lj)), cs.rank)
}

// maximalMotionsContainingProj enumerates W(j) with the reported
// cliques projected through rank into bitsets over [0, universe); a nil
// rank is the identity projection over the graph-local universe.
func (g *Graph) maximalMotionsContainingProj(j, universe int, rank []int32) ([][]int, []*sets.Bits) {
	lj, ok := g.Local(j)
	if !ok {
		return nil, nil
	}
	var out motionFamily
	sc := g.getScratch()
	if g.Sparse() {
		verts := g.row(lj).InsertInto(int32(lj), sc.verts[:0])
		sub := g.densify(sc, verts)
		pos := searchSorted(verts, int32(lj))
		s := len(verts)
		r := sc.lease(s)
		r.Add(pos)
		p := sc.lease(s)
		p.CopyFrom(sub[pos])
		x := sc.lease(s)
		bkOver(sub, r, p, x, sc, func(clique *sets.Bits) {
			// Widen the clique from sub-indices straight into the target
			// universe, collecting ids on the way: sub-index i is verts[i]
			// graph-locally, whose rank and id both follow ascending order.
			wide := sets.NewBits(universe)
			ids := make([]int, 0, clique.Len())
			clique.ForEach(func(i int) bool {
				v := verts[i]
				if rank != nil {
					wide.Add(int(rank[v]))
				} else {
					wide.Add(int(v))
				}
				ids = append(ids, g.ids[v])
				return true
			})
			out.ids = append(out.ids, ids)
			out.cliques = append(out.cliques, wide)
		})
		sc.put(x)
		sc.put(p)
		sc.put(r)
		sc.verts = verts[:0]
	} else {
		m := len(g.ids)
		r := sets.NewBits(m)
		r.Add(lj)
		p := g.adj[lj].Clone()
		x := sets.NewBits(m)
		bkOver(g.adj, r, p, x, sc, func(clique *sets.Bits) {
			out.ids = append(out.ids, g.toIds(clique))
			if rank != nil {
				wide := sets.NewBits(universe)
				clique.ProjectInto(wide, rank)
				out.cliques = append(out.cliques, wide)
			} else {
				out.cliques = append(out.cliques, clique)
			}
		})
	}
	g.putScratch(sc)
	sortMotionFamily(&out)
	return out.ids, out.cliques
}

// sortMotionFamily sorts both motion representations together, in the id
// sets' lexicographic order (the deterministic order SortSets
// establishes). Families are typically a handful of motions; insertion
// sort keeps the common case allocation-free (sort.Sort would
// heap-allocate the interface).
func sortMotionFamily(out *motionFamily) {
	if len(out.ids) > 32 {
		sort.Sort(out)
		return
	}
	for i := 1; i < len(out.ids); i++ {
		for j := i; j > 0 && out.Less(j, j-1); j-- {
			out.Swap(j, j-1)
		}
	}
}

// searchSorted returns the index of v in the sorted slice s (which must
// contain it).
func searchSorted(s sets.Sorted, v int32) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// motionFamily sorts the two motion representations in lockstep, by the
// id sets' lexicographic order (shorter first on ties of the common
// prefix — the comparator of sets.SortSets).
type motionFamily struct {
	ids     [][]int
	cliques []*sets.Bits
}

func (f *motionFamily) Len() int { return len(f.ids) }

func (f *motionFamily) Less(i, j int) bool {
	a, b := f.ids[i], f.ids[j]
	for k := 0; k < len(a) && k < len(b); k++ {
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return len(a) < len(b)
}

func (f *motionFamily) Swap(i, j int) {
	f.ids[i], f.ids[j] = f.ids[j], f.ids[i]
	f.cliques[i], f.cliques[j] = f.cliques[j], f.cliques[i]
}

// HasDenseMotionContaining reports whether some τ-dense motion containing
// j lies entirely within the allowed device set (relation (4) of
// Theorem 7 asks this with allowed = D_k(j) minus the union of a candidate
// collection). allowed need not contain j; j is added implicitly.
func (g *Graph) HasDenseMotionContaining(j int, allowed []int, tau int) bool {
	lj, ok := g.Local(j)
	if !ok {
		return false
	}
	sc := g.getScratch()
	defer g.putScratch(sc)
	if g.Sparse() {
		// Densify N(j) ∩ allowed; a clique of size tau+1 through j is a
		// clique of size tau inside that subgraph.
		locs := sc.locs[:0]
		for _, id := range allowed {
			if li, ok := g.Local(id); ok && li != lj {
				locs = append(locs, int32(li))
			}
		}
		sortInt32s(locs)
		verts := g.row(lj).IntersectInto(locs, sc.verts[:0])
		sc.locs = locs[:0]
		defer func() { sc.verts = verts[:0] }()
		if len(verts) < tau {
			return tau <= 0
		}
		sub := g.densify(sc, verts)
		p := sc.lease(len(verts))
		for i := range verts {
			p.Add(i)
		}
		ok := extendCliqueOver(sub, p, 1, tau+1, sc)
		sc.put(p)
		return ok
	}
	p := g.toLocal(allowed)
	p.And(g.adj[lj])
	p.Remove(lj)
	// Need a clique of size tau+1 total, i.e. tau more vertices from p.
	return extendCliqueOver(g.adj, p, 1, tau+1, sc)
}

// extendCliqueOver performs a branch-and-bound search for a clique of
// size at least want that contains the current clique (implicitly
// represented by the candidate set p already restricted to common
// neighbours) in the graph described by adj.
func extendCliqueOver(adj []*sets.Bits, p *sets.Bits, have, want int, sc *bkScratch) bool {
	if have >= want {
		return true
	}
	if have+p.Len() < want {
		return false
	}
	// Iterate candidates; standard inclusion/exclusion search.
	members := p.Members(sc.getInts())
	for _, v := range members {
		p2 := sc.get(p)
		p2.And(adj[v])
		ok := extendCliqueOver(adj, p2, have+1, want, sc)
		sc.put(p2)
		if ok {
			sc.putInts(members)
			return true
		}
		p.Remove(v) // exclude v from further consideration on this branch
		if have+p.Len() < want {
			break
		}
	}
	sc.putInts(members)
	return false
}

// bronKerbosch runs maximal-clique enumeration over the whole dense
// graph.
func (g *Graph) bronKerbosch(report func(*sets.Bits)) {
	m := len(g.ids)
	r := sets.NewBits(m)
	p := sets.NewBits(m)
	for i := 0; i < m; i++ {
		p.Add(i)
	}
	x := sets.NewBits(m)
	sc := g.getScratch()
	bkOver(g.adj, r, p, x, sc, report)
	g.putScratch(sc)
}

// bkScratch recycles the candidate/excluded bitsets and the member
// buffers of one enumeration's recursion — the dominant garbage of the
// characterization hot path before pooling. Each top-level enumeration
// owns its scratch, so concurrent enumerations over a shared graph
// (CharacterizeAllParallel phase 1) never share state. Only the
// reported cliques escape the enumeration. The free-listed bitsets are
// resized on lease, so one scratch serves the full graph universe and
// the per-vertex sub-universes of the sparse enumeration alike.
type bkScratch struct {
	free []*sets.Bits
	ints [][]int
	// verts/locs buffer the sub-universe vertex lists of the sparse
	// enumeration; sub holds its densified bitset rows.
	verts sets.Sorted
	locs  sets.Sorted
	sub   []*sets.Bits
}

func (s *bkScratch) get(src *sets.Bits) *sets.Bits {
	if len(s.free) == 0 {
		return src.Clone()
	}
	b := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	if b.Universe() != src.Universe() {
		b.Resize(src.Universe())
	}
	b.CopyFrom(src)
	return b
}

// lease returns a cleared bitset over [0, n) from the free list.
func (s *bkScratch) lease(n int) *sets.Bits {
	if len(s.free) == 0 {
		return sets.NewBits(n)
	}
	b := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	b.Resize(n)
	return b
}

func (s *bkScratch) put(b *sets.Bits) { s.free = append(s.free, b) }

func (s *bkScratch) getInts() []int {
	if len(s.ints) == 0 {
		return nil
	}
	buf := s.ints[len(s.ints)-1]
	s.ints = s.ints[:len(s.ints)-1]
	return buf[:0]
}

func (s *bkScratch) putInts(buf []int) { s.ints = append(s.ints, buf) }

// bkOver is Bron–Kerbosch with pivoting over the adjacency rows adj.
// r, p, x are the usual current clique / candidates / excluded sets over
// row indices. p and x are consumed by the call. Dense graphs pass their
// full adjacency; the sparse enumeration passes a densified
// neighbourhood subgraph, so the recursion is word operations in both
// modes.
func bkOver(adj []*sets.Bits, r, p, x *sets.Bits, sc *bkScratch, report func(*sets.Bits)) {
	if p.Empty() && x.Empty() {
		report(r.Clone())
		return
	}
	// Choose the pivot u in p ∪ x maximizing |p ∩ N(u)|.
	pivot, best := -1, -1
	consider := func(u int) bool {
		if c := p.IntersectionLen(adj[u]); c > best {
			best, pivot = c, u
		}
		return true
	}
	p.ForEach(consider)
	x.ForEach(consider)

	cand := sc.get(p)
	if pivot >= 0 {
		cand.AndNot(adj[pivot])
	}
	members := cand.Members(sc.getInts())
	sc.put(cand)
	for _, v := range members {
		r.Add(v)
		p2 := sc.get(p)
		p2.And(adj[v])
		x2 := sc.get(x)
		x2.And(adj[v])
		bkOver(adj, r, p2, x2, sc, report)
		sc.put(p2)
		sc.put(x2)
		r.Remove(v)
		p.Remove(v)
		x.Add(v)
	}
	sc.putInts(members)
}

// newGraphAllPairs builds the graph with the reference all-pairs scan
// regardless of size — the oracle used by property tests and the
// recorded baseline BenchmarkNewGraph compares the grid build against.
func newGraphAllPairs(p *Pair, ids []int, r float64) *Graph {
	g := newGraphVertices(p, ids, r)
	g.allocDense()
	g.buildAllPairs()
	return g
}

// newGraphGrid builds the graph with the dense grid-indexed scan
// regardless of size (testing/benchmark hook).
func newGraphGrid(p *Pair, ids []int, r float64) *Graph {
	g := newGraphVertices(p, ids, r)
	g.allocDense()
	g.buildGrid(grid.ForRadius(r))
	return g
}

// newGraphSparse builds the CSR-backed graph regardless of size or
// measured density (testing/benchmark hook); workers <= 0 selects
// GOMAXPROCS.
func newGraphSparse(p *Pair, ids []int, r float64, workers int) *Graph {
	g := newGraphVertices(p, ids, r)
	prm := grid.ForRadius(r)
	gridOK := prm.Res <= gridBuildMaxRes && gridBuildWorthwhile(p.Dim(), len(g.ids))
	g.buildCollected(prm, gridOK, workers, true)
	return g
}
