package motion

import (
	"testing"

	"anomalia/internal/sets"
	"anomalia/internal/stats"
)

func TestGraphPaperFigure1(t *testing.T) {
	t.Parallel()

	pair, r := figure1Pair(t)
	g := NewGraph(pair, allIds(pair.N()), r)
	got := g.MaximalMotions()
	if !sameFamily(got, figure1Maximal) {
		t.Errorf("Figure 1 maximal motions = %v, want %v", got, figure1Maximal)
	}

	// Device 1 (index 0) belongs to both maximal sets.
	containing := g.MaximalMotionsContaining(0)
	if !sameFamily(containing, figure1Maximal) {
		t.Errorf("motions containing device 1 = %v, want %v", containing, figure1Maximal)
	}
	// Device 4 (index 3) belongs only to B1.
	containing = g.MaximalMotionsContaining(3)
	if !sameFamily(containing, [][]int{{0, 1, 2, 3}}) {
		t.Errorf("motions containing device 4 = %v", containing)
	}
}

func TestGraphPaperFigure2(t *testing.T) {
	t.Parallel()

	pair, r := figure2Pair(t)
	g := NewGraph(pair, allIds(pair.N()), r)
	got := g.MaximalMotions()
	if !sameFamily(got, figure2Maximal) {
		t.Errorf("Figure 2 maximal motions = %v, want %v", got, figure2Maximal)
	}
}

func TestGraphPaperFigure3(t *testing.T) {
	t.Parallel()

	pair, r := figure3Pair(t)
	g := NewGraph(pair, allIds(pair.N()), r)
	got := g.MaximalMotions()
	if !sameFamily(got, figure3Maximal) {
		t.Errorf("Figure 3 maximal motions = %v, want %v", got, figure3Maximal)
	}
	// Device 3 (index 2) is in both maximal motions.
	containing := g.MaximalMotionsContaining(2)
	if !sameFamily(containing, figure3Maximal) {
		t.Errorf("motions containing device 3 = %v", containing)
	}
}

func TestGraphBasics(t *testing.T) {
	t.Parallel()

	pair, r := figure1Pair(t)
	g := NewGraph(pair, []int{0, 1, 2, 3, 4, 5, 5, 99, -3}, r)
	if g.Len() != 6 {
		t.Errorf("Len = %d, want 6 (dedup + range filter)", g.Len())
	}
	if !g.Has(0) || g.Has(99) {
		t.Error("Has misbehaved")
	}
	if !g.Adjacent(0, 1) {
		t.Error("0-1 must be adjacent")
	}
	if g.Adjacent(3, 4) {
		t.Error("3-4 must not be adjacent")
	}
	if !g.Adjacent(2, 2) {
		t.Error("self adjacency expected")
	}
	if g.Adjacent(0, 99) {
		t.Error("missing vertex must not be adjacent")
	}
	if g.Degree(99) != -1 {
		t.Error("Degree of missing vertex must be -1")
	}
	// Device 0 (=paper 1) is adjacent to 1, 2, 3, 4, 5? Check: it is within
	// 2r of 1,2 (0.05,0.08), 3 (0.10), 4 (0.12), 5 (0.15) -> degree 5.
	if got := g.Degree(0); got != 5 {
		t.Errorf("Degree(0) = %d, want 5", got)
	}
	if g.MaximalMotionsContaining(99) != nil {
		t.Error("motions containing a missing vertex must be nil")
	}
}

func TestGraphIsClique(t *testing.T) {
	t.Parallel()

	pair, r := figure3Pair(t)
	g := NewGraph(pair, allIds(pair.N()), r)
	if !g.IsClique([]int{0, 1, 2, 3}) {
		t.Error("{1,2,3,4} must be a clique")
	}
	if g.IsClique([]int{0, 4}) {
		t.Error("{1,5} must not be a clique")
	}
	if !g.IsClique(nil) || !g.IsClique([]int{2}) {
		t.Error("empty and singleton sets are cliques")
	}
	if g.IsClique([]int{0, 77}) {
		t.Error("clique containing a missing vertex must be false")
	}
}

func TestGraphOnSubset(t *testing.T) {
	t.Parallel()

	pair, r := figure1Pair(t)
	// Restrict to devices {0,1,2,4,5}: without device 3, the only maximal
	// motion containing 0 is {0,1,2,4,5}.
	g := NewGraph(pair, []int{0, 1, 2, 4, 5}, r)
	got := g.MaximalMotions()
	want := [][]int{{0, 1, 2, 4, 5}}
	if !sameFamily(got, want) {
		t.Errorf("subset maximal motions = %v, want %v", got, want)
	}
}

func TestHasDenseMotionContaining(t *testing.T) {
	t.Parallel()

	pair, r := figure3Pair(t)
	g := NewGraph(pair, allIds(pair.N()), r)
	// τ=3: dense motions containing device 0 need 4 members: {0,1,2,3}.
	if !g.HasDenseMotionContaining(0, []int{1, 2, 3, 4}, 3) {
		t.Error("device 0 has a dense motion within {1,2,3,4}")
	}
	// Without device 3 there are only 3 candidates adjacent to 0.
	if g.HasDenseMotionContaining(0, []int{1, 2, 4}, 3) {
		t.Error("no dense motion for device 0 within {1,2,4}")
	}
	// τ=2 only needs 3 members.
	if !g.HasDenseMotionContaining(0, []int{1, 2}, 2) {
		t.Error("device 0 has a 2-dense motion within {1,2}")
	}
	if g.HasDenseMotionContaining(42, []int{1, 2}, 1) {
		t.Error("missing vertex cannot have dense motions")
	}
}

// TestBronKerboschAgainstBruteForce compares maximal cliques with a brute
// force subset enumeration on small random graphs.
func TestBronKerboschAgainstBruteForce(t *testing.T) {
	t.Parallel()

	rng := stats.NewRNG(77)
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(8) // up to 11 vertices
		pair := randomPair(t, rng, n, 2, 0.25)
		const r = 0.06
		g := NewGraph(pair, allIds(n), r)

		got := g.MaximalMotions()
		want := bruteMaximalCliques(pair, n, r)
		if !sameFamily(got, want) {
			t.Fatalf("trial %d: BK = %v, brute = %v", trial, got, want)
		}

		// Per-vertex variant agrees with the filtered global family.
		for j := 0; j < n; j++ {
			gotJ := g.MaximalMotionsContaining(j)
			var wantJ [][]int
			for _, m := range want {
				if sets.ContainsInt(m, j) {
					wantJ = append(wantJ, m)
				}
			}
			if !sameFamily(gotJ, wantJ) {
				t.Fatalf("trial %d vertex %d: containing = %v, want %v", trial, j, gotJ, wantJ)
			}
		}
	}
}

// bruteMaximalCliques enumerates maximal motions by checking all 2^n
// subsets — only usable for tiny n.
func bruteMaximalCliques(p *Pair, n int, r float64) [][]int {
	var cliques [][]int
	for mask := 1; mask < 1<<n; mask++ {
		var ids []int
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				ids = append(ids, v)
			}
		}
		if !p.ConsistentMotion(ids, r) {
			continue
		}
		// Maximal?
		maximal := true
		for v := 0; v < n && maximal; v++ {
			if mask&(1<<v) != 0 {
				continue
			}
			ext := append(append([]int{}, ids...), v)
			if p.ConsistentMotion(ext, r) {
				maximal = false
			}
		}
		if maximal {
			cliques = append(cliques, ids)
		}
	}
	sets.SortSets(cliques)
	return cliques
}

func BenchmarkMaximalMotions(b *testing.B) {
	rng := stats.NewRNG(5)
	pair := randomPair(b, rng, 60, 2, 0.3)
	const r = 0.05
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := NewGraph(pair, allIds(60), r)
		_ = g.MaximalMotions()
	}
}
