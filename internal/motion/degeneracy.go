package motion

import (
	"anomalia/internal/sets"
)

// MaximalMotionsDegeneracy enumerates maximal motions with the
// degeneracy-ordered Bron–Kerbosch of Eppstein, Löffler and Strash: the
// outer loop walks vertices in degeneracy order, restricting candidates
// to later neighbours. On the sparse motion graphs of large fleets
// (n >> 1/(2r)^d) the outer candidate sets stay bounded by the graph's
// degeneracy, making this the preferred variant at scale; results are
// identical to MaximalMotions. In sparse adjacency mode the enumeration
// runs over densified neighbourhood subgraphs (it is the same routine
// MaximalMotions dispatches to); in dense mode the start sets are leased
// from the graph's enumeration scratch, so a fleet pass recycles three
// bitsets instead of allocating three per start vertex.
func (g *Graph) MaximalMotionsDegeneracy() [][]int {
	m := len(g.ids)
	if m == 0 {
		return nil
	}
	if g.Sparse() {
		return g.maximalMotionsSparse()
	}
	order := g.degeneracyOrder()
	pos := make([]int, m)
	for i, v := range order {
		pos[v] = i
	}
	var out [][]int
	sc := g.getScratch()
	defer g.putScratch(sc)
	for _, v := range order {
		r := sc.lease(m)
		p := sc.lease(m)
		x := sc.lease(m)
		r.Add(v)
		g.adj[v].ForEach(func(u int) bool {
			if pos[u] > pos[v] {
				p.Add(u)
			} else {
				x.Add(u)
			}
			return true
		})
		bkOver(g.adj, r, p, x, sc, func(clique *sets.Bits) {
			out = append(out, g.toIds(clique))
		})
		sc.put(x)
		sc.put(p)
		sc.put(r)
	}
	sets.SortSets(out)
	return out
}

// degeneracyOrder produces an ordering whose back-degree is the graph
// degeneracy, by repeatedly removing a minimum-degree vertex — the
// Batagelj–Zaveršnik bucket formulation of Matula–Beck, O(m + edges)
// over either adjacency representation. Vertices sit in an array
// bucketed by current degree; removing a vertex swaps each neighbour
// still ahead of the removal frontier down one bucket. (Neighbours
// whose degree already equals the current minimum stay put — the
// standard clamping, which preserves the min-degree removal order.)
func (g *Graph) degeneracyOrder() []int {
	m := len(g.ids)
	deg := make([]int, m)
	maxDeg := 0
	for v := 0; v < m; v++ {
		deg[v] = g.degreeLocal(v)
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// bin[d] is the index in vert of the first vertex of degree d; vert
	// holds the vertices sorted by current degree and pos the inverse.
	bin := make([]int, maxDeg+2)
	for v := 0; v < m; v++ {
		bin[deg[v]+1]++
	}
	for d := 0; d <= maxDeg; d++ {
		bin[d+1] += bin[d]
	}
	vert := make([]int, m)
	pos := make([]int, m)
	fill := make([]int, maxDeg+1)
	copy(fill, bin[:maxDeg+1])
	for v := 0; v < m; v++ {
		pos[v] = fill[deg[v]]
		vert[pos[v]] = v
		fill[deg[v]]++
	}
	for i := 0; i < m; i++ {
		v := vert[i] // minimum-degree vertex among those not yet removed
		g.forNeighbors(v, func(u int) bool {
			if deg[u] > deg[v] {
				du, pu := deg[u], pos[u]
				pw := bin[du]
				w := vert[pw]
				if u != w {
					vert[pu], vert[pw] = w, u
					pos[w], pos[u] = pu, pw
				}
				bin[du]++
				deg[u]--
			}
			return true
		})
	}
	return vert
}
