package motion

import (
	"anomalia/internal/sets"
)

// MaximalMotionsDegeneracy enumerates maximal motions with the
// degeneracy-ordered Bron–Kerbosch of Eppstein, Löffler and Strash: the
// outer loop walks vertices in degeneracy order, restricting candidates
// to later neighbours. On the sparse motion graphs of large fleets
// (n >> 1/(2r)^d) the outer candidate sets stay bounded by the graph's
// degeneracy, making this the preferred variant at scale; results are
// identical to MaximalMotions.
func (g *Graph) MaximalMotionsDegeneracy() [][]int {
	m := len(g.ids)
	if m == 0 {
		return nil
	}
	order := g.degeneracyOrder()
	pos := make([]int, m)
	for i, v := range order {
		pos[v] = i
	}
	var out [][]int
	sc := g.getScratch()
	defer g.putScratch(sc)
	for _, v := range order {
		r := sets.NewBits(m)
		r.Add(v)
		p := sets.NewBits(m)
		x := sets.NewBits(m)
		g.adj[v].ForEach(func(u int) bool {
			if pos[u] > pos[v] {
				p.Add(u)
			} else {
				x.Add(u)
			}
			return true
		})
		g.bk(r, p, x, sc, func(clique *sets.Bits) {
			out = append(out, g.toIds(clique))
		})
	}
	sets.SortSets(out)
	return out
}

// degeneracyOrder repeatedly removes a minimum-degree vertex, yielding an
// ordering whose back-degree is the graph degeneracy.
func (g *Graph) degeneracyOrder() []int {
	m := len(g.ids)
	degree := make([]int, m)
	removed := make([]bool, m)
	for v := 0; v < m; v++ {
		degree[v] = g.adj[v].Len()
	}
	order := make([]int, 0, m)
	for len(order) < m {
		best, bestDeg := -1, m+1
		for v := 0; v < m; v++ {
			if !removed[v] && degree[v] < bestDeg {
				best, bestDeg = v, degree[v]
			}
		}
		removed[best] = true
		order = append(order, best)
		g.adj[best].ForEach(func(u int) bool {
			if !removed[u] {
				degree[u]--
			}
			return true
		})
	}
	return order
}
