package motion

import "anomalia/internal/sets"

// Components is the connected-component decomposition of a Graph, with a
// compact per-component renumbering: every vertex carries a rank — its
// position within its component's sorted member list — so any set a
// decision touches can live in a bitset sized to the component instead
// of the whole vertex universe.
//
// The decomposition is the locality backbone of the characterization
// layer (internal/core): every set the paper's decision rules consult
// for device j (the dense motions W̄_k, D_k(j), the J_k/L_k split, the
// Theorem 7 collections) lives inside j's 4r neighbourhood, which is in
// turn inside j's connected component. Renumbering per component turns
// the per-decision word algebra from O(m/64) per operation into
// O(|component|/64) while keeping one shared universe per component, so
// memoized motion bitsets stay directly comparable across all devices
// of a component.
//
// Components is read-only after construction and safe for concurrent
// readers, exactly like the graph it decomposes.
type Components struct {
	g *Graph
	// comp maps graph-local vertex -> component index. Components are
	// numbered by their smallest vertex, ascending.
	comp []int32
	// rank maps graph-local vertex -> its position within the sorted
	// member list of its component (the component-local index).
	rank []int32
	// verts holds the members of every component — sorted graph-local
	// indices, grouped by component; off[c]:off[c+1] delimits component c.
	verts []int32
	off   []int32
}

// Components computes the connected-component decomposition of the
// graph in O(m + edges), in either adjacency representation.
func (g *Graph) Components() *Components {
	m := len(g.ids)
	cs := &Components{
		g:     g,
		comp:  make([]int32, m),
		rank:  make([]int32, m),
		verts: make([]int32, m),
	}
	for i := range cs.comp {
		cs.comp[i] = -1
	}
	// Pass 1: label components by BFS from each unvisited vertex, in
	// ascending vertex order — components come out numbered by smallest
	// member. The queue reuses the verts slab (every vertex enters it
	// exactly once, and pass 2 overwrites it in place).
	queue := cs.verts
	next := int32(0)
	head, tail := 0, 0
	for v := 0; v < m; v++ {
		if cs.comp[v] >= 0 {
			continue
		}
		c := next
		next++
		cs.comp[v] = c
		queue[tail] = int32(v)
		tail++
		for head < tail {
			u := int(queue[head])
			head++
			g.forNeighbors(u, func(w int) bool {
				if cs.comp[w] < 0 {
					cs.comp[w] = c
					queue[tail] = int32(w)
					tail++
				}
				return true
			})
		}
	}
	// Pass 2: bucket the vertices by component with a counting sort, so
	// member lists come out sorted (ascending vertex — and therefore
	// ascending device id) and every vertex learns its rank.
	cs.off = make([]int32, int(next)+1)
	for _, c := range cs.comp {
		cs.off[c+1]++
	}
	for c := 0; c < int(next); c++ {
		cs.off[c+1] += cs.off[c]
	}
	cur := make([]int32, next)
	copy(cur, cs.off[:next])
	for v := 0; v < m; v++ {
		c := cs.comp[v]
		cs.verts[cur[c]] = int32(v)
		cs.rank[v] = cur[c] - cs.off[c]
		cur[c]++
	}
	return cs
}

// WholeGraphComponent returns the degenerate decomposition that places
// every vertex in one component — the identity renumbering, under which
// every projected bitset spans the full graph universe. It reproduces
// the pre-component full-graph scratch behaviour exactly and serves as
// the reference oracle the component-local parity suites compare
// against.
func (g *Graph) WholeGraphComponent() *Components {
	m := len(g.ids)
	cs := &Components{
		g:     g,
		comp:  make([]int32, m),
		rank:  make([]int32, m),
		verts: make([]int32, m),
		off:   []int32{0, int32(m)},
	}
	for v := 0; v < m; v++ {
		cs.rank[v] = int32(v)
		cs.verts[v] = int32(v)
	}
	if m == 0 {
		cs.off = []int32{0}
	}
	return cs
}

// Count returns the number of components.
func (cs *Components) Count() int { return len(cs.off) - 1 }

// Offset returns the position of component c's first member within the
// AllVerts slab.
func (cs *Components) Offset(c int) int { return int(cs.off[c]) }

// Of returns the component index of graph-local vertex li.
func (cs *Components) Of(li int) int { return int(cs.comp[li]) }

// Size returns the vertex count of component c.
func (cs *Components) Size(c int) int { return int(cs.off[c+1] - cs.off[c]) }

// Rank returns the component-local index of graph-local vertex li: its
// position within the sorted member list of its component. Ranks are
// monotone in graph-local index (and therefore in device id) within a
// component.
func (cs *Components) Rank(li int) int { return int(cs.rank[li]) }

// Verts returns component c's members as sorted graph-local indices.
// The slice views the decomposition's slab — read-only.
func (cs *Components) Verts(c int) []int32 {
	return cs.verts[cs.off[c] : cs.off[c+1] : cs.off[c+1]]
}

// AllVerts returns the full member slab: every component's sorted
// graph-local indices, concatenated in component order. The slice views
// the decomposition's slab — read-only.
func (cs *Components) AllVerts() []int32 { return cs.verts }

// AppendIds appends the device ids of the component-local bitset b of
// component c to dst, in increasing id order, and returns the extended
// slice — the component-space analogue of Graph.AppendIds.
func (cs *Components) AppendIds(b *sets.Bits, c int, dst []int) []int {
	verts := cs.Verts(c)
	ids := cs.g.ids
	b.ForEach(func(i int) bool {
		dst = append(dst, ids[verts[i]])
		return true
	})
	return dst // ranks follow sorted vertex order, so ids come out sorted
}

// componentDenseMax is the component size up to which
// MaximalMotionsOfComponent densifies the whole component subgraph of a
// sparse-mode graph for a single Bron–Kerbosch run (the same footprint
// bound as the graph's own dense-mode threshold). Larger sparse-mode
// components fall back to the anchored per-vertex enumeration, whose
// scratch stays neighbourhood-sized. Dense-mode graphs densify whatever
// the component size: their component scratch is at most the m²/64-bit
// adjacency the graph already carries (density-adaptive windows pick
// dense rows above sparseMinVertices too, when denseWorthwhile), and the
// anchored walk needs the CSR rows dense mode does not build.
const componentDenseMax = sparseMinVertices

// MaximalMotionsOfComponent enumerates every maximal motion among the
// devices of component c — each exactly once — as sorted device-id sets
// plus bitsets over the component-local universe, in the id sets'
// lexicographic order (the per-device order of
// MaximalMotionsContainingIn). One call serves the whole component: the
// maximal motions containing any member are exactly the reported
// motions that include it, because a motion containing a vertex never
// leaves the vertex's component. This is the fleet pass's enumeration
// amortization — per-device calls redo the same neighbourhood
// densification and clique search once per member, turning adversarial
// all-abnormal windows quadratic in cluster mass.
func (g *Graph) MaximalMotionsOfComponent(c int, cs *Components) ([][]int, []*sets.Bits) {
	verts := sets.Sorted(cs.Verts(c))
	s := len(verts)
	var out motionFamily
	sc := g.getScratch()
	if s <= componentDenseMax || !g.Sparse() {
		// Densify the induced subgraph once — sub-index i is component
		// rank i, so reported cliques are already component-local. Every
		// neighbour of a member is a member, so rows project losslessly.
		for len(sc.sub) < s {
			sc.sub = append(sc.sub, sets.NewBits(0))
		}
		sub := sc.sub[:s]
		for i := range sub {
			sub[i].Resize(s)
		}
		if g.Sparse() {
			for i, v := range verts {
				bi := sub[i]
				for _, u := range g.row(int(v)) {
					bi.Add(int(cs.rank[u]))
				}
			}
		} else {
			for i, v := range verts {
				g.adj[v].ProjectInto(sub[i], cs.rank)
			}
		}
		r := sc.lease(s)
		p := sc.lease(s)
		for i := 0; i < s; i++ {
			p.Add(i)
		}
		x := sc.lease(s)
		bkOver(sub, r, p, x, sc, func(clique *sets.Bits) {
			ids := make([]int, 0, clique.Len())
			clique.ForEach(func(i int) bool {
				ids = append(ids, g.ids[verts[i]])
				return true
			})
			out.ids = append(out.ids, ids)
			out.cliques = append(out.cliques, clique)
		})
		sc.put(x)
		sc.put(p)
		sc.put(r)
	} else {
		// Anchored enumeration for oversized sparse-mode components (the
		// branch guard keeps dense graphs out — g.row/g.densify below read
		// the CSR arena, which dense mode does not build).
		// Walking members in ascending vertex order and restricting
		// candidates to later neighbours / exclusions to earlier ones
		// reports each maximal clique exactly once — anchored at its
		// smallest member — inside a neighbourhood-sized subgraph, so
		// scratch stays O(Δ²/64) however large the component.
		for _, v32 := range verts {
			v := int(v32)
			nverts := g.row(v).InsertInto(v32, sc.verts[:0])
			sub := g.densify(sc, nverts)
			sv := len(nverts)
			r := sc.lease(sv)
			r.Add(searchSorted(nverts, v32))
			p := sc.lease(sv)
			x := sc.lease(sv)
			for i, u := range nverts {
				if u == v32 {
					continue
				}
				if u > v32 {
					p.Add(i)
				} else {
					x.Add(i)
				}
			}
			bkOver(sub, r, p, x, sc, func(clique *sets.Bits) {
				wide := sets.NewBits(s)
				ids := make([]int, 0, clique.Len())
				clique.ForEach(func(i int) bool {
					u := nverts[i]
					wide.Add(int(cs.rank[u]))
					ids = append(ids, g.ids[u])
					return true
				})
				out.ids = append(out.ids, ids)
				out.cliques = append(out.cliques, wide)
			})
			sc.put(x)
			sc.put(p)
			sc.put(r)
			sc.verts = nverts[:0]
		}
	}
	g.putScratch(sc)
	sortMotionFamily(&out)
	return out.ids, out.cliques
}
