package motion

import (
	"testing"

	"anomalia/internal/sets"
	"anomalia/internal/stats"
)

func TestSlidingWindowPaperFigures(t *testing.T) {
	t.Parallel()

	tests := []struct {
		name string
		pair func(testing.TB) (*Pair, float64)
		want [][]int
	}{
		{"figure1", func(tb testing.TB) (*Pair, float64) { return figure1Pair(tb) }, figure1Maximal},
		{"figure2", func(tb testing.TB) (*Pair, float64) { return figure2Pair(tb) }, figure2Maximal},
		{"figure3", func(tb testing.TB) (*Pair, float64) { return figure3Pair(tb) }, figure3Maximal},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			pair, r := tt.pair(t)
			got := SlidingWindowMotions(pair, allIds(pair.N()), r)
			if !sameFamily(got, tt.want) {
				t.Errorf("sliding-window motions = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSlidingWindowContaining(t *testing.T) {
	t.Parallel()

	pair, r := figure1Pair(t)
	got := SlidingWindowMotionsContaining(pair, allIds(pair.N()), r, 3)
	want := [][]int{{0, 1, 2, 3}}
	if !sameFamily(got, want) {
		t.Errorf("motions containing device 4 = %v, want %v", got, want)
	}
	if SlidingWindowMotionsContaining(pair, allIds(pair.N()), r, 42) != nil {
		t.Error("anchor outside universe must return nil")
	}
	if SlidingWindowMotions(pair, nil, r) != nil {
		t.Error("empty universe must return nil")
	}
}

// TestSlidingWindowMatchesBronKerbosch is the central cross-check of the
// two enumeration algorithms on random 2-d configurations.
func TestSlidingWindowMatchesBronKerbosch(t *testing.T) {
	t.Parallel()

	rng := stats.NewRNG(2024)
	for trial := 0; trial < 40; trial++ {
		n := 5 + rng.Intn(15)
		pair := randomPair(t, rng, n, 2, 0.2)
		const r = 0.05
		g := NewGraph(pair, allIds(n), r)

		bk := g.MaximalMotions()
		sw := SlidingWindowMotions(pair, allIds(n), r)
		if !sameFamily(bk, sw) {
			t.Fatalf("trial %d (n=%d): BK %v != sliding %v", trial, n, bk, sw)
		}

		j := rng.Intn(n)
		bkJ := g.MaximalMotionsContaining(j)
		swJ := SlidingWindowMotionsContaining(pair, allIds(n), r, j)
		if !sameFamily(bkJ, swJ) {
			t.Fatalf("trial %d vertex %d: BK %v != sliding %v", trial, j, bkJ, swJ)
		}
	}
}

// TestSlidingWindow1D exercises the d=1 special case (2 window dims).
func TestSlidingWindow1D(t *testing.T) {
	t.Parallel()

	rng := stats.NewRNG(31)
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(10)
		pair := randomPair(t, rng, n, 1, 0.4)
		const r = 0.07
		g := NewGraph(pair, allIds(n), r)
		if bk, sw := g.MaximalMotions(), SlidingWindowMotions(pair, allIds(n), r); !sameFamily(bk, sw) {
			t.Fatalf("trial %d: BK %v != sliding %v", trial, bk, sw)
		}
	}
}

// TestSlidingWindow3D exercises a higher-dimensional QoS space (6 window
// dims), beyond the paper's d=2 evaluation.
func TestSlidingWindow3D(t *testing.T) {
	t.Parallel()

	rng := stats.NewRNG(47)
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(8)
		pair := randomPair(t, rng, n, 3, 0.15)
		const r = 0.05
		g := NewGraph(pair, allIds(n), r)
		if bk, sw := g.MaximalMotions(), SlidingWindowMotions(pair, allIds(n), r); !sameFamily(bk, sw) {
			t.Fatalf("trial %d: BK %v != sliding %v", trial, bk, sw)
		}
	}
}

// TestMotionsArePairwiseMaximal verifies structural invariants of the
// enumeration output: every reported set is a motion; no reported set is
// contained in another; every vertex appears in at least one set.
func TestMotionsArePairwiseMaximal(t *testing.T) {
	t.Parallel()

	rng := stats.NewRNG(9001)
	for trial := 0; trial < 20; trial++ {
		n := 10 + rng.Intn(20)
		pair := randomPair(t, rng, n, 2, 0.3)
		const r = 0.04
		g := NewGraph(pair, allIds(n), r)
		fam := g.MaximalMotions()

		covered := sets.NewBits(n)
		for i, m := range fam {
			if !pair.ConsistentMotion(m, r) {
				t.Fatalf("reported set %v is not a motion", m)
			}
			for _, id := range m {
				covered.Add(id)
			}
			for j, o := range fam {
				if i != j && sets.SubsetInts(m, o) {
					t.Fatalf("set %v contained in %v", m, o)
				}
			}
		}
		if covered.Len() != n {
			t.Fatalf("maximal motions cover %d of %d vertices", covered.Len(), n)
		}
	}
}

func BenchmarkSlidingWindowMotions(b *testing.B) {
	rng := stats.NewRNG(5)
	pair := randomPair(b, rng, 25, 2, 0.2)
	const r = 0.05
	ids := allIds(25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SlidingWindowMotions(pair, ids, r)
	}
}
