package motion

import (
	"testing"

	"anomalia/internal/space"
	"anomalia/internal/stats"
)

// TestDenseWorthwhile pins the density-adaptive decision rule at its
// boundary: dense rows win exactly when the CSR arena (one word per
// edge) would be no smaller than the m·ceil(m/64)-word dense adjacency.
func TestDenseWorthwhile(t *testing.T) {
	t.Parallel()

	if denseWorthwhile(4096, 4096*64-1) {
		t.Error("edge count below the dense footprint must stay CSR")
	}
	if !denseWorthwhile(4096, 4096*64) {
		t.Error("edge count at the dense footprint must pick dense rows")
	}
	if denseWorthwhile(100000, 10_000_000) {
		t.Error("uniform fleets at scale must never pick dense rows")
	}
}

// clusterCliquePair packs n devices into n/clusterPop clusters of side
// <= 2r (every intra-cluster pair adjacent — the edge-dense massive-
// event shape), stationary across the window.
func clusterCliquePair(t *testing.T, rng *stats.RNG, n, clusterPop int, r float64) *Pair {
	t.Helper()
	prev, err := space.NewState(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	clusters := n / clusterPop
	centers := make([]space.Point, clusters)
	for i := range centers {
		centers[i] = space.Point{rng.Float64(), rng.Float64()}
	}
	for j := 0; j < n; j++ {
		c := centers[j%clusters]
		pt := space.Point{
			c[0] + (2*rng.Float64()-1)*r,
			c[1] + (2*rng.Float64()-1)*r,
		}
		if err := prev.Set(j, pt.Clamp()); err != nil {
			t.Fatal(err)
		}
	}
	pair, err := NewPair(prev, prev.Clone())
	if err != nil {
		t.Fatal(err)
	}
	return pair
}

// TestNewGraphDensityAdaptive: above sparseMinVertices the production
// dispatch must pick the representation from the measured edge count —
// dense bitset rows for an edge-dense clustered window, CSR for a
// uniform one — and the dense-from-edges build must agree with the
// forced-CSR build on the full read and enumeration surface.
func TestNewGraphDensityAdaptive(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("adaptive-choice graphs are thousands of vertices")
	}

	rng := stats.NewRNG(20260729)
	const n = 4500
	const r = 0.01

	uniform := randomPair(t, rng, n, 2, 1.0)
	if g := NewGraph(uniform, allIds(n), r); !g.Sparse() {
		t.Fatal("uniform window above the crossover must stay CSR")
	}

	pair := clusterCliquePair(t, rng, n, 500, r)
	dense := NewGraph(pair, allIds(n), r)
	if dense.Sparse() {
		t.Fatal("edge-dense clustered window must pick dense rows")
	}
	csr := newGraphSparse(pair, allIds(n), r, 0)
	if !csr.Sparse() {
		t.Fatal("forced CSR build is not in sparse mode")
	}
	for v := 0; v < n; v++ {
		if gd, wd := dense.Degree(v), csr.Degree(v); gd != wd {
			t.Fatalf("Degree(%d) = %d dense, %d csr", v, gd, wd)
		}
	}
	for trial := 0; trial < 200_000; trial++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if g, w := dense.Adjacent(a, b), csr.Adjacent(a, b); g != w {
			t.Fatalf("Adjacent(%d,%d) = %v dense, %v csr", a, b, g, w)
		}
	}
	for _, j := range []int{0, 1, n / 2, n - 1} {
		gm := dense.MaximalMotionsContaining(j)
		wm := csr.MaximalMotionsContaining(j)
		if !sameFamily(gm, wm) {
			t.Fatalf("MaximalMotionsContaining(%d): %d motions dense, %d csr — %v vs %v",
				j, len(gm), len(wm), gm, wm)
		}
	}
}

// TestNewGraphDensityAdaptiveSubset: the adaptive dense path must also
// handle non-contiguous id subsets (binary-search Local, no per-id map)
// at sizes above the collection threshold.
func TestNewGraphDensityAdaptiveSubset(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("adaptive-choice graphs are thousands of vertices")
	}

	rng := stats.NewRNG(42)
	const n = 9500
	const r = 0.01
	pair := clusterCliquePair(t, rng, n, 500, r)
	subset := make([]int, 0, n/2)
	for j := 0; j < n; j++ {
		if j%2 == 0 {
			subset = append(subset, j)
		}
	}
	dense := NewGraph(pair, subset, r)
	if dense.Sparse() {
		t.Fatal("edge-dense clustered subset must pick dense rows")
	}
	csr := newGraphSparse(pair, subset, r, 3)
	for _, v := range subset {
		if gd, wd := dense.Degree(v), csr.Degree(v); gd != wd {
			t.Fatalf("Degree(%d) = %d dense, %d csr", v, gd, wd)
		}
	}
	if dense.Has(1) || dense.Degree(1) != -1 {
		t.Fatal("odd ids must not be vertices")
	}
	for trial := 0; trial < 100_000; trial++ {
		a, b := subset[rng.Intn(len(subset))], subset[rng.Intn(len(subset))]
		if g, w := dense.Adjacent(a, b), csr.Adjacent(a, b); g != w {
			t.Fatalf("Adjacent(%d,%d) = %v dense, %v csr", a, b, g, w)
		}
	}
}

// TestClusterCliquePairIsEdgeDense guards against silent fixture drift:
// the adaptive tests rely on the clustered shape actually crossing the
// edge threshold, so pin it explicitly.
func TestClusterCliquePairIsEdgeDense(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("edge counting builds a thousands-of-vertices graph")
	}

	rng := stats.NewRNG(7)
	const n = 4500
	g := newGraphSparse(clusterCliquePair(t, rng, n, 500, 0.01), allIds(n), 0.01, 0)
	edges := 0
	for v := 0; v < n; v++ {
		edges += g.Degree(v)
	}
	edges /= 2
	if !denseWorthwhile(n, edges) {
		t.Fatalf("cluster fixture carries %d edges — below the dense threshold %d",
			edges, n*((n+63)/64))
	}
}
