package sampling

import (
	"errors"
	"testing"
	"time"
)

func controller(t *testing.T) *Controller {
	t.Helper()
	c, err := New(Config{Min: time.Second, Max: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDefaultsAndStart(t *testing.T) {
	t.Parallel()

	c := controller(t)
	if c.Interval() != time.Minute {
		t.Errorf("start interval = %v, want Max", c.Interval())
	}
}

func TestSpeedupOnAnomalies(t *testing.T) {
	t.Parallel()

	c := controller(t)
	prev := c.Interval()
	for i := 0; i < 3; i++ {
		next := c.Record(true)
		if next >= prev {
			t.Fatalf("interval did not shrink: %v -> %v", prev, next)
		}
		prev = next
	}
	// Enough anomalies floor the interval at Min.
	for i := 0; i < 20; i++ {
		c.Record(true)
	}
	if c.Interval() != time.Second {
		t.Errorf("interval = %v, want floor %v", c.Interval(), time.Second)
	}
}

func TestDecayOnCalm(t *testing.T) {
	t.Parallel()

	c := controller(t)
	for i := 0; i < 20; i++ {
		c.Record(true)
	}
	prev := c.Interval()
	for i := 0; i < 3; i++ {
		next := c.Record(false)
		if next <= prev {
			t.Fatalf("interval did not relax: %v -> %v", prev, next)
		}
		prev = next
	}
	for i := 0; i < 50; i++ {
		c.Record(false)
	}
	if c.Interval() != time.Minute {
		t.Errorf("interval = %v, want ceiling %v", c.Interval(), time.Minute)
	}
}

func TestReset(t *testing.T) {
	t.Parallel()

	c := controller(t)
	c.Record(true)
	c.Reset()
	if c.Interval() != time.Minute {
		t.Errorf("interval after reset = %v", c.Interval())
	}
}

func TestCustomStartAndRates(t *testing.T) {
	t.Parallel()

	c, err := New(Config{
		Min: time.Second, Max: time.Hour,
		Start: time.Minute, Speedup: 0.1, Decay: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Interval() != time.Minute {
		t.Errorf("start = %v", c.Interval())
	}
	if got := c.Record(true); got != 6*time.Second {
		t.Errorf("speedup 0.1: %v, want 6s", got)
	}
	if got := c.Record(false); got != time.Minute {
		t.Errorf("decay 10: %v, want 1m", got)
	}
}

func TestConfigValidation(t *testing.T) {
	t.Parallel()

	bad := []Config{
		{Min: 0, Max: time.Minute},
		{Min: time.Minute, Max: time.Second},
		{Min: time.Second, Max: time.Minute, Speedup: 1.5},
		{Min: time.Second, Max: time.Minute, Decay: 0.5},
		{Min: time.Second, Max: time.Minute, Start: time.Hour},
		{Min: time.Second, Max: time.Minute, Start: time.Millisecond},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); !errors.Is(err, ErrSamplingConfig) {
			t.Errorf("config %d: error = %v, want ErrSamplingConfig", i, err)
		}
	}
}
