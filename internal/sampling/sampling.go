// Package sampling implements the locally tuned sampling frequency of
// Section VII-C: each device adapts how often it samples its
// neighbourhood's QoS based on the local occurrence of anomalies, with no
// global synchronization. Sampling more often during anomalous periods
// shortens the observation window, which reduces the number of
// concomitant errors per window and — as Figure 7 shows — the number of
// unresolved configurations; backing off during calm periods keeps the
// monitoring overhead negligible.
package sampling

import (
	"errors"
	"fmt"
	"time"
)

// ErrSamplingConfig is returned for invalid controller parameters.
var ErrSamplingConfig = errors.New("sampling: invalid configuration")

// Config parameterizes a Controller.
type Config struct {
	// Min is the fastest sampling interval (during anomaly bursts).
	Min time.Duration
	// Max is the slowest sampling interval (calm steady state).
	Max time.Duration
	// Start is the initial interval; 0 means Max.
	Start time.Duration
	// Speedup multiplies the interval after an anomalous window; must be
	// in (0, 1). 0 selects the default 0.5 (halving).
	Speedup float64
	// Decay multiplies the interval after a calm window; must be > 1.
	// 0 selects the default 1.25.
	Decay float64
}

func (c *Config) applyDefaults() error {
	if c.Speedup == 0 {
		c.Speedup = 0.5
	}
	if c.Decay == 0 {
		c.Decay = 1.25
	}
	if c.Min <= 0 || c.Max < c.Min {
		return fmt.Errorf("min %v max %v: %w", c.Min, c.Max, ErrSamplingConfig)
	}
	if c.Speedup <= 0 || c.Speedup >= 1 {
		return fmt.Errorf("speedup %v: %w", c.Speedup, ErrSamplingConfig)
	}
	if c.Decay <= 1 {
		return fmt.Errorf("decay %v: %w", c.Decay, ErrSamplingConfig)
	}
	if c.Start == 0 {
		c.Start = c.Max
	}
	if c.Start < c.Min || c.Start > c.Max {
		return fmt.Errorf("start %v outside [%v, %v]: %w", c.Start, c.Min, c.Max, ErrSamplingConfig)
	}
	return nil
}

// Controller is a per-device sampling-frequency governor. It is a purely
// local state machine: no clock, no goroutines — the caller feeds it one
// observation outcome per window and schedules the next sample at the
// returned interval.
//
// Controller is not safe for concurrent use.
type Controller struct {
	cfg      Config
	interval time.Duration
}

// New validates the configuration and returns a controller at its start
// interval.
func New(cfg Config) (*Controller, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	return &Controller{cfg: cfg, interval: cfg.Start}, nil
}

// Interval returns the current sampling interval.
func (c *Controller) Interval() time.Duration { return c.interval }

// Record folds in the outcome of the latest observation window and
// returns the interval until the next sample: anomalies shrink it
// multiplicatively towards Min, calm windows relax it towards Max.
func (c *Controller) Record(anomalous bool) time.Duration {
	if anomalous {
		c.interval = time.Duration(float64(c.interval) * c.cfg.Speedup)
		if c.interval < c.cfg.Min {
			c.interval = c.cfg.Min
		}
	} else {
		c.interval = time.Duration(float64(c.interval) * c.cfg.Decay)
		if c.interval > c.cfg.Max {
			c.interval = c.cfg.Max
		}
	}
	return c.interval
}

// Reset returns the controller to its start interval.
func (c *Controller) Reset() { c.interval = c.cfg.Start }
