// Package paperfig reconstructs the worked examples of the paper's
// Figures 1–5 as concrete QoS configurations. They serve as golden test
// fixtures across the module: each constructor returns the state pair, the
// radius and density threshold used by the figure, and the structures the
// paper derives from it (maximal motions, valid anomaly partitions,
// expected classifications).
//
// The paper plots one-dimensional QoS at time k against time k-1; the
// exact coordinates are not given, so the fixtures place points so that
// the adjacency structure described in the text holds (verified by unit
// tests). Devices are 0-based here: the paper's device i is index i-1.
package paperfig

import (
	"fmt"

	"anomalia/internal/motion"
	"anomalia/internal/space"
)

// Config is one reconstructed figure scenario.
type Config struct {
	// Pair holds the positions at times k-1 and k.
	Pair *motion.Pair
	// R is the consistency impact radius of the scenario.
	R float64
	// Tau is the density threshold of the scenario.
	Tau int
	// Abnormal is A_k; in every figure all devices are abnormal.
	Abnormal []int
	// Maximal lists the maximal r-consistent motions, sorted.
	Maximal [][]int
	// Massive, Isolated, Unresolved give the omniscient-observer
	// classification (exact M_k / I_k / U_k) of the scenario.
	Massive, Isolated, Unresolved []int
}

func pairFrom(prevCoords, curCoords [][]float64) (*motion.Pair, error) {
	prev, err := space.StateFromPoints(prevCoords)
	if err != nil {
		return nil, fmt.Errorf("building prev state: %w", err)
	}
	cur, err := space.StateFromPoints(curCoords)
	if err != nil {
		return nil, fmt.Errorf("building cur state: %w", err)
	}
	return motion.NewPair(prev, cur)
}

func shifted(coords [][]float64, delta float64) [][]float64 {
	out := make([][]float64, len(coords))
	for i, row := range coords {
		cp := make([]float64, len(row))
		for j, x := range row {
			cp[j] = x + delta
		}
		out[i] = cp
	}
	return out
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Figure1 rebuilds Figure 1: six devices on a line with two maximal
// r-consistent sets B1 = {1,2,3,4} and B2 = {1,2,3,5,6} (paper numbering).
// Positions are static across the window. The paper uses the figure only
// to illustrate maximal consistency; we additionally fix τ = 3, under
// which every anomaly partition keeps exactly one of B1/B2 as its dense
// block, so devices 1,2,3 are massive with certainty while 4, 5 and 6 are
// unresolved.
func Figure1() (*Config, error) {
	coords := [][]float64{
		{0.20}, {0.25}, {0.28}, // 1,2,3
		{0.10},         // 4
		{0.32}, {0.35}, // 5,6
	}
	pair, err := pairFrom(coords, coords)
	if err != nil {
		return nil, err
	}
	return &Config{
		Pair:     pair,
		R:        0.1,
		Tau:      3,
		Abnormal: seq(6),
		Maximal: [][]int{
			{0, 1, 2, 3},
			{0, 1, 2, 4, 5},
		},
		Massive:    []int{0, 1, 2},
		Unresolved: []int{3, 4, 5},
	}, nil
}

// Figure2 rebuilds Figure 2: ten devices, maximal motions C1={1,2,3},
// C2={2,3,4}, C3={5,...,9}, C4={10}, τ = 3. Only C3 is dense; the paper
// uses it to show anomaly partitions are not unique ({1,2,3}+{4} versus
// {1}+{2,3,4}). The omniscient classification is still unambiguous:
// devices 5..9 are massive, everyone else isolated.
func Figure2() (*Config, error) {
	prev := [][]float64{
		{0.10}, {0.20}, {0.25}, {0.40}, // 1-4
		{0.65}, {0.67}, {0.70}, {0.72}, {0.75}, // 5-9
		{0.99}, // 10
	}
	pair, err := pairFrom(prev, shifted(prev, -0.05))
	if err != nil {
		return nil, err
	}
	return &Config{
		Pair:     pair,
		R:        0.1,
		Tau:      3,
		Abnormal: seq(10),
		Maximal: [][]int{
			{0, 1, 2},
			{1, 2, 3},
			{4, 5, 6, 7, 8},
			{9},
		},
		Massive:  []int{4, 5, 6, 7, 8},
		Isolated: []int{0, 1, 2, 3, 9},
	}, nil
}

// Figure2Partitions returns the two anomaly partitions called out in the
// proof of Lemma 2 (there exist more; these two must be among them).
func Figure2Partitions() []([][]int) {
	return [][][]int{
		{{0, 1, 2}, {3}, {4, 5, 6, 7, 8}, {9}},
		{{0}, {1, 2, 3}, {4, 5, 6, 7, 8}, {9}},
	}
}

// Figure3 rebuilds Figure 3, the ACP-impossibility scenario: five devices
// with maximal motions C1={1,2,3,4} and C2={2,3,4,5}, τ = 3. The only two
// anomaly partitions are {C1,{5}} and {{1},C2}, so devices 2,3,4 are
// massive with certainty while 1 and 5 are unresolved.
func Figure3() (*Config, error) {
	prev := [][]float64{
		{0.10}, {0.20}, {0.25}, {0.30}, {0.40},
	}
	pair, err := pairFrom(prev, shifted(prev, 0.05))
	if err != nil {
		return nil, err
	}
	return &Config{
		Pair:     pair,
		R:        0.1,
		Tau:      3,
		Abnormal: seq(5),
		Maximal: [][]int{
			{0, 1, 2, 3},
			{1, 2, 3, 4},
		},
		Massive:    []int{1, 2, 3},
		Unresolved: []int{0, 4},
	}, nil
}

// Figure3Partitions returns the two anomaly partitions of Figure 3.
func Figure3Partitions() []([][]int) {
	return [][][]int{
		{{0, 1, 2, 3}, {4}},
		{{0}, {1, 2, 3, 4}},
	}
}

// Figure4a rebuilds Figure 4(a): five devices, τ = 2, with maximal dense
// motions C1={1,2,3,4} and C2={2,4,5}. For device 4 the paper derives
// J_k(4) = {1,2,3,4,5} and L_k(4) = ∅, so Theorem 6 already proves 4
// massive. Devices 2 and 4 are massive with certainty; 1, 3 and 5 are
// unresolved (e.g. the partition {{2,4,5},{1},{3}} isolates 1 and 3).
func Figure4a() (*Config, error) {
	prevCur := [][][]float64{
		{{0.10}, {0.10}}, // 1
		{{0.20}, {0.20}}, // 2
		{{0.10}, {0.25}}, // 3
		{{0.25}, {0.22}}, // 4
		{{0.40}, {0.30}}, // 5
	}
	prev := make([][]float64, len(prevCur))
	cur := make([][]float64, len(prevCur))
	for i, pc := range prevCur {
		prev[i], cur[i] = pc[0], pc[1]
	}
	pair, err := pairFrom(prev, cur)
	if err != nil {
		return nil, err
	}
	return &Config{
		Pair:     pair,
		R:        0.1,
		Tau:      2,
		Abnormal: seq(5),
		Maximal: [][]int{
			{0, 1, 2, 3},
			{1, 3, 4},
		},
		Massive:    []int{1, 3},
		Unresolved: []int{0, 2, 4},
	}, nil
}

// Figure4b rebuilds Figure 4(b): Figure 4(a) plus devices 6 and 7 forming
// C3={5,6,7}. Device 5 now has a maximal dense motion avoiding device 4,
// so J_k(4) = {1,2,3,4} and L_k(4) = {5}; Theorem 6 still proves device 4
// massive. Devices 2, 4 and 5 are massive with certainty; 1, 3, 6 and 7
// are unresolved.
func Figure4b() (*Config, error) {
	prevCur := [][][]float64{
		{{0.10}, {0.10}}, // 1
		{{0.20}, {0.20}}, // 2
		{{0.10}, {0.25}}, // 3
		{{0.25}, {0.22}}, // 4
		{{0.40}, {0.30}}, // 5
		{{0.55}, {0.35}}, // 6
		{{0.55}, {0.40}}, // 7
	}
	prev := make([][]float64, len(prevCur))
	cur := make([][]float64, len(prevCur))
	for i, pc := range prevCur {
		prev[i], cur[i] = pc[0], pc[1]
	}
	pair, err := pairFrom(prev, cur)
	if err != nil {
		return nil, err
	}
	return &Config{
		Pair:     pair,
		R:        0.1,
		Tau:      2,
		Abnormal: seq(7),
		Maximal: [][]int{
			{0, 1, 2, 3},
			{1, 3, 4},
			{4, 5, 6},
		},
		Massive:    []int{1, 3, 4},
		Unresolved: []int{0, 2, 5, 6},
	}, nil
}

// Figure5 rebuilds Figure 5: eight devices in four co-moving pairs
// arranged in a ring of overlapping dense motions {1,2,3,4}, {3,4,5,6},
// {5,6,7,8}, {7,8,1,2}, τ = 3. The only anomaly partitions are the two
// perfect matchings {{1,2,3,4},{5,6,7,8}} and {{1,2,7,8},{3,4,5,6}}, so
// every device is massive — but J_k(j) = {j, pair(j)} is too small for
// Theorem 6, making this the scenario where only Theorem 7 decides.
func Figure5() (*Config, error) {
	anchors := [][2]float64{
		{0.30, 0.30}, // pair A: devices 0,1
		{0.49, 0.40}, // pair B: devices 2,3
		{0.68, 0.30}, // pair C: devices 4,5
		{0.49, 0.16}, // pair D: devices 6,7
	}
	var prev, cur [][]float64
	for _, a := range anchors {
		for _, off := range []float64{-0.002, 0.002} {
			prev = append(prev, []float64{a[0] + off})
			cur = append(cur, []float64{a[1] + off})
		}
	}
	pair, err := pairFrom(prev, cur)
	if err != nil {
		return nil, err
	}
	return &Config{
		Pair:     pair,
		R:        0.1,
		Tau:      3,
		Abnormal: seq(8),
		Maximal: [][]int{
			{0, 1, 2, 3},
			{0, 1, 6, 7},
			{2, 3, 4, 5},
			{4, 5, 6, 7},
		},
		Massive: []int{0, 1, 2, 3, 4, 5, 6, 7},
	}, nil
}

// Figure5Partitions returns the two anomaly partitions of Figure 5.
func Figure5Partitions() []([][]int) {
	return [][][]int{
		{{0, 1, 2, 3}, {4, 5, 6, 7}},
		{{0, 1, 6, 7}, {2, 3, 4, 5}},
	}
}

// All returns every reconstructed figure keyed by name, for table-driven
// tests.
func All() (map[string]*Config, error) {
	out := make(map[string]*Config, 6)
	for name, build := range map[string]func() (*Config, error){
		"figure1":  Figure1,
		"figure2":  Figure2,
		"figure3":  Figure3,
		"figure4a": Figure4a,
		"figure4b": Figure4b,
		"figure5":  Figure5,
	} {
		cfg, err := build()
		if err != nil {
			return nil, fmt.Errorf("building %s: %w", name, err)
		}
		out[name] = cfg
	}
	return out, nil
}
