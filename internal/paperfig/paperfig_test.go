package paperfig

import (
	"testing"

	"anomalia/internal/motion"
	"anomalia/internal/sets"
)

// TestFixturesInternallyConsistent validates every reconstructed figure:
// the radius is admissible, the declared maximal motions are exactly what
// enumeration finds, and the expected classification partitions A_k.
func TestFixturesInternallyConsistent(t *testing.T) {
	t.Parallel()

	figs, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 6 {
		t.Fatalf("expected 6 figures, got %d", len(figs))
	}
	for name, cfg := range figs {
		name, cfg := name, cfg
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			if err := motion.ValidateRadius(cfg.R); err != nil {
				t.Fatalf("radius: %v", err)
			}
			if cfg.Tau < 1 {
				t.Fatalf("tau = %d", cfg.Tau)
			}
			// Declared maximal motions match enumeration.
			g := motion.NewGraph(cfg.Pair, cfg.Abnormal, cfg.R)
			got := g.MaximalMotions()
			if len(got) != len(cfg.Maximal) {
				t.Fatalf("maximal motions = %v, want %v", got, cfg.Maximal)
			}
			for i := range got {
				if !sets.EqualInts(got[i], cfg.Maximal[i]) {
					t.Fatalf("maximal motions = %v, want %v", got, cfg.Maximal)
				}
			}
			// Classification partitions the abnormal set.
			all := sets.UnionInts(sets.UnionInts(cfg.Massive, cfg.Isolated), cfg.Unresolved)
			if !sets.EqualInts(all, cfg.Abnormal) {
				t.Fatalf("classes %v do not partition abnormal %v", all, cfg.Abnormal)
			}
			if len(cfg.Massive)+len(cfg.Isolated)+len(cfg.Unresolved) != len(cfg.Abnormal) {
				t.Fatal("classes overlap")
			}
		})
	}
}

// TestFigurePartitionsAreMotions: the partitions quoted from the paper
// consist of r-consistent motions covering the abnormal set.
func TestFigurePartitionsAreMotions(t *testing.T) {
	t.Parallel()

	cases := []struct {
		name       string
		build      func() (*Config, error)
		partitions [][][]int
	}{
		{"figure2", Figure2, Figure2Partitions()},
		{"figure3", Figure3, Figure3Partitions()},
		{"figure5", Figure5, Figure5Partitions()},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range tc.partitions {
				var covered []int
				for _, block := range p {
					if !cfg.Pair.ConsistentMotion(block, cfg.R) {
						t.Errorf("block %v is not a motion", block)
					}
					covered = sets.UnionInts(covered, block)
				}
				if !sets.EqualInts(covered, cfg.Abnormal) {
					t.Errorf("partition %v does not cover %v", p, cfg.Abnormal)
				}
			}
		})
	}
}
