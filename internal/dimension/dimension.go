// Package dimension implements the parameter-dimensioning analysis of
// Section VII-A: the distribution of the number of devices N_r(j) in the
// vicinity of a device, the number F_r(j) of devices in that vicinity hit
// by independent isolated errors, and the resulting tuning of the
// consistency radius r and density threshold τ so that
// P{F_r(j) > τ} stays negligible (Figures 6(a) and 6(b)).
package dimension

import (
	"errors"
	"fmt"
	"math"

	"anomalia/internal/stats"
)

// ErrParam is returned for out-of-domain parameters.
var ErrParam = errors.New("dimension: parameter out of range")

// VicinityProb returns q_j, the probability that a uniformly placed device
// falls within uniform-norm distance `radius` of device j in [0,1]^d,
// ignoring boundary clipping: q = (2·radius)^d.
//
// The paper's analysis defines the vicinity as the ball of radius 2r
// (pass radius = 2r to match Figure 6(a)); its Figure 6(b) numbers match
// the ball of radius r — the ball in which Section VII-A's generator
// draws the devices impacted by one error (pass radius = r).
func VicinityProb(radius float64, d int) (float64, error) {
	if radius < 0 || radius > 0.5 {
		return 0, fmt.Errorf("radius = %v: %w", radius, ErrParam)
	}
	if d < 1 {
		return 0, fmt.Errorf("d = %d: %w", d, ErrParam)
	}
	return math.Pow(2*radius, float64(d)), nil
}

// VicinityProbBoundary returns E[q_j] for a uniformly placed device j,
// accounting for clipping of the vicinity at the borders of [0,1]^d:
// per axis the expected covered length is 2·radius − radius², so
// q = (2·radius − radius²)^d... with window half-width w = radius the
// expected clipped length of [x−w, x+w] ∩ [0,1] over uniform x is
// 2w − w². Use this variant for boundary-sensitive populations.
func VicinityProbBoundary(radius float64, d int) (float64, error) {
	if radius < 0 || radius > 0.5 {
		return 0, fmt.Errorf("radius = %v: %w", radius, ErrParam)
	}
	if d < 1 {
		return 0, fmt.Errorf("d = %d: %w", d, ErrParam)
	}
	per := 2*radius - radius*radius
	return math.Pow(per, float64(d)), nil
}

// NeighborhoodCDF returns P{N_r(j) <= m}: the probability that at most m
// of the other n-1 uniformly placed devices lie in j's vicinity of the
// given radius (Figure 6(a) uses radius = 2r). N_r(j) ~ Binomial(n-1, q).
func NeighborhoodCDF(n int, radius float64, d, m int) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("n = %d: %w", n, ErrParam)
	}
	q, err := VicinityProb(radius, d)
	if err != nil {
		return 0, err
	}
	return stats.BinomialCDF(n-1, m, q)
}

// ImpactCDF returns P{F_r(j) <= tau} via the paper's double sum:
//
//	P{F_r(j) <= τ} = Σ_m Σ_{ℓ<=τ} C(m,ℓ) b^ℓ (1-b)^{m-ℓ} P{N_r(j) = m}
//
// where b is the per-device isolated-error probability. Figure 6(b) plots
// this against n for τ = 2..5 with radius = r = 0.03, b = 0.005.
func ImpactCDF(n int, radius float64, d, tau int, b float64) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("n = %d: %w", n, ErrParam)
	}
	if b < 0 || b > 1 {
		return 0, stats.ErrInvalidProbability
	}
	q, err := VicinityProb(radius, d)
	if err != nil {
		return 0, err
	}
	total := 0.0
	for m := 0; m <= n-1; m++ {
		pm, err := stats.BinomialPMF(n-1, m, q)
		if err != nil {
			return 0, err
		}
		if pm == 0 {
			continue
		}
		inner, err := stats.BinomialCDF(m, tau, b)
		if err != nil {
			return 0, err
		}
		total += pm * inner
	}
	if total > 1 {
		total = 1
	}
	return total, nil
}

// ImpactCDFFast computes the same quantity via the thinning identity
// F_r(j) ~ Binomial(n-1, q·b): a uniformly placed device is both in the
// vicinity and hit with probability q·b, independently across devices.
func ImpactCDFFast(n int, radius float64, d, tau int, b float64) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("n = %d: %w", n, ErrParam)
	}
	if b < 0 || b > 1 {
		return 0, stats.ErrInvalidProbability
	}
	q, err := VicinityProb(radius, d)
	if err != nil {
		return 0, err
	}
	return stats.BinomialCDF(n-1, tau, q*b)
}

// TuneTau returns the smallest τ >= 1 such that P{F_r(j) > τ} < eps, i.e.
// the density threshold that makes τ+1 coincident independent isolated
// errors negligible — the paper's tuning rule. It returns an error when
// even τ = n-1 cannot satisfy eps.
func TuneTau(n int, radius float64, d int, b, eps float64) (int, error) {
	if eps <= 0 || eps >= 1 {
		return 0, fmt.Errorf("eps = %v: %w", eps, ErrParam)
	}
	for tau := 1; tau < n; tau++ {
		cdf, err := ImpactCDFFast(n, radius, d, tau, b)
		if err != nil {
			return 0, err
		}
		if 1-cdf < eps {
			return tau, nil
		}
	}
	return 0, fmt.Errorf("no τ < n reaches P{F>τ} < %v: %w", eps, ErrParam)
}

// TuneRadius returns the largest radius in (0, maxRadius] (stepping down
// by step) for which P{F_r(j) > tau} < eps. A larger radius captures more
// correlated neighbours, so the largest admissible radius is preferred.
func TuneRadius(n, d, tau int, b, eps, maxRadius, step float64) (float64, error) {
	if eps <= 0 || eps >= 1 || maxRadius <= 0 || step <= 0 {
		return 0, fmt.Errorf("eps=%v maxRadius=%v step=%v: %w", eps, maxRadius, step, ErrParam)
	}
	for radius := maxRadius; radius > 0; radius -= step {
		cdf, err := ImpactCDFFast(n, radius, d, tau, b)
		if err != nil {
			return 0, err
		}
		if 1-cdf < eps {
			return radius, nil
		}
	}
	return 0, fmt.Errorf("no radius in (0, %v] reaches P{F>τ} < %v: %w", maxRadius, eps, ErrParam)
}
