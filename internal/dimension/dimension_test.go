package dimension

import (
	"errors"
	"math"
	"testing"

	"anomalia/internal/space"
	"anomalia/internal/stats"
)

func TestVicinityProb(t *testing.T) {
	t.Parallel()

	tests := []struct {
		radius float64
		d      int
		want   float64
	}{
		{0.06, 2, 0.0144}, // 2r with r=0.03, the Figure 6(a) vicinity
		{0.03, 2, 0.0036}, // r = 0.03, the Figure 6(b) ball
		{0.1, 1, 0.2},
		{0.5, 2, 1},
		{0, 2, 0},
	}
	for _, tt := range tests {
		got, err := VicinityProb(tt.radius, tt.d)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("VicinityProb(%v, %d) = %v, want %v", tt.radius, tt.d, got, tt.want)
		}
	}
	if _, err := VicinityProb(-0.1, 2); !errors.Is(err, ErrParam) {
		t.Error("negative radius must error")
	}
	if _, err := VicinityProb(0.6, 2); !errors.Is(err, ErrParam) {
		t.Error("radius beyond 0.5 must error")
	}
	if _, err := VicinityProb(0.1, 0); !errors.Is(err, ErrParam) {
		t.Error("d=0 must error")
	}
}

func TestVicinityProbBoundary(t *testing.T) {
	t.Parallel()

	got, err := VicinityProbBoundary(0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if want := 0.19; math.Abs(got-want) > 1e-12 {
		t.Errorf("boundary-corrected q = %v, want %v", got, want)
	}
	interior, err := VicinityProb(0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	corrected, err := VicinityProbBoundary(0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if corrected >= interior {
		t.Error("boundary correction must shrink q")
	}
	if _, err := VicinityProbBoundary(0.9, 2); !errors.Is(err, ErrParam) {
		t.Error("radius beyond 0.5 must error")
	}
}

// TestVicinityProbBoundaryMonteCarlo validates the boundary-averaged q
// against direct simulation of uniform pairs.
func TestVicinityProbBoundaryMonteCarlo(t *testing.T) {
	t.Parallel()

	const radius = 0.12
	rng := stats.NewRNG(2718)
	const samples = 200000
	hits := 0
	for i := 0; i < samples; i++ {
		a := space.Point{rng.Float64(), rng.Float64()}
		b := space.Point{rng.Float64(), rng.Float64()}
		if space.Dist(a, b) <= radius {
			hits++
		}
	}
	mc := float64(hits) / samples
	exact, err := VicinityProbBoundary(radius, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mc-exact) > 0.002 {
		t.Errorf("MC q = %v, boundary-corrected q = %v", mc, exact)
	}
}

func TestNeighborhoodCDFMonotone(t *testing.T) {
	t.Parallel()

	prev := -1.0
	for m := 0; m <= 200; m += 10 {
		p, err := NeighborhoodCDF(1000, 0.2, 2, m)
		if err != nil {
			t.Fatal(err)
		}
		if p < prev {
			t.Fatalf("CDF not monotone at m=%d", m)
		}
		prev = p
	}
	if p, _ := NeighborhoodCDF(1000, 0.2, 2, 1000); p != 1 {
		t.Error("CDF at m=n must be 1")
	}
	if _, err := NeighborhoodCDF(0, 0.2, 2, 5); !errors.Is(err, ErrParam) {
		t.Error("n=0 must error")
	}
}

// TestNeighborhoodCDFFigure6aShape verifies the qualitative shape of
// Figure 6(a): larger radii shift the CDF right (more neighbours), and at
// r=0.03 (vicinity 2r=0.06) the paper's "m logarithmic in n" sweet spot
// holds: a vicinity of ~30 devices is nearly certain.
func TestNeighborhoodCDFFigure6aShape(t *testing.T) {
	t.Parallel()

	const n, d = 1000, 2
	// Paper's r values for Figure 6(a); vicinity radius is 2r.
	rs := []float64{0.1, 0.05, 0.033, 0.025, 0.02}
	const m = 50
	prev := -1.0
	for i := len(rs) - 1; i >= 0; i-- { // increasing radius
		p, err := NeighborhoodCDF(n, 2*rs[i], d, m)
		if err != nil {
			t.Fatal(err)
		}
		if p > 1 || p < 0 {
			t.Fatalf("CDF out of range: %v", p)
		}
		if i < len(rs)-1 && p > prev {
			t.Errorf("larger radius %v should give smaller P{N<=50}: %v > %v", rs[i], p, prev)
		}
		prev = p
	}
	p30, err := NeighborhoodCDF(n, 2*0.03, d, 30)
	if err != nil {
		t.Fatal(err)
	}
	if p30 < 0.999 {
		t.Errorf("P{N <= 30} at r=0.03 = %v, want near-certain", p30)
	}
}

// TestImpactCDFMatchesFast: the paper's double sum and the thinning
// identity Binomial(n-1, q·b) must agree to numerical precision.
func TestImpactCDFMatchesFast(t *testing.T) {
	t.Parallel()

	for _, n := range []int{10, 100, 1000, 5000} {
		for _, tau := range []int{1, 2, 3, 5} {
			slow, err := ImpactCDF(n, 0.03, 2, tau, 0.005)
			if err != nil {
				t.Fatal(err)
			}
			fast, err := ImpactCDFFast(n, 0.03, 2, tau, 0.005)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(slow-fast) > 1e-9 {
				t.Errorf("n=%d τ=%d: double sum %v != thinning %v", n, tau, slow, fast)
			}
		}
	}
}

// TestImpactCDFFigure6bValues pins the Figure 6(b) operating point: with
// r = 0.03, b = 0.005, τ = 2..5, the curves stay above 0.997 up to
// n = 15000 — exactly the y-range the paper plots.
func TestImpactCDFFigure6bValues(t *testing.T) {
	t.Parallel()

	for _, tau := range []int{2, 3, 4, 5} {
		p, err := ImpactCDFFast(15000, 0.03, 2, tau, 0.005)
		if err != nil {
			t.Fatal(err)
		}
		if p < 0.997 {
			t.Errorf("τ=%d: P{F <= τ} = %v, want >= 0.997 (Figure 6b)", tau, p)
		}
		if p > 1 {
			t.Errorf("τ=%d: probability %v > 1", tau, p)
		}
	}
	// Monotone in τ.
	p2, _ := ImpactCDFFast(15000, 0.03, 2, 2, 0.005)
	p5, _ := ImpactCDFFast(15000, 0.03, 2, 5, 0.005)
	if p5 < p2 {
		t.Error("P{F <= τ} must grow with τ")
	}
	// Decreasing in n.
	small, _ := ImpactCDFFast(1000, 0.03, 2, 2, 0.005)
	large, _ := ImpactCDFFast(15000, 0.03, 2, 2, 0.005)
	if large > small {
		t.Error("P{F <= τ} must decrease with n")
	}
}

func TestImpactCDFValidation(t *testing.T) {
	t.Parallel()

	if _, err := ImpactCDF(0, 0.03, 2, 2, 0.005); !errors.Is(err, ErrParam) {
		t.Error("n=0 must error")
	}
	if _, err := ImpactCDF(10, 0.03, 2, 2, 1.5); !errors.Is(err, stats.ErrInvalidProbability) {
		t.Error("b>1 must error")
	}
	if _, err := ImpactCDFFast(10, 0.03, 2, 2, -0.1); !errors.Is(err, stats.ErrInvalidProbability) {
		t.Error("b<0 must error")
	}
}

func TestTuneTau(t *testing.T) {
	t.Parallel()

	// The paper's operating point: n=1000, r=0.03, b=0.005 — τ=3 keeps
	// coincident isolated errors negligible at eps=1e-4... compute what we
	// get and check consistency instead of pinning blindly.
	tau, err := TuneTau(1000, 0.03, 2, 0.005, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if tau < 1 || tau > 5 {
		t.Errorf("TuneTau = %d, expected a small threshold", tau)
	}
	// Verify the defining property: P{F > τ} < eps <= P{F > τ-1}.
	cdf, err := ImpactCDFFast(1000, 0.03, 2, tau, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	if 1-cdf >= 1e-6 {
		t.Errorf("returned τ=%d does not satisfy eps", tau)
	}
	if tau > 1 {
		cdfPrev, err := ImpactCDFFast(1000, 0.03, 2, tau-1, 0.005)
		if err != nil {
			t.Fatal(err)
		}
		if 1-cdfPrev < 1e-6 {
			t.Errorf("τ=%d is not minimal", tau)
		}
	}
	if _, err := TuneTau(1000, 0.03, 2, 0.005, 0); !errors.Is(err, ErrParam) {
		t.Error("eps=0 must error")
	}
}

func TestTuneRadius(t *testing.T) {
	t.Parallel()

	radius, err := TuneRadius(1000, 2, 3, 0.005, 1e-6, 0.24, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	if radius <= 0 || radius > 0.24 {
		t.Errorf("TuneRadius = %v out of range", radius)
	}
	cdf, err := ImpactCDFFast(1000, radius, 2, 3, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	if 1-cdf >= 1e-6 {
		t.Errorf("returned radius %v violates eps", radius)
	}
	if _, err := TuneRadius(1000, 2, 3, 0.005, 1e-6, -1, 0.01); !errors.Is(err, ErrParam) {
		t.Error("bad maxRadius must error")
	}
	// Unsatisfiable: with b = 1 every neighbour is hit, so even tiny radii
	// leave P{F > τ} above an absurdly small eps.
	if _, err := TuneRadius(1000, 2, 3, 1.0, 1e-12, 0.249, 0.05); !errors.Is(err, ErrParam) {
		t.Error("unsatisfiable TuneRadius must error")
	}
}
