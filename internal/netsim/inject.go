package netsim

import (
	"fmt"
	"math"
	"sort"

	"anomalia/internal/stats"
)

// Injector degrades the *delivery* of snapshots, independent of the QoS
// values the network generates: netsim.Network decides what a gateway
// measured, the Injector decides whether that measurement arrives at
// the monitor intact. It models the transport faults the degraded
// ingestion path (Monitor.ObservePartial, the gateway's tolerant mode)
// exists to absorb:
//
//   - random report loss: each device-tick is dropped with DropProb
//     (the row becomes nil);
//   - value corruption: each device-tick is garbled with CorruptProb —
//     one service value is replaced by NaN or ±Inf, the bit patterns a
//     damaged frame or a broken sensor actually produces;
//   - burst outages: scheduled [Start, End) tick windows in which a
//     contiguous device range [From, To) goes completely silent — the
//     shape that drives devices through hold, quarantine and
//     re-admission.
//
// Everything is driven by one seeded stream, consuming exactly one draw
// per device per tick regardless of outage state, so a run is
// reproducible from (Config, tick sequence) alone and outage windows do
// not shift the randomness of the devices around them.
type Injector struct {
	cfg  InjectorConfig
	rng  *stats.RNG
	rows [][]float64 // recycled degraded row table
	mask []bool      // recycled delivered-clean mask
	buf  []float64   // recycled arena for corrupted row copies
	st   InjectStats
}

// InjectorConfig configures an Injector.
type InjectorConfig struct {
	// Seed drives the drop/corruption stream.
	Seed int64
	// DropProb is the per-device-tick probability a report is lost.
	DropProb float64
	// CorruptProb is the per-device-tick probability a delivered report
	// carries a non-finite value.
	CorruptProb float64
	// Outages are scheduled burst losses; they silence their device
	// range regardless of the probabilistic stream.
	Outages []Outage
}

// Outage silences devices [From, To) for ticks [Start, End).
type Outage struct {
	From, To   int
	Start, End int
}

// InjectStats counts what an Injector has done so far.
type InjectStats struct {
	Dropped     int64 // reports lost to DropProb
	Corrupted   int64 // reports garbled with a non-finite value
	OutageTicks int64 // device-ticks silenced by scheduled outages
}

// NewInjector validates the configuration and builds the injector.
func NewInjector(cfg InjectorConfig) (*Injector, error) {
	if cfg.DropProb < 0 || cfg.DropProb > 1 || cfg.CorruptProb < 0 || cfg.CorruptProb > 1 ||
		cfg.DropProb+cfg.CorruptProb > 1 {
		return nil, fmt.Errorf("drop %v + corrupt %v: %w", cfg.DropProb, cfg.CorruptProb, ErrNetConfig)
	}
	for _, o := range cfg.Outages {
		if o.From < 0 || o.To <= o.From || o.Start < 0 || o.End <= o.Start {
			return nil, fmt.Errorf("outage %+v: %w", o, ErrNetConfig)
		}
	}
	return &Injector{cfg: cfg, rng: stats.NewRNG(cfg.Seed)}, nil
}

// Stats returns the lifetime injection counters.
func (in *Injector) Stats() InjectStats { return in.st }

// inOutage reports whether (tick, dev) falls in a scheduled outage.
func (in *Injector) inOutage(tick, dev int) bool {
	for _, o := range in.cfg.Outages {
		if tick >= o.Start && tick < o.End && dev >= o.From && dev < o.To {
			return true
		}
	}
	return false
}

// Apply degrades one tick's delivery. It never mutates rows or the
// values they point to: a corrupted row is a copy. The returned row
// table and delivered mask are reused by the next Apply — consumers
// that keep them must copy. delivered[dev] is true exactly when the
// device's report arrived intact, so it is the mask an oracle monitor
// uses to replay the same tick from clean data (nil where false).
//
// Ticks must be applied in order: the probabilistic stream advances one
// draw per device per call.
func (in *Injector) Apply(tick int, rows [][]float64) (degraded [][]float64, delivered []bool) {
	n := len(rows)
	if cap(in.rows) < n {
		in.rows = make([][]float64, n)
		in.mask = make([]bool, n)
	}
	in.rows = in.rows[:n]
	in.mask = in.mask[:n]
	in.buf = in.buf[:0]
	for dev, row := range rows {
		p := in.rng.Float64()
		in.mask[dev] = false
		switch {
		case in.inOutage(tick, dev):
			in.rows[dev] = nil
			in.st.OutageTicks++
		case p < in.cfg.DropProb:
			in.rows[dev] = nil
			in.st.Dropped++
		case p < in.cfg.DropProb+in.cfg.CorruptProb && len(row) > 0:
			in.rows[dev] = in.corrupt(row, p)
			in.st.Corrupted++
		default:
			in.rows[dev] = row
			in.mask[dev] = true
		}
	}
	return in.rows, in.mask
}

// corrupt copies the row into the recycled arena and garbles one value,
// reusing the draw that selected the device so corruption needs no
// extra randomness.
func (in *Injector) corrupt(row []float64, p float64) []float64 {
	start := len(in.buf)
	in.buf = append(in.buf, row...)
	bad := in.buf[start : start+len(row) : start+len(row)]
	// p landed in [DropProb, DropProb+CorruptProb); rescale it to a
	// uniform draw that picks the victim service and corruption kind,
	// so corruption needs no extra randomness.
	u := (p - in.cfg.DropProb) / in.cfg.CorruptProb
	victim := int(u*float64(len(row))) % len(row)
	switch int(u*float64(3*len(row))) % 3 {
	case 0:
		bad[victim] = math.NaN()
	case 1:
		bad[victim] = math.Inf(1)
	default:
		bad[victim] = math.Inf(-1)
	}
	return bad
}

// OutageSpan reports the union of devices any outage silences at the
// given tick, as a sorted list — the ground truth a soak test checks
// quarantine coverage against.
func (in *Injector) OutageSpan(tick int) []int {
	seen := map[int]bool{}
	for _, o := range in.cfg.Outages {
		if tick >= o.Start && tick < o.End {
			for d := o.From; d < o.To; d++ {
				seen[d] = true
			}
		}
	}
	out := make([]int, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}
