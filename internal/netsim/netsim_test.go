package netsim

import (
	"errors"
	"math"
	"testing"
)

func baseNet(t testing.TB) *Network {
	t.Helper()
	n, err := New(Config{
		Aggregations:     2,
		DSLAMsPerAgg:     3,
		GatewaysPerDSLAM: 4,
		Services:         2,
		BaseQoS:          0.95,
		Noise:            0, // exact values for unit tests
		Seed:             1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewValidation(t *testing.T) {
	t.Parallel()

	bad := []Config{
		{Aggregations: 0, DSLAMsPerAgg: 1, GatewaysPerDSLAM: 1, Services: 1, BaseQoS: 0.9},
		{Aggregations: 1, DSLAMsPerAgg: 1, GatewaysPerDSLAM: 1, Services: 0, BaseQoS: 0.9},
		{Aggregations: 1, DSLAMsPerAgg: 1, GatewaysPerDSLAM: 1, Services: 1, BaseQoS: 0},
		{Aggregations: 1, DSLAMsPerAgg: 1, GatewaysPerDSLAM: 1, Services: 1, BaseQoS: 1.2},
		{Aggregations: 1, DSLAMsPerAgg: 1, GatewaysPerDSLAM: 1, Services: 1, BaseQoS: 0.9, Noise: 0.9},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); !errors.Is(err, ErrNetConfig) {
			t.Errorf("config %d: error = %v, want ErrNetConfig", i, err)
		}
	}
}

func TestTopologyAddressing(t *testing.T) {
	t.Parallel()

	n := baseNet(t)
	if n.Gateways() != 24 || n.Dim() != 2 {
		t.Fatalf("Gateways/Dim = %d/%d", n.Gateways(), n.Dim())
	}
	if n.DSLAMOf(0) != 0 || n.DSLAMOf(3) != 0 || n.DSLAMOf(4) != 1 || n.DSLAMOf(23) != 5 {
		t.Error("DSLAMOf misbehaved")
	}
	if n.AggregationOf(0) != 0 || n.AggregationOf(11) != 0 || n.AggregationOf(12) != 1 {
		t.Error("AggregationOf misbehaved")
	}
}

func TestSampleFaultFree(t *testing.T) {
	t.Parallel()

	n := baseNet(t)
	st, err := n.Sample()
	if err != nil {
		t.Fatal(err)
	}
	for gw := 0; gw < n.Gateways(); gw++ {
		for svc := 0; svc < n.Dim(); svc++ {
			if got := st.At(gw)[svc]; math.Abs(got-0.95) > 1e-12 {
				t.Fatalf("gateway %d service %d QoS = %v, want 0.95", gw, svc, got)
			}
		}
	}
}

func TestFaultScopes(t *testing.T) {
	t.Parallel()

	tests := []struct {
		name     string
		fault    Fault
		impacted []int
	}{
		{
			"gateway",
			Fault{Component: Component{LevelGateway, 5}, Severity: 0.5},
			[]int{5},
		},
		{
			"dslam",
			Fault{Component: Component{LevelDSLAM, 1}, Severity: 0.5},
			[]int{4, 5, 6, 7},
		},
		{
			"aggregation",
			Fault{Component: Component{LevelAggregation, 1}, Severity: 0.5},
			[]int{12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23},
		},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			n := baseNet(t)
			got := n.Impacted(tt.fault)
			if len(got) != len(tt.impacted) {
				t.Fatalf("Impacted = %v, want %v", got, tt.impacted)
			}
			for i := range got {
				if got[i] != tt.impacted[i] {
					t.Fatalf("Impacted = %v, want %v", got, tt.impacted)
				}
			}
			id, err := n.Inject(tt.fault)
			if err != nil {
				t.Fatal(err)
			}
			st, err := n.Sample()
			if err != nil {
				t.Fatal(err)
			}
			inScope := make(map[int]bool)
			for _, g := range tt.impacted {
				inScope[g] = true
			}
			for gw := 0; gw < n.Gateways(); gw++ {
				want := 0.95
				if inScope[gw] {
					want = 0.95 * 0.5
				}
				if got := st.At(gw)[0]; math.Abs(got-want) > 1e-12 {
					t.Fatalf("gateway %d QoS = %v, want %v", gw, got, want)
				}
			}
			if err := n.Clear(id); err != nil {
				t.Fatal(err)
			}
			st, err = n.Sample()
			if err != nil {
				t.Fatal(err)
			}
			if got := st.At(tt.impacted[0])[0]; math.Abs(got-0.95) > 1e-12 {
				t.Fatalf("after Clear, QoS = %v, want 0.95", got)
			}
		})
	}
}

func TestCoreAndBackendFaults(t *testing.T) {
	t.Parallel()

	n := baseNet(t)
	if _, err := n.Inject(Fault{Component: Component{LevelCore, 0}, Severity: 0.2}); err != nil {
		t.Fatal(err)
	}
	st, err := n.Sample()
	if err != nil {
		t.Fatal(err)
	}
	for gw := 0; gw < n.Gateways(); gw++ {
		if got := st.At(gw)[0]; math.Abs(got-0.95*0.8) > 1e-12 {
			t.Fatalf("core fault: gateway %d = %v", gw, got)
		}
	}
	n.ClearAll()
	if n.ActiveFaults() != 0 {
		t.Fatal("ClearAll left faults")
	}

	// Backend fault hits only its service.
	if _, err := n.Inject(Fault{Component: Component{LevelBackend, 1}, Severity: 0.5}); err != nil {
		t.Fatal(err)
	}
	st, err = n.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if got := st.At(0)[0]; math.Abs(got-0.95) > 1e-12 {
		t.Errorf("service 0 should be unaffected: %v", got)
	}
	if got := st.At(0)[1]; math.Abs(got-0.475) > 1e-12 {
		t.Errorf("service 1 should be halved: %v", got)
	}
}

func TestServiceRestrictedFault(t *testing.T) {
	t.Parallel()

	n := baseNet(t)
	if _, err := n.Inject(Fault{
		Component: Component{LevelDSLAM, 0},
		Severity:  0.4,
		Services:  []int{0},
	}); err != nil {
		t.Fatal(err)
	}
	st, err := n.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if got := st.At(0)[0]; math.Abs(got-0.95*0.6) > 1e-12 {
		t.Errorf("restricted service 0 = %v", got)
	}
	if got := st.At(0)[1]; math.Abs(got-0.95) > 1e-12 {
		t.Errorf("unrestricted service 1 = %v", got)
	}
}

func TestFaultComposition(t *testing.T) {
	t.Parallel()

	n := baseNet(t)
	if _, err := n.Inject(Fault{Component: Component{LevelDSLAM, 0}, Severity: 0.5}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Inject(Fault{Component: Component{LevelGateway, 0}, Severity: 0.5}); err != nil {
		t.Fatal(err)
	}
	st, err := n.Sample()
	if err != nil {
		t.Fatal(err)
	}
	// Gateway 0 stacks both faults multiplicatively.
	if got := st.At(0)[0]; math.Abs(got-0.95*0.25) > 1e-12 {
		t.Errorf("stacked faults = %v, want %v", got, 0.95*0.25)
	}
	// Gateway 1 only suffers the DSLAM fault.
	if got := st.At(1)[0]; math.Abs(got-0.95*0.5) > 1e-12 {
		t.Errorf("dslam-only = %v", got)
	}
}

func TestInjectValidation(t *testing.T) {
	t.Parallel()

	n := baseNet(t)
	bad := []Fault{
		{Component: Component{LevelGateway, 99}, Severity: 0.5},
		{Component: Component{LevelDSLAM, -1}, Severity: 0.5},
		{Component: Component{LevelAggregation, 7}, Severity: 0.5},
		{Component: Component{LevelCore, 1}, Severity: 0.5},
		{Component: Component{LevelBackend, 5}, Severity: 0.5},
		{Component: Component{Level(99), 0}, Severity: 0.5},
		{Component: Component{LevelGateway, 0}, Severity: 0},
		{Component: Component{LevelGateway, 0}, Severity: 1.5},
		{Component: Component{LevelGateway, 0}, Severity: 0.5, Services: []int{9}},
	}
	for i, f := range bad {
		if _, err := n.Inject(f); !errors.Is(err, ErrNetConfig) {
			t.Errorf("fault %d: error = %v, want ErrNetConfig", i, err)
		}
	}
	if err := n.Clear(42); !errors.Is(err, ErrNetConfig) {
		t.Errorf("Clear(42) = %v, want ErrNetConfig", err)
	}
}

func TestNoiseBoundedAndDeterministic(t *testing.T) {
	t.Parallel()

	cfg := Config{
		Aggregations: 1, DSLAMsPerAgg: 1, GatewaysPerDSLAM: 10,
		Services: 2, BaseQoS: 0.9, Noise: 0.01, Seed: 7,
	}
	n1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := n1.Sample()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := n2.Sample()
	if err != nil {
		t.Fatal(err)
	}
	for gw := 0; gw < 10; gw++ {
		for svc := 0; svc < 2; svc++ {
			v1, v2 := s1.At(gw)[svc], s2.At(gw)[svc]
			if v1 != v2 {
				t.Fatal("same seed must give identical samples")
			}
			if math.Abs(v1-0.9) > 0.01+1e-12 {
				t.Fatalf("noise out of bounds: %v", v1)
			}
		}
	}
}

func TestLevelString(t *testing.T) {
	t.Parallel()

	want := map[Level]string{
		LevelGateway: "gateway", LevelDSLAM: "dslam",
		LevelAggregation: "aggregation", LevelCore: "core",
		LevelBackend: "backend", Level(0): "unknown",
	}
	for l, s := range want {
		if l.String() != s {
			t.Errorf("Level(%d).String() = %q, want %q", l, l.String(), s)
		}
	}
}
