package netsim

import (
	"testing"

	"anomalia/internal/core"
	"anomalia/internal/detect"
	"anomalia/internal/motion"
	"anomalia/internal/sets"
	"anomalia/internal/space"
)

// TestEndToEndPipeline runs the paper's motivating scenario end to end:
// an ISP fleet of home gateways samples per-service QoS, feeds local
// error-detection functions, and on detection characterizes the anomaly
// locally. A DSLAM outage (network-level) must be classified massive by
// every gateway it hits, and a single broken gateway must classify itself
// isolated — so only the latter calls the ISP's call center.
func TestEndToEndPipeline(t *testing.T) {
	t.Parallel()

	const (
		r   = 0.03
		tau = 3
	)
	net, err := New(Config{
		Aggregations:     2,
		DSLAMsPerAgg:     3,
		GatewaysPerDSLAM: 8,
		Services:         2,
		BaseQoS:          0.95,
		Noise:            0.004,
		Seed:             11,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Per-gateway composite detectors (threshold on jumps beyond the
	// noise floor).
	devices := make([]*detect.Device, net.Gateways())
	for g := range devices {
		devices[g], err = detect.NewDevice(net.Dim(), func(int) (detect.Detector, error) {
			return detect.NewThreshold(0.05)
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	feed := func(st *space.State) []int {
		var abnormal []int
		for g := range devices {
			ab, err := devices[g].Update(st.At(g))
			if err != nil {
				t.Fatal(err)
			}
			if ab {
				abnormal = append(abnormal, g)
			}
		}
		return abnormal
	}
	sample := func() *space.State {
		st, err := net.Sample()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	// Warm up on healthy samples; nothing must be flagged.
	prev := sample()
	if ab := feed(prev); len(ab) != 0 {
		t.Fatalf("false alarms during warmup: %v", ab)
	}
	for i := 0; i < 5; i++ {
		prev = sample()
		if ab := feed(prev); len(ab) != 0 {
			t.Fatalf("false alarms during warmup: %v", ab)
		}
	}

	// Fault injection: DSLAM 1 (gateways 8..15) degrades hard, and
	// gateway 40 breaks on its own.
	dslamFault := Fault{Component: Component{LevelDSLAM, 1}, Severity: 0.3}
	gwFault := Fault{Component: Component{LevelGateway, 40}, Severity: 0.5}
	if _, err := net.Inject(dslamFault); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Inject(gwFault); err != nil {
		t.Fatal(err)
	}
	cur := sample()
	abnormal := feed(cur)

	wantAbnormal := append(sets.CloneInts(net.Impacted(dslamFault)), net.Impacted(gwFault)...)
	wantAbnormal = sets.Canon(wantAbnormal)
	if !sets.EqualInts(abnormal, wantAbnormal) {
		t.Fatalf("abnormal = %v, want %v", abnormal, wantAbnormal)
	}

	// Local characterization over the faulty window.
	pair, err := motion.NewPair(prev, cur)
	if err != nil {
		t.Fatal(err)
	}
	char, err := core.New(pair, abnormal, core.Config{R: r, Tau: tau, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	var callCenterReports []int
	for _, g := range abnormal {
		res, err := char.Characterize(g)
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case g == 40:
			if res.Class != core.ClassIsolated {
				t.Errorf("broken gateway 40 classified %v, want isolated", res.Class)
			}
		default:
			if res.Class != core.ClassMassive {
				t.Errorf("DSLAM-outage gateway %d classified %v, want massive", g, res.Class)
			}
		}
		if res.Class == core.ClassIsolated {
			callCenterReports = append(callCenterReports, g)
		}
	}

	// The point of the paper: 9 impacted devices, one call-center report.
	if !sets.EqualInts(callCenterReports, []int{40}) {
		t.Errorf("call-center reports = %v, want [40]", callCenterReports)
	}
}

// TestOTTScenario flips the reporting policy: an over-the-top operator
// wants to hear about network-level (massive) events only. A backend
// (CDN-side) fault must be reported by the affected clients; a local
// client fault must stay silent.
func TestOTTScenario(t *testing.T) {
	t.Parallel()

	net, err := New(Config{
		Aggregations:     1,
		DSLAMsPerAgg:     2,
		GatewaysPerDSLAM: 10,
		Services:         2,
		BaseQoS:          0.9,
		Noise:            0.004,
		Seed:             23,
	})
	if err != nil {
		t.Fatal(err)
	}
	prev, err := net.Sample()
	if err != nil {
		t.Fatal(err)
	}
	// Backend of service 1 degrades: all 20 clients lose service 1.
	if _, err := net.Inject(Fault{Component: Component{LevelBackend, 1}, Severity: 0.4}); err != nil {
		t.Fatal(err)
	}
	cur, err := net.Sample()
	if err != nil {
		t.Fatal(err)
	}
	pair, err := motion.NewPair(prev, cur)
	if err != nil {
		t.Fatal(err)
	}
	abnormal := make([]int, net.Gateways())
	for i := range abnormal {
		abnormal[i] = i
	}
	char, err := core.New(pair, abnormal, core.Config{R: 0.03, Tau: 3, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	sets_, err := char.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	if len(sets_.Massive) != net.Gateways() {
		t.Errorf("backend fault: %d of %d clients classified massive (%+v)",
			len(sets_.Massive), net.Gateways(), sets_)
	}
}
