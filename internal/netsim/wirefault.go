package netsim

import (
	"fmt"
	"time"

	"anomalia/internal/stats"
)

// WireInjector is the wire-level companion of Injector: where Injector
// degrades the *ingest* path (snapshot delivery from devices to the
// monitor), WireInjector degrades the *decision* path — the requests a
// networked monitor exchanges with its directory shards. It models the
// transport faults the fault-tolerant directory client
// (internal/dirnet) exists to absorb:
//
//   - per-connection latency: a shard's responses are delayed by
//     Latency for the window, with probability SlowProb;
//   - connection drops: every request to a shard fails for the window,
//     with probability DropProb — the retry/backoff/breaker path;
//   - shard crashes: scheduled [Start, End) window ranges in which a
//     shard is down and loses its state, so a recovered shard must be
//     re-initialized, not just re-dialed;
//   - partitions: scheduled window ranges in which a shard is
//     unreachable but keeps its state — the link failed, not the host.
//
// Everything probabilistic is driven by one seeded stream consuming
// exactly one draw per shard per window regardless of outage state —
// the same determinism contract as Injector — so a run is reproducible
// from (WireConfig, window sequence) alone and crash/partition
// schedules never shift the randomness of the shards around them.
type WireInjector struct {
	cfg    WireConfig
	rng    *stats.RNG
	window int
	faults []WireFault // recycled per-window verdict table
	st     WireStats
}

// WireConfig configures a WireInjector.
type WireConfig struct {
	// Seed drives the drop/latency stream.
	Seed int64
	// Shards is the number of directory shards the schedule covers.
	Shards int
	// DropProb is the per-shard-window probability that every request
	// to the shard fails (connection refused / reset).
	DropProb float64
	// SlowProb is the per-shard-window probability that the shard's
	// responses are delayed by Latency.
	SlowProb float64
	// Latency is the response delay applied to slowed shard-windows.
	Latency time.Duration
	// Crashes are scheduled shard outages that lose state: the shard is
	// down for windows [Start, End) and restarts empty.
	Crashes []WireOutage
	// Partitions are scheduled reachability outages that keep state:
	// the shard is unreachable for windows [Start, End).
	Partitions []WireOutage
}

// WireOutage takes Shard out for windows [Start, End).
type WireOutage struct {
	Shard      int
	Start, End int
}

// WireFault is one shard's delivery verdict for one window.
type WireFault struct {
	// Drop: every request to the shard fails this window.
	Drop bool
	// Slow: responses are delayed by the configured Latency.
	Slow bool
	// Down: the shard is crashed (state lost on restart).
	Down bool
	// Partitioned: the shard is unreachable but keeps its state.
	Partitioned bool
}

// Unreachable reports whether any fault makes the shard unable to
// answer this window.
func (f WireFault) Unreachable() bool { return f.Drop || f.Down || f.Partitioned }

// WireStats counts what a WireInjector has done so far, in shard-window
// units.
type WireStats struct {
	Dropped     int64 // shard-windows lost to DropProb
	Slowed      int64 // shard-windows delayed by Latency
	CrashedWins int64 // shard-windows silenced by crash schedules
	PartedWins  int64 // shard-windows silenced by partition schedules
}

// NewWireInjector validates the configuration and builds the injector
// at window 0.
func NewWireInjector(cfg WireConfig) (*WireInjector, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("wire faults over %d shards: %w", cfg.Shards, ErrNetConfig)
	}
	if cfg.DropProb < 0 || cfg.DropProb > 1 || cfg.SlowProb < 0 || cfg.SlowProb > 1 ||
		cfg.DropProb+cfg.SlowProb > 1 {
		return nil, fmt.Errorf("drop %v + slow %v: %w", cfg.DropProb, cfg.SlowProb, ErrNetConfig)
	}
	if cfg.Latency < 0 {
		return nil, fmt.Errorf("latency %v: %w", cfg.Latency, ErrNetConfig)
	}
	for _, o := range append(append([]WireOutage(nil), cfg.Crashes...), cfg.Partitions...) {
		if o.Shard < 0 || o.Shard >= cfg.Shards || o.Start < 0 || o.End <= o.Start {
			return nil, fmt.Errorf("wire outage %+v: %w", o, ErrNetConfig)
		}
	}
	return &WireInjector{
		cfg:    cfg,
		rng:    stats.NewRNG(cfg.Seed),
		faults: make([]WireFault, cfg.Shards),
	}, nil
}

// Window returns the number of windows stepped so far.
func (w *WireInjector) Window() int { return w.window }

// Stats returns the lifetime fault counters.
func (w *WireInjector) Stats() WireStats { return w.st }

// scheduled reports whether (window, shard) falls inside any outage of
// the given schedule.
func scheduled(outages []WireOutage, window, shard int) bool {
	for _, o := range outages {
		if o.Shard == shard && window >= o.Start && window < o.End {
			return true
		}
	}
	return false
}

// Step advances the injector by one window and returns the per-shard
// fault verdicts. The returned slice is reused by the next Step —
// consumers that keep it must copy. Exactly one probabilistic draw is
// consumed per shard regardless of outage state, so crash and
// partition schedules never perturb the drop/latency pattern of the
// shards around them.
func (w *WireInjector) Step() []WireFault {
	for s := range w.faults {
		p := w.rng.Float64()
		f := WireFault{
			Down:        scheduled(w.cfg.Crashes, w.window, s),
			Partitioned: scheduled(w.cfg.Partitions, w.window, s),
		}
		switch {
		case f.Down:
			w.st.CrashedWins++
		case f.Partitioned:
			w.st.PartedWins++
		case p < w.cfg.DropProb:
			f.Drop = true
			w.st.Dropped++
		case p < w.cfg.DropProb+w.cfg.SlowProb:
			f.Slow = true
			w.st.Slowed++
		}
		w.faults[s] = f
	}
	w.window++
	return w.faults
}

// CrashedAt reports whether the shard is inside a crash window — the
// ground truth a soak harness uses to drop and rebuild server state.
func (w *WireInjector) CrashedAt(window, shard int) bool {
	return scheduled(w.cfg.Crashes, window, shard)
}
