package netsim

import (
	"math"
	"reflect"
	"testing"
)

func injectRows(n, d int) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		row := make([]float64, d)
		for j := range row {
			row[j] = 0.9
		}
		rows[i] = row
	}
	return rows
}

func TestInjectorRejectsBadConfig(t *testing.T) {
	for _, cfg := range []InjectorConfig{
		{DropProb: -0.1},
		{CorruptProb: 1.2},
		{DropProb: 0.6, CorruptProb: 0.6},
		{Outages: []Outage{{From: 3, To: 3, Start: 0, End: 1}}},
		{Outages: []Outage{{From: 0, To: 2, Start: 5, End: 5}}},
	} {
		if _, err := NewInjector(cfg); err == nil {
			t.Errorf("NewInjector(%+v): want error", cfg)
		}
	}
}

// TestInjectorDeterminism: two injectors with the same config produce
// identical degradation tick for tick.
func TestInjectorDeterminism(t *testing.T) {
	cfg := InjectorConfig{Seed: 9, DropProb: 0.1, CorruptProb: 0.1,
		Outages: []Outage{{From: 2, To: 5, Start: 3, End: 6}}}
	a, err := NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// sameRows compares with NaN equal to NaN: corrupted values are
	// non-finite by design, which DeepEqual would call unequal.
	sameRows := func(x, y [][]float64) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if (x[i] == nil) != (y[i] == nil) || len(x[i]) != len(y[i]) {
				return false
			}
			for j := range x[i] {
				if x[i][j] != y[i][j] && !(math.IsNaN(x[i][j]) && math.IsNaN(y[i][j])) {
					return false
				}
			}
		}
		return true
	}
	rows := injectRows(32, 2)
	for tick := 0; tick < 10; tick++ {
		ra, ma := a.Apply(tick, rows)
		rb, mb := b.Apply(tick, rows)
		if !sameRows(ra, rb) || !reflect.DeepEqual(ma, mb) {
			t.Fatalf("tick %d: same seed, different degradation", tick)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverge: %+v vs %+v", a.Stats(), b.Stats())
	}
}

// TestInjectorNeverMutatesInput: corruption must copy, and a clean
// delivery must alias the caller's row (no copying tax on the common
// case).
func TestInjectorNeverMutatesInput(t *testing.T) {
	inj, err := NewInjector(InjectorConfig{Seed: 4, DropProb: 0.2, CorruptProb: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	rows := injectRows(64, 3)
	for tick := 0; tick < 20; tick++ {
		degraded, delivered := inj.Apply(tick, rows)
		for dev, row := range rows {
			for _, v := range row {
				if v != 0.9 {
					t.Fatalf("tick %d: input row %d mutated", tick, dev)
				}
			}
			switch {
			case degraded[dev] == nil:
				if delivered[dev] {
					t.Fatalf("tick %d device %d: dropped but marked delivered", tick, dev)
				}
			case delivered[dev]:
				if &degraded[dev][0] != &row[0] {
					t.Fatalf("tick %d device %d: clean delivery copied", tick, dev)
				}
			default:
				// Corrupted: a copy carrying exactly one non-finite value.
				if &degraded[dev][0] == &row[0] {
					t.Fatalf("tick %d device %d: corruption aliases the input", tick, dev)
				}
				bad := 0
				for _, v := range degraded[dev] {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						bad++
					}
				}
				if bad != 1 {
					t.Fatalf("tick %d device %d: %d non-finite values, want 1", tick, dev, bad)
				}
			}
		}
	}
	st := inj.Stats()
	if st.Dropped == 0 || st.Corrupted == 0 {
		t.Fatalf("stats %+v: expected both drops and corruptions at these rates", st)
	}
}

// TestInjectorOutageCoverage: outage windows silence exactly their
// device range, and the stream's randomness does not shift around them
// (a device outside every outage sees the same fate with and without
// the outages configured).
func TestInjectorOutageCoverage(t *testing.T) {
	base := InjectorConfig{Seed: 77, DropProb: 0.05, CorruptProb: 0.05}
	withOutage := base
	withOutage.Outages = []Outage{{From: 10, To: 20, Start: 2, End: 5}, {From: 15, To: 25, Start: 4, End: 6}}

	plain, err := NewInjector(base)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := NewInjector(withOutage)
	if err != nil {
		t.Fatal(err)
	}
	rows := injectRows(40, 2)
	for tick := 0; tick < 8; tick++ {
		span := inj.OutageSpan(tick)
		inSpan := map[int]bool{}
		for _, d := range span {
			inSpan[d] = true
		}
		got, gotMask := inj.Apply(tick, rows)
		want, wantMask := plain.Apply(tick, rows)
		for dev := range rows {
			if inSpan[dev] {
				if got[dev] != nil || gotMask[dev] {
					t.Fatalf("tick %d device %d: outage did not silence", tick, dev)
				}
				continue
			}
			if (got[dev] == nil) != (want[dev] == nil) || gotMask[dev] != wantMask[dev] {
				t.Fatalf("tick %d device %d: outage shifted the random stream", tick, dev)
			}
		}
	}
	// Spot-check the span union: tick 4 is covered by both outages.
	span := inj.OutageSpan(4)
	if len(span) != 15 || span[0] != 10 || span[len(span)-1] != 24 {
		t.Fatalf("OutageSpan(4) = %v", span)
	}
	if got := inj.OutageSpan(7); len(got) != 0 {
		t.Fatalf("OutageSpan(7) = %v, want empty", got)
	}
	if st := inj.Stats(); st.OutageTicks == 0 {
		t.Fatalf("stats %+v: outage ticks uncounted", st)
	}
}
