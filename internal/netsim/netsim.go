// Package netsim is the network substrate substituting for the production
// gateway fleets that motivate the paper (Section I): a hierarchical ISP
// access network — core router, aggregation routers, DSLAMs, home
// gateways — delivering d services whose end-to-end QoS each gateway
// measures in [0,1].
//
// Faults injected at any component degrade the QoS of every service path
// crossing it, for every gateway in the component's subtree — producing
// exactly the massive/isolated dichotomy the characterizer must recover:
// a DSLAM or aggregation fault hits a whole subtree coherently (massive,
// network-level), a gateway fault hits one device (isolated, local).
// The fault scope is the ground truth for end-to-end pipeline tests.
package netsim

import (
	"errors"
	"fmt"

	"anomalia/internal/space"
	"anomalia/internal/stats"
)

// Level identifies a tier of the access network.
type Level int

// Network tiers, from the leaves up, plus the per-service backends.
const (
	LevelGateway Level = iota + 1
	LevelDSLAM
	LevelAggregation
	LevelCore
	LevelBackend
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelGateway:
		return "gateway"
	case LevelDSLAM:
		return "dslam"
	case LevelAggregation:
		return "aggregation"
	case LevelCore:
		return "core"
	case LevelBackend:
		return "backend"
	default:
		return "unknown"
	}
}

// Component addresses one network element: the Index is global within the
// level (gateway 0..G-1, DSLAM 0..D-1, aggregation 0..A-1, core 0,
// backend 0..services-1).
type Component struct {
	Level Level
	Index int
}

// Fault is a QoS degradation at a component: every service path crossing
// the component loses a factor (1 - Severity). Services restricts the
// affected services; nil means all.
type Fault struct {
	Component Component
	// Severity in (0, 1]: fraction of QoS lost at this component.
	Severity float64
	// Services restricts the fault to specific service indices (nil: all).
	Services []int
}

// Config sizes the simulated network.
type Config struct {
	// Aggregations is the number of aggregation routers under the core.
	Aggregations int
	// DSLAMsPerAgg is the number of DSLAMs per aggregation router.
	DSLAMsPerAgg int
	// GatewaysPerDSLAM is the number of home gateways per DSLAM.
	GatewaysPerDSLAM int
	// Services is the number of monitored services d.
	Services int
	// BaseQoS is the fault-free per-service QoS level (e.g. 0.95).
	BaseQoS float64
	// Noise is the half-amplitude of the uniform measurement noise.
	Noise float64
	// Seed drives the noise stream.
	Seed int64
}

// ErrNetConfig is returned for invalid network configurations or fault
// specifications.
var ErrNetConfig = errors.New("netsim: invalid configuration")

// Network is a simulated access network with live fault state.
type Network struct {
	cfg    Config
	rng    *stats.RNG
	faults map[int]Fault
	nextID int
	nGw    int
	nDslam int
}

// New validates the configuration and builds the network.
func New(cfg Config) (*Network, error) {
	if cfg.Aggregations < 1 || cfg.DSLAMsPerAgg < 1 || cfg.GatewaysPerDSLAM < 1 {
		return nil, fmt.Errorf("topology %d/%d/%d: %w",
			cfg.Aggregations, cfg.DSLAMsPerAgg, cfg.GatewaysPerDSLAM, ErrNetConfig)
	}
	if cfg.Services < space.MinDim || cfg.Services > space.MaxDim {
		return nil, fmt.Errorf("services = %d: %w", cfg.Services, ErrNetConfig)
	}
	if cfg.BaseQoS <= 0 || cfg.BaseQoS > 1 {
		return nil, fmt.Errorf("base QoS %v: %w", cfg.BaseQoS, ErrNetConfig)
	}
	if cfg.Noise < 0 || cfg.Noise >= cfg.BaseQoS {
		return nil, fmt.Errorf("noise %v: %w", cfg.Noise, ErrNetConfig)
	}
	nDslam := cfg.Aggregations * cfg.DSLAMsPerAgg
	return &Network{
		cfg:    cfg,
		rng:    stats.NewRNG(cfg.Seed),
		faults: make(map[int]Fault),
		nGw:    nDslam * cfg.GatewaysPerDSLAM,
		nDslam: nDslam,
	}, nil
}

// Gateways returns the number of home gateways (monitored devices).
func (n *Network) Gateways() int { return n.nGw }

// Dim returns the number of services d.
func (n *Network) Dim() int { return n.cfg.Services }

// DSLAMOf returns the DSLAM index serving gateway g.
func (n *Network) DSLAMOf(g int) int { return g / n.cfg.GatewaysPerDSLAM }

// AggregationOf returns the aggregation router index above gateway g.
func (n *Network) AggregationOf(g int) int { return n.DSLAMOf(g) / n.cfg.DSLAMsPerAgg }

// validateComponent checks that a component address exists.
func (n *Network) validateComponent(c Component) error {
	switch c.Level {
	case LevelGateway:
		if c.Index < 0 || c.Index >= n.nGw {
			return fmt.Errorf("gateway %d of %d: %w", c.Index, n.nGw, ErrNetConfig)
		}
	case LevelDSLAM:
		if c.Index < 0 || c.Index >= n.nDslam {
			return fmt.Errorf("dslam %d of %d: %w", c.Index, n.nDslam, ErrNetConfig)
		}
	case LevelAggregation:
		if c.Index < 0 || c.Index >= n.cfg.Aggregations {
			return fmt.Errorf("aggregation %d of %d: %w", c.Index, n.cfg.Aggregations, ErrNetConfig)
		}
	case LevelCore:
		if c.Index != 0 {
			return fmt.Errorf("core %d: %w", c.Index, ErrNetConfig)
		}
	case LevelBackend:
		if c.Index < 0 || c.Index >= n.cfg.Services {
			return fmt.Errorf("backend %d of %d: %w", c.Index, n.cfg.Services, ErrNetConfig)
		}
	default:
		return fmt.Errorf("level %d: %w", c.Level, ErrNetConfig)
	}
	return nil
}

// Inject activates a fault and returns its id for later clearing.
func (n *Network) Inject(f Fault) (int, error) {
	if err := n.validateComponent(f.Component); err != nil {
		return 0, err
	}
	if f.Severity <= 0 || f.Severity > 1 {
		return 0, fmt.Errorf("severity %v: %w", f.Severity, ErrNetConfig)
	}
	for _, s := range f.Services {
		if s < 0 || s >= n.cfg.Services {
			return 0, fmt.Errorf("service %d of %d: %w", s, n.cfg.Services, ErrNetConfig)
		}
	}
	id := n.nextID
	n.nextID++
	n.faults[id] = f
	return id, nil
}

// Clear removes an active fault.
func (n *Network) Clear(id int) error {
	if _, ok := n.faults[id]; !ok {
		return fmt.Errorf("fault %d not active: %w", id, ErrNetConfig)
	}
	delete(n.faults, id)
	return nil
}

// ClearAll removes every active fault.
func (n *Network) ClearAll() {
	for id := range n.faults {
		delete(n.faults, id)
	}
}

// ActiveFaults returns the number of live faults.
func (n *Network) ActiveFaults() int { return len(n.faults) }

// onPath reports whether the component sits on the service path of
// (gateway, service): gateway -> DSLAM -> aggregation -> core -> backend.
func (n *Network) onPath(c Component, gw, svc int) bool {
	switch c.Level {
	case LevelGateway:
		return c.Index == gw
	case LevelDSLAM:
		return c.Index == n.DSLAMOf(gw)
	case LevelAggregation:
		return c.Index == n.AggregationOf(gw)
	case LevelCore:
		return true
	case LevelBackend:
		return c.Index == svc
	default:
		return false
	}
}

// affects reports whether the fault degrades the given service.
func (f Fault) affects(svc int) bool {
	if len(f.Services) == 0 {
		return true
	}
	for _, s := range f.Services {
		if s == svc {
			return true
		}
	}
	return false
}

// Sample measures the end-to-end QoS of every gateway for every service:
// the base level, multiplied by (1 - severity) for each active fault on
// the path, plus measurement noise, clamped into [0,1].
func (n *Network) Sample() (*space.State, error) {
	st, err := space.NewState(n.nGw, n.cfg.Services)
	if err != nil {
		return nil, err
	}
	p := make(space.Point, n.cfg.Services)
	for gw := 0; gw < n.nGw; gw++ {
		for svc := 0; svc < n.cfg.Services; svc++ {
			q := n.cfg.BaseQoS
			for _, f := range n.sortedFaults() {
				if f.affects(svc) && n.onPath(f.Component, gw, svc) {
					q *= 1 - f.Severity
				}
			}
			q += n.cfg.Noise * (2*n.rng.Float64() - 1)
			p[svc] = q
		}
		if err := st.Set(gw, p); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// sortedFaults returns the active faults in id order so the noise stream
// consumption — and therefore every sample — is deterministic.
func (n *Network) sortedFaults() []Fault {
	out := make([]Fault, 0, len(n.faults))
	for id := 0; id < n.nextID; id++ {
		if f, ok := n.faults[id]; ok {
			out = append(out, f)
		}
	}
	return out
}

// Impacted returns the gateways whose QoS a fault degrades — the ground
// truth scope used to label anomalies massive (scope > τ) or isolated.
func (n *Network) Impacted(f Fault) []int {
	var out []int
	for gw := 0; gw < n.nGw; gw++ {
		for svc := 0; svc < n.cfg.Services; svc++ {
			if f.affects(svc) && n.onPath(f.Component, gw, svc) {
				out = append(out, gw)
				break
			}
		}
	}
	return out
}
