package netsim

import (
	"fmt"
	"sort"

	"anomalia/internal/space"
)

// ScheduledFault is a fault with a lifetime on the simulation clock: it
// activates at tick Start and clears after Duration ticks (0 = permanent).
type ScheduledFault struct {
	Fault Fault
	// Start is the tick (0-based sample index) at which the fault begins.
	Start int
	// Duration in ticks; 0 means the fault never clears.
	Duration int
}

// Runner drives a Network through a timeline of scheduled faults,
// producing one QoS snapshot per tick and exposing the ground-truth fault
// activity per window — the long-running harness behind multi-window
// integration tests and demos.
type Runner struct {
	net      *Network
	schedule []ScheduledFault
	active   map[int]int // schedule index -> fault id
	tick     int
}

// NewRunner validates the schedule against the network and returns a
// runner at tick 0.
func NewRunner(net *Network, schedule []ScheduledFault) (*Runner, error) {
	if net == nil {
		return nil, fmt.Errorf("nil network: %w", ErrNetConfig)
	}
	for i, sf := range schedule {
		if sf.Start < 0 || sf.Duration < 0 {
			return nil, fmt.Errorf("schedule %d: start %d duration %d: %w",
				i, sf.Start, sf.Duration, ErrNetConfig)
		}
		if err := net.validateComponent(sf.Fault.Component); err != nil {
			return nil, fmt.Errorf("schedule %d: %w", i, err)
		}
		if sf.Fault.Severity <= 0 || sf.Fault.Severity > 1 {
			return nil, fmt.Errorf("schedule %d: severity %v: %w", i, sf.Fault.Severity, ErrNetConfig)
		}
	}
	ordered := make([]ScheduledFault, len(schedule))
	copy(ordered, schedule)
	sort.SliceStable(ordered, func(a, b int) bool { return ordered[a].Start < ordered[b].Start })
	return &Runner{
		net:      net,
		schedule: ordered,
		active:   make(map[int]int),
	}, nil
}

// Tick returns the current tick (number of snapshots produced).
func (r *Runner) Tick() int { return r.tick }

// ActiveFaults returns how many scheduled faults are currently live.
func (r *Runner) ActiveFaults() int { return len(r.active) }

// Step advances the clock by one tick: it activates and clears scheduled
// faults due at this tick, then samples the network. The second return
// value lists the gateways currently inside any active fault's scope (the
// window's ground truth).
func (r *Runner) Step() (*space.State, []int, error) {
	// Clear expired faults first so a Duration of 1 affects exactly one
	// snapshot.
	for idx, id := range r.active {
		sf := r.schedule[idx]
		if sf.Duration > 0 && r.tick >= sf.Start+sf.Duration {
			if err := r.net.Clear(id); err != nil {
				return nil, nil, fmt.Errorf("clearing schedule %d: %w", idx, err)
			}
			delete(r.active, idx)
		}
	}
	// Activate faults starting now.
	for idx, sf := range r.schedule {
		if sf.Start != r.tick {
			continue
		}
		if _, already := r.active[idx]; already {
			continue
		}
		id, err := r.net.Inject(sf.Fault)
		if err != nil {
			return nil, nil, fmt.Errorf("activating schedule %d: %w", idx, err)
		}
		r.active[idx] = id
	}

	st, err := r.net.Sample()
	if err != nil {
		return nil, nil, err
	}
	var impacted []int
	seen := make(map[int]bool)
	for idx := range r.active {
		for _, g := range r.net.Impacted(r.schedule[idx].Fault) {
			if !seen[g] {
				seen[g] = true
				impacted = append(impacted, g)
			}
		}
	}
	sort.Ints(impacted)
	r.tick++
	return st, impacted, nil
}
