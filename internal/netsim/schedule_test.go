package netsim

import (
	"errors"
	"math"
	"testing"
)

func TestNewRunnerValidation(t *testing.T) {
	t.Parallel()

	net := baseNet(t)
	if _, err := NewRunner(nil, nil); !errors.Is(err, ErrNetConfig) {
		t.Errorf("nil network = %v", err)
	}
	bad := []ScheduledFault{
		{Fault: Fault{Component: Component{LevelDSLAM, 0}, Severity: 0.5}, Start: -1},
		{Fault: Fault{Component: Component{LevelDSLAM, 0}, Severity: 0.5}, Duration: -2},
		{Fault: Fault{Component: Component{LevelDSLAM, 99}, Severity: 0.5}},
		{Fault: Fault{Component: Component{LevelDSLAM, 0}, Severity: 0}},
	}
	for i, sf := range bad {
		if _, err := NewRunner(net, []ScheduledFault{sf}); !errors.Is(err, ErrNetConfig) {
			t.Errorf("schedule %d: error = %v", i, err)
		}
	}
}

func TestRunnerLifecycle(t *testing.T) {
	t.Parallel()

	net := baseNet(t)
	runner, err := NewRunner(net, []ScheduledFault{
		{
			Fault:    Fault{Component: Component{LevelDSLAM, 0}, Severity: 0.5},
			Start:    2,
			Duration: 3, // live at ticks 2, 3, 4
		},
		{
			Fault: Fault{Component: Component{LevelGateway, 20}, Severity: 0.4},
			Start: 4, // permanent
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	type wantTick struct {
		impacted int
		qosGw0   float64 // gateway 0 sits under DSLAM 0
		qosGw20  float64
	}
	wants := []wantTick{
		{0, 0.95, 0.95},        // tick 0: nothing
		{0, 0.95, 0.95},        // tick 1: nothing
		{4, 0.475, 0.95},       // tick 2: dslam fault live
		{4, 0.475, 0.95},       // tick 3
		{5, 0.475, 0.95 * 0.6}, // tick 4: both live
		{1, 0.95, 0.95 * 0.6},  // tick 5: dslam cleared, gateway permanent
		{1, 0.95, 0.95 * 0.6},  // tick 6
	}
	for tick, want := range wants {
		st, impacted, err := runner.Step()
		if err != nil {
			t.Fatalf("tick %d: %v", tick, err)
		}
		if len(impacted) != want.impacted {
			t.Errorf("tick %d: impacted = %v, want %d devices", tick, impacted, want.impacted)
		}
		if got := st.At(0)[0]; math.Abs(got-want.qosGw0) > 1e-12 {
			t.Errorf("tick %d: gw0 QoS = %v, want %v", tick, got, want.qosGw0)
		}
		if got := st.At(20)[0]; math.Abs(got-want.qosGw20) > 1e-12 {
			t.Errorf("tick %d: gw20 QoS = %v, want %v", tick, got, want.qosGw20)
		}
	}
	if runner.Tick() != len(wants) {
		t.Errorf("Tick = %d", runner.Tick())
	}
	if runner.ActiveFaults() != 1 {
		t.Errorf("ActiveFaults = %d, want the permanent gateway fault", runner.ActiveFaults())
	}
}

func TestRunnerOverlappingSameTick(t *testing.T) {
	t.Parallel()

	net := baseNet(t)
	runner, err := NewRunner(net, []ScheduledFault{
		{Fault: Fault{Component: Component{LevelDSLAM, 0}, Severity: 0.5}, Start: 0, Duration: 1},
		{Fault: Fault{Component: Component{LevelGateway, 0}, Severity: 0.5}, Start: 0, Duration: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	st, impacted, err := runner.Step()
	if err != nil {
		t.Fatal(err)
	}
	// Gateway 0 stacks both: 0.95 * 0.5 * 0.5.
	if got := st.At(0)[0]; math.Abs(got-0.2375) > 1e-12 {
		t.Errorf("stacked QoS = %v", got)
	}
	if len(impacted) != 4 {
		t.Errorf("impacted = %v", impacted)
	}
	// Next tick: both cleared.
	st, impacted, err = runner.Step()
	if err != nil {
		t.Fatal(err)
	}
	if len(impacted) != 0 {
		t.Errorf("impacted after expiry = %v", impacted)
	}
	if got := st.At(0)[0]; math.Abs(got-0.95) > 1e-12 {
		t.Errorf("QoS after expiry = %v", got)
	}
}
