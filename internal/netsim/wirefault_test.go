package netsim

import (
	"errors"
	"testing"
	"time"
)

func TestWireInjectorConfigValidation(t *testing.T) {
	bad := []WireConfig{
		{Shards: 0},
		{Shards: 2, DropProb: -0.1},
		{Shards: 2, DropProb: 0.7, SlowProb: 0.5},
		{Shards: 2, SlowProb: 1.5},
		{Shards: 2, Latency: -time.Millisecond},
		{Shards: 2, Crashes: []WireOutage{{Shard: 2, Start: 0, End: 1}}},
		{Shards: 2, Crashes: []WireOutage{{Shard: 0, Start: 5, End: 5}}},
		{Shards: 2, Partitions: []WireOutage{{Shard: -1, Start: 0, End: 1}}},
		{Shards: 2, Partitions: []WireOutage{{Shard: 1, Start: -1, End: 1}}},
	}
	for i, cfg := range bad {
		if _, err := NewWireInjector(cfg); !errors.Is(err, ErrNetConfig) {
			t.Errorf("config %d (%+v): error = %v, want ErrNetConfig", i, cfg, err)
		}
	}
	if _, err := NewWireInjector(WireConfig{Shards: 1}); err != nil {
		t.Fatalf("minimal config rejected: %v", err)
	}
}

// TestWireInjectorScheduleIndependence is the determinism contract: the
// probabilistic drop/slow stream consumes exactly one draw per shard per
// window whether or not a schedule silences the shard, so adding a crash
// or partition schedule must not perturb the fault pattern of any
// unaffected shard-window.
func TestWireInjectorScheduleIndependence(t *testing.T) {
	const shards, windows = 4, 120
	base := WireConfig{Seed: 42, Shards: shards, DropProb: 0.2, SlowProb: 0.3, Latency: time.Millisecond}
	sched := base
	sched.Crashes = []WireOutage{{Shard: 1, Start: 10, End: 40}}
	sched.Partitions = []WireOutage{{Shard: 3, Start: 60, End: 90}}

	a, err := NewWireInjector(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewWireInjector(sched)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < windows; w++ {
		fa := append([]WireFault(nil), a.Step()...)
		fb := b.Step()
		for s := 0; s < shards; s++ {
			inCrash := s == 1 && w >= 10 && w < 40
			inPart := s == 3 && w >= 60 && w < 90
			if inCrash || inPart {
				if fb[s].Down != inCrash || fb[s].Partitioned != inPart {
					t.Fatalf("window %d shard %d: scheduled fault missing: %+v", w, s, fb[s])
				}
				if fb[s].Drop || fb[s].Slow {
					t.Fatalf("window %d shard %d: probabilistic fault inside outage: %+v", w, s, fb[s])
				}
				continue
			}
			if fa[s] != fb[s] {
				t.Fatalf("window %d shard %d: schedule perturbed randomness: base %+v vs scheduled %+v",
					w, s, fa[s], fb[s])
			}
		}
	}
}

func TestWireInjectorDeterministicReplay(t *testing.T) {
	cfg := WireConfig{
		Seed: 7, Shards: 3, DropProb: 0.1, SlowProb: 0.2, Latency: 2 * time.Millisecond,
		Crashes:    []WireOutage{{Shard: 0, Start: 5, End: 9}},
		Partitions: []WireOutage{{Shard: 2, Start: 12, End: 20}},
	}
	a, _ := NewWireInjector(cfg)
	b, _ := NewWireInjector(cfg)
	for w := 0; w < 50; w++ {
		fa := append([]WireFault(nil), a.Step()...)
		fb := b.Step()
		for s := range fb {
			if fa[s] != fb[s] {
				t.Fatalf("window %d shard %d: replay diverged", w, s)
			}
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("replay stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
	if a.Window() != 50 {
		t.Fatalf("Window() = %d, want 50", a.Window())
	}
}

func TestWireInjectorStatsAccounting(t *testing.T) {
	cfg := WireConfig{
		Seed: 3, Shards: 2, DropProb: 0.5, SlowProb: 0.5,
		Crashes:    []WireOutage{{Shard: 0, Start: 0, End: 10}},
		Partitions: []WireOutage{{Shard: 1, Start: 0, End: 10}},
	}
	w, _ := NewWireInjector(cfg)
	for i := 0; i < 10; i++ {
		faults := w.Step()
		if !faults[0].Down || !faults[1].Partitioned {
			t.Fatalf("window %d: scheduled faults not applied: %+v", i, faults)
		}
		if !faults[0].Unreachable() || !faults[1].Unreachable() {
			t.Fatalf("window %d: Unreachable() false during outage", i)
		}
	}
	st := w.Stats()
	if st.CrashedWins != 10 || st.PartedWins != 10 || st.Dropped != 0 || st.Slowed != 0 {
		t.Fatalf("stats = %+v, want 10 crashed / 10 parted / 0 probabilistic", st)
	}
	if !w.CrashedAt(5, 0) || w.CrashedAt(10, 0) || w.CrashedAt(5, 1) {
		t.Fatalf("CrashedAt ground truth wrong")
	}
	// Past the schedules every shard-window is probabilistic: drop+slow
	// probabilities sum to 1, so each of the next 20 shard-windows counts.
	for i := 0; i < 10; i++ {
		w.Step()
	}
	st = w.Stats()
	if st.Dropped+st.Slowed != 20 {
		t.Fatalf("probabilistic shard-windows = %d, want 20 (%+v)", st.Dropped+st.Slowed, st)
	}
}
