package core

import (
	"fmt"
	"runtime"
	"sync"
)

// CharacterizeAllParallel classifies every abnormal device using a pool
// of workers, producing exactly the results of CharacterizeAll in device
// order. workers <= 0 selects GOMAXPROCS.
//
// The computation has two phases: first the per-device maximal-motion
// enumerations — the shared memo every decision reads — are filled in
// parallel; then the decisions themselves run in parallel against the
// read-only cache. This mirrors the deployment reality that each device
// decides independently once trajectories are exchanged.
//
// Work is partitioned along the component decomposition: each task is a
// contiguous range of the component member slab, cut at component
// boundaries (oversized components are split). A worker therefore works
// through whole components at a time, touching one compact universe's
// scratch and memo entries before moving on, instead of hopping between
// components on every device.
//
// Worth knowing: per-device decisions are microseconds at the paper's
// density, so the pool only pays off on windows with expensive exact
// searches or very large abnormal sets; on small windows the coordination
// overhead dominates (see BenchmarkCharacterizeAllParallel).
func (c *Characterizer) CharacterizeAllParallel(workers int) ([]Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(c.abnormal) {
		workers = len(c.abnormal)
	}
	if workers <= 1 {
		return c.CharacterizeAll()
	}

	// The graph is built over exactly c.abnormal, so graph-local vertex
	// li is also the position of its device in c.abnormal — the slab
	// entries double as result indices, and filling results by vertex
	// yields device order with no final sort.
	slab := c.comps.AllVerts()
	ranges := c.componentRanges(workers)

	// Phase 1: fill the motion memo in parallel, one enumeration per
	// component (components are the memo's natural unit — one
	// Bron–Kerbosch run yields every member's entry). Each worker
	// computes into its own shard; shards merge into the shared cache
	// before any decision reads it.
	type compEntries struct {
		comp    int
		entries []denseEntry
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		tasks = make(chan [2]int)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local []compEntries
			for r := range tasks {
				for ci := r[0]; ci < r[1]; ci++ {
					local = append(local, compEntries{comp: ci, entries: c.enumerateComponent(ci)})
				}
			}
			mu.Lock()
			for _, ce := range local {
				for i, v := range c.comps.Verts(ce.comp) {
					c.denseCache[c.graph.IDOf(int(v))] = ce.entries[i]
				}
			}
			mu.Unlock()
		}()
	}
	for _, r := range c.componentIndexRanges(workers) {
		tasks <- r
	}
	close(tasks)
	wg.Wait()

	// Phase 2: decide in parallel against the warm, now read-only cache.
	results := make([]Result, len(c.abnormal))
	errs := make([]error, len(c.abnormal))
	tasks2 := make(chan [2]int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range tasks2 {
				for p := r[0]; p < r[1]; p++ {
					li := int(slab[p])
					results[li], errs[li] = c.Characterize(c.graph.IDOf(li))
				}
			}
		}()
	}
	for _, r := range ranges {
		tasks2 <- r
	}
	close(tasks2)
	wg.Wait()

	// Vertex order is device order, so the first error found scanning
	// ascending is the first error CharacterizeAll would have hit.
	for li, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("characterizing device %d: %w", c.graph.IDOf(li), err)
		}
	}
	return results, nil
}

// componentIndexRanges batches component indices into [lo, hi) task
// ranges of roughly equal member mass, never splitting a component — the
// phase-1 work unit is a whole component's enumeration.
func (c *Characterizer) componentIndexRanges(workers int) [][2]int {
	n := c.comps.Count()
	target := len(c.abnormal) / (workers * 4)
	if target < 16 {
		target = 16
	}
	var ranges [][2]int
	start, mass := 0, 0
	for ci := 0; ci < n; ci++ {
		mass += c.comps.Size(ci)
		if mass >= target {
			ranges = append(ranges, [2]int{start, ci + 1})
			start, mass = ci+1, 0
		}
	}
	if start < n {
		ranges = append(ranges, [2]int{start, n})
	}
	return ranges
}

// componentRanges cuts the component member slab into contiguous [lo, hi)
// task ranges: small components are batched together up to a per-task
// target, components larger than the target are split into target-sized
// chunks. Every range respects the slab's grouping — a range only spans
// multiple components when each of them fits inside it whole.
func (c *Characterizer) componentRanges(workers int) [][2]int {
	m := len(c.abnormal)
	target := m / (workers * 4)
	if target < 16 {
		target = 16
	}
	var ranges [][2]int
	pending := -1 // start of an unflushed batch of small components
	flush := func(end int) {
		if pending >= 0 && end > pending {
			ranges = append(ranges, [2]int{pending, end})
		}
		pending = -1
	}
	cum := 0
	for ci := 0; ci < c.comps.Count(); ci++ {
		lo, hi := cum, cum+c.comps.Size(ci)
		cum = hi
		if hi-lo >= target {
			flush(lo)
			for p := lo; p < hi; p += target {
				end := p + target
				if end > hi {
					end = hi
				}
				ranges = append(ranges, [2]int{p, end})
			}
			continue
		}
		if pending < 0 {
			pending = lo
		}
		if hi-pending >= target {
			flush(hi)
		}
	}
	flush(cum)
	return ranges
}
