package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// CharacterizeAllParallel classifies every abnormal device using a pool
// of workers, producing exactly the results of CharacterizeAll in device
// order. workers <= 0 selects GOMAXPROCS.
//
// The computation has two phases: first the per-device maximal-motion
// enumerations — the shared memo every decision reads — are filled in
// parallel; then the decisions themselves run in parallel against the
// read-only cache. This mirrors the deployment reality that each device
// decides independently once trajectories are exchanged.
//
// Worth knowing: per-device decisions are microseconds at the paper's
// density, so the pool only pays off on windows with expensive exact
// searches or very large abnormal sets; on small windows the coordination
// overhead dominates (see BenchmarkCharacterizeAllParallel).
func (c *Characterizer) CharacterizeAllParallel(workers int) ([]Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(c.abnormal) {
		workers = len(c.abnormal)
	}
	if workers <= 1 {
		return c.CharacterizeAll()
	}

	// Phase 1: fill the motion memo for every abnormal device in
	// parallel. Each worker computes into its own shard; shards merge
	// into the shared cache before any decision reads it.
	type entry struct {
		id int
		e  denseEntry
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		tasks = make(chan int)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]entry, 0, len(c.abnormal)/workers+1)
			for idx := range tasks {
				id := c.abnormal[idx]
				local = append(local, entry{id: id, e: c.enumerateDense(id)})
			}
			mu.Lock()
			for _, e := range local {
				c.denseCache[e.id] = e.e
			}
			mu.Unlock()
		}()
	}
	for idx := range c.abnormal {
		tasks <- idx
	}
	close(tasks)
	wg.Wait()

	// Phase 2: decide in parallel against the warm, now read-only cache.
	results := make([]Result, len(c.abnormal))
	errs := make([]error, len(c.abnormal))
	tasks2 := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range tasks2 {
				results[idx], errs[idx] = c.Characterize(c.abnormal[idx])
			}
		}()
	}
	for idx := range c.abnormal {
		tasks2 <- idx
	}
	close(tasks2)
	wg.Wait()

	for idx, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("characterizing device %d: %w", c.abnormal[idx], err)
		}
	}
	sort.Slice(results, func(a, b int) bool { return results[a].Device < results[b].Device })
	return results, nil
}
