package core

import (
	"testing"

	"anomalia/internal/stats"
)

// TestParallelMatchesSequential: the parallel fleet pass must produce
// byte-identical results to the sequential one.
func TestParallelMatchesSequential(t *testing.T) {
	t.Parallel()

	rng := stats.NewRNG(60606)
	for trial := 0; trial < 10; trial++ {
		n := 30 + rng.Intn(60)
		pair := randomPair(t, rng, n, 2, 0.4)
		cfg := Config{R: 0.04, Tau: 2, Exact: true}

		seq, err := New(pair, allIds(n), cfg)
		if err != nil {
			t.Fatal(err)
		}
		wantResults, err := seq.CharacterizeAll()
		if err != nil {
			t.Fatal(err)
		}

		par, err := New(pair, allIds(n), cfg)
		if err != nil {
			t.Fatal(err)
		}
		gotResults, err := par.CharacterizeAllParallel(4)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotResults) != len(wantResults) {
			t.Fatalf("trial %d: %d vs %d results", trial, len(gotResults), len(wantResults))
		}
		for i := range wantResults {
			w, g := wantResults[i], gotResults[i]
			if w.Device != g.Device || w.Class != g.Class || w.Rule != g.Rule {
				t.Fatalf("trial %d device %d: parallel (%v,%v) != sequential (%v,%v)",
					trial, w.Device, g.Class, g.Rule, w.Class, w.Rule)
			}
		}
	}
}

// TestParallelWorkerEdgeCases: degenerate worker counts fall back safely.
func TestParallelWorkerEdgeCases(t *testing.T) {
	t.Parallel()

	rng := stats.NewRNG(7)
	pair := randomPair(t, rng, 10, 2, 0.3)
	cfg := Config{R: 0.05, Tau: 2, Exact: true}
	for _, workers := range []int{-1, 0, 1, 2, 100} {
		c, err := New(pair, allIds(10), cfg)
		if err != nil {
			t.Fatal(err)
		}
		results, err := c.CharacterizeAllParallel(workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(results) != 10 {
			t.Fatalf("workers=%d: %d results", workers, len(results))
		}
		for i := 1; i < len(results); i++ {
			if results[i-1].Device >= results[i].Device {
				t.Fatalf("workers=%d: results out of order", workers)
			}
		}
	}
}

func BenchmarkCharacterizeAllParallel(b *testing.B) {
	rng := stats.NewRNG(5)
	pair := randomPair(b, rng, 300, 2, 1.0)
	cfg := Config{R: 0.03, Tau: 3, Exact: true}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c, err := New(pair, allIds(300), cfg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := c.CharacterizeAll(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c, err := New(pair, allIds(300), cfg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := c.CharacterizeAllParallel(0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestParallelSparseModeGraph runs the parallel fleet pass over a window
// whose abnormal set is large enough that the motion graph is in sparse
// (CSR) adjacency mode: the phase-1 concurrent enumerations then
// exercise the densified-neighbourhood scratch under the race detector,
// and the verdicts must match the sequential pass exactly. The tiny
// radius keeps neighbourhoods small, so the pass stays fast even at
// several thousand abnormal devices.
func TestParallelSparseModeGraph(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("sparse-mode windows are thousands of devices")
	}

	rng := stats.NewRNG(31337)
	n := 4500 // >= motion's sparse crossover (4096)
	pair := randomPair(t, rng, n, 2, 1.0)
	cfg := Config{R: 0.004, Tau: 2, Exact: true}

	seq, err := New(pair, allIds(n), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := seq.CharacterizeAll()
	if err != nil {
		t.Fatal(err)
	}

	par, err := New(pair, allIds(n), cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := par.CharacterizeAllParallel(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d vs %d results", len(got), len(want))
	}
	classes := map[Class]int{}
	for i := range want {
		w, g := want[i], got[i]
		if w.Device != g.Device || w.Class != g.Class || w.Rule != g.Rule {
			t.Fatalf("device %d: parallel (%v,%v) != sequential (%v,%v)",
				w.Device, g.Class, g.Rule, w.Class, w.Rule)
		}
		classes[w.Class]++
	}
	if classes[ClassIsolated] == 0 {
		t.Error("window produced no isolated verdicts; radius too large for the sparse-mode fixture")
	}
}
