package core

import (
	"testing"

	"anomalia/internal/motion"
	"anomalia/internal/sets"
	"anomalia/internal/stats"
)

// referenceClassify is a deliberately naive, cache-free re-implementation
// of Algorithm 3 (Theorems 5 and 6 only), used for differential testing
// of the optimized Characterizer. It re-enumerates motions from scratch
// at every step and follows the paper's text literally.
func referenceClassify(pair *motion.Pair, abnormal []int, j int, r float64, tau int) (Class, Rule) {
	g := motion.NewGraph(pair, abnormal, r)

	// W̄_k(j): maximal τ-dense motions containing j.
	var denseJ [][]int
	for _, m := range g.MaximalMotionsContaining(j) {
		if len(m) > tau {
			denseJ = append(denseJ, m)
		}
	}
	if len(denseJ) == 0 {
		return ClassIsolated, RuleTheorem5
	}

	// D_k(j), then J_k(j) by the literal definition: ℓ ∈ J iff every
	// maximal dense motion of ℓ contains j.
	var dk []int
	for _, m := range denseJ {
		dk = sets.UnionInts(dk, m)
	}
	var jSet []int
	for _, l := range dk {
		inJ := true
		for _, m := range g.MaximalMotionsContaining(l) {
			if len(m) > tau && !sets.ContainsInt(m, j) {
				inJ = false
				break
			}
		}
		if inJ {
			jSet = append(jSet, l)
		}
	}

	// Theorem 6 literal form: ∃B ∈ W_k(j) (any dense motion containing j)
	// with B ⊆ J_k(j). Equivalent to a dense motion containing j inside
	// J_k(j).
	if g.HasDenseMotionContaining(j, jSet, tau) {
		return ClassMassive, RuleTheorem6
	}
	return ClassUnresolved, RuleNone
}

// TestDifferentialAgainstReference compares the optimized cheap-mode
// characterizer with the naive reference on random windows.
func TestDifferentialAgainstReference(t *testing.T) {
	t.Parallel()

	rng := stats.NewRNG(31337)
	for trial := 0; trial < 50; trial++ {
		n := 8 + rng.Intn(25)
		pair := randomPair(t, rng, n, 1+rng.Intn(2), 0.2+0.3*rng.Float64())
		tau := 1 + rng.Intn(3)
		const r = 0.05

		c, err := New(pair, allIds(n), Config{R: r, Tau: tau})
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range allIds(n) {
			got, err := c.Characterize(j)
			if err != nil {
				t.Fatal(err)
			}
			wantClass, wantRule := referenceClassify(pair, allIds(n), j, r, tau)
			if got.Class != wantClass || got.Rule != wantRule {
				t.Fatalf("trial %d device %d: optimized (%v,%v) != reference (%v,%v)",
					trial, j, got.Class, got.Rule, wantClass, wantRule)
			}
		}
	}
}

// TestDifferentialTheorem6Equivalence: the |M ∩ J| > τ implementation of
// Theorem 6 agrees with the subset form B ⊆ J searched directly.
func TestDifferentialTheorem6Equivalence(t *testing.T) {
	t.Parallel()

	rng := stats.NewRNG(2718)
	for trial := 0; trial < 40; trial++ {
		n := 8 + rng.Intn(15)
		pair := randomPair(t, rng, n, 2, 0.15)
		const r, tau = 0.05, 2
		c, err := New(pair, allIds(n), Config{R: r, Tau: tau})
		if err != nil {
			t.Fatal(err)
		}
		g := motion.NewGraph(pair, allIds(n), r)
		for _, j := range allIds(n) {
			res, err := c.Characterize(j)
			if err != nil {
				t.Fatal(err)
			}
			if res.Rule == RuleTheorem5 {
				continue
			}
			// Direct subset search within J.
			direct := g.HasDenseMotionContaining(j, res.J, tau)
			viaIntersection := res.Rule == RuleTheorem6
			if direct != viaIntersection {
				t.Fatalf("trial %d device %d: subset form %v, intersection form %v (J=%v dense=%v)",
					trial, j, direct, viaIntersection, res.J, res.Dense)
			}
		}
	}
}
