package core

import (
	"testing"

	"anomalia/internal/partition"
	"anomalia/internal/sets"
	"anomalia/internal/stats"
)

// TestAgainstOracle is the central correctness test of the reproduction:
// on random configurations, the local decision procedure (Theorems 5/6/7,
// Corollary 8) must agree exactly with the omniscient observer obtained by
// enumerating every anomaly partition — the paper's claim that "local
// algorithms are as accurate as an omniscient observer".
func TestAgainstOracle(t *testing.T) {
	t.Parallel()

	rng := stats.NewRNG(424242)
	const trials = 120
	checked := 0
	for trial := 0; trial < trials; trial++ {
		n := 5 + rng.Intn(6) // 5..10 abnormal devices keeps Bell numbers sane
		side := 0.15 + 0.2*rng.Float64()
		pair := randomPair(t, rng, n, 1+rng.Intn(2), side)
		tau := 1 + rng.Intn(3)
		const r = 0.06

		oracle, err := partition.Oracle(pair, allIds(n), r, tau, 0)
		if err != nil {
			continue // budget blowup on a dense blob; skip
		}
		c, err := New(pair, allIds(n), Config{R: r, Tau: tau, Exact: true})
		if err != nil {
			t.Fatal(err)
		}
		local, err := c.Decompose()
		if err != nil {
			t.Fatal(err)
		}
		if !sets.EqualInts(local.Massive, oracle.Massive) ||
			!sets.EqualInts(local.Isolated, oracle.Isolated) ||
			!sets.EqualInts(local.Unresolved, oracle.Unresolved) {
			t.Fatalf("trial %d (n=%d τ=%d side=%.3f): local %+v != oracle %+v",
				trial, n, tau, side, local, oracle)
		}
		checked++
	}
	if checked < trials/2 {
		t.Fatalf("only %d/%d trials were checked against the oracle", checked, trials)
	}
}

// TestTheorem6Soundness: whenever Theorem 6 claims massive, the oracle
// must agree (the condition is sufficient), across denser configurations
// than TestAgainstOracle uses.
func TestTheorem6Soundness(t *testing.T) {
	t.Parallel()

	rng := stats.NewRNG(777)
	for trial := 0; trial < 60; trial++ {
		n := 6 + rng.Intn(5)
		pair := randomPair(t, rng, n, 2, 0.12)
		const r, tau = 0.05, 2

		oracle, err := partition.Oracle(pair, allIds(n), r, tau, 0)
		if err != nil {
			continue
		}
		c, err := New(pair, allIds(n), Config{R: r, Tau: tau})
		if err != nil {
			t.Fatal(err)
		}
		results, err := c.CharacterizeAll()
		if err != nil {
			t.Fatal(err)
		}
		for _, res := range results {
			if res.Rule == RuleTheorem6 && oracle.ClassOf(res.Device) != "M" {
				t.Fatalf("trial %d: theorem 6 claimed device %d massive, oracle says %q",
					trial, res.Device, oracle.ClassOf(res.Device))
			}
			if res.Rule == RuleTheorem5 && oracle.ClassOf(res.Device) != "I" {
				t.Fatalf("trial %d: theorem 5 claimed device %d isolated, oracle says %q",
					trial, res.Device, oracle.ClassOf(res.Device))
			}
		}
	}
}

// TestLocality4r verifies the paper's locality claim: restricting the
// abnormal set to the devices within 4r of j (at both times) never changes
// j's verdict.
func TestLocality4r(t *testing.T) {
	t.Parallel()

	rng := stats.NewRNG(1313)
	for trial := 0; trial < 40; trial++ {
		n := 15 + rng.Intn(20)
		pair := randomPair(t, rng, n, 2, 0.5)
		const r, tau = 0.05, 2

		full, err := New(pair, allIds(n), Config{R: r, Tau: tau, Exact: true})
		if err != nil {
			t.Fatal(err)
		}
		j := rng.Intn(n)
		want, err := full.Characterize(j)
		if err != nil {
			t.Fatal(err)
		}

		// 4r neighbourhood of j at both times.
		var local []int
		for i := 0; i < n; i++ {
			if pair.Prev.Dist(i, j) <= 4*r && pair.Cur.Dist(i, j) <= 4*r {
				local = append(local, i)
			}
		}
		restricted, err := New(pair, local, Config{R: r, Tau: tau, Exact: true})
		if err != nil {
			t.Fatal(err)
		}
		got, err := restricted.Characterize(j)
		if err != nil {
			t.Fatal(err)
		}
		if got.Class != want.Class {
			t.Fatalf("trial %d device %d: local view says %v, global view says %v",
				trial, j, got.Class, want.Class)
		}
	}
}

// TestDeterminism: identical inputs produce identical results, including
// costs.
func TestDeterminism(t *testing.T) {
	t.Parallel()

	rng := stats.NewRNG(555)
	pair := randomPair(t, rng, 20, 2, 0.2)
	cfg := Config{R: 0.05, Tau: 2, Exact: true}
	c1, err := New(pair, allIds(20), cfg)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := New(pair, allIds(20), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := c1.CharacterizeAll()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c2.CharacterizeAll()
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1 {
		if r1[i].Class != r2[i].Class || r1[i].Rule != r2[i].Rule ||
			r1[i].Cost != r2[i].Cost {
			t.Fatalf("nondeterministic result for device %d: %+v vs %+v",
				r1[i].Device, r1[i], r2[i])
		}
	}
}

func BenchmarkCharacterizeExact(b *testing.B) {
	rng := stats.NewRNG(5)
	pair := randomPair(b, rng, 100, 2, 1.0)
	c, err := New(pair, allIds(100), Config{R: 0.03, Tau: 3, Exact: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.CharacterizeAll(); err != nil {
			b.Fatal(err)
		}
	}
}
