// Package core implements the paper's primary contribution (Section V):
// local decision procedures that let every abnormal device classify the
// anomaly that hit it as isolated, massive, or unresolved, with exactly
// the accuracy of an omniscient observer.
//
//   - Theorem 5 (NSC for I_k): j is isolated iff no τ-dense motion
//     contains it.
//   - Theorem 6 (sufficient for M_k): j is massive if one of its maximal
//     dense motions lies inside J_k(j), the neighbours whose every maximal
//     dense motion also contains j.
//   - Theorem 7 (NSC for M_k) / Corollary 8 (NSC for U_k): j is massive
//     iff no collection of pairwise-disjoint dense motions anchored at
//     L_k(j) can simultaneously starve all of j's dense motions
//     (relation 4) while never being extensible by j (relation 5).
//
// The procedures are the paper's Algorithms 3 (characterize) and 4/5
// (fullcharacterize). Everything a device needs lives within distance 4r
// of its own trajectory; TestLocality4r verifies that claim.
package core

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"

	"anomalia/internal/motion"
	"anomalia/internal/sets"
)

// Class is the verdict a device reaches about the anomaly that hit it.
type Class int

// Possible verdicts. ClassUnknown is the zero value and never returned by
// a successful characterization.
const (
	ClassUnknown Class = iota
	// ClassIsolated: the error affected at most τ devices in every
	// admissible scenario (j ∈ I_k).
	ClassIsolated
	// ClassMassive: the error affected more than τ devices in every
	// admissible scenario (j ∈ M_k).
	ClassMassive
	// ClassUnresolved: admissible scenarios disagree (j ∈ U_k).
	ClassUnresolved
)

// String renders the class for logs and tables.
func (c Class) String() string {
	switch c {
	case ClassIsolated:
		return "isolated"
	case ClassMassive:
		return "massive"
	case ClassUnresolved:
		return "unresolved"
	default:
		return "unknown"
	}
}

// Rule identifies which result of the paper produced a verdict.
type Rule int

// Decision rules, in the order Algorithm 3 applies them.
const (
	RuleNone Rule = iota
	// RuleTheorem5 decided via W̄_k(j) = ∅ (isolated).
	RuleTheorem5
	// RuleTheorem6 decided via a dense motion inside J_k(j) (massive).
	RuleTheorem6
	// RuleCorollary8 found a violating collection (unresolved).
	RuleCorollary8
	// RuleTheorem7 exhausted all collections (massive).
	RuleTheorem7
)

// String names the rule as in the paper.
func (r Rule) String() string {
	switch r {
	case RuleTheorem5:
		return "theorem5"
	case RuleTheorem6:
		return "theorem6"
	case RuleCorollary8:
		return "corollary8"
	case RuleTheorem7:
		return "theorem7"
	default:
		return "none"
	}
}

var (
	// ErrNotAbnormal is returned when characterizing a device outside A_k.
	ErrNotAbnormal = errors.New("core: device is not abnormal")
	// ErrBudget is returned when the Theorem 7 collection search exceeds
	// its node budget.
	ErrBudget = errors.New("core: exact search exceeded its budget")
	// ErrConfig is returned for invalid configurations.
	ErrConfig = errors.New("core: invalid configuration")
)

// Config parameterizes a characterizer.
type Config struct {
	// R is the consistency impact radius, in [0, 1/4).
	R float64
	// Tau is the density threshold separating isolated from massive
	// anomalies (Definition 4), in [1, n-1].
	Tau int
	// Exact enables the full NSC (Theorem 7 / Corollary 8, Algorithms 4
	// and 5) when Theorem 6 is inconclusive. When false, inconclusive
	// devices are reported unresolved by RuleNone — the cheap mode whose
	// miss rate Table II bounds at ~0.4%.
	Exact bool
	// Budget caps the number of collection-search nodes per device in
	// exact mode; 0 means DefaultBudget.
	Budget int
}

// DefaultBudget bounds the exact-search effort per device.
const DefaultBudget = 10_000_000

// Cost records the work a device spent deciding, mirroring the counters
// of Table III.
type Cost struct {
	// MaximalMotions is |M(j)|, the maximal motions enumerated for j.
	MaximalMotions int
	// DenseMotions is |W̄_k(j)|.
	DenseMotions int
	// NeighborsScanned counts devices ℓ whose own maximal dense motions
	// were computed to build J_k(j)/L_k(j).
	NeighborsScanned int
	// CollectionsTested counts the candidate collections examined by the
	// Theorem 7 / Corollary 8 search (0 when the search never ran).
	CollectionsTested int
}

// Result is the outcome of characterizing one device.
type Result struct {
	// Device is the device id.
	Device int
	// Class is the verdict.
	Class Class
	// Rule is the paper result that produced the verdict.
	Rule Rule
	// Dense is W̄_k(j), the maximal τ-dense motions containing the device.
	Dense [][]int
	// J and L are the neighbourhood split of Section V-B.
	J, L []int
	// Cost is the decision cost.
	Cost Cost
}

// Characterizer runs the local decision procedures over one observation
// window. It caches per-device motion enumerations so that a fleet-wide
// pass costs each neighbourhood once.
type Characterizer struct {
	pair     *motion.Pair
	abnormal []int
	cfg      Config
	graph    *motion.Graph
	// comps is the connected-component decomposition of the motion graph.
	// Every set a decision for device j consults lives inside j's
	// component, so all per-decision bitsets are sized to the component's
	// compact renumbering instead of the full vertex universe.
	comps *motion.Components
	// denseCache memoizes W̄_k(ℓ) per device, in both representations.
	denseCache map[int]denseEntry
	// scratch pools the per-decision working sets of Characterize so a
	// fleet-wide pass reuses a handful of bitsets instead of allocating
	// three per device; pooling keeps the parallel pass safe. Pools are
	// bucketed by universe size class so decisions in a 40-device
	// component never inherit (or retain) bitsets sized for a 200k-device
	// mass event.
	scratch scratchPools
}

// denseEntry is the memoized enumeration for one device ℓ: the maximal
// τ-dense motions W̄_k(ℓ) as sorted device-id sets (shared with
// Result.Dense) and as bitsets over ℓ's component-local indices
// (element i of both slices is the same motion — the hot path does its
// set algebra on the bitsets with no id translation), plus |M(ℓ)|
// before density filtering for cost reporting. The graph guarantees the
// bitset representation in both of its adjacency modes: sparse-mode
// (CSR) windows enumerate inside densified neighbourhood subgraphs and
// project the reported cliques, so the D_k/J_k/L_k word algebra below
// is representation-blind.
type denseEntry struct {
	ids   [][]int
	bits  []*sets.Bits
	total int
}

// charScratch is the reusable working set of one Characterize call:
// bitsets over component-local indices for D_k(j), J_k(j) and L_k(j),
// plus a buffer for materializing D_k ids.
type charScratch struct {
	dk, j, l *sets.Bits
	dkIds    []int
}

// scratchPools buckets pooled charScratch values by universe size class:
// pools[k] serves universes of up to 64<<k bits (word counts in
// (2^(k-1), 2^k]). Leases resize within the class they came from, so a
// scratch never migrates classes and Put-time classification by current
// universe is exact. Bucketing is what makes pooling safe across mixed
// component sizes — without it, one mass-event decision would seed the
// pool with full-window bitsets that every later 40-device decision
// drags around (and pins in memory) for the life of the characterizer.
type scratchPools struct {
	pools [scratchClasses]sync.Pool
}

// scratchClasses covers word counts up to 2^31 — universes far beyond
// any device population; larger requests clamp into the last class.
const scratchClasses = 32

// scratchClass returns the pool bucket for a universe of n bits.
func scratchClass(n int) int {
	words := (n + 63) / 64
	if words <= 1 {
		return 0
	}
	k := bits.Len(uint(words - 1))
	if k >= scratchClasses {
		k = scratchClasses - 1
	}
	return k
}

// getScratch leases a cleared working set over the universe [0, n);
// return it with putScratch.
func (c *Characterizer) getScratch(n int) *charScratch {
	sc, _ := c.scratch.pools[scratchClass(n)].Get().(*charScratch)
	if sc == nil {
		return &charScratch{
			dk: sets.NewBits(n),
			j:  sets.NewBits(n),
			l:  sets.NewBits(n),
		}
	}
	sc.dk.Resize(n)
	sc.j.Resize(n)
	sc.l.Resize(n)
	sc.dkIds = sc.dkIds[:0]
	return sc
}

func (c *Characterizer) putScratch(sc *charScratch) {
	c.scratch.pools[scratchClass(sc.dk.Universe())].Put(sc)
}

// New builds a characterizer for the window described by pair, the
// abnormal set A_k, and the configuration.
func New(pair *motion.Pair, abnormal []int, cfg Config) (*Characterizer, error) {
	if pair == nil {
		return nil, fmt.Errorf("nil pair: %w", ErrConfig)
	}
	if err := motion.ValidateRadius(cfg.R); err != nil {
		return nil, err
	}
	if cfg.Tau < 1 {
		return nil, fmt.Errorf("tau = %d must be >= 1: %w", cfg.Tau, ErrConfig)
	}
	ids := sets.Canon(sets.CloneInts(abnormal))
	for _, id := range ids {
		if id < 0 || id >= pair.N() {
			return nil, fmt.Errorf("abnormal device %d outside population of %d: %w", id, pair.N(), ErrConfig)
		}
	}
	return newCharacterizer(pair, ids, cfg, motion.NewGraph(pair, ids, cfg.R)), nil
}

// newCharacterizer wires a characterizer over an already-built motion
// graph of the abnormal set (benchmarks reuse one read-only graph across
// fresh characterizers; New builds it fresh).
func newCharacterizer(pair *motion.Pair, ids []int, cfg Config, g *motion.Graph) *Characterizer {
	return newCharacterizerComps(pair, ids, cfg, g, g.Components())
}

// newCharacterizerComps additionally injects the component decomposition.
// Production always passes g.Components(); the parity suite passes
// g.WholeGraphComponent() to run the identical code path with full-graph
// universes — the pre-component reference behaviour.
func newCharacterizerComps(pair *motion.Pair, ids []int, cfg Config, g *motion.Graph, cs *motion.Components) *Characterizer {
	return &Characterizer{
		pair:       pair,
		abnormal:   ids,
		cfg:        cfg,
		graph:      g,
		comps:      cs,
		denseCache: make(map[int]denseEntry, len(ids)),
	}
}

// Abnormal returns the sorted abnormal set the characterizer covers.
// Ownership rule (shared with motion.Graph.Ids and dist.Directory.
// Abnormal): the slice aliases the characterizer's internal state —
// callers must treat it as read-only and copy before modifying.
func (c *Characterizer) Abnormal() []int { return c.abnormal }

// enumerateComponent enumerates component comp's maximal motions once
// and folds them into a denseEntry per member: entry i (component rank
// i) holds W̄_k of the i-th member — the dense motions that include it,
// in lexicographic order because the component family is sorted and a
// member's family is a subsequence of it — plus its |M(ℓ)| count. One
// Bron–Kerbosch run serves every device of the component, instead of
// each member re-enumerating its own neighbourhood; motion id-slices
// and bitsets are shared across the members' entries (all read-only).
func (c *Characterizer) enumerateComponent(comp int) []denseEntry {
	moIds, moBits := c.graph.MaximalMotionsOfComponent(comp, c.comps)
	entries := make([]denseEntry, c.comps.Size(comp))
	for mi, mo := range moIds {
		dense := motion.Dense(len(mo), c.cfg.Tau)
		bits := moBits[mi]
		bits.ForEach(func(ri int) bool {
			e := &entries[ri]
			e.total++
			if dense {
				e.ids = append(e.ids, mo)
				e.bits = append(e.bits, bits)
			}
			return true
		})
	}
	return entries
}

// cacheComponent memoizes every member entry of component comp and
// returns the entries (indexed by component rank).
func (c *Characterizer) cacheComponent(comp int) []denseEntry {
	entries := c.enumerateComponent(comp)
	for i, v := range c.comps.Verts(comp) {
		c.denseCache[c.graph.IDOf(int(v))] = entries[i]
	}
	return entries
}

// denseMotionsOf returns the memoized W̄_k(ℓ), enumerating ℓ's whole
// component on a miss.
func (c *Characterizer) denseMotionsOf(l int) denseEntry {
	if cached, ok := c.denseCache[l]; ok {
		return cached
	}
	ll, _ := c.graph.Local(l)
	entries := c.cacheComponent(c.comps.Of(ll))
	return entries[c.comps.Rank(ll)]
}
