// Package core implements the paper's primary contribution (Section V):
// local decision procedures that let every abnormal device classify the
// anomaly that hit it as isolated, massive, or unresolved, with exactly
// the accuracy of an omniscient observer.
//
//   - Theorem 5 (NSC for I_k): j is isolated iff no τ-dense motion
//     contains it.
//   - Theorem 6 (sufficient for M_k): j is massive if one of its maximal
//     dense motions lies inside J_k(j), the neighbours whose every maximal
//     dense motion also contains j.
//   - Theorem 7 (NSC for M_k) / Corollary 8 (NSC for U_k): j is massive
//     iff no collection of pairwise-disjoint dense motions anchored at
//     L_k(j) can simultaneously starve all of j's dense motions
//     (relation 4) while never being extensible by j (relation 5).
//
// The procedures are the paper's Algorithms 3 (characterize) and 4/5
// (fullcharacterize). Everything a device needs lives within distance 4r
// of its own trajectory; TestLocality4r verifies that claim.
package core

import (
	"errors"
	"fmt"
	"sync"

	"anomalia/internal/motion"
	"anomalia/internal/sets"
)

// Class is the verdict a device reaches about the anomaly that hit it.
type Class int

// Possible verdicts. ClassUnknown is the zero value and never returned by
// a successful characterization.
const (
	ClassUnknown Class = iota
	// ClassIsolated: the error affected at most τ devices in every
	// admissible scenario (j ∈ I_k).
	ClassIsolated
	// ClassMassive: the error affected more than τ devices in every
	// admissible scenario (j ∈ M_k).
	ClassMassive
	// ClassUnresolved: admissible scenarios disagree (j ∈ U_k).
	ClassUnresolved
)

// String renders the class for logs and tables.
func (c Class) String() string {
	switch c {
	case ClassIsolated:
		return "isolated"
	case ClassMassive:
		return "massive"
	case ClassUnresolved:
		return "unresolved"
	default:
		return "unknown"
	}
}

// Rule identifies which result of the paper produced a verdict.
type Rule int

// Decision rules, in the order Algorithm 3 applies them.
const (
	RuleNone Rule = iota
	// RuleTheorem5 decided via W̄_k(j) = ∅ (isolated).
	RuleTheorem5
	// RuleTheorem6 decided via a dense motion inside J_k(j) (massive).
	RuleTheorem6
	// RuleCorollary8 found a violating collection (unresolved).
	RuleCorollary8
	// RuleTheorem7 exhausted all collections (massive).
	RuleTheorem7
)

// String names the rule as in the paper.
func (r Rule) String() string {
	switch r {
	case RuleTheorem5:
		return "theorem5"
	case RuleTheorem6:
		return "theorem6"
	case RuleCorollary8:
		return "corollary8"
	case RuleTheorem7:
		return "theorem7"
	default:
		return "none"
	}
}

var (
	// ErrNotAbnormal is returned when characterizing a device outside A_k.
	ErrNotAbnormal = errors.New("core: device is not abnormal")
	// ErrBudget is returned when the Theorem 7 collection search exceeds
	// its node budget.
	ErrBudget = errors.New("core: exact search exceeded its budget")
	// ErrConfig is returned for invalid configurations.
	ErrConfig = errors.New("core: invalid configuration")
)

// Config parameterizes a characterizer.
type Config struct {
	// R is the consistency impact radius, in [0, 1/4).
	R float64
	// Tau is the density threshold separating isolated from massive
	// anomalies (Definition 4), in [1, n-1].
	Tau int
	// Exact enables the full NSC (Theorem 7 / Corollary 8, Algorithms 4
	// and 5) when Theorem 6 is inconclusive. When false, inconclusive
	// devices are reported unresolved by RuleNone — the cheap mode whose
	// miss rate Table II bounds at ~0.4%.
	Exact bool
	// Budget caps the number of collection-search nodes per device in
	// exact mode; 0 means DefaultBudget.
	Budget int
}

// DefaultBudget bounds the exact-search effort per device.
const DefaultBudget = 10_000_000

// Cost records the work a device spent deciding, mirroring the counters
// of Table III.
type Cost struct {
	// MaximalMotions is |M(j)|, the maximal motions enumerated for j.
	MaximalMotions int
	// DenseMotions is |W̄_k(j)|.
	DenseMotions int
	// NeighborsScanned counts devices ℓ whose own maximal dense motions
	// were computed to build J_k(j)/L_k(j).
	NeighborsScanned int
	// CollectionsTested counts the candidate collections examined by the
	// Theorem 7 / Corollary 8 search (0 when the search never ran).
	CollectionsTested int
}

// Result is the outcome of characterizing one device.
type Result struct {
	// Device is the device id.
	Device int
	// Class is the verdict.
	Class Class
	// Rule is the paper result that produced the verdict.
	Rule Rule
	// Dense is W̄_k(j), the maximal τ-dense motions containing the device.
	Dense [][]int
	// J and L are the neighbourhood split of Section V-B.
	J, L []int
	// Cost is the decision cost.
	Cost Cost
}

// Characterizer runs the local decision procedures over one observation
// window. It caches per-device motion enumerations so that a fleet-wide
// pass costs each neighbourhood once.
type Characterizer struct {
	pair     *motion.Pair
	abnormal []int
	cfg      Config
	graph    *motion.Graph
	// denseCache memoizes W̄_k(ℓ) per device, in both representations.
	denseCache map[int]denseEntry
	// scratch pools the per-decision working sets of Characterize so a
	// fleet-wide pass reuses a handful of bitsets instead of allocating
	// three per device; pooling keeps the parallel pass safe.
	scratch sync.Pool
}

// denseEntry is the memoized enumeration for one device ℓ: the maximal
// τ-dense motions W̄_k(ℓ) as sorted device-id sets (shared with
// Result.Dense) and as bitsets over graph-local indices (element i of
// both slices is the same motion — the hot path does its set algebra on
// the bitsets with no id translation), plus |M(ℓ)| before density
// filtering for cost reporting. The graph guarantees the bitset
// representation in both of its adjacency modes: sparse-mode (CSR)
// windows enumerate inside densified neighbourhood subgraphs and widen
// only the reported cliques, so the D_k/J_k/L_k word algebra below is
// representation-blind.
type denseEntry struct {
	ids   [][]int
	bits  []*sets.Bits
	total int
}

// charScratch is the reusable working set of one Characterize call:
// bitsets over graph-local indices for D_k(j), J_k(j) and L_k(j), plus
// a buffer for materializing D_k ids.
type charScratch struct {
	dk, j, l *sets.Bits
	dkIds    []int
}

// New builds a characterizer for the window described by pair, the
// abnormal set A_k, and the configuration.
func New(pair *motion.Pair, abnormal []int, cfg Config) (*Characterizer, error) {
	if pair == nil {
		return nil, fmt.Errorf("nil pair: %w", ErrConfig)
	}
	if err := motion.ValidateRadius(cfg.R); err != nil {
		return nil, err
	}
	if cfg.Tau < 1 {
		return nil, fmt.Errorf("tau = %d must be >= 1: %w", cfg.Tau, ErrConfig)
	}
	ids := sets.Canon(sets.CloneInts(abnormal))
	for _, id := range ids {
		if id < 0 || id >= pair.N() {
			return nil, fmt.Errorf("abnormal device %d outside population of %d: %w", id, pair.N(), ErrConfig)
		}
	}
	c := &Characterizer{
		pair:       pair,
		abnormal:   ids,
		cfg:        cfg,
		graph:      motion.NewGraph(pair, ids, cfg.R),
		denseCache: make(map[int]denseEntry, len(ids)),
	}
	m := c.graph.Len()
	c.scratch.New = func() any {
		return &charScratch{
			dk: sets.NewBits(m),
			j:  sets.NewBits(m),
			l:  sets.NewBits(m),
		}
	}
	return c, nil
}

// getScratch leases a cleared working set; return it with putScratch.
func (c *Characterizer) getScratch() *charScratch {
	sc := c.scratch.Get().(*charScratch)
	sc.dk.Clear()
	sc.j.Clear()
	sc.l.Clear()
	sc.dkIds = sc.dkIds[:0]
	return sc
}

func (c *Characterizer) putScratch(sc *charScratch) { c.scratch.Put(sc) }

// Abnormal returns the sorted abnormal set the characterizer covers.
// Ownership rule (shared with motion.Graph.Ids and dist.Directory.
// Abnormal): the slice aliases the characterizer's internal state —
// callers must treat it as read-only and copy before modifying.
func (c *Characterizer) Abnormal() []int { return c.abnormal }

// enumerateDense computes W̄_k(ℓ) — the maximal τ-dense motions
// containing ℓ, in both representations — and |M(ℓ)|, without touching
// the memo. The parallel fleet pass enumerates into worker-local shards
// through this helper before merging them into the shared cache.
func (c *Characterizer) enumerateDense(l int) denseEntry {
	allIds, allBits := c.graph.MaximalMotionsContainingSets(l)
	e := denseEntry{total: len(allIds)}
	for i, mo := range allIds {
		if motion.Dense(len(mo), c.cfg.Tau) {
			e.ids = append(e.ids, mo)
			e.bits = append(e.bits, allBits[i])
		}
	}
	return e
}

// denseMotionsOf returns the memoized W̄_k(ℓ).
func (c *Characterizer) denseMotionsOf(l int) denseEntry {
	if cached, ok := c.denseCache[l]; ok {
		return cached
	}
	e := c.enumerateDense(l)
	c.denseCache[l] = e
	return e
}
