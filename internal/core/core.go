// Package core implements the paper's primary contribution (Section V):
// local decision procedures that let every abnormal device classify the
// anomaly that hit it as isolated, massive, or unresolved, with exactly
// the accuracy of an omniscient observer.
//
//   - Theorem 5 (NSC for I_k): j is isolated iff no τ-dense motion
//     contains it.
//   - Theorem 6 (sufficient for M_k): j is massive if one of its maximal
//     dense motions lies inside J_k(j), the neighbours whose every maximal
//     dense motion also contains j.
//   - Theorem 7 (NSC for M_k) / Corollary 8 (NSC for U_k): j is massive
//     iff no collection of pairwise-disjoint dense motions anchored at
//     L_k(j) can simultaneously starve all of j's dense motions
//     (relation 4) while never being extensible by j (relation 5).
//
// The procedures are the paper's Algorithms 3 (characterize) and 4/5
// (fullcharacterize). Everything a device needs lives within distance 4r
// of its own trajectory; TestLocality4r verifies that claim.
package core

import (
	"errors"
	"fmt"

	"anomalia/internal/motion"
	"anomalia/internal/sets"
)

// Class is the verdict a device reaches about the anomaly that hit it.
type Class int

// Possible verdicts. ClassUnknown is the zero value and never returned by
// a successful characterization.
const (
	ClassUnknown Class = iota
	// ClassIsolated: the error affected at most τ devices in every
	// admissible scenario (j ∈ I_k).
	ClassIsolated
	// ClassMassive: the error affected more than τ devices in every
	// admissible scenario (j ∈ M_k).
	ClassMassive
	// ClassUnresolved: admissible scenarios disagree (j ∈ U_k).
	ClassUnresolved
)

// String renders the class for logs and tables.
func (c Class) String() string {
	switch c {
	case ClassIsolated:
		return "isolated"
	case ClassMassive:
		return "massive"
	case ClassUnresolved:
		return "unresolved"
	default:
		return "unknown"
	}
}

// Rule identifies which result of the paper produced a verdict.
type Rule int

// Decision rules, in the order Algorithm 3 applies them.
const (
	RuleNone Rule = iota
	// RuleTheorem5 decided via W̄_k(j) = ∅ (isolated).
	RuleTheorem5
	// RuleTheorem6 decided via a dense motion inside J_k(j) (massive).
	RuleTheorem6
	// RuleCorollary8 found a violating collection (unresolved).
	RuleCorollary8
	// RuleTheorem7 exhausted all collections (massive).
	RuleTheorem7
)

// String names the rule as in the paper.
func (r Rule) String() string {
	switch r {
	case RuleTheorem5:
		return "theorem5"
	case RuleTheorem6:
		return "theorem6"
	case RuleCorollary8:
		return "corollary8"
	case RuleTheorem7:
		return "theorem7"
	default:
		return "none"
	}
}

var (
	// ErrNotAbnormal is returned when characterizing a device outside A_k.
	ErrNotAbnormal = errors.New("core: device is not abnormal")
	// ErrBudget is returned when the Theorem 7 collection search exceeds
	// its node budget.
	ErrBudget = errors.New("core: exact search exceeded its budget")
	// ErrConfig is returned for invalid configurations.
	ErrConfig = errors.New("core: invalid configuration")
)

// Config parameterizes a characterizer.
type Config struct {
	// R is the consistency impact radius, in [0, 1/4).
	R float64
	// Tau is the density threshold separating isolated from massive
	// anomalies (Definition 4), in [1, n-1].
	Tau int
	// Exact enables the full NSC (Theorem 7 / Corollary 8, Algorithms 4
	// and 5) when Theorem 6 is inconclusive. When false, inconclusive
	// devices are reported unresolved by RuleNone — the cheap mode whose
	// miss rate Table II bounds at ~0.4%.
	Exact bool
	// Budget caps the number of collection-search nodes per device in
	// exact mode; 0 means DefaultBudget.
	Budget int
}

// DefaultBudget bounds the exact-search effort per device.
const DefaultBudget = 10_000_000

// Cost records the work a device spent deciding, mirroring the counters
// of Table III.
type Cost struct {
	// MaximalMotions is |M(j)|, the maximal motions enumerated for j.
	MaximalMotions int
	// DenseMotions is |W̄_k(j)|.
	DenseMotions int
	// NeighborsScanned counts devices ℓ whose own maximal dense motions
	// were computed to build J_k(j)/L_k(j).
	NeighborsScanned int
	// CollectionsTested counts the candidate collections examined by the
	// Theorem 7 / Corollary 8 search (0 when the search never ran).
	CollectionsTested int
}

// Result is the outcome of characterizing one device.
type Result struct {
	// Device is the device id.
	Device int
	// Class is the verdict.
	Class Class
	// Rule is the paper result that produced the verdict.
	Rule Rule
	// Dense is W̄_k(j), the maximal τ-dense motions containing the device.
	Dense [][]int
	// J and L are the neighbourhood split of Section V-B.
	J, L []int
	// Cost is the decision cost.
	Cost Cost
}

// Characterizer runs the local decision procedures over one observation
// window. It caches per-device motion enumerations so that a fleet-wide
// pass costs each neighbourhood once.
type Characterizer struct {
	pair     *motion.Pair
	abnormal []int
	cfg      Config
	graph    *motion.Graph
	// denseCache memoizes W̄_k(ℓ) per device.
	denseCache map[int][][]int
	// motionsCache memoizes |M(ℓ)| for cost reporting.
	motionsCache map[int]int
}

// New builds a characterizer for the window described by pair, the
// abnormal set A_k, and the configuration.
func New(pair *motion.Pair, abnormal []int, cfg Config) (*Characterizer, error) {
	if pair == nil {
		return nil, fmt.Errorf("nil pair: %w", ErrConfig)
	}
	if err := motion.ValidateRadius(cfg.R); err != nil {
		return nil, err
	}
	if cfg.Tau < 1 {
		return nil, fmt.Errorf("tau = %d must be >= 1: %w", cfg.Tau, ErrConfig)
	}
	ids := sets.Canon(sets.CloneInts(abnormal))
	for _, id := range ids {
		if id < 0 || id >= pair.N() {
			return nil, fmt.Errorf("abnormal device %d outside population of %d: %w", id, pair.N(), ErrConfig)
		}
	}
	return &Characterizer{
		pair:         pair,
		abnormal:     ids,
		cfg:          cfg,
		graph:        motion.NewGraph(pair, ids, cfg.R),
		denseCache:   make(map[int][][]int, len(ids)),
		motionsCache: make(map[int]int, len(ids)),
	}, nil
}

// Abnormal returns the (sorted) abnormal set the characterizer covers.
func (c *Characterizer) Abnormal() []int { return sets.CloneInts(c.abnormal) }

// denseMotionsOf returns W̄_k(ℓ): the maximal τ-dense motions containing
// ℓ, memoized. The second return value is |M(ℓ)| before density filtering.
func (c *Characterizer) denseMotionsOf(l int) ([][]int, int) {
	if cached, ok := c.denseCache[l]; ok {
		return cached, c.motionsCache[l]
	}
	all := c.graph.MaximalMotionsContaining(l)
	dense := motion.DenseOf(all, c.cfg.Tau)
	c.denseCache[l] = dense
	c.motionsCache[l] = len(all)
	return dense, len(all)
}
