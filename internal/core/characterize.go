package core

import (
	"fmt"

	"anomalia/internal/sets"
)

// Characterize classifies device j, running the paper's Algorithm 3 and,
// when Config.Exact is set and Theorem 6 is inconclusive, Algorithm 4/5.
func (c *Characterizer) Characterize(j int) (Result, error) {
	if !sets.ContainsInt(c.abnormal, j) {
		return Result{}, fmt.Errorf("device %d: %w", j, ErrNotAbnormal)
	}
	res := Result{Device: j}

	// Line 2-3 of Algorithm 3: maximal motions of j, then W̄_k(j).
	ent := c.denseMotionsOf(j)
	res.Cost.MaximalMotions = ent.total
	res.Cost.DenseMotions = len(ent.ids)
	res.Dense = ent.ids

	// Theorem 5: no dense motion -> isolated.
	if len(ent.ids) == 0 {
		res.Class = ClassIsolated
		res.Rule = RuleTheorem5
		return res, nil
	}

	// Build D_k(j) and split it into J_k(j) / L_k(j), all as bitsets over
	// j's component-local indices: the motions are cached in that
	// representation, so the D_k union, the membership probes of the
	// split and the Theorem-6 intersection are pure word operations with
	// no id translation; device-id slices are materialized only at the
	// Result boundary. Component-local indices follow sorted device ids,
	// so iteration and the appended slices come out in id order, exactly
	// as the full-graph implementation produced them. The working bitsets
	// come from the characterizer's size-bucketed pool, leased at the
	// component's universe: a fleet pass reuses one set per worker and
	// size class, and the word algebra costs O(|component|/64) per
	// operation instead of O(m/64).
	lj, _ := c.graph.Local(j)
	comp := c.comps.Of(lj)
	verts := c.comps.Verts(comp)
	rj := c.comps.Rank(lj)
	sc := c.getScratch(len(verts))
	defer c.putScratch(sc)
	dkB, jB, lB := sc.dk, sc.j, sc.l
	for _, mo := range ent.bits {
		dkB.Or(mo)
	}
	dkB.ForEach(func(ri int) bool {
		l := c.graph.IDOf(int(verts[ri]))
		lEnt := c.denseMotionsOf(l)
		if l != j {
			res.Cost.NeighborsScanned++
		}
		inL := false
		for _, mo := range lEnt.bits {
			if !mo.Has(rj) {
				inL = true
				break
			}
		}
		if inL {
			lB.Add(ri)
		} else {
			jB.Add(ri)
		}
		return true
	})
	res.J = c.comps.AppendIds(jB, comp, make([]int, 0, jB.Len()))
	res.L = c.comps.AppendIds(lB, comp, make([]int, 0, lB.Len()))

	// Theorem 6 (lines 17-18 of Algorithm 3): a dense motion of j inside
	// J_k(j) proves massive. |M ∩ J| > τ suffices because M ∩ J is itself
	// a motion (subset of the clique M) containing j.
	for _, mo := range ent.bits {
		if mo.IntersectionLen(jB) > c.cfg.Tau {
			res.Class = ClassMassive
			res.Rule = RuleTheorem6
			return res, nil
		}
	}

	if !c.cfg.Exact {
		res.Class = ClassUnresolved
		res.Rule = RuleNone
		return res, nil
	}

	// Algorithms 4/5: exhaustive collection search deciding between
	// Theorem 7 (massive) and Corollary 8 (unresolved). The search works
	// on sorted id slices; D_k is materialized into pooled scratch (the
	// search reads it only for the duration of the call).
	sc.dkIds = c.comps.AppendIds(dkB, comp, sc.dkIds[:0])
	violating, tested, err := c.searchViolating(j, sc.dkIds, res.L)
	res.Cost.CollectionsTested = tested
	if err != nil {
		return res, err
	}
	if violating {
		res.Class = ClassUnresolved
		res.Rule = RuleCorollary8
	} else {
		res.Class = ClassMassive
		res.Rule = RuleTheorem7
	}
	return res, nil
}

// CharacterizeAll classifies every abnormal device, in id order.
func (c *Characterizer) CharacterizeAll() ([]Result, error) {
	out := make([]Result, 0, len(c.abnormal))
	for _, j := range c.abnormal {
		res, err := c.Characterize(j)
		if err != nil {
			return nil, fmt.Errorf("characterizing device %d: %w", j, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// Sets groups results into the M_k / I_k / U_k decomposition.
type Sets struct {
	Massive    []int
	Isolated   []int
	Unresolved []int
}

// Decompose runs CharacterizeAll and folds the verdicts into sets.
func (c *Characterizer) Decompose() (Sets, error) {
	results, err := c.CharacterizeAll()
	if err != nil {
		return Sets{}, err
	}
	var s Sets
	for _, r := range results {
		switch r.Class {
		case ClassMassive:
			s.Massive = append(s.Massive, r.Device)
		case ClassIsolated:
			s.Isolated = append(s.Isolated, r.Device)
		default:
			s.Unresolved = append(s.Unresolved, r.Device)
		}
	}
	return s, nil
}
