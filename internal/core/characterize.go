package core

import (
	"fmt"

	"anomalia/internal/sets"
)

// Characterize classifies device j, running the paper's Algorithm 3 and,
// when Config.Exact is set and Theorem 6 is inconclusive, Algorithm 4/5.
func (c *Characterizer) Characterize(j int) (Result, error) {
	if !sets.ContainsInt(c.abnormal, j) {
		return Result{}, fmt.Errorf("device %d: %w", j, ErrNotAbnormal)
	}
	res := Result{Device: j}

	// Line 2-3 of Algorithm 3: maximal motions of j, then W̄_k(j).
	dense, totalMotions := c.denseMotionsOf(j)
	res.Cost.MaximalMotions = totalMotions
	res.Cost.DenseMotions = len(dense)
	res.Dense = dense

	// Theorem 5: no dense motion -> isolated.
	if len(dense) == 0 {
		res.Class = ClassIsolated
		res.Rule = RuleTheorem5
		return res, nil
	}

	// Build D_k(j) and split it into J_k(j) / L_k(j).
	var dk []int
	for _, m := range dense {
		dk = sets.UnionInts(dk, m)
	}
	for _, l := range dk {
		lDense, _ := c.denseMotionsOf(l)
		if l != j {
			res.Cost.NeighborsScanned++
		}
		inL := false
		for _, m := range lDense {
			if !sets.ContainsInt(m, j) {
				inL = true
				break
			}
		}
		if inL {
			res.L = append(res.L, l)
		} else {
			res.J = append(res.J, l)
		}
	}

	// Theorem 6 (lines 17-18 of Algorithm 3): a dense motion of j inside
	// J_k(j) proves massive. |M ∩ J| > τ suffices because M ∩ J is itself
	// a motion (subset of the clique M) containing j.
	for _, m := range dense {
		if len(sets.IntersectInts(m, res.J)) > c.cfg.Tau {
			res.Class = ClassMassive
			res.Rule = RuleTheorem6
			return res, nil
		}
	}

	if !c.cfg.Exact {
		res.Class = ClassUnresolved
		res.Rule = RuleNone
		return res, nil
	}

	// Algorithms 4/5: exhaustive collection search deciding between
	// Theorem 7 (massive) and Corollary 8 (unresolved).
	violating, tested, err := c.searchViolating(j, dk, res.L)
	res.Cost.CollectionsTested = tested
	if err != nil {
		return res, err
	}
	if violating {
		res.Class = ClassUnresolved
		res.Rule = RuleCorollary8
	} else {
		res.Class = ClassMassive
		res.Rule = RuleTheorem7
	}
	return res, nil
}

// CharacterizeAll classifies every abnormal device, in id order.
func (c *Characterizer) CharacterizeAll() ([]Result, error) {
	out := make([]Result, 0, len(c.abnormal))
	for _, j := range c.abnormal {
		res, err := c.Characterize(j)
		if err != nil {
			return nil, fmt.Errorf("characterizing device %d: %w", j, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// Sets groups results into the M_k / I_k / U_k decomposition.
type Sets struct {
	Massive    []int
	Isolated   []int
	Unresolved []int
}

// Decompose runs CharacterizeAll and folds the verdicts into sets.
func (c *Characterizer) Decompose() (Sets, error) {
	results, err := c.CharacterizeAll()
	if err != nil {
		return Sets{}, err
	}
	var s Sets
	for _, r := range results {
		switch r.Class {
		case ClassMassive:
			s.Massive = append(s.Massive, r.Device)
		case ClassIsolated:
			s.Isolated = append(s.Isolated, r.Device)
		default:
			s.Unresolved = append(s.Unresolved, r.Device)
		}
	}
	return s, nil
}
