package core

import (
	"errors"
	"testing"

	"anomalia/internal/motion"
	"anomalia/internal/space"
)

// TestExactSearchHugeGroundSet: a maximal dense motion with more than
// maxSubsetGround members anchored at L_k(j) must surface ErrBudget
// instead of silently truncating the search.
func TestExactSearchHugeGroundSet(t *testing.T) {
	t.Parallel()

	// Geometry (1-d, r = 0.06, 2r = 0.12):
	//   j and a friend at 0.00 (j's blob),
	//   a bridge device at 0.10 (adjacent to blob and big blob),
	//   24 devices at 0.20 (big blob, adjacent to bridge, not to j).
	coords := [][]float64{{0.0}, {0.004}, {0.10}}
	for i := 0; i < 24; i++ {
		coords = append(coords, []float64{0.20 + 0.001*float64(i)})
	}
	prev, err := space.StateFromPoints(coords)
	if err != nil {
		t.Fatal(err)
	}
	pair, err := motion.NewPair(prev, prev.Clone())
	if err != nil {
		t.Fatal(err)
	}
	abnormal := make([]int, len(coords))
	for i := range abnormal {
		abnormal[i] = i
	}
	c, err := New(pair, abnormal, Config{R: 0.06, Tau: 2, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	// j = 0: its dense motion is {0, 1, 2}; the bridge (2) has a maximal
	// dense motion of 25 devices avoiding j, far beyond maxSubsetGround.
	_, err = c.Characterize(0)
	if !errors.Is(err, ErrBudget) {
		t.Errorf("Characterize(0) error = %v, want ErrBudget", err)
	}
}

// TestCharacterizeAllPropagatesBudget: fleet-wide characterization
// surfaces per-device budget errors with context.
func TestCharacterizeAllPropagatesBudget(t *testing.T) {
	t.Parallel()

	coords := [][]float64{{0.0}, {0.004}, {0.10}}
	for i := 0; i < 24; i++ {
		coords = append(coords, []float64{0.20 + 0.001*float64(i)})
	}
	prev, err := space.StateFromPoints(coords)
	if err != nil {
		t.Fatal(err)
	}
	pair, err := motion.NewPair(prev, prev.Clone())
	if err != nil {
		t.Fatal(err)
	}
	abnormal := make([]int, len(coords))
	for i := range abnormal {
		abnormal[i] = i
	}
	c, err := New(pair, abnormal, Config{R: 0.06, Tau: 2, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CharacterizeAll(); !errors.Is(err, ErrBudget) {
		t.Errorf("CharacterizeAll error = %v, want wrapped ErrBudget", err)
	}
}

// TestSingleAbnormalDevice: a lone abnormal device is always isolated.
func TestSingleAbnormalDevice(t *testing.T) {
	t.Parallel()

	prev, err := space.StateFromPoints([][]float64{{0.5}, {0.52}, {0.48}})
	if err != nil {
		t.Fatal(err)
	}
	pair, err := motion.NewPair(prev, prev.Clone())
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(pair, []int{1}, Config{R: 0.06, Tau: 1, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Characterize(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != ClassIsolated {
		t.Errorf("lone abnormal device classified %v", res.Class)
	}
}

// TestAbnormalSubsetOnly: devices outside the abnormal set never appear
// in motions even when geometrically close.
func TestAbnormalSubsetOnly(t *testing.T) {
	t.Parallel()

	// Five co-located devices, but only two are abnormal: no dense motion
	// at tau=2 within A_k.
	prev, err := space.StateFromPoints([][]float64{{0.5}, {0.5}, {0.5}, {0.5}, {0.5}})
	if err != nil {
		t.Fatal(err)
	}
	pair, err := motion.NewPair(prev, prev.Clone())
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(pair, []int{0, 1}, Config{R: 0.06, Tau: 2, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Isolated) != 2 {
		t.Errorf("normal neighbours must not contribute density: %+v", s)
	}
}

// TestResultDenseMotionsSorted: reported dense motions use canonical
// sorted order for deterministic downstream consumption.
func TestResultDenseMotionsSorted(t *testing.T) {
	t.Parallel()

	prev, err := space.StateFromPoints([][]float64{{0.5}, {0.51}, {0.49}, {0.52}})
	if err != nil {
		t.Fatal(err)
	}
	pair, err := motion.NewPair(prev, prev.Clone())
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(pair, []int{3, 1, 0, 2}, Config{R: 0.06, Tau: 2, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Characterize(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dense) != 1 {
		t.Fatalf("dense motions = %v", res.Dense)
	}
	m := res.Dense[0]
	for i := 1; i < len(m); i++ {
		if m[i-1] >= m[i] {
			t.Fatalf("dense motion not sorted: %v", m)
		}
	}
}
