package core

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"anomalia/internal/motion"
	"anomalia/internal/space"
	"anomalia/internal/stats"
)

// parityPair builds one of the parity suite's placement families:
//
//	uniform    — both states independent uniform (the generic window)
//	clustered  — r/2-sized cliques translating consistently, mirroring
//	             the adversarial all-abnormal fixture
//	boundary   — positions snapped to the 2r grid used by the graph
//	             build's cells, exercising cell-edge adjacency
//	coincident — heavy ties: many devices share exact positions
func parityPair(t testing.TB, rng *stats.RNG, kind string, n int, r float64) *motion.Pair {
	t.Helper()
	prev, err := space.NewState(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := space.NewState(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	set := func(st *space.State, i int, x, y float64) {
		if err := st.Set(i, space.Point{x, y}); err != nil {
			t.Fatal(err)
		}
	}
	switch kind {
	case "uniform":
		prev.Uniform(func() float64 { return rng.Float64() })
		cur.Uniform(func() float64 { return rng.Float64() })
	case "clustered":
		const clusterSize = 8
		for dev := 0; dev < n; {
			cx, cy := 0.1+0.8*rng.Float64(), 0.1+0.8*rng.Float64()
			sx, sy := (rng.Float64()-0.5)*r, (rng.Float64()-0.5)*r
			for i := 0; i < clusterSize && dev < n; i, dev = i+1, dev+1 {
				ox, oy := (rng.Float64()-0.5)*r/2, (rng.Float64()-0.5)*r/2
				set(prev, dev, cx+ox, cy+oy)
				set(cur, dev, cx+ox+sx, cy+oy+sy)
			}
		}
	case "boundary":
		snap := func(v float64) float64 { return float64(int(v/(2*r))) * 2 * r }
		for i := 0; i < n; i++ {
			x, y := snap(rng.Float64()), snap(rng.Float64())
			set(prev, i, x, y)
			set(cur, i, snap(x+(rng.Float64()-0.5)*4*r), snap(y+(rng.Float64()-0.5)*4*r))
		}
	case "coincident":
		const spots = 6
		px := make([][2]float64, spots)
		for s := range px {
			px[s] = [2]float64{rng.Float64(), rng.Float64()}
		}
		for i := 0; i < n; i++ {
			a, b := px[rng.Intn(spots)], px[rng.Intn(spots)]
			set(prev, i, a[0], a[1])
			set(cur, i, b[0], b[1])
		}
	default:
		t.Fatalf("unknown placement %q", kind)
	}
	pair, err := motion.NewPair(prev, cur)
	if err != nil {
		t.Fatal(err)
	}
	return pair
}

// subsetIds draws a sorted ~fraction subset of 0..n-1 (a mass-event
// style abnormal set).
func subsetIds(rng *stats.RNG, n int, fraction float64) []int {
	var ids []int
	for i := 0; i < n; i++ {
		if rng.Float64() < fraction {
			ids = append(ids, i)
		}
	}
	if len(ids) == 0 {
		ids = []int{0}
	}
	return ids
}

// runParity characterizes the window three ways over one shared graph —
// component-local serial, component-local parallel, and the
// whole-graph-component reference oracle (the identity decomposition
// running the identical code path with full-graph universes, i.e. the
// pre-component behaviour) — and requires bytewise-identical results.
func runParity(t *testing.T, label string, pair *motion.Pair, ids []int, cfg Config) {
	t.Helper()
	g := motion.NewGraph(pair, ids, cfg.R)

	ref := newCharacterizerComps(pair, ids, cfg, g, g.WholeGraphComponent())
	want, err := ref.CharacterizeAll()
	if err != nil {
		t.Fatalf("%s: reference: %v", label, err)
	}

	serial := newCharacterizerComps(pair, ids, cfg, g, g.Components())
	got, err := serial.CharacterizeAll()
	if err != nil {
		t.Fatalf("%s: component-local: %v", label, err)
	}
	if !reflect.DeepEqual(got, want) {
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("%s: device %d diverged:\ncomponent-local %+v\nreference       %+v",
					label, want[i].Device, got[i], want[i])
			}
		}
		t.Fatalf("%s: results diverged", label)
	}

	par := newCharacterizerComps(pair, ids, cfg, g, g.Components())
	gotPar, err := par.CharacterizeAllParallel(4)
	if err != nil {
		t.Fatalf("%s: parallel: %v", label, err)
	}
	if !reflect.DeepEqual(gotPar, want) {
		t.Fatalf("%s: parallel results diverged from reference", label)
	}
}

// TestComponentLocalParity pins the tentpole's correctness contract:
// across placement families, abnormal-set shapes and exact-mode
// settings, component-local characterization must reproduce the
// full-graph-scratch reference bit for bit — verdicts, rules, Dense/J/L
// sets and cost counters alike.
func TestComponentLocalParity(t *testing.T) {
	t.Parallel()

	rng := stats.NewRNG(777)
	for _, kind := range []string{"uniform", "clustered", "boundary", "coincident"} {
		for _, exact := range []bool{false, true} {
			n := 90 + rng.Intn(60)
			r := 0.015 + 0.02*rng.Float64()
			pair := parityPair(t, rng, kind, n, r)
			cfg := Config{R: r, Tau: 2, Exact: exact}
			label := fmt.Sprintf("%s/exact=%v", kind, exact)
			runParity(t, label+"/all-abnormal", pair, allIds(n), cfg)
			runParity(t, label+"/subset", pair, subsetIds(rng, n, 0.3), cfg)
		}
	}
}

// TestComponentLocalParitySparse runs the parity triangle over a window
// large enough for CSR adjacency (sparse mode) with a ~4% mass-event
// abnormal subset and with every device abnormal, so the densified
// enumeration, projection and component partitioning are all exercised
// in the representation used at scale.
func TestComponentLocalParitySparse(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("sparse-mode windows are thousands of devices")
	}

	rng := stats.NewRNG(4242)
	n := 4500 // >= motion's sparse crossover (4096)
	pair := parityPair(t, rng, "uniform", n, 0.004)
	cfg := Config{R: 0.004, Tau: 2, Exact: true}
	runParity(t, "sparse/all-abnormal", pair, allIds(n), cfg)

	// The clustered windows run in cheap mode: their overlapping cliques
	// drive the (tentpole-unchanged) exponential Theorem-7 search past
	// its node budget in reference and component-local paths alike, and
	// the dense-mode suite already covers exact-mode parity.
	clustered := parityPair(t, rng, "clustered", n, 0.004)
	cheap := Config{R: 0.004, Tau: 2}
	runParity(t, "sparse/clustered", clustered, allIds(n), cheap)
	runParity(t, "sparse/subset", clustered, subsetIds(rng, n, 0.04), cheap)
}

// TestComponentLocalParityDenseOversized pins the dense-mode oversized-
// component regression end-to-end: an edge-dense mass event whose
// density-adaptive graph keeps dense bitset rows (denseWorthwhile edge
// count above motion's sparse crossover) while its single connected
// component exceeds the component-densify threshold. Characterizing
// such a window used to panic in the component enumeration's CSR-only
// anchored fallback before the fallback was gated to sparse mode.
func TestComponentLocalParityDenseOversized(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("dense oversized component is thousands of devices")
	}

	const n = 4500 // > motion's component-densify threshold (4096)
	const r = 0.002
	prev, err := space.NewState(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := space.NewState(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	// One mass-event cluster: every device inside an r/2 box translating
	// by one consistent shift, so the window is a single n-device clique
	// component.
	rng := stats.NewRNG(97)
	sx, sy := (rng.Float64()-0.5)*r, (rng.Float64()-0.5)*r
	for i := 0; i < n; i++ {
		ox, oy := (rng.Float64()-0.5)*r/2, (rng.Float64()-0.5)*r/2
		if err := prev.Set(i, space.Point{0.5 + ox, 0.5 + oy}); err != nil {
			t.Fatal(err)
		}
		if err := cur.Set(i, space.Point{0.5 + ox + sx, 0.5 + oy + sy}); err != nil {
			t.Fatal(err)
		}
	}
	pair, err := motion.NewPair(prev, cur)
	if err != nil {
		t.Fatal(err)
	}
	g := motion.NewGraph(pair, allIds(n), r)
	if g.Sparse() {
		t.Fatal("mass-event fixture expected a dense-mode graph")
	}
	if cs := g.Components(); cs.Count() != 1 {
		t.Fatalf("mass-event fixture split into %d components", cs.Count())
	}
	runParity(t, "dense-oversized/all-abnormal", pair, allIds(n), Config{R: r, Tau: 2})
}

// TestScratchPoolSizeClasses pins the retention fix: a lease after a
// mass-event-sized decision must not hand back the mass-event buffer for
// a tiny component, and each size class recycles its own buffers.
func TestScratchPoolSizeClasses(t *testing.T) {
	var c Characterizer
	big := c.getScratch(200_000)
	if big.dk.Universe() != 200_000 {
		t.Fatalf("big universe = %d", big.dk.Universe())
	}
	c.putScratch(big)
	small := c.getScratch(40)
	if small == big {
		t.Fatal("40-bit lease returned the 200k-bit scratch")
	}
	if small.dk.Universe() != 40 || small.j.Universe() != 40 || small.l.Universe() != 40 {
		t.Fatalf("small universes = %d/%d/%d", small.dk.Universe(), small.j.Universe(), small.l.Universe())
	}
	c.putScratch(small)
	if again := c.getScratch(60); again != small {
		t.Error("same-class lease did not recycle the pooled scratch")
	}
	if again := c.getScratch(200_000); again != big {
		t.Error("mass-event-class lease did not recycle its own pooled scratch")
	}
}

// TestScratchClassBoundaries pins the size-class function at its word
// boundaries: leases resize strictly within the class they came from.
func TestScratchClassBoundaries(t *testing.T) {
	t.Parallel()

	cases := []struct{ n, class int }{
		{0, 0}, {1, 0}, {64, 0}, {65, 1}, {128, 1}, {129, 2},
		{4096, 6}, {4097, 7},
	}
	for _, tc := range cases {
		if got := scratchClass(tc.n); got != tc.class {
			t.Errorf("scratchClass(%d) = %d, want %d", tc.n, got, tc.class)
		}
	}
}

// TestMixedWindowAllocFootprint is the alloc-footprint regression test
// for the scratch-retention fix: a window mixing one mass-event cluster
// with many small clusters must characterize within a byte budget that
// the full-graph-scratch implementation (whose every decision allocated
// and cleared window-sized bitsets, and whose every enumerated motion
// was widened to a window-sized bitset) exceeded several-fold.
func TestMixedWindowAllocFootprint(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement over a 20k-device window")
	}

	const m = 20_000
	pair, ids := allAbnormalWindow(t, m)
	cfg := Config{R: allAbnormalR, Tau: allAbnormalTau}
	g := motion.NewGraph(pair, ids, cfg.R)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	c := newCharacterizer(pair, ids, cfg, g)
	if _, err := c.CharacterizeAll(); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	allocated := after.TotalAlloc - before.TotalAlloc

	// Measured ~27 MB at this size; the pre-component implementation
	// interpolates to ~150 MB and the ceiling leaves ~2.5x headroom.
	const ceiling = 70 << 20
	if allocated > ceiling {
		t.Fatalf("characterization allocated %d MB, ceiling %d MB",
			allocated>>20, ceiling>>20)
	}
}
