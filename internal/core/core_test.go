package core

import (
	"errors"
	"testing"

	"anomalia/internal/motion"
	"anomalia/internal/paperfig"
	"anomalia/internal/sets"
	"anomalia/internal/space"
	"anomalia/internal/stats"
)

func mustFigure(t testing.TB, build func() (*paperfig.Config, error)) *paperfig.Config {
	t.Helper()
	cfg, err := build()
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func newChar(t testing.TB, fig *paperfig.Config, exact bool) *Characterizer {
	t.Helper()
	c, err := New(fig.Pair, fig.Abnormal, Config{R: fig.R, Tau: fig.Tau, Exact: exact})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClassAndRuleStrings(t *testing.T) {
	t.Parallel()

	if ClassIsolated.String() != "isolated" || ClassMassive.String() != "massive" ||
		ClassUnresolved.String() != "unresolved" || ClassUnknown.String() != "unknown" {
		t.Error("Class.String misbehaved")
	}
	if RuleTheorem5.String() != "theorem5" || RuleTheorem6.String() != "theorem6" ||
		RuleCorollary8.String() != "corollary8" || RuleTheorem7.String() != "theorem7" ||
		RuleNone.String() != "none" {
		t.Error("Rule.String misbehaved")
	}
}

func TestNewValidation(t *testing.T) {
	t.Parallel()

	fig := mustFigure(t, paperfig.Figure3)
	if _, err := New(nil, fig.Abnormal, Config{R: 0.1, Tau: 1}); !errors.Is(err, ErrConfig) {
		t.Errorf("nil pair error = %v", err)
	}
	if _, err := New(fig.Pair, fig.Abnormal, Config{R: 0.5, Tau: 1}); !errors.Is(err, motion.ErrRadius) {
		t.Errorf("bad radius error = %v", err)
	}
	if _, err := New(fig.Pair, fig.Abnormal, Config{R: 0.1, Tau: 0}); !errors.Is(err, ErrConfig) {
		t.Errorf("bad tau error = %v", err)
	}
	if _, err := New(fig.Pair, []int{99}, Config{R: 0.1, Tau: 1}); !errors.Is(err, ErrConfig) {
		t.Errorf("out-of-range abnormal error = %v", err)
	}
	c, err := New(fig.Pair, []int{2, 0, 2, 1}, Config{R: 0.1, Tau: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Abnormal(); !sets.EqualInts(got, []int{0, 1, 2}) {
		t.Errorf("Abnormal() = %v", got)
	}
}

func TestCharacterizeNotAbnormal(t *testing.T) {
	t.Parallel()

	fig := mustFigure(t, paperfig.Figure3)
	c, err := New(fig.Pair, []int{0, 1, 2}, Config{R: fig.R, Tau: fig.Tau})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Characterize(4); !errors.Is(err, ErrNotAbnormal) {
		t.Errorf("Characterize(4) error = %v, want ErrNotAbnormal", err)
	}
}

// TestPaperFiguresExact verifies the full decision procedure against the
// omniscient classification of every reconstructed figure.
func TestPaperFiguresExact(t *testing.T) {
	t.Parallel()

	figs, err := paperfig.All()
	if err != nil {
		t.Fatal(err)
	}
	for name, fig := range figs {
		fig := fig
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			c := newChar(t, fig, true)
			got, err := c.Decompose()
			if err != nil {
				t.Fatal(err)
			}
			if !sets.EqualInts(got.Massive, fig.Massive) {
				t.Errorf("Massive = %v, want %v", got.Massive, fig.Massive)
			}
			if !sets.EqualInts(got.Isolated, fig.Isolated) {
				t.Errorf("Isolated = %v, want %v", got.Isolated, fig.Isolated)
			}
			if !sets.EqualInts(got.Unresolved, fig.Unresolved) {
				t.Errorf("Unresolved = %v, want %v", got.Unresolved, fig.Unresolved)
			}
		})
	}
}

// TestFigure4JLSplit verifies the J/L neighbourhood decomposition the
// paper works out for device 4 of Figures 4(a) and 4(b).
func TestFigure4JLSplit(t *testing.T) {
	t.Parallel()

	figA := mustFigure(t, paperfig.Figure4a)
	cA := newChar(t, figA, true)
	res, err := cA.Characterize(3) // paper device 4
	if err != nil {
		t.Fatal(err)
	}
	if !sets.EqualInts(res.J, []int{0, 1, 2, 3, 4}) || len(res.L) != 0 {
		t.Errorf("figure 4a: J = %v, L = %v; want J = all, L = empty", res.J, res.L)
	}
	if res.Class != ClassMassive || res.Rule != RuleTheorem6 {
		t.Errorf("figure 4a device 4: %v by %v, want massive by theorem6", res.Class, res.Rule)
	}

	figB := mustFigure(t, paperfig.Figure4b)
	cB := newChar(t, figB, true)
	res, err = cB.Characterize(3)
	if err != nil {
		t.Fatal(err)
	}
	if !sets.EqualInts(res.J, []int{0, 1, 2, 3}) || !sets.EqualInts(res.L, []int{4}) {
		t.Errorf("figure 4b: J = %v, L = %v; want J = {0,1,2,3}, L = {4}", res.J, res.L)
	}
	if res.Class != ClassMassive || res.Rule != RuleTheorem6 {
		t.Errorf("figure 4b device 4: %v by %v, want massive by theorem6", res.Class, res.Rule)
	}
}

// TestFigure5NeedsTheorem7 checks the paper's flagship example of a
// massive device Theorem 6 cannot decide: every device of Figure 5 is
// massive, certified only by the exhaustive collection search.
func TestFigure5NeedsTheorem7(t *testing.T) {
	t.Parallel()

	fig := mustFigure(t, paperfig.Figure5)
	c := newChar(t, fig, true)
	for _, j := range fig.Abnormal {
		res, err := c.Characterize(j)
		if err != nil {
			t.Fatal(err)
		}
		if res.Class != ClassMassive {
			t.Errorf("device %d: class %v, want massive", j, res.Class)
		}
		if res.Rule != RuleTheorem7 {
			t.Errorf("device %d: rule %v, want theorem7", j, res.Rule)
		}
		if res.Cost.CollectionsTested == 0 {
			t.Errorf("device %d: expected the exact search to run", j)
		}
	}
	// The paper works out J_k(1) = {1,2} and L_k(1) = {3,4,7,8}.
	res, err := c.Characterize(0)
	if err != nil {
		t.Fatal(err)
	}
	if !sets.EqualInts(res.J, []int{0, 1}) || !sets.EqualInts(res.L, []int{2, 3, 6, 7}) {
		t.Errorf("figure 5: J = %v, L = %v; want {0,1} and {2,3,6,7}", res.J, res.L)
	}
}

// TestInexactModeFallsBackToUnresolved: without Exact, Theorem-6-undecided
// devices stay unresolved with RuleNone (the cheap mode of Table II).
func TestInexactModeFallsBackToUnresolved(t *testing.T) {
	t.Parallel()

	fig := mustFigure(t, paperfig.Figure5)
	c := newChar(t, fig, false)
	for _, j := range fig.Abnormal {
		res, err := c.Characterize(j)
		if err != nil {
			t.Fatal(err)
		}
		if res.Class != ClassUnresolved || res.Rule != RuleNone {
			t.Errorf("device %d: %v by %v, want unresolved by none", j, res.Class, res.Rule)
		}
		if res.Cost.CollectionsTested != 0 {
			t.Errorf("device %d: exact search must not run in cheap mode", j)
		}
	}
}

func TestIsolatedByTheorem5(t *testing.T) {
	t.Parallel()

	// Far-apart devices: everyone isolated, zero dense motions.
	prev, err := space.StateFromPoints([][]float64{{0.1}, {0.5}, {0.9}})
	if err != nil {
		t.Fatal(err)
	}
	pair, err := motion.NewPair(prev, prev.Clone())
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(pair, []int{0, 1, 2}, Config{R: 0.05, Tau: 1, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	results, err := c.CharacterizeAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		if res.Class != ClassIsolated || res.Rule != RuleTheorem5 {
			t.Errorf("device %d: %v by %v, want isolated by theorem5", res.Device, res.Class, res.Rule)
		}
		if res.Cost.MaximalMotions < 1 {
			t.Errorf("device %d: missing motion cost", res.Device)
		}
	}
}

func TestTauAtLeastAbnormalSize(t *testing.T) {
	t.Parallel()

	fig := mustFigure(t, paperfig.Figure5)
	c, err := New(fig.Pair, fig.Abnormal, Config{R: fig.R, Tau: len(fig.Abnormal), Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Isolated) != len(fig.Abnormal) {
		t.Errorf("with τ >= |A_k| everyone must be isolated, got %+v", s)
	}
}

func TestExactBudgetExceeded(t *testing.T) {
	t.Parallel()

	fig := mustFigure(t, paperfig.Figure5)
	c, err := New(fig.Pair, fig.Abnormal, Config{R: fig.R, Tau: fig.Tau, Exact: true, Budget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Characterize(0); !errors.Is(err, ErrBudget) {
		t.Errorf("tiny budget error = %v, want ErrBudget", err)
	}
}

func TestDecomposePartitionsAbnormalSet(t *testing.T) {
	t.Parallel()

	rng := stats.NewRNG(11)
	pair := randomPair(t, rng, 30, 2, 0.3)
	c, err := New(pair, allIds(30), Config{R: 0.05, Tau: 2, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	total := sets.UnionInts(sets.UnionInts(s.Massive, s.Isolated), s.Unresolved)
	if !sets.EqualInts(total, allIds(30)) {
		t.Errorf("decomposition does not cover A_k: %v", total)
	}
	if len(s.Massive)+len(s.Isolated)+len(s.Unresolved) != 30 {
		t.Error("decomposition sets must be disjoint")
	}
}

func randomPair(t testing.TB, rng *stats.RNG, n, d int, side float64) *motion.Pair {
	t.Helper()
	prev, err := space.NewState(n, d)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := space.NewState(n, d)
	if err != nil {
		t.Fatal(err)
	}
	prev.Uniform(func() float64 { return rng.Float64() * side })
	cur.Uniform(func() float64 { return rng.Float64() * side })
	pair, err := motion.NewPair(prev, cur)
	if err != nil {
		t.Fatal(err)
	}
	return pair
}

func allIds(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}
