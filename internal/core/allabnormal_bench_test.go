package core

import (
	"fmt"
	"testing"

	"anomalia/internal/motion"
	"anomalia/internal/space"
	"anomalia/internal/stats"
)

// allAbnormalR is the consistency radius of the adversarial fixtures.
// It is dimensioned so that clusters span well under 2r (every cluster
// is a clique) while distinct clusters almost never touch: component
// mass stays proportional to m, which is exactly the locality the
// component-local scratch exploits and the full-graph scratch wasted.
const allAbnormalR = 0.002

// allAbnormalTau keeps every cluster τ-dense.
const allAbnormalTau = 3

// allAbnormalClusterSize is the device count of one cluster — a
// mass-event group the size of the paper's R2 scenario events.
const allAbnormalClusterSize = 100

// allAbnormalWindow builds the adversarial worst case of the ROADMAP
// "characterizer scratch cost" item: every one of the m devices is
// abnormal at once, grouped into r/2-sized clusters that each translate
// consistently (so each cluster is a τ-dense motion that must be
// enumerated and decided). Verdict-wise the window is boring — almost
// everything is massive by Theorem 6 — but decision-wise it maximizes
// the number of decisions over the number of cached motion bitsets.
func allAbnormalWindow(tb testing.TB, m int) (*motion.Pair, []int) {
	tb.Helper()
	const d = 2
	rng := stats.NewRNG(int64(m))
	prev, err := space.NewState(m, d)
	if err != nil {
		tb.Fatal(err)
	}
	cur, err := space.NewState(m, d)
	if err != nil {
		tb.Fatal(err)
	}
	clusters := (m + allAbnormalClusterSize - 1) / allAbnormalClusterSize
	ids := make([]int, m)
	dev := 0
	for c := 0; c < clusters && dev < m; c++ {
		// Cluster center away from the boundary; members within a box of
		// side r/2 around it, so every pair sits well inside 2r.
		cx := 0.1 + 0.8*rng.Float64()
		cy := 0.1 + 0.8*rng.Float64()
		// The whole cluster translates by one consistent shift <= r/2 per
		// axis: pairwise distances are preserved, so the cluster is a
		// maximal τ-dense motion in the window's motion graph.
		sx := (rng.Float64() - 0.5) * allAbnormalR
		sy := (rng.Float64() - 0.5) * allAbnormalR
		for i := 0; i < allAbnormalClusterSize && dev < m; i++ {
			ox := (rng.Float64() - 0.5) * allAbnormalR / 2
			oy := (rng.Float64() - 0.5) * allAbnormalR / 2
			if err := prev.Set(dev, space.Point{cx + ox, cy + oy}); err != nil {
				tb.Fatal(err)
			}
			if err := cur.Set(dev, space.Point{cx + ox + sx, cy + oy + sy}); err != nil {
				tb.Fatal(err)
			}
			ids[dev] = dev
			dev++
		}
	}
	pair, err := motion.NewPair(prev, cur)
	if err != nil {
		tb.Fatal(err)
	}
	return pair, ids
}

// BenchmarkCharacterizeAllAbnormal measures fleet-wide characterization
// of the adversarial all-abnormal window at m ∈ {10k, 50k, 200k} — the
// curve the ROADMAP recorded as super-quadratic (10k→45ms, 50k→650ms,
// 200k→57s) under full-graph scratch bitsets. The motion graph is built
// once outside the timer (its cost is covered by BenchmarkNewGraph);
// each iteration runs a fresh characterizer over it, so the measured
// work is exactly the decision layer: motion enumeration, the
// D_k/J_k/L_k algebra and the verdicts. bench.sh computes the scaling
// exponent of this curve and CI gates the m=50k point.
func BenchmarkCharacterizeAllAbnormal(b *testing.B) {
	for _, m := range []int{10_000, 50_000, 200_000} {
		if testing.Short() && m > 50_000 {
			continue
		}
		b.Run(fmt.Sprintf("m=%dk", m/1000), func(b *testing.B) {
			pair, ids := allAbnormalWindow(b, m)
			cfg := Config{R: allAbnormalR, Tau: allAbnormalTau}
			g := motion.NewGraph(pair, ids, cfg.R)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := newCharacterizer(pair, ids, cfg, g)
				if _, err := c.CharacterizeAll(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
