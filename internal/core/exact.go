package core

import (
	"fmt"
	"math/bits"
	"sort"

	"anomalia/internal/sets"
)

// maxSubsetGround bounds the per-motion ground set for exhaustive subset
// enumeration in the exact search (2^20 masks at worst). Realistic
// neighbourhood sizes stay far below this.
const maxSubsetGround = 20

// searchViolating implements Algorithms 4/5: it hunts for a collection C
// of pairwise-disjoint dense motions from the family
//
//	{B ∈ W_k(ℓ) | ℓ ∈ L_k(j), j ∉ B}
//
// for which relation (4) fails — no dense motion containing j survives in
// D_k(j) \ ∪C — and relation (5) fails — no B ∈ C extends to a dense
// motion with j. Such a C certifies j ∈ U_k (Corollary 8); exhausting the
// space without finding one certifies j ∈ M_k (Theorem 7).
//
// Every member of a violating collection must contain a device of L_k(j),
// have more than τ members, and include at least one device non-adjacent
// to j (otherwise B ∪ {j} would be a dense motion and relation (5) would
// hold). Every such B is a subset of some maximal dense motion M ∈ W̄_k(ℓ)
// with ℓ ∈ L_k(j) and j ∉ M, so the search enumerates subsets of that
// maximal family.
func (c *Characterizer) searchViolating(j int, dk, L []int) (bool, int, error) {
	budget := c.cfg.Budget
	if budget <= 0 {
		budget = DefaultBudget
	}

	// Assemble the deduplicated family MS of maximal dense motions
	// anchored at L and excluding j.
	seen := make(map[string]struct{})
	var ms [][]int
	for _, l := range L {
		lDense := c.denseMotionsOf(l).ids
		for _, m := range lDense {
			if sets.ContainsInt(m, j) {
				continue
			}
			key := fmt.Sprint(m)
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			ms = append(ms, m)
		}
	}
	sets.SortSets(ms)

	s := &violSearch{
		c:      c,
		j:      j,
		dk:     dk,
		L:      L,
		ms:     ms,
		budget: budget,
	}
	found, err := s.dfs(0, nil)
	return found, s.tested, err
}

type violSearch struct {
	c      *Characterizer
	j      int
	dk     []int
	L      []int
	ms     [][]int
	budget int
	tested int
	// allowedBuf and availBuf are scratch buffers for the per-node set
	// differences. Sharing them across the recursion is safe because each
	// dfs node fully consumes its difference (the relation-(4) test, the
	// subsets enumeration) before any child node recomputes it.
	allowedBuf []int
	availBuf   []int
}

// dfs extends the current collection (whose union is `used`, sorted) with
// subsets drawn from ms[idx:]. It tests the violation condition at every
// node, including the empty collection at the root.
func (s *violSearch) dfs(idx int, used []int) (bool, error) {
	s.tested++
	s.budget--
	if s.budget < 0 {
		return false, fmt.Errorf("device %d: %w", s.j, ErrBudget)
	}
	// Relation (4) for the current collection: does any dense motion
	// containing j survive within D_k(j) \ used? Relation (5) fails by
	// construction of every added subset, so failure of (4) certifies a
	// violating collection.
	s.allowedBuf = sets.DiffIntsInto(s.allowedBuf[:0], s.dk, used)
	if !s.c.graph.HasDenseMotionContaining(s.j, s.allowedBuf, s.c.cfg.Tau) {
		return true, nil
	}

	for mi := idx; mi < len(s.ms); mi++ {
		s.availBuf = sets.DiffIntsInto(s.availBuf[:0], s.ms[mi], used)
		avail := s.availBuf
		if len(avail) <= s.c.cfg.Tau {
			continue
		}
		subsetsFound, err := s.subsets(avail)
		if err != nil {
			return false, err
		}
		for _, b := range subsetsFound {
			// Staying at index mi permits a second disjoint subset of the
			// same maximal motion when it is large enough.
			found, err := s.dfs(mi, sets.UnionInts(used, b))
			if err != nil {
				return false, err
			}
			if found {
				return true, nil
			}
		}
	}
	return false, nil
}

// subsets enumerates the admissible blocker subsets of avail, in
// decreasing size (the order of Algorithm 5): more than τ members, at
// least one member of L_k(j), and at least one member non-adjacent to j.
func (s *violSearch) subsets(avail []int) ([][]int, error) {
	n := len(avail)
	if n > maxSubsetGround {
		return nil, fmt.Errorf("ground set of %d devices for device %d: %w", n, s.j, ErrBudget)
	}
	var lMask, nonAdjMask uint32
	for i, id := range avail {
		if sets.ContainsInt(s.L, id) {
			lMask |= 1 << uint(i)
		}
		if !s.c.graph.Adjacent(id, s.j) {
			nonAdjMask |= 1 << uint(i)
		}
	}
	var out [][]int
	for mask := uint32(1); mask < 1<<uint(n); mask++ {
		if bits.OnesCount32(mask) <= s.c.cfg.Tau {
			continue
		}
		if mask&lMask == 0 || mask&nonAdjMask == 0 {
			continue
		}
		b := make([]int, 0, bits.OnesCount32(mask))
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				b = append(b, avail[i])
			}
		}
		out = append(out, b)
	}
	sort.Slice(out, func(a, b int) bool {
		if len(out[a]) != len(out[b]) {
			return len(out[a]) > len(out[b])
		}
		for i := range out[a] {
			if out[a][i] != out[b][i] {
				return out[a][i] < out[b][i]
			}
		}
		return false
	})
	return out, nil
}
