package dirnet

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"anomalia/internal/dist"
	"anomalia/internal/motion"
	"anomalia/internal/space"
)

// Server hosts one directory replica: it rebuilds each observation
// window's abnormal trajectories from the wire (sparse n-row states —
// only abnormal rows are ever read by the decision path), keeps the
// dist.Directory alive across windows so msgAdvance patches instead of
// rebuilding, and answers decision and view queries against it.
//
// A server that restarts — or that never saw the client's last window
// — answers statusNeedInit, and the client re-seeds it with msgInit:
// crash recovery costs one extra round-trip, never a wrong verdict.
//
// Serve/HandleConn may run for many connections concurrently; the
// directory transitions are serialized, and decision reads run against
// immutable window snapshots (the dist.Directory contract).
type Server struct {
	// IOTimeout bounds one frame body read or response write, so a
	// stalled peer cannot wedge a handler goroutine forever. The wait
	// for the next request header is unbounded — idle connections are
	// normal. Zero means DefaultRequestTimeout.
	IOTimeout time.Duration

	mu  sync.Mutex // serializes directory transitions (init/advance)
	dir *dist.Directory
	seq uint64 // window the directory currently holds; 0 = none

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	// Lifetime wire-service counters behind Counters — atomics, so
	// concurrent HandleConn goroutines record without coordination and
	// a scraper reads without stopping service.
	nConns        atomic.Int64
	nRequests     atomic.Int64
	nReqErrors    atomic.Int64
	nBytesRead    atomic.Int64
	nBytesWritten atomic.Int64
}

// ServerCounters is a snapshot of a server's lifetime wire service:
// connections accepted, requests answered (errors are the subset
// answered with an application statusErr), and frame bytes moved,
// prefix included. Safe to call from any goroutine.
type ServerCounters struct {
	Connections   int64
	Requests      int64
	RequestErrors int64
	BytesRead     int64
	BytesWritten  int64
}

// Counters returns the lifetime wire counters.
func (s *Server) Counters() ServerCounters {
	return ServerCounters{
		Connections:   s.nConns.Load(),
		Requests:      s.nRequests.Load(),
		RequestErrors: s.nReqErrors.Load(),
		BytesRead:     s.nBytesRead.Load(),
		BytesWritten:  s.nBytesWritten.Load(),
	}
}

// NewServer returns an empty server: the first request it can answer
// with anything but statusNeedInit is msgInit.
func NewServer() *Server {
	return &Server{conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections until the listener fails (or is closed)
// and handles each on its own goroutine.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go s.HandleConn(conn)
	}
}

// HandleConn serves one connection until EOF, a transport error, or
// Close.
func (s *Server) HandleConn(conn net.Conn) {
	if !s.track(conn) {
		conn.Close()
		return
	}
	defer s.untrack(conn)
	defer conn.Close()
	s.nConns.Add(1)
	r := bufio.NewReaderSize(conn, 1<<16)
	timeout := s.IOTimeout
	if timeout <= 0 {
		timeout = DefaultRequestTimeout
	}
	var in, out []byte
	for {
		// Block for the next request header indefinitely, then bound the
		// rest of the exchange.
		conn.SetDeadline(time.Time{})
		payload, rcvd, err := readFrameDeadline(conn, r, in, timeout)
		in = payload
		if err != nil {
			return
		}
		s.nRequests.Add(1)
		s.nBytesRead.Add(int64(rcvd))
		out = s.respond(out[:0], payload)
		if len(out) > 0 && out[0] == statusErr {
			s.nReqErrors.Add(1)
		}
		conn.SetWriteDeadline(time.Now().Add(timeout))
		sent, err := writeFrame(conn, out)
		s.nBytesWritten.Add(int64(sent))
		if err != nil {
			return
		}
	}
}

// readFrameDeadline reads one frame, arming the IO deadline only after
// the first header byte arrives.
func readFrameDeadline(conn net.Conn, r *bufio.Reader, buf []byte, timeout time.Duration) ([]byte, int, error) {
	if _, err := r.Peek(1); err != nil {
		return buf, 0, err
	}
	conn.SetReadDeadline(time.Now().Add(timeout))
	return readFrame(r, buf)
}

func (s *Server) track(conn net.Conn) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.connMu.Lock()
	delete(s.conns, conn)
	s.connMu.Unlock()
}

// Close drops every active connection and refuses new ones. The
// directory state is kept: a closed-then-reused server models a
// partition, a fresh NewServer models a crash.
func (s *Server) Close() {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	clear(s.conns)
}

// Seq returns the window sequence the directory currently holds (0 =
// none) — observability for tests and the binary's logs.
func (s *Server) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// respond dispatches one request payload and appends the response to
// out.
func (s *Server) respond(out, payload []byte) []byte {
	if len(payload) == 0 {
		return appendErr(out, errors.New("empty request"))
	}
	c := &cursor{b: payload, off: 1}
	switch payload[0] {
	case msgInit, msgAdvance:
		return s.respondWindow(out, payload[0], c)
	case msgDecideAll:
		return s.respondDecideAll(out, c)
	case msgDecide:
		return s.respondDecide(out, c)
	case msgView:
		return s.respondView(out, c)
	default:
		return appendErr(out, fmt.Errorf("unknown message type %#x", payload[0]))
	}
}

// respondWindow applies msgInit / msgAdvance: reconstruct the window's
// sparse state pair and transition the directory.
func (s *Server) respondWindow(out []byte, typ byte, c *cursor) []byte {
	w, err := decodeWindow(c)
	if err != nil {
		return appendErr(out, err)
	}
	pair, err := sparsePair(w)
	if err != nil {
		return appendErr(out, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if typ == msgAdvance {
		if s.dir == nil || s.seq != w.prevSeq {
			return append(out, statusNeedInit)
		}
		if _, err := s.dir.Advance(pair, w.ids, w.moved); err != nil {
			// Advance never mutates the retained window on error, and seq
			// is untouched — the client's next attempt resyncs via
			// statusNeedInit or a matching msgInit.
			return appendErr(out, err)
		}
	} else {
		dir, err := dist.NewDirectory(pair, w.ids, w.r)
		if err != nil {
			return appendErr(out, err)
		}
		s.dir = dir
	}
	s.seq = w.seq
	return append(out, statusOK)
}

// sparsePair rebuilds the window's state pair at full population size
// with only the abnormal rows populated. Sound because the directory
// and decision paths read abnormal rows only; rows already lie in the
// unit cube, so Set's clamp is the identity and the reconstruction is
// bit-exact.
func sparsePair(w windowMsg) (*motion.Pair, error) {
	m := len(w.ids)
	if len(w.prev) != m*w.d || len(w.cur) != m*w.d {
		return nil, fmt.Errorf("window rows %d/%d for %d ids × %d services", len(w.prev), len(w.cur), m, w.d)
	}
	prev, err := space.NewState(w.n, w.d)
	if err != nil {
		return nil, err
	}
	cur, err := space.NewState(w.n, w.d)
	if err != nil {
		return nil, err
	}
	for i, id := range w.ids {
		if id < 0 || id >= w.n {
			return nil, fmt.Errorf("abnormal device %d outside population of %d", id, w.n)
		}
		if err := prev.Set(id, w.prev[i*w.d:(i+1)*w.d]); err != nil {
			return nil, err
		}
		if err := cur.Set(id, w.cur[i*w.d:(i+1)*w.d]); err != nil {
			return nil, err
		}
	}
	return motion.NewPair(prev, cur)
}

// window returns the live directory if it holds seq, or nil (→
// statusNeedInit).
func (s *Server) window(seq uint64) *dist.Directory {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dir == nil || s.seq != seq {
		return nil
	}
	return s.dir
}

// respondDecideAll serves the shard's slice of the fleet's decisions:
// positions [from, to) of the window's sorted abnormal set.
func (s *Server) respondDecideAll(out []byte, c *cursor) []byte {
	var m decideMsg
	m.seq = c.u64()
	m.cfg = decodeConfig(c)
	m.from = int(c.u32())
	m.to = int(c.u32())
	if err := c.err(); err != nil {
		return appendErr(out, err)
	}
	dir := s.window(m.seq)
	if dir == nil {
		return append(out, statusNeedInit)
	}
	abnormal := dir.Abnormal()
	if m.from < 0 || m.to < m.from || m.to > len(abnormal) {
		return appendErr(out, fmt.Errorf("decide range [%d, %d) over %d abnormal devices", m.from, m.to, len(abnormal)))
	}
	start := len(out)
	out = append(out, statusOK)
	out = appendU32(out, uint32(m.to-m.from))
	for _, j := range abnormal[m.from:m.to] {
		dec, st, err := dist.Decide(dir, j, m.cfg)
		if err != nil {
			// Discard the partial response: an error mid-slice becomes one
			// whole statusErr frame.
			return appendErr(out[:start], err)
		}
		out = appendDecision(out, dist.Decision{Result: dec, Stats: st})
	}
	return out
}

// respondDecide serves one device's decision.
func (s *Server) respondDecide(out []byte, c *cursor) []byte {
	var m decideMsg
	m.seq = c.u64()
	m.cfg = decodeConfig(c)
	m.device = int(c.u32())
	if err := c.err(); err != nil {
		return appendErr(out, err)
	}
	dir := s.window(m.seq)
	if dir == nil {
		return append(out, statusNeedInit)
	}
	res, st, err := dist.Decide(dir, m.device, m.cfg)
	if err != nil {
		return appendErr(out, err)
	}
	out = append(out, statusOK)
	return appendDecision(out, dist.Decision{Result: res, Stats: st})
}

// respondView serves one device's raw 4r view plus its billed stats.
func (s *Server) respondView(out []byte, c *cursor) []byte {
	seq := c.u64()
	device := int(c.u32())
	if err := c.err(); err != nil {
		return appendErr(out, err)
	}
	dir := s.window(seq)
	if dir == nil {
		return append(out, statusNeedInit)
	}
	view, st, err := dir.View(device)
	if err != nil {
		return appendErr(out, err)
	}
	out = append(out, statusOK)
	out = appendU32(out, uint32(st.Messages))
	out = appendU32(out, uint32(st.Trajectories))
	out = appendU32(out, uint32(st.ViewSize))
	out = appendU32(out, uint32(len(view)))
	for _, id := range view {
		out = appendU32(out, uint32(id))
	}
	return out
}
