package dirnet

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"anomalia/internal/core"
	"anomalia/internal/dist"
)

// MaxFrame caps a frame's payload length in both directions, bounding
// the allocation a corrupt length prefix could demand (the same role
// snapio's geometry check plays for snapshot frames). 256 MiB clears a
// million-device abnormal window with every service dimension in use.
const MaxFrame = 1 << 28

// Request message types (first payload byte).
const (
	msgInit byte = iota + 1
	msgAdvance
	msgDecideAll
	msgDecide
	msgView
)

// Response status bytes.
const (
	statusOK byte = iota + 0x80
	statusNeedInit
	statusErr
)

// writeFrame sends one length-prefixed frame and returns the bytes put
// on the wire.
func writeFrame(w io.Writer, payload []byte) (int, error) {
	if len(payload) > MaxFrame {
		return 0, fmt.Errorf("dirnet: frame of %d bytes exceeds MaxFrame", len(payload))
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return 0, err
	}
	return 4 + len(payload), nil
}

// readFrame reads one frame into buf (grown as needed) and returns the
// payload plus the bytes taken off the wire.
func readFrame(r io.Reader, buf []byte) ([]byte, int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return buf, 0, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n > MaxFrame {
		return buf, 0, fmt.Errorf("dirnet: frame of %d bytes exceeds MaxFrame", n)
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return buf, 0, err
	}
	return buf, 4 + n, nil
}

// Append-style encoders, little-endian like snapio.

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// cursor is the decode side: sequential reads with one sticky error,
// checked once at the end of a message.
type cursor struct {
	b   []byte
	off int
	bad bool
}

func (c *cursor) u8() byte {
	if c.bad || c.off+1 > len(c.b) {
		c.bad = true
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

func (c *cursor) u32() uint32 {
	if c.bad || c.off+4 > len(c.b) {
		c.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v
}

func (c *cursor) u64() uint64 {
	if c.bad || c.off+8 > len(c.b) {
		c.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v
}

func (c *cursor) f64() float64 { return math.Float64frombits(c.u64()) }

// count reads a u32 element count and refuses one that could not fit
// in the remaining payload at width bytes per element — the cursor's
// allocation bound.
func (c *cursor) count(width int) int {
	n := int(c.u32())
	if c.bad || n < 0 || n*width > len(c.b)-c.off {
		c.bad = true
		return 0
	}
	return n
}

func (c *cursor) ids(n int) []int {
	if n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(c.u32())
	}
	return out
}

func (c *cursor) err() error {
	if c.bad {
		return fmt.Errorf("dirnet: truncated or malformed message at byte %d of %d", c.off, len(c.b))
	}
	if c.off != len(c.b) {
		return fmt.Errorf("dirnet: %d trailing bytes after message", len(c.b)-c.off)
	}
	return nil
}

// windowMsg is the decoded body shared by msgInit and msgAdvance: one
// observation window's abnormal trajectories. moved and prevSeq only
// matter to msgAdvance.
type windowMsg struct {
	seq     uint64
	prevSeq uint64
	r       float64
	n, d    int
	ids     []int
	prev    []float64 // m×d, row-major, aligned with ids
	cur     []float64
	moved   []int
}

// appendWindow encodes a window message. ids must be sorted; prev and
// cur are the abnormal devices' rows in id order.
func appendWindow(b []byte, typ byte, w windowMsg) []byte {
	b = append(b, typ)
	b = appendU64(b, w.seq)
	b = appendU64(b, w.prevSeq)
	b = appendF64(b, w.r)
	b = appendU32(b, uint32(w.n))
	b = appendU32(b, uint32(w.d))
	b = appendU32(b, uint32(len(w.ids)))
	for _, id := range w.ids {
		b = appendU32(b, uint32(id))
	}
	for _, v := range w.prev {
		b = appendF64(b, v)
	}
	for _, v := range w.cur {
		b = appendF64(b, v)
	}
	b = appendU32(b, uint32(len(w.moved)))
	for _, id := range w.moved {
		b = appendU32(b, uint32(id))
	}
	return b
}

// decodeWindow decodes a window message body (type byte already
// consumed).
func decodeWindow(c *cursor) (windowMsg, error) {
	var w windowMsg
	w.seq = c.u64()
	w.prevSeq = c.u64()
	w.r = c.f64()
	w.n = int(c.u32())
	w.d = int(c.u32())
	m := c.count(4)
	w.ids = c.ids(m)
	if w.d > 0 && m > (len(c.b)-c.off)/(16*w.d) {
		c.bad = true
	}
	if !c.bad {
		w.prev = make([]float64, m*w.d)
		for i := range w.prev {
			w.prev[i] = c.f64()
		}
		w.cur = make([]float64, m*w.d)
		for i := range w.cur {
			w.cur[i] = c.f64()
		}
	}
	w.moved = c.ids(c.count(4))
	return w, c.err()
}

// decideMsg is the decoded body of msgDecideAll / msgDecide.
type decideMsg struct {
	seq      uint64
	cfg      core.Config
	from, to int // msgDecideAll: positions into the sorted abnormal set
	device   int // msgDecide / msgView: device id
}

func appendConfig(b []byte, cfg core.Config) []byte {
	b = appendF64(b, cfg.R)
	b = appendU32(b, uint32(cfg.Tau))
	exact := byte(0)
	if cfg.Exact {
		exact = 1
	}
	b = append(b, exact)
	return appendU64(b, uint64(cfg.Budget))
}

func decodeConfig(c *cursor) core.Config {
	return core.Config{
		R:      c.f64(),
		Tau:    int(c.u32()),
		Exact:  c.u8() == 1,
		Budget: int(c.u64()),
	}
}

func appendDecideAll(b []byte, seq uint64, cfg core.Config, from, to int) []byte {
	b = append(b, msgDecideAll)
	b = appendU64(b, seq)
	b = appendConfig(b, cfg)
	b = appendU32(b, uint32(from))
	return appendU32(b, uint32(to))
}

func appendDecide(b []byte, typ byte, seq uint64, cfg core.Config, device int) []byte {
	b = append(b, typ)
	b = appendU64(b, seq)
	if typ == msgDecide {
		b = appendConfig(b, cfg)
	}
	return appendU32(b, uint32(device))
}

// appendDecision encodes one decision: the verdict fields an Outcome
// is built from plus the billed traffic stats. The J/L diagnostic
// split of core.Result is deliberately not carried.
func appendDecision(b []byte, dec dist.Decision) []byte {
	b = appendU32(b, uint32(dec.Result.Device))
	b = append(b, byte(dec.Result.Class), byte(dec.Result.Rule))
	b = appendU64(b, uint64(dec.Result.Cost.MaximalMotions))
	b = appendU64(b, uint64(dec.Result.Cost.DenseMotions))
	b = appendU64(b, uint64(dec.Result.Cost.NeighborsScanned))
	b = appendU64(b, uint64(dec.Result.Cost.CollectionsTested))
	b = appendU32(b, uint32(len(dec.Result.Dense)))
	for _, motion := range dec.Result.Dense {
		b = appendU32(b, uint32(len(motion)))
		for _, id := range motion {
			b = appendU32(b, uint32(id))
		}
	}
	b = appendU32(b, uint32(dec.Stats.Messages))
	b = appendU32(b, uint32(dec.Stats.Trajectories))
	return appendU32(b, uint32(dec.Stats.ViewSize))
}

func decodeDecision(c *cursor) dist.Decision {
	var dec dist.Decision
	dec.Result.Device = int(c.u32())
	dec.Result.Class = core.Class(c.u8())
	dec.Result.Rule = core.Rule(c.u8())
	dec.Result.Cost.MaximalMotions = int(c.u64())
	dec.Result.Cost.DenseMotions = int(c.u64())
	dec.Result.Cost.NeighborsScanned = int(c.u64())
	dec.Result.Cost.CollectionsTested = int(c.u64())
	if k := c.count(4); k > 0 {
		dec.Result.Dense = make([][]int, k)
		for i := range dec.Result.Dense {
			dec.Result.Dense[i] = c.ids(c.count(4))
		}
	}
	dec.Stats.Messages = int(c.u32())
	dec.Stats.Trajectories = int(c.u32())
	dec.Stats.ViewSize = int(c.u32())
	return dec
}

// serverError is a decoded statusErr body: a deterministic application
// rejection from the server, as opposed to a transport fault — it is
// never retried and never charged to a breaker.
type serverError struct{ msg string }

func (e *serverError) Error() string { return "dirnet: server: " + e.msg }

// appendErr encodes a statusErr response.
func appendErr(b []byte, err error) []byte {
	msg := err.Error()
	b = append(b, statusErr)
	b = appendU32(b, uint32(len(msg)))
	return append(b, msg...)
}

// decodeStatus splits a response payload into its status byte and
// body, converting statusNeedInit and statusErr into errors.
func decodeStatus(payload []byte) ([]byte, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("dirnet: empty response")
	}
	body := payload[1:]
	switch payload[0] {
	case statusOK:
		return body, nil
	case statusNeedInit:
		return nil, errNeedInit
	case statusErr:
		c := &cursor{b: body}
		n := c.count(1)
		var msg string
		if !c.bad {
			msg = string(c.b[c.off : c.off+n])
			c.off += n
		}
		if err := c.err(); err != nil {
			return nil, err
		}
		return nil, &serverError{msg: msg}
	default:
		return nil, fmt.Errorf("dirnet: unknown response status %#x", payload[0])
	}
}
