package dirnet

import (
	"errors"
	"fmt"
	"net"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"anomalia/internal/core"
	"anomalia/internal/dist"
	"anomalia/internal/motion"
	"anomalia/internal/space"
	"anomalia/internal/stats"
)

// pipeNet is an in-process transport: one Server per address, dialed
// over net.Pipe, with per-address fault switches.
type pipeNet struct {
	mu      sync.Mutex
	servers map[string]*Server
	refuse  map[string]bool
	dials   map[string]int
	conns   map[string][]net.Conn
}

func newPipeNet(addrs ...string) *pipeNet {
	p := &pipeNet{
		servers: make(map[string]*Server),
		refuse:  make(map[string]bool),
		dials:   make(map[string]int),
		conns:   make(map[string][]net.Conn),
	}
	for _, a := range addrs {
		p.servers[a] = NewServer()
	}
	return p
}

func (p *pipeNet) dial(addr string) (net.Conn, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dials[addr]++
	if p.refuse[addr] {
		return nil, errors.New("pipenet: connection refused")
	}
	srv, ok := p.servers[addr]
	if !ok {
		return nil, errors.New("pipenet: no such host")
	}
	c1, c2 := net.Pipe()
	go srv.HandleConn(c2)
	p.conns[addr] = append(p.conns[addr], c1)
	return c1, nil
}

// setRefuse toggles dial refusal and, when turning the link off, also
// severs the live connections — a partition cuts established flows too.
func (p *pipeNet) setRefuse(addr string, v bool) {
	p.mu.Lock()
	p.refuse[addr] = v
	if v {
		for _, c := range p.conns[addr] {
			c.Close()
		}
		p.conns[addr] = nil
	}
	p.mu.Unlock()
}

// crash replaces the server behind addr with a fresh empty one,
// dropping its connections — state lost, like a process restart.
func (p *pipeNet) crash(addr string) {
	p.mu.Lock()
	old := p.servers[addr]
	p.servers[addr] = NewServer()
	p.mu.Unlock()
	old.Close()
}

func (p *pipeNet) dialCount(addr string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dials[addr]
}

func testClient(t *testing.T, pn *pipeNet, addrs []string, mut func(*Config)) *Client {
	t.Helper()
	cfg := Config{
		Addrs:          addrs,
		Dial:           pn.dial,
		RequestTimeout: 2 * time.Second,
		Sleep:          func(time.Duration) {},
		Seed:           1,
	}
	if mut != nil {
		mut(&cfg)
	}
	c, err := NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// windows generates a deterministic sequence of observation windows:
// full-population pairs with an evolving abnormal set.
type windowGen struct {
	n, d int
	rng  *stats.RNG
	cur  *space.State
}

func newWindowGen(t *testing.T, n, d int, seed int64) *windowGen {
	t.Helper()
	s, err := space.NewState(n, d)
	if err != nil {
		t.Fatal(err)
	}
	g := &windowGen{n: n, d: d, rng: stats.NewRNG(seed), cur: s}
	s.Uniform(g.rng.Float64)
	return g
}

// next evolves the population and returns the window pair with its
// sorted abnormal set: a contiguous cluster plus scattered singletons.
func (g *windowGen) next() (*motion.Pair, []int) {
	prev := g.cur
	cur := prev.Clone()
	// Drift a random subset of devices.
	for i := 0; i < g.n/4; i++ {
		j := int(g.rng.Float64() * float64(g.n))
		p := cur.At(j)
		row := make([]float64, g.d)
		for k := range row {
			row[k] = p[k] + (g.rng.Float64()-0.5)*0.08
		}
		cur.Set(j, row)
	}
	start := int(g.rng.Float64() * float64(g.n-20))
	seen := make(map[int]bool, 16)
	for j := start; j < start+12; j++ {
		seen[j] = true
	}
	for i := 0; i < 8; i++ {
		seen[int(g.rng.Float64()*float64(g.n))] = true
	}
	abnormal := make([]int, 0, len(seen))
	for j := range seen {
		abnormal = append(abnormal, j)
	}
	sort.Ints(abnormal)
	g.cur = cur
	pair, err := motion.NewPair(prev, cur)
	if err != nil {
		panic(err)
	}
	return pair, abnormal
}

// oracle mirrors the server fleet in-process: one persistent directory
// advanced with the same windows.
type oracle struct {
	dir *dist.Directory
	r   float64
}

func (o *oracle) decide(t *testing.T, pair *motion.Pair, abnormal []int, cfg core.Config) ([]dist.Decision, dist.Stats) {
	t.Helper()
	var err error
	if o.dir == nil {
		o.dir, err = dist.NewDirectory(pair, abnormal, o.r)
	} else {
		_, err = o.dir.Advance(pair, abnormal, nil)
	}
	if err != nil {
		t.Fatal(err)
	}
	decs, total, err := dist.DecideAll(o.dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return decs, total
}

// sameDecisions compares everything the wire carries: J/L (core's
// diagnostic neighbourhood split) deliberately stay server-side, so
// they are masked out of the in-process reference.
func sameDecisions(t *testing.T, got, want []dist.Decision, wantTotal, gotTotal dist.Stats) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%d decisions, want %d", len(got), len(want))
	}
	for i := range want {
		w := want[i]
		w.Result.J, w.Result.L = nil, nil
		if !reflect.DeepEqual(got[i], w) {
			t.Fatalf("decision %d:\n got %+v\nwant %+v", i, got[i], w)
		}
	}
	if gotTotal != wantTotal {
		t.Fatalf("total stats %+v, want %+v", gotTotal, wantTotal)
	}
}

var testCfg = core.Config{R: 0.05, Tau: 3, Exact: true}

func TestDecideWindowParityMultiShard(t *testing.T) {
	addrs := []string{"s0", "s1", "s2"}
	pn := newPipeNet(addrs...)
	c := testClient(t, pn, addrs, nil)
	g := newWindowGen(t, 300, 2, 11)
	o := &oracle{r: testCfg.R}
	for w := 0; w < 6; w++ {
		pair, abnormal := g.next()
		got, gotTotal, err := c.DecideWindow(pair, abnormal, testCfg)
		if err != nil {
			t.Fatalf("window %d: %v", w, err)
		}
		want, wantTotal := o.decide(t, pair, abnormal, testCfg)
		sameDecisions(t, got, want, wantTotal, gotTotal)
	}
	st := c.Stats()
	if st.Retries != 0 || st.Failures != 0 || st.BreakerOpens != 0 {
		t.Fatalf("clean run counted faults: %+v", st)
	}
	// 3 syncs + up to 3 decide slices per window; every exchange counted.
	if st.RoundTrips == 0 || st.BytesSent == 0 || st.BytesReceived == 0 {
		t.Fatalf("wire counters empty: %+v", st)
	}
	// Windows 2.. advance instead of init: servers must hold the last seq.
	for _, a := range addrs {
		if pn.servers[a].Seq() != 6 {
			t.Fatalf("server %s at seq %d, want 6", a, pn.servers[a].Seq())
		}
	}
}

func TestServerCrashResyncsViaInit(t *testing.T) {
	addrs := []string{"s0", "s1"}
	pn := newPipeNet(addrs...)
	c := testClient(t, pn, addrs, nil)
	g := newWindowGen(t, 200, 2, 5)
	o := &oracle{r: testCfg.R}
	step := func(w int) {
		pair, abnormal := g.next()
		got, gotTotal, err := c.DecideWindow(pair, abnormal, testCfg)
		if err != nil {
			t.Fatalf("window %d: %v", w, err)
		}
		want, wantTotal := o.decide(t, pair, abnormal, testCfg)
		sameDecisions(t, got, want, wantTotal, gotTotal)
	}
	step(0)
	step(1)
	// Crash s1: state lost, connections dropped. The next window's
	// advance hits a fresh server, which answers statusNeedInit; the
	// client re-seeds it with msgInit inside the same window — verdicts
	// never degrade.
	pn.crash("s1")
	step(2)
	if got := pn.servers["s1"].Seq(); got != 3 {
		t.Fatalf("restarted server at seq %d, want 3", got)
	}
	step(3)
}

func TestBreakerOpensFailsOverAndRejoins(t *testing.T) {
	addrs := []string{"s0", "s1"}
	pn := newPipeNet(addrs...)
	c := testClient(t, pn, addrs, func(cfg *Config) {
		cfg.MaxRetries = 1
		cfg.BreakerFails = 2
		cfg.BreakerCooldown = 2
	})
	g := newWindowGen(t, 200, 2, 9)
	o := &oracle{r: testCfg.R}
	decide := func(w int) ([]dist.Decision, dist.Stats, error) {
		pair, abnormal := g.next()
		got, gotTotal, err := c.DecideWindow(pair, abnormal, testCfg)
		want, wantTotal := o.decide(t, pair, abnormal, testCfg)
		if err == nil {
			sameDecisions(t, got, want, wantTotal, gotTotal)
		}
		return got, gotTotal, err
	}
	if _, _, err := decide(0); err != nil {
		t.Fatal(err)
	}

	pn.setRefuse("s1", true)
	// Two windows fail s1's requests past the retry budget and degrade;
	// the second opens the breaker (BreakerFails=2).
	for w := 1; w <= 2; w++ {
		if _, _, err := decide(w); !errors.Is(err, ErrUnavailable) {
			t.Fatalf("window %d: err = %v, want ErrUnavailable", w, err)
		}
	}
	st := c.Stats()
	if st.BreakerOpens != 1 {
		t.Fatalf("BreakerOpens = %d, want 1 (%+v)", st.BreakerOpens, st)
	}
	if st.Retries == 0 || st.Failures == 0 {
		t.Fatalf("retry/failure counters empty: %+v", st)
	}

	// Breaker open: the next window must succeed on s0 alone — failover
	// — without dialing s1 at all.
	dials := pn.dialCount("s1")
	if _, _, err := decide(3); err != nil {
		t.Fatalf("failover window: %v", err)
	}
	if pn.dialCount("s1") != dials {
		t.Fatal("open breaker still dialed the dead shard")
	}

	// Cooldown expires → half-open probe; still refused → re-open
	// without degrading the window.
	if _, _, err := decide(4); err != nil {
		t.Fatalf("half-open-probe window: %v", err)
	}
	if pn.dialCount("s1") == dials {
		t.Fatal("half-open breaker never probed")
	}
	if st := c.Stats(); st.Rejoins != 0 {
		t.Fatalf("Rejoins = %d before heal", st.Rejoins)
	}

	// Heal; after the cooldown the probe succeeds and the shard rejoins.
	pn.setRefuse("s1", false)
	for w := 5; w <= 7; w++ {
		if _, _, err := decide(w); err != nil {
			t.Fatalf("window %d after heal: %v", w, err)
		}
	}
	if st := c.Stats(); st.Rejoins != 1 {
		t.Fatalf("Rejoins = %d, want 1 (%+v)", st.Rejoins, st)
	}
}

func TestAllShardsDownDegradesWithoutWedging(t *testing.T) {
	addrs := []string{"s0"}
	pn := newPipeNet(addrs...)
	c := testClient(t, pn, addrs, func(cfg *Config) {
		cfg.MaxRetries = 1
		cfg.BreakerFails = 1
		cfg.BreakerCooldown = 1
	})
	g := newWindowGen(t, 100, 2, 3)
	pn.setRefuse("s0", true)
	for w := 0; w < 4; w++ {
		pair, abnormal := g.next()
		if _, _, err := c.DecideWindow(pair, abnormal, testCfg); !errors.Is(err, ErrUnavailable) {
			t.Fatalf("window %d: err = %v, want ErrUnavailable", w, err)
		}
	}
	// Recovery needs no operator action: heal, wait out the cooldown,
	// and the probe re-seeds the shard.
	pn.setRefuse("s0", false)
	o := &oracle{r: testCfg.R}
	for w := 0; w < 3; w++ {
		pair, abnormal := g.next()
		got, gotTotal, err := c.DecideWindow(pair, abnormal, testCfg)
		want, wantTotal := o.decide(t, pair, abnormal, testCfg)
		if err != nil {
			if w == 0 {
				continue // probe window may still be inside cooldown
			}
			t.Fatalf("window %d after heal: %v", w, err)
		}
		sameDecisions(t, got, want, wantTotal, gotTotal)
		o.dir = nil // oracle tracked only decided windows; rebuild next
	}
}

func TestServerErrorIsNotRetriedAndKeepsBreakerClosed(t *testing.T) {
	addrs := []string{"s0"}
	pn := newPipeNet(addrs...)
	c := testClient(t, pn, addrs, func(cfg *Config) { cfg.BreakerFails = 1 })
	g := newWindowGen(t, 100, 2, 7)
	pair, abnormal := g.next()
	// Out-of-population id: rejected client-side before any wire work.
	bad := append(append([]int(nil), abnormal...), 100+5)
	if _, _, err := c.DecideWindow(pair, bad, testCfg); !errors.Is(err, ErrConfig) {
		t.Fatalf("out-of-range id: err = %v, want ErrConfig", err)
	}
	// Invalid tau passes the client and hits the server's decide-path
	// validation: a deterministic statusErr — no retry, no breaker
	// charge, not a degradation signal.
	badCfg := testCfg
	badCfg.Tau = 0
	_, _, err := c.DecideWindow(pair, abnormal, badCfg)
	if err == nil || errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want a server application error", err)
	}
	st := c.Stats()
	if st.Retries != 0 || st.Failures != 0 || st.BreakerOpens != 0 {
		t.Fatalf("app error charged transport counters: %+v", st)
	}
	// The same client recovers on the next clean window.
	pair, abnormal = g.next()
	got, gotTotal, err := c.DecideWindow(pair, abnormal, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	o := &oracle{r: testCfg.R}
	want, wantTotal := o.decide(t, pair, abnormal, testCfg)
	sameDecisions(t, got, want, wantTotal, gotTotal)
}

func TestSingleDeviceOpsParity(t *testing.T) {
	addrs := []string{"s0"}
	pn := newPipeNet(addrs...)
	c := testClient(t, pn, addrs, nil)
	g := newWindowGen(t, 150, 2, 13)
	pair, abnormal := g.next()
	if _, _, err := c.DecideWindow(pair, abnormal, testCfg); err != nil {
		t.Fatal(err)
	}
	dir, err := dist.NewDirectory(pair, abnormal, testCfg.R)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range abnormal[:4] {
		view, vst, err := c.View(j)
		if err != nil {
			t.Fatalf("View(%d): %v", j, err)
		}
		wantView, wantSt, err := dir.View(j)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(view, wantView) || vst != wantSt {
			t.Fatalf("View(%d) = %v/%+v, want %v/%+v", j, view, vst, wantView, wantSt)
		}
		dec, err := c.Decide(j, testCfg)
		if err != nil {
			t.Fatalf("Decide(%d): %v", j, err)
		}
		wantRes, wantDSt, err := dist.Decide(dir, j, testCfg)
		if err != nil {
			t.Fatal(err)
		}
		wantRes.J, wantRes.L = nil, nil
		if !reflect.DeepEqual(dec, dist.Decision{Result: wantRes, Stats: wantDSt}) {
			t.Fatalf("Decide(%d) mismatch", j)
		}
	}
	// Unknown device surfaces the server's application error.
	if _, _, err := c.View(0); err == nil {
		if sliceContains(abnormal, 0) {
			t.Skip("0 happened to be abnormal")
		}
		t.Fatal("View(non-abnormal) succeeded")
	}
}

func sliceContains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func TestClientResetForcesReinit(t *testing.T) {
	addrs := []string{"s0"}
	pn := newPipeNet(addrs...)
	c := testClient(t, pn, addrs, nil)
	g := newWindowGen(t, 100, 2, 21)
	pair, abnormal := g.next()
	if _, _, err := c.DecideWindow(pair, abnormal, testCfg); err != nil {
		t.Fatal(err)
	}
	c.Reset()
	pair, abnormal = g.next()
	got, gotTotal, err := c.DecideWindow(pair, abnormal, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	o := &oracle{r: testCfg.R}
	want, wantTotal := o.decide(t, pair, abnormal, testCfg)
	sameDecisions(t, got, want, wantTotal, gotTotal)
}

func TestWindowCodecRoundTrip(t *testing.T) {
	w := windowMsg{
		seq: 42, prevSeq: 41, r: 0.07, n: 1000, d: 3,
		ids:   []int{3, 17, 999},
		prev:  []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9},
		cur:   []float64{0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1},
		moved: []int{17},
	}
	b := appendWindow(nil, msgAdvance, w)
	c := &cursor{b: b, off: 1}
	got, err := decodeWindow(c)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, w) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, w)
	}
	// Truncations at every prefix must error, never panic or hang.
	for cut := 1; cut < len(b); cut++ {
		tc := &cursor{b: b[:cut], off: 1}
		if _, err := decodeWindow(tc); err == nil {
			t.Fatalf("truncation at %d decoded cleanly", cut)
		}
	}
}

func TestDecisionCodecRoundTrip(t *testing.T) {
	dec := dist.Decision{
		Result: core.Result{
			Device: 17, Class: core.ClassMassive, Rule: core.RuleTheorem6,
			Dense: [][]int{{3, 17, 21}, {17, 40}},
			Cost:  core.Cost{MaximalMotions: 4, DenseMotions: 2, NeighborsScanned: 7, CollectionsTested: 123},
		},
		Stats: dist.Stats{Messages: 5, Trajectories: 9, ViewSize: 10},
	}
	b := appendDecision(nil, dec)
	c := &cursor{b: b}
	got := decodeDecision(c)
	if err := c.err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, dec) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, dec)
	}
	// Empty dense set decodes to nil, matching the in-process zero value.
	dec.Result.Dense = nil
	b = appendDecision(b[:0], dec)
	got = decodeDecision(&cursor{b: b})
	if got.Result.Dense != nil {
		t.Fatalf("empty dense decoded non-nil: %+v", got.Result.Dense)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewClient(Config{}); !errors.Is(err, ErrConfig) {
		t.Fatalf("no addrs: err = %v", err)
	}
	if _, err := NewClient(Config{Addrs: []string{"x"}, MaxRetries: -1}); !errors.Is(err, ErrConfig) {
		t.Fatalf("negative retries: err = %v", err)
	}
	if _, err := NewClient(Config{Addrs: []string{"x"}, BreakerFails: -1}); !errors.Is(err, ErrConfig) {
		t.Fatalf("negative breaker: err = %v", err)
	}
}

func TestUnsortedAbnormalRejected(t *testing.T) {
	addrs := []string{"s0"}
	pn := newPipeNet(addrs...)
	c := testClient(t, pn, addrs, nil)
	g := newWindowGen(t, 100, 2, 2)
	pair, _ := g.next()
	if _, _, err := c.DecideWindow(pair, []int{5, 3}, testCfg); !errors.Is(err, ErrConfig) {
		t.Fatalf("unsorted abnormal: err = %v, want ErrConfig", err)
	}
}

// TestServeOverTCP exercises the real listener path end to end.
func TestServeOverTCP(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer()
	go srv.Serve(l)
	defer l.Close()
	defer srv.Close()

	c, err := NewClient(Config{Addrs: []string{l.Addr().String()}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	g := newWindowGen(t, 120, 2, 17)
	o := &oracle{r: testCfg.R}
	for w := 0; w < 3; w++ {
		pair, abnormal := g.next()
		got, gotTotal, err := c.DecideWindow(pair, abnormal, testCfg)
		if err != nil {
			t.Fatalf("window %d: %v", w, err)
		}
		want, wantTotal := o.decide(t, pair, abnormal, testCfg)
		sameDecisions(t, got, want, wantTotal, gotTotal)
	}
}

// TestMovedStreamDrivesAdvance pins that steady-state windows go over
// the wire as msgAdvance with a moved list, not full re-inits: the
// servers' directories survive (their seq trails the client's without
// resets) and stay verdict-identical.
func TestMovedStreamDrivesAdvance(t *testing.T) {
	addrs := []string{"s0"}
	pn := newPipeNet(addrs...)
	c := testClient(t, pn, addrs, nil)
	g := newWindowGen(t, 250, 2, 29)
	o := &oracle{r: testCfg.R}
	var lastBytes int64
	for w := 0; w < 5; w++ {
		pair, abnormal := g.next()
		got, gotTotal, err := c.DecideWindow(pair, abnormal, testCfg)
		if err != nil {
			t.Fatalf("window %d: %v", w, err)
		}
		want, wantTotal := o.decide(t, pair, abnormal, testCfg)
		sameDecisions(t, got, want, wantTotal, gotTotal)
		lastBytes = c.Stats().BytesSent
	}
	if lastBytes == 0 {
		t.Fatal("no bytes sent")
	}
	if dials := pn.dialCount("s0"); dials != 1 {
		t.Fatalf("steady stream redialed %d times, want 1 persistent conn", dials)
	}
	if fmt.Sprint(pn.servers["s0"].Seq()) != "5" {
		t.Fatalf("server seq %d, want 5", pn.servers["s0"].Seq())
	}
}
