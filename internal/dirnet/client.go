package dirnet

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"anomalia/internal/core"
	"anomalia/internal/dist"
	"anomalia/internal/motion"
	"anomalia/internal/stats"
)

// breaker states of one shard.
type breakerState uint8

const (
	brClosed breakerState = iota
	brOpen
	brHalfOpen
)

// shard is the client's view of one directory server.
type shard struct {
	addr string
	conn net.Conn
	rd   *bufio.Reader
	// seq is the window the server last confirmed holding for this
	// client (0 = unsynced). It only predicts msgAdvance eligibility —
	// a restarted server corrects it via statusNeedInit.
	seq uint64
	// Circuit breaker: fails counts consecutive transport failures
	// while closed; cooldown counts the abnormal windows left before an
	// open breaker half-opens with a single probe.
	state    breakerState
	fails    int
	cooldown int
}

// Client drives a fleet of directory shard servers from the Monitor's
// decision path. Every shard hosts a full directory replica; each
// abnormal window the client syncs the reachable shards (msgAdvance
// when the shard holds the previous window, msgInit otherwise),
// partitions the sorted abnormal set contiguously across them, and
// merges their decision slices in device order — so the output is
// byte-identical to dist.DecideAll however many shards participate,
// and a breaker-open shard's slice fails over to the survivors.
//
// Failure semantics: a request retries up to MaxRetries times with
// exponential backoff and full jitter; a request that exhausts its
// budget counts one breaker failure, and BreakerFails consecutive
// failures open the shard's breaker for BreakerCooldown abnormal
// windows, after which one half-open probe (an Init carrying the
// current window) decides rejoin vs re-open. If any required shard
// fails past its budget the whole window returns ErrUnavailable and
// the caller degrades to centralized characterization — verdicts
// unchanged, one DirStats degradation counted.
//
// Client is not safe for concurrent use (neither is the Monitor that
// owns it).
type Client struct {
	cfg    Config
	shards []*shard
	window uint64 // monotone per-DecideWindow counter (wire seq)
	// lastGood is the seq of the last window every decision was served
	// from, and lastRows the prev-rows shipped for it (id → row copy) —
	// the baseline the next window's moved stream is diffed against.
	lastGood uint64
	lastRows map[int][]float64
	rng      *stats.RNG
	// st accumulates the lifetime wire counters; stMu guards it so a
	// stats snapshot (Monitor.DirStats, a metrics scrape) can run on
	// another goroutine while a window is in flight. Everything else on
	// the client keeps the single-caller contract.
	stMu sync.Mutex
	st   Stats
	enc  []byte // request scratch
	in   []byte // response scratch
}

// NewClient validates the configuration, applies defaults, and returns
// a client. No connection is opened until the first window.
func NewClient(cfg Config) (*Client, error) {
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("no directory addresses: %w", ErrConfig)
	}
	if cfg.MaxRetries < 0 || cfg.BreakerFails < 0 || cfg.BreakerCooldown < 0 {
		return nil, fmt.Errorf("negative retry/breaker budget: %w", ErrConfig)
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = DefaultDialTimeout
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = DefaultMaxRetries
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = DefaultBackoffBase
	}
	if cfg.BackoffCap <= 0 {
		cfg.BackoffCap = DefaultBackoffCap
	}
	if cfg.BreakerFails == 0 {
		cfg.BreakerFails = DefaultBreakerFails
	}
	if cfg.BreakerCooldown == 0 {
		cfg.BreakerCooldown = DefaultBreakerCooldown
	}
	if cfg.Dial == nil {
		timeout := cfg.DialTimeout
		cfg.Dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	c := &Client{
		cfg:      cfg,
		shards:   make([]*shard, len(cfg.Addrs)),
		lastRows: make(map[int][]float64),
		rng:      stats.NewRNG(cfg.Seed),
	}
	for i, addr := range cfg.Addrs {
		c.shards[i] = &shard{addr: addr}
	}
	return c, nil
}

// Stats returns the lifetime wire counters. Safe to call from any
// goroutine, including concurrently with an in-flight window.
func (c *Client) Stats() Stats {
	c.stMu.Lock()
	defer c.stMu.Unlock()
	return c.st
}

// count applies one mutation to the wire counters under the stats
// lock — the only way request paths touch c.st.
func (c *Client) count(f func(*Stats)) {
	c.stMu.Lock()
	f(&c.st)
	c.stMu.Unlock()
}

// Close drops every connection. The client stays usable — the next
// window redials.
func (c *Client) Close() {
	for _, s := range c.shards {
		c.dropConn(s)
	}
}

// Reset closes connections and forgets every shard's sync state and
// breaker, keeping the lifetime Stats — the Monitor.Reset contract.
func (c *Client) Reset() {
	c.Close()
	for _, s := range c.shards {
		s.seq = 0
		s.state = brClosed
		s.fails = 0
		s.cooldown = 0
	}
	c.window = 0
	c.lastGood = 0
	clear(c.lastRows)
}

func (c *Client) dropConn(s *shard) {
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
		s.rd = nil
	}
}

// DecideWindow decides one abnormal window over the wire: pair is the
// full-population state pair, abnormal the sorted abnormal set, cfg
// the characterization config. On success the decisions come back in
// device order with the summed billed Stats, exactly what
// dist.DecideAll returns in-process. On ErrUnavailable no usable
// decision set exists and the caller must fall back centralized; the
// reachable shards keep whatever sync they reached and recover on
// later windows without operator action.
func (c *Client) DecideWindow(pair *motion.Pair, abnormal []int, cfg core.Config) ([]dist.Decision, dist.Stats, error) {
	for i, id := range abnormal {
		if i > 0 && id <= abnormal[i-1] {
			return nil, dist.Stats{}, fmt.Errorf("abnormal set not sorted: %w", ErrConfig)
		}
		if id < 0 || id >= pair.N() {
			return nil, dist.Stats{}, fmt.Errorf("abnormal device %d outside population of %d: %w", id, pair.N(), ErrConfig)
		}
	}
	c.window++
	seq := c.window

	participants := c.rotation()
	if len(participants) == 0 {
		return nil, dist.Stats{}, fmt.Errorf("all %d shard breakers open: %w", len(c.shards), ErrUnavailable)
	}

	// Encode the window once; msgInit and msgAdvance share the body and
	// the server ignores the advance-only fields on init.
	w := c.windowMsg(seq, pair, abnormal, cfg.R)
	c.enc = appendWindow(c.enc[:0], msgAdvance, w)
	body := c.enc

	// Half-open probes first: one Init attempt each, no retries. A
	// probe that succeeds rejoins the rotation for this very window; a
	// probe that fails re-opens without degrading the window.
	synced := participants[:0]
	for _, s := range participants {
		if s.state == brHalfOpen {
			if c.syncShard(s, w, body, true) != nil {
				continue
			}
			c.count(func(st *Stats) { st.Rejoins++ })
			s.state = brClosed
			s.fails = 0
			synced = append(synced, s)
			continue
		}
		if err := c.syncShard(s, w, body, false); err != nil {
			if isAppError(err) {
				// Deterministic application rejection (e.g. a malformed
				// abnormal set): retrying or failing over cannot fix it, and
				// it says nothing about the shard's health. Degrade the
				// window; the shard resyncs naturally via seq mismatch.
				return nil, dist.Stats{}, err
			}
			return nil, dist.Stats{}, fmt.Errorf("shard %s: %w: %w", s.addr, ErrUnavailable, err)
		}
		synced = append(synced, s)
	}
	if len(synced) == 0 {
		return nil, dist.Stats{}, fmt.Errorf("no shard survived its half-open probe: %w", ErrUnavailable)
	}

	// Partition the sorted abnormal positions contiguously across the
	// synced shards; merged in shard order the decisions land in device
	// order, matching dist.DecideAll.
	out := make([]dist.Decision, 0, len(abnormal))
	var total dist.Stats
	m := len(abnormal)
	base, rem := m/len(synced), m%len(synced)
	from := 0
	for i, s := range synced {
		size := base
		if i < rem {
			size++
		}
		if size == 0 {
			continue
		}
		to := from + size
		decs, err := c.decideRange(s, seq, cfg, from, to)
		if err != nil {
			if isAppError(err) {
				return nil, dist.Stats{}, err
			}
			return nil, dist.Stats{}, fmt.Errorf("shard %s: %w: %w", s.addr, ErrUnavailable, err)
		}
		for _, dec := range decs {
			total.Add(dec.Stats)
		}
		out = append(out, decs...)
		from = to
	}

	// The whole window succeeded: it becomes the moved-diff baseline.
	c.lastGood = seq
	clear(c.lastRows)
	d := pair.Dim()
	for i, id := range abnormal {
		row := make([]float64, d)
		copy(row, w.prev[i*d:(i+1)*d])
		c.lastRows[id] = row
	}
	return out, total, nil
}

// rotation advances every breaker by one window and returns the shards
// allowed to serve it: closed ones plus open ones whose cooldown just
// expired (now half-open).
func (c *Client) rotation() []*shard {
	avail := make([]*shard, 0, len(c.shards))
	for _, s := range c.shards {
		if s.state == brOpen {
			if s.cooldown--; s.cooldown > 0 {
				continue
			}
			s.state = brHalfOpen
		}
		avail = append(avail, s)
	}
	return avail
}

// windowMsg assembles the wire window: the abnormal devices' rows in
// id order and the moved stream — the retained ids whose k-1 position
// changed since the last good window (exact float64-bit diff; an
// honest superset is allowed by the Advance contract, and a fresh id
// is covered by the abnormal-set diff server-side).
func (c *Client) windowMsg(seq uint64, pair *motion.Pair, abnormal []int, r float64) windowMsg {
	d := pair.Dim()
	w := windowMsg{
		seq:     seq,
		prevSeq: c.lastGood,
		r:       r,
		n:       pair.N(),
		d:       d,
		ids:     abnormal,
		prev:    make([]float64, len(abnormal)*d),
		cur:     make([]float64, len(abnormal)*d),
	}
	for i, id := range abnormal {
		copy(w.prev[i*d:(i+1)*d], pair.Prev.At(id))
		copy(w.cur[i*d:(i+1)*d], pair.Cur.At(id))
		if old, ok := c.lastRows[id]; ok {
			row := w.prev[i*d : (i+1)*d]
			for k := range row {
				if row[k] != old[k] {
					w.moved = append(w.moved, id)
					break
				}
			}
		}
	}
	return w
}

// syncShard brings one shard to the window: msgAdvance when the shard
// is believed to hold the baseline window, msgInit otherwise, falling
// back to msgInit when the server answers statusNeedInit (restart or
// missed windows). body is the pre-encoded msgAdvance frame — the two
// messages share the layout, so init just flips the type byte.
// probe=true is the half-open path: msgInit, single attempt.
func (c *Client) syncShard(s *shard, w windowMsg, body []byte, probe bool) error {
	canAdvance := !probe && c.lastGood > 0 && s.seq == c.lastGood
	body[0] = msgInit
	if canAdvance {
		body[0] = msgAdvance
	}
	attempts := 1 + c.cfg.MaxRetries
	if probe {
		attempts = 1
	}
	resp, err := c.request(s, body, attempts)
	if err == errNeedInit && canAdvance {
		body[0] = msgInit
		resp, err = c.request(s, body, attempts)
	}
	if err != nil {
		if !isAppError(err) {
			c.noteFailure(s)
		}
		return err
	}
	_ = resp
	s.fails = 0
	s.seq = w.seq
	return nil
}

// decideRange fetches the decisions for positions [from, to) of the
// window's sorted abnormal set from one synced shard.
func (c *Client) decideRange(s *shard, seq uint64, cfg core.Config, from, to int) ([]dist.Decision, error) {
	c.enc = appendDecideAll(c.enc[:0], seq, cfg, from, to)
	resp, err := c.request(s, c.enc, 1+c.cfg.MaxRetries)
	if err != nil {
		if err == errNeedInit {
			// The server lost the window between sync and decide (crash in
			// the gap). Re-syncing would hand back a torn window; degrade
			// and let the next window rebuild.
			s.seq = 0
			err = fmt.Errorf("window lost between sync and decide: %w", errNeedInit)
		}
		if !isAppError(err) {
			c.noteFailure(s)
		}
		return nil, err
	}
	cur := &cursor{b: resp}
	count := cur.count(1)
	decs := make([]dist.Decision, 0, count)
	for i := 0; i < count && !cur.bad; i++ {
		decs = append(decs, decodeDecision(cur))
	}
	if err := cur.err(); err != nil {
		c.noteFailure(s)
		return nil, err
	}
	if len(decs) != to-from {
		c.noteFailure(s)
		return nil, fmt.Errorf("dirnet: %d decisions for range [%d, %d)", len(decs), from, to)
	}
	s.fails = 0
	return decs, nil
}

// View fetches one device's raw 4r view from the first synced shard —
// the single-device read path (parity and debugging; the Monitor's
// window flow goes through DecideWindow).
func (c *Client) View(device int) ([]int, dist.Stats, error) {
	s := c.syncedShard()
	if s == nil {
		return nil, dist.Stats{}, fmt.Errorf("no synced shard: %w", ErrUnavailable)
	}
	c.enc = appendDecide(c.enc[:0], msgView, c.lastGood, core.Config{}, device)
	resp, err := c.request(s, c.enc, 1+c.cfg.MaxRetries)
	if err != nil {
		return nil, dist.Stats{}, err
	}
	cur := &cursor{b: resp}
	st := dist.Stats{
		Messages:     int(cur.u32()),
		Trajectories: int(cur.u32()),
		ViewSize:     int(cur.u32()),
	}
	view := cur.ids(cur.count(4))
	if err := cur.err(); err != nil {
		return nil, dist.Stats{}, err
	}
	return view, st, nil
}

// Decide fetches one device's decision from the first synced shard.
func (c *Client) Decide(device int, cfg core.Config) (dist.Decision, error) {
	s := c.syncedShard()
	if s == nil {
		return dist.Decision{}, fmt.Errorf("no synced shard: %w", ErrUnavailable)
	}
	c.enc = appendDecide(c.enc[:0], msgDecide, c.lastGood, cfg, device)
	resp, err := c.request(s, c.enc, 1+c.cfg.MaxRetries)
	if err != nil {
		return dist.Decision{}, err
	}
	cur := &cursor{b: resp}
	dec := decodeDecision(cur)
	if err := cur.err(); err != nil {
		return dist.Decision{}, err
	}
	return dec, nil
}

func (c *Client) syncedShard() *shard {
	if c.lastGood == 0 {
		return nil
	}
	for _, s := range c.shards {
		if s.state == brClosed && s.seq == c.lastGood {
			return s
		}
	}
	return nil
}

// noteFailure charges one breaker failure to the shard, opening it at
// the threshold.
func (c *Client) noteFailure(s *shard) {
	s.fails++
	if s.state == brHalfOpen || (s.state == brClosed && s.fails >= c.cfg.BreakerFails) {
		s.state = brOpen
		s.cooldown = c.cfg.BreakerCooldown
		s.fails = 0
		c.count(func(st *Stats) { st.BreakerOpens++ })
	}
}

// isAppError reports whether the error is a deterministic application
// response (a decoded statusErr) rather than a transport fault:
// retries cannot fix it and it says nothing about shard health.
func isAppError(err error) bool {
	var se *serverError
	return errors.As(err, &se)
}

// request performs one request with bounded retries: each attempt
// (re)dials if needed, arms the per-request deadline, writes the
// frame, and reads the response; a transport fault drops the
// connection and backs off with full jitter before the next attempt.
// statusNeedInit and statusErr responses return immediately — they are
// answers, not faults.
func (c *Client) request(s *shard, payload []byte, attempts int) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			c.count(func(st *Stats) { st.Retries++ })
			c.cfg.Sleep(c.backoff(attempt))
		}
		body, err := c.attempt(s, payload)
		if err == nil || err == errNeedInit || isAppError(err) {
			return body, err
		}
		lastErr = err
	}
	c.count(func(st *Stats) { st.Failures++ })
	return nil, lastErr
}

// backoff returns the full-jitter sleep before retry attempt i (1-based).
func (c *Client) backoff(attempt int) time.Duration {
	limit := c.cfg.BackoffBase << (attempt - 1)
	if limit > c.cfg.BackoffCap || limit <= 0 {
		limit = c.cfg.BackoffCap
	}
	return time.Duration(c.rng.Float64() * float64(limit))
}

// attempt performs one wire exchange.
func (c *Client) attempt(s *shard, payload []byte) ([]byte, error) {
	if s.conn == nil {
		conn, err := c.cfg.Dial(s.addr)
		if err != nil {
			return nil, err
		}
		s.conn = conn
		s.rd = bufio.NewReaderSize(conn, 1<<16)
	}
	s.conn.SetDeadline(time.Now().Add(c.cfg.RequestTimeout))
	sent, err := writeFrame(s.conn, payload)
	if err != nil {
		c.dropConn(s)
		return nil, err
	}
	c.count(func(st *Stats) { st.BytesSent += int64(sent) })
	resp, rcvd, err := readFrame(s.rd, c.in)
	c.in = resp
	if err != nil {
		// The response (if it ever lands) would desynchronize the stream;
		// the conn is dead to us either way.
		c.dropConn(s)
		return nil, err
	}
	c.count(func(st *Stats) {
		st.BytesReceived += int64(rcvd)
		st.RoundTrips++
	})
	body, err := decodeStatus(resp)
	if err != nil && err != errNeedInit && !isAppError(err) {
		// Malformed response: treat as transport fault.
		c.dropConn(s)
	}
	return body, err
}
