// Package dirnet puts the distributed directory of internal/dist on a
// real wire: a Server hosts one directory replica behind a
// length-prefixed binary protocol (the framing conventions of
// internal/snapio), and a Client drives a fleet of such servers from
// the Monitor's decision path — per-request deadlines, bounded retries
// with exponential backoff and full jitter, and a per-shard circuit
// breaker, so a slow or dead shard never wedges a tick.
//
// # Protocol
//
// Every frame is `uint32 length | payload`, little-endian, with the
// payload's first byte naming the message; lengths are capped at
// MaxFrame so a corrupt prefix cannot demand an unbounded allocation.
// Requests:
//
//	msgInit      seq, prevSeq(ignored), r, n, d, m, ids, prev rows,
//	             cur rows, moved(ignored) — (re)build the directory
//	             from this window's abnormal trajectories
//	msgAdvance   same body; valid only when the server holds window
//	             prevSeq — patches the retained index with the
//	             abnormal-set diff plus the moved stream (the sorted
//	             ids whose k-1 position changed since prevSeq), the
//	             incremental-update wire format Advance models
//	msgDecideAll seq, core config, [from, to) positions into the
//	             window's sorted abnormal set — the shard's slice of
//	             the fleet's decisions
//	msgDecide    seq, core config, one device id
//	msgView      seq, one device id — the raw 4r view plus its bill
//
// Responses: statusOK followed by the result, statusNeedInit when the
// server does not hold the window the request assumes (fresh start,
// crash restart, or a missed window — the client falls back to
// msgInit), or statusErr carrying the error text (an application
// error: deterministic, never retried).
//
// Trajectories ship sparsely: only the m abnormal devices' rows cross
// the wire, and the server rebuilds n-row states with every other row
// zero — sound because every path from a directory window to a verdict
// (grid index, 4r views, core characterization) reads abnormal rows
// only. Rows must already lie in the unit cube (the Monitor clamps on
// ingest), so the reconstruction is bit-exact and networked verdicts
// match the in-process directory's byte for byte.
//
// The decision results carried back (class, rule, dense motions,
// costs, traffic stats) are exactly the fields an Outcome is built
// from; the core diagnostic J/L neighbourhood split stays server-side.
package dirnet

import (
	"errors"
	"net"
	"time"
)

// ErrConfig is returned for invalid client or server configuration.
var ErrConfig = errors.New("dirnet: invalid configuration")

// ErrUnavailable is returned by Client.DecideWindow when the window
// could not be decided over the wire — a required shard stayed
// unreachable past its retry budget, or every shard's breaker is open.
// The Monitor treats it as a degradation signal, not a failure: the
// window falls back to centralized characterization.
var ErrUnavailable = errors.New("dirnet: directory unavailable")

// errNeedInit is the internal resync signal decoded from
// statusNeedInit.
var errNeedInit = errors.New("dirnet: server needs init")

// Defaults applied by NewClient when the corresponding Config field is
// zero.
const (
	DefaultDialTimeout     = time.Second
	DefaultRequestTimeout  = 2 * time.Second
	DefaultMaxRetries      = 2
	DefaultBackoffBase     = 5 * time.Millisecond
	DefaultBackoffCap      = 100 * time.Millisecond
	DefaultBreakerFails    = 3
	DefaultBreakerCooldown = 2
)

// Config configures a Client.
type Config struct {
	// Addrs lists the directory shard servers. Every address hosts a
	// full directory replica; the fleet's decisions are partitioned
	// contiguously across the shards whose breakers are closed, so a
	// breaker-open shard's slice fails over to the survivors.
	Addrs []string
	// Dial opens a connection to one shard; nil means TCP with
	// DialTimeout. Tests and simulations inject in-process pipes and
	// fault models here.
	Dial func(addr string) (net.Conn, error)
	// DialTimeout bounds the default TCP dial.
	DialTimeout time.Duration
	// RequestTimeout is the per-request deadline covering the write of
	// the request and the read of its response.
	RequestTimeout time.Duration
	// MaxRetries bounds the retransmissions after a failed attempt, so
	// a request costs at most 1+MaxRetries round-trip budgets.
	MaxRetries int
	// BackoffBase and BackoffCap shape the retry backoff: attempt i
	// sleeps uniform[0, min(BackoffCap, BackoffBase·2^(i-1))) — full
	// jitter, so synchronized retry storms decorrelate.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// BreakerFails is N in the breaker's closed → open transition:
	// consecutive transport failures before the shard is taken out of
	// rotation.
	BreakerFails int
	// BreakerCooldown is how many abnormal windows an open breaker
	// waits before half-opening with a single probe — counted in
	// windows, not wall time, so runs are deterministic.
	BreakerCooldown int
	// Seed drives the backoff jitter.
	Seed int64
	// Sleep replaces time.Sleep between retries (tests). nil = real.
	Sleep func(time.Duration)
}

// Stats counts the client's lifetime wire activity — the measured
// counterpart of the billed message economy in dist.Stats, surfaced
// through Monitor.DirStats and the DistCost wire columns.
type Stats struct {
	// BytesSent and BytesReceived count frame bytes, prefix included.
	BytesSent     int64
	BytesReceived int64
	// RoundTrips counts completed request/response exchanges.
	RoundTrips int64
	// Retries counts retransmission attempts after a failed attempt.
	Retries int64
	// Failures counts requests abandoned after the retry budget.
	Failures int64
	// BreakerOpens counts closed → open breaker transitions;
	// Rejoins counts half-open probes that closed the breaker again.
	BreakerOpens int64
	Rejoins      int64
}
