package scenario

import (
	"testing"

	"anomalia/internal/sets"
)

func concomitantConfig() Config {
	return Config{
		N: 800, D: 2, R: 0.03, Tau: 3, A: 40, G: 0.3,
		Concomitant: true, MaxShift: 0.06, Seed: 21,
	}
}

// TestConcomitantAllowsReHits: with errors applied sequentially, a device
// can be struck by several errors; the abnormal set is then smaller than
// the sum of event sizes, and ImpactOf records the last striker.
func TestConcomitantAllowsReHits(t *testing.T) {
	t.Parallel()

	gen, err := New(concomitantConfig())
	if err != nil {
		t.Fatal(err)
	}
	sawReHit := false
	for w := 0; w < 10 && !sawReHit; w++ {
		step, err := gen.Step()
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, ev := range step.Events {
			total += len(ev.Impacted)
		}
		if total > len(step.Abnormal) {
			sawReHit = true
			// ImpactOf must point at the latest event containing each
			// device.
			for dev, idx := range step.ImpactOf {
				if !sets.ContainsInt(step.Events[idx].Impacted, dev) {
					t.Fatalf("ImpactOf[%d] = %d but event does not contain it", dev, idx)
				}
				for later := idx + 1; later < len(step.Events); later++ {
					if sets.ContainsInt(step.Events[later].Impacted, dev) {
						t.Fatalf("device %d hit by later event %d than recorded %d", dev, later, idx)
					}
				}
			}
		}
	}
	if !sawReHit {
		t.Error("40 concomitant errors on 800 devices never re-hit anyone; suspicious")
	}
}

// TestConcomitantBoundedShift: with MaxShift set, every event's
// displacement stays within the bound per coordinate.
func TestConcomitantBoundedShift(t *testing.T) {
	t.Parallel()

	cfg := concomitantConfig()
	gen, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 5; w++ {
		step, err := gen.Step()
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range step.Events {
			for _, d := range ev.Delta {
				if d > cfg.MaxShift+1e-12 || d < -cfg.MaxShift-1e-12 {
					t.Fatalf("event %d delta %v exceeds MaxShift %v", ev.ID, ev.Delta, cfg.MaxShift)
				}
			}
		}
	}
}

// TestConcomitantDeterminism: the concomitant mode is reproducible.
func TestConcomitantDeterminism(t *testing.T) {
	t.Parallel()

	g1, err := New(concomitantConfig())
	if err != nil {
		t.Fatal(err)
	}
	g2, err := New(concomitantConfig())
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 3; w++ {
		s1, err := g1.Step()
		if err != nil {
			t.Fatal(err)
		}
		s2, err := g2.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !sets.EqualInts(s1.Abnormal, s2.Abnormal) {
			t.Fatalf("window %d: abnormal sets differ", w)
		}
	}
}

// TestConcomitantStaysInCube: sequential moves never escape the QoS
// space.
func TestConcomitantStaysInCube(t *testing.T) {
	t.Parallel()

	cfg := concomitantConfig()
	cfg.A = 80
	gen, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 5; w++ {
		step, err := gen.Step()
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < cfg.N; j++ {
			if !step.Pair.Cur.At(j).InUnitCube() {
				t.Fatalf("device %d escaped the cube: %v", j, step.Pair.Cur.At(j))
			}
		}
	}
}

// TestMaxShiftValidation: out-of-range MaxShift is rejected.
func TestMaxShiftValidation(t *testing.T) {
	t.Parallel()

	cfg := concomitantConfig()
	cfg.MaxShift = -0.1
	if _, err := New(cfg); err == nil {
		t.Error("negative MaxShift must error")
	}
	cfg.MaxShift = 1.5
	if _, err := New(cfg); err == nil {
		t.Error("MaxShift > 1 must error")
	}
}
