// Package scenario implements the Monte-Carlo workload generator of
// Section VII-A: devices start uniformly distributed in the QoS space;
// each observation window injects A errors, each hitting a group of
// devices drawn from a ball of radius r (isolated errors hit at most τ
// devices, massive ones more) and displacing the whole group coherently to
// a uniformly chosen target, in accordance with restriction R2.
//
// A configuration switch reproduces the paper's two regimes: with
// EnforceR3 the generator resamples isolated-error targets until the
// moved group cannot coalesce with other abnormal devices (restriction R3
// holds, Figures 6/7 and Tables II/III); without it coincidental merges
// are allowed (Figures 8/9).
package scenario

import (
	"errors"
	"fmt"
	"sort"

	"anomalia/internal/grid"
	"anomalia/internal/motion"
	"anomalia/internal/space"
	"anomalia/internal/stats"
)

// ErrConfig is returned for invalid generator configurations.
var ErrConfig = errors.New("scenario: invalid configuration")

// Config parameterizes the generator. The paper's evaluation uses
// N=1000, D=2, R=0.03, Tau=3, A in [1,80], G in {0,0.3,0.5,0.7,1}.
type Config struct {
	// N is the number of monitored devices.
	N int
	// D is the number of services (QoS space dimension).
	D int
	// R is the consistency impact radius; error groups are drawn from
	// balls of radius R so that impacted groups are r-consistent.
	R float64
	// Tau is the density threshold.
	Tau int
	// A is the number of errors injected per observation window.
	A int
	// G is the probability that an injected error is isolated.
	G float64
	// EnforceR3 resamples isolated-error targets so that isolated groups
	// cannot merge with other abnormal devices (restriction R3).
	EnforceR3 bool
	// MaxRetries bounds R3 resampling per error (default 64).
	MaxRetries int
	// Concomitant applies the A errors sequentially to the evolving state
	// between the two snapshots: error balls are drawn from intermediate
	// positions and a device can be hit several times (violating R1, the
	// "temporally close errors" the paper blames for unresolved
	// configurations). When false, every error draws from S_{k-1} and
	// devices are hit at most once.
	Concomitant bool
	// MaxShift bounds the per-error displacement magnitude (uniform norm)
	// when positive; 0 moves groups to targets drawn uniformly in E.
	// Bounded shifts keep temporally close errors spatially close, which
	// is what makes their motions interleave.
	MaxShift float64
	// Seed drives all randomness; equal seeds give equal runs.
	Seed int64
}

func (c Config) validate() error {
	if c.N < 2 {
		return fmt.Errorf("n = %d: %w", c.N, ErrConfig)
	}
	if c.D < space.MinDim || c.D > space.MaxDim {
		return fmt.Errorf("d = %d: %w", c.D, ErrConfig)
	}
	if err := motion.ValidateRadius(c.R); err != nil {
		return err
	}
	if c.Tau < 1 || c.Tau >= c.N {
		return fmt.Errorf("tau = %d: %w", c.Tau, ErrConfig)
	}
	if c.A < 1 {
		return fmt.Errorf("A = %d errors: %w", c.A, ErrConfig)
	}
	if c.G < 0 || c.G > 1 {
		return fmt.Errorf("G = %v: %w", c.G, ErrConfig)
	}
	if c.MaxShift < 0 || c.MaxShift > 1 {
		return fmt.Errorf("MaxShift = %v: %w", c.MaxShift, ErrConfig)
	}
	return nil
}

// Event is one injected error and its ground truth.
type Event struct {
	// ID numbers events within a step.
	ID int
	// Impacted lists the devices hit, sorted.
	Impacted []int
	// Isolated is the ground-truth class: true iff |Impacted| <= τ.
	Isolated bool
	// WantedMassive records the generator's intent; a massive error can
	// degenerate to isolated when the anchor's ball holds too few devices.
	WantedMassive bool
	// Delta is the displacement applied to every impacted device.
	Delta []float64
}

// Step is one observation window [k-1, k] with its ground truth.
type Step struct {
	// Pair holds S_{k-1} and S_k.
	Pair *motion.Pair
	// Abnormal is A_k, sorted.
	Abnormal []int
	// Events are the injected errors.
	Events []Event
	// ImpactOf maps device id to the index (into Events) that hit it.
	ImpactOf map[int]int
	// R3Failures counts isolated errors for which R3 resampling exhausted
	// its retries (only possible with EnforceR3).
	R3Failures int
}

// TruthIsolated reports the ground-truth class of an abnormal device.
func (s *Step) TruthIsolated(device int) (bool, bool) {
	idx, ok := s.ImpactOf[device]
	if !ok {
		return false, false
	}
	return s.Events[idx].Isolated, true
}

// Generator produces successive observation windows.
type Generator struct {
	cfg Config
	rng *stats.RNG
	cur *space.State
	ids []int // 0..N-1, the index domain of the per-window spatial grid
}

// New seeds a generator with a uniform initial distribution S_0.
func New(cfg Config) (*Generator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 64
	}
	st, err := space.NewState(cfg.N, cfg.D)
	if err != nil {
		return nil, err
	}
	g := &Generator{cfg: cfg, rng: stats.NewRNG(cfg.Seed), cur: st, ids: make([]int, cfg.N)}
	for i := range g.ids {
		g.ids[i] = i
	}
	g.cur.Uniform(g.rng.Float64)
	return g, nil
}

// Step advances one observation window and returns it with ground truth.
func (g *Generator) Step() (*Step, error) {
	cfg := g.cfg
	prev := g.cur.Clone()
	// In the default (R1-respecting) mode every error draws its ball from
	// the snapshot S_{k-1}; in concomitant mode each error sees the state
	// left by the previous one.
	idx := grid.New(prev, g.ids, grid.ForSide(cfg.R))

	step := &Step{ImpactOf: make(map[int]int)}
	impacted := make(map[int]bool, cfg.A*(cfg.Tau+1))

	for e := 0; e < cfg.A; e++ {
		ref := prev
		if cfg.Concomitant {
			ref = g.cur
			idx = grid.New(ref, g.ids, grid.ForSide(cfg.R))
		}
		isolated := g.rng.Bernoulli(cfg.G)
		var anchor int
		var free []int
		// Candidates: devices within the R-ball of the anchor in the
		// reference state. Pairwise uniform-norm distance is then <= 2R,
		// so the group is r-consistent before the move (restriction R2).
		// Massive errors re-draw the anchor a few times looking for a ball
		// populous enough to actually hit more than τ devices.
		ok := false
		for attempt := 0; attempt < 32; attempt++ {
			a, alive := g.pickAnchor(impacted)
			if !alive {
				break
			}
			cands := idx.Within(ref.At(a), cfg.R, nil)
			f := make([]int, 0, len(cands))
			for _, c := range cands {
				if cfg.Concomitant || !impacted[c] {
					f = append(f, c)
				}
			}
			if len(f) == 0 {
				continue
			}
			if !ok || len(f) > len(free) {
				anchor, free, ok = a, f, true
			}
			if isolated || len(free) > cfg.Tau {
				break
			}
		}
		if !ok {
			break // the whole population is already impacted
		}
		group := g.pickGroup(anchor, free, isolated)
		ev := Event{
			ID:            e,
			Impacted:      group,
			WantedMassive: !isolated,
			Isolated:      len(group) <= cfg.Tau,
		}

		delta, r3Failed := g.pickDelta(ref, group, ev.Isolated, impacted)
		if r3Failed {
			step.R3Failures++
		}
		ev.Delta = delta
		for _, j := range group {
			p, err := space.Add(ref.At(j), delta)
			if err != nil {
				return nil, err
			}
			if err := g.cur.Set(j, p); err != nil {
				return nil, err
			}
			impacted[j] = true
			step.ImpactOf[j] = e
		}
		sort.Ints(ev.Impacted)
		step.Events = append(step.Events, ev)
	}

	for j := range impacted {
		step.Abnormal = append(step.Abnormal, j)
	}
	sort.Ints(step.Abnormal)

	pair, err := motion.NewPair(prev, g.cur.Clone())
	if err != nil {
		return nil, err
	}
	step.Pair = pair
	return step, nil
}

// pickAnchor draws an error anchor. In concomitant mode any device
// qualifies (re-hits model temporally close errors); otherwise it rejects
// already-impacted devices, giving up once the population looks exhausted.
func (g *Generator) pickAnchor(impacted map[int]bool) (int, bool) {
	if g.cfg.Concomitant {
		return g.rng.Intn(g.cfg.N), true
	}
	for try := 0; try < 16*g.cfg.N; try++ {
		j := g.rng.Intn(g.cfg.N)
		if !impacted[j] {
			return j, true
		}
	}
	return 0, false
}

// pickGroup selects the impacted set for one error: always the anchor,
// plus t-1 ball mates. Isolated errors draw t in [1, τ]; massive errors
// draw t in [τ+1, |ball|], degenerating to the whole ball when it is too
// small.
func (g *Generator) pickGroup(anchor int, free []int, isolated bool) []int {
	others := make([]int, 0, len(free))
	for _, c := range free {
		if c != anchor {
			others = append(others, c)
		}
	}
	var t int
	switch {
	case isolated:
		max := g.cfg.Tau
		if max > len(others)+1 {
			max = len(others) + 1
		}
		t = g.rng.IntRange(1, max)
	case len(others)+1 > g.cfg.Tau+1:
		t = g.rng.IntRange(g.cfg.Tau+1, len(others)+1)
	default:
		t = len(others) + 1 // degenerate massive: whole ball
	}
	group := append([]int{anchor}, g.rng.Sample(others, t-1)...)
	return group
}

// pickDelta draws the coherent displacement for a group, keeping every
// member inside the unit cube. For isolated errors under R3 enforcement it
// resamples until the moved group ends up farther than 2R from every
// already-impacted device at time k; the boolean reports enforcement
// failure after MaxRetries.
func (g *Generator) pickDelta(prev *space.State, group []int, isolated bool, impacted map[int]bool) (space.Point, bool) {
	d := g.cfg.D
	lo := make([]float64, d)
	hi := make([]float64, d)
	first := prev.At(group[0])
	copy(lo, first)
	copy(hi, first)
	for _, j := range group[1:] {
		p := prev.At(j)
		for i := 0; i < d; i++ {
			if p[i] < lo[i] {
				lo[i] = p[i]
			}
			if p[i] > hi[i] {
				hi[i] = p[i]
			}
		}
	}
	draw := func() space.Point {
		delta := make(space.Point, d)
		for i := 0; i < d; i++ {
			lower, upper := -lo[i], 1-hi[i]
			if g.cfg.MaxShift > 0 {
				if lower < -g.cfg.MaxShift {
					lower = -g.cfg.MaxShift
				}
				if upper > g.cfg.MaxShift {
					upper = g.cfg.MaxShift
				}
			}
			delta[i] = g.rng.UniformRange(lower, upper)
		}
		return delta
	}
	if !isolated || !g.cfg.EnforceR3 {
		return draw(), false
	}
	for try := 0; try < g.cfg.MaxRetries; try++ {
		delta := draw()
		if g.separated(prev, group, delta, impacted) {
			return delta, false
		}
	}
	return draw(), true
}

// separated reports whether every member of the group, once displaced by
// delta, sits farther than 2R (at time k) from every already-impacted
// device — which prevents any joint r-consistent motion.
func (g *Generator) separated(prev *space.State, group []int, delta space.Point, impacted map[int]bool) bool {
	inGroup := make(map[int]bool, len(group))
	for _, j := range group {
		inGroup[j] = true
	}
	for _, j := range group {
		pj, err := space.Add(prev.At(j), delta)
		if err != nil {
			return false
		}
		for other := range impacted {
			if inGroup[other] {
				continue
			}
			if space.Dist(pj, g.cur.At(other)) <= 2*g.cfg.R {
				return false
			}
		}
	}
	return true
}
