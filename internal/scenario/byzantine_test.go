package scenario

import (
	"errors"
	"testing"

	"anomalia/internal/core"
	"anomalia/internal/sets"
)

// attackableStep generates a window guaranteed to contain both isolated
// and massive truth events.
func attackableStep(t *testing.T, seed int64) (*Step, Config) {
	t.Helper()
	cfg := Config{
		N: 1000, D: 2, R: 0.03, Tau: 3, A: 12, G: 0.5,
		EnforceR3: true, Seed: seed,
	}
	gen, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for tries := 0; tries < 20; tries++ {
		step, err := gen.Step()
		if err != nil {
			t.Fatal(err)
		}
		hasIso, hasMass := false, false
		for _, ev := range step.Events {
			if ev.Isolated {
				hasIso = true
			} else if len(ev.Impacted) > cfg.Tau {
				hasMass = true
			}
		}
		if hasIso && hasMass {
			return step, cfg
		}
	}
	t.Fatal("could not generate an attackable window")
	return nil, cfg
}

func classOf(t *testing.T, step *Step, cfg Config, device int) core.Class {
	t.Helper()
	char, err := core.New(step.Pair, step.Abnormal, core.Config{
		R: cfg.R, Tau: cfg.Tau, Exact: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := char.Characterize(device)
	if err != nil {
		t.Fatal(err)
	}
	return res.Class
}

// TestMimicAttackSuppressesIsolatedReport: enough colluders shadowing an
// isolated victim flip its verdict from isolated to massive, silencing
// its legitimate report — the collusion the paper's future work warns of.
func TestMimicAttackSuppressesIsolatedReport(t *testing.T) {
	t.Parallel()

	step, cfg := attackableStep(t, 71)
	// Identify the victim (first isolated event's first device).
	var victim int
	for _, ev := range step.Events {
		if ev.Isolated {
			victim = ev.Impacted[0]
			break
		}
	}
	if got := classOf(t, step, cfg, victim); got != core.ClassIsolated {
		t.Skipf("victim not isolated pre-attack (%v); geometry too dense", got)
	}

	res, err := Attack{Kind: AttackMimic, Colluders: cfg.Tau + 2, Seed: 1}.Apply(step, cfg.Tau)
	if err != nil {
		t.Fatal(err)
	}
	if res.Victim != victim {
		t.Fatalf("attack picked victim %d, expected %d", res.Victim, victim)
	}
	if len(res.Colluders) != cfg.Tau+2 {
		t.Fatalf("colluders = %v", res.Colluders)
	}
	for _, c := range res.Colluders {
		if !sets.ContainsInt(step.Abnormal, c) {
			t.Fatalf("colluder %d not in reported abnormal set", c)
		}
	}
	if got := classOf(t, step, cfg, victim); got != core.ClassMassive {
		t.Errorf("post-attack victim class = %v, want massive (report suppressed)", got)
	}
}

// TestScatterAttackForgesIsolation: colluders deserting a massive group
// make an honest member believe its network event was local.
func TestScatterAttackForgesIsolation(t *testing.T) {
	t.Parallel()

	step, cfg := attackableStep(t, 99)
	var group []int
	for _, ev := range step.Events {
		if !ev.Isolated && len(ev.Impacted) > cfg.Tau {
			group = ev.Impacted
			break
		}
	}
	honest := group[0]
	if got := classOf(t, step, cfg, honest); got != core.ClassMassive {
		t.Skipf("honest member not massive pre-attack (%v)", got)
	}

	res, err := Attack{Kind: AttackScatter, Colluders: len(group), Seed: 2}.Apply(step, cfg.Tau)
	if err != nil {
		t.Fatal(err)
	}
	if sets.ContainsInt(res.Colluders, honest) {
		t.Fatal("the honest victim must not collude")
	}
	got := classOf(t, step, cfg, honest)
	if got == core.ClassMassive {
		t.Errorf("post-attack honest member still classified massive; scatter failed")
	}
}

func TestAttackValidation(t *testing.T) {
	t.Parallel()

	step, cfg := attackableStep(t, 5)
	if _, err := (Attack{Kind: AttackMimic, Colluders: 0}).Apply(step, cfg.Tau); !errors.Is(err, ErrAttack) {
		t.Errorf("0 colluders error = %v", err)
	}
	if _, err := (Attack{Kind: AttackKind(9), Colluders: 2}).Apply(step, cfg.Tau); !errors.Is(err, ErrAttack) {
		t.Errorf("bad kind error = %v", err)
	}
	// Scatter with too few colluders for the group size.
	if _, err := (Attack{Kind: AttackScatter, Colluders: 1}).Apply(step, cfg.Tau); err != nil && !errors.Is(err, ErrAttack) {
		t.Errorf("scatter error = %v, want ErrAttack or success", err)
	}
	if AttackMimic.String() != "mimic" || AttackScatter.String() != "scatter" || AttackKind(0).String() != "unknown" {
		t.Error("AttackKind.String misbehaved")
	}
}

// TestMimicAttackNoIsolatedEvents: a window with only massive events
// cannot be mimic-attacked.
func TestMimicAttackNoIsolatedEvents(t *testing.T) {
	t.Parallel()

	gen, err := New(Config{
		N: 1000, D: 2, R: 0.03, Tau: 3, A: 5, G: 0, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var step *Step
	for {
		step, err = gen.Step()
		if err != nil {
			t.Fatal(err)
		}
		allMassive := true
		for _, ev := range step.Events {
			if ev.Isolated {
				allMassive = false
			}
		}
		if allMassive {
			break
		}
	}
	if _, err := (Attack{Kind: AttackMimic, Colluders: 4}).Apply(step, 3); !errors.Is(err, ErrAttack) {
		t.Errorf("mimic on massive-only window error = %v, want ErrAttack", err)
	}
}
