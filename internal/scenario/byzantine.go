package scenario

import (
	"errors"
	"fmt"
	"sort"

	"anomalia/internal/space"
	"anomalia/internal/stats"
)

// Byzantine collusion (the paper's future work, Section VIII): malicious
// devices forge their reported trajectories to defeat the characterizer.
// Two attacks are modelled:
//
//   - Mimicry: colluders copy a victim's abnormal trajectory so the
//     victim's isolated anomaly looks τ-dense and is classified massive —
//     suppressing the victim's (legitimate) report to the operator.
//   - Scattering: colluders inside a genuinely massive group forge
//     positions far from their group so the group drops to τ or fewer
//     *visible* co-movers and honest members classify their network event
//     as isolated — flooding the operator with false tickets.
//
// Attacks rewrite the *reported* states of the window after the honest
// dynamics ran; ground truth labels are unchanged, which is exactly what
// makes the resulting misclassification measurable.

// AttackKind selects the collusion strategy.
type AttackKind int

// Supported attacks.
const (
	// AttackMimic makes colluders shadow a victim's trajectory.
	AttackMimic AttackKind = iota + 1
	// AttackScatter makes colluders desert their massive group.
	AttackScatter
)

// String names the attack.
func (a AttackKind) String() string {
	switch a {
	case AttackMimic:
		return "mimic"
	case AttackScatter:
		return "scatter"
	default:
		return "unknown"
	}
}

// ErrAttack is returned when an attack cannot be mounted on a window.
var ErrAttack = errors.New("scenario: attack not applicable to this window")

// Attack is a collusion configuration.
type Attack struct {
	// Kind selects the strategy.
	Kind AttackKind
	// Colluders is the number of malicious devices (drafted from the
	// normal population for AttackMimic, from the target group for
	// AttackScatter).
	Colluders int
	// Seed drives colluder placement.
	Seed int64
}

// AttackResult reports what the colluders did.
type AttackResult struct {
	// Victim is the attacked device (mimic: the isolated device whose
	// report is suppressed) or a member of the attacked group (scatter).
	Victim int
	// Colluders lists the malicious devices, sorted.
	Colluders []int
}

// Apply mounts the attack on a generated window, mutating the reported
// states (step.Pair) and the abnormal set in place. It returns which
// devices colluded. The step's ground truth (Events, ImpactOf) is left
// untouched: colluders are liars, not victims of real errors.
func (a Attack) Apply(step *Step, tau int) (AttackResult, error) {
	if a.Colluders < 1 {
		return AttackResult{}, fmt.Errorf("%d colluders: %w", a.Colluders, ErrAttack)
	}
	rng := stats.NewRNG(a.Seed)
	switch a.Kind {
	case AttackMimic:
		return a.applyMimic(step, tau, rng)
	case AttackScatter:
		return a.applyScatter(step, tau, rng)
	default:
		return AttackResult{}, fmt.Errorf("kind %d: %w", a.Kind, ErrAttack)
	}
}

// applyMimic picks an isolated-truth victim and turns enough normal
// devices into shadows of its trajectory to exceed τ co-movers.
func (a Attack) applyMimic(step *Step, tau int, rng *stats.RNG) (AttackResult, error) {
	var victim = -1
	for _, ev := range step.Events {
		if ev.Isolated {
			victim = ev.Impacted[0]
			break
		}
	}
	if victim < 0 {
		return AttackResult{}, fmt.Errorf("no isolated event to attack: %w", ErrAttack)
	}
	abnormal := make(map[int]bool, len(step.Abnormal))
	for _, j := range step.Abnormal {
		abnormal[j] = true
	}
	var pool []int
	for j := 0; j < step.Pair.N(); j++ {
		if !abnormal[j] {
			pool = append(pool, j)
		}
	}
	if len(pool) < a.Colluders {
		return AttackResult{}, fmt.Errorf("only %d normal devices available: %w", len(pool), ErrAttack)
	}
	res := AttackResult{Victim: victim}
	vPrev := step.Pair.Prev.At(victim)
	vCur := step.Pair.Cur.At(victim)
	d := step.Pair.Dim()
	for _, c := range rng.Sample(pool, a.Colluders) {
		// Report positions glued to the victim at both times (small
		// per-colluder offset keeps points distinct).
		off := make(space.Point, d)
		for i := range off {
			off[i] = (rng.Float64() - 0.5) * 0.002
		}
		pPrev, err := space.Add(vPrev, off)
		if err != nil {
			return AttackResult{}, err
		}
		pCur, err := space.Add(vCur, off)
		if err != nil {
			return AttackResult{}, err
		}
		if err := step.Pair.Prev.Set(c, pPrev); err != nil {
			return AttackResult{}, err
		}
		if err := step.Pair.Cur.Set(c, pCur); err != nil {
			return AttackResult{}, err
		}
		step.Abnormal = append(step.Abnormal, c)
		res.Colluders = append(res.Colluders, c)
	}
	sort.Ints(step.Abnormal)
	sort.Ints(res.Colluders)
	_ = tau
	return res, nil
}

// applyScatter picks a massive-truth group and scatters colluding members
// far away in the *reported* current state, shrinking the honest group to
// at most τ visible co-movers.
func (a Attack) applyScatter(step *Step, tau int, rng *stats.RNG) (AttackResult, error) {
	var group []int
	for _, ev := range step.Events {
		if !ev.Isolated && len(ev.Impacted) > tau {
			group = ev.Impacted
			break
		}
	}
	if group == nil {
		return AttackResult{}, fmt.Errorf("no massive event to attack: %w", ErrAttack)
	}
	need := len(group) - tau
	if a.Colluders < need {
		return AttackResult{}, fmt.Errorf("%d colluders cannot shrink a group of %d below τ=%d: %w",
			a.Colluders, len(group), tau, ErrAttack)
	}
	res := AttackResult{Victim: group[0]}
	colluders := rng.Sample(group[1:], need) // keep the victim honest
	d := step.Pair.Dim()
	for i, c := range colluders {
		// Forged current position: a corner region away from everyone,
		// distinct per colluder.
		forged := make(space.Point, d)
		for x := range forged {
			forged[x] = 0.99 - 0.004*float64(i) - 0.05*float64(x)
		}
		if err := step.Pair.Cur.Set(c, forged); err != nil {
			return AttackResult{}, err
		}
		res.Colluders = append(res.Colluders, c)
	}
	sort.Ints(res.Colluders)
	return res, nil
}
