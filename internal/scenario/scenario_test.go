package scenario

import (
	"errors"
	"testing"

	"anomalia/internal/motion"
	"anomalia/internal/sets"
)

func baseConfig() Config {
	return Config{
		N:    1000,
		D:    2,
		R:    0.03,
		Tau:  3,
		A:    20,
		G:    0.5,
		Seed: 1,
	}
}

func TestConfigValidation(t *testing.T) {
	t.Parallel()

	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"n too small", func(c *Config) { c.N = 1 }},
		{"bad dim", func(c *Config) { c.D = 0 }},
		{"bad radius", func(c *Config) { c.R = 0.3 }},
		{"tau zero", func(c *Config) { c.Tau = 0 }},
		{"tau too big", func(c *Config) { c.Tau = 1000 }},
		{"no errors", func(c *Config) { c.A = 0 }},
		{"bad G", func(c *Config) { c.G = 1.5 }},
	}
	for _, tt := range mutations {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			cfg := baseConfig()
			tt.mut(&cfg)
			if _, err := New(cfg); err == nil {
				t.Error("expected configuration error")
			}
		})
	}
	cfg := baseConfig()
	cfg.R = 0.3
	if _, err := New(cfg); !errors.Is(err, motion.ErrRadius) {
		t.Errorf("radius error = %v", err)
	}
}

func TestStepGroundTruthConsistency(t *testing.T) {
	t.Parallel()

	gen, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 5; k++ {
		step, err := gen.Step()
		if err != nil {
			t.Fatal(err)
		}
		if len(step.Events) == 0 || len(step.Abnormal) == 0 {
			t.Fatal("empty step")
		}
		// Abnormal = disjoint union of event-impacted sets.
		var union []int
		for _, ev := range step.Events {
			if len(ev.Impacted) == 0 {
				t.Fatalf("event %d impacted nobody", ev.ID)
			}
			if len(sets.IntersectInts(union, ev.Impacted)) != 0 {
				t.Fatalf("events overlap: %v vs %v", union, ev.Impacted)
			}
			union = sets.UnionInts(union, ev.Impacted)
			// Ground-truth class matches cardinality.
			if ev.Isolated != (len(ev.Impacted) <= baseConfig().Tau) {
				t.Fatalf("event %d: Isolated=%v with %d impacted", ev.ID, ev.Isolated, len(ev.Impacted))
			}
			for _, j := range ev.Impacted {
				if idx, ok := step.ImpactOf[j]; !ok || idx != ev.ID {
					t.Fatalf("ImpactOf[%d] = %d, want %d", j, idx, ev.ID)
				}
			}
		}
		if !sets.EqualInts(union, step.Abnormal) {
			t.Fatalf("abnormal %v != union of events %v", step.Abnormal, union)
		}
	}
}

// TestGroupsAreMotions: restriction R2 — every impacted group must have an
// r-consistent motion (consistent at both times).
func TestGroupsAreMotions(t *testing.T) {
	t.Parallel()

	gen, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 5; k++ {
		step, err := gen.Step()
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range step.Events {
			if !step.Pair.ConsistentMotion(ev.Impacted, baseConfig().R) {
				t.Fatalf("step %d event %d: impacted group %v is not an r-consistent motion",
					k, ev.ID, ev.Impacted)
			}
		}
	}
}

// TestUnimpactedDevicesDoNotMove: only impacted devices change position,
// so A_k is exactly the set of devices with abnormal trajectories.
func TestUnimpactedDevicesDoNotMove(t *testing.T) {
	t.Parallel()

	gen, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	step, err := gen.Step()
	if err != nil {
		t.Fatal(err)
	}
	abnormal := make(map[int]bool)
	for _, j := range step.Abnormal {
		abnormal[j] = true
	}
	for j := 0; j < baseConfig().N; j++ {
		moved := step.Pair.Prev.Dist(j, j) != 0 // always 0; compare states directly
		_ = moved
		d := 0.0
		for i := 0; i < baseConfig().D; i++ {
			diff := step.Pair.Prev.At(j)[i] - step.Pair.Cur.At(j)[i]
			if diff < 0 {
				diff = -diff
			}
			if diff > d {
				d = diff
			}
		}
		if abnormal[j] && d == 0 {
			t.Errorf("abnormal device %d did not move", j)
		}
		if !abnormal[j] && d != 0 {
			t.Errorf("normal device %d moved by %v", j, d)
		}
	}
}

// TestEventSizesRespectMix: G=1 must only produce isolated events, G=0
// only massive intents.
func TestEventSizesRespectMix(t *testing.T) {
	t.Parallel()

	cfg := baseConfig()
	cfg.G = 1
	gen, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	step, err := gen.Step()
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range step.Events {
		if !ev.Isolated || ev.WantedMassive {
			t.Errorf("G=1 produced a massive event: %+v", ev)
		}
		if len(ev.Impacted) > cfg.Tau {
			t.Errorf("isolated event with %d > τ devices", len(ev.Impacted))
		}
	}

	cfg.G = 0
	cfg.Seed = 7
	gen, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	step, err = gen.Step()
	if err != nil {
		t.Fatal(err)
	}
	sawMassive := false
	for _, ev := range step.Events {
		if !ev.WantedMassive {
			t.Errorf("G=0 produced an isolated intent: %+v", ev)
		}
		if len(ev.Impacted) > cfg.Tau {
			sawMassive = true
		}
	}
	if !sawMassive {
		t.Error("G=0 never realized a massive event (density too low?)")
	}
}

// TestR3EnforcementSeparatesIsolatedGroups: with EnforceR3, no device of a
// truly isolated group may be motion-adjacent to an abnormal device
// outside its group (unless enforcement reported failure).
func TestR3EnforcementSeparatesIsolatedGroups(t *testing.T) {
	t.Parallel()

	cfg := baseConfig()
	cfg.EnforceR3 = true
	cfg.G = 1 // all isolated: worst case for separation
	cfg.A = 10
	gen, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 5; k++ {
		step, err := gen.Step()
		if err != nil {
			t.Fatal(err)
		}
		if step.R3Failures > 0 {
			continue // enforcement can fail legitimately; skip the check
		}
		for _, ev := range step.Events {
			for _, j := range ev.Impacted {
				for _, other := range step.Abnormal {
					if step.ImpactOf[other] == ev.ID {
						continue
					}
					if step.Pair.Adjacent(j, other, cfg.R) {
						t.Fatalf("step %d: isolated device %d adjacent to foreign abnormal %d", k, j, other)
					}
				}
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	t.Parallel()

	g1, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	g2, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		s1, err := g1.Step()
		if err != nil {
			t.Fatal(err)
		}
		s2, err := g2.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !sets.EqualInts(s1.Abnormal, s2.Abnormal) {
			t.Fatalf("step %d: abnormal sets differ", k)
		}
		for i := range s1.Events {
			if !sets.EqualInts(s1.Events[i].Impacted, s2.Events[i].Impacted) {
				t.Fatalf("step %d event %d differs", k, i)
			}
		}
	}
}

func TestTruthIsolated(t *testing.T) {
	t.Parallel()

	gen, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	step, err := gen.Step()
	if err != nil {
		t.Fatal(err)
	}
	j := step.Abnormal[0]
	iso, ok := step.TruthIsolated(j)
	if !ok {
		t.Fatal("TruthIsolated must know abnormal devices")
	}
	ev := step.Events[step.ImpactOf[j]]
	if iso != ev.Isolated {
		t.Error("TruthIsolated disagrees with the event record")
	}
	if _, ok := step.TruthIsolated(-1); ok {
		t.Error("TruthIsolated must report unknown devices")
	}
}

// TestPositionsStayInCube: coherent displacement must never push devices
// outside the QoS space.
func TestPositionsStayInCube(t *testing.T) {
	t.Parallel()

	cfg := baseConfig()
	cfg.A = 60
	gen, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 10; k++ {
		step, err := gen.Step()
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < cfg.N; j++ {
			if !step.Pair.Cur.At(j).InUnitCube() {
				t.Fatalf("device %d left the unit cube: %v", j, step.Pair.Cur.At(j))
			}
		}
	}
}
