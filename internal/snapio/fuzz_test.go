package snapio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"testing"
)

// TestFrameReaderEveryTruncationBoundary cuts a two-frame stream at
// every possible byte length. Invariants: no panic, errors carry the
// frame index and the byte offset the failing frame starts at, a cut
// exactly on a frame boundary is a clean io.EOF, and any other cut is
// io.ErrUnexpectedEOF — never a silent short read.
func TestFrameReaderEveryTruncationBoundary(t *testing.T) {
	t.Parallel()

	const want = 3
	var buf bytes.Buffer
	w := NewFrameWriter(&buf)
	for f := 0; f < 2; f++ {
		if err := w.Write([]float64{0.1, 0.2, 0.3}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	frameSize := 4 + 8*want

	for cut := 0; cut <= len(full); cut++ {
		fr := NewFrameReader(bytes.NewReader(full[:cut]), want)
		whole := cut / frameSize
		for k := 0; k < whole; k++ {
			if _, err := fr.Next(); err != nil {
				t.Fatalf("cut %d: frame %d should decode: %v", cut, k, err)
			}
		}
		_, err := fr.Next()
		if cut%frameSize == 0 {
			if err != io.EOF {
				t.Fatalf("cut %d on a frame boundary: %v, want bare io.EOF", cut, err)
			}
			continue
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut %d mid-frame: %v, want io.ErrUnexpectedEOF", cut, err)
		}
		if !bytes.Contains([]byte(err.Error()), []byte("frame ")) {
			t.Fatalf("cut %d: error %q lacks the frame position", cut, err)
		}
		if fr.Frames() != whole || fr.Offset() != int64(whole*frameSize) {
			t.Fatalf("cut %d: position %d/%d after failure, want %d/%d",
				cut, fr.Frames(), fr.Offset(), whole, whole*frameSize)
		}
	}
}

// TestFrameReaderOversizedCount: a corrupt length prefix must be
// rejected by geometry before any allocation proportional to it.
func TestFrameReaderOversizedCount(t *testing.T) {
	t.Parallel()

	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], math.MaxUint32)
	fr := NewFrameReader(bytes.NewReader(hdr[:]), 2)
	if _, err := fr.Next(); err == nil {
		t.Fatal("oversized count accepted")
	}
	if cap(fr.buf) != 0 || cap(fr.vals) != 0 {
		t.Fatalf("oversized count allocated buf cap %d, vals cap %d", cap(fr.buf), cap(fr.vals))
	}
}

// FuzzFrameReader feeds arbitrary bytes through the reader. The decoder
// must never panic, never allocate beyond the configured geometry,
// return positioned errors for everything except a clean end of
// stream, and decode exactly the prefix of whole well-formed frames.
func FuzzFrameReader(f *testing.F) {
	var buf bytes.Buffer
	w := NewFrameWriter(&buf)
	_ = w.Write([]float64{0.5, 0.25})
	_ = w.Write([]float64{1, 0})
	_ = w.Flush()
	clean := buf.Bytes()

	f.Add(clean)
	f.Add(clean[:len(clean)-3])             // torn body
	f.Add(clean[:5])                        // torn header+1
	f.Add(append([]byte(nil), 0xff, 0xff))  // garbage short header
	f.Add(append(bytes.Clone(clean), 9, 9)) // garbage trailer
	f.Add(func() []byte {                   // oversized count
		var h [4]byte
		binary.LittleEndian.PutUint32(h[:], 1<<30)
		return h[:]
	}())

	const want = 2
	const frameSize = 4 + 8*want
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data), want)
		frames := 0
		for {
			vals, err := fr.Next()
			if err == nil {
				if len(vals) != want {
					t.Fatalf("frame %d: %d values, want %d", frames, len(vals), want)
				}
				frames++
				if frames > len(data)/frameSize {
					t.Fatalf("decoded %d frames from %d bytes", frames, len(data))
				}
				continue
			}
			if err == io.EOF && fr.Offset() != int64(len(data)) {
				t.Fatalf("clean EOF with %d of %d bytes consumed", fr.Offset(), len(data))
			}
			if err != io.EOF && !bytes.Contains([]byte(err.Error()), []byte("frame ")) {
				t.Fatalf("unpositioned error %q", err)
			}
			break
		}
		if cap(fr.buf) > 8*want || cap(fr.vals) > want {
			t.Fatalf("buffers outgrew the geometry: buf %d, vals %d", cap(fr.buf), cap(fr.vals))
		}
		if fr.Frames() != frames || fr.Offset() != int64(frames*frameSize) {
			t.Fatalf("position %d/%d after %d frames", fr.Frames(), fr.Offset(), frames)
		}
	})
}
