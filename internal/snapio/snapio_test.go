package snapio

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	t.Parallel()

	frames := [][]float64{
		{0, 0.25, 0.5, 1},
		{0.1, 0.2, 0.3, 0.4},
		{math.SmallestNonzeroFloat64, 1 - 1e-16, 0.123456789012345, 0.999999},
	}
	var buf bytes.Buffer
	w := NewFrameWriter(&buf)
	for _, f := range frames {
		if err := w.Write(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewFrameReader(&buf, 4)
	for i, want := range frames {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if len(got) != len(want) {
			t.Fatalf("frame %d: %d values, want %d", i, len(got), len(want))
		}
		for c := range want {
			if got[c] != want[c] {
				t.Errorf("frame %d value %d = %v, want %v (bit-exact)", i, c, got[c], want[c])
			}
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("end of stream error = %v, want io.EOF", err)
	}
}

// Non-finite values must survive the codec unchanged: rejecting them is
// the gateway's job, and it can only do that if it sees them.
func TestFrameCarriesNonFinite(t *testing.T) {
	t.Parallel()

	var buf bytes.Buffer
	w := NewFrameWriter(&buf)
	if err := w.Write([]float64{math.NaN(), math.Inf(1), math.Inf(-1)}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := NewFrameReader(&buf, 3).Next()
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(got[0]) || !math.IsInf(got[1], 1) || !math.IsInf(got[2], -1) {
		t.Errorf("non-finite values mangled: %v", got)
	}
}

func TestFrameReaderReusesBuffer(t *testing.T) {
	t.Parallel()

	var buf bytes.Buffer
	w := NewFrameWriter(&buf)
	for i := 0; i < 2; i++ {
		if err := w.Write([]float64{0.1, 0.2}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewFrameReader(&buf, 2)
	a, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Error("Next allocated a fresh slice in steady state")
	}
}

func TestFrameGeometryRejected(t *testing.T) {
	t.Parallel()

	var buf bytes.Buffer
	w := NewFrameWriter(&buf)
	if err := w.Write([]float64{0.1, 0.2, 0.3}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFrameReader(&buf, 2).Next(); err == nil {
		t.Error("3-value frame accepted by a reader expecting 2")
	}
}

func TestFrameTruncation(t *testing.T) {
	t.Parallel()

	var buf bytes.Buffer
	w := NewFrameWriter(&buf)
	if err := w.Write([]float64{0.1, 0.2}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Cut inside the body: unexpected EOF, not a clean end.
	r := NewFrameReader(bytes.NewReader(full[:len(full)-3]), 2)
	if _, err := r.Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("body truncation error = %v, want ErrUnexpectedEOF", err)
	}
	// Cut inside the header of a second frame.
	r = NewFrameReader(bytes.NewReader(append(append([]byte(nil), full...), full[:2]...)), 2)
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("header truncation error = %v, want ErrUnexpectedEOF", err)
	}
}

func TestRows(t *testing.T) {
	t.Parallel()

	flat := []float64{1, 2, 3, 4, 5, 6}
	rows := Rows(flat, nil, 2)
	if len(rows) != 3 || rows[1][0] != 3 || rows[2][1] != 6 {
		t.Fatalf("Rows = %v", rows)
	}
	// Same backing array: no work, same slice header.
	again := Rows(flat, rows, 2)
	if &again[0] != &rows[0] {
		t.Error("Rows re-allocated for an already-wired flat slice")
	}
	// A row must not be able to append into its neighbour.
	r0 := append(rows[0], 99)
	if flat[2] != 3 {
		t.Errorf("row append clobbered the next device: flat = %v", flat)
	}
	_ = r0
	// New backing array: rewires in place.
	flat2 := []float64{7, 8, 9, 10, 11, 12}
	rows2 := Rows(flat2, rows, 2)
	if &rows2[0][0] != &flat2[0] || rows2[2][1] != 12 {
		t.Errorf("rewired rows = %v", rows2)
	}
}
