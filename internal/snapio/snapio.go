// Package snapio implements the binary snapshot stream shared by
// cmd/anomalia-gateway (-format bin) and cmd/anomalia-sim (-emit bin):
// one length-prefixed frame of float64 QoS values per discrete time.
//
// Frame layout, everything little-endian:
//
//	uint32          count — number of float64 values in the frame
//	count × uint64  the values as IEEE-754 bits, device-major
//	                (dev0_svc0, dev0_svc1, dev1_svc0, ...)
//
// The format exists because encoding/csv plus strconv dominate a
// million-device tick: a frame decodes with one bulk read and a
// fixed-width bit conversion per value, and both directions reuse their
// buffers, so steady-state streaming does not allocate per tick. The
// codec is value-agnostic — range and finiteness policy belong to the
// consumer (the gateway rejects non-finite and out-of-[0,1] values the
// same way it does for CSV input).
package snapio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// FrameReader decodes a stream of frames. It reuses its buffers: the
// slice returned by Next is overwritten by the following Next.
type FrameReader struct {
	r    *bufio.Reader
	want int
	buf  []byte
	vals []float64
	// off is the byte offset of the frame Next decodes next — the sum
	// of fully decoded frames — and frame its stream index. Both feed
	// the positioned errors the format owes its consumers: a length-
	// prefixed stream cannot resync after framing corruption, so the
	// error that kills it must say where the stream died.
	off   int64
	frame int
}

// NewFrameReader wraps r. want is the expected value count per frame
// (devices × services); a frame of any other geometry is an error,
// which also bounds the allocation a corrupt length prefix could
// otherwise demand.
func NewFrameReader(r io.Reader, want int) *FrameReader {
	return &FrameReader{r: bufio.NewReaderSize(r, 1<<16), want: want}
}

// Next returns the next frame's values, or io.EOF at a clean end of
// stream. A frame cut short surfaces io.ErrUnexpectedEOF; every error
// except the clean EOF names the frame's stream index and the byte
// offset of its first byte.
func (fr *FrameReader) Next() ([]float64, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("snapio: frame %d at byte %d: header: %w", fr.frame, fr.off, err)
	}
	count := int(binary.LittleEndian.Uint32(hdr[:]))
	if count != fr.want {
		return nil, fmt.Errorf("snapio: frame %d at byte %d: frame has %d values, want %d", fr.frame, fr.off, count, fr.want)
	}
	need := 8 * count
	if cap(fr.buf) < need {
		fr.buf = make([]byte, need)
	}
	buf := fr.buf[:need]
	if _, err := io.ReadFull(fr.r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("snapio: frame %d at byte %d: body: %w", fr.frame, fr.off, err)
	}
	if cap(fr.vals) < count {
		fr.vals = make([]float64, count)
	}
	vals := fr.vals[:count]
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	fr.off += int64(4 + need)
	fr.frame++
	return vals, nil
}

// Offset returns the byte offset past the last fully decoded frame —
// equivalently, the offset at which the next frame starts.
func (fr *FrameReader) Offset() int64 { return fr.off }

// Frames returns the number of frames fully decoded so far.
func (fr *FrameReader) Frames() int { return fr.frame }

// FrameWriter encodes frames onto a buffered writer; call Flush when
// the stream is complete.
type FrameWriter struct {
	w   *bufio.Writer
	buf []byte
}

// NewFrameWriter wraps w.
func NewFrameWriter(w io.Writer) *FrameWriter {
	return &FrameWriter{w: bufio.NewWriterSize(w, 1<<16)}
}

// Write encodes one frame.
func (fw *FrameWriter) Write(vals []float64) error {
	if len(vals) > math.MaxUint32 {
		return fmt.Errorf("snapio: frame of %d values exceeds the format's uint32 count", len(vals))
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(vals)))
	if _, err := fw.w.Write(hdr[:]); err != nil {
		return err
	}
	need := 8 * len(vals)
	if cap(fw.buf) < need {
		fw.buf = make([]byte, need)
	}
	buf := fw.buf[:need]
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	_, err := fw.w.Write(buf)
	return err
}

// Flush flushes the underlying buffered writer.
func (fw *FrameWriter) Flush() error { return fw.w.Flush() }

// Rows reslices a device-major flat frame into one row of services
// values per device, reusing rows when it already views flat (the
// common steady-state case: FrameReader hands back the same backing
// array every tick). services must be positive and divide len(flat).
func Rows(flat []float64, rows [][]float64, services int) [][]float64 {
	n := len(flat) / services
	if len(rows) == n && n > 0 && len(rows[0]) == services && &rows[0][0] == &flat[0] {
		return rows
	}
	if cap(rows) < n {
		rows = make([][]float64, n)
	}
	rows = rows[:n]
	for i := range rows {
		rows[i] = flat[i*services : (i+1)*services : (i+1)*services]
	}
	return rows
}
