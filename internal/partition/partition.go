// Package partition implements the anomaly partitions of Definition 6:
// partitions of the abnormal set A_k into disjoint r-consistent motions
// whose sparse blocks can neither assemble into a dense motion (C1) nor
// extend a dense block (C2).
//
// It provides the paper's Algorithm 1 (greedy construction, Lemma 2), a
// validator for C1/C2, an exhaustive enumerator of all anomaly partitions,
// and the resulting omniscient-observer oracle that classifies every
// abnormal device into M_k (massive in every partition), I_k (isolated in
// every partition) or U_k (unresolved, Definition 8). The oracle is the
// ground truth against which the local conditions of Section V are tested.
package partition

import (
	"errors"
	"fmt"

	"anomalia/internal/motion"
	"anomalia/internal/sets"
)

// Partition is a partition of the abnormal device set into blocks
// (anomalies). Blocks hold sorted device ids.
type Partition [][]int

var (
	// ErrNotPartition is returned when blocks are empty, overlap, or do
	// not cover the abnormal set.
	ErrNotPartition = errors.New("partition: blocks do not partition the abnormal set")
	// ErrNotMotion is returned when a block is not an r-consistent motion.
	ErrNotMotion = errors.New("partition: block is not an r-consistent motion")
	// ErrC1 is returned when a subset of the sparse blocks forms a τ-dense
	// motion (condition C1 of Definition 6).
	ErrC1 = errors.New("partition: sparse blocks contain a dense motion (C1)")
	// ErrC2 is returned when a sparse device can extend a dense block into
	// an r-consistent motion (condition C2 of Definition 6).
	ErrC2 = errors.New("partition: sparse device extends a dense block (C2)")
	// ErrSearchSpace is returned when enumeration exceeds its node budget.
	ErrSearchSpace = errors.New("partition: enumeration exceeded its search budget")
	// ErrEmptyAbnormal is returned when the abnormal set is empty.
	ErrEmptyAbnormal = errors.New("partition: empty abnormal set")
)

// BlockOf returns the block of p containing device j, or nil.
func (p Partition) BlockOf(j int) []int {
	for _, b := range p {
		if sets.ContainsInt(b, j) {
			return b
		}
	}
	return nil
}

// Canonical sorts each block and orders blocks deterministically,
// returning p for chaining.
func (p Partition) Canonical() Partition {
	for i := range p {
		p[i] = sets.Canon(p[i])
	}
	sets.SortSets(p)
	return p
}

// Equal reports whether two canonical partitions have identical blocks.
func (p Partition) Equal(o Partition) bool {
	if len(p) != len(o) {
		return false
	}
	for i := range p {
		if !sets.EqualInts(p[i], o[i]) {
			return false
		}
	}
	return true
}

// Validate checks that p is an anomaly partition of abnormal (Definition
// 6): non-empty disjoint blocks covering abnormal, every block an
// r-consistent motion, and conditions C1 and C2.
//
// C1 reduces to "no τ-dense motion inside the union of sparse blocks" and
// C2 to "no single sparse device is motion-adjacent to every member of a
// dense block": both reductions follow from r-consistency being closed
// under subsets.
func Validate(pair *motion.Pair, p Partition, abnormal []int, r float64, tau int) error {
	abnormal = sets.Canon(sets.CloneInts(abnormal))

	// Structural partition checks.
	seen := sets.NewBits(pair.N())
	count := 0
	for _, b := range p {
		if len(b) == 0 {
			return fmt.Errorf("empty block: %w", ErrNotPartition)
		}
		for _, id := range b {
			if !sets.ContainsInt(abnormal, id) {
				return fmt.Errorf("device %d not abnormal: %w", id, ErrNotPartition)
			}
			if seen.Has(id) {
				return fmt.Errorf("device %d in two blocks: %w", id, ErrNotPartition)
			}
			seen.Add(id)
			count++
		}
	}
	if count != len(abnormal) {
		return fmt.Errorf("blocks cover %d of %d devices: %w", count, len(abnormal), ErrNotPartition)
	}

	// Every block must be an r-consistent motion.
	for _, b := range p {
		if !pair.ConsistentMotion(b, r) {
			return fmt.Errorf("block %v: %w", b, ErrNotMotion)
		}
	}

	// Split blocks into sparse and dense.
	var sparseUnion []int
	var dense [][]int
	for _, b := range p {
		if motion.Dense(len(b), tau) {
			dense = append(dense, b)
		} else {
			sparseUnion = append(sparseUnion, b...)
		}
	}
	sparseUnion = sets.Canon(sparseUnion)

	// C1: no dense motion within the union of sparse blocks.
	if len(sparseUnion) > tau {
		g := motion.NewGraph(pair, sparseUnion, r)
		for _, j := range sparseUnion {
			if g.HasDenseMotionContaining(j, sparseUnion, tau) {
				return fmt.Errorf("device %d lies in a dense motion of sparse blocks: %w", j, ErrC1)
			}
		}
	}

	// C2: no sparse device extends a dense block.
	for _, db := range dense {
		for _, x := range sparseUnion {
			ext := append(sets.CloneInts(db), x)
			if pair.ConsistentMotion(ext, r) {
				return fmt.Errorf("device %d extends dense block %v: %w", x, db, ErrC2)
			}
		}
	}
	return nil
}
