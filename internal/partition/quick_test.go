package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"anomalia/internal/motion"
	"anomalia/internal/sets"
	"anomalia/internal/space"
	"anomalia/internal/stats"
)

// quickWindow derives a small window from raw bytes for testing/quick.
func quickWindow(prevRaw, curRaw []uint8) (*motion.Pair, []int, bool) {
	n := len(prevRaw)
	if len(curRaw) < n {
		n = len(curRaw)
	}
	if n < 3 {
		return nil, nil, false
	}
	if n > 9 {
		n = 9
	}
	build := func(raw []uint8) *space.State {
		st, err := space.NewState(n, 1)
		if err != nil {
			return nil
		}
		for j := 0; j < n; j++ {
			if err := st.Set(j, space.Point{float64(raw[j]) / 255 * 0.35}); err != nil {
				return nil
			}
		}
		return st
	}
	prev, cur := build(prevRaw), build(curRaw)
	if prev == nil || cur == nil {
		return nil, nil, false
	}
	pair, err := motion.NewPair(prev, cur)
	if err != nil {
		return nil, nil, false
	}
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return pair, ids, true
}

// TestQuickGreedyIsStructuralPartition: whatever choices Algorithm 1
// makes, its output is a partition of A_k into r-consistent motions.
func TestQuickGreedyIsStructuralPartition(t *testing.T) {
	t.Parallel()

	f := func(prevRaw, curRaw []uint8, seed int64) bool {
		pair, ids, ok := quickWindow(prevRaw, curRaw)
		if !ok {
			return true
		}
		const r, tau = 0.06, 2
		p, err := Greedy(pair, ids, r, tau, stats.NewRNG(seed))
		if err != nil {
			return false
		}
		var covered []int
		for _, b := range p {
			if len(b) == 0 || !pair.ConsistentMotion(b, r) {
				return false
			}
			if len(sets.IntersectInts(covered, b)) != 0 {
				return false
			}
			covered = sets.UnionInts(covered, b)
		}
		return sets.EqualInts(covered, ids)
	}
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(41))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickOracleConsistentWithValidate: every enumerated partition
// passes Validate, and the oracle classes partition the abnormal set.
func TestQuickOracleConsistentWithValidate(t *testing.T) {
	t.Parallel()

	f := func(prevRaw, curRaw []uint8) bool {
		pair, ids, ok := quickWindow(prevRaw, curRaw)
		if !ok {
			return true
		}
		const r, tau = 0.06, 2
		all, err := EnumerateAll(pair, ids, r, tau, 0)
		if err != nil {
			return true // budget blowups are acceptable here
		}
		if len(all) == 0 {
			return false // Lemma 2: at least one partition exists
		}
		for _, p := range all {
			if Validate(pair, p, ids, r, tau) != nil {
				return false
			}
		}
		res, err := Oracle(pair, ids, r, tau, 0)
		if err != nil {
			return true
		}
		classes := sets.UnionInts(sets.UnionInts(res.Massive, res.Isolated), res.Unresolved)
		if !sets.EqualInts(classes, ids) {
			return false
		}
		return len(res.Massive)+len(res.Isolated)+len(res.Unresolved) == len(ids)
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(43))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickValidateRejectsMutations: deleting a device from a valid
// partition must always be rejected (coverage violation).
func TestQuickValidateRejectsMutations(t *testing.T) {
	t.Parallel()

	f := func(prevRaw, curRaw []uint8, pick uint8) bool {
		pair, ids, ok := quickWindow(prevRaw, curRaw)
		if !ok {
			return true
		}
		const r, tau = 0.06, 2
		p, err := GreedyValidated(pair, ids, r, tau, stats.NewRNG(1), 100)
		if err != nil {
			return true
		}
		// Remove one device from its block.
		victim := ids[int(pick)%len(ids)]
		mutated := make(Partition, 0, len(p))
		for _, b := range p {
			nb := sets.DiffInts(b, []int{victim})
			if len(nb) > 0 {
				mutated = append(mutated, nb)
			}
		}
		return Validate(pair, mutated, ids, r, tau) != nil
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(47))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
