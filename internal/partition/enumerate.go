package partition

import (
	"fmt"

	"anomalia/internal/motion"
	"anomalia/internal/sets"
)

// DefaultBudget bounds the number of recursion nodes the exhaustive
// enumerator may visit. Anomaly-partition counts grow like Bell numbers,
// so exhaustive enumeration is only intended for the oracle on small
// configurations (|A_k| up to ~12).
const DefaultBudget = 5_000_000

// ForEachPartition enumerates every anomaly partition (Definition 6) of
// abnormal and calls fn on each; fn returning false stops early. The
// partition passed to fn is reused across calls — clone it to retain it.
//
// Enumeration walks all partitions of the abnormal set into cliques of the
// motion graph (each block is created when its smallest member is placed,
// so every clique partition is visited exactly once) and filters by C1/C2.
// It returns ErrSearchSpace if more than budget nodes are visited
// (DefaultBudget when budget <= 0).
func ForEachPartition(pair *motion.Pair, abnormal []int, r float64, tau int, budget int, fn func(Partition) bool) error {
	ids := sets.Canon(sets.CloneInts(abnormal))
	if len(ids) == 0 {
		return ErrEmptyAbnormal
	}
	if err := motion.ValidateRadius(r); err != nil {
		return err
	}
	if budget <= 0 {
		budget = DefaultBudget
	}
	g := motion.NewGraph(pair, ids, r)

	e := &enumerator{
		pair:   pair,
		g:      g,
		ids:    ids,
		r:      r,
		tau:    tau,
		budget: budget,
		fn:     fn,
	}
	e.recurse(0)
	if e.exceeded {
		return fmt.Errorf("budget %d: %w", budget, ErrSearchSpace)
	}
	return nil
}

type enumerator struct {
	pair     *motion.Pair
	g        *motion.Graph
	ids      []int
	r        float64
	tau      int
	budget   int
	fn       func(Partition) bool
	blocks   [][]int
	exceeded bool
	stopped  bool
}

// recurse assigns ids[i:] to blocks; blocks created in order of their
// smallest member so each clique partition appears once.
func (e *enumerator) recurse(i int) {
	if e.exceeded || e.stopped {
		return
	}
	e.budget--
	if e.budget < 0 {
		e.exceeded = true
		return
	}
	if i == len(e.ids) {
		p := make(Partition, len(e.blocks))
		for bi, b := range e.blocks {
			p[bi] = sets.Canon(sets.CloneInts(b))
		}
		if e.checkC1C2(p) {
			if !e.fn(p) {
				e.stopped = true
			}
		}
		return
	}
	id := e.ids[i]
	// Join an existing block if adjacent to all its members.
	for bi := range e.blocks {
		ok := true
		for _, member := range e.blocks[bi] {
			if !e.g.Adjacent(id, member) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		e.blocks[bi] = append(e.blocks[bi], id)
		e.recurse(i + 1)
		e.blocks[bi] = e.blocks[bi][:len(e.blocks[bi])-1]
		if e.exceeded || e.stopped {
			return
		}
	}
	// Open a new block.
	e.blocks = append(e.blocks, []int{id})
	e.recurse(i + 1)
	e.blocks = e.blocks[:len(e.blocks)-1]
}

// checkC1C2 verifies conditions C1 and C2 of Definition 6 for a clique
// partition (structural validity holds by construction).
func (e *enumerator) checkC1C2(p Partition) bool {
	var sparseUnion []int
	var dense [][]int
	for _, b := range p {
		if motion.Dense(len(b), e.tau) {
			dense = append(dense, b)
		} else {
			sparseUnion = append(sparseUnion, b...)
		}
	}
	sparseUnion = sets.Canon(sparseUnion)
	if len(sparseUnion) > e.tau {
		for _, j := range sparseUnion {
			if e.g.HasDenseMotionContaining(j, sparseUnion, e.tau) {
				return false
			}
		}
	}
	for _, db := range dense {
		for _, x := range sparseUnion {
			extendable := true
			for _, member := range db {
				if !e.g.Adjacent(x, member) {
					extendable = false
					break
				}
			}
			if extendable {
				return false
			}
		}
	}
	return true
}

// EnumerateAll collects every anomaly partition of abnormal in
// deterministic order. Intended for tests and the oracle only.
func EnumerateAll(pair *motion.Pair, abnormal []int, r float64, tau int, budget int) ([]Partition, error) {
	var out []Partition
	err := ForEachPartition(pair, abnormal, r, tau, budget, func(p Partition) bool {
		cp := make(Partition, len(p))
		for i, b := range p {
			cp[i] = sets.CloneInts(b)
		}
		out = append(out, cp.Canonical())
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
