package partition

import (
	"anomalia/internal/motion"
	"anomalia/internal/sets"
)

// OracleResult is the omniscient-observer classification of the abnormal
// set: the exact M_k, I_k and U_k of Section IV, computed from every
// anomaly partition (relations (2), (3) and Definition 8).
type OracleResult struct {
	// Massive holds M_k: devices in a dense block of every partition.
	Massive []int
	// Isolated holds I_k: devices in a sparse block of every partition.
	Isolated []int
	// Unresolved holds U_k: devices massive in one partition and isolated
	// in another (Definition 8).
	Unresolved []int
	// Partitions counts the anomaly partitions of the configuration
	// (Lemma 2 guarantees at least one).
	Partitions int
}

// ClassOf returns "M", "I" or "U" for device j, or "" when j was not part
// of the classified abnormal set.
func (o OracleResult) ClassOf(j int) string {
	switch {
	case sets.ContainsInt(o.Massive, j):
		return "M"
	case sets.ContainsInt(o.Isolated, j):
		return "I"
	case sets.ContainsInt(o.Unresolved, j):
		return "U"
	default:
		return ""
	}
}

// Oracle computes the exact M_k/I_k/U_k decomposition of abnormal by
// enumerating all anomaly partitions. It is exponential in |abnormal| and
// exists to ground-truth the local conditions of Section V; budget bounds
// the enumeration (DefaultBudget when <= 0).
func Oracle(pair *motion.Pair, abnormal []int, r float64, tau int, budget int) (OracleResult, error) {
	ids := sets.Canon(sets.CloneInts(abnormal))
	everMassive := make(map[int]bool, len(ids))
	everIsolated := make(map[int]bool, len(ids))
	count := 0
	err := ForEachPartition(pair, ids, r, tau, budget, func(p Partition) bool {
		count++
		for _, b := range p {
			dense := motion.Dense(len(b), tau)
			for _, j := range b {
				if dense {
					everMassive[j] = true
				} else {
					everIsolated[j] = true
				}
			}
		}
		return true
	})
	if err != nil {
		return OracleResult{}, err
	}
	res := OracleResult{Partitions: count}
	for _, j := range ids {
		switch {
		case everMassive[j] && everIsolated[j]:
			res.Unresolved = append(res.Unresolved, j)
		case everMassive[j]:
			res.Massive = append(res.Massive, j)
		default:
			res.Isolated = append(res.Isolated, j)
		}
	}
	return res, nil
}
