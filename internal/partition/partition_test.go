package partition

import (
	"errors"
	"testing"

	"anomalia/internal/motion"
	"anomalia/internal/paperfig"
	"anomalia/internal/sets"
	"anomalia/internal/space"
	"anomalia/internal/stats"
)

func mustFigure(t testing.TB, build func() (*paperfig.Config, error)) *paperfig.Config {
	t.Helper()
	cfg, err := build()
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestValidateAcceptsPaperPartitions(t *testing.T) {
	t.Parallel()

	tests := []struct {
		name       string
		build      func() (*paperfig.Config, error)
		partitions [][][]int
	}{
		{"figure2", paperfig.Figure2, paperfig.Figure2Partitions()},
		{"figure3", paperfig.Figure3, paperfig.Figure3Partitions()},
		{"figure5", paperfig.Figure5, paperfig.Figure5Partitions()},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			cfg := mustFigure(t, tt.build)
			for i, blocks := range tt.partitions {
				p := Partition(blocks)
				if err := Validate(cfg.Pair, p, cfg.Abnormal, cfg.R, cfg.Tau); err != nil {
					t.Errorf("paper partition %d rejected: %v", i, err)
				}
			}
		})
	}
}

func TestValidateRejections(t *testing.T) {
	t.Parallel()

	cfg := mustFigure(t, paperfig.Figure3)
	pair, r, tau := cfg.Pair, cfg.R, cfg.Tau
	abnormal := cfg.Abnormal

	tests := []struct {
		name    string
		p       Partition
		wantErr error
	}{
		{"empty block", Partition{{0, 1, 2, 3}, {4}, {}}, ErrNotPartition},
		{"missing device", Partition{{0, 1, 2, 3}}, ErrNotPartition},
		{"duplicate device", Partition{{0, 1, 2, 3}, {3, 4}}, ErrNotPartition},
		{"foreign device", Partition{{0, 1, 2, 3}, {4, 9}}, ErrNotPartition},
		{"non-motion block", Partition{{0, 4}, {1, 2, 3}}, ErrNotMotion},
		// All-sparse partition: {1,2,3,4} (0-based {0,1,2,3}) is a dense
		// motion inside the sparse union.
		{"C1 violation", Partition{{0, 1, 2}, {3, 4}}, ErrC1},
		// {{1},{2,3,4},{5}} keeps every block sparse; adding 0 to the
		// sparse union with dense block... use figure3: {{0,1,2},{3},{4}}
		// is all-sparse -> C1. A C2 case: dense {1,2,3} with 0 adjacent to
		// all of it.
		{"C2 violation", Partition{{1, 2, 3, 4}, {0}}, nil},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			err := Validate(pair, tt.p, abnormal, r, tau)
			if tt.wantErr == nil {
				return // placeholder rows validated separately below
			}
			if !errors.Is(err, tt.wantErr) {
				t.Errorf("Validate = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestValidateC2Violation(t *testing.T) {
	t.Parallel()

	// τ=2 on Figure 4(a): {{1},{2,4,5},{3}} in paper numbering is
	// invalid because device 1 extends nothing… build an explicit C2 case
	// instead: dense block {1,2,3} (0-based {0,1,2} of figure3) with
	// device 3 sparse but adjacent to the whole block.
	cfg := mustFigure(t, paperfig.Figure3)
	p := Partition{{0, 1, 2}, {3}, {4}}
	err := Validate(cfg.Pair, p, cfg.Abnormal, cfg.R, 2)
	if !errors.Is(err, ErrC1) && !errors.Is(err, ErrC2) {
		t.Errorf("Validate = %v, want C1 or C2 violation", err)
	}

	// A pure C2 case: dense block {0,1,2} (τ=2), sparse {3}, {4} with 4
	// beyond reach. Device 3 is adjacent to 0,1,2 -> C2.
	prev, err2 := space.StateFromPoints([][]float64{{0.1}, {0.15}, {0.2}, {0.3}, {0.9}})
	if err2 != nil {
		t.Fatal(err2)
	}
	pair, err2 := motion.NewPair(prev, prev.Clone())
	if err2 != nil {
		t.Fatal(err2)
	}
	err = Validate(pair, Partition{{0, 1, 2}, {3}, {4}}, []int{0, 1, 2, 3, 4}, 0.1, 2)
	if !errors.Is(err, ErrC2) {
		t.Errorf("Validate = %v, want ErrC2", err)
	}
}

func TestGreedyProducesPartition(t *testing.T) {
	t.Parallel()

	cfg := mustFigure(t, paperfig.Figure2)
	p, err := Greedy(cfg.Pair, cfg.Abnormal, cfg.R, cfg.Tau, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Structural validity at minimum: blocks partition A_k into motions.
	seen := sets.NewBits(cfg.Pair.N())
	total := 0
	for _, b := range p {
		if !cfg.Pair.ConsistentMotion(b, cfg.R) {
			t.Errorf("block %v is not a motion", b)
		}
		for _, id := range b {
			if seen.Has(id) {
				t.Errorf("device %d appears twice", id)
			}
			seen.Add(id)
			total++
		}
	}
	if total != len(cfg.Abnormal) {
		t.Errorf("blocks cover %d of %d devices", total, len(cfg.Abnormal))
	}
}

func TestGreedyMatchesPaperChoices(t *testing.T) {
	t.Parallel()

	// On Figure 2, deterministic greedy (first device, first maximal
	// motion) starts from device 0 and must extract {0,1,2} first, like
	// the paper's walkthrough that picks device 1.
	cfg := mustFigure(t, paperfig.Figure2)
	p, err := Greedy(cfg.Pair, cfg.Abnormal, cfg.R, cfg.Tau, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := Partition{{0, 1, 2}, {3}, {4, 5, 6, 7, 8}, {9}}.Canonical()
	if !p.Equal(want) {
		t.Errorf("greedy = %v, want %v", p, want)
	}
	if err := Validate(cfg.Pair, p, cfg.Abnormal, cfg.R, cfg.Tau); err != nil {
		t.Errorf("greedy partition invalid: %v", err)
	}
}

func TestGreedyEmptyAbnormal(t *testing.T) {
	t.Parallel()

	cfg := mustFigure(t, paperfig.Figure2)
	if _, err := Greedy(cfg.Pair, nil, cfg.R, cfg.Tau, nil); !errors.Is(err, ErrEmptyAbnormal) {
		t.Errorf("Greedy(empty) = %v, want ErrEmptyAbnormal", err)
	}
	if _, err := Greedy(cfg.Pair, []int{0}, 0.5, cfg.Tau, nil); !errors.Is(err, motion.ErrRadius) {
		t.Errorf("Greedy(bad r) = %v, want ErrRadius", err)
	}
}

// TestGreedyCounterexample documents a reproduction finding: Algorithm 1
// as stated in the paper can emit a partition violating C2 when a sparse
// block is extracted before an overlapping dense one. Lemma 2's induction
// only checks devices still present when a block is extracted.
func TestGreedyCounterexample(t *testing.T) {
	t.Parallel()

	// Devices: a=0 at 0.3, x=1 at 0.1, c=2 at 0.45, d=3 at 0.5; r=0.1,
	// τ=1. Maximal motions: {a,x} and {a,c,d}. Extracting {a,x} first
	// leaves {c,d} dense, and a is adjacent to both c and d -> C2 fails.
	prev, err := space.StateFromPoints([][]float64{{0.3}, {0.1}, {0.45}, {0.5}})
	if err != nil {
		t.Fatal(err)
	}
	pair, err := motion.NewPair(prev, prev.Clone())
	if err != nil {
		t.Fatal(err)
	}
	const r, tau = 0.1, 1
	abnormal := []int{0, 1, 2, 3}

	// Force the bad choice: seed such that greedy picks {0,1} for device
	// 0. We search a seed deterministically rather than relying on one.
	var invalid Partition
	for seed := int64(0); seed < 64; seed++ {
		p, err := Greedy(pair, abnormal, r, tau, stats.NewRNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		if Validate(pair, p, abnormal, r, tau) != nil {
			invalid = p
			break
		}
	}
	if invalid == nil {
		t.Skip("no seed reproduced the C2 violation; geometry changed?")
	}
	err = Validate(pair, invalid, abnormal, r, tau)
	if !errors.Is(err, ErrC2) {
		t.Errorf("counterexample validation = %v, want ErrC2", err)
	}

	// GreedyValidated repairs it.
	p, err := GreedyValidated(pair, abnormal, r, tau, stats.NewRNG(1), 50)
	if err != nil {
		t.Fatalf("GreedyValidated failed: %v", err)
	}
	if err := Validate(pair, p, abnormal, r, tau); err != nil {
		t.Errorf("validated partition still invalid: %v", err)
	}
}

// TestGreedyValidatedRandom checks on random configurations that
// GreedyValidated always lands on a valid anomaly partition.
func TestGreedyValidatedRandom(t *testing.T) {
	t.Parallel()

	rng := stats.NewRNG(505)
	for trial := 0; trial < 25; trial++ {
		n := 6 + rng.Intn(10)
		pair := randomPairT(t, rng, n, 2, 0.25)
		const r, tau = 0.05, 2
		p, err := GreedyValidated(pair, allIdsN(n), r, tau, rng.Split(), 200)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := Validate(pair, p, allIdsN(n), r, tau); err != nil {
			t.Fatalf("trial %d: invalid partition %v: %v", trial, p, err)
		}
	}
}

func randomPairT(t testing.TB, rng *stats.RNG, n, d int, side float64) *motion.Pair {
	t.Helper()
	prev, err := space.NewState(n, d)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := space.NewState(n, d)
	if err != nil {
		t.Fatal(err)
	}
	prev.Uniform(func() float64 { return rng.Float64() * side })
	cur.Uniform(func() float64 { return rng.Float64() * side })
	pair, err := motion.NewPair(prev, cur)
	if err != nil {
		t.Fatal(err)
	}
	return pair
}

func allIdsN(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

func TestPartitionHelpers(t *testing.T) {
	t.Parallel()

	p := Partition{{3, 1}, {2}}
	p.Canonical()
	if !sets.EqualInts(p[0], []int{1, 3}) && !sets.EqualInts(p[0], []int{2}) {
		t.Errorf("Canonical() = %v", p)
	}
	if b := p.BlockOf(2); !sets.EqualInts(b, []int{2}) {
		t.Errorf("BlockOf(2) = %v", b)
	}
	if p.BlockOf(9) != nil {
		t.Error("BlockOf(missing) must be nil")
	}
	q := Partition{{1, 3}, {2}}.Canonical()
	if !p.Equal(q) {
		t.Errorf("%v must equal %v", p, q)
	}
	if p.Equal(Partition{{1, 3}}) {
		t.Error("different partitions must not be equal")
	}
	if p.Equal(Partition{{1, 3}, {4}}) {
		t.Error("different blocks must not be equal")
	}
}
