package partition

import (
	"fmt"

	"anomalia/internal/motion"
	"anomalia/internal/sets"
	"anomalia/internal/stats"
)

// Greedy runs the paper's Algorithm 1: repeatedly take a device j from the
// remaining abnormal set, extract one maximal r-consistent motion of the
// remaining set containing j, and emit it as a block. rng drives both the
// choice of j and the choice among j's maximal motions; a nil rng takes
// the deterministic first choice everywhere.
//
// Note (reproduction finding): Lemma 2 claims the result is always an
// anomaly partition, but its induction only rules out extensions of a
// dense block by devices still present when the block was extracted. A
// sparse block extracted *before* a dense one can violate C2 (see
// TestGreedyCounterexample). GreedyValidated retries with fresh randomness
// until Validate accepts.
func Greedy(pair *motion.Pair, abnormal []int, r float64, tau int, rng *stats.RNG) (Partition, error) {
	_ = tau // Algorithm 1 itself never consults τ; kept for symmetry.
	remaining := sets.Canon(sets.CloneInts(abnormal))
	if len(remaining) == 0 {
		return nil, ErrEmptyAbnormal
	}
	if err := motion.ValidateRadius(r); err != nil {
		return nil, err
	}
	var out Partition
	for len(remaining) > 0 {
		j := remaining[0]
		if rng != nil {
			j = remaining[rng.Intn(len(remaining))]
		}
		g := motion.NewGraph(pair, remaining, r)
		fam := g.MaximalMotionsContaining(j)
		if len(fam) == 0 {
			// Cannot happen: {j} is always a motion, so some maximal
			// motion contains j.
			return nil, fmt.Errorf("device %d has no maximal motion: %w", j, ErrNotMotion)
		}
		block := fam[0]
		if rng != nil {
			block = fam[rng.Intn(len(fam))]
		}
		out = append(out, sets.CloneInts(block))
		remaining = sets.DiffInts(remaining, block)
	}
	return out.Canonical(), nil
}

// GreedyValidated runs Greedy until the result passes Validate, up to
// maxTries attempts (deterministic first try when rng is nil, then random
// retries). It returns ErrSearchSpace when no valid partition was found
// within the budget; Lemma 2 guarantees one exists, so a handful of tries
// almost always suffices.
func GreedyValidated(pair *motion.Pair, abnormal []int, r float64, tau int, rng *stats.RNG, maxTries int) (Partition, error) {
	if maxTries <= 0 {
		maxTries = 1
	}
	if rng == nil {
		rng = stats.NewRNG(0)
	}
	var lastErr error
	for try := 0; try < maxTries; try++ {
		p, err := Greedy(pair, abnormal, r, tau, rng)
		if err != nil {
			return nil, err
		}
		if err := Validate(pair, p, abnormal, r, tau); err == nil {
			return p, nil
		} else {
			lastErr = err
		}
	}
	return nil, fmt.Errorf("no valid partition in %d tries (last: %v): %w", maxTries, lastErr, ErrSearchSpace)
}
