package partition

import (
	"errors"
	"testing"

	"anomalia/internal/motion"
	"anomalia/internal/paperfig"
	"anomalia/internal/sets"
	"anomalia/internal/space"
	"anomalia/internal/stats"
)

func TestEnumerateAllFigure3(t *testing.T) {
	t.Parallel()

	cfg := mustFigure(t, paperfig.Figure3)
	all, err := EnumerateAll(cfg.Pair, cfg.Abnormal, cfg.R, cfg.Tau, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly the two partitions from the impossibility proof.
	if len(all) != 2 {
		t.Fatalf("found %d partitions, want 2: %v", len(all), all)
	}
	for _, want := range paperfig.Figure3Partitions() {
		found := false
		for _, got := range all {
			if got.Equal(Partition(want).Canonical()) {
				found = true
			}
		}
		if !found {
			t.Errorf("paper partition %v not enumerated", want)
		}
	}
}

func TestEnumerateAllFigure5(t *testing.T) {
	t.Parallel()

	cfg := mustFigure(t, paperfig.Figure5)
	all, err := EnumerateAll(cfg.Pair, cfg.Abnormal, cfg.R, cfg.Tau, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("found %d partitions, want 2: %v", len(all), all)
	}
	for _, want := range paperfig.Figure5Partitions() {
		found := false
		for _, got := range all {
			if got.Equal(Partition(want).Canonical()) {
				found = true
			}
		}
		if !found {
			t.Errorf("paper partition %v not enumerated", want)
		}
	}
}

func TestEnumerateAllValidates(t *testing.T) {
	t.Parallel()

	// Every enumerated partition must pass Validate, and every valid
	// partition produced by randomized greedy must be enumerated.
	rng := stats.NewRNG(808)
	for trial := 0; trial < 15; trial++ {
		n := 5 + rng.Intn(5)
		pair := randomPairT(t, rng, n, 2, 0.2)
		const r, tau = 0.06, 2
		all, err := EnumerateAll(pair, allIdsN(n), r, tau, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(all) == 0 {
			t.Fatalf("trial %d: no anomaly partition found (Lemma 2 violated)", trial)
		}
		for _, p := range all {
			if err := Validate(pair, p, allIdsN(n), r, tau); err != nil {
				t.Fatalf("trial %d: enumerated partition %v invalid: %v", trial, p, err)
			}
		}
		for g := 0; g < 10; g++ {
			p, err := Greedy(pair, allIdsN(n), r, tau, rng.Split())
			if err != nil {
				t.Fatal(err)
			}
			if Validate(pair, p, allIdsN(n), r, tau) != nil {
				continue // the documented Algorithm 1 edge case
			}
			found := false
			for _, q := range all {
				if q.Equal(p) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("trial %d: valid greedy partition %v missing from enumeration %v", trial, p, all)
			}
		}
	}
}

func TestEnumerateBudget(t *testing.T) {
	t.Parallel()

	rng := stats.NewRNG(3)
	pair := randomPairT(t, rng, 12, 2, 0.1)
	_, err := EnumerateAll(pair, allIdsN(12), 0.06, 2, 5)
	if !errors.Is(err, ErrSearchSpace) {
		t.Errorf("tiny budget error = %v, want ErrSearchSpace", err)
	}
	if err := ForEachPartition(pair, nil, 0.06, 2, 0, func(Partition) bool { return true }); !errors.Is(err, ErrEmptyAbnormal) {
		t.Errorf("empty abnormal error = %v", err)
	}
	if err := ForEachPartition(pair, allIdsN(3), 0.9, 2, 0, func(Partition) bool { return true }); !errors.Is(err, motion.ErrRadius) {
		t.Errorf("bad radius error = %v", err)
	}
}

func TestForEachPartitionEarlyStop(t *testing.T) {
	t.Parallel()

	cfg := mustFigure(t, paperfig.Figure3)
	calls := 0
	err := ForEachPartition(cfg.Pair, cfg.Abnormal, cfg.R, cfg.Tau, 0, func(Partition) bool {
		calls++
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("early stop made %d calls, want 1", calls)
	}
}

func TestOraclePaperFigures(t *testing.T) {
	t.Parallel()

	figs, err := paperfig.All()
	if err != nil {
		t.Fatal(err)
	}
	for name, cfg := range figs {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			res, err := Oracle(cfg.Pair, cfg.Abnormal, cfg.R, cfg.Tau, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !sets.EqualInts(res.Massive, cfg.Massive) {
				t.Errorf("Massive = %v, want %v", res.Massive, cfg.Massive)
			}
			if !sets.EqualInts(res.Isolated, cfg.Isolated) {
				t.Errorf("Isolated = %v, want %v", res.Isolated, cfg.Isolated)
			}
			if !sets.EqualInts(res.Unresolved, cfg.Unresolved) {
				t.Errorf("Unresolved = %v, want %v", res.Unresolved, cfg.Unresolved)
			}
			if res.Partitions < 1 {
				t.Error("Lemma 2: at least one partition must exist")
			}
		})
	}
}

func TestOracleClassOf(t *testing.T) {
	t.Parallel()

	res := OracleResult{Massive: []int{1}, Isolated: []int{2}, Unresolved: []int{3}}
	tests := []struct {
		j    int
		want string
	}{{1, "M"}, {2, "I"}, {3, "U"}, {4, ""}}
	for _, tt := range tests {
		if got := res.ClassOf(tt.j); got != tt.want {
			t.Errorf("ClassOf(%d) = %q, want %q", tt.j, got, tt.want)
		}
	}
}

// TestOracleSingletons: with every device far apart, all anomalies are
// isolated and there is exactly one partition (all singletons).
func TestOracleSingletons(t *testing.T) {
	t.Parallel()

	coords := [][]float64{{0.1}, {0.4}, {0.7}, {0.95}}
	pair := pairFromCoords(t, coords)
	res, err := Oracle(pair, []int{0, 1, 2, 3}, 0.05, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partitions != 1 {
		t.Errorf("Partitions = %d, want 1", res.Partitions)
	}
	if !sets.EqualInts(res.Isolated, []int{0, 1, 2, 3}) {
		t.Errorf("Isolated = %v", res.Isolated)
	}
	if len(res.Massive) != 0 || len(res.Unresolved) != 0 {
		t.Errorf("unexpected massive/unresolved: %v %v", res.Massive, res.Unresolved)
	}
}

// TestOracleTauExtremes: with τ >= |A_k| no block can be dense, so every
// device is isolated.
func TestOracleTauExtremes(t *testing.T) {
	t.Parallel()

	cfg := mustFigure(t, paperfig.Figure3)
	res, err := Oracle(cfg.Pair, cfg.Abnormal, cfg.R, len(cfg.Abnormal), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Isolated) != len(cfg.Abnormal) {
		t.Errorf("with huge τ all devices must be isolated, got %+v", res)
	}
}

func pairFromCoords(t testing.TB, coords [][]float64) *motion.Pair {
	t.Helper()
	prev, err := space.StateFromPoints(coords)
	if err != nil {
		t.Fatal(err)
	}
	pair, err := motion.NewPair(prev, prev.Clone())
	if err != nil {
		t.Fatal(err)
	}
	return pair
}
