package dist

import (
	"errors"
	"hash/fnv"
	"sort"
	"testing"

	"anomalia/internal/grid"
	"anomalia/internal/motion"
	"anomalia/internal/scenario"
	"anomalia/internal/sets"
	"anomalia/internal/space"
	"anomalia/internal/stats"
)

// window generates one seeded observation window with ground truth.
func genWindow(t testing.TB, cfg scenario.Config) *scenario.Step {
	t.Helper()
	gen, err := scenario.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	step, err := gen.Step()
	if err != nil {
		t.Fatal(err)
	}
	if len(step.Abnormal) == 0 {
		t.Fatal("window has no abnormal devices")
	}
	return step
}

// pairOf builds a Pair directly from coordinate rows.
func pairOf(t *testing.T, prev, cur [][]float64) *motion.Pair {
	t.Helper()
	ps, err := space.StateFromPoints(prev)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := space.StateFromPoints(cur)
	if err != nil {
		t.Fatal(err)
	}
	pair, err := motion.NewPair(ps, cs)
	if err != nil {
		t.Fatal(err)
	}
	return pair
}

// TestViewMatchesBruteForce: the sharded, cached lookup must return
// exactly the devices within 4r at both window endpoints — the set the
// brute-force scan finds.
func TestViewMatchesBruteForce(t *testing.T) {
	t.Parallel()

	const r = 0.03
	for _, concomitant := range []bool{false, true} {
		step := genWindow(t, scenario.Config{
			N: 400, D: 2, R: r, Tau: 3, A: 20, G: 0.3,
			Concomitant: concomitant, MaxShift: 2 * r, Seed: 11,
		})
		dir, err := NewDirectory(step.Pair, step.Abnormal, r)
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range step.Abnormal {
			got, st, err := dir.View(j)
			if err != nil {
				t.Fatal(err)
			}
			var want []int
			for _, i := range step.Abnormal {
				if step.Pair.Prev.Dist(i, j) <= 4*r && step.Pair.Cur.Dist(i, j) <= 4*r {
					want = append(want, i)
				}
			}
			if !sets.EqualInts(got, want) {
				t.Fatalf("device %d: view %v != brute force %v", j, got, want)
			}
			if st.ViewSize != len(got) || st.Trajectories != len(got)-1 {
				t.Fatalf("device %d: stats %+v inconsistent with view of %d", j, st, len(got))
			}
			if st.Messages < 2 {
				t.Fatalf("device %d: %d messages, want >= 2 (request + own shard)", j, st.Messages)
			}
		}
	}
}

// TestViewStatsStable: refetching the same view (cache hit) must bill
// the same logical cost — stats never depend on cache state.
func TestViewStatsStable(t *testing.T) {
	t.Parallel()

	const r = 0.03
	step := genWindow(t, scenario.Config{
		N: 300, D: 2, R: r, Tau: 3, A: 10, G: 0.5,
		Concomitant: true, MaxShift: 2 * r, Seed: 5,
	})
	dir, err := NewDirectory(step.Pair, step.Abnormal, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range step.Abnormal {
		_, first, err := dir.View(j)
		if err != nil {
			t.Fatal(err)
		}
		_, again, err := dir.View(j)
		if err != nil {
			t.Fatal(err)
		}
		if first != again {
			t.Fatalf("device %d: stats changed across calls: %+v then %+v", j, first, again)
		}
	}
}

// TestBlockCacheShared: devices in the same cell share one cached block,
// so a compact massive event costs one block build, not one per device.
func TestBlockCacheShared(t *testing.T) {
	t.Parallel()

	const n = 12
	prev := make([][]float64, n)
	cur := make([][]float64, n)
	for i := range prev {
		// All devices inside one ball of radius r around (0.5, 0.5),
		// moved coherently to (0.2, 0.2): one massive event.
		eps := 0.001 * float64(i)
		prev[i] = []float64{0.5 + eps, 0.5 - eps}
		cur[i] = []float64{0.2 + eps, 0.2 - eps}
	}
	pair := pairOf(t, prev, cur)
	abnormal := make([]int, n)
	for i := range abnormal {
		abnormal[i] = i
	}
	dir, err := NewDirectory(pair, abnormal, 0.06)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range abnormal {
		if _, _, err := dir.View(j); err != nil {
			t.Fatal(err)
		}
	}
	built, hits := dir.CacheStats()
	if built > 2 {
		t.Errorf("co-located devices built %d blocks, want <= 2", built)
	}
	if hits < int64(n)-built {
		t.Errorf("expected >= %d cache hits, got %d", int64(n)-built, hits)
	}
}

// TestBlockStrategiesAgree: the direct neighbour-cell lookup and the
// occupied-cell scan must produce identical blocks — candidates and
// shard fan-out — for every occupied center cell.
func TestBlockStrategiesAgree(t *testing.T) {
	t.Parallel()

	const r = 0.03
	step := genWindow(t, scenario.Config{
		N: 400, D: 2, R: r, Tau: 3, A: 30, G: 0.7,
		Concomitant: true, MaxShift: 2 * r, Seed: 19,
	})
	dir, err := NewDirectory(step.Pair, step.Abnormal, r)
	if err != nil {
		t.Fatal(err)
	}
	w := dir.win.Load()
	for _, j := range step.Abnormal {
		center := dir.geom.Coords(step.Pair.Prev.At(j), nil)
		var lookup, scan block
		dir.lookupBlock(w, center, &lookup)
		dir.scanBlock(w, center, &scan)
		sort.Ints(lookup.cands)
		sort.Ints(scan.cands)
		if !sets.EqualInts(lookup.cands, scan.cands) {
			t.Fatalf("device %d: lookup candidates %v != scan candidates %v",
				j, lookup.cands, scan.cands)
		}
		if lookup.shards != scan.shards {
			t.Fatalf("device %d: lookup fan-out %d != scan fan-out %d", j, lookup.shards, scan.shards)
		}
	}
}

// TestDirectoryErrors covers the rejection paths.
func TestDirectoryErrors(t *testing.T) {
	t.Parallel()

	pair := pairOf(t,
		[][]float64{{0.1, 0.1}, {0.9, 0.9}},
		[][]float64{{0.1, 0.1}, {0.9, 0.9}})

	if _, err := NewDirectory(nil, nil, 0.06); !errors.Is(err, ErrConfig) {
		t.Errorf("nil pair: got %v, want ErrConfig", err)
	}
	if _, err := NewDirectory(pair, []int{0}, 0.3); !errors.Is(err, ErrConfig) {
		t.Errorf("radius outside [0, 1/4): got %v, want ErrConfig", err)
	}
	if _, err := NewDirectory(pair, []int{0}, -0.1); !errors.Is(err, ErrConfig) {
		t.Errorf("negative radius: got %v, want ErrConfig", err)
	}
	if dir, err := NewDirectory(pair, []int{0, 1}, 0); err != nil {
		t.Errorf("r = 0 must build a degenerate single-cell directory: %v", err)
	} else if view, _, err := dir.View(0); err != nil || len(view) != 1 || view[0] != 0 {
		t.Errorf("r = 0 view must be the coincident devices only, got %v (%v)", view, err)
	}
	if _, err := NewDirectory(pair, []int{0, 7}, 0.06); !errors.Is(err, ErrConfig) {
		t.Errorf("out-of-range id: got %v, want ErrConfig", err)
	}
	dir, err := NewDirectory(pair, []int{0}, 0.06)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := dir.View(1); !errors.Is(err, ErrUnknownDevice) {
		t.Errorf("unindexed device: got %v, want ErrUnknownDevice", err)
	}
}

// TestEmptyDirectory: an empty abnormal set builds an empty but usable
// directory (the streaming path may see windows with no abnormal device).
func TestEmptyDirectory(t *testing.T) {
	t.Parallel()

	pair := pairOf(t, [][]float64{{0.5, 0.5}}, [][]float64{{0.5, 0.5}})
	dir, err := NewDirectory(pair, nil, 0.06)
	if err != nil {
		t.Fatal(err)
	}
	if got := dir.Abnormal(); len(got) != 0 {
		t.Errorf("empty directory indexes %v", got)
	}
}

// TestShardOfCoordsMatchesFNV pins the inlined shard hash byte-identical
// to hash/fnv over the collision-free key encoding — the assignment the
// reproducible Stats.Messages tables stand on.
func TestShardOfCoordsMatchesFNV(t *testing.T) {
	t.Parallel()

	rng := stats.NewRNG(99)
	for trial := 0; trial < 2000; trial++ {
		dim := 1 + rng.Intn(space.MaxDim)
		coords := make([]int, dim)
		for i := range coords {
			coords[i] = rng.Intn(1 << 30)
		}
		h := fnv.New32a()
		h.Write([]byte(grid.Key(coords)))
		want := int(h.Sum32() % numShards)
		if got := shardOfCoords(coords); got != want {
			t.Fatalf("shardOfCoords(%v) = %d, fnv says %d", coords, got, want)
		}
	}
}

// TestNewDirectoryAllocs pins the slab-allocated build: indexing a
// window's abnormal set is a handful of allocations bounded by a small
// constant, not by the occupied-cell count (the map-based index it
// replaced paid one map entry, cell struct, coords slice and id-list
// growth per cell).
func TestNewDirectoryAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is slow under -short")
	}
	const r = 0.01
	step := genWindow(t, scenario.Config{
		N: 10000, D: 2, R: r, Tau: 3, A: 100, G: 0.3,
		Concomitant: true, MaxShift: 2 * r, Seed: 4242,
	})
	got := testing.AllocsPerRun(10, func() {
		if _, err := NewDirectory(step.Pair, step.Abnormal, r); err != nil {
			t.Fatal(err)
		}
	})
	if limit := 32.0; got > limit {
		t.Errorf("NewDirectory allocates %.0f times for %d abnormal devices, want <= %.0f",
			got, len(step.Abnormal), limit)
	}
}
