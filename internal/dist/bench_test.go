package dist

import (
	"math"
	"testing"

	"anomalia/internal/core"
	"anomalia/internal/motion"
	"anomalia/internal/scenario"
	"anomalia/internal/sets"
	"anomalia/internal/space"
	"anomalia/internal/stats"
)

// benchConfigs are the two fleet scales the perf trajectory tracks: the
// paper's operating point and 10x, with the radius shrunk per the
// Section VII-A dimensioning rule so local density stays at the paper's
// level.
var benchConfigs = []struct {
	name string
	cfg  scenario.Config
}{
	{"n=1k", scenario.Config{
		N: 1000, D: 2, R: 0.03, Tau: 3, A: 20, G: 0.3,
		Concomitant: true, MaxShift: 0.06, Seed: 42,
	}},
	{"n=10k", scenario.Config{
		N: 10000, D: 2, R: 0.01, Tau: 3, A: 100, G: 0.3,
		Concomitant: true, MaxShift: 0.02, Seed: 4242,
	}},
}

// BenchmarkDirectoryBuild measures indexing one window's abnormal set
// into the sharded directory.
func BenchmarkDirectoryBuild(b *testing.B) {
	for _, bc := range benchConfigs {
		b.Run(bc.name, func(b *testing.B) {
			step := genWindow(b, bc.cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := NewDirectory(step.Pair, step.Abnormal, bc.cfg.R); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDistDecide measures the distributed hot path: every abnormal
// device of a window deciding on its fetched 4r view (batched, warm
// block cache after the first iteration — the steady serving state).
func BenchmarkDistDecide(b *testing.B) {
	for _, bc := range benchConfigs {
		b.Run(bc.name, func(b *testing.B) {
			step := genWindow(b, bc.cfg)
			dir, err := NewDirectory(step.Pair, step.Abnormal, bc.cfg.R)
			if err != nil {
				b.Fatal(err)
			}
			coreCfg := core.Config{R: bc.cfg.R, Tau: bc.cfg.Tau, Exact: true}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := DecideAll(dir, coreCfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// advanceBenchCase builds one synthetic churn-sweep window pair at the
// given movement model. Devices are all abnormal; the radius is
// dimensioned so cells hold ~12 devices at every scale, keeping the
// per-cell work comparable across n.
//
// "clustered" is the paper's workload (restriction R2: an error
// displaces a group of devices confined to an r-ball): devices live in
// 200-strong clusters and churn moves whole clusters to new locations,
// so the churned cells stay compact however many devices move — this is
// the regime the incremental directory is built for. "uniform" scatters
// both the devices and the churn independently — the worst case for the
// delta path, every moved device churning two unrelated cells.
func advanceBenchCase(b *testing.B, n int, churn float64, clustered bool) (pairA, pairB *motion.Pair, ids, moved []int, r float64) {
	b.Helper()
	res := int(math.Sqrt(float64(n) / 12))
	r = 1 / (2 * float64(res))
	rng := stats.NewRNG(int64(n) + int64(churn*1e6))
	sa, err := space.NewState(n, 2)
	if err != nil {
		b.Fatal(err)
	}
	ids = make([]int, n)
	for j := range ids {
		ids[j] = j
	}
	if clustered {
		const clusterSize = 200
		place := func(st *space.State, lo, hi int) {
			cx, cy := rng.Float64(), rng.Float64()
			for j := lo; j < hi; j++ {
				pt := space.Point{
					cx + (rng.Float64()-0.5)*2*r,
					cy + (rng.Float64()-0.5)*2*r,
				}
				if err := st.Set(j, pt); err != nil {
					b.Fatal(err)
				}
			}
		}
		for lo := 0; lo < n; lo += clusterSize {
			place(sa, lo, min(lo+clusterSize, n))
		}
		sb := sa.Clone()
		// Move exactly churn*n devices as whole-cluster events (the last
		// event may displace a partial cluster so small churn fractions
		// stay exact), drawing clusters without replacement.
		budget := int(churn * float64(n))
		clusters := rng.Perm(n / clusterSize)
		for _, c := range clusters {
			if budget <= 0 {
				break
			}
			lo := c * clusterSize
			hi := min(lo+min(clusterSize, budget), n)
			place(sb, lo, hi)
			for j := lo; j < hi; j++ {
				moved = append(moved, j)
			}
			budget -= hi - lo
		}
		moved = sets.Canon(moved)
		pairA, err = motion.NewPair(sa, sa)
		if err != nil {
			b.Fatal(err)
		}
		pairB, err = motion.NewPair(sb, sb)
		if err != nil {
			b.Fatal(err)
		}
		return pairA, pairB, ids, moved, r
	}
	sa.Uniform(rng.Float64)
	sb := sa.Clone()
	for k := 0; k < int(churn*float64(n)); k++ {
		j := rng.Intn(n)
		if err := sb.Set(j, space.Point{rng.Float64(), rng.Float64()}); err != nil {
			b.Fatal(err)
		}
		moved = append(moved, j)
	}
	moved = sets.Canon(moved)
	pairA, err = motion.NewPair(sa, sa)
	if err != nil {
		b.Fatal(err)
	}
	pairB, err = motion.NewPair(sb, sb)
	if err != nil {
		b.Fatal(err)
	}
	return pairA, pairB, ids, moved, r
}

var churnSweep = []struct {
	name string
	n    int
	frac float64
}{
	{"n=10k", 10000, 0},
	{"n=100k", 100000, 0},
	{"n=1M", 1000000, 0},
}

var churnFracs = []struct {
	name string
	frac float64
}{
	{"churn=0.1%", 0.001},
	{"churn=1%", 0.01},
	{"churn=10%", 0.1},
}

// BenchmarkDirectoryAdvance measures the incremental cross-window path:
// one Advance per iteration, alternating between the two window states
// so every iteration patches the same churn fraction. Compare against
// BenchmarkDirectoryRebuild at the same n for the incremental-vs-rebuild
// speedup the BENCH_*.json trajectory records; BenchmarkDirectoryAdvanceFull
// is the same advance without the delta feed (every id's cell rechecked).
func BenchmarkDirectoryAdvance(b *testing.B) {
	for _, mode := range []string{"clustered", "uniform"} {
		for _, sc := range churnSweep {
			for _, cf := range churnFracs {
				b.Run(mode+"/"+sc.name+"/"+cf.name, func(b *testing.B) {
					pairA, pairB, ids, moved, r := advanceBenchCase(b, sc.n, cf.frac, mode == "clustered")
					dir, err := NewDirectory(pairA, ids, r)
					if err != nil {
						b.Fatal(err)
					}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						pair := pairB
						if i%2 == 1 {
							pair = pairA
						}
						st, err := dir.Advance(pair, ids, moved)
						if err != nil {
							b.Fatal(err)
						}
						if st.Rebuilt {
							b.Fatalf("churn %s unexpectedly rebuilt", cf.name)
						}
					}
				})
			}
		}
	}
}

// BenchmarkDirectoryRebuild is the from-scratch baseline the advance
// path competes with: one full NewDirectory per iteration at the same
// scales, geometry and placement models.
func BenchmarkDirectoryRebuild(b *testing.B) {
	for _, mode := range []string{"clustered", "uniform"} {
		for _, sc := range churnSweep {
			b.Run(mode+"/"+sc.name, func(b *testing.B) {
				pairA, _, ids, _, r := advanceBenchCase(b, sc.n, 0.01, mode == "clustered")
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := NewDirectory(pairA, ids, r); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkDirectoryAdvanceFull is the conservative advance — no delta
// feed, every indexed id's cell rechecked from its position (the
// in-process Monitor's path). Still sort-free, so it beats the rebuild,
// but the per-id recheck keeps it linear in n however small the churn.
func BenchmarkDirectoryAdvanceFull(b *testing.B) {
	for _, sc := range churnSweep {
		b.Run(sc.name+"/churn=1%", func(b *testing.B) {
			pairA, pairB, ids, _, r := advanceBenchCase(b, sc.n, 0.01, true)
			dir, err := NewDirectory(pairA, ids, r)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pair := pairB
				if i%2 == 1 {
					pair = pairA
				}
				st, err := dir.Advance(pair, ids, nil)
				if err != nil {
					b.Fatal(err)
				}
				if st.Rebuilt {
					b.Fatal("1% churn unexpectedly rebuilt")
				}
			}
		})
	}
}
