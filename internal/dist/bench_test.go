package dist

import (
	"testing"

	"anomalia/internal/core"
	"anomalia/internal/scenario"
)

// benchConfigs are the two fleet scales the perf trajectory tracks: the
// paper's operating point and 10x, with the radius shrunk per the
// Section VII-A dimensioning rule so local density stays at the paper's
// level.
var benchConfigs = []struct {
	name string
	cfg  scenario.Config
}{
	{"n=1k", scenario.Config{
		N: 1000, D: 2, R: 0.03, Tau: 3, A: 20, G: 0.3,
		Concomitant: true, MaxShift: 0.06, Seed: 42,
	}},
	{"n=10k", scenario.Config{
		N: 10000, D: 2, R: 0.01, Tau: 3, A: 100, G: 0.3,
		Concomitant: true, MaxShift: 0.02, Seed: 4242,
	}},
}

// BenchmarkDirectoryBuild measures indexing one window's abnormal set
// into the sharded directory.
func BenchmarkDirectoryBuild(b *testing.B) {
	for _, bc := range benchConfigs {
		b.Run(bc.name, func(b *testing.B) {
			step := window(b, bc.cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := NewDirectory(step.Pair, step.Abnormal, bc.cfg.R); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDistDecide measures the distributed hot path: every abnormal
// device of a window deciding on its fetched 4r view (batched, warm
// block cache after the first iteration — the steady serving state).
func BenchmarkDistDecide(b *testing.B) {
	for _, bc := range benchConfigs {
		b.Run(bc.name, func(b *testing.B) {
			step := window(b, bc.cfg)
			dir, err := NewDirectory(step.Pair, step.Abnormal, bc.cfg.R)
			if err != nil {
				b.Fatal(err)
			}
			coreCfg := core.Config{R: bc.cfg.R, Tau: bc.cfg.Tau, Exact: true}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := DecideAll(dir, coreCfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
