package dist

import (
	"fmt"
	"math"
	"slices"
	"testing"

	"anomalia/internal/core"
	"anomalia/internal/motion"
	"anomalia/internal/sets"
	"anomalia/internal/space"
	"anomalia/internal/stats"
)

// This file pins the persistent directory: a Directory evolved by
// Advance across a window sequence must be indistinguishable — index
// slabs, shard annotations, every View and its Stats, whole DecideAll
// batches — from a Directory built fresh by NewDirectory on the same
// window. Sequences cover uniform, clustered, boundary-snapped and
// coincident movement, id churn from 0% to 100%, warm and cold block
// caches, and scrambled old states (the Monitor recycles its snapshot
// buffers, so Advance must never read the previous window's positions).

// assertDirsEqual compares the current windows of two directories piece
// by piece, then behaviourally through View.
func assertDirsEqual(t *testing.T, label string, got, want *Directory) {
	t.Helper()
	gw, ww := got.win.Load(), want.win.Load()
	if !sets.EqualInts(gw.abnormal, ww.abnormal) {
		t.Fatalf("%s: abnormal %v, want %v", label, gw.abnormal, ww.abnormal)
	}
	gc, wc := gw.index.SortedCells(), ww.index.SortedCells()
	if len(gc) != len(wc) {
		t.Fatalf("%s: %d cells, want %d", label, len(gc), len(wc))
	}
	for ci := range wc {
		if !slices.Equal(gc[ci].Coords, wc[ci].Coords) {
			t.Fatalf("%s: cell %d coords %v, want %v", label, ci, gc[ci].Coords, wc[ci].Coords)
		}
		if !slices.Equal(gc[ci].Ids, wc[ci].Ids) {
			t.Fatalf("%s: cell %d ids %v, want %v", label, ci, gc[ci].Ids, wc[ci].Ids)
		}
	}
	if !slices.Equal(gw.cellShard, ww.cellShard) {
		t.Fatalf("%s: shard annotations differ", label)
	}
	if !slices.Equal(gw.cellOf, ww.cellOf) {
		t.Fatalf("%s: id->cell records differ", label)
	}
	for _, j := range ww.abnormal {
		gv, gst, gerr := got.View(j)
		wv, wst, werr := want.View(j)
		if gerr != nil || werr != nil {
			t.Fatalf("%s: View(%d) errors %v / %v", label, j, gerr, werr)
		}
		if !sets.EqualInts(gv, wv) {
			t.Fatalf("%s: View(%d) = %v, want %v", label, j, gv, wv)
		}
		if gst != wst {
			t.Fatalf("%s: View(%d) stats %+v, want %+v", label, j, gst, wst)
		}
	}
}

// windowSeq drives an evolving window sequence through one persistent
// directory.
type windowSeq struct {
	rng       *stats.RNG
	n         int
	r         float64
	mode      string
	prev, cur *space.State
	abn       []int
	dir       *Directory
	stepNo    int
	// movedNext collects the devices displaced while building the
	// current cur state — they are the movers of the NEXT advance
	// (the directory indexes positions at pair.Prev).
	movedNext map[int]bool
}

func newWindowSeq(t *testing.T, rng *stats.RNG, n int, r float64, mode string) *windowSeq {
	t.Helper()
	prev, err := space.NewState(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	prev.Uniform(rng.Float64)
	s := &windowSeq{rng: rng, n: n, r: r, mode: mode, prev: prev, cur: prev.Clone(), movedNext: map[int]bool{}}
	for j := 0; j < n; j++ {
		if rng.Float64() < 0.3 {
			s.abn = append(s.abn, j)
		}
	}
	pair, err := motion.NewPair(s.prev, s.cur)
	if err != nil {
		t.Fatal(err)
	}
	s.dir, err = NewDirectory(pair, s.abn, r)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// move gives device j a new position according to the sequence's mode.
func (s *windowSeq) move(t *testing.T, st *space.State, j int) {
	t.Helper()
	side := 2 * s.r
	if side <= 0 {
		side = 1
	}
	pt := make(space.Point, 2)
	switch s.mode {
	case "clustered":
		anchor := st.At(s.rng.Intn(s.n))
		for i := range pt {
			pt[i] = math.Min(1, math.Max(0, anchor[i]+(s.rng.Float64()-0.5)*4*side))
		}
	case "boundary":
		res := int(math.Ceil(1 / side))
		for i := range pt {
			pt[i] = math.Min(1, float64(s.rng.Intn(res+1))*side)
		}
	case "coincident":
		copy(pt, st.At(s.rng.Intn(s.n)))
	default:
		for i := range pt {
			pt[i] = s.rng.Float64()
		}
	}
	if err := st.Set(j, pt); err != nil {
		t.Fatal(err)
	}
}

// advance rolls the sequence one window forward — moveFrac of the
// population moves, churnFrac of the abnormal set swaps — advances the
// persistent directory, and returns the advance stats together with a
// freshly built reference directory for the same window. Every other
// advance feeds the honest moved list (the delta stream a deployed
// directory receives); the rest pass nil and recheck everything.
func (s *windowSeq) advance(t *testing.T, moveFrac, churnFrac float64) (AdvanceStats, *Directory) {
	t.Helper()
	old := s.prev
	s.prev = s.cur
	s.cur = s.prev.Clone()
	movedPrev := s.movedNext
	s.movedNext = map[int]bool{}
	for k := 0; k < int(moveFrac*float64(s.n)); k++ {
		j := s.rng.Intn(s.n)
		s.move(t, s.cur, j)
		s.movedNext[j] = true
	}

	abn := slices.Clone(s.abn)
	churn := int(churnFrac * float64(len(abn)))
	for k := 0; k < churn && len(abn) > 1; k++ {
		p := s.rng.Intn(len(abn))
		abn = slices.Delete(abn, p, p+1)
	}
	for k := 0; k < churn; k++ {
		j := s.rng.Intn(s.n)
		if p, ok := slices.BinarySearch(abn, j); !ok {
			abn = slices.Insert(abn, p, j)
		}
	}
	s.abn = abn

	pair, err := motion.NewPair(s.prev, s.cur)
	if err != nil {
		t.Fatal(err)
	}
	var moved []int
	s.stepNo++
	if s.stepNo%2 == 1 {
		for j := range movedPrev {
			moved = append(moved, j)
		}
		moved = sets.Canon(moved)
		if moved == nil {
			moved = []int{} // empty, not nil: "nothing moved" is a valid feed
		}
	}
	st, err := s.dir.Advance(pair, abn, moved)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewDirectory(pair, abn, s.r)
	if err != nil {
		t.Fatal(err)
	}
	// The state displaced by this window is dead: scramble it, like the
	// Monitor recycling its snapshot buffer. Nothing in the advanced
	// directory may depend on it.
	old.Uniform(s.rng.Float64)
	return st, fresh
}

// TestAdvanceMatchesFreshDirectory: the incremental-vs-rebuild parity
// property suite — across movement distributions and churn fractions
// including 0% and 100%, warm and cold caches, the advanced directory
// must match a fresh build cell for cell, view for view, stat for stat.
func TestAdvanceMatchesFreshDirectory(t *testing.T) {
	t.Parallel()

	rng := stats.NewRNG(20260730)
	churns := []struct{ move, churn float64 }{
		{0, 0}, {0.02, 0}, {0, 0.05}, {0.05, 0.02}, {0.2, 0.1}, {1, 1},
	}
	for _, mode := range []string{"uniform", "clustered", "boundary", "coincident"} {
		s := newWindowSeq(t, rng, 300, 0.03, mode)
		for step, ch := range churns {
			// Warm some block caches before every other advance, so the
			// carry-over path is exercised with both cold and warm blocks.
			if step%2 == 1 {
				for _, j := range s.dir.Abnormal() {
					if _, _, err := s.dir.View(j); err != nil {
						t.Fatal(err)
					}
				}
			}
			st, fresh := s.advance(t, ch.move, ch.churn)
			label := fmt.Sprintf("%s step %d (move=%v churn=%v rebuilt=%v)",
				mode, step, ch.move, ch.churn, st.Rebuilt)
			assertDirsEqual(t, label, s.dir, fresh)
		}
	}
}

// TestAdvanceDecideAllParity: whole decision batches over an advanced
// directory must equal the fresh build's — verdicts, rules, per-device
// bills and summed totals.
func TestAdvanceDecideAllParity(t *testing.T) {
	t.Parallel()

	rng := stats.NewRNG(31415)
	coreCfg := core.Config{R: 0.03, Tau: 3, Exact: true}
	s := newWindowSeq(t, rng, 250, 0.03, "clustered")
	for step := 0; step < 4; step++ {
		_, fresh := s.advance(t, 0.1, 0.05)
		got, gotTotal, err := DecideAll(s.dir, coreCfg)
		if err != nil {
			t.Fatal(err)
		}
		want, wantTotal, err := DecideAll(fresh, coreCfg)
		if err != nil {
			t.Fatal(err)
		}
		if gotTotal != wantTotal {
			t.Fatalf("step %d: total %+v, want %+v", step, gotTotal, wantTotal)
		}
		if len(got) != len(want) {
			t.Fatalf("step %d: %d decisions, want %d", step, len(got), len(want))
		}
		for i := range want {
			if got[i].Result.Device != want[i].Result.Device ||
				got[i].Result.Class != want[i].Result.Class ||
				got[i].Result.Rule != want[i].Result.Rule ||
				got[i].Stats != want[i].Stats {
				t.Fatalf("step %d decision %d: %+v != %+v", step, i, got[i], want[i])
			}
		}
	}
}

// TestAdvanceRetainsWarmBlocks: with zero churn every warmed block must
// survive the advance; with a localized move only the caches within the
// churned cells' 4r reach may go cold.
func TestAdvanceRetainsWarmBlocks(t *testing.T) {
	t.Parallel()

	rng := stats.NewRNG(808)
	s := newWindowSeq(t, rng, 300, 0.03, "uniform")
	for _, j := range s.dir.Abnormal() {
		if _, _, err := s.dir.View(j); err != nil {
			t.Fatal(err)
		}
	}
	w := s.dir.win.Load()
	warmed := 0
	for ci := range w.blocks {
		if w.blocks[ci].Load() != nil {
			warmed++
		}
	}
	if warmed == 0 {
		t.Fatal("no blocks warmed")
	}

	// Identical window: nothing churns, everything stays warm.
	st, fresh := s.advance(t, 0, 0)
	if st.Rebuilt || st.Churned() != 0 {
		t.Fatalf("zero-churn advance: %+v", st)
	}
	if st.RetainedBlocks != warmed {
		t.Errorf("retained %d blocks, want all %d", st.RetainedBlocks, warmed)
	}
	assertDirsEqual(t, "zero churn", s.dir, fresh)

	built0, _ := s.dir.CacheStats()
	for _, j := range s.dir.Abnormal() {
		if _, _, err := s.dir.View(j); err != nil {
			t.Fatal(err)
		}
	}
	if built1, _ := s.dir.CacheStats(); built1 != built0 {
		t.Errorf("re-viewing after a zero-churn advance rebuilt %d blocks", built1-built0)
	}

	// One abnormal device moves cells: only its neighbourhood may go
	// cold. The move is applied to the next window's k-1 state (what the
	// directory indexes) and fed to Advance as the moved list.
	for _, j := range s.dir.Abnormal() {
		if _, _, err := s.dir.View(j); err != nil {
			t.Fatal(err)
		}
	}
	mover := s.dir.Abnormal()[0]
	newPrev := s.cur
	if err := newPrev.Set(mover, space.Point{0.512, 0.512}); err != nil {
		t.Fatal(err)
	}
	newCur := newPrev.Clone()
	s.prev, s.cur = newPrev, newCur
	pair, err := motion.NewPair(newPrev, newCur)
	if err != nil {
		t.Fatal(err)
	}
	st, err = s.dir.Advance(pair, s.abn, []int{mover})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err = NewDirectory(pair, s.abn, s.r)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rebuilt {
		t.Fatalf("single move rebuilt: %+v", st)
	}
	if st.MovedIds != 1 {
		t.Fatalf("expected exactly one moved id, got %+v", st)
	}
	if st.RetainedBlocks == 0 {
		t.Errorf("localized move dropped every warm block: %+v", st)
	}
	assertDirsEqual(t, "single move", s.dir, fresh)
}

// Churned sums the id-level churn of an advance (test helper mirroring
// grid.UpdateStats.Churn).
func (s AdvanceStats) Churned() int { return s.AddedIds + s.RemovedIds + s.MovedIds }

// TestAdvanceDegenerateRadius: the r = 0 single-cell geometry advances
// too — membership churn only, views stay exactly-coincident devices.
func TestAdvanceDegenerateRadius(t *testing.T) {
	t.Parallel()

	rng := stats.NewRNG(606)
	s := newWindowSeq(t, rng, 60, 0, "coincident")
	for step := 0; step < 3; step++ {
		_, fresh := s.advance(t, 0.2, 0.2)
		assertDirsEqual(t, fmt.Sprintf("r=0 step %d", step), s.dir, fresh)
	}
}

// TestAdvanceErrors: invalid windows must reject without disturbing the
// served window.
func TestAdvanceErrors(t *testing.T) {
	t.Parallel()

	rng := stats.NewRNG(123)
	s := newWindowSeq(t, rng, 50, 0.06, "uniform")
	before := s.dir.win.Load()
	if _, err := s.dir.Advance(nil, []int{1}, nil); err == nil {
		t.Error("nil pair must fail")
	}
	pair := s.dir.win.Load().pair
	if _, err := s.dir.Advance(pair, []int{-1}, nil); err == nil {
		t.Error("negative id must fail")
	}
	if _, err := s.dir.Advance(pair, []int{s.n + 5}, nil); err == nil {
		t.Error("out-of-range id must fail")
	}
	if s.dir.win.Load() != before {
		t.Error("failed Advance must leave the current window untouched")
	}
	// A failed advance must leave the directory fully serviceable.
	if _, _, err := s.dir.View(s.dir.Abnormal()[0]); err != nil {
		t.Errorf("View after failed Advance: %v", err)
	}
}

// TestAdvanceAllocs pins the incremental hot path: advancing a 12k-id
// window at ~1% churn costs a bounded handful of allocations — slab
// headers and churn-sized deltas, never a per-id or per-cell term.
func TestAdvanceAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is slow under -short")
	}
	const n = 12000
	rng := stats.NewRNG(99)
	prev, err := space.NewState(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	prev.Uniform(rng.Float64)
	next := prev.Clone()
	var movedIds []int
	for k := 0; k < n/100; k++ {
		j := rng.Intn(n)
		if err := next.Set(j, space.Point{rng.Float64(), rng.Float64()}); err != nil {
			t.Fatal(err)
		}
		movedIds = append(movedIds, j)
	}
	movedIds = sets.Canon(movedIds)
	ids := make([]int, n)
	for j := range ids {
		ids[j] = j
	}
	const r = 0.01
	pairA, err := motion.NewPair(prev, prev)
	if err != nil {
		t.Fatal(err)
	}
	pairB, err := motion.NewPair(next, next)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := NewDirectory(pairA, ids, r)
	if err != nil {
		t.Fatal(err)
	}
	flip := false
	got := testing.AllocsPerRun(10, func() {
		pair := pairB
		if flip {
			pair = pairA
		}
		flip = !flip
		st, err := dir.Advance(pair, ids, movedIds)
		if err != nil {
			t.Fatal(err)
		}
		if st.Rebuilt {
			t.Fatal("1% churn must take the delta path")
		}
	})
	if limit := 96.0; got > limit {
		t.Errorf("Advance allocates %.0f times at 1%% churn over %d ids, want <= %.0f", got, n, limit)
	}
}
