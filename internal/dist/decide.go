package dist

import (
	"fmt"
	"runtime"
	"slices"
	"sync"

	"anomalia/internal/core"
	"anomalia/internal/grid"
)

// Decide runs the local characterization for abnormal device j against
// the directory: fetch the 4r view, run core's decision procedures
// (Theorems 5-7 / Corollary 8) over that view alone, and report the
// communication bill. The verdict is identical to the omniscient one by
// the paper's locality result. The current window is snapshotted once
// at entry, so a concurrent Advance cannot tear the decision across two
// windows.
func Decide(d *Directory, j int, cfg core.Config) (core.Result, Stats, error) {
	if err := d.checkRadius(cfg); err != nil {
		return core.Result{}, Stats{}, err
	}
	w := d.win.Load()
	pos, ok := slices.BinarySearch(w.abnormal, j)
	if !ok {
		return core.Result{}, Stats{}, fmt.Errorf("device %d: %w", j, ErrUnknownDevice)
	}
	view, st := d.viewInto(w, j, pos, nil)
	c, err := core.New(w.pair, view, cfg)
	if err != nil {
		return core.Result{}, Stats{}, err
	}
	res, err := c.Characterize(j)
	if err != nil {
		return core.Result{}, Stats{}, err
	}
	return res, st, nil
}

// checkRadius rejects decision configs whose locality requirement the
// directory cannot serve: a verdict at radius R needs the full 4R
// neighbourhood, so the directory must have been built for a radius at
// least that large. Silently undersized views would break the
// "identical to the omniscient verdict" invariant.
func (d *Directory) checkRadius(cfg core.Config) error {
	if cfg.R > d.r {
		return fmt.Errorf("decision radius %v exceeds directory radius %v: %w", cfg.R, d.r, ErrConfig)
	}
	return nil
}

// Decision pairs one device's verdict with its communication bill.
type Decision struct {
	Result core.Result
	Stats  Stats
}

// DecideAll characterizes every indexed abnormal device, batching the
// work a window at a time: views are fetched through the shared block
// cache into one recycled scratch buffer (a view only materializes when
// it opens a new group), devices with identical views (the common case
// for a compact massive event) share one characterizer so each
// neighbourhood is enumerated once, and the view groups run on parallel
// workers writing disjoint slots of the result slice. Decisions come
// back in device order with the summed Stats; every per-device Result
// and Stats is identical to a standalone Decide call. The whole batch
// runs against one window snapshot taken at entry: a concurrent Advance
// never mixes two windows into one batch.
func DecideAll(d *Directory, cfg core.Config) ([]Decision, Stats, error) {
	w := d.win.Load()
	// Validate the configuration up front: the per-group characterizers
	// only exist when there are devices to decide, and an empty window
	// must reject a bad config exactly like the centralized path does.
	if _, err := core.New(w.pair, nil, cfg); err != nil {
		return nil, Stats{}, err
	}
	if err := d.checkRadius(cfg); err != nil {
		return nil, Stats{}, err
	}
	type group struct {
		view      []int
		positions []int32 // into the sorted abnormal set (= result slots)
		stats     []Stats
	}
	groups := make(map[string]*group)
	order := make([]*group, 0)
	var scratch []int
	var keyBuf []byte
	for pos, j := range w.abnormal {
		var st Stats
		scratch, st = d.viewInto(w, j, pos, scratch[:0])
		// Views are sorted id sets, so the shared grid encoding is a
		// collision-free group key; the map probe converts in place and
		// the string only materializes for a new group.
		keyBuf = grid.AppendKey(keyBuf[:0], scratch)
		g, ok := groups[string(keyBuf)]
		if !ok {
			g = &group{view: slices.Clone(scratch)}
			groups[string(keyBuf)] = g
			order = append(order, g)
		}
		g.positions = append(g.positions, int32(pos))
		g.stats = append(g.stats, st)
	}

	out := make([]Decision, len(w.abnormal))
	var mu sync.Mutex
	var firstErr error
	workers := runtime.GOMAXPROCS(0)
	if workers > len(order) {
		workers = len(order)
	}
	if workers < 1 {
		workers = 1
	}
	work := make(chan *group)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for g := range work {
				c, err := core.New(w.pair, g.view, cfg)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				for i, pos := range g.positions {
					j := w.abnormal[pos]
					res, err := c.Characterize(j)
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("device %d: %w", j, err)
						}
						mu.Unlock()
						break
					}
					out[pos] = Decision{Result: res, Stats: g.stats[i]}
				}
			}
		}()
	}
	for _, g := range order {
		work <- g
	}
	close(work)
	wg.Wait()
	if firstErr != nil {
		return nil, Stats{}, firstErr
	}

	// Positions follow sorted device ids, so out is already in device
	// order.
	var total Stats
	for _, dec := range out {
		total.Add(dec.Stats)
	}
	return out, total, nil
}
