package dist

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"anomalia/internal/core"
)

// Decide runs the local characterization for abnormal device j against
// the directory: fetch the 4r view, run core's decision procedures
// (Theorems 5-7 / Corollary 8) over that view alone, and report the
// communication bill. The verdict is identical to the omniscient one by
// the paper's locality result.
func Decide(d *Directory, j int, cfg core.Config) (core.Result, Stats, error) {
	if err := d.checkRadius(cfg); err != nil {
		return core.Result{}, Stats{}, err
	}
	view, st, err := d.View(j)
	if err != nil {
		return core.Result{}, Stats{}, err
	}
	c, err := core.New(d.pair, view, cfg)
	if err != nil {
		return core.Result{}, Stats{}, err
	}
	res, err := c.Characterize(j)
	if err != nil {
		return core.Result{}, Stats{}, err
	}
	return res, st, nil
}

// checkRadius rejects decision configs whose locality requirement the
// directory cannot serve: a verdict at radius R needs the full 4R
// neighbourhood, so the directory must have been built for a radius at
// least that large. Silently undersized views would break the
// "identical to the omniscient verdict" invariant.
func (d *Directory) checkRadius(cfg core.Config) error {
	if cfg.R > d.r {
		return fmt.Errorf("decision radius %v exceeds directory radius %v: %w", cfg.R, d.r, ErrConfig)
	}
	return nil
}

// Decision pairs one device's verdict with its communication bill.
type Decision struct {
	Result core.Result
	Stats  Stats
}

// DecideAll characterizes every indexed abnormal device, batching the
// work a window at a time: views are fetched through the shared block
// cache, devices with identical views (the common case for a compact
// massive event) share one characterizer so each neighbourhood is
// enumerated once, and the view groups run on parallel workers.
// Decisions come back in device order with the summed Stats; every
// per-device Result and Stats is identical to a standalone Decide call.
func DecideAll(d *Directory, cfg core.Config) ([]Decision, Stats, error) {
	// Validate the configuration up front: the per-group characterizers
	// only exist when there are devices to decide, and an empty window
	// must reject a bad config exactly like the centralized path does.
	if _, err := core.New(d.pair, nil, cfg); err != nil {
		return nil, Stats{}, err
	}
	if err := d.checkRadius(cfg); err != nil {
		return nil, Stats{}, err
	}
	type group struct {
		view    []int
		devices []int
		stats   []Stats
	}
	groups := make(map[string]*group)
	order := make([]string, 0)
	for _, j := range d.abnormal {
		view, st, err := d.View(j)
		if err != nil {
			return nil, Stats{}, err
		}
		key := packKey(view) // views are sorted id sets: collision-free key
		g, ok := groups[key]
		if !ok {
			g = &group{view: view}
			groups[key] = g
			order = append(order, key)
		}
		g.devices = append(g.devices, j)
		g.stats = append(g.stats, st)
	}

	decisions := make(map[int]Decision, len(d.abnormal))
	var mu sync.Mutex
	var firstErr error
	workers := runtime.GOMAXPROCS(0)
	if workers > len(order) {
		workers = len(order)
	}
	if workers < 1 {
		workers = 1
	}
	work := make(chan *group)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for g := range work {
				c, err := core.New(d.pair, g.view, cfg)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				for i, j := range g.devices {
					res, err := c.Characterize(j)
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("device %d: %w", j, err)
						}
						mu.Unlock()
						break
					}
					mu.Lock()
					decisions[j] = Decision{Result: res, Stats: g.stats[i]}
					mu.Unlock()
				}
			}
		}()
	}
	for _, key := range order {
		work <- groups[key]
	}
	close(work)
	wg.Wait()
	if firstErr != nil {
		return nil, Stats{}, firstErr
	}

	out := make([]Decision, 0, len(decisions))
	var total Stats
	for _, dec := range decisions {
		out = append(out, dec)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Result.Device < out[b].Result.Device })
	for _, dec := range out {
		total.Add(dec.Stats)
	}
	return out, total, nil
}
