// Package dist implements the paper's distributed deployment model
// (Section on large-scale deployment): instead of an omniscient monitor
// holding every trajectory, abnormal devices fetch their own 4r
// neighbourhood from a directory service and run the local decision
// procedures of Theorems 5-7 / Corollary 8 on that view alone. The
// paper's locality result (verified centrally by core.TestLocality4r)
// guarantees the verdict is identical to the omniscient one.
//
// The Directory is a sharded, concurrency-safe index of the abnormal
// trajectories, keyed by grid cell at time k-1, that persists across
// observation windows: Advance patches the retained spatial index with
// the window-to-window delta (abnormal-set churn and cell moves) by
// sorted merge instead of rebuilding it — falling back to a full
// rebuild only when the churn fraction crosses the grid package's
// measured threshold — and publishes each window as one immutable
// snapshot behind an atomic pointer, so in-flight decisions always see
// a coherent window. A 4r-view query touches only the cells within two
// cell sides of the querying device, so its cost scales with the local
// abnormal density, never with the fleet size. Devices hit by the same
// error are spatially co-located (restriction R2 confines them to a
// ball of radius r, half a cell), so the Directory caches candidate
// blocks per cell — a massive event touching hundreds of devices
// fetches its shared neighbourhood once instead of N times — and
// Advance carries the blocks whose whole 4r reach saw no churn over to
// the next window still warm.
//
// Decide is the per-device entry point and Stats its communication
// bill; DecideAll batches a whole window, deduplicating identical views
// so co-impacted devices share one characterizer. The cost study
// consuming these numbers is experiments.DistCost.
package dist

import "errors"

var (
	// ErrConfig is returned for invalid directory configurations.
	ErrConfig = errors.New("dist: invalid configuration")
	// ErrUnknownDevice is returned when deciding for a device the
	// directory does not index (i.e. outside A_k).
	ErrUnknownDevice = errors.New("dist: device not in the abnormal set")
)

// Stats is the communication bill of one distributed decision: what the
// deciding device exchanged with the directory service. The counters
// follow the logical protocol — one lookup request plus one response per
// shard owning part of the queried block — so they are deterministic for
// a given directory regardless of cache state or call interleaving.
type Stats struct {
	// Messages is the number of protocol messages exchanged with the
	// directory: 1 lookup request + 1 response per contributing shard.
	Messages int
	// Trajectories is the number of trajectories shipped to the device
	// (its own is already local, so |view| - 1).
	Trajectories int
	// ViewSize is |view|: the abnormal devices within uniform-norm
	// distance 4r of the device at both window endpoints, itself included.
	ViewSize int
}

// Add accumulates another decision's bill into s.
func (s *Stats) Add(o Stats) {
	s.Messages += o.Messages
	s.Trajectories += o.Trajectories
	s.ViewSize += o.ViewSize
}
