package dist

import (
	"fmt"
	"testing"

	"anomalia/internal/core"
	"anomalia/internal/scenario"
)

// TestAgreementWithCentralized is the subsystem's central correctness
// test, mirroring core's oracle cross-check one layer up: on seeded
// scenario sweeps (error load A, isolated probability G, concomitant
// errors on and off), every abnormal device deciding on its fetched 4r
// view must reach the verdict the centralized characterizer — itself
// proven equal to the omniscient oracle — reaches with the full abnormal
// set. This is the paper's distributed-deployment claim end to end.
func TestAgreementWithCentralized(t *testing.T) {
	t.Parallel()

	const (
		n     = 300
		r     = 0.03
		tau   = 3
		steps = 2
	)
	coreCfg := core.Config{R: r, Tau: tau, Exact: true}
	for _, a := range []int{1, 8, 25} {
		for _, g := range []float64{0, 0.5, 1} {
			for _, concomitant := range []bool{false, true} {
				name := fmt.Sprintf("A=%d/G=%g/concomitant=%v", a, g, concomitant)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					gen, err := scenario.New(scenario.Config{
						N: n, D: 2, R: r, Tau: tau, A: a, G: g,
						Concomitant: concomitant, MaxShift: 2 * r,
						Seed: int64(1000*a + int(10*g) + 7),
					})
					if err != nil {
						t.Fatal(err)
					}
					for s := 0; s < steps; s++ {
						step, err := gen.Step()
						if err != nil {
							t.Fatal(err)
						}
						if len(step.Abnormal) == 0 {
							continue
						}
						central, err := core.New(step.Pair, step.Abnormal, coreCfg)
						if err != nil {
							t.Fatal(err)
						}
						want := make(map[int]core.Class, len(step.Abnormal))
						results, err := central.CharacterizeAll()
						if err != nil {
							t.Fatal(err)
						}
						for _, res := range results {
							want[res.Device] = res.Class
						}

						dir, err := NewDirectory(step.Pair, step.Abnormal, r)
						if err != nil {
							t.Fatal(err)
						}
						for _, j := range step.Abnormal {
							res, st, err := Decide(dir, j, coreCfg)
							if err != nil {
								t.Fatalf("window %d device %d: %v", s, j, err)
							}
							if res.Class != want[j] {
								t.Errorf("window %d device %d: distributed %v != centralized %v",
									s, j, res.Class, want[j])
							}
							if st.ViewSize < 1 || st.Trajectories != st.ViewSize-1 {
								t.Errorf("window %d device %d: implausible stats %+v", s, j, st)
							}
						}
					}
				})
			}
		}
	}
}

// TestDecideAllMatchesDecide: the batched window entry point must return
// exactly the per-device results and bills, in device order, with the
// correct total.
func TestDecideAllMatchesDecide(t *testing.T) {
	t.Parallel()

	const r = 0.03
	coreCfg := core.Config{R: r, Tau: 3, Exact: true}
	step := genWindow(t, scenario.Config{
		N: 400, D: 2, R: r, Tau: 3, A: 25, G: 0.3,
		Concomitant: true, MaxShift: 2 * r, Seed: 21,
	})
	dir, err := NewDirectory(step.Pair, step.Abnormal, r)
	if err != nil {
		t.Fatal(err)
	}
	decisions, total, err := DecideAll(dir, coreCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(decisions) != len(step.Abnormal) {
		t.Fatalf("%d decisions for %d abnormal devices", len(decisions), len(step.Abnormal))
	}
	var sum Stats
	for i, dec := range decisions {
		j := step.Abnormal[i]
		if dec.Result.Device != j {
			t.Fatalf("decision %d is for device %d, want %d (device order)", i, dec.Result.Device, j)
		}
		res, st, err := Decide(dir, j, coreCfg)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Result.Class != res.Class || dec.Result.Rule != res.Rule {
			t.Errorf("device %d: batched (%v, %v) != standalone (%v, %v)",
				j, dec.Result.Class, dec.Result.Rule, res.Class, res.Rule)
		}
		if dec.Stats != st {
			t.Errorf("device %d: batched stats %+v != standalone %+v", j, dec.Stats, st)
		}
		sum.Add(dec.Stats)
	}
	if total != sum {
		t.Errorf("total %+v != summed per-device stats %+v", total, sum)
	}
}

// TestDecideAllEmpty: a window with no abnormal devices yields no
// decisions and a zero bill — but still rejects invalid configurations,
// exactly like the centralized path.
func TestDecideAllEmpty(t *testing.T) {
	t.Parallel()

	pair := pairOf(t, [][]float64{{0.5, 0.5}, {0.6, 0.6}}, [][]float64{{0.5, 0.5}, {0.6, 0.6}})
	dir, err := NewDirectory(pair, nil, 0.06)
	if err != nil {
		t.Fatal(err)
	}
	decisions, total, err := DecideAll(dir, core.Config{R: 0.03, Tau: 1, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(decisions) != 0 || total != (Stats{}) {
		t.Errorf("empty window: decisions=%v total=%+v", decisions, total)
	}
	if _, _, err := DecideAll(dir, core.Config{R: 0.03, Tau: 0}); err == nil {
		t.Error("empty window must still reject tau = 0")
	}
	if _, _, err := DecideAll(dir, core.Config{R: 0.5, Tau: 1}); err == nil {
		t.Error("empty window must still reject r = 0.5")
	}
}

// TestDecideRejectsUndersizedDirectory: deciding at a radius larger than
// the directory was built for would silently shrink views below the 4r
// locality requirement, so it must error instead.
func TestDecideRejectsUndersizedDirectory(t *testing.T) {
	t.Parallel()

	pair := pairOf(t, [][]float64{{0.5, 0.5}, {0.52, 0.52}}, [][]float64{{0.3, 0.3}, {0.32, 0.32}})
	dir, err := NewDirectory(pair, []int{0, 1}, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Decide(dir, 0, core.Config{R: 0.1, Tau: 1, Exact: true}); err == nil {
		t.Error("Decide must reject R = 0.1 against a directory built for r = 0.03")
	}
	if _, _, err := DecideAll(dir, core.Config{R: 0.1, Tau: 1, Exact: true}); err == nil {
		t.Error("DecideAll must reject R = 0.1 against a directory built for r = 0.03")
	}
	// Deciding at a smaller radius is safe: views are supersets.
	if _, _, err := Decide(dir, 0, core.Config{R: 0.01, Tau: 1, Exact: true}); err != nil {
		t.Errorf("Decide at a smaller radius must work: %v", err)
	}
}
