package dist

import (
	"sync"
	"testing"

	"anomalia/internal/core"
	"anomalia/internal/scenario"
)

// TestParallelDecide hammers one Directory with concurrent Decide calls
// across all abnormal devices (run under -race) and asserts that every
// verdict and every per-device bill is identical to the sequential
// baseline, and that the summed totals are consistent round after round.
func TestParallelDecide(t *testing.T) {
	t.Parallel()

	const r = 0.03
	coreCfg := core.Config{R: r, Tau: 3, Exact: true}
	step := window(t, scenario.Config{
		N: 400, D: 2, R: r, Tau: 3, A: 25, G: 0.3,
		Concomitant: true, MaxShift: 2 * r, Seed: 33,
	})
	dir, err := NewDirectory(step.Pair, step.Abnormal, r)
	if err != nil {
		t.Fatal(err)
	}

	// Sequential baseline on a fresh directory (cold cache) — the shared
	// directory above stays cold for the parallel rounds, so the first
	// round also exercises concurrent block building.
	baselineDir, err := NewDirectory(step.Pair, step.Abnormal, r)
	if err != nil {
		t.Fatal(err)
	}
	type verdict struct {
		class core.Class
		rule  core.Rule
		stats Stats
	}
	baseline := make(map[int]verdict, len(step.Abnormal))
	var baseTotal Stats
	for _, j := range step.Abnormal {
		res, st, err := Decide(baselineDir, j, coreCfg)
		if err != nil {
			t.Fatal(err)
		}
		baseline[j] = verdict{class: res.Class, rule: res.Rule, stats: st}
		baseTotal.Add(st)
	}

	const rounds = 4
	for round := 0; round < rounds; round++ {
		got := make([]verdict, len(step.Abnormal))
		errs := make([]error, len(step.Abnormal))
		var wg sync.WaitGroup
		for i, j := range step.Abnormal {
			wg.Add(1)
			go func(i, j int) {
				defer wg.Done()
				res, st, err := Decide(dir, j, coreCfg)
				if err != nil {
					errs[i] = err
					return
				}
				got[i] = verdict{class: res.Class, rule: res.Rule, stats: st}
			}(i, j)
		}
		wg.Wait()
		var total Stats
		for i, j := range step.Abnormal {
			if errs[i] != nil {
				t.Fatalf("round %d device %d: %v", round, j, errs[i])
			}
			if got[i] != baseline[j] {
				t.Errorf("round %d device %d: parallel %+v != sequential %+v",
					round, j, got[i], baseline[j])
			}
			total.Add(got[i].stats)
		}
		if total != baseTotal {
			t.Errorf("round %d: total %+v != baseline total %+v", round, total, baseTotal)
		}
	}
}

// TestParallelDecideAll runs several whole-window batches concurrently
// against one Directory; each must independently produce the same
// decisions and totals.
func TestParallelDecideAll(t *testing.T) {
	t.Parallel()

	const r = 0.03
	coreCfg := core.Config{R: r, Tau: 3, Exact: true}
	step := window(t, scenario.Config{
		N: 300, D: 2, R: r, Tau: 3, A: 15, G: 0.5,
		Concomitant: true, MaxShift: 2 * r, Seed: 44,
	})
	dir, err := NewDirectory(step.Pair, step.Abnormal, r)
	if err != nil {
		t.Fatal(err)
	}
	want, wantTotal, err := DecideAll(dir, coreCfg)
	if err != nil {
		t.Fatal(err)
	}

	const batches = 3
	results := make([][]Decision, batches)
	totals := make([]Stats, batches)
	errs := make([]error, batches)
	var wg sync.WaitGroup
	for b := 0; b < batches; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			results[b], totals[b], errs[b] = DecideAll(dir, coreCfg)
		}(b)
	}
	wg.Wait()
	for b := 0; b < batches; b++ {
		if errs[b] != nil {
			t.Fatalf("batch %d: %v", b, errs[b])
		}
		if totals[b] != wantTotal {
			t.Errorf("batch %d: total %+v != %+v", b, totals[b], wantTotal)
		}
		if len(results[b]) != len(want) {
			t.Fatalf("batch %d: %d decisions, want %d", b, len(results[b]), len(want))
		}
		for i := range want {
			if results[b][i].Result.Device != want[i].Result.Device ||
				results[b][i].Result.Class != want[i].Result.Class ||
				results[b][i].Result.Rule != want[i].Result.Rule ||
				results[b][i].Stats != want[i].Stats {
				t.Errorf("batch %d decision %d: %+v != %+v",
					b, i, results[b][i], want[i])
			}
		}
	}
}
