package dist

import (
	"fmt"
	"sync"
	"testing"

	"anomalia/internal/core"
	"anomalia/internal/motion"
	"anomalia/internal/scenario"
	"anomalia/internal/space"
	"anomalia/internal/stats"
)

// TestParallelDecide hammers one Directory with concurrent Decide calls
// across all abnormal devices (run under -race) and asserts that every
// verdict and every per-device bill is identical to the sequential
// baseline, and that the summed totals are consistent round after round.
func TestParallelDecide(t *testing.T) {
	t.Parallel()

	const r = 0.03
	coreCfg := core.Config{R: r, Tau: 3, Exact: true}
	step := genWindow(t, scenario.Config{
		N: 400, D: 2, R: r, Tau: 3, A: 25, G: 0.3,
		Concomitant: true, MaxShift: 2 * r, Seed: 33,
	})
	dir, err := NewDirectory(step.Pair, step.Abnormal, r)
	if err != nil {
		t.Fatal(err)
	}

	// Sequential baseline on a fresh directory (cold cache) — the shared
	// directory above stays cold for the parallel rounds, so the first
	// round also exercises concurrent block building.
	baselineDir, err := NewDirectory(step.Pair, step.Abnormal, r)
	if err != nil {
		t.Fatal(err)
	}
	type verdict struct {
		class core.Class
		rule  core.Rule
		stats Stats
	}
	baseline := make(map[int]verdict, len(step.Abnormal))
	var baseTotal Stats
	for _, j := range step.Abnormal {
		res, st, err := Decide(baselineDir, j, coreCfg)
		if err != nil {
			t.Fatal(err)
		}
		baseline[j] = verdict{class: res.Class, rule: res.Rule, stats: st}
		baseTotal.Add(st)
	}

	const rounds = 4
	for round := 0; round < rounds; round++ {
		got := make([]verdict, len(step.Abnormal))
		errs := make([]error, len(step.Abnormal))
		var wg sync.WaitGroup
		for i, j := range step.Abnormal {
			wg.Add(1)
			go func(i, j int) {
				defer wg.Done()
				res, st, err := Decide(dir, j, coreCfg)
				if err != nil {
					errs[i] = err
					return
				}
				got[i] = verdict{class: res.Class, rule: res.Rule, stats: st}
			}(i, j)
		}
		wg.Wait()
		var total Stats
		for i, j := range step.Abnormal {
			if errs[i] != nil {
				t.Fatalf("round %d device %d: %v", round, j, errs[i])
			}
			if got[i] != baseline[j] {
				t.Errorf("round %d device %d: parallel %+v != sequential %+v",
					round, j, got[i], baseline[j])
			}
			total.Add(got[i].stats)
		}
		if total != baseTotal {
			t.Errorf("round %d: total %+v != baseline total %+v", round, total, baseTotal)
		}
	}
}

// TestParallelDecideAll runs several whole-window batches concurrently
// against one Directory; each must independently produce the same
// decisions and totals.
func TestParallelDecideAll(t *testing.T) {
	t.Parallel()

	const r = 0.03
	coreCfg := core.Config{R: r, Tau: 3, Exact: true}
	step := genWindow(t, scenario.Config{
		N: 300, D: 2, R: r, Tau: 3, A: 15, G: 0.5,
		Concomitant: true, MaxShift: 2 * r, Seed: 44,
	})
	dir, err := NewDirectory(step.Pair, step.Abnormal, r)
	if err != nil {
		t.Fatal(err)
	}
	want, wantTotal, err := DecideAll(dir, coreCfg)
	if err != nil {
		t.Fatal(err)
	}

	const batches = 3
	results := make([][]Decision, batches)
	totals := make([]Stats, batches)
	errs := make([]error, batches)
	var wg sync.WaitGroup
	for b := 0; b < batches; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			results[b], totals[b], errs[b] = DecideAll(dir, coreCfg)
		}(b)
	}
	wg.Wait()
	for b := 0; b < batches; b++ {
		if errs[b] != nil {
			t.Fatalf("batch %d: %v", b, errs[b])
		}
		if totals[b] != wantTotal {
			t.Errorf("batch %d: total %+v != %+v", b, totals[b], wantTotal)
		}
		if len(results[b]) != len(want) {
			t.Fatalf("batch %d: %d decisions, want %d", b, len(results[b]), len(want))
		}
		for i := range want {
			if results[b][i].Result.Device != want[i].Result.Device ||
				results[b][i].Result.Class != want[i].Result.Class ||
				results[b][i].Result.Rule != want[i].Result.Rule ||
				results[b][i].Stats != want[i].Stats {
				t.Errorf("batch %d decision %d: %+v != %+v",
					b, i, results[b][i], want[i])
			}
		}
	}
}

// TestAdvanceRaceDecide hammers one persistent Directory with concurrent
// Decide and DecideAll calls while a writer advances it through a cycle
// of precomputed windows (run under -race). Publish-then-swap semantics
// are asserted behaviourally: every batch and every single decision must
// be byte-identical to the sequential output of exactly one window —
// never a torn mix of two — and a device absent from the served window
// must fail with ErrUnknownDevice, nothing else.
func TestAdvanceRaceDecide(t *testing.T) {
	t.Parallel()

	const (
		r       = 0.03
		n       = 200
		windows = 6
		readers = 4
	)
	coreCfg := core.Config{R: r, Tau: 3, Exact: true}

	// Precompute the windows: a rolling state evolution with ~5% moves
	// and an abnormal set that keeps a stable core (ids < n/2, even) and
	// swaps a marker id per window so every window's batch output is
	// distinguishable.
	rng := stats.NewRNG(977)
	type win struct {
		pair     *motion.Pair
		abnormal []int
		expected map[int]Decision // per-device sequential baseline
		total    Stats
	}
	prev, err := space.NewState(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	prev.Uniform(rng.Float64)
	var core_ []int
	for j := 0; j < n/2; j += 2 {
		if rng.Float64() < 0.4 {
			core_ = append(core_, j)
		}
	}
	wins := make([]*win, windows)
	for wi := range wins {
		cur := prev.Clone()
		for k := 0; k < n/20; k++ {
			j := rng.Intn(n)
			if err := cur.Set(j, space.Point{rng.Float64(), rng.Float64()}); err != nil {
				t.Fatal(err)
			}
		}
		abnormal := append([]int(nil), core_...)
		abnormal = append(abnormal, n/2+wi) // marker id unique to this window
		for j := n/2 + windows; j < n; j++ {
			if rng.Float64() < 0.2 {
				abnormal = append(abnormal, j)
			}
		}
		pair, err := motion.NewPair(prev, cur)
		if err != nil {
			t.Fatal(err)
		}
		dir, err := NewDirectory(pair, abnormal, r)
		if err != nil {
			t.Fatal(err)
		}
		decs, total, err := DecideAll(dir, coreCfg)
		if err != nil {
			t.Fatal(err)
		}
		w := &win{pair: pair, abnormal: dir.Abnormal(), expected: map[int]Decision{}, total: total}
		for _, dec := range decs {
			w.expected[dec.Result.Device] = dec
		}
		wins[wi] = w
		prev = cur
	}

	// The racing directory starts on window 0; the writer advances it
	// through the cycle several times, exercising both warm and cold
	// caches and both the delta and (on the larger hops) rebuild paths.
	dir, err := NewDirectory(wins[0].pair, wins[0].abnormal, r)
	if err != nil {
		t.Fatal(err)
	}
	sameDecision := func(a, b Decision) bool {
		return a.Result.Device == b.Result.Device &&
			a.Result.Class == b.Result.Class &&
			a.Result.Rule == b.Result.Rule &&
			a.Stats == b.Stats
	}

	done := make(chan struct{})
	errs := make(chan error, readers+1)
	for g := 0; g < readers; g++ {
		go func(g int) {
			rrng := stats.NewRNG(int64(g) + 1)
			for {
				select {
				case <-done:
					errs <- nil
					return
				default:
				}
				if g%2 == 0 {
					decs, total, err := DecideAll(dir, coreCfg)
					if err != nil {
						errs <- err
						return
					}
					// The marker id makes every window's abnormal set
					// unique, so the batch identifies its source window —
					// and must then match it exactly.
					var src *win
					for wi := range wins {
						if slicesDevicesEqual(decs, wins[wi].abnormal) {
							src = wins[wi]
							break
						}
					}
					if src == nil {
						errs <- fmt.Errorf("DecideAll output matches no precomputed window (%d decisions)", len(decs))
						return
					}
					if total != src.total {
						errs <- fmt.Errorf("torn batch: total %+v, window expects %+v", total, src.total)
						return
					}
					for _, dec := range decs {
						if !sameDecision(dec, src.expected[dec.Result.Device]) {
							errs <- fmt.Errorf("torn decision for device %d", dec.Result.Device)
							return
						}
					}
				} else {
					// Core devices exist in every window: a Decide must
					// match one window's sequential verdict exactly.
					j := core_[rrng.Intn(len(core_))]
					res, st, err := Decide(dir, j, coreCfg)
					if err != nil {
						errs <- fmt.Errorf("core device %d: %w", j, err)
						return
					}
					got := Decision{Result: res, Stats: st}
					ok := false
					for _, w := range wins {
						if sameDecision(got, w.expected[j]) {
							ok = true
							break
						}
					}
					if !ok {
						errs <- fmt.Errorf("device %d: verdict matches no window", j)
						return
					}
				}
			}
		}(g)
	}

	go func() {
		for cycle := 0; cycle < 3; cycle++ {
			for wi := 1; wi <= windows; wi++ {
				w := wins[wi%windows]
				if _, err := dir.Advance(w.pair, w.abnormal, nil); err != nil {
					errs <- err
					return
				}
			}
		}
		close(done)
		errs <- nil
	}()

	for g := 0; g < readers+1; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// slicesDevicesEqual reports whether the decision batch covers exactly
// the given sorted device set, in order.
func slicesDevicesEqual(decs []Decision, devices []int) bool {
	if len(decs) != len(devices) {
		return false
	}
	for i := range decs {
		if decs[i].Result.Device != devices[i] {
			return false
		}
	}
	return true
}
