package dist

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"anomalia/internal/motion"
	"anomalia/internal/sets"
	"anomalia/internal/space"
)

// numShards fixes the shard fan-out. It is a constant, not a function of
// GOMAXPROCS, so that Stats.Messages (1 + shards contacted) is identical
// on every machine for a given window — the cost tables must reproduce.
const numShards = 16

// cell is one occupied grid cell: its integer coordinates and the sorted
// abnormal devices whose k-1 position falls inside it.
type cell struct {
	coords []int
	ids    []int
}

// dirShard owns the cells whose key hashes to it. Shards are immutable
// after NewDirectory returns, so concurrent readers need no locking.
type dirShard struct {
	cells map[string]*cell
}

// block is the cached answer to "which abnormal devices could be within
// 4r of a device sitting in this cell": the union of the cell lists at
// Chebyshev cell distance <= reach, plus the shard fan-out of the lookup.
type block struct {
	cands  []int // sorted candidate device ids
	shards int   // shards owning >= 1 occupied cell of the block
}

// Directory indexes the abnormal trajectories of one observation window
// by grid cell and serves 4r-view queries. It is safe for concurrent use
// once built: the shard maps are read-only and the block cache is a
// sync.Map.
type Directory struct {
	pair     *motion.Pair
	abnormal []int
	inDir    map[int]bool
	r        float64 // consistency impact radius the index serves
	side     float64 // grid cell side: 2r (one spanning cell when r = 0)
	viewR    float64 // view radius 4r
	reach    int     // cells per axis a view can span: ceil(viewR/side)
	res      int     // cells per axis of the grid
	occupied int     // occupied cells across all shards
	shards   [numShards]dirShard
	blocks   sync.Map // center cell key -> *block
	built    atomic.Int64
	hits     atomic.Int64
}

// NewDirectory builds the sharded index for one window: pair holds the
// two snapshots, abnormal is A_k, and r is the consistency impact
// radius the index serves (the paper's r in [0, 1/4)). Cells have side
// 2r so a 4r view spans two cells per axis; the degenerate r = 0 keeps
// one cell spanning E and views shrink to exactly-coincident devices.
// The build fans the abnormal set out across goroutines, one per shard.
func NewDirectory(pair *motion.Pair, abnormal []int, r float64) (*Directory, error) {
	if pair == nil {
		return nil, fmt.Errorf("nil pair: %w", ErrConfig)
	}
	if err := motion.ValidateRadius(r); err != nil {
		return nil, fmt.Errorf("%v: %w", err, ErrConfig)
	}
	ids := sets.Canon(sets.CloneInts(abnormal))
	for _, id := range ids {
		if id < 0 || id >= pair.N() {
			return nil, fmt.Errorf("abnormal device %d outside population of %d: %w", id, pair.N(), ErrConfig)
		}
	}
	side := 2 * r
	if side == 0 {
		side = 1
	}
	res := int(math.Ceil(1 / side))
	if res < 1 {
		res = 1
	}
	viewR := 4 * r
	d := &Directory{
		pair:     pair,
		abnormal: ids,
		inDir:    make(map[int]bool, len(ids)),
		r:        r,
		side:     side,
		viewR:    viewR,
		reach:    int(math.Ceil(viewR / side)),
		res:      res,
	}
	for _, id := range ids {
		d.inDir[id] = true
	}

	// Stage 1: compute every device's cell key and owning shard in
	// parallel chunks.
	keys := make([]string, len(ids))
	owner := make([]int, len(ids))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(ids) {
		workers = len(ids)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	chunk := (len(ids) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(ids) {
			hi = len(ids)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				key := d.cellKey(d.cellCoords(pair.Prev.At(ids[i])))
				keys[i] = key
				owner[i] = shardOf(key)
			}
		}(lo, hi)
	}
	wg.Wait()

	// Stage 2: bucket device indices per owning shard, then each shard
	// ingests only its own devices. ids are sorted and bucketed in index
	// order, so every cell list comes out sorted.
	var perShard [numShards][]int
	for i := range ids {
		perShard[owner[i]] = append(perShard[owner[i]], i)
	}
	for s := range d.shards {
		d.shards[s].cells = make(map[string]*cell, len(perShard[s]))
	}
	for s := 0; s < numShards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sh := &d.shards[s]
			for _, i := range perShard[s] {
				c, ok := sh.cells[keys[i]]
				if !ok {
					c = &cell{coords: d.cellCoords(pair.Prev.At(ids[i]))}
					sh.cells[keys[i]] = c
				}
				c.ids = append(c.ids, ids[i])
			}
		}(s)
	}
	wg.Wait()
	for s := range d.shards {
		d.occupied += len(d.shards[s].cells)
	}
	return d, nil
}

// Abnormal returns the sorted abnormal set the directory indexes.
func (d *Directory) Abnormal() []int { return sets.CloneInts(d.abnormal) }

// Radius returns the consistency impact radius the directory serves.
func (d *Directory) Radius() float64 { return d.r }

// ViewRadius returns the 4r view radius served by the directory.
func (d *Directory) ViewRadius() float64 { return d.viewR }

// CacheStats reports the block cache behaviour: blocks computed (misses)
// and lookups answered from cache (hits). Co-located deciding devices
// share blocks, so built stays bounded by the number of occupied cells
// no matter how many devices a massive event touches.
func (d *Directory) CacheStats() (built, hits int64) {
	return d.built.Load(), d.hits.Load()
}

// cellCoords maps a position to integer cell coordinates, clamped into
// [0, res-1] per axis. Clamping is monotone, so it only ever merges
// boundary cells — candidates are never lost, and the exact distance
// filter in View discards any extras.
func (d *Directory) cellCoords(p space.Point) []int {
	coords := make([]int, len(p))
	for i, x := range p {
		c := int(x / d.side)
		if c < 0 {
			c = 0
		}
		if c >= d.res {
			c = d.res - 1
		}
		coords[i] = c
	}
	return coords
}

// packKey encodes a slice of non-negative ints collision-free (8 bytes
// per entry, covering the full int range so even degenerate radii with
// res > 2^32 cannot alias cells): cell coordinates here, sorted view id
// sets in DecideAll.
func packKey(xs []int) string {
	buf := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.BigEndian.PutUint64(buf[8*i:], uint64(x))
	}
	return string(buf)
}

// cellKey encodes cell coordinates as a map key.
func (d *Directory) cellKey(coords []int) string { return packKey(coords) }

// shardOf assigns a cell key to its owning shard.
func shardOf(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % numShards)
}

// chebyshev returns the Chebyshev (max-axis) distance between two cell
// coordinate vectors.
func chebyshev(a, b []int) int {
	max := 0
	for i := range a {
		delta := a[i] - b[i]
		if delta < 0 {
			delta = -delta
		}
		if delta > max {
			max = delta
		}
	}
	return max
}

// blockFor returns the candidate block centered on the given cell,
// computing and caching it on first use. A device within viewR = 2*side
// of the center cell's occupants sits at most reach = 2 cells away per
// axis, so the block is the occupied cells at Chebyshev distance <=
// reach. Both computation strategies visit exactly those cells, so the
// candidates and the shard fan-out — hence Stats — are identical.
func (d *Directory) blockFor(key string, center []int) *block {
	if cached, ok := d.blocks.Load(key); ok {
		d.hits.Add(1)
		return cached.(*block)
	}
	b := &block{}
	// (2*reach+1)^d neighbour cells, saturating to avoid overflow in
	// high dimension.
	blockCells := 1
	for range center {
		if blockCells > d.occupied {
			break
		}
		blockCells *= 2*d.reach + 1
	}
	if blockCells <= d.occupied {
		d.lookupBlock(center, b)
	} else {
		d.scanBlock(center, b)
	}
	sort.Ints(b.cands)
	actual, loaded := d.blocks.LoadOrStore(key, b)
	if loaded {
		d.hits.Add(1)
	} else {
		d.built.Add(1)
	}
	return actual.(*block)
}

// lookupBlock builds a block by direct map lookups of the neighbour
// cell keys — O((2*reach+1)^d), independent of how many cells the
// window occupies. Preferred whenever the block is smaller than the
// occupied-cell population.
func (d *Directory) lookupBlock(center []int, b *block) {
	dim := len(center)
	offsets := make([]int, dim)
	coords := make([]int, dim)
	for i := range offsets {
		offsets[i] = -d.reach
	}
	var hit [numShards]bool
	for {
		ok := true
		for i := 0; i < dim; i++ {
			c := center[i] + offsets[i]
			if c < 0 || c >= d.res {
				ok = false
				break
			}
			coords[i] = c
		}
		if ok {
			key := packKey(coords)
			s := shardOf(key)
			if c, found := d.shards[s].cells[key]; found {
				b.cands = append(b.cands, c.ids...)
				hit[s] = true
			}
		}
		// Next offset vector in [-reach, reach]^dim.
		i := 0
		for ; i < dim; i++ {
			offsets[i]++
			if offsets[i] <= d.reach {
				break
			}
			offsets[i] = -d.reach
		}
		if i == dim {
			break
		}
	}
	for _, h := range hit {
		if h {
			b.shards++
		}
	}
}

// scanBlock builds a block by scanning every occupied cell — the
// fallback when the neighbour-cell count explodes combinatorially with
// the dimension.
func (d *Directory) scanBlock(center []int, b *block) {
	for s := range d.shards {
		contributed := false
		for _, c := range d.shards[s].cells {
			if chebyshev(c.coords, center) <= d.reach {
				b.cands = append(b.cands, c.ids...)
				contributed = true
			}
		}
		if contributed {
			b.shards++
		}
	}
}

// View returns the 4r view of abnormal device j: every indexed device
// within uniform-norm distance 4r of j at both window endpoints (j
// included), plus the communication bill of fetching it. The paper's
// locality result guarantees this view suffices to characterize j.
func (d *Directory) View(j int) ([]int, Stats, error) {
	if !d.inDir[j] {
		return nil, Stats{}, fmt.Errorf("device %d: %w", j, ErrUnknownDevice)
	}
	center := d.cellCoords(d.pair.Prev.At(j))
	b := d.blockFor(d.cellKey(center), center)
	view := make([]int, 0, len(b.cands))
	for _, i := range b.cands {
		if d.pair.Prev.Dist(i, j) <= d.viewR && d.pair.Cur.Dist(i, j) <= d.viewR {
			view = append(view, i)
		}
	}
	st := Stats{
		Messages:     1 + b.shards,
		Trajectories: len(view) - 1,
		ViewSize:     len(view),
	}
	return view, st, nil
}
