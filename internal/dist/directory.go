package dist

import (
	"fmt"
	"math"
	"slices"
	"sync/atomic"

	"anomalia/internal/grid"
	"anomalia/internal/motion"
	"anomalia/internal/sets"
)

// numShards fixes the shard fan-out. It is a constant, not a function of
// GOMAXPROCS, so that Stats.Messages (1 + shards contacted) is identical
// on every machine for a given window — the cost tables must reproduce.
const numShards = 16

// block is the cached answer to "which abnormal devices could be within
// 4r of a device sitting in this cell": the union of the cell lists at
// Chebyshev cell distance <= reach, plus the shard fan-out of the lookup.
type block struct {
	cands  []int // sorted candidate device ids
	shards int   // shards owning >= 1 occupied cell of the block
}

// Directory indexes the abnormal trajectories of one observation window
// by grid cell and serves 4r-view queries. It rides the shared flat
// index directly: the occupied cells live in the index's key-sorted
// slab, each annotated with its owning shard, and the block cache is
// one atomic pointer per occupied cell — no side maps. It is safe for
// concurrent use once built: everything but the cache pointers is
// read-only, and the pointers are written once (first writer wins).
type Directory struct {
	pair     *motion.Pair
	abnormal []int       // sorted; membership and positions by binary search
	r        float64     // consistency impact radius the index serves
	geom     grid.Params // shared cell geometry: side 2r (one spanning cell when r = 0)
	viewR    float64     // view radius 4r
	reach    int         // cells per axis a view can span: ceil(viewR/side)
	index    *grid.Index // shared spatial index of the abnormal k-1 positions
	// cellShard and blocks are aligned with the index's key-sorted cell
	// order; cellOf with the sorted abnormal set (the cell indexing each
	// device), so a view query never recomputes coordinates or keys.
	cellShard []uint8
	cellOf    []int32
	blocks    []atomic.Pointer[block]
	built     atomic.Int64
	hits      atomic.Int64
}

// NewDirectory builds the sharded index for one window: pair holds the
// two snapshots, abnormal is A_k, and r is the consistency impact
// radius the index serves (the paper's r in [0, 1/4)). The cell
// geometry comes from the shared grid package — side 2r, so a 4r view
// spans two cells per axis; the degenerate r = 0 keeps one cell
// spanning E and views shrink to exactly-coincident devices. Shards own
// occupied cells by key hash, so the shard fan-out (and hence Stats) is
// a pure function of the window.
func NewDirectory(pair *motion.Pair, abnormal []int, r float64) (*Directory, error) {
	if pair == nil {
		return nil, fmt.Errorf("nil pair: %w", ErrConfig)
	}
	if err := motion.ValidateRadius(r); err != nil {
		return nil, fmt.Errorf("%v: %w", err, ErrConfig)
	}
	ids := sets.Canon(sets.CloneInts(abnormal))
	for _, id := range ids {
		if id < 0 || id >= pair.N() {
			return nil, fmt.Errorf("abnormal device %d outside population of %d: %w", id, pair.N(), ErrConfig)
		}
	}
	geom := grid.ForRadius(r)
	viewR := 4 * r
	d := &Directory{
		pair:     pair,
		abnormal: ids,
		r:        r,
		geom:     geom,
		viewR:    viewR,
		// ceil(viewR/side) cells in exact arithmetic, plus one cell of
		// floating-point margin: a quotient within an ulp of a cell
		// boundary can shift a computed cell by one, and a view member
		// silently dropped here would break the verdict-identity
		// guarantee the agreement tests check.
		reach: int(math.Ceil(viewR/geom.Side)) + 1,
		index: grid.New(pair.Prev, ids, geom),
	}

	// Annotate the key-sorted cells with their owning shard and invert
	// the cell membership: ids were indexed in ascending order, so every
	// cell list is already sorted.
	cells := d.index.SortedCells()
	d.cellShard = make([]uint8, len(cells))
	d.blocks = make([]atomic.Pointer[block], len(cells))
	d.cellOf = make([]int32, len(ids))
	for ci := range cells {
		d.cellShard[ci] = uint8(shardOfCoords(cells[ci].Coords))
		for _, id := range cells[ci].Ids {
			pos, _ := slices.BinarySearch(ids, id) // indexed ids are abnormal
			d.cellOf[pos] = int32(ci)
		}
	}
	return d, nil
}

// Abnormal returns the sorted abnormal set the directory indexes.
// Ownership rule (shared with motion.Graph.Ids and core.Characterizer.
// Abnormal): the slice aliases the directory's internal state — callers
// must treat it as read-only and copy before modifying.
func (d *Directory) Abnormal() []int { return d.abnormal }

// Radius returns the consistency impact radius the directory serves.
func (d *Directory) Radius() float64 { return d.r }

// ViewRadius returns the 4r view radius served by the directory.
func (d *Directory) ViewRadius() float64 { return d.viewR }

// CacheStats reports the block cache behaviour: blocks computed (misses)
// and lookups answered from cache (hits). Co-located deciding devices
// share blocks, so built stays bounded by the number of occupied cells
// no matter how many devices a massive event touches.
func (d *Directory) CacheStats() (built, hits int64) {
	return d.built.Load(), d.hits.Load()
}

// shardOfCoords assigns a cell to its owning shard: FNV-1a over the
// collision-free byte encoding of its coordinates (grid.AppendKey),
// inlined so per-cell shard assignment allocates nothing. The hash is
// pinned byte-identical to hash/fnv over the encoded key
// (TestShardOfCoordsMatchesFNV), so Stats reproduce across builds of
// the module.
func shardOfCoords(coords []int) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for _, x := range coords {
		v := uint64(x)
		for shift := 56; shift >= 0; shift -= 8 {
			h = (h ^ uint32(byte(v>>shift))) * prime32
		}
	}
	return int(h % numShards)
}

// blockFor returns the candidate block centered on the ci-th occupied
// cell, computing and caching it on first use (first writer wins; every
// other caller counts a hit, like the sync.Map LoadOrStore it replaces).
// A device within viewR = 2*side of the center cell's occupants sits at
// most 2 cells away per axis in exact arithmetic (reach adds one cell
// of floating-point margin), so the block is the occupied cells at
// Chebyshev distance <= reach. Both computation strategies visit
// exactly those cells, so the candidates and the shard fan-out — hence
// Stats — are identical.
func (d *Directory) blockFor(ci int) *block {
	if cached := d.blocks[ci].Load(); cached != nil {
		d.hits.Add(1)
		return cached
	}
	b := &block{}
	center := d.index.CellAt(ci).Coords
	occupied := d.index.Cells()
	if grid.NeighborCells(len(center), d.reach, occupied) <= occupied {
		d.lookupBlock(center, b)
	} else {
		d.scanBlock(center, b)
	}
	slices.Sort(b.cands)
	if d.blocks[ci].CompareAndSwap(nil, b) {
		d.built.Add(1)
		return b
	}
	d.hits.Add(1)
	return d.blocks[ci].Load()
}

// lookupBlock builds a block by probing the neighbour cells of the
// center coordinates directly — O((2*reach+1)^d) binary searches,
// independent of how many cells the window occupies. Preferred whenever
// the block is smaller than the occupied-cell population.
func (d *Directory) lookupBlock(center []int, b *block) {
	var hit [numShards]bool
	d.index.ForEachNeighbor(center, d.reach, func(ci int, c *grid.Cell) {
		b.cands = append(b.cands, c.Ids...)
		hit[d.cellShard[ci]] = true
	})
	for _, h := range hit {
		if h {
			b.shards++
		}
	}
}

// scanBlock builds a block by scanning every occupied cell — the
// fallback when the neighbour-cell count explodes combinatorially with
// the dimension.
func (d *Directory) scanBlock(center []int, b *block) {
	var hit [numShards]bool
	cells := d.index.SortedCells()
	for ci := range cells {
		if grid.Chebyshev(cells[ci].Coords, center) <= d.reach {
			b.cands = append(b.cands, cells[ci].Ids...)
			hit[d.cellShard[ci]] = true
		}
	}
	for _, h := range hit {
		if h {
			b.shards++
		}
	}
}

// viewInto appends the 4r view of abnormal device j — known to sit at
// position pos of the sorted abnormal set — to dst and returns the
// extended slice with the communication bill. The batched DecideAll
// passes a recycled scratch buffer; View passes nil and gets a fresh
// slice sized to the candidate block.
func (d *Directory) viewInto(j, pos int, dst []int) ([]int, Stats) {
	b := d.blockFor(int(d.cellOf[pos]))
	if dst == nil {
		dst = make([]int, 0, len(b.cands))
	}
	start := len(dst)
	for _, i := range b.cands {
		if d.pair.Prev.Dist(i, j) <= d.viewR && d.pair.Cur.Dist(i, j) <= d.viewR {
			dst = append(dst, i)
		}
	}
	size := len(dst) - start
	st := Stats{
		Messages:     1 + b.shards,
		Trajectories: size - 1,
		ViewSize:     size,
	}
	return dst, st
}

// View returns the 4r view of abnormal device j: every indexed device
// within uniform-norm distance 4r of j at both window endpoints (j
// included), plus the communication bill of fetching it. The paper's
// locality result guarantees this view suffices to characterize j.
func (d *Directory) View(j int) ([]int, Stats, error) {
	pos, ok := slices.BinarySearch(d.abnormal, j)
	if !ok {
		return nil, Stats{}, fmt.Errorf("device %d: %w", j, ErrUnknownDevice)
	}
	view, st := d.viewInto(j, pos, nil)
	return view, st, nil
}
