package dist

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"anomalia/internal/grid"
	"anomalia/internal/motion"
	"anomalia/internal/sets"
)

// numShards fixes the shard fan-out. It is a constant, not a function of
// GOMAXPROCS, so that Stats.Messages (1 + shards contacted) is identical
// on every machine for a given window — the cost tables must reproduce.
const numShards = 16

// dirShard owns the cells whose key hashes to it. Shards are immutable
// after NewDirectory returns, so concurrent readers need no locking.
// Cells are shared with (and owned by) the directory's grid.Index.
type dirShard struct {
	cells map[string]*grid.Cell
}

// block is the cached answer to "which abnormal devices could be within
// 4r of a device sitting in this cell": the union of the cell lists at
// Chebyshev cell distance <= reach, plus the shard fan-out of the lookup.
type block struct {
	cands  []int // sorted candidate device ids
	shards int   // shards owning >= 1 occupied cell of the block
}

// Directory indexes the abnormal trajectories of one observation window
// by grid cell and serves 4r-view queries. It is safe for concurrent use
// once built: the shard maps are read-only and the block cache is a
// sync.Map.
type Directory struct {
	pair     *motion.Pair
	abnormal []int       // sorted; membership is a binary search (inDir)
	r        float64     // consistency impact radius the index serves
	geom     grid.Params // shared cell geometry: side 2r (one spanning cell when r = 0)
	viewR    float64     // view radius 4r
	reach    int         // cells per axis a view can span: ceil(viewR/side)
	index    *grid.Index // shared spatial index of the abnormal k-1 positions
	shards   [numShards]dirShard
	blocks   sync.Map // center cell key -> *block
	built    atomic.Int64
	hits     atomic.Int64
}

// NewDirectory builds the sharded index for one window: pair holds the
// two snapshots, abnormal is A_k, and r is the consistency impact
// radius the index serves (the paper's r in [0, 1/4)). The cell
// geometry comes from the shared grid package — side 2r, so a 4r view
// spans two cells per axis; the degenerate r = 0 keeps one cell
// spanning E and views shrink to exactly-coincident devices. Shards
// receive the occupied cells of that one shared index by key hash, so
// the shard fan-out (and hence Stats) is a pure function of the window.
func NewDirectory(pair *motion.Pair, abnormal []int, r float64) (*Directory, error) {
	if pair == nil {
		return nil, fmt.Errorf("nil pair: %w", ErrConfig)
	}
	if err := motion.ValidateRadius(r); err != nil {
		return nil, fmt.Errorf("%v: %w", err, ErrConfig)
	}
	ids := sets.Canon(sets.CloneInts(abnormal))
	for _, id := range ids {
		if id < 0 || id >= pair.N() {
			return nil, fmt.Errorf("abnormal device %d outside population of %d: %w", id, pair.N(), ErrConfig)
		}
	}
	geom := grid.ForRadius(r)
	viewR := 4 * r
	d := &Directory{
		pair:     pair,
		abnormal: ids,
		r:        r,
		geom:     geom,
		viewR:    viewR,
		// ceil(viewR/side) cells in exact arithmetic, plus one cell of
		// floating-point margin: a quotient within an ulp of a cell
		// boundary can shift a computed cell by one, and a view member
		// silently dropped here would break the verdict-identity
		// guarantee the agreement tests check.
		reach: int(math.Ceil(viewR/geom.Side)) + 1,
		index: grid.New(pair.Prev, ids, geom),
	}

	// Scatter the occupied cells across shards by key hash. ids were
	// indexed in ascending order, so every cell list is already sorted.
	for s := range d.shards {
		d.shards[s].cells = make(map[string]*grid.Cell)
	}
	d.index.ForEachCell(func(key string, c *grid.Cell) {
		d.shards[shardOf(key)].cells[key] = c
	})
	return d, nil
}

// inDir reports whether the directory indexes device j — a binary
// search over the sorted abnormal set. A directory is rebuilt per
// window; at million-device windows the id map this replaces was tens
// of MB of churn per rebuild for a lookup the sorted slice answers in
// O(log |A_k|).
func (d *Directory) inDir(j int) bool { return sets.ContainsInt(d.abnormal, j) }

// Abnormal returns the sorted abnormal set the directory indexes.
// Ownership rule (shared with motion.Graph.Ids and core.Characterizer.
// Abnormal): the slice aliases the directory's internal state — callers
// must treat it as read-only and copy before modifying.
func (d *Directory) Abnormal() []int { return d.abnormal }

// Radius returns the consistency impact radius the directory serves.
func (d *Directory) Radius() float64 { return d.r }

// ViewRadius returns the 4r view radius served by the directory.
func (d *Directory) ViewRadius() float64 { return d.viewR }

// CacheStats reports the block cache behaviour: blocks computed (misses)
// and lookups answered from cache (hits). Co-located deciding devices
// share blocks, so built stays bounded by the number of occupied cells
// no matter how many devices a massive event touches.
func (d *Directory) CacheStats() (built, hits int64) {
	return d.built.Load(), d.hits.Load()
}

// packKey encodes a slice of non-negative ints collision-free via the
// shared grid encoding: cell coordinates here, sorted view id sets in
// DecideAll.
func packKey(xs []int) string { return grid.Key(xs) }

// shardOf assigns a cell key to its owning shard.
func shardOf(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % numShards)
}

// blockFor returns the candidate block centered on the given cell,
// computing and caching it on first use. A device within viewR = 2*side
// of the center cell's occupants sits at most 2 cells away per axis in
// exact arithmetic (reach adds one cell of floating-point margin), so
// the block is the occupied cells at Chebyshev distance <= reach. Both
// computation strategies visit exactly those cells, so the candidates
// and the shard fan-out — hence Stats — are identical.
func (d *Directory) blockFor(key string, center []int) *block {
	if cached, ok := d.blocks.Load(key); ok {
		d.hits.Add(1)
		return cached.(*block)
	}
	b := &block{}
	occupied := d.index.Cells()
	if grid.NeighborCells(len(center), d.reach, occupied) <= occupied {
		d.lookupBlock(center, b)
	} else {
		d.scanBlock(center, b)
	}
	sort.Ints(b.cands)
	actual, loaded := d.blocks.LoadOrStore(key, b)
	if loaded {
		d.hits.Add(1)
	} else {
		d.built.Add(1)
	}
	return actual.(*block)
}

// lookupBlock builds a block by direct map lookups of the neighbour
// cell keys — O((2*reach+1)^d), independent of how many cells the
// window occupies. Preferred whenever the block is smaller than the
// occupied-cell population.
func (d *Directory) lookupBlock(center []int, b *block) {
	dim := len(center)
	offsets := make([]int, dim)
	coords := make([]int, dim)
	for i := range offsets {
		offsets[i] = -d.reach
	}
	var hit [numShards]bool
	for {
		ok := true
		for i := 0; i < dim; i++ {
			c := center[i] + offsets[i]
			if c < 0 || c >= d.geom.Res {
				ok = false
				break
			}
			coords[i] = c
		}
		if ok {
			key := packKey(coords)
			s := shardOf(key)
			if c, found := d.shards[s].cells[key]; found {
				b.cands = append(b.cands, c.Ids...)
				hit[s] = true
			}
		}
		// Next offset vector in [-reach, reach]^dim.
		i := 0
		for ; i < dim; i++ {
			offsets[i]++
			if offsets[i] <= d.reach {
				break
			}
			offsets[i] = -d.reach
		}
		if i == dim {
			break
		}
	}
	for _, h := range hit {
		if h {
			b.shards++
		}
	}
}

// scanBlock builds a block by scanning every occupied cell — the
// fallback when the neighbour-cell count explodes combinatorially with
// the dimension.
func (d *Directory) scanBlock(center []int, b *block) {
	for s := range d.shards {
		contributed := false
		for _, c := range d.shards[s].cells {
			if grid.Chebyshev(c.Coords, center) <= d.reach {
				b.cands = append(b.cands, c.Ids...)
				contributed = true
			}
		}
		if contributed {
			b.shards++
		}
	}
}

// View returns the 4r view of abnormal device j: every indexed device
// within uniform-norm distance 4r of j at both window endpoints (j
// included), plus the communication bill of fetching it. The paper's
// locality result guarantees this view suffices to characterize j.
func (d *Directory) View(j int) ([]int, Stats, error) {
	if !d.inDir(j) {
		return nil, Stats{}, fmt.Errorf("device %d: %w", j, ErrUnknownDevice)
	}
	center := d.geom.Coords(d.pair.Prev.At(j), nil)
	b := d.blockFor(grid.Key(center), center)
	view := make([]int, 0, len(b.cands))
	for _, i := range b.cands {
		if d.pair.Prev.Dist(i, j) <= d.viewR && d.pair.Cur.Dist(i, j) <= d.viewR {
			view = append(view, i)
		}
	}
	st := Stats{
		Messages:     1 + b.shards,
		Trajectories: len(view) - 1,
		ViewSize:     len(view),
	}
	return view, st, nil
}
