package dist

import (
	"fmt"
	"math"
	"slices"
	"sync/atomic"

	"anomalia/internal/grid"
	"anomalia/internal/motion"
	"anomalia/internal/sets"
)

// numShards fixes the shard fan-out. It is a constant, not a function of
// GOMAXPROCS, so that Stats.Messages (1 + shards contacted) is identical
// on every machine for a given window — the cost tables must reproduce.
const numShards = 16

// block is the cached answer to "which abnormal devices could be within
// 4r of a device sitting in this cell": the union of the cell lists at
// Chebyshev cell distance <= reach, plus the shard fan-out of the lookup.
type block struct {
	cands  []int // sorted candidate device ids
	shards int   // shards owning >= 1 occupied cell of the block
}

// window is the immutable per-window snapshot a Directory serves: the
// state pair, the sorted abnormal set, the spatial index of the abnormal
// k-1 positions, and the per-cell annotations aligned with the index's
// key-sorted cell order. Everything but the block-cache pointers is
// read-only after construction, and each pointer is written once (first
// writer wins), so a window is safe for any number of concurrent
// readers; Advance publishes the next window with a single pointer swap,
// leaving in-flight readers on the old one.
type window struct {
	pair     *motion.Pair
	abnormal []int       // sorted; membership and positions by binary search
	index    *grid.Index // shared spatial index of the abnormal k-1 positions
	// cellShard and blocks are aligned with the index's key-sorted cell
	// order; cellOf (the index's own id→cell record) with the sorted
	// abnormal set, so a view query never recomputes coordinates or keys.
	cellShard []uint8
	cellOf    []int32
	blocks    []atomic.Pointer[block]
}

// Directory is the persistent directory service: it indexes the abnormal
// trajectories of the current observation window by grid cell, serves
// 4r-view queries against it, and survives across windows — Advance
// patches the retained index with the window-to-window delta instead of
// rebuilding it. The per-window state lives in an immutable snapshot
// behind one atomic pointer: readers (Decide, DecideAll, View) load it
// once per operation and therefore always see one coherent window, never
// a torn mix of two, while Advance swaps in the successor.
//
// The cell geometry (side 2r from the shared grid package) is fixed at
// construction and persists across windows, so shard assignment — FNV
// over cell coordinates — and hence Stats stay a pure function of each
// window's content.
type Directory struct {
	r     float64     // consistency impact radius the index serves
	geom  grid.Params // shared cell geometry: side 2r (one spanning cell when r = 0)
	viewR float64     // view radius 4r
	reach int         // cells per axis a view can span: ceil(viewR/side)+1
	win   atomic.Pointer[window]
	built atomic.Int64
	hits  atomic.Int64
}

// AdvanceStats reports how one Advance transitioned the directory.
type AdvanceStats struct {
	// Rebuilt reports that the churn crossed the grid's rebuild
	// threshold (or left the delta path's preconditions) and the window
	// was rebuilt from scratch rather than patched.
	Rebuilt bool
	// AddedIds, RemovedIds and MovedIds count the abnormal-set diff:
	// devices entering the set, leaving it, and staying but crossing a
	// cell boundary.
	AddedIds, RemovedIds, MovedIds int
	// ChurnedCells counts cells whose membership changed, including
	// vacated ones.
	ChurnedCells int
	// RetainedBlocks counts warm 4r block caches carried over from the
	// previous window — cells whose whole reach saw no churn.
	RetainedBlocks int
}

// NewDirectory builds the directory service and indexes its first
// window: pair holds the two snapshots, abnormal is A_k, and r is the
// consistency impact radius the index serves (the paper's r in
// [0, 1/4)). The cell geometry comes from the shared grid package —
// side 2r, so a 4r view spans two cells per axis; the degenerate r = 0
// keeps one cell spanning E and views shrink to exactly-coincident
// devices. Shards own occupied cells by key hash, so the shard fan-out
// (and hence Stats) is a pure function of the window. Subsequent
// windows arrive via Advance.
func NewDirectory(pair *motion.Pair, abnormal []int, r float64) (*Directory, error) {
	if pair == nil {
		return nil, fmt.Errorf("nil pair: %w", ErrConfig)
	}
	if err := motion.ValidateRadius(r); err != nil {
		return nil, fmt.Errorf("%v: %w", err, ErrConfig)
	}
	ids, err := canonAbnormal(pair, abnormal)
	if err != nil {
		return nil, err
	}
	geom := grid.ForRadius(r)
	d := &Directory{
		r:     r,
		geom:  geom,
		viewR: 4 * r,
		// ceil(viewR/side) cells in exact arithmetic, plus one cell of
		// floating-point margin: a quotient within an ulp of a cell
		// boundary can shift a computed cell by one, and a view member
		// silently dropped here would break the verdict-identity
		// guarantee the agreement tests check.
		reach: int(math.Ceil(4*r/geom.Side)) + 1,
	}
	d.win.Store(d.freshWindow(pair, ids, grid.New(pair.Prev, ids, geom)))
	return d, nil
}

// canonAbnormal clones the abnormal set into canonical form and
// validates it against the pair's population — one fused pass when the
// input is already canonical (every production caller's case), so the
// advance hot path pays a clone and a scan, not a sort.
func canonAbnormal(pair *motion.Pair, abnormal []int) ([]int, error) {
	ids := sets.CloneInts(abnormal)
	n := pair.N()
	canonical := true
	prev := -1
	for _, id := range ids {
		if id < 0 || id >= n {
			return nil, fmt.Errorf("abnormal device %d outside population of %d: %w", id, n, ErrConfig)
		}
		if id <= prev {
			canonical = false
		}
		prev = id
	}
	if !canonical {
		ids = sets.Canon(ids)
	}
	return ids, nil
}

// freshWindow assembles a window around a fully rebuilt index: every
// cell's shard is hashed anew and the block cache starts cold.
func (d *Directory) freshWindow(pair *motion.Pair, ids []int, ix *grid.Index) *window {
	cells := ix.SortedCells()
	w := &window{
		pair:      pair,
		abnormal:  ids,
		index:     ix,
		cellShard: make([]uint8, len(cells)),
		cellOf:    ix.CellIndexes(),
		blocks:    make([]atomic.Pointer[block], len(cells)),
	}
	for ci := range cells {
		w.cellShard[ci] = uint8(shardOfCoords(cells[ci].Coords))
	}
	return w
}

// Advance transitions the directory to the next observation window:
// the retained spatial index is patched with the abnormal-set diff and
// the cell moves (grid.Index.Update — falling back to a full rebuild
// past the churn threshold), surviving cells keep their shard
// assignment without rehashing, and the per-cell 4r block caches are
// carried over warm except where the cache's whole Chebyshev reach saw
// churn. moved is the delta feed: the sorted device ids whose position
// may have changed since the previous window — in the deployment model
// this is exactly the update stream the directory service receives from
// moving devices, and it is what keeps an advance sublinear in
// everything but the raw abnormal-set diff. Pass nil when the movers
// are unknown (e.g. the in-process Monitor): every indexed id's cell is
// rechecked — always correct, still sort-free. The moved contract is
// the caller's to honor: a device that changed cells but is neither
// listed nor newly abnormal keeps its stale cell.
//
// The new window is published with one atomic swap: concurrent
// Decide / DecideAll / View calls observe either the previous window or
// the new one in full, never a torn mix. Advance itself is not safe to
// call concurrently with another Advance, and callers who advance while
// decisions are in flight must keep the previous window's states intact
// until those decisions drain (the new window's states are read from
// this call on).
func (d *Directory) Advance(pair *motion.Pair, abnormal []int, moved []int) (AdvanceStats, error) {
	if pair == nil {
		return AdvanceStats{}, fmt.Errorf("nil pair: %w", ErrConfig)
	}
	old := d.win.Load()
	var ids []int
	if sets.EqualInts(abnormal, old.abnormal) && pair.N() >= old.pair.N() {
		// Steady-state membership: reuse the retained canonical set (its
		// validity against this population is implied by the size check)
		// instead of cloning and re-canonicalizing the caller's buffer —
		// and hand the index the very slice it holds, which collapses
		// the id diff to the moved feed alone.
		ids = old.abnormal
	} else {
		var err error
		if ids, err = canonAbnormal(pair, abnormal); err != nil {
			return AdvanceStats{}, err
		}
	}
	ix, us := old.index.Update(pair.Prev, ids, moved)
	st := AdvanceStats{
		Rebuilt:      us.Rebuilt,
		AddedIds:     us.Added,
		RemovedIds:   us.Removed,
		MovedIds:     us.Moved,
		ChurnedCells: len(us.ChurnedCells),
	}
	if dim := pair.Dim(); dim > 0 {
		st.ChurnedCells += len(us.VacatedCoords) / dim
	}
	if us.Rebuilt {
		d.win.Store(d.freshWindow(pair, ids, ix))
		return st, nil
	}

	cells := ix.SortedCells()
	w := &window{
		pair:     pair,
		abnormal: ids,
		index:    ix,
		cellOf:   ix.CellIndexes(),
		blocks:   make([]atomic.Pointer[block], len(cells)),
	}
	// Shards are a function of cell coordinates, and a sourced cell has
	// the old cell's exact coordinates — copy instead of rehashing. A
	// nil Sources means the cell set is unchanged (identity), so the
	// annotation array itself — read-only after construction — is
	// shared outright.
	if us.Sources == nil {
		w.cellShard = old.cellShard
	} else {
		w.cellShard = make([]uint8, len(cells))
		for ci, src := range us.Sources {
			if src >= 0 {
				w.cellShard[ci] = old.cellShard[src]
			} else {
				w.cellShard[ci] = uint8(shardOfCoords(cells[ci].Coords))
			}
		}
	}
	// Carry the warm block caches, then invalidate every cell whose 4r
	// reach saw churn: a block is the union of the cells within
	// Chebyshev reach, so it survives exactly when none of them — nor a
	// vacated cell in range — changed membership. The walk probes the
	// (2*reach+1)^d neighbourhood of each churned coordinate; when the
	// total churn coverage dwarfs the occupied-cell count — scattered
	// churn at scale, where essentially every cache would be invalidated
	// anyway — or the fan-out explodes with the dimension, carrying
	// caches isn't worth the walk: start cold instead, always correct.
	// (At coverage = 4x the cells, under 2% of scattered-churn caches
	// would survive; compact paper-R2 churn stays far below the bound.)
	dim := pair.Dim()
	fan := grid.NeighborCells(dim, d.reach, len(cells))
	if fan <= len(cells) && st.ChurnedCells*fan < 4*len(cells) {
		retained := 0
		if us.Sources == nil {
			for ci := range w.blocks {
				if b := old.blocks[ci].Load(); b != nil {
					w.blocks[ci].Store(b)
					retained++
				}
			}
		} else {
			for ci, src := range us.Sources {
				if src < 0 {
					continue
				}
				if b := old.blocks[src].Load(); b != nil {
					w.blocks[ci].Store(b)
					retained++
				}
			}
		}
		walk := ix.NewNeighborWalk(d.reach)
		invalidate := func(coords []int) {
			walk.ForEach(coords, func(nci int, _ *grid.Cell) {
				if w.blocks[nci].Swap(nil) != nil {
					retained--
				}
			})
		}
		for _, nc := range us.ChurnedCells {
			invalidate(cells[nc].Coords)
		}
		for off := 0; off+dim <= len(us.VacatedCoords); off += dim {
			invalidate(us.VacatedCoords[off : off+dim])
		}
		st.RetainedBlocks = retained
	}
	d.win.Store(w)
	return st, nil
}

// Abnormal returns the sorted abnormal set of the directory's current
// window. Ownership rule (shared with motion.Graph.Ids and
// core.Characterizer.Abnormal): the slice aliases the directory's
// internal state — callers must treat it as read-only.
func (d *Directory) Abnormal() []int { return d.win.Load().abnormal }

// Radius returns the consistency impact radius the directory serves.
func (d *Directory) Radius() float64 { return d.r }

// ViewRadius returns the 4r view radius served by the directory.
func (d *Directory) ViewRadius() float64 { return d.viewR }

// CacheStats reports the block cache behaviour across the directory's
// lifetime: blocks computed (misses) and lookups answered from cache
// (hits). Co-located deciding devices share blocks, so built stays
// bounded by the number of occupied cells no matter how many devices a
// massive event touches — and Advance carries unchurned blocks across
// windows, so steady low-churn streams keep hitting warm caches.
func (d *Directory) CacheStats() (built, hits int64) {
	return d.built.Load(), d.hits.Load()
}

// shardOfCoords assigns a cell to its owning shard: FNV-1a over the
// collision-free byte encoding of its coordinates (grid.AppendKey),
// inlined so per-cell shard assignment allocates nothing. The hash is
// pinned byte-identical to hash/fnv over the encoded key
// (TestShardOfCoordsMatchesFNV), so Stats reproduce across builds of
// the module.
func shardOfCoords(coords []int) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for _, x := range coords {
		v := uint64(x)
		for shift := 56; shift >= 0; shift -= 8 {
			h = (h ^ uint32(byte(v>>shift))) * prime32
		}
	}
	return int(h % numShards)
}

// blockFor returns the candidate block centered on the ci-th occupied
// cell of window w, computing and caching it on first use (first writer
// wins; every other caller counts a hit, like the sync.Map LoadOrStore
// it replaced). A device within viewR = 2*side of the center cell's
// occupants sits at most 2 cells away per axis in exact arithmetic
// (reach adds one cell of floating-point margin), so the block is the
// occupied cells at Chebyshev distance <= reach. Both computation
// strategies visit exactly those cells, so the candidates and the shard
// fan-out — hence Stats — are identical.
func (d *Directory) blockFor(w *window, ci int) *block {
	if cached := w.blocks[ci].Load(); cached != nil {
		d.hits.Add(1)
		return cached
	}
	b := &block{}
	center := w.index.CellAt(ci).Coords
	occupied := w.index.Cells()
	if grid.NeighborCells(len(center), d.reach, occupied) <= occupied {
		d.lookupBlock(w, center, b)
	} else {
		d.scanBlock(w, center, b)
	}
	slices.Sort(b.cands)
	if w.blocks[ci].CompareAndSwap(nil, b) {
		d.built.Add(1)
		return b
	}
	d.hits.Add(1)
	return w.blocks[ci].Load()
}

// lookupBlock builds a block by probing the neighbour cells of the
// center coordinates directly — O((2*reach+1)^d) binary searches,
// independent of how many cells the window occupies. Preferred whenever
// the block is smaller than the occupied-cell population.
func (d *Directory) lookupBlock(w *window, center []int, b *block) {
	var hit [numShards]bool
	w.index.ForEachNeighbor(center, d.reach, func(ci int, c *grid.Cell) {
		b.cands = append(b.cands, c.Ids...)
		hit[w.cellShard[ci]] = true
	})
	for _, h := range hit {
		if h {
			b.shards++
		}
	}
}

// scanBlock builds a block by scanning every occupied cell — the
// fallback when the neighbour-cell count explodes combinatorially with
// the dimension.
func (d *Directory) scanBlock(w *window, center []int, b *block) {
	var hit [numShards]bool
	cells := w.index.SortedCells()
	for ci := range cells {
		if grid.Chebyshev(cells[ci].Coords, center) <= d.reach {
			b.cands = append(b.cands, cells[ci].Ids...)
			hit[w.cellShard[ci]] = true
		}
	}
	for _, h := range hit {
		if h {
			b.shards++
		}
	}
}

// viewInto appends the 4r view of abnormal device j — known to sit at
// position pos of window w's sorted abnormal set — to dst and returns
// the extended slice with the communication bill. The batched DecideAll
// passes a recycled scratch buffer; View passes nil and gets a fresh
// slice sized to the candidate block.
func (d *Directory) viewInto(w *window, j, pos int, dst []int) ([]int, Stats) {
	b := d.blockFor(w, int(w.cellOf[pos]))
	if dst == nil {
		dst = make([]int, 0, len(b.cands))
	}
	start := len(dst)
	for _, i := range b.cands {
		if w.pair.Prev.Dist(i, j) <= d.viewR && w.pair.Cur.Dist(i, j) <= d.viewR {
			dst = append(dst, i)
		}
	}
	size := len(dst) - start
	st := Stats{
		Messages:     1 + b.shards,
		Trajectories: size - 1,
		ViewSize:     size,
	}
	return dst, st
}

// View returns the 4r view of abnormal device j in the current window:
// every indexed device within uniform-norm distance 4r of j at both
// window endpoints (j included), plus the communication bill of
// fetching it. The paper's locality result guarantees this view
// suffices to characterize j.
func (d *Directory) View(j int) ([]int, Stats, error) {
	w := d.win.Load()
	pos, ok := slices.BinarySearch(w.abnormal, j)
	if !ok {
		return nil, Stats{}, fmt.Errorf("device %d: %w", j, ErrUnknownDevice)
	}
	view, st := d.viewInto(w, j, pos, nil)
	return view, st, nil
}
