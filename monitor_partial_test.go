package anomalia

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"anomalia/internal/health"
)

// degradedRow marks one device's report for a test stream.
type degradedRow struct {
	missing bool    // nil row
	badNaN  bool    // NaN coordinate
	badInf  bool    // +Inf coordinate
	short   bool    // wrong width
	value   float64 // delivered QoS when present
}

// partialSnapshot renders one tick: the degraded view the monitor sees
// and the masked-clean view an oracle sees (the delivered clean subset,
// nil everywhere a report was missing or malformed).
func partialSnapshot(n int, base float64, rows map[int]degradedRow) (degraded, masked [][]float64) {
	degraded = make([][]float64, n)
	masked = make([][]float64, n)
	for j := 0; j < n; j++ {
		r, ok := rows[j]
		if !ok {
			degraded[j] = []float64{base}
			masked[j] = []float64{base}
			continue
		}
		switch {
		case r.missing:
		case r.badNaN:
			degraded[j] = []float64{math.NaN()}
		case r.badInf:
			degraded[j] = []float64{math.Inf(1)}
		case r.short:
			degraded[j] = []float64{}
		default:
			degraded[j] = []float64{r.value}
			masked[j] = []float64{r.value}
		}
	}
	return degraded, masked
}

// TestObservePartialCleanMatchesObserve: on a fully clean stream,
// ObservePartial must be Observe — identical outcomes tick for tick,
// health all-live throughout, serial and sharded.
func TestObservePartialCleanMatchesObserve(t *testing.T) {
	t.Parallel()

	for _, tc := range []struct {
		name    string
		n       int
		workers int
	}{
		{"serial", 64, 1},
		{"sharded", 8192, 4},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			full, err := NewMonitor(tc.n, 1, WithIngestWorkers(tc.workers))
			if err != nil {
				t.Fatal(err)
			}
			part, err := NewMonitor(tc.n, 1, WithIngestWorkers(tc.workers))
			if err != nil {
				t.Fatal(err)
			}
			stream := []map[int]float64{nil, nil, {0: 0.5, 1: 0.5, 2: 0.51, 3: 0.49, 9: 0.2}, nil}
			for tick, overrides := range stream {
				snap := fleetSnapshot(tc.n, 0.95, overrides)
				want, err := full.Observe(snap)
				if err != nil {
					t.Fatal(err)
				}
				got, err := part.ObservePartial(snap)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("tick %d: partial outcome diverges from Observe:\n%+v\nvs\n%+v", tick, got, want)
				}
			}
			hs := part.HealthStats()
			if hs.Live != tc.n || hs.Stale != 0 || hs.Quarantined != 0 || hs.FaultyTicks != 0 {
				t.Fatalf("clean stream left health %+v", hs)
			}
		})
	}
}

// TestObservePartialOracleParity: a degraded stream (missing rows, NaN
// and Inf corruption, wrong widths) must characterize tick for tick
// identically to an oracle monitor fed only the delivered clean subset
// — malformed and missing are the same event, and corruption never
// leaks a value into detector or space state. Run centralized and
// distributed.
func TestObservePartialOracleParity(t *testing.T) {
	t.Parallel()

	for _, distributed := range []bool{false, true} {
		distributed := distributed
		name := "centralized"
		if distributed {
			name = "distributed"
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			const n = 64
			opts := []Option{
				WithRadius(0.03), WithTau(3),
				WithHealthPolicy(HealthPolicy{HoldTicks: 1, ReadmitTicks: 2}),
				WithDistributed(distributed),
			}
			mon, err := NewMonitor(n, 1, opts...)
			if err != nil {
				t.Fatal(err)
			}
			oracle, err := NewMonitor(n, 1, opts...)
			if err != nil {
				t.Fatal(err)
			}

			// A stream that exercises every degradation while a massive
			// event (devices 0-5) and an isolated fault (device 40) play
			// out; device 7 flaps through hold, quarantine, re-admission.
			stream := []map[int]degradedRow{
				nil,
				{7: {missing: true}, 12: {badNaN: true}},
				{7: {badInf: true}, 12: {value: 0.95}},
				{0: {value: 0.5}, 1: {value: 0.5}, 2: {value: 0.51}, 3: {value: 0.49},
					4: {value: 0.5}, 5: {value: 0.5}, 40: {value: 0.2},
					7: {short: true}, 20: {missing: true}},
				{7: {value: 0.95}, 20: {badNaN: true}},
				{7: {value: 0.95}, 20: {value: 0.95}},
				{0: {value: 0.95}, 1: {value: 0.95}, 40: {value: 0.95}},
			}
			abnormalTicks := 0
			for tick, rows := range stream {
				degraded, masked := partialSnapshot(n, 0.95, rows)
				got, err := mon.ObservePartial(degraded)
				if err != nil {
					t.Fatalf("tick %d: %v", tick, err)
				}
				want, err := oracle.ObservePartial(masked)
				if err != nil {
					t.Fatalf("tick %d oracle: %v", tick, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("tick %d: degraded outcome diverges from oracle:\n%+v\nvs\n%+v", tick, got, want)
				}
				if got != nil {
					abnormalTicks++
				}
			}
			if abnormalTicks == 0 {
				t.Fatal("stream produced no abnormal window; parity was vacuous")
			}
			if !reflect.DeepEqual(mon.HealthStats(), oracle.HealthStats()) {
				t.Fatalf("health diverges: %+v vs %+v", mon.HealthStats(), oracle.HealthStats())
			}
			if hs := mon.HealthStats(); hs.Quarantines == 0 || hs.Readmissions == 0 || hs.HeldTicks == 0 {
				t.Fatalf("stream exercised no quarantine/readmission/hold: %+v", hs)
			}
		})
	}
}

// TestObservePartialHoldKeepsDeviceInPopulation: a stale device is
// characterized at its held value — the window must decide exactly as
// if the device had delivered its last-known report again.
func TestObservePartialHoldKeepsDeviceInPopulation(t *testing.T) {
	t.Parallel()

	const n = 16
	mon, err := NewMonitor(n, 1, WithHealthPolicy(HealthPolicy{HoldTicks: 3, ReadmitTicks: 1}))
	if err != nil {
		t.Fatal(err)
	}
	twin, err := NewMonitor(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	clean := fleetSnapshot(n, 0.95, nil)
	if _, err := mon.ObservePartial(clean); err != nil {
		t.Fatal(err)
	}
	if _, err := twin.Observe(clean); err != nil {
		t.Fatal(err)
	}

	// Mass event with device 6's report lost: held at 0.95.
	event := map[int]float64{0: 0.5, 1: 0.5, 2: 0.51, 3: 0.49}
	degraded := fleetSnapshot(n, 0.95, event)
	degraded[6] = nil
	got, err := mon.ObservePartial(degraded)
	if err != nil {
		t.Fatal(err)
	}
	want, err := twin.Observe(fleetSnapshot(n, 0.95, event))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("held-device window diverges from explicit re-delivery:\n%+v\nvs\n%+v", got, want)
	}
	if st, _ := mon.DeviceHealth(6); st != HealthStale {
		t.Fatalf("device 6 health %v, want stale", st)
	}
	if st, _ := mon.DeviceHealth(0); st != HealthLive {
		t.Fatalf("device 0 health %v, want live", st)
	}
	// The clean tick above ran on the fully-clean fast path, which skips
	// per-device Report calls — it must still count as a consumed report
	// for every device, so device 6's first fault was genuinely held
	// (HeldTicks charged), not silently skipped out of the population.
	if hs := mon.HealthStats(); hs.HeldTicks != 1 || hs.FaultyTicks != 1 {
		t.Fatalf("fast-path ticks did not seed hold semantics: %+v", hs)
	}
}

// TestObservePartialQuarantineExcludesDevice: past HoldTicks a device
// leaves the window's population — even if its detectors would have
// fired, it cannot appear in the abnormal set — and after ReadmitTicks
// clean reports it rejoins.
func TestObservePartialQuarantineExcludesDevice(t *testing.T) {
	t.Parallel()

	const n = 16
	mon, err := NewMonitor(n, 1, WithHealthPolicy(HealthPolicy{HoldTicks: 0, ReadmitTicks: 2}))
	if err != nil {
		t.Fatal(err)
	}
	clean := fleetSnapshot(n, 0.95, nil)
	if _, err := mon.ObservePartial(clean); err != nil {
		t.Fatal(err)
	}

	// Device 9's report goes missing: quarantined immediately (K=0).
	degraded := fleetSnapshot(n, 0.95, nil)
	degraded[9] = nil
	if _, err := mon.ObservePartial(degraded); err != nil {
		t.Fatal(err)
	}
	if st, _ := mon.DeviceHealth(9); st != HealthQuarantined {
		t.Fatalf("device 9 health %v, want quarantined", st)
	}

	// A drop that would fire 9's detector arrives — but 9 is not in the
	// population, so only the isolated device 2 is reported.
	event := fleetSnapshot(n, 0.95, map[int]float64{2: 0.2, 9: 0.2})
	out, err := mon.ObservePartial(event)
	if err != nil {
		t.Fatal(err)
	}
	if out == nil {
		t.Fatal("window with an isolated fault produced no outcome")
	}
	for _, rep := range out.Reports {
		if rep.Device == 9 {
			t.Fatalf("quarantined device 9 appeared in reports: %+v", out.Reports)
		}
	}
	if len(out.Isolated) != 1 || out.Isolated[0] != 2 {
		t.Fatalf("isolated set %v, want [2]", out.Isolated)
	}
	// The dropped-while-quarantined report (tick above) plus one more
	// clean tick re-admit device 9.
	if _, err := mon.ObservePartial(clean); err != nil {
		t.Fatal(err)
	}
	if st, _ := mon.DeviceHealth(9); st != HealthLive {
		t.Fatalf("device 9 health %v after re-admission, want live", st)
	}
	hs := mon.HealthStats()
	if hs.Quarantines != 1 || hs.Readmissions != 1 || hs.DroppedReports != 1 {
		t.Fatalf("stats %+v", hs)
	}
}

// TestObservePartialGeometryRejected: the only hard rejection left on
// the partial path is a wrong row count, and it must leave the monitor
// untouched — clock, buffers and health.
func TestObservePartialGeometryRejected(t *testing.T) {
	t.Parallel()

	const n = 12
	mon, err := NewMonitor(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	clean := fleetSnapshot(n, 0.95, nil)
	for i := 0; i < 2; i++ {
		if _, err := mon.ObservePartial(clean); err != nil {
			t.Fatal(err)
		}
	}
	prevPtr, sparePtr := mon.prev, mon.spare
	if _, err := mon.ObservePartial(fleetSnapshot(n-1, 0.95, nil)); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("short snapshot error = %v, want ErrInvalidInput", err)
	}
	if mon.Time() != 2 || mon.prev != prevPtr || mon.spare != sparePtr {
		t.Fatal("rejected snapshot mutated the monitor")
	}
	if hs := mon.HealthStats(); hs.FaultyTicks != 0 {
		t.Fatalf("rejected snapshot charged health: %+v", hs)
	}
}

// TestObservePartialBufferInvariants: the double buffer and abnormal-id
// slice must recycle across clean, degraded, quarantining and rejected
// ticks exactly as they do on the full path, and Reset must clear the
// health state with the buffers still reusable afterwards.
func TestObservePartialBufferInvariants(t *testing.T) {
	t.Parallel()

	const n = 16
	mon, err := NewMonitor(n, 1, WithHealthPolicy(HealthPolicy{HoldTicks: 1, ReadmitTicks: 1}))
	if err != nil {
		t.Fatal(err)
	}
	clean := fleetSnapshot(n, 0.95, nil)
	if _, err := mon.ObservePartial(clean); err != nil {
		t.Fatal(err)
	}
	if _, err := mon.ObservePartial(clean); err != nil {
		t.Fatal(err)
	}
	first, second := mon.spare, mon.prev
	if first == nil || second == nil || first == second {
		t.Fatal("double buffer not established")
	}

	// From here the two states must alternate roles forever, whatever
	// the tick's degradation.
	ticks := [][][]float64{
		fleetSnapshot(n, 0.95, map[int]float64{4: 0.2}), // abnormal
		fleetSnapshot(n, 0.95, nil),
		fleetSnapshot(n, 0.95, nil),
		fleetSnapshot(n, 0.95, nil),
	}
	ticks[1][3] = nil                   // hold
	ticks[2][3] = nil                   // quarantine (K=1)
	ticks[3][3] = []float64{math.NaN()} // still out
	for i, snap := range ticks {
		if _, err := mon.ObservePartial(snap); err != nil {
			t.Fatalf("tick %d: %v", i, err)
		}
		wantPrev, wantSpare := first, second
		if i%2 == 1 {
			wantPrev, wantSpare = second, first
		}
		if mon.prev != wantPrev || mon.spare != wantSpare {
			t.Fatalf("tick %d: double buffer broke rotation", i)
		}
	}
	if st, _ := mon.DeviceHealth(3); st != HealthQuarantined {
		t.Fatalf("device 3 health %v, want quarantined", st)
	}

	// A rejected tick must not disturb the rotation...
	if _, err := mon.ObservePartial(fleetSnapshot(n+1, 0.95, nil)); !errors.Is(err, ErrInvalidInput) {
		t.Fatal("oversized snapshot accepted")
	}
	if mon.prev == nil || mon.spare == nil {
		t.Fatal("rejection dropped a buffer")
	}
	// ...and the abnormal-id buffer keeps recycling: an abnormal tick
	// after all of the above reuses the slice grown earlier.
	buf := mon.abnBuf
	out, err := mon.ObservePartial(fleetSnapshot(n, 0.95, map[int]float64{8: 0.2}))
	if err != nil {
		t.Fatal(err)
	}
	if out == nil || len(out.Isolated) != 1 || out.Isolated[0] != 8 {
		t.Fatalf("outcome %+v, want isolated [8]", out)
	}
	if cap(buf) > 0 && &mon.abnBuf[:1][0] != &buf[:1][0] {
		t.Fatal("abnormal-id buffer was reallocated instead of recycled")
	}

	// Reset clears health and history; the monitor then streams again
	// from scratch, mixing Observe and ObservePartial freely.
	mon.Reset()
	if mon.Time() != 0 {
		t.Fatalf("Time = %d after Reset", mon.Time())
	}
	if st, _ := mon.DeviceHealth(3); st != HealthLive {
		t.Fatalf("device 3 health %v after Reset, want live", st)
	}
	if hs := mon.HealthStats(); hs.Quarantines != 0 || hs.FaultyTicks != 0 || hs.Live != n {
		t.Fatalf("stats %+v after Reset", hs)
	}
	if _, err := mon.Observe(clean); err != nil {
		t.Fatal(err)
	}
	if _, err := mon.ObservePartial(clean); err != nil {
		t.Fatal(err)
	}
	if st, _ := mon.DeviceHealth(3); st != HealthLive {
		t.Fatalf("device 3 health %v on a clean restart", st)
	}
}

// TestObservePartialHoldWithoutCommittedState: a Hold disposition can
// surface with no committed previous state — a failed walk keeps the
// health tracker's consumption while the tick never commits (see
// ObservePartial's error behavior) — and the monitor must park the
// device for the window instead of dereferencing the state that never
// materialized.
func TestObservePartialHoldWithoutCommittedState(t *testing.T) {
	t.Parallel()

	const n = 8
	mon, err := NewMonitor(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the aftermath of a consumed-but-failed first tick: every
	// device's report folded into health state, no tick committed.
	tr, err := health.New(n, mon.cfg.health)
	if err != nil {
		t.Fatal(err)
	}
	tr.ConsumeAll()
	mon.health.Store(tr)

	snap := fleetSnapshot(n, 0.95, nil)
	snap[3] = nil
	if _, err := mon.ObservePartial(snap); err != nil {
		t.Fatal(err)
	}
	if st, _ := mon.DeviceHealth(3); st != HealthStale {
		t.Fatalf("device 3 health %v, want stale", st)
	}
	// The monitor keeps streaming: device 3 delivers again and rejoins.
	if _, err := mon.ObservePartial(fleetSnapshot(n, 0.95, nil)); err != nil {
		t.Fatal(err)
	}
	if st, _ := mon.DeviceHealth(3); st != HealthLive {
		t.Fatalf("device 3 health %v after clean report, want live", st)
	}
}

// TestObservePartialNeverSeenDevice: a device that has never delivered
// a clean report has no value to hold — it sits out the window parked
// at the origin and joins the population on its first clean report.
func TestObservePartialNeverSeenDevice(t *testing.T) {
	t.Parallel()

	const n = 16
	mon, err := NewMonitor(n, 1, WithHealthPolicy(HealthPolicy{HoldTicks: 5, ReadmitTicks: 1}))
	if err != nil {
		t.Fatal(err)
	}
	// Device 11 is silent from the very first tick.
	for i := 0; i < 2; i++ {
		snap := fleetSnapshot(n, 0.95, nil)
		snap[11] = nil
		if _, err := mon.ObservePartial(snap); err != nil {
			t.Fatal(err)
		}
	}
	if st, _ := mon.DeviceHealth(11); st != HealthStale {
		t.Fatalf("device 11 health %v, want stale", st)
	}
	if hs := mon.HealthStats(); hs.HeldTicks != 0 {
		t.Fatalf("held %d ticks for a device with no value", hs.HeldTicks)
	}
	// First delivery: consumed, device joins cleanly.
	snap := fleetSnapshot(n, 0.95, nil)
	if _, err := mon.ObservePartial(snap); err != nil {
		t.Fatal(err)
	}
	if st, _ := mon.DeviceHealth(11); st != HealthLive {
		t.Fatalf("device 11 health %v after first report, want live", st)
	}
}

// TestMonitorHealthAccessors: bounds checking and the Observe-only
// default.
func TestMonitorHealthAccessors(t *testing.T) {
	t.Parallel()

	mon, err := NewMonitor(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mon.DeviceHealth(-1); !errors.Is(err, ErrInvalidInput) {
		t.Fatal("negative device accepted")
	}
	if _, err := mon.DeviceHealth(8); !errors.Is(err, ErrInvalidInput) {
		t.Fatal("out-of-range device accepted")
	}
	if st, err := mon.DeviceHealth(0); err != nil || st != HealthLive {
		t.Fatalf("DeviceHealth(0) = %v, %v", st, err)
	}
	if hs := mon.HealthStats(); hs.Live != 8 || hs.Stale != 0 || hs.Quarantined != 0 {
		t.Fatalf("Observe-only stats %+v", hs)
	}
	if _, err := NewMonitor(8, 1, WithHealthPolicy(HealthPolicy{HoldTicks: -1, ReadmitTicks: 1})); !errors.Is(err, ErrInvalidInput) {
		t.Fatal("negative HoldTicks accepted")
	}
	if _, err := NewMonitor(8, 1, WithHealthPolicy(HealthPolicy{HoldTicks: 0, ReadmitTicks: 0})); !errors.Is(err, ErrInvalidInput) {
		t.Fatal("zero ReadmitTicks accepted")
	}
}
