// Package anomalia characterizes anomalies in large-scale monitored
// systems: given two successive snapshots of per-device quality-of-service
// measurements and the set of devices whose trajectories look abnormal, it
// decides — for each abnormal device, using only that device's 4r
// neighbourhood — whether the underlying error was massive (hit more than
// τ devices, e.g. a network outage) or isolated (hit at most τ, e.g. a
// broken home gateway), or whether the configuration is provably
// unresolvable even for an omniscient observer.
//
// It is a from-scratch reproduction of "Anomaly Characterization in Large
// Scale Networks" (Anceaume, Busnel, Le Merrer, Ludinard, Marchand,
// Sericola — IEEE/IFIP DSN 2014), including the impossibility result
// (unresolved configurations), the local decision procedures of Theorems
// 5-7 and Corollary 8, the parameter-dimensioning analysis, the error
// detectors the paper references, the related-work baselines, and the full
// evaluation harness regenerating every table and figure.
//
// # Quick start
//
//	prev := [][]float64{{0.95}, {0.94}, {0.95}, {0.96}, {0.95}}
//	cur := [][]float64{{0.55}, {0.54}, {0.56}, {0.55}, {0.20}}
//	out, err := anomalia.Characterize(prev, cur, []int{0, 1, 2, 3, 4},
//		anomalia.WithRadius(0.03), anomalia.WithTau(3))
//	// devices 0-3 moved together -> massive; device 4 alone -> isolated.
//
// For streaming deployments, Monitor couples the characterizer with
// per-service error-detection functions (threshold, EWMA, CUSUM,
// Holt-Winters, Kalman, Shewhart) so that raw QoS samples go in and
// verdicts come out; see NewMonitor.
//
// Parameter selection (the consistency radius r and density threshold τ)
// follows Section VII-A of the paper via TuneTau and TuneRadius.
//
// # Distributed deployment
//
// The paper's scaling claim is that no omniscient monitor is needed:
// every abnormal device can reach the omniscient verdict from the
// trajectories within uniform-norm distance 4r of its own, fetched from
// a directory service. WithDistributed enables that deployment model:
// the window's abnormal trajectories are indexed in a sharded,
// concurrency-safe directory (grid cells of side 2r, block-cached so
// co-located devices share neighbourhood fetches) and each abnormal
// device characterizes itself on its fetched 4r view. Verdicts are
// provably identical to the in-process path; Outcome.Dist reports the
// directory traffic — messages, trajectories shipped, and view sizes —
// the quantities the DistCost study of cmd/anomalia-experiments bills
// and cmd/anomalia-gateway's -distributed flag exercises on live
// streams. The directory's cells come from the same shared spatial
// index (internal/grid) that builds the motion graph, so the two
// deployments agree on geometry by construction.
//
// The directory service persists across observation windows, as the
// paper's deployment assumes: the Monitor builds it on the first
// abnormal window and advances it on every later one. Advance diffs
// the abnormal set and the per-device grid cells against the retained
// index and patches the key-sorted cell slab by sorted merge — devices
// that stayed in their cells cost nothing beyond the diff, and when the
// churn fraction crosses the grid package's measured threshold the
// patch falls back to the full rebuild it replaces. Each window is
// published as one immutable snapshot behind an atomic pointer, so
// decisions racing an advance always see a coherent window (an
// incremental-vs-rebuild parity suite pins the advanced directory
// byte-identical to a fresh build — views, stats, shard fan-outs). In
// the deployment model the advance is fed by the update stream moving
// devices push to the service, which keeps its cost proportional to
// the churn, not the fleet.
//
// # Networked deployment
//
// WithDirectory moves the directory service out of the Monitor's
// process: cmd/anomalia-directory hosts the shards behind a
// length-prefixed binary wire protocol (internal/dirnet — a uint32
// frame length, a message byte, and sparse trajectory bodies carrying
// only the abnormal rows, bit-exact), and the Monitor decides each
// abnormal window through a thin client. The client syncs a shard by
// shipping the window pair and abnormal set, then advances it window
// to window with the per-device moved stream as the incremental wire
// format, partitioning each window's decisions contiguously across
// whichever shards are in sync — a shard that falls out of sync (or
// crashes and comes back empty) is rebuilt from the full window, so
// shard failover is a re-sync, not an error.
//
// Every request carries a deadline (DirectoryConfig.RequestTimeout);
// a transport failure is retried up to MaxRetries times with
// exponential backoff and full jitter (BackoffBase/BackoffCap,
// deterministic under Seed), and BreakerFails consecutive failures
// open a per-shard circuit breaker that stops the client hammering a
// dead shard — after BreakerCooldown abnormal windows the breaker
// half-opens, one probe either rejoins the shard or re-opens the
// breaker. Server-side application errors (a malformed request, a
// characterization failure) are returned as errors, never retried and
// never charged to the breaker: retrying cannot fix them and they say
// nothing about shard health.
//
// The degradation contract is the paper's own oracle: a window the
// wire cannot serve within its deadline budget falls back to
// centralized characterization in-process, so Observe never errors on
// shard unavailability and the verdicts are identical either way —
// only Outcome.Dist (present iff the window was decided by the
// directory) and the Monitor.DirStats ledger (windows networked vs
// degraded, retries, breaker opens, shard rejoins, bytes and
// round-trips on the wire) tell the paths apart. A 220-tick soak
// drives the full stack through seeded wire weather — latency,
// dropped windows, shard crashes that lose directory state,
// partitions that keep it, and a full-fleet blackout — from
// internal/netsim's wire-fault injector, pinning every networked
// window byte-identical to the in-process distributed outcome and
// every degraded window byte-identical to the centralized one, under
// the race detector. cmd/anomalia-gateway's -directory flag runs the
// same client on live streams, and the DistCost study reports the
// measured wire bytes, round-trips and retries per abnormal window
// next to the paper's billed message economy.
//
// # Ingestion
//
// The paper's detection layer (Section III-A) is a per-device local
// test: device j's error-detection function looks only at j's own QoS
// samples. Monitor.Observe exploits that independence — snapshot
// validation and the detector walk are sharded across WithIngestWorkers
// goroutines (default GOMAXPROCS) over contiguous device ranges, with
// per-shard abnormal-id buffers concatenated in shard order, so the
// abnormal set handed to characterization is byte-identical to a serial
// walk whatever the worker count (pinned by a parity suite run under
// the race detector). The walk is two-phase: every row is validated —
// width, and non-finite values rejected by name, since v < 0 || v > 1
// is false for NaN — before the first detector consumes a sample, so a
// rejected snapshot leaves the monitor exactly as it was, while an
// error after acceptance (e.g. an exact-search budget) reports a
// consumed observation whose clock and buffers advanced coherently.
//
// Feeding snapshots in, cmd/anomalia-gateway reads either CSV (one row
// per discrete time, parsed into reused buffers) or the binary stream
// of internal/snapio: per frame, a little-endian uint32 value count
// followed by that many float64 bit patterns, device-major. A binary
// tick decodes with one bulk read and no per-tick allocation —
// several times the CSV rate at large n (BenchmarkIngest) — and
// -convert bridges existing CSV archives to it. cmd/anomalia-sim
// -emit generates either format from the Section VII-A workload, so
// the two binaries compose into an end-to-end pipeline. At n = 1M the
// full streaming tick (decode, validate, copy, walk a million
// detectors, characterize the window's mass event) stays within ~2x
// of the bare characterization of the same window, and a quiet tick
// runs allocation-free (BENCH_6.json; both gated in CI).
//
// # Degraded operation
//
// A million-device deployment never delivers a perfect snapshot: reports
// go missing, arrive truncated, or carry garbage. The paper's model
// assumes each monitored device reports every discrete time; the
// implementation keeps that model honest by reconciling the imperfect
// stream to it explicitly instead of dying on the first bad frame.
//
// Monitor.ObservePartial accepts snapshots in which a device's row may
// be nil (no report) or malformed (wrong width, non-finite values) and
// drives a per-device health state machine (see WithHealthPolicy): a
// live device whose report goes bad turns stale and has its last-known
// value held for up to HoldTicks consecutive faulty ticks — brief
// delivery hiccups don't perturb detection — after which it is
// quarantined: excluded from the window's population entirely, so its
// silence is never mistaken for motion, until ReadmitTicks consecutive
// clean reports re-admit it. Detection and characterization then run
// over the live subset, and the verdicts are exactly the omniscient
// verdicts on that subset: a soak suite pins a degraded monitor
// tick-for-tick against an oracle fed the clean values masked by the
// delivered set, centralized and distributed, under the race detector.
// Monitor.DeviceHealth and Monitor.HealthStats expose the per-device
// state and the fleet split with its lifetime
// quarantine/re-admission counters. A
// fully clean tick over an all-live fleet takes a fast path that
// proves it equivalent to Observe before touching any per-device
// health state, so the idle health layer is free — the quiet n = 1M
// ObservePartial tick matches the plain quiet tick's ~1 allocation and
// latency (BenchmarkTickObservePartial1M; gated in CI).
//
// cmd/anomalia-gateway applies the same discipline to the wire: by
// default a malformed CSV cell or binary value quarantines the
// offending device for that tick — counted, and diagnosed with the
// line and column (CSV) or frame index and byte offset (binary) — and
// the stream keeps flowing; a whole-tick loss (a CSV record that does
// not parse) degrades that tick; -maxbad consecutive fully-lost ticks
// abort the run (a wedged source should fail loudly, not hold the
// last value forever); -strict restores fail-fast on the first fault.
// Binary framing damage (a torn length prefix or truncated frame
// body) is fatal in both modes — a length-prefixed stream cannot
// resync — with the frame index and byte offset in the error
// (internal/snapio positions every decode error; its reader is
// fuzzed: no panic, no geometry-escaping allocation, truncation at
// every byte boundary distinguished from clean end of stream).
//
// The fault model is reproducible: internal/netsim.Injector degrades a
// simulated network's delivery with seeded per-report drop and
// corruption probabilities plus scheduled burst outages over device
// and tick ranges, and cmd/anomalia-sim -emit exposes it (-drop,
// -corrupt, -outages, -faultseed, -truncate) so a degraded wire
// fixture — empty CSV cells and NaN binary values for lost reports, a
// truncated final frame for framing damage — reproduces end to end
// with one seed.
//
// # Performance
//
// The paper's locality result — every decision needs only the
// 4r-neighbourhood — is matched by the implementation's data
// structures, so the window pipeline costs O(m * density), not O(m^2),
// in the abnormal-set size m:
//
//   - Motion-graph construction buckets the abnormal devices into a
//     shared grid of cells with side 2r (internal/grid) and only
//     distance-tests candidate pairs from nearby cells. The grid build
//     is property-tested byte-identical to the all-pairs scan and is
//     ~20-25x faster at m = 10k uniform devices (~6-7x when the window
//     is dominated by tight clusters, where cells are crowded); exact
//     numbers per run are recorded in BENCH_*.json.
//   - The grid index itself is map-free and slab-allocated: cell
//     coordinates pack into fixed-width keys, the devices are sorted by
//     key (key computation and the sort itself sharded across
//     GOMAXPROCS workers, with a deterministic pairwise merge so the
//     index is byte-identical for any worker count), and the
//     whole index materializes as one key-sorted cell slab plus shared
//     id/coordinate/key arenas — a handful of allocations however many
//     cells a window occupies, with lookups served by binary search.
//     At m = 1M the index rebuild every window pays dropped from ~1.5M
//     allocations (one map entry, cell struct, coords slice and id-list
//     growth per occupied cell) to a few hundred for the whole graph
//     build, and build time from ~4.4 s to ~1.6 s (BENCH_4.json).
//   - Adjacency storage is hybrid and density-adaptive. Below ~4k
//     vertices every vertex owns a dense bitset row (slab-backed: one
//     shared words arena) — O(m^2/64) bytes, but clique enumeration is
//     pure word operations, which is what the per-window
//     characterization hot path wants. From ~4k vertices the grid's
//     cell-pair walk is sharded across GOMAXPROCS workers into
//     per-worker edge buffers, and the representation is picked from
//     the measured edge count after collection: windows so edge-dense
//     that a CSR arena would be no smaller (edge-crowded massive-event
//     clusters) fill dense rows straight from the buffers, everything
//     else merges into one shared CSR arena (2 allocations however many
//     edges) with a count/prefix-sum/fill/sort pass. Memory falls from
//     O(m^2/64) to O(m + edges): at m = 100k the build went from
//     ~1.37 GB (PR 2) to ~0.10-0.18 GB, and an m = 1M window — which
//     the dense representation could not hold at all (~2 TB) — builds
//     in ~1.6 s in ~184 MB (BENCH_4.json).
//   - Sparse-mode clique enumeration never widens back to m: each
//     vertex's neighbourhood is densified into a Δ-sized subgraph
//     (degeneracy-ordered Bron-Kerbosch over N(v), with Δ the maximum
//     degree), so enumeration scratch is O(Δ^2/64) bits from the same
//     recycled pool and results are property-tested identical to the
//     dense representation.
//   - Characterization is component-local. The motion graph is
//     decomposed into connected components once per window, and every
//     rule of Theorems 5-7 is local to a component — a maximal motion
//     is a clique, D_k(j) unions motions containing j, and J_k/L_k
//     split D_k(j), so none of them crosses a component boundary. Each
//     decision therefore works on bitsets over component ranks: the
//     D_k union, the J_k/L_k split and the Theorem-6 intersection test
//     are word-parallel over O(|C|/64) words for a |C|-member
//     component instead of O(m/64) over the whole abnormal universe,
//     and device-id slices materialize only at the Result boundary.
//     Maximal motions are enumerated once per component — a single
//     Bron-Kerbosch over the densified component subgraph, falling
//     back to Δ-bounded anchored per-vertex enumeration when a
//     CSR-mode component exceeds the dense crossover (dense-row graphs
//     densify whatever the component size: that scratch never exceeds
//     the adjacency they already carry) — and every member reads
//     its family out of the shared sorted result, so an adversarial
//     window in which all m devices are abnormal pays enumeration per
//     component, not per device. Decision scratch is leased from
//     size-class-bucketed pools (power-of-two word classes), so a
//     mass-event-sized decision never hands its giant buffer to a
//     later tiny component's lease. At m = 200k all-abnormal the fleet
//     characterizes in ~1.9 s and ~0.35 GB allocated, from ~128 s and
//     29.5 GB before the decomposition, and the latency scaling
//     exponent across m = 10k -> 200k drops from 1.69 to ~1.2
//     (BENCH_7.json; the m = 50k point is gated in CI). A parity suite
//     pins verdicts, sets and cost counters bit-identical to the
//     whole-graph-universe reference across placement families,
//     adjacency representations and exact modes, serial and parallel
//     under the race detector.
//   - Monitor recycles the displaced snapshot as the next window's
//     buffer and reuses the abnormal-id slice, so steady-state
//     observation does not grow the heap per snapshot; the detector
//     walk reuses its per-shard flag buffers the same way, so a quiet
//     n = 1M tick runs in ~1 allocation (BenchmarkTickIngestDetect1M).
//   - The distributed directory rides the same flat index: occupied
//     cells live in the index's key-sorted slab annotated with their
//     owning shard, the 4r block cache is one atomic pointer per cell
//     (no side maps, no string keys), and the batched DecideAll
//     assembles views through a recycled scratch buffer, materializing
//     a view only when it opens a new characterizer group.
//   - The spatial index and directory survive across windows instead of
//     being rebuilt: grid.Index.Update diffs the new indexed set (and,
//     when the caller supplies the deployment's moved list, only the
//     listed devices' packed keys) against the retained cell
//     membership, then patches the cell slab by sorted merge. Untouched
//     cells share their storage with prior windows (id arenas are
//     pointer-free, so retaining them is free for the collector),
//     churned cells fill a churn-sized delta arena, vacated and created
//     cells splice the key slab, and accumulated dead fragments are
//     bounded by an amortized compaction pass. Directory.Advance adds
//     shard-annotation carry-over and 4r block-cache invalidation
//     limited to the churned cells' reach, then publishes the window
//     with one pointer swap. At n=1M abnormal devices and 1% churn the
//     clustered (paper R2) advance beats the full rebuild by >=10x
//     (BENCH_5.json churn sweep: clustered and uniform x n in {10k,
//     100k, 1M} x churn in {0.1%, 1%, 10%}), with allocations bounded
//     by the churn — CI gates the n=1M advance at 512 allocs/op.
//
// The perf trajectory is recorded in BENCH_*.json files at the repo
// root, one per optimization PR, written by scripts/bench.sh: "before"
// holds the recorded numbers of the previous state, "after" the fresh
// run (ns/op, B/op, allocs/op per benchmark; ns_op is the minimum
// across repeated runs). CI runs scripts/bench.sh -short, which fails
// on allocation regressions in the window hot path, on allocated-byte
// regressions in the m = 100k graph build, on allocation regressions in
// the m = 1M graph build, on allocation regressions in the n = 1M
// 1%-churn incremental directory advance, on allocation regressions in
// the quiet n = 1M streaming tick and its idle-health ObservePartial
// twin (whose latency is additionally gated against the plain quiet
// tick), on the quiet tick of a directory-configured monitor adding
// more than one allocation over the plain quiet tick (the
// breaker-closed networked client must be free when nothing is
// abnormal), on the end-to-end/bare latency ratio of the n = 1M
// mass-event tick drifting past its envelope, and on latency or
// allocation regressions in the m = 50k all-abnormal fleet
// characterization. Separate CI steps repeat the seeded
// fault-injection and wire-fault soaks under the race detector.
//
// # Observability
//
// WithMetrics(reg) instruments a Monitor against an
// internal/metrics.Registry: every committed tick records a handful of
// atomic stores — no allocation, no lock — and the registry renders
// the Prometheus text format (version 0.0.4) via reg.Handler() or
// reg.WritePrometheus. anomalia-gateway and anomalia-directory expose
// it with -metrics addr (scrape endpoint /metrics); anomalia-sim
// -soak N runs N windows against an instrumented monitor and emits a
// JSON latency report (p50/p99/p999 tick seconds, alloc drift) that
// -slo p99=DUR turns into an exit-code gate, recorded per PR by
// scripts/bench.sh into BENCH_N.json.
//
// The Monitor feeds these families per window:
//
//   - anomalia_ticks_total — snapshots observed (counter)
//   - anomalia_tick_seconds — latency histogram by phase label:
//     ingest (classify + health dispatch, ObservePartial only),
//     detect (the sharded detector walk), characterize (abnormal
//     windows only), total
//   - anomalia_abnormal_windows_total — windows with a non-empty
//     abnormal set (counter)
//   - anomalia_abnormal_devices — abnormal-set size histogram
//   - anomalia_abnormal_churn_ratio — symmetric-difference churn of
//     consecutive abnormal sets over their union (gauge)
//   - anomalia_directory_builds_total,
//     anomalia_directory_advances_total{result=patched|rebuilt} —
//     in-process directory decisions (counters)
//   - anomalia_health_devices{state=live|stale|quarantined} — the
//     population split (gauges), plus the lifetime counters
//     anomalia_health_quarantines_total,
//     anomalia_health_readmissions_total,
//     anomalia_health_held_ticks_total,
//     anomalia_health_dropped_reports_total,
//     anomalia_health_faulty_ticks_total
//   - anomalia_dir_windows_total{outcome=networked|degraded},
//     anomalia_dir_retries_total, anomalia_dir_failures_total,
//     anomalia_dir_breaker_opens_total, anomalia_dir_rejoins_total,
//     anomalia_dir_bytes_total{direction=sent|received},
//     anomalia_dir_round_trips_total — the networked-directory wire
//     ledger (DirStats as counters)
//   - anomalia_go_heap_alloc_bytes, anomalia_go_alloc_bytes_total,
//     anomalia_go_mallocs_total, anomalia_go_gc_cycles_total,
//     anomalia_go_gc_pause_ns_total — a per-window runtime sample
//
// The binaries add their own families on the same registry:
// anomalia-gateway counts ingested frames
// (anomalia_gateway_snapshots_total,
// anomalia_gateway_recovered_errors_total), and anomalia-directory
// counts wire service (anomalia_dirsrv_connections_total,
// anomalia_dirsrv_requests_total, anomalia_dirsrv_request_errors_total,
// anomalia_dirsrv_bytes_total{direction=read|written}, and the held
// window sequence anomalia_dirsrv_window_seq) with the same
// runtime sample refreshed on scrape. A doc-sync test pins every
// family a Monitor registers against this section; the stats snapshots
// (Time, DeviceHealth, HealthStats, DirStats) and a registry scrape
// are the one part of the Monitor API that is safe to call
// concurrently with Observe/ObservePartial.
package anomalia
