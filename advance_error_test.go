package anomalia

import (
	"testing"

	"anomalia/internal/motion"
	"anomalia/internal/space"
)

// TestAdvanceErrorDropsDirectory pins the monitor's mid-window error
// policy for the persistent distributed directory: Advance validates
// before it mutates, so a failed advance leaves the retained window
// intact but possibly stale against the monitor's abnormal set — the
// monitor must drop the directory and let the next abnormal window
// rebuild it from scratch, not keep serving the old membership.
func TestAdvanceErrorDropsDirectory(t *testing.T) {
	t.Parallel()

	const n = 12
	m, err := NewMonitor(n, 1, WithDistributed(true), WithRadius(0.03), WithTau(3))
	if err != nil {
		t.Fatal(err)
	}
	event := map[int]float64{0: 0.50, 1: 0.50, 2: 0.51, 3: 0.49, 5: 0.20}

	if _, err := m.Observe(fleetSnapshot(n, 0.95, nil)); err != nil {
		t.Fatal(err)
	}
	out, err := m.Observe(fleetSnapshot(n, 0.95, event))
	if err != nil {
		t.Fatal(err)
	}
	if out == nil || m.dir == nil {
		t.Fatal("abnormal window did not build the directory")
	}
	// Recovery tick: the move back to base is itself abnormal and
	// advances the retained directory.
	out, err = m.Observe(fleetSnapshot(n, 0.95, nil))
	if err != nil {
		t.Fatal(err)
	}
	if out == nil || m.dir == nil {
		t.Fatal("second abnormal window did not advance the directory")
	}

	// Inject a failing advance: an abnormal id outside the population
	// fails canonicalization inside Directory.Advance, after the
	// directory exists and before anything is stored.
	prev, err := space.NewState(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := space.NewState(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	pair, err := motion.NewPair(prev, cur)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.characterizeWindow(pair, []int{n + 3}); err == nil {
		t.Fatal("out-of-range abnormal id must fail the advance")
	}
	if m.dir != nil {
		t.Fatal("directory retained after a failed Advance — stale membership would leak into later windows")
	}

	// The monitor recovers on its own: the next abnormal window rebuilds
	// the directory and still reaches the reference verdicts.
	if _, err := m.Observe(fleetSnapshot(n, 0.95, event)); err != nil {
		t.Fatal(err)
	}
	out, err = m.Observe(fleetSnapshot(n, 0.95, nil))
	if err != nil {
		t.Fatal(err)
	}
	if out == nil || m.dir == nil {
		t.Fatal("directory was not rebuilt after the dropped advance")
	}
	if out.Dist == nil {
		t.Fatal("rebuilt window lost its distributed decision stats")
	}
}
