package anomalia

import (
	"errors"
	"net"
	"reflect"
	"testing"

	"anomalia/internal/dirnet"
	"anomalia/internal/motion"
	"anomalia/internal/space"
)

// TestAdvanceErrorDropsDirectory pins the monitor's mid-window error
// policy for the persistent distributed directory: Advance validates
// before it mutates, so a failed advance leaves the retained window
// intact but possibly stale against the monitor's abnormal set — the
// monitor must drop the directory and let the next abnormal window
// rebuild it from scratch, not keep serving the old membership.
func TestAdvanceErrorDropsDirectory(t *testing.T) {
	t.Parallel()

	const n = 12
	m, err := NewMonitor(n, 1, WithDistributed(true), WithRadius(0.03), WithTau(3))
	if err != nil {
		t.Fatal(err)
	}
	event := map[int]float64{0: 0.50, 1: 0.50, 2: 0.51, 3: 0.49, 5: 0.20}

	if _, err := m.Observe(fleetSnapshot(n, 0.95, nil)); err != nil {
		t.Fatal(err)
	}
	out, err := m.Observe(fleetSnapshot(n, 0.95, event))
	if err != nil {
		t.Fatal(err)
	}
	if out == nil || m.dir == nil {
		t.Fatal("abnormal window did not build the directory")
	}
	// Recovery tick: the move back to base is itself abnormal and
	// advances the retained directory.
	out, err = m.Observe(fleetSnapshot(n, 0.95, nil))
	if err != nil {
		t.Fatal(err)
	}
	if out == nil || m.dir == nil {
		t.Fatal("second abnormal window did not advance the directory")
	}

	// Inject a failing advance: an abnormal id outside the population
	// fails canonicalization inside Directory.Advance, after the
	// directory exists and before anything is stored.
	prev, err := space.NewState(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := space.NewState(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	pair, err := motion.NewPair(prev, cur)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.characterizeWindow(pair, []int{n + 3}); err == nil {
		t.Fatal("out-of-range abnormal id must fail the advance")
	}
	if m.dir != nil {
		t.Fatal("directory retained after a failed Advance — stale membership would leak into later windows")
	}

	// The monitor recovers on its own: the next abnormal window rebuilds
	// the directory and still reaches the reference verdicts.
	if _, err := m.Observe(fleetSnapshot(n, 0.95, event)); err != nil {
		t.Fatal(err)
	}
	out, err = m.Observe(fleetSnapshot(n, 0.95, nil))
	if err != nil {
		t.Fatal(err)
	}
	if out == nil || m.dir == nil {
		t.Fatal("directory was not rebuilt after the dropped advance")
	}
	if out.Dist == nil {
		t.Fatal("rebuilt window lost its distributed decision stats")
	}
}

// TestNetworkedAdvanceErrorDegradesWindow is the wire counterpart of
// TestAdvanceErrorDropsDirectory: when the over-the-wire window sync
// fails mid-stream, the monitor must serve that window from the
// centralized fallback with unchanged verdicts — never an Observe
// error — and the next abnormal window must go networked again with
// verdict parity, the client resyncing the shard on its own.
func TestNetworkedAdvanceErrorDegradesWindow(t *testing.T) {
	t.Parallel()

	const n = 12
	srv := dirnet.NewServer()
	refuse := false
	dial := func(string) (net.Conn, error) {
		if refuse {
			return nil, errors.New("injected: shard unreachable")
		}
		c1, c2 := net.Pipe()
		go srv.HandleConn(c2)
		return c1, nil
	}
	opts := []Option{WithRadius(0.03), WithTau(3)}
	networked, err := NewMonitor(n, 1, append(opts, WithDirectory(DirectoryConfig{
		Addrs:        []string{"shard-0"},
		Dial:         dial,
		MaxRetries:   1,
		BreakerFails: 10, // keep the breaker closed: this test is about the window, not the breaker
	}))...)
	if err != nil {
		t.Fatal(err)
	}
	central, err := NewMonitor(n, 1, opts...)
	if err != nil {
		t.Fatal(err)
	}
	event := map[int]float64{0: 0.50, 1: 0.50, 2: 0.51, 3: 0.49, 5: 0.20}

	// Window plan: tick 1 abnormal (networked init), tick 2 abnormal
	// (recovery edge) with the shard unreachable — the over-the-wire
	// advance fails and the window degrades — tick 3 abnormal with the
	// shard healed — networked again, advancing from the window the
	// shard still holds.
	step := func(tick int, samples [][]float64) (*Outcome, *Outcome) {
		t.Helper()
		want, err := central.Observe(samples)
		if err != nil {
			t.Fatalf("tick %d centralized: %v", tick, err)
		}
		got, err := networked.Observe(samples)
		if err != nil {
			t.Fatalf("tick %d networked: Observe must absorb shard unavailability: %v", tick, err)
		}
		return got, want
	}
	verdicts := func(o *Outcome) [3][]int { return [3][]int{o.Massive, o.Isolated, o.Unresolved} }

	step(0, fleetSnapshot(n, 0.95, nil))
	got, want := step(1, fleetSnapshot(n, 0.95, event))
	if got == nil || want == nil {
		t.Fatal("abnormal window not detected")
	}
	if !reflect.DeepEqual(verdicts(got), verdicts(want)) {
		t.Fatalf("networked window diverged: %v vs %v", verdicts(got), verdicts(want))
	}

	refuse = true
	networked.dirClient.Close() // a live pipe would outlast the refusal
	got, want = step(2, fleetSnapshot(n, 0.95, nil))
	if got == nil || want == nil {
		t.Fatal("recovery window not detected")
	}
	if !reflect.DeepEqual(verdicts(got), verdicts(want)) {
		t.Fatalf("degraded window diverged from centralized oracle: %v vs %v", verdicts(got), verdicts(want))
	}
	if got.Dist != nil {
		t.Fatal("degraded window still carries directory traffic — it did not fall back")
	}
	if ds := networked.DirStats(); ds.Degraded != 1 || ds.Networked != 1 {
		t.Fatalf("after the failed window DirStats = %+v, want 1 networked / 1 degraded", ds)
	}

	refuse = false
	step(3, fleetSnapshot(n, 0.95, event))
	got, want = step(4, fleetSnapshot(n, 0.95, nil))
	if got == nil || want == nil {
		t.Fatal("post-heal window not detected")
	}
	if !reflect.DeepEqual(verdicts(got), verdicts(want)) {
		t.Fatalf("post-heal networked window diverged: %v vs %v", verdicts(got), verdicts(want))
	}
	if got.Dist == nil {
		t.Fatal("post-heal window lost its distributed decision stats — it did not go back over the wire")
	}
	ds := networked.DirStats()
	if ds.Windows != 4 || ds.Networked != 3 || ds.Degraded != 1 {
		t.Fatalf("final DirStats = %+v, want 4 windows: 3 networked, 1 degraded", ds)
	}
}
